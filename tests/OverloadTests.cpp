//===- tests/OverloadTests.cpp - Brown-out ladder + quarantine tests ------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the serving-resilience support pieces: the process-wide
// brown-out ladder (driver/Overload.h), the crash quarantine
// (driver/Quarantine.h), the modeled-byte accounting (support/MemoryBudget.h),
// and the failpoint configuration diagnostics (support/FailPoint.h).
//
// The ladder is process-global state shared with every other test in this
// binary, so each test installs its own policy and the LadderGuard restores
// the inert policy + Normal level on exit.
//
//===----------------------------------------------------------------------===//

#include "driver/Overload.h"
#include "driver/Quarantine.h"
#include "interp/RuntimeTrap.h"
#include "support/FailPoint.h"
#include "support/MemoryBudget.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace selspec;

namespace {

/// Restores the governor to its inert, Normal-level startup state so no
/// other test in this process inherits an escalated ladder.
struct LadderGuard {
  ~LadderGuard() {
    overload::Policy P;
    P.QueueHighFraction = 2.0;
    P.QueueLowFraction = 2.0;
    overload::setPolicy(P);
    overload::reset();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Brown-out ladder
//===----------------------------------------------------------------------===//

TEST(Overload, InertPolicyNeverEscalates) {
  LadderGuard G;
  overload::Policy P;
  P.QueueHighFraction = 2.0; // no real queue reaches this fraction
  P.QueueLowFraction = 2.0;
  P.EngageTicks = 1;
  overload::setPolicy(P);
  overload::reset();
  for (int I = 0; I != 100; ++I)
    overload::observe(/*QueueDepth=*/8, /*QueueCapacity=*/8);
  EXPECT_EQ(overload::level(), overload::Level::Normal);
  EXPECT_TRUE(overload::allowArcCollection());
  EXPECT_TRUE(overload::allowRespecialization());
  EXPECT_FALSE(overload::degradeToCha());
}

TEST(Overload, LadderEscalatesHoldsAndRecovers) {
  LadderGuard G;
  overload::Policy P;
  P.EngageTicks = 3;
  P.RecoverTicks = 4;
  overload::setPolicy(P);
  overload::reset();

  // Three consecutive pressured observations: one rung up.
  for (int I = 0; I != 3; ++I)
    overload::observe(8, 8);
  EXPECT_EQ(overload::level(), overload::Level::NoArcs);
  EXPECT_FALSE(overload::allowArcCollection());
  EXPECT_TRUE(overload::allowRespecialization());
  EXPECT_FALSE(overload::degradeToCha());

  // The hysteresis band between the fractions holds the level no matter
  // how long the queue sits there.
  for (int I = 0; I != 50; ++I)
    overload::observe(4, 8); // 0.5: above low (0.25), below high (0.75)
  EXPECT_EQ(overload::level(), overload::Level::NoArcs);

  // Sustained pressure climbs the remaining rungs and saturates.
  for (int I = 0; I != 6; ++I)
    overload::observe(8, 8);
  EXPECT_EQ(overload::level(), overload::Level::ChaOnly);
  EXPECT_FALSE(overload::allowArcCollection());
  EXPECT_FALSE(overload::allowRespecialization());
  EXPECT_TRUE(overload::degradeToCha());
  for (int I = 0; I != 20; ++I)
    overload::observe(8, 8);
  EXPECT_EQ(overload::level(), overload::Level::ChaOnly);

  // Recovery steps back down one rung per RecoverTicks clear
  // observations, all the way to Normal.
  for (int I = 0; I != 4; ++I)
    overload::observe(0, 8);
  EXPECT_EQ(overload::level(), overload::Level::NoRespec);
  for (int I = 0; I != 8; ++I)
    overload::observe(0, 8);
  EXPECT_EQ(overload::level(), overload::Level::Normal);
  EXPECT_TRUE(overload::allowArcCollection());
  EXPECT_TRUE(overload::allowRespecialization());
}

TEST(Overload, ClearObservationResetsTheEscalationStreak) {
  LadderGuard G;
  overload::Policy P;
  P.EngageTicks = 4;
  P.RecoverTicks = 100;
  overload::setPolicy(P);
  overload::reset();

  // A burst shorter than EngageTicks, interrupted by a clear tick, never
  // escalates: the streak restarts.
  for (int I = 0; I != 3; ++I)
    overload::observe(8, 8);
  overload::observe(0, 8);
  for (int I = 0; I != 3; ++I)
    overload::observe(8, 8);
  EXPECT_EQ(overload::level(), overload::Level::Normal);
  // The fourth consecutive pressured tick finally engages.
  overload::observe(8, 8);
  EXPECT_EQ(overload::level(), overload::Level::NoArcs);
}

TEST(Overload, MemorySignalPressuresAnEmptyQueue) {
  LadderGuard G;
  uint64_t Base = membudget::liveBytes();
  overload::Policy P;
  P.MemHighBytes = Base + (uint64_t(1) << 20);
  P.EngageTicks = 2;
  P.RecoverTicks = 2;
  overload::setPolicy(P);
  overload::reset();

  // Below the threshold an empty queue is clear.
  for (int I = 0; I != 10; ++I)
    overload::observe(0, 8);
  EXPECT_EQ(overload::level(), overload::Level::Normal);

  // Push modeled live bytes over the threshold: the memory signal alone
  // escalates even with an empty queue.
  membudget::addLive(int64_t(2) << 20);
  for (int I = 0; I != 2; ++I)
    overload::observe(0, 8);
  EXPECT_EQ(overload::level(), overload::Level::NoArcs);

  // Releasing the bytes clears the signal and the ladder recovers.
  membudget::addLive(-(int64_t(2) << 20));
  for (int I = 0; I != 2; ++I)
    overload::observe(0, 8);
  EXPECT_EQ(overload::level(), overload::Level::Normal);
}

//===----------------------------------------------------------------------===//
// Modeled-byte accounting
//===----------------------------------------------------------------------===//

TEST(MemoryBudget, ModeledSizesArePlatformIndependentConstants) {
  EXPECT_EQ(membudget::instanceBytes(0), 64u);
  EXPECT_EQ(membudget::instanceBytes(3), 64u + 3 * 16u);
  EXPECT_EQ(membudget::stringBytes(0), 64u);
  EXPECT_EQ(membudget::stringBytes(100), 164u);
  EXPECT_EQ(membudget::arrayBytes(10), 64u + 10 * 16u);
  EXPECT_EQ(membudget::closureBytes(2), 64u + 2 * 48u);
}

TEST(MemoryBudget, LiveTallyAndWatermark) {
  uint64_t Before = membudget::liveBytes();
  membudget::addLive(4096);
  EXPECT_EQ(membudget::liveBytes(), Before + 4096);
  EXPECT_GE(membudget::highWatermark(), Before + 4096);
  membudget::addLive(-4096);
  EXPECT_EQ(membudget::liveBytes(), Before);
  // The watermark remembers the peak after the bytes are released.
  EXPECT_GE(membudget::highWatermark(), Before + 4096);
  membudget::resetWatermark();
  EXPECT_EQ(membudget::highWatermark(), membudget::liveBytes());
}

TEST(MemoryBudget, MaxBytesFromEnv) {
  ::setenv("SELSPEC_MAX_BYTES", "123456", 1);
  EXPECT_EQ(membudget::maxBytesFromEnv(999), 123456u);
  ::setenv("SELSPEC_MAX_BYTES", "not-a-number", 1);
  EXPECT_EQ(membudget::maxBytesFromEnv(999), 999u);
  ::setenv("SELSPEC_MAX_BYTES", "", 1);
  EXPECT_EQ(membudget::maxBytesFromEnv(999), 999u);
  ::unsetenv("SELSPEC_MAX_BYTES");
  EXPECT_EQ(membudget::maxBytesFromEnv(999), 999u);
}

//===----------------------------------------------------------------------===//
// Crash quarantine
//===----------------------------------------------------------------------===//

TEST(Quarantine, OnlyGuardAndInternalKindsQuarantine) {
  // Guards + violations: a repeat offender here is a poison input (or an
  // interpreter bug) worth isolating.
  EXPECT_TRUE(CrashQuarantine::quarantines(TrapKind::NodeBudgetExceeded));
  EXPECT_TRUE(CrashQuarantine::quarantines(TrapKind::RecursionLimitExceeded));
  EXPECT_TRUE(CrashQuarantine::quarantines(TrapKind::HeapLimitExceeded));
  EXPECT_TRUE(CrashQuarantine::quarantines(TrapKind::MemoryBudgetExceeded));
  EXPECT_TRUE(CrashQuarantine::quarantines(TrapKind::BindingViolation));
  EXPECT_TRUE(CrashQuarantine::quarantines(TrapKind::InternalError));
  // Program errors are the Mica program's own well-defined behavior.
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::None));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::TypeError));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::NoApplicableMethod));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::AmbiguousDispatch));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::IndexOutOfBounds));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::DivisionByZero));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::UndefinedSlot));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::ArityMismatch));
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::UserAbort));
  // Deadline traps indicate load, not a poison input: under overload they
  // would quarantine every tenant.
  EXPECT_FALSE(CrashQuarantine::quarantines(TrapKind::DeadlineExceeded));
}

TEST(Quarantine, SecondOffenseQuarantinesExactlyOnce) {
  CrashQuarantine Q;
  EXPECT_FALSE(Q.recordTrap("a.mica", TrapKind::MemoryBudgetExceeded));
  EXPECT_FALSE(Q.isQuarantined("a.mica")) << "first trap is forgiven";
  EXPECT_TRUE(Q.recordTrap("a.mica", TrapKind::MemoryBudgetExceeded))
      << "the repeat offense newly quarantines";
  EXPECT_TRUE(Q.isQuarantined("a.mica"));
  EXPECT_FALSE(Q.recordTrap("a.mica", TrapKind::MemoryBudgetExceeded))
      << "recordTrap reports the transition only once";
  EXPECT_EQ(Q.numQuarantined(), 1u);
  EXPECT_FALSE(Q.isQuarantined("b.mica"));
}

TEST(Quarantine, DistinctKindsDoNotAccumulateTogether) {
  // Fingerprints separate trap kinds: one node-budget trap plus one
  // heap-limit trap is two first offenses, not a repeat.
  EXPECT_NE(
      CrashQuarantine::fingerprint("a.mica", TrapKind::NodeBudgetExceeded),
      CrashQuarantine::fingerprint("a.mica", TrapKind::HeapLimitExceeded));
  EXPECT_NE(
      CrashQuarantine::fingerprint("a.mica", TrapKind::NodeBudgetExceeded),
      CrashQuarantine::fingerprint("b.mica", TrapKind::NodeBudgetExceeded));
  EXPECT_EQ(
      CrashQuarantine::fingerprint("a.mica", TrapKind::NodeBudgetExceeded),
      CrashQuarantine::fingerprint("a.mica", TrapKind::NodeBudgetExceeded));

  CrashQuarantine Q;
  EXPECT_FALSE(Q.recordTrap("a.mica", TrapKind::NodeBudgetExceeded));
  EXPECT_FALSE(Q.recordTrap("a.mica", TrapKind::HeapLimitExceeded));
  EXPECT_FALSE(Q.isQuarantined("a.mica"));
  EXPECT_TRUE(Q.recordTrap("a.mica", TrapKind::HeapLimitExceeded));
  EXPECT_TRUE(Q.isQuarantined("a.mica"));
}

TEST(Quarantine, NonQuarantiningKindsAreIgnored) {
  CrashQuarantine Q;
  for (int I = 0; I != 10; ++I)
    EXPECT_FALSE(Q.recordTrap("hot.mica", TrapKind::DeadlineExceeded));
  for (int I = 0; I != 10; ++I)
    EXPECT_FALSE(Q.recordTrap("hot.mica", TrapKind::TypeError));
  EXPECT_FALSE(Q.isQuarantined("hot.mica"));
  EXPECT_EQ(Q.numQuarantined(), 0u);
}

TEST(Quarantine, ThresholdIsConfigurable) {
  CrashQuarantine::Options O;
  O.Threshold = 1;
  CrashQuarantine Q(O);
  EXPECT_TRUE(Q.recordTrap("a.mica", TrapKind::InternalError))
      << "threshold 1 quarantines on the first offense";
  EXPECT_TRUE(Q.isQuarantined("a.mica"));
}

//===----------------------------------------------------------------------===//
// Failpoint configuration diagnostics
//===----------------------------------------------------------------------===//

TEST(FailPointConfig, UnknownSiteListsTheValidCatalog) {
  std::string Err;
  EXPECT_FALSE(failpoint::configure("definitely-not-a-site=fail", Err));
  EXPECT_NE(Err.find("definitely-not-a-site"), std::string::npos)
      << "diagnostic names the offending site: " << Err;
  EXPECT_NE(Err.find("valid sites"), std::string::npos) << Err;
  for (const char *Name : failpoint::allNames())
    EXPECT_NE(Err.find(Name), std::string::npos)
        << "diagnostic lists every valid site; missing " << Name;
  EXPECT_FALSE(failpoint::anyArmed())
      << "a rejected spec must not leave sites armed";
  failpoint::disarmAll();
}

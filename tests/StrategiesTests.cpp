//===- tests/StrategiesTests.cpp - Table 1 configuration plans -------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "specialize/Strategies.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

const char *ShapesSource = R"(
  class Shape;
  class Circle isa Shape;
  class Square isa Shape;
  class Triangle isa Shape;
  method area(s@Circle) { 1; }
  method area(s@Square) { 2; }
  method area(s@Triangle) { 3; }
  method describe(s@Shape) { area(s); }
  method touches(a@Shape, b@Shape) { area(a) + area(b); }
  method main(n@Int) { n; }
)";

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ApplicableClassesAnalysis> AC;
  std::unique_ptr<PassThroughAnalysis> PT;

  MethodId method(const std::string &Label) const {
    for (unsigned MI = 0; MI != P->numMethods(); ++MI)
      if (P->methodLabel(MethodId(MI)) == Label)
        return MethodId(MI);
    ADD_FAILURE() << "no method " << Label;
    return MethodId();
  }
};

Built build() {
  Built B;
  B.P = buildProgram({ShapesSource});
  if (B.P) {
    B.AC = std::make_unique<ApplicableClassesAnalysis>(*B.P);
    B.PT = std::make_unique<PassThroughAnalysis>(*B.P);
  }
  return B;
}

} // namespace

TEST(Strategies, ConfigNames) {
  EXPECT_STREQ(configName(Config::Base), "Base");
  EXPECT_STREQ(configName(Config::Cust), "Cust");
  EXPECT_STREQ(configName(Config::CustMM), "Cust-MM");
  EXPECT_STREQ(configName(Config::CHA), "CHA");
  EXPECT_STREQ(configName(Config::Selective), "Selective");
}

TEST(Strategies, BaseOneGeneralVersionPerMethod) {
  Built B = build();
  ASSERT_TRUE(B.P);
  SpecializationPlan Plan =
      makePlan(Config::Base, *B.P, *B.AC, *B.PT, nullptr);
  EXPECT_FALSE(Plan.UseCHA);
  for (unsigned MI = 0; MI != B.P->numMethods(); ++MI) {
    if (B.P->method(MethodId(MI)).isBuiltin())
      continue;
    ASSERT_EQ(Plan.VersionsByMethod[MI].size(), 1u);
    EXPECT_TRUE(tupleEquals(Plan.VersionsByMethod[MI][0],
                            B.AC->of(MethodId(MI))));
  }
  EXPECT_EQ(Plan.totalVersions(), B.P->numUserMethods());
}

TEST(Strategies, CHASameVersionsButUsesHierarchy) {
  Built B = build();
  ASSERT_TRUE(B.P);
  SpecializationPlan Plan =
      makePlan(Config::CHA, *B.P, *B.AC, *B.PT, nullptr);
  EXPECT_TRUE(Plan.UseCHA);
  EXPECT_EQ(Plan.totalVersions(), B.P->numUserMethods());
}

TEST(Strategies, CustOneVersionPerReceiverClass) {
  Built B = build();
  ASSERT_TRUE(B.P);
  SpecializationPlan Plan =
      makePlan(Config::Cust, *B.P, *B.AC, *B.PT, nullptr);

  // describe(Shape) applies to 4 receiver classes -> 4 versions, each
  // with a singleton receiver set.
  MethodId Describe = B.method("describe(Shape)");
  const auto &Versions = Plan.VersionsByMethod[Describe.value()];
  ASSERT_EQ(Versions.size(), 4u);
  for (const SpecTuple &T : Versions)
    EXPECT_EQ(T[0].count(), 1u);

  // area(Circle) applies only to Circle -> 1 version.
  EXPECT_EQ(Plan.VersionsByMethod[B.method("area(Circle)").value()].size(),
            1u);

  // touches customizes only the receiver: 4 versions, arg2 unrestricted.
  MethodId Touches = B.method("touches(Shape,Shape)");
  const auto &TV = Plan.VersionsByMethod[Touches.value()];
  ASSERT_EQ(TV.size(), 4u);
  for (const SpecTuple &T : TV) {
    EXPECT_EQ(T[0].count(), 1u);
    EXPECT_EQ(T[1], B.AC->of(Touches)[1]);
  }
}

TEST(Strategies, CustMMCustomizesAllDispatchedPositions) {
  Built B = build();
  ASSERT_TRUE(B.P);
  SpecializationPlan Plan =
      makePlan(Config::CustMM, *B.P, *B.AC, *B.PT, nullptr);

  // touches' generic dispatches on both positions: 4x4 = 16 versions.
  MethodId Touches = B.method("touches(Shape,Shape)");
  const auto &TV = Plan.VersionsByMethod[Touches.value()];
  ASSERT_EQ(TV.size(), 16u);
  for (const SpecTuple &T : TV) {
    EXPECT_EQ(T[0].count(), 1u);
    EXPECT_EQ(T[1].count(), 1u);
  }

  // Cust-MM produces at least as many versions as Cust (the paper's code
  // explosion).
  SpecializationPlan CustPlan =
      makePlan(Config::Cust, *B.P, *B.AC, *B.PT, nullptr);
  EXPECT_GE(Plan.totalVersions(), CustPlan.totalVersions());
}

TEST(Strategies, SelectiveKeepsGeneralVersionFirst) {
  Built B = build();
  ASSERT_TRUE(B.P);
  // Profile: describe's area(s) site is hot and splits across classes.
  CallGraph CG;
  MethodId Describe = B.method("describe(Shape)");
  Symbol AreaSym = B.P->Syms.find("area");
  CallSiteId AreaSite;
  for (unsigned I = 0; I != B.P->numCallSites(); ++I) {
    const CallSiteInfo &Site = B.P->callSite(CallSiteId(I));
    if (Site.Owner == Describe && Site.Send->GenericName == AreaSym)
      AreaSite = Site.Id;
  }
  ASSERT_TRUE(AreaSite.isValid());
  CG.addHits(AreaSite, Describe, B.method("area(Circle)"), 50000);

  SpecializationPlan Plan =
      makePlan(Config::Selective, *B.P, *B.AC, *B.PT, &CG);
  EXPECT_TRUE(Plan.UseCHA);
  const auto &DV = Plan.VersionsByMethod[Describe.value()];
  ASSERT_EQ(DV.size(), 2u);
  EXPECT_TRUE(tupleEquals(DV[0], B.AC->of(Describe)))
      << "general version kept at index 0";
  // The specialized version restricts the receiver to Circle.
  ClassId Circle = B.P->Classes.lookup(B.P->Syms.find("Circle"));
  EXPECT_EQ(DV[1][0].getSingleElement(), Circle);

  // Selective is far smaller than Cust here.
  SpecializationPlan CustPlan =
      makePlan(Config::Cust, *B.P, *B.AC, *B.PT, nullptr);
  EXPECT_LT(Plan.totalVersions(), CustPlan.totalVersions());
}

TEST(Strategies, SelectiveWithEmptyProfileEqualsCHA) {
  Built B = build();
  ASSERT_TRUE(B.P);
  CallGraph Empty;
  SpecializationPlan Plan =
      makePlan(Config::Selective, *B.P, *B.AC, *B.PT, &Empty);
  EXPECT_EQ(Plan.totalVersions(), B.P->numUserMethods());
}

//===- tests/TrapTests.cpp - Structured runtime failure model ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// Every TrapKind, the resource guards, profile-database robustness, and the
// Selective -> CHA degradation on missing/stale profiles.
//
//===----------------------------------------------------------------------===//

#include "interp/RuntimeTrap.h"

#include "TestUtil.h"
#include "profile/ProfileDb.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Runs `main(Input)` under Base with \p Limits and returns the trap
/// (Kind == None when the run completed).
RuntimeTrap runForTrap(const std::string &Source, int64_t Input = 0,
                       ResourceLimits Limits = {}) {
  std::unique_ptr<Program> P = buildProgram({Source});
  if (!P)
    return {};
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  RunOptions Opts;
  Opts.Limits = Limits;
  Interpreter I(*CP, Opts);
  I.callMain(Input);
  return I.trap();
}

void expectTrap(const std::string &Source, TrapKind Kind,
                const std::string &MessageNeedle, int64_t Input = 0,
                ResourceLimits Limits = {}) {
  RuntimeTrap T = runForTrap(Source, Input, Limits);
  EXPECT_EQ(T.Kind, Kind) << "trap: " << T.render();
  EXPECT_NE(T.Message.find(MessageNeedle), std::string::npos)
      << "message: " << T.Message;
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream OS(Path);
  ASSERT_TRUE(OS.good());
  OS << Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// One test per trap kind.
//===----------------------------------------------------------------------===//

TEST(Trap, TypeErrorNonBooleanCondition) {
  expectTrap("method main(n@Int) { if (n) { 1; } }", TrapKind::TypeError,
             "not a boolean", 5);
}

TEST(Trap, TypeErrorCallingNonClosure) {
  expectTrap("method main(n@Int) { let f := 5; f(1); }", TrapKind::TypeError,
             "not a closure");
}

TEST(Trap, NoApplicableMethod) {
  expectTrap("method main(n@Int) { size(5); }", TrapKind::NoApplicableMethod,
             "not understood");
}

TEST(Trap, AmbiguousDispatch) {
  expectTrap(R"(
    class A; class B; class C isa A, B;
    method f(x@A) { 1; }
    method f(x@B) { 2; }
    method main(n@Int) { f(new C); }
  )",
             TrapKind::AmbiguousDispatch, "ambiguous");
}

TEST(Trap, IndexOutOfBounds) {
  expectTrap("method main(n@Int) { at(array(2), 5); }",
             TrapKind::IndexOutOfBounds, "out of bounds");
}

TEST(Trap, DivisionByZero) {
  expectTrap("method main(n@Int) { n / 0; }", TrapKind::DivisionByZero,
             "division by zero", 7);
  expectTrap("method main(n@Int) { n % 0; }", TrapKind::DivisionByZero,
             "by zero", 7);
}

TEST(Trap, UndefinedSlot) {
  expectTrap(R"(
    class A { slot x; }
    class B;
    method get(o) { o.x; }
    method main(n@Int) { get(new B); }
  )",
             TrapKind::UndefinedSlot, "slot");
}

TEST(Trap, ArityMismatch) {
  expectTrap("method main(n@Int) { let f := fn(a) { a; }; f(1, 2); }",
             TrapKind::ArityMismatch, "argument");
}

TEST(Trap, UserAbort) {
  RuntimeTrap T =
      runForTrap("method main(n@Int) { abort(\"bye\"); }");
  EXPECT_EQ(T.Kind, TrapKind::UserAbort);
  EXPECT_NE(T.Message.find("bye"), std::string::npos);
}

TEST(Trap, NodeBudgetExceeded) {
  ResourceLimits L;
  L.MaxNodes = 1000;
  expectTrap("method main(n@Int) { while (true) { n; } }",
             TrapKind::NodeBudgetExceeded, "node budget", 0, L);
}

TEST(Trap, HeapLimitExceeded) {
  ResourceLimits L;
  L.MaxObjects = 100;
  expectTrap("method main(n@Int) { while (true) { array(4); } }",
             TrapKind::HeapLimitExceeded, "heap", 0, L);
}

TEST(Trap, MemoryBudgetExceeded) {
  ResourceLimits L;
  L.MaxBytes = 4096;
  expectTrap("method main(n@Int) { while (true) { array(4); } }",
             TrapKind::MemoryBudgetExceeded, "memory budget", 0, L);
}

// The byte budget is checked with the incoming allocation's exact size,
// so one huge array traps immediately — an object-count limit would let
// it through (it is a single object).
TEST(Trap, MemoryBudgetCatchesSingleHugeAllocation) {
  ResourceLimits L;
  L.MaxBytes = 65536;
  L.MaxObjects = 100; // would permit it: it is one object
  expectTrap("method main(n@Int) { array(1000000); }",
             TrapKind::MemoryBudgetExceeded, "memory budget", 0, L);
}

//===----------------------------------------------------------------------===//
// The recursion guard: the headline robustness property.  A ten-million
// deep recursion must trap at the configured depth, in every build mode
// (Debug+ASan included), instead of overflowing the native stack.
//===----------------------------------------------------------------------===//

TEST(Trap, DeepRecursionTrapsInsteadOfNativeOverflow) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method f(n@Int) { if (n <= 0) { 0; } else { f(n - 1); } }
    method main(n@Int) { f(n); }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  Interpreter I(*CP);
  EXPECT_FALSE(I.callMain(10000000));
  const RuntimeTrap &T = I.trap();
  EXPECT_EQ(T.Kind, TrapKind::RecursionLimitExceeded) << T.render();
  // Default MaxDepth is 800; in builds whose native frames outgrow it
  // (sanitizers), the native-stack backstop fires earlier.  Either way
  // the kind is RecursionLimitExceeded and the depth never exceeds 800.
  EXPECT_LE(I.stats().PeakDepth, ResourceLimits().MaxDepth);
  EXPECT_GT(I.stats().PeakDepth, 100u);
  // Backtrace is capped with an elision marker, innermost frame first.
  EXPECT_EQ(T.Backtrace.size(), RuntimeTrap::MaxBacktraceFrames);
  EXPECT_GT(T.FramesElided, 0u);
  EXPECT_NE(T.Backtrace.front().find("f(Int)"), std::string::npos);
  std::string Rendered = T.render();
  EXPECT_NE(Rendered.find("in f(Int)"), std::string::npos);
  EXPECT_NE(Rendered.find("more frame(s)"), std::string::npos);
}

TEST(Trap, RecursionLimitIsConfigurable) {
  ResourceLimits L;
  L.MaxDepth = 32;
  RuntimeTrap T = runForTrap(R"(
    method f(n@Int) { if (n <= 0) { 0; } else { f(n - 1); } }
    method main(n@Int) { f(n); }
  )",
                             1000000, L);
  EXPECT_EQ(T.Kind, TrapKind::RecursionLimitExceeded);
  // A run that fits under the limit completes.
  T = runForTrap(R"(
    method f(n@Int) { if (n <= 0) { 0; } else { f(n - 1); } }
    method main(n@Int) { f(n); }
  )",
                 20, L);
  EXPECT_EQ(T.Kind, TrapKind::None) << T.render();
}

TEST(Trap, DeepClosureRecursionAlsoGuarded) {
  RuntimeTrap T = runForTrap(R"(
    method main(n@Int) {
      let f := nil;
      f := fn(k) { if (k <= 0) { 0; } else { f(k - 1); } };
      f(n);
    }
  )",
                             10000000);
  EXPECT_EQ(T.Kind, TrapKind::RecursionLimitExceeded) << T.render();
}

//===----------------------------------------------------------------------===//
// Trap metadata: source locations, first-failure-wins, exit codes.
//===----------------------------------------------------------------------===//

TEST(Trap, CarriesSourceLocation) {
  RuntimeTrap T = runForTrap("method main(n@Int) {\n  n / 0;\n}", 1);
  EXPECT_EQ(T.Kind, TrapKind::DivisionByZero);
  EXPECT_TRUE(T.Loc.isValid());
  EXPECT_EQ(T.Loc.Line, 2u);
  EXPECT_NE(T.render().find("at line 2"), std::string::npos);
}

TEST(Trap, BacktraceNamesCallChain) {
  // Inlining collapses Mica frames (as native inlining would), so compile
  // with it off to observe the full chain.
  std::unique_ptr<Program> P = buildProgram({R"(
    method inner(x@Int) { x / 0; }
    method outer(x@Int) { inner(x); }
    method main(n@Int) { outer(n); }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::Base, nullptr, {}, NoInline);
  Interpreter I(*CP);
  EXPECT_FALSE(I.callMain(3));
  const RuntimeTrap &T = I.trap();
  ASSERT_EQ(T.Kind, TrapKind::DivisionByZero);
  ASSERT_GE(T.Backtrace.size(), 3u);
  EXPECT_NE(T.Backtrace[0].find("inner(Int)"), std::string::npos);
  EXPECT_NE(T.Backtrace[1].find("outer(Int)"), std::string::npos);
  EXPECT_NE(T.Backtrace[2].find("main(Int)"), std::string::npos);
}

TEST(Trap, ExitCodesAreStable) {
  EXPECT_EQ(trapExitCode(TrapKind::None), 0);
  EXPECT_EQ(trapExitCode(TrapKind::TypeError), 10);
  EXPECT_EQ(trapExitCode(TrapKind::NoApplicableMethod), 11);
  EXPECT_EQ(trapExitCode(TrapKind::AmbiguousDispatch), 12);
  EXPECT_EQ(trapExitCode(TrapKind::IndexOutOfBounds), 13);
  EXPECT_EQ(trapExitCode(TrapKind::DivisionByZero), 14);
  EXPECT_EQ(trapExitCode(TrapKind::UndefinedSlot), 15);
  EXPECT_EQ(trapExitCode(TrapKind::ArityMismatch), 16);
  EXPECT_EQ(trapExitCode(TrapKind::UserAbort), 17);
  EXPECT_EQ(trapExitCode(TrapKind::NodeBudgetExceeded), 20);
  EXPECT_EQ(trapExitCode(TrapKind::RecursionLimitExceeded), 21);
  EXPECT_EQ(trapExitCode(TrapKind::HeapLimitExceeded), 22);
  EXPECT_EQ(trapExitCode(TrapKind::DeadlineExceeded), 23);
  EXPECT_EQ(trapExitCode(TrapKind::MemoryBudgetExceeded), 24);
  EXPECT_EQ(trapExitCode(TrapKind::BindingViolation), 70);
  EXPECT_EQ(trapExitCode(TrapKind::InternalError), 70);
}

TEST(Trap, KindNamesAreStable) {
  EXPECT_STREQ(trapKindName(TrapKind::TypeError), "type-error");
  EXPECT_STREQ(trapKindName(TrapKind::RecursionLimitExceeded),
               "recursion-limit-exceeded");
  EXPECT_STREQ(trapKindName(TrapKind::DeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(trapKindName(TrapKind::MemoryBudgetExceeded),
               "memory-budget-exceeded");
}

TEST(Trap, ExitCodesRoundTripThroughKind) {
  // Supervisors (micad) classify workers by exit code; EVERY trap kind
  // must survive the round trip.  BindingViolation shares 70 with
  // InternalError on purpose (both are "the implementation is wrong")
  // and collapses to InternalError on the way back.
  const TrapKind AllKinds[] = {
      TrapKind::TypeError,        TrapKind::NoApplicableMethod,
      TrapKind::AmbiguousDispatch, TrapKind::IndexOutOfBounds,
      TrapKind::DivisionByZero,   TrapKind::UndefinedSlot,
      TrapKind::ArityMismatch,    TrapKind::UserAbort,
      TrapKind::NodeBudgetExceeded, TrapKind::RecursionLimitExceeded,
      TrapKind::HeapLimitExceeded, TrapKind::DeadlineExceeded,
      TrapKind::MemoryBudgetExceeded, TrapKind::BindingViolation,
      TrapKind::InternalError,
  };
  for (TrapKind K : AllKinds) {
    TrapKind Back = trapKindForExitCode(trapExitCode(K));
    if (K == TrapKind::BindingViolation)
      EXPECT_EQ(Back, TrapKind::InternalError);
    else
      EXPECT_EQ(Back, K) << "kind " << trapKindName(K);
  }
  // The whole 8-bit exit-code space: every code that classifies as a trap
  // maps back to the same code, and the trap codes are exactly the
  // documented set — program errors 10-17, resource guards 20-24,
  // internal 70.  Everything else (success, diagnostics, usage, signals)
  // is None.
  for (int Code = 0; Code != 256; ++Code) {
    TrapKind K = trapKindForExitCode(Code);
    bool IsTrapCode =
        (Code >= 10 && Code <= 17) || (Code >= 20 && Code <= 24) || Code == 70;
    EXPECT_EQ(K != TrapKind::None, IsTrapCode) << "exit code " << Code;
    if (K != TrapKind::None)
      EXPECT_EQ(trapExitCode(K), Code) << "exit code " << Code;
  }
}

//===----------------------------------------------------------------------===//
// Profile database robustness: line-numbered rejection of malformed input,
// truncation detection, and validation against a resolved program.
//===----------------------------------------------------------------------===//

namespace {

const char *DiamondSrc = R"(
    class A; class B isa A;
    method f(x@A) { 1; }
    method f(x@B) { 2; }
    method main(n@Int) { f(new B); f(new A); }
)";

/// Dispatch here depends on a runtime value, so sites stay dynamic and a
/// training run records real arcs (statically-bound sites record none).
const char *PolySrc = R"(
    class A; class B isa A;
    method f(x@A) { 1; }
    method f(x@B) { 2; }
    method pick(n@Int) { if (n % 2 == 0) { new A; } else { new B; } }
    method main(n@Int) {
      let i := 0;
      while (i < n) { f(pick(i)); i := i + 1; }
    }
)";

/// A profile with real arcs for PolySrc, obtained from a training run.
std::string collectedProfileText() {
  std::unique_ptr<Program> P = buildProgram({PolySrc});
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CallGraph CG;
  runMain(*CP, 6, nullptr, &CG);
  EXPECT_FALSE(CG.empty());
  ProfileDb Db;
  Db.forProgram("diamond").merge(CG);
  return Db.serialize();
}

} // namespace

TEST(ProfileRobustness, RoundTrip) {
  std::string Text = collectedProfileText();
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_TRUE(Db.deserialize(Text, Diags)) << Diags.toString();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Db.hasProgram("diamond"));
  EXPECT_EQ(Db.serialize(), Text);
}

TEST(ProfileRobustness, RejectsBadHeader) {
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.deserialize("garbage\n", Diags));
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.toString().find("line 1"), std::string::npos);
  EXPECT_NE(Diags.toString().find("header"), std::string::npos);
}

TEST(ProfileRobustness, RejectsTruncation) {
  std::string Text = collectedProfileText();
  // Drop the last line: the program record now declares more arcs than
  // follow.
  size_t LastNewline = Text.rfind('\n', Text.size() - 2);
  ASSERT_NE(LastNewline, std::string::npos);
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.deserialize(Text.substr(0, LastNewline + 1), Diags));
  EXPECT_NE(Diags.toString().find("truncated"), std::string::npos);
}

TEST(ProfileRobustness, RejectsMidRecordTruncation) {
  std::string Text = collectedProfileText();
  ProfileDb Db;
  Diagnostics Diags;
  // Chop mid-line: the final arc record is malformed.
  EXPECT_FALSE(Db.deserialize(Text.substr(0, Text.size() - 4), Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ProfileRobustness, RejectsJunkRecordsWithLineNumbers) {
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.deserialize("selspec-profile v1\n"
                              "program p 1\n"
                              "arc 0 zero 1 10\n",
                              Diags));
  EXPECT_NE(Diags.toString().find("line 3"), std::string::npos);
}

TEST(ProfileRobustness, RejectsArcBeforeProgram) {
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.deserialize("selspec-profile v1\n"
                              "arc 0 0 1 10\n",
                              Diags));
  EXPECT_NE(Diags.toString().find("line 2"), std::string::npos);
}

TEST(ProfileRobustness, RejectsOverflowingNumbers) {
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.deserialize("selspec-profile v1\n"
                              "program p 1\n"
                              "arc 99999999999999999999999 0 1 10\n",
                              Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ProfileRobustness, ValidateDropsStaleArcs) {
  std::unique_ptr<Program> P = buildProgram({DiamondSrc});
  ASSERT_TRUE(P);
  ProfileDb Db;
  Diagnostics Diags;
  // Site/method ids far beyond anything the program defines: the shape a
  // profile recorded against a different (or newer) build would have.
  ASSERT_TRUE(Db.deserialize("selspec-profile v1\n"
                             "program stale 2\n"
                             "arc 9999 0 1 10\n"
                             "arc 0 9999 9999 10\n",
                             Diags));
  EXPECT_EQ(Db.validate("stale", *P, Diags), 2u);
  EXPECT_TRUE(Db.forProgram("stale").empty());
  EXPECT_NE(Diags.toString().find("warning"), std::string::npos);
}

TEST(ProfileRobustness, ValidateKeepsConsistentArcs) {
  std::unique_ptr<Program> P = buildProgram({PolySrc});
  ASSERT_TRUE(P);
  std::string Text = collectedProfileText();
  ProfileDb Db;
  Diagnostics Diags;
  ASSERT_TRUE(Db.deserialize(Text, Diags));
  EXPECT_EQ(Db.validate("diamond", *P, Diags), 0u);
  EXPECT_FALSE(Db.forProgram("diamond").empty());
}

TEST(ProfileRobustness, FileErrorsReportPathAndReason) {
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.loadFromFile("/nonexistent/profile.db", Diags));
  std::string Text = Diags.toString();
  EXPECT_NE(Text.find("/nonexistent/profile.db"), std::string::npos);
  EXPECT_NE(Text.find("No such file"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Degradation: Selective without a usable profile must warn and behave
// exactly like CHA instead of asserting.
//===----------------------------------------------------------------------===//

TEST(Degradation, SelectiveWithoutProfileMatchesCHA) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({DiamondSrc}, Err, false);
  ASSERT_TRUE(W) << Err;

  std::optional<ConfigResult> CHA =
      W->runConfig(Config::CHA, 5, Err);
  ASSERT_TRUE(CHA) << Err;
  // No profile was collected: Selective degrades.
  std::optional<ConfigResult> Sel =
      W->runConfig(Config::Selective, 5, Err);
  ASSERT_TRUE(Sel) << Err;

  EXPECT_EQ(Sel->Run.totalDispatches(), CHA->Run.totalDispatches());
  EXPECT_EQ(Sel->Run.Cycles, CHA->Run.Cycles);
  EXPECT_EQ(Sel->Output, CHA->Output);
  EXPECT_EQ(Sel->CompiledRoutines, CHA->CompiledRoutines);
  EXPECT_NE(W->diagnostics().toString().find("degrading to CHA"),
            std::string::npos);
}

TEST(Degradation, StaleProfileDbFallsBackToCHA) {
  // A parseable profile whose arcs are all stale: validation drops every
  // arc, leaving Selective with an empty profile -> CHA behavior.
  std::string Path = tempPath("stale_profile.db");
  writeFile(Path, "selspec-profile v1\n"
                  "program prog 1\n"
                  "arc 9999 9999 9999 10\n");

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({DiamondSrc}, Err, false);
  ASSERT_TRUE(W) << Err;
  Diagnostics Diags;
  EXPECT_TRUE(W->loadProfileDb(Path, "prog", Diags));
  EXPECT_FALSE(W->hasProfile());
  EXPECT_NE(Diags.toString().find("warning"), std::string::npos);

  std::optional<ConfigResult> CHA = W->runConfig(Config::CHA, 5, Err);
  std::optional<ConfigResult> Sel = W->runConfig(Config::Selective, 5, Err);
  ASSERT_TRUE(CHA && Sel) << Err;
  EXPECT_EQ(Sel->Run.totalDispatches(), CHA->Run.totalDispatches());
  EXPECT_EQ(Sel->Output, CHA->Output);
  std::remove(Path.c_str());
}

TEST(Degradation, CorruptProfileDbFailsLoudly) {
  std::string Path = tempPath("corrupt_profile.db");
  writeFile(Path, "selspec-profile v1\nprogram p 3\narc \xff\xfe junk\n");
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({DiamondSrc}, Err, false);
  ASSERT_TRUE(W) << Err;
  Diagnostics Diags;
  EXPECT_FALSE(W->loadProfileDb(Path, "p", Diags));
  EXPECT_TRUE(Diags.hasErrors());
  std::remove(Path.c_str());
}

TEST(Degradation, MissingDbKeyOnlyWarns) {
  std::string Path = tempPath("other_key.db");
  writeFile(Path, "selspec-profile v1\nprogram other 0\n");
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({DiamondSrc}, Err, false);
  ASSERT_TRUE(W) << Err;
  Diagnostics Diags;
  EXPECT_TRUE(W->loadProfileDb(Path, "mine", Diags));
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_NE(Diags.toString().find("no entry"), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Oversized dispatch tables fall back to search-based dispatch instead of
// asserting.
//===----------------------------------------------------------------------===//

TEST(Degradation, PipelineTrapSurfacesInWorkbench) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources(
      {"method main(n@Int) { n / 0; }"}, Err, false);
  ASSERT_TRUE(W) << Err;
  EXPECT_FALSE(W->runConfig(Config::Base, 1, Err));
  EXPECT_EQ(W->lastTrap().Kind, TrapKind::DivisionByZero);
  // A subsequent good run clears the trap.
  std::unique_ptr<Workbench> W2 = Workbench::fromSources(
      {"method main(n@Int) { n; }"}, Err, false);
  ASSERT_TRUE(W2) << Err;
  EXPECT_TRUE(W2->runConfig(Config::Base, 1, Err));
  EXPECT_EQ(W2->lastTrap().Kind, TrapKind::None);
}

//===----------------------------------------------------------------------===//
// Front-end guards: parser nesting depth, lexer literal overflow.  Both
// must reject with diagnostics, not crash or invoke UB.
//===----------------------------------------------------------------------===//

TEST(FrontendGuards, ParserRejectsPathologicalNesting) {
  std::string Src = "method main(n@Int) { ";
  for (int I = 0; I != 5000; ++I)
    Src += '(';
  Src += '1';
  for (int I = 0; I != 5000; ++I)
    Src += ')';
  Src += "; }";
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  EXPECT_FALSE(P->addSource(Src, Diags) && P->resolve(Diags));
  EXPECT_NE(Diags.toString().find("nesting too deep"), std::string::npos);
}

TEST(FrontendGuards, ParserRejectsDeepUnaryChains) {
  std::string Src = "method main(n@Int) { ";
  for (int I = 0; I != 5000; ++I)
    Src += '!';
  Src += "true; }";
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  EXPECT_FALSE(P->addSource(Src, Diags) && P->resolve(Diags));
  EXPECT_NE(Diags.toString().find("nesting too deep"), std::string::npos);
}

TEST(FrontendGuards, LexerRejectsOverflowingIntegerLiteral) {
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  EXPECT_FALSE(
      P->addSource("method main(n@Int) { 99999999999999999999999999; }",
                   Diags) &&
      P->resolve(Diags));
  EXPECT_NE(Diags.toString().find("integer literal too large"),
            std::string::npos);
}

//===- tests/InlinerTests.cpp - Inlining correctness edge cases ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases of body splicing: renaming against capture, return-boundary
/// rewriting, closure propagation through several inlined frames, and the
/// interaction of non-local returns with inlined iteration — all checked
/// end-to-end by comparing optimized and unoptimized executions.
///
//===----------------------------------------------------------------------===//

#include "opt/Inliner.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// The behavior oracle: a program behaves identically with inlining off
/// and on (under CHA, which inlines the most).
void expectSameBehavior(const std::string &Source, int64_t Input) {
  std::unique_ptr<Program> P1 = buildProgram({Source});
  std::unique_ptr<Program> P2 = buildProgram({Source});
  ASSERT_TRUE(P1 && P2);

  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  NoInline.EnableClosureInlining = false;
  std::unique_ptr<CompiledProgram> Plain =
      compileProgram(*P1, Config::CHA, nullptr, {}, NoInline);
  std::unique_ptr<CompiledProgram> Inlined =
      compileProgram(*P2, Config::CHA);

  std::string Out1, Out2;
  runMain(*Plain, Input, &Out1);
  runMain(*Inlined, Input, &Out2);
  EXPECT_EQ(Out1, Out2) << "inlining changed behavior";
}

} // namespace

TEST(Inliner, CalleeLocalsDoNotCaptureCallerNames) {
  // Both caller and callee use `i` and `total`; the callee's must be
  // renamed or the caller's loop would be corrupted.
  expectSameBehavior(R"(
    method sumTo(n@Int) {
      let total := 0;
      let i := 0;
      while (i < n) { total := total + i; i := i + 1; }
      total;
    }
    method main(n@Int) {
      let total := 100;
      let i := 7;
      print(sumTo(n) + total + i);
      print(i);
    }
  )",
                     10);
}

TEST(Inliner, ClosureFreeVariablesResolveAtCallSite) {
  // The closure references caller locals; when propagated into the
  // inlined `apply` body (whose formals are renamed), those references
  // must still reach the caller's bindings.
  expectSameBehavior(R"(
    method apply(f, x@Int) {
      let k := 1000;    // a callee local that must not capture anything
      f(x) + k;
    }
    method main(n@Int) {
      let base := 5;
      print(apply(fn(v) { v * base; }, n));
      print(base);
    }
  )",
                     6);
}

TEST(Inliner, NestedInliningThreeDeep) {
  expectSameBehavior(R"(
    method l3(x@Int) { x + 1; }
    method l2(x@Int) { l3(x) * 2; }
    method l1(x@Int) { l2(x) + 3; }
    method main(n@Int) { print(l1(n)); }
  )",
                     10);
}

TEST(Inliner, ReturnInsideInlinedCalleeIsLocal) {
  // `classify`'s early returns must exit only classify, not main.
  expectSameBehavior(R"(
    method classify(x@Int) {
      if (x < 0) { return 0 - 1; }
      if (x == 0) { return 0; }
      1;
    }
    method main(n@Int) {
      print(classify(0 - n));
      print(classify(0));
      print(classify(n));
      print("after");
    }
  )",
                     5);
}

TEST(Inliner, NonLocalReturnThroughTwoInlinedFrames) {
  // find -> each -> closure; the closure's return unwinds both inlined
  // frames back to find's caller-visible result.
  expectSameBehavior(R"(
    method each(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method eachPair(n@Int, body2) {
      each(n, fn(i) { each(n, fn(j) { body2(i, j); }); });
    }
    method findPair(n@Int, want@Int) {
      eachPair(n, fn(a, b) {
        if (a * 10 + b == want) { return a * 100 + b; }
      });
      0 - 1;
    }
    method main(n@Int) {
      print(findPair(n, 23));
      print(findPair(n, 99));
      print("done");
    }
  )",
                     8);
}

TEST(Inliner, ClosurePropagatedThroughHelperChain) {
  expectSameBehavior(R"(
    method reallyDo(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method doIt(n@Int, body) { reallyDo(n, body); }
    method main(n@Int) {
      let total := 0;
      doIt(n, fn(i) { total := total + i * i; });
      print(total);
    }
  )",
                     12);
}

TEST(Inliner, ShadowingInsideClosureBodies) {
  expectSameBehavior(R"(
    method apply(f, x@Int) { f(x); }
    method main(n@Int) {
      let v := 3;
      // The closure's own `v` shadows the outer one.
      print(apply(fn(v) { v + 1; }, n));
      print(v);
      // And a let inside the closure shadows its parameter.
      print(apply(fn(w) { let w := 50; w; }, n));
    }
  )",
                     9);
}

TEST(Inliner, SideEffectOrderOfArgumentsPreserved) {
  expectSameBehavior(R"(
    class Counter { slot v; }
    method bump(c@Counter) { c.v := c.v + 1; c.v; }
    method pair2(a@Int, b@Int) { a * 100 + b; }
    method main(n@Int) {
      let c := new Counter { v := 0 };
      // Argument evaluation order (left to right) must survive inlining.
      print(pair2(bump(c), bump(c)));
      print(c.v);
    }
  )",
                     0);
}

TEST(Inliner, RecursiveCalleeStillCorrect) {
  expectSameBehavior(R"(
    method gcd(a@Int, b@Int) { if (b == 0) { a; } else { gcd(b, a % b); } }
    method main(n@Int) { print(gcd(252, n * 7)); }
  )",
                     15);
}

TEST(Inliner, AssignmentToFormalInsideCallee) {
  expectSameBehavior(R"(
    method clampedDouble(x@Int) {
      if (x > 100) { x := 100; }
      x * 2;
    }
    method main(n@Int) {
      let x := 7;
      print(clampedDouble(n * 50));
      print(clampedDouble(n));
      print(x);
    }
  )",
                     3);
}

TEST(Inliner, UnitRenamingProducesFreshDistinctNames) {
  // Direct unit test of the Inliner: two inlinings of the same callee
  // must not share renamed symbols or boundaries.
  std::unique_ptr<Program> P = buildProgram({R"(
    method callee(x@Int) { let y := x + 1; y; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  MethodId Callee;
  for (unsigned MI = 0; MI != P->numMethods(); ++MI)
    if (P->methodLabel(MethodId(MI)) == "callee(Int)")
      Callee = MethodId(MI);
  ASSERT_TRUE(Callee.isValid());

  Inliner In(P->Syms);
  auto MakeArgs = [] {
    std::vector<ExprPtr> Args;
    Args.push_back(std::make_unique<IntLitExpr>(1, SourceLoc()));
    return Args;
  };
  std::unique_ptr<InlinedExpr> A =
      In.inlineMethodCall(P->method(Callee), MakeArgs(), CallSiteId(),
                          SourceLoc());
  std::unique_ptr<InlinedExpr> B =
      In.inlineMethodCall(P->method(Callee), MakeArgs(), CallSiteId(),
                          SourceLoc());
  ASSERT_EQ(A->Bindings.size(), 1u);
  ASSERT_EQ(B->Bindings.size(), 1u);
  EXPECT_NE(A->Bindings[0].first, B->Bindings[0].first)
      << "renamed formals must be unique per splice";
  EXPECT_NE(A->Boundary, B->Boundary);
  // The original formal name is gone from the spliced body.
  Symbol X = P->Syms.find("x");
  EXPECT_EQ(countVarRefs(A->Body.get(), X), 0u);
}

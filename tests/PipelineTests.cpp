//===- tests/PipelineTests.cpp - End-to-end driver --------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/Report.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace selspec;
using namespace selspec::test;

namespace {

const char *CounterSource = R"(
  class Shape; class Circle isa Shape; class Square isa Shape;
  method area(s@Circle) { 6; }
  method area(s@Square) { 9; }
  method pickShape(i@Int) {
    if (i % 2 == 0) { new Circle; } else { new Square; }
  }
  method totalArea(v@Vector) {
    let total := 0;
    do(v, fn(s) { total := total + area(s); });
    total;
  }
  method main(n@Int) {
    let v := vectorNew();
    let i := 0;
    while (i < n) { add(v, pickShape(i)); i := i + 1; }
    print(totalArea(v));
  }
)";

} // namespace

TEST(Pipeline, FromSourcesAndAllConfigsAgree) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({CounterSource}, Err, /*WithStdlib=*/true);
  ASSERT_TRUE(W) << Err;
  ASSERT_TRUE(W->collectProfile(20, Err)) << Err;
  ASSERT_TRUE(W->hasProfile());

  std::string Expected = "150\n"; // 10*6 + 10*9
  for (Config C : {Config::Base, Config::Cust, Config::CustMM, Config::CHA,
                   Config::Selective}) {
    SelectiveOptions Sel;
    Sel.SpecializationThreshold = 5;
    std::optional<ConfigResult> R = W->runConfig(C, 20, Err, Sel);
    ASSERT_TRUE(R) << configName(C) << ": " << Err;
    EXPECT_EQ(R->Output, Expected) << configName(C);
    EXPECT_GT(R->CompiledRoutines, 0u);
    EXPECT_GT(R->Run.Cycles, 0u);
    EXPECT_LE(R->InvokedRoutines, R->CompiledRoutines);
  }
}

TEST(Pipeline, ProfileErrorSurfaces) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources(
      {"method main(n@Int) { abort(\"kaput\"); }"}, Err);
  ASSERT_TRUE(W) << Err;
  EXPECT_FALSE(W->collectProfile(1, Err));
  EXPECT_NE(Err.find("kaput"), std::string::npos);
}

TEST(Pipeline, ParseErrorSurfaces) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({"method main(n@Int) { ; }"}, Err);
  EXPECT_EQ(W, nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(Pipeline, MissingFileSurfaces) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles({"no_such_file.mica"}, Err);
  EXPECT_EQ(W, nullptr);
  EXPECT_NE(Err.find("no_such_file.mica"), std::string::npos);
}

TEST(Pipeline, StdlibLoads) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources(
      {"method main(n@Int) { let v := vectorNew(); add(v, 1); "
       "print(size(v)); }"},
      Err, /*WithStdlib=*/true);
  ASSERT_TRUE(W) << Err;
  std::optional<ConfigResult> R = W->runConfig(Config::Base, 0, Err);
  ASSERT_TRUE(R) << Err;
  EXPECT_EQ(R->Output, "1\n");
  EXPECT_GT(W->sourceLines(), 100u) << "stdlib lines counted";
}

TEST(Pipeline, SelectiveReducesDispatchesOnPolymorphicLoop) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({CounterSource}, Err, /*WithStdlib=*/true);
  ASSERT_TRUE(W) << Err;
  ASSERT_TRUE(W->collectProfile(60, Err)) << Err;

  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 10;
  std::optional<ConfigResult> Base = W->runConfig(Config::Base, 60, Err);
  std::optional<ConfigResult> CHA = W->runConfig(Config::CHA, 60, Err);
  std::optional<ConfigResult> Sel60 =
      W->runConfig(Config::Selective, 60, Err, Sel);
  ASSERT_TRUE(Base && CHA && Sel60) << Err;

  EXPECT_LE(CHA->Run.totalDispatches(), Base->Run.totalDispatches());
  EXPECT_LE(Sel60->Run.totalDispatches(), CHA->Run.totalDispatches());
  EXPECT_LT(Sel60->Run.Cycles, Base->Run.Cycles);
}

TEST(TextTable, FormattingHelpers) {
  EXPECT_EQ(TextTable::ratio(1.0), "1.00");
  EXPECT_EQ(TextTable::ratio(2.345), "2.35");
  EXPECT_EQ(TextTable::count(0), "0");
  EXPECT_EQ(TextTable::count(999), "999");
  EXPECT_EQ(TextTable::count(1234567), "1,234,567");
  EXPECT_EQ(TextTable::percentDelta(1.65, 1.0), "+65%");
  EXPECT_EQ(TextTable::percentDelta(0.9, 1.0), "-10%");
  EXPECT_EQ(TextTable::percentDelta(1.0, 0.0), "n/a");

  TextTable T({"Program", "Base", "Selective"});
  T.addRow({"richards", "1.00", "2.50"});
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("Program"), std::string::npos);
  EXPECT_NE(S.find("richards"), std::string::npos);
  EXPECT_NE(S.find("2.50"), std::string::npos);
}

//===- tests/SpecializerTests.cpp - Figure 4 algorithm units ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "specialize/SelectiveSpecializer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

MethodId findMethod(const Program &P, const std::string &Label) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    if (P.methodLabel(MethodId(MI)) == Label)
      return MethodId(MI);
  ADD_FAILURE() << "no method labeled " << Label;
  return MethodId();
}

/// Finds the unique call site within \p Owner whose generic is \p Generic.
CallSiteId findSite(const Program &P, MethodId Owner,
                    const std::string &Generic) {
  Symbol G = P.Syms.find(Generic);
  CallSiteId Found;
  for (unsigned I = 0; I != P.numCallSites(); ++I) {
    const CallSiteInfo &Site = P.callSite(CallSiteId(I));
    if (Site.Owner == Owner && Site.Send->GenericName == G) {
      EXPECT_FALSE(Found.isValid()) << "multiple '" << Generic << "' sites";
      Found = Site.Id;
    }
  }
  EXPECT_TRUE(Found.isValid()) << "no '" << Generic << "' site";
  return Found;
}

ClassSet namedSet(const Program &P,
                  std::initializer_list<const char *> Names) {
  ClassSet S(P.Classes.size());
  for (const char *N : Names)
    S.insert(P.Classes.lookup(P.Syms.find(N)));
  return S;
}

/// A small caller/callee pair with a polymorphic pass-through callee.
const char *CalleeSource = R"(
  class A; class B isa A; class C isa A;
  method work(x@B) { 1; }
  method work(x@C) { 2; }
  method driver(a@A) { work(a); }
  method main(n@Int) { n; }
)";

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ApplicableClassesAnalysis> AC;
  std::unique_ptr<PassThroughAnalysis> PT;
  CallGraph CG;
};

Built build(const char *Source) {
  Built B;
  B.P = buildProgram({Source});
  if (B.P) {
    B.AC = std::make_unique<ApplicableClassesAnalysis>(*B.P);
    B.PT = std::make_unique<PassThroughAnalysis>(*B.P);
  }
  return B;
}

} // namespace

TEST(Specializer, NeededInfoForArcMapsCalleeBack) {
  Built B = build(CalleeSource);
  ASSERT_TRUE(B.P);
  MethodId Driver = findMethod(*B.P, "driver(A)");
  MethodId WorkB = findMethod(*B.P, "work(B)");
  CallSiteId Site = findSite(*B.P, Driver, "work");
  B.CG.addHits(Site, Driver, WorkB, 5000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  Arc A = B.CG.arcs()[0];

  SpecTuple Needed = S.neededInfoForArc(A);
  ASSERT_EQ(Needed.size(), 1u);
  // driver's formal restricted to work(B)'s applicable classes.
  EXPECT_EQ(Needed[0], namedSet(*B.P, {"B"}));
  EXPECT_TRUE(S.isSpecializableArc(A));
}

TEST(Specializer, ArcWithoutPassThroughNotSpecializable) {
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method work(x@B) { 1; }
    method work(x@C) { 2; }
    method driver(a@A) { work(pickIt(a)); }
    method pickIt(a@A) { a; }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Driver = findMethod(*B.P, "driver(A)");
  CallSiteId Site = findSite(*B.P, Driver, "work");
  B.CG.addHits(Site, Driver, findMethod(*B.P, "work(B)"), 5000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  EXPECT_FALSE(S.isSpecializableArc(B.CG.arcs()[0]));
}

TEST(Specializer, MonomorphicSiteNotSpecializable) {
  // With a single work implementation the site statically binds under
  // CHA, so specializing the caller gains nothing.
  Built B = build(R"(
    class A; class B isa A;
    method work(x@A) { 1; }
    method driver(a@A) { work(a); }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Driver = findMethod(*B.P, "driver(A)");
  CallSiteId Site = findSite(*B.P, Driver, "work");
  B.CG.addHits(Site, Driver, findMethod(*B.P, "work(A)"), 5000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  EXPECT_FALSE(S.isSpecializableArc(B.CG.arcs()[0]));
}

TEST(Specializer, ThresholdGatesSpecialization) {
  for (uint64_t Weight : {500u, 5000u}) {
    Built B = build(CalleeSource);
    ASSERT_TRUE(B.P);
    MethodId Driver = findMethod(*B.P, "driver(A)");
    CallSiteId Site = findSite(*B.P, Driver, "work");
    B.CG.addHits(Site, Driver, findMethod(*B.P, "work(B)"), Weight);

    SelectiveOptions Opts;
    Opts.SpecializationThreshold = 1000; // the paper's default
    SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG, Opts);
    S.run();
    size_t NumVersions = S.specializations()[Driver.value()].size();
    if (Weight > 1000)
      EXPECT_EQ(NumVersions, 2u) << "general + specialized";
    else
      EXPECT_EQ(NumVersions, 1u) << "below threshold: general only";
  }
}

TEST(Specializer, CombinationCoversAllPlausibleTuples) {
  // Section 3.2's combination rule: adding <C> to {<A>, <A∩B>} yields
  // <A∩C> and <A∩B∩C> as well.  Two independent binary partitions of two
  // formals must therefore produce 3x3 = 9 versions (the paper's m4).
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method f(x@B, u@A) { 1; }
    method f(x@C, u@A) { 2; }
    method g(x@A, u@B) { 1; }
    method g(x@A, u@C) { 2; }
    method target(p@A, q@A) { f(p, q); g(p, q); }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Target = findMethod(*B.P, "target(A,A)");
  CallSiteId FSite = findSite(*B.P, Target, "f");
  CallSiteId GSite = findSite(*B.P, Target, "g");
  B.CG.addHits(FSite, Target, findMethod(*B.P, "f(B,A)"), 2000);
  B.CG.addHits(FSite, Target, findMethod(*B.P, "f(C,A)"), 2000);
  B.CG.addHits(GSite, Target, findMethod(*B.P, "g(A,B)"), 2000);
  B.CG.addHits(GSite, Target, findMethod(*B.P, "g(A,C)"), 2000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  S.run();
  const std::vector<SpecTuple> &Specs = S.specializations()[Target.value()];
  EXPECT_EQ(Specs.size(), 9u);

  // All tuples are pairwise distinct and non-empty.
  for (size_t I = 0; I != Specs.size(); ++I) {
    EXPECT_TRUE(tupleNonEmpty(Specs[I]));
    for (size_t J = I + 1; J != Specs.size(); ++J)
      EXPECT_FALSE(tupleEquals(Specs[I], Specs[J]));
  }
}

TEST(Specializer, EmptyIntersectionsDropped) {
  // Two disjoint restrictions of the same formal must not combine.
  Built B = build(CalleeSource);
  ASSERT_TRUE(B.P);
  MethodId Driver = findMethod(*B.P, "driver(A)");
  CallSiteId Site = findSite(*B.P, Driver, "work");
  B.CG.addHits(Site, Driver, findMethod(*B.P, "work(B)"), 2000);
  B.CG.addHits(Site, Driver, findMethod(*B.P, "work(C)"), 2000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  S.run();
  // general, <{B}>, <{C}> — but NOT <{B}∩{C}> = <∅>.
  EXPECT_EQ(S.specializations()[Driver.value()].size(), 3u);
}

TEST(Specializer, CascadeSpecializesStaticallyBoundCaller) {
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method work(x@B) { 1; }
    method work(x@C) { 2; }
    method mid(a@A) { work(a); }
    method top(a@A) { mid(a); }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Mid = findMethod(*B.P, "mid(A)");
  MethodId Top = findMethod(*B.P, "top(A)");
  CallSiteId WorkSite = findSite(*B.P, Mid, "work");
  CallSiteId MidSite = findSite(*B.P, Top, "mid");
  B.CG.addHits(WorkSite, Mid, findMethod(*B.P, "work(B)"), 9000);
  B.CG.addHits(MidSite, Top, Mid, 9000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  S.run();
  // mid specialized for <{B}>; the statically-bound top->mid arc cascades
  // the same specialization into top.
  EXPECT_EQ(S.specializations()[Mid.value()].size(), 2u);
  EXPECT_EQ(S.specializations()[Top.value()].size(), 2u);
  EXPECT_GE(S.stats().CascadedSpecializations, 1u);

  // Without cascading, top keeps only its general version.
  SelectiveOptions NoCascade;
  NoCascade.CascadeSpecializations = false;
  SelectiveSpecializer S2(*B.P, *B.AC, *B.PT, B.CG, NoCascade);
  S2.run();
  EXPECT_EQ(S2.specializations()[Top.value()].size(), 1u);
}

TEST(Specializer, CascadeFollowsChainsUpward) {
  // Ripples run through several statically-bound pass-through frames.
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method work(x@B) { 1; }
    method work(x@C) { 2; }
    method d1(a@A) { work(a); }
    method d2(a@A) { d1(a); }
    method d3(a@A) { d2(a); }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId D1 = findMethod(*B.P, "d1(A)");
  MethodId D2 = findMethod(*B.P, "d2(A)");
  MethodId D3 = findMethod(*B.P, "d3(A)");
  B.CG.addHits(findSite(*B.P, D1, "work"), D1,
               findMethod(*B.P, "work(B)"), 9000);
  B.CG.addHits(findSite(*B.P, D2, "d1"), D2, D1, 9000);
  B.CG.addHits(findSite(*B.P, D3, "d2"), D3, D2, 9000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  S.run();
  EXPECT_EQ(S.specializations()[D1.value()].size(), 2u);
  EXPECT_EQ(S.specializations()[D2.value()].size(), 2u);
  EXPECT_EQ(S.specializations()[D3.value()].size(), 2u);
}

TEST(Specializer, RecursiveCyclesTerminate) {
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method work(x@B) { 1; }
    method work(x@C) { 2; }
    method loopy(a@A, n@Int) {
      work(a);
      if (n > 0) { loopy(a, n - 1); }
    }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Loopy = findMethod(*B.P, "loopy(A,Int)");
  B.CG.addHits(findSite(*B.P, Loopy, "work"), Loopy,
               findMethod(*B.P, "work(B)"), 9000);
  B.CG.addHits(findSite(*B.P, Loopy, "loopy"), Loopy, Loopy, 9000);

  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG);
  S.run(); // must not loop forever
  EXPECT_GE(S.specializations()[Loopy.value()].size(), 2u);
}

TEST(Specializer, SpaceBudgetHeuristic) {
  // Section 3.4 alternative: highest-weight arcs win under a budget.
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method work(x@B) { 1; }
    method work(x@C) { 2; }
    method hot(a@A) { work(a); }
    method cold(a@A) { work(a); }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Hot = findMethod(*B.P, "hot(A)");
  MethodId Cold = findMethod(*B.P, "cold(A)");
  B.CG.addHits(findSite(*B.P, Hot, "work"), Hot,
               findMethod(*B.P, "work(B)"), 100000);
  B.CG.addHits(findSite(*B.P, Cold, "work"), Cold,
               findMethod(*B.P, "work(C)"), 10);

  SelectiveOptions Opts;
  Opts.SpaceBudgetVersions = 1;
  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG, Opts);
  S.run();
  EXPECT_EQ(S.specializations()[Hot.value()].size(), 2u)
      << "budget goes to the hottest arc";
  EXPECT_EQ(S.specializations()[Cold.value()].size(), 1u);
}

TEST(Specializer, BlowupGuardCapsVersions) {
  Built B = build(CalleeSource);
  ASSERT_TRUE(B.P);
  MethodId Driver = findMethod(*B.P, "driver(A)");
  CallSiteId Site = findSite(*B.P, Driver, "work");
  B.CG.addHits(Site, Driver, findMethod(*B.P, "work(B)"), 2000);
  B.CG.addHits(Site, Driver, findMethod(*B.P, "work(C)"), 2000);

  SelectiveOptions Opts;
  Opts.MaxVersionsPerMethod = 2;
  SelectiveSpecializer S(*B.P, *B.AC, *B.PT, B.CG, Opts);
  S.run();
  EXPECT_LE(S.specializations()[Driver.value()].size(), 2u);
  EXPECT_GE(S.stats().BlowupGuardHits, 1u);
}

TEST(Specializer, BenefitCostOrderPrefersMultiSiteWins) {
  // Under a budget of one version, the benefit/cost order must pick the
  // caller whose single specialization binds TWO hot sites over the
  // caller where it binds one slightly-hotter site.
  Built B = build(R"(
    class A; class B isa A; class C isa A;
    method w1(x@B) { 1; }
    method w1(x@C) { 2; }
    method w2(x@B) { 3; }
    method w2(x@C) { 4; }
    method double(a@A) { w1(a); w2(a); }
    // Padded so both candidates have comparable body sizes and the score
    // difference comes from the number of sites bound, not body size.
    method single(a@A) { let pad := 1 + 2 + 3 + 4; w1(a) + pad; }
    method main(n@Int) { n; }
  )");
  ASSERT_TRUE(B.P);
  MethodId Double = findMethod(*B.P, "double(A)");
  MethodId Single = findMethod(*B.P, "single(A)");
  B.CG.addHits(findSite(*B.P, Double, "w1"), Double,
               findMethod(*B.P, "w1(B)"), 3000);
  B.CG.addHits(findSite(*B.P, Double, "w2"), Double,
               findMethod(*B.P, "w2(B)"), 3000);
  B.CG.addHits(findSite(*B.P, Single, "w1"), Single,
               findMethod(*B.P, "w1(B)"), 4000);

  // Raw weight order picks `single` (hottest arc: 4000)...
  SelectiveOptions ByWeight;
  ByWeight.SpaceBudgetVersions = 1;
  SelectiveSpecializer S1(*B.P, *B.AC, *B.PT, B.CG, ByWeight);
  S1.run();
  EXPECT_EQ(S1.specializations()[Single.value()].size(), 2u);
  EXPECT_EQ(S1.specializations()[Double.value()].size(), 1u);

  // ...benefit/cost order picks `double` (6000 weight bound at once).
  SelectiveOptions ByBenefit = ByWeight;
  ByBenefit.UseBenefitCostOrder = true;
  SelectiveSpecializer S2(*B.P, *B.AC, *B.PT, B.CG, ByBenefit);
  S2.run();
  EXPECT_EQ(S2.specializations()[Double.value()].size(), 2u);
  EXPECT_EQ(S2.specializations()[Single.value()].size(), 1u);
}

TEST(SpecTuple, AlgebraBasics) {
  SpecTuple A = {ClassSet::all(8), ClassSet::single(8, ClassId(1))};
  SpecTuple B = {ClassSet::single(8, ClassId(2)), ClassSet::all(8)};
  EXPECT_TRUE(tupleIntersects(A, B));
  SpecTuple I = tupleIntersect(A, B);
  EXPECT_TRUE(tupleNonEmpty(I));
  EXPECT_TRUE(tupleSubsetOf(I, A));
  EXPECT_TRUE(tupleSubsetOf(I, B));
  EXPECT_FALSE(tupleSubsetOf(A, I));
  EXPECT_FALSE(tupleEquals(A, B));
  EXPECT_TRUE(tupleEquals(A, A));
  EXPECT_TRUE(tupleContains(A, {ClassId(5), ClassId(1)}));
  EXPECT_FALSE(tupleContains(A, {ClassId(5), ClassId(2)}));

  SpecTuple C = {ClassSet::single(8, ClassId(3)),
                 ClassSet::single(8, ClassId(4))};
  EXPECT_FALSE(tupleIntersects(A, C));
  EXPECT_FALSE(tupleNonEmpty(tupleIntersect(A, C)));
}

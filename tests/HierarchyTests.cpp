//===- tests/HierarchyTests.cpp - ClassHierarchy and dispatch --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/Builtins.h"
#include "hierarchy/Program.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

TEST(ClassHierarchy, ConesAndSubclassing) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    class B isa A;
    class C isa A;
    class D isa B;
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ClassHierarchy &H = P->Classes;
  ClassId A = H.lookup(P->Syms.find("A"));
  ClassId B = H.lookup(P->Syms.find("B"));
  ClassId C = H.lookup(P->Syms.find("C"));
  ClassId D = H.lookup(P->Syms.find("D"));
  ASSERT_TRUE(A.isValid() && B.isValid() && C.isValid() && D.isValid());

  EXPECT_TRUE(H.isSubclassOf(D, A));
  EXPECT_TRUE(H.isSubclassOf(D, B));
  EXPECT_FALSE(H.isSubclassOf(D, C));
  EXPECT_TRUE(H.isSubclassOf(A, A)) << "subclassing is reflexive";
  EXPECT_FALSE(H.isSubclassOf(A, B));

  const ClassSet &ConeA = H.cone(A);
  EXPECT_TRUE(ConeA.contains(A));
  EXPECT_TRUE(ConeA.contains(B));
  EXPECT_TRUE(ConeA.contains(C));
  EXPECT_TRUE(ConeA.contains(D));
  EXPECT_FALSE(ConeA.contains(builtin::Int));
  EXPECT_EQ(H.cone(D).count(), 1u);
  EXPECT_EQ(H.cone(B).count(), 2u);

  // The root cone is the universe.
  EXPECT_TRUE(H.cone(H.root()).isAll());
}

TEST(ClassHierarchy, DuplicateClassRejected) {
  ClassHierarchy H;
  SymbolTable Syms;
  ClassId Root = H.addClass(Syms.intern("Any"), {});
  ASSERT_TRUE(Root.isValid());
  EXPECT_TRUE(H.addClass(Syms.intern("A"), {Root}).isValid());
  EXPECT_FALSE(H.addClass(Syms.intern("A"), {Root}).isValid());
}

TEST(ClassHierarchy, SlotLayoutWithInheritance) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A { slot a1; slot a2; }
    class B isa A { slot b1; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ClassHierarchy &H = P->Classes;
  ClassId B = H.lookup(P->Syms.find("B"));
  EXPECT_EQ(H.info(B).Layout.size(), 3u);
  EXPECT_EQ(H.slotIndex(B, P->Syms.find("a1")), 0);
  EXPECT_EQ(H.slotIndex(B, P->Syms.find("a2")), 1);
  EXPECT_EQ(H.slotIndex(B, P->Syms.find("b1")), 2);
  EXPECT_EQ(H.slotIndex(B, P->Syms.find("nope")), -1);
}

TEST(ClassHierarchy, DiamondInheritanceSharesSlots) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A { slot s; }
    class B isa A;
    class C isa A;
    class D isa B, C;
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ClassHierarchy &H = P->Classes;
  ClassId D = H.lookup(P->Syms.find("D"));
  // The diamond-inherited slot appears once.
  EXPECT_EQ(H.info(D).Layout.size(), 1u);
}

TEST(Dispatch, SingleDispatchPicksMostSpecific) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    class B isa A;
    class C isa B;
    method m(x@A) { 1; }
    method m(x@B) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ClassId A = P->Classes.lookup(P->Syms.find("A"));
  ClassId B = P->Classes.lookup(P->Syms.find("B"));
  ClassId C = P->Classes.lookup(P->Syms.find("C"));
  GenericId G = P->lookupGeneric(P->Syms.find("m"), 1);
  ASSERT_TRUE(G.isValid());

  MethodId MA = P->dispatch(G, {A});
  MethodId MB = P->dispatch(G, {B});
  MethodId MC = P->dispatch(G, {C});
  ASSERT_TRUE(MA.isValid() && MB.isValid() && MC.isValid());
  EXPECT_EQ(P->methodLabel(MA), "m(A)");
  EXPECT_EQ(P->methodLabel(MB), "m(B)");
  EXPECT_EQ(P->methodLabel(MC), "m(B)") << "C inherits B's method";

  // Ints are not As: message not understood.
  EXPECT_FALSE(P->dispatch(G, {builtin::Int}).isValid());
}

TEST(Dispatch, MultiMethodPointwiseSpecificity) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    class B isa A;
    method m2(x@A, y@A) { 1; }
    method m2(x@B, y@A) { 2; }
    method m2(x@B, y@B) { 3; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ClassId A = P->Classes.lookup(P->Syms.find("A"));
  ClassId B = P->Classes.lookup(P->Syms.find("B"));
  GenericId G = P->lookupGeneric(P->Syms.find("m2"), 2);

  EXPECT_EQ(P->methodLabel(P->dispatch(G, {A, A})), "m2(A,A)");
  EXPECT_EQ(P->methodLabel(P->dispatch(G, {B, A})), "m2(B,A)");
  EXPECT_EQ(P->methodLabel(P->dispatch(G, {B, B})), "m2(B,B)");
  EXPECT_EQ(P->methodLabel(P->dispatch(G, {A, B})), "m2(A,A)");
}

TEST(Dispatch, AmbiguityDetected) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    class B isa A;
    method amb(x@B, y@A) { 1; }
    method amb(x@A, y@B) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ClassId B = P->Classes.lookup(P->Syms.find("B"));
  GenericId G = P->lookupGeneric(P->Syms.find("amb"), 2);
  // (B, B) matches both methods and neither dominates: ambiguous.
  EXPECT_FALSE(P->dispatch(G, {B, B}).isValid());
}

TEST(Dispatch, BuiltinEqualityIsMultiMethod) {
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  ASSERT_TRUE(P->resolve(Diags));

  GenericId Eq = P->lookupGeneric(P->Syms.find("=="), 2);
  ASSERT_TRUE(Eq.isValid());
  MethodId II = P->dispatch(Eq, {builtin::Int, builtin::Int});
  MethodId AA = P->dispatch(Eq, {builtin::Array, builtin::Array});
  MethodId IA = P->dispatch(Eq, {builtin::Int, builtin::Array});
  ASSERT_TRUE(II.isValid() && AA.isValid() && IA.isValid());
  EXPECT_EQ(P->method(II).Prim, PrimOp::IntEq);
  EXPECT_EQ(P->method(AA).Prim, PrimOp::AnyEq);
  EXPECT_EQ(P->method(IA).Prim, PrimOp::AnyEq);
}

TEST(Program, LabelsAndCounts) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method m(x@A, y) { x; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  GenericId G = P->lookupGeneric(P->Syms.find("m"), 2);
  ASSERT_TRUE(G.isValid());
  EXPECT_EQ(P->genericLabel(G), "m/2");
  EXPECT_EQ(P->methodLabel(P->generic(G).Methods[0]), "m(A,Any)");
  EXPECT_EQ(P->numUserMethods(), 2u);
  EXPECT_GT(P->numMethods(), P->numUserMethods()) << "builtins exist";
}

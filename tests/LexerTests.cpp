//===- tests/LexerTests.cpp - Mica lexer -----------------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace selspec;

namespace {

std::vector<Token> lex(const std::string &Src, bool ExpectErrors = false) {
  Diagnostics Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.toString();
  return Toks;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Toks) {
  std::vector<TokenKind> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(Lexer, EmptyInput) {
  std::vector<Token> T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T[0].Kind, TokenKind::Eof);
}

TEST(Lexer, KeywordsAndIdents) {
  std::vector<Token> T =
      lex("class isa slot method let return if else while new fn true "
          "false nil foo _bar b42");
  std::vector<TokenKind> K = kinds(T);
  std::vector<TokenKind> Expected = {
      TokenKind::KwClass, TokenKind::KwIsa,   TokenKind::KwSlot,
      TokenKind::KwMethod, TokenKind::KwLet,  TokenKind::KwReturn,
      TokenKind::KwIf,    TokenKind::KwElse,  TokenKind::KwWhile,
      TokenKind::KwNew,   TokenKind::KwFn,    TokenKind::KwTrue,
      TokenKind::KwFalse, TokenKind::KwNil,   TokenKind::Ident,
      TokenKind::Ident,   TokenKind::Ident,   TokenKind::Eof};
  EXPECT_EQ(K, Expected);
  EXPECT_EQ(T[14].Text, "foo");
  EXPECT_EQ(T[15].Text, "_bar");
  EXPECT_EQ(T[16].Text, "b42");
}

TEST(Lexer, IntegerLiterals) {
  std::vector<Token> T = lex("0 7 1234567");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].IntValue, 0);
  EXPECT_EQ(T[1].IntValue, 7);
  EXPECT_EQ(T[2].IntValue, 1234567);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  std::vector<Token> T = lex(R"("hello" "a\nb" "q\"q" "back\\slash")");
  ASSERT_EQ(T.size(), 5u);
  EXPECT_EQ(T[0].Text, "hello");
  EXPECT_EQ(T[1].Text, "a\nb");
  EXPECT_EQ(T[2].Text, "q\"q");
  EXPECT_EQ(T[3].Text, "back\\slash");
}

TEST(Lexer, OperatorsAndPunctuation) {
  std::vector<Token> T =
      lex("( ) { } , ; . @ := + - * / % == != < <= > >= && || !");
  std::vector<TokenKind> K = kinds(T);
  std::vector<TokenKind> Expected = {
      TokenKind::LParen,  TokenKind::RParen,    TokenKind::LBrace,
      TokenKind::RBrace,  TokenKind::Comma,     TokenKind::Semi,
      TokenKind::Dot,     TokenKind::At,        TokenKind::Assign,
      TokenKind::Plus,    TokenKind::Minus,     TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent,   TokenKind::EqEq,
      TokenKind::BangEq,  TokenKind::Less,      TokenKind::LessEq,
      TokenKind::Greater, TokenKind::GreaterEq, TokenKind::AmpAmp,
      TokenKind::PipePipe, TokenKind::Bang,     TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, CommentsSkipped) {
  std::vector<Token> T = lex("a // comment until eol\nb // another");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
}

TEST(Lexer, LineAndColumnTracking) {
  std::vector<Token> T = lex("ab\n  cd");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Col, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Col, 3u);
}

TEST(Lexer, ErrorsReportedAndRecovered) {
  lex("a ? b", /*ExpectErrors=*/true);       // unknown char
  lex("\"unterminated", /*ExpectErrors=*/true);
  lex("a : b", /*ExpectErrors=*/true);       // ':' without '='
  lex("a = b", /*ExpectErrors=*/true);       // '=' instead of ':=' or '=='
  lex("a & b", /*ExpectErrors=*/true);
  lex("a | b", /*ExpectErrors=*/true);
}

//===- tests/PaperExampleTests.cpp - The paper's worked examples -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the Figure 2/3 example: a nine-class hierarchy, m defined
/// on three classes, m2 on two, and a hot method m4 whose two outgoing
/// dynamically-dispatched pass-through arcs drive the algorithm.  (The
/// OCR of Figure 2's method bodies in our source text is garbled, so the
/// hierarchy here is an equivalent reconstruction — see DESIGN.md; the
/// algorithmic outcomes checked below are the ones the paper states,
/// including the "nine versions of m4" result and the cascade into m3.)
///
/// Also exercises the Figure 1 Set example end-to-end via the stdlib.
///
//===----------------------------------------------------------------------===//

#include "specialize/SelectiveSpecializer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

// Hierarchy:  A
//            +-- B --+-- D
//            |       +-- E --+-- H
//            |               +-- I
//            +-- C --+-- F
//                    +-- G --+-- J
//
// m   defined on A, E, G
// m2  defined on A, B
// m4  calls m(self) and m2(arg2)  [both pass-through, dynamic]
// m3  calls m4(self, arg2)        [pass-through, statically bound]
const char *Figure23Source = R"(
  class A;
  class B isa A;
  class C isa A;
  class D isa B;
  class E isa B;
  class F isa C;
  class G isa C;
  class H isa E;
  class I isa E;
  class J isa G;

  method m(self@A) { 1; }
  method m(self@E) { 2; }
  method m(self@G) { 3; }

  method m2(self@A) { 1; }
  method m2(self@B) { 2; }

  method m4(self@A, arg2@A) { m(self); m2(arg2); }
  method m3(self@A, arg2@A) { m4(self, arg2); }

  method main(n@Int) { n; }
)";

struct Fig {
  std::unique_ptr<Program> P;
  std::unique_ptr<ApplicableClassesAnalysis> AC;
  std::unique_ptr<PassThroughAnalysis> PT;
  CallGraph CG;

  MethodId method(const std::string &Label) const {
    for (unsigned MI = 0; MI != P->numMethods(); ++MI)
      if (P->methodLabel(MethodId(MI)) == Label)
        return MethodId(MI);
    ADD_FAILURE() << "no method " << Label;
    return MethodId();
  }

  CallSiteId site(MethodId Owner, const std::string &Generic) const {
    Symbol G = P->Syms.find(Generic);
    for (unsigned I = 0; I != P->numCallSites(); ++I) {
      const CallSiteInfo &Site = P->callSite(CallSiteId(I));
      if (Site.Owner == Owner && Site.Send->GenericName == G)
        return Site.Id;
    }
    ADD_FAILURE() << "no site of " << Generic;
    return CallSiteId();
  }

  ClassSet classes(std::initializer_list<const char *> Names) const {
    ClassSet S(P->Classes.size());
    for (const char *N : Names)
      S.insert(P->Classes.lookup(P->Syms.find(N)));
    return S;
  }
};

Fig buildFigure23() {
  Fig F;
  F.P = buildProgram({Figure23Source});
  if (!F.P)
    return F;
  F.AC = std::make_unique<ApplicableClassesAnalysis>(*F.P);
  F.PT = std::make_unique<PassThroughAnalysis>(*F.P);

  // The weighted call graph of Figure 3: m4's m-site splits 625/375 and
  // its m2-site splits 550/450 (the paper's example weights); m3 calls m4
  // 1000 times, statically bound.
  MethodId M4 = F.method("m4(A,A)");
  MethodId M3 = F.method("m3(A,A)");
  F.CG.addHits(F.site(M4, "m"), M4, F.method("m(A)"), 625);
  F.CG.addHits(F.site(M4, "m"), M4, F.method("m(E)"), 375);
  F.CG.addHits(F.site(M4, "m2"), M4, F.method("m2(B)"), 550);
  F.CG.addHits(F.site(M4, "m2"), M4, F.method("m2(A)"), 450);
  F.CG.addHits(F.site(M3, "m4"), M3, M4, 1000);
  return F;
}

} // namespace

TEST(PaperExample, ApplicableClassesEquivalenceRegions) {
  Fig F = buildFigure23();
  ASSERT_TRUE(F.P);
  // The shaded equivalence regions of Figure 2.
  EXPECT_EQ(F.AC->of(F.method("m(A)"))[0],
            F.classes({"A", "B", "C", "D", "F"}));
  EXPECT_EQ(F.AC->of(F.method("m(E)"))[0], F.classes({"E", "H", "I"}));
  EXPECT_EQ(F.AC->of(F.method("m(G)"))[0], F.classes({"G", "J"}));
  EXPECT_EQ(F.AC->of(F.method("m2(A)"))[0],
            F.classes({"A", "C", "F", "G", "J"}));
  EXPECT_EQ(F.AC->of(F.method("m2(B)"))[0],
            F.classes({"B", "D", "E", "H", "I"}));
}

TEST(PaperExample, NeededInfoForArcAlpha) {
  // The paper's worked arc α: caller m4, callee m2(B), pass-through of
  // arg2.  neededInfoForArc(α) restricts arg2 to {B,D,E,H,I} and leaves
  // self at m4's full applicable set.
  Fig F = buildFigure23();
  ASSERT_TRUE(F.P);
  SelectiveSpecializer S(*F.P, *F.AC, *F.PT, F.CG);

  MethodId M4 = F.method("m4(A,A)");
  Arc Alpha;
  for (const Arc &A : F.CG.arcs())
    if (A.Callee == F.method("m2(B)"))
      Alpha = A;
  ASSERT_TRUE(Alpha.Callee.isValid());
  EXPECT_EQ(Alpha.Weight, 550u);
  EXPECT_EQ(Alpha.Caller, M4);

  SpecTuple Needed = S.neededInfoForArc(Alpha);
  ASSERT_EQ(Needed.size(), 2u);
  EXPECT_EQ(Needed[0], F.AC->of(M4)[0]) << "self unrestricted";
  EXPECT_EQ(Needed[1], F.classes({"B", "D", "E", "H", "I"}));
  EXPECT_TRUE(S.isSpecializableArc(Alpha));
}

TEST(PaperExample, NineVersionsOfM4) {
  // "For the example in Figures 2 and 3, nine versions of m4 would be
  // produced, including the original unspecialized version, assuming that
  // all four outgoing call arcs were above threshold."
  Fig F = buildFigure23();
  ASSERT_TRUE(F.P);
  SelectiveOptions Opts;
  Opts.SpecializationThreshold = 300; // all four arcs above threshold
  SelectiveSpecializer S(*F.P, *F.AC, *F.PT, F.CG, Opts);
  S.run();

  MethodId M4 = F.method("m4(A,A)");
  const std::vector<SpecTuple> &Specs = S.specializations()[M4.value()];
  EXPECT_EQ(Specs.size(), 9u);

  // The unspecialized version is among them, as are the two "pure"
  // restrictions from each site and all four cross products.
  const SpecTuple General = F.AC->of(M4);
  auto Has = [&](const SpecTuple &T) {
    for (const SpecTuple &Sp : Specs)
      if (tupleEquals(Sp, T))
        return true;
    return false;
  };
  ClassSet SelfA = F.classes({"A", "B", "C", "D", "F"});
  ClassSet SelfE = F.classes({"E", "H", "I"});
  ClassSet Arg2B = F.classes({"B", "D", "E", "H", "I"});
  ClassSet Arg2A = F.classes({"A", "C", "F", "G", "J"});
  EXPECT_TRUE(Has(General));
  EXPECT_TRUE(Has({SelfA, General[1]}));
  EXPECT_TRUE(Has({SelfE, General[1]}));
  EXPECT_TRUE(Has({General[0], Arg2B}));
  EXPECT_TRUE(Has({General[0], Arg2A}));
  EXPECT_TRUE(Has({SelfA, Arg2B}));
  EXPECT_TRUE(Has({SelfA, Arg2A}));
  EXPECT_TRUE(Has({SelfE, Arg2B}));
  EXPECT_TRUE(Has({SelfE, Arg2A}));
}

TEST(PaperExample, WithDefaultThresholdOnlyHotArcsCount) {
  // With the paper's default threshold of 1000 none of m4's arcs (max
  // 625) qualify, so only the statically-bound m3→m4 arc's weight would
  // matter — and with no specializations of m4, nothing cascades.
  Fig F = buildFigure23();
  ASSERT_TRUE(F.P);
  SelectiveSpecializer S(*F.P, *F.AC, *F.PT, F.CG);
  S.run();
  EXPECT_EQ(S.specializations()[F.method("m4(A,A)").value()].size(), 1u);
  EXPECT_EQ(S.specializations()[F.method("m3(A,A)").value()].size(), 1u);
}

TEST(PaperExample, CascadeIntoM3) {
  // Section 3.3: specializing m4 would convert m3's statically-bound call
  // into a dynamically-bound one; cascading specializes m3 to match.
  Fig F = buildFigure23();
  ASSERT_TRUE(F.P);
  SelectiveOptions Opts;
  Opts.SpecializationThreshold = 300;
  SelectiveSpecializer S(*F.P, *F.AC, *F.PT, F.CG, Opts);
  S.run();

  MethodId M3 = F.method("m3(A,A)");
  const std::vector<SpecTuple> &Specs = S.specializations()[M3.value()];
  EXPECT_EQ(Specs.size(), 9u) << "m3 mirrors m4's specializations";
  // Four distinct cascade events fire (one per "pure" m4 restriction);
  // the cross products arrive for free through the combination rule
  // inside addSpecialization, so they are not separate cascade events.
  EXPECT_GE(S.stats().CascadedSpecializations, 4u);
}

//===----------------------------------------------------------------------===//
// Figure 1: the Set hierarchy, end to end through the stdlib
//===----------------------------------------------------------------------===//

namespace {

const char *SetMain = R"(
  method main(n@Int) {
    let ls := listSetNew();
    let hs := hashSetNew(17);
    let bs := bitSetNew(64);
    let i := 0;
    while (i < n) {
      add(ls, i * 3 % 40);
      add(hs, i * 5 % 40);
      add(bs, i * 7 % 40);
      i := i + 1;
    }
    print(overlaps(ls, hs));
    print(overlaps(hs, bs));
    print(overlaps(ls, bs));
    print(overlaps(bs, bs));
    print(setSize(ls));
    print(includes(ls, 3));
    print(includes(hs, 5));
    print(includes(bs, 7));
    print(includes(bs, 41));
  }
)";

std::string runSetExample(Config C) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({SetMain}, Err, /*WithStdlib=*/true);
  if (!W) {
    ADD_FAILURE() << Err;
    return "";
  }
  if (C == Config::Selective) {
    EXPECT_TRUE(W->collectProfile(40, Err)) << Err;
  }
  std::optional<ConfigResult> R = W->runConfig(C, 40, Err);
  if (!R) {
    ADD_FAILURE() << Err;
    return "";
  }
  return R->Output;
}

} // namespace

TEST(Figure1, SetHierarchyBehavesIdenticallyUnderAllConfigs) {
  std::string Base = runSetExample(Config::Base);
  ASSERT_FALSE(Base.empty());
  EXPECT_EQ(runSetExample(Config::Cust), Base);
  EXPECT_EQ(runSetExample(Config::CustMM), Base);
  EXPECT_EQ(runSetExample(Config::CHA), Base);
  EXPECT_EQ(runSetExample(Config::Selective), Base);
}

TEST(Figure1, SelectiveRemovesDispatchesFromOverlaps) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({SetMain}, Err, /*WithStdlib=*/true);
  ASSERT_TRUE(W) << Err;
  ASSERT_TRUE(W->collectProfile(40, Err)) << Err;

  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 20; // small program, small threshold
  std::optional<ConfigResult> Base = W->runConfig(Config::Base, 40, Err);
  ASSERT_TRUE(Base) << Err;
  std::optional<ConfigResult> Selective =
      W->runConfig(Config::Selective, 40, Err, Sel);
  ASSERT_TRUE(Selective) << Err;

  EXPECT_LT(Selective->Run.totalDispatches(),
            Base->Run.totalDispatches());
  EXPECT_LT(Selective->Run.Cycles, Base->Run.Cycles);
}

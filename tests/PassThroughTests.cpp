//===- tests/PassThroughTests.cpp - PassThroughArgs analysis ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/PassThroughArgs.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// The call sites of generic \p Name within the program.
std::vector<const CallSiteInfo *> sitesOf(const Program &P,
                                          const std::string &Name) {
  std::vector<const CallSiteInfo *> Out;
  Symbol S = P.Syms.find(Name);
  for (unsigned I = 0; I != P.numCallSites(); ++I) {
    const CallSiteInfo &Site = P.callSite(CallSiteId(I));
    if (Site.Send->GenericName == S)
      Out.push_back(&Site);
  }
  return Out;
}

} // namespace

TEST(PassThrough, DirectFormalsDetected) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method callee(x@A, y@A) { x; }
    method caller(a@A, b@A) { callee(b, a); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  PassThroughAnalysis PT(*P);
  auto Sites = sitesOf(*P, "callee");
  ASSERT_EQ(Sites.size(), 1u);
  // caller formal 1 (b) flows to callee actual 0; formal 0 (a) to actual 1.
  std::vector<PassThroughPair> Expected = {{1, 0}, {0, 1}};
  auto Pairs = PT.at(Sites[0]->Id);
  std::sort(Pairs.begin(), Pairs.end(),
            [](auto &A, auto &B) { return A.second < B.second; });
  EXPECT_EQ(Pairs, Expected);
}

TEST(PassThrough, NonFormalArgumentsExcluded) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method callee(x, y) { x; }
    method caller(a@A) { callee(a + 0, 3); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  PassThroughAnalysis PT(*P);
  auto Sites = sitesOf(*P, "callee");
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_TRUE(PT.at(Sites[0]->Id).empty());
}

TEST(PassThrough, AssignedFormalIsNotPassThrough) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method callee(x) { x; }
    method caller(a@A) { a := new A; callee(a); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  PassThroughAnalysis PT(*P);
  auto Sites = sitesOf(*P, "callee");
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_TRUE(PT.at(Sites[0]->Id).empty());

  GenericId G = P->lookupGeneric(P->Syms.find("caller"), 1);
  MethodId Caller = P->generic(G).Methods[0];
  EXPECT_FALSE(PT.isStableFormal(Caller, 0));
}

TEST(PassThrough, ShadowedFormalIsNotPassThrough) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method callee(x) { x; }
    method caller(a@A) { let a := 5; callee(a); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  PassThroughAnalysis PT(*P);
  auto Sites = sitesOf(*P, "callee");
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_TRUE(PT.at(Sites[0]->Id).empty());
}

TEST(PassThrough, FormalUsedInsideClosureIsPassThrough) {
  // The Figure 1 situation: set2.includes(elem) inside the closure passed
  // to do — set2 is a pass-through of overlaps' second formal.
  std::unique_ptr<Program> P = buildProgram({R"(
    class S;
    method inc(s@S, e) { e; }
    method iter(s@S, body) { body(1); }
    method over(s1@S, s2@S) {
      iter(s1, fn(elem) { inc(s2, elem); });
      false;
    }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  PassThroughAnalysis PT(*P);
  auto IncSites = sitesOf(*P, "inc");
  ASSERT_EQ(IncSites.size(), 1u);
  // over's formal 1 (s2) flows to inc's actual 0; elem is a closure param,
  // not a formal of over.
  std::vector<PassThroughPair> Expected = {{1, 0}};
  EXPECT_EQ(PT.at(IncSites[0]->Id), Expected);

  // The iter(s1, closure) site passes formal 0 through as actual 0.
  auto IterSites = sitesOf(*P, "iter");
  ASSERT_EQ(IterSites.size(), 1u);
  std::vector<PassThroughPair> Expected2 = {{0, 0}};
  EXPECT_EQ(PT.at(IterSites[0]->Id), Expected2);
}

TEST(PassThrough, ClosureParamShadowingFormalExcluded) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class S;
    method callee(x) { x; }
    method m(a@S, body) { body(fn(a) { callee(a); }); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  PassThroughAnalysis PT(*P);
  auto Sites = sitesOf(*P, "callee");
  ASSERT_EQ(Sites.size(), 1u);
  // `a` at the callee site is the closure parameter, which shadows the
  // formal; conservatively not a pass-through.
  EXPECT_TRUE(PT.at(Sites[0]->Id).empty());
}

//===- tests/OptAnalysisTests.cpp - Class-analysis utilities ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the optimizer's analysis utilities: the scoped ClassEnv,
/// primitive result sets, assigned-name scans, reference counting and
/// node counting — the pieces the soundness rules of opt/ClassAnalysis.h
/// are built from.
///
//===----------------------------------------------------------------------===//

#include "hierarchy/Builtins.h"
#include "lang/Parser.h"
#include "opt/ClassAnalysis.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Parses `method t(a, b) { <Body> }` and returns its body (module owns it
/// via the returned pair).
struct ParsedBody {
  SymbolTable Syms;
  Module M;
  const Expr *Body = nullptr;
};

std::unique_ptr<ParsedBody> parseBody(const std::string &Body) {
  auto Out = std::make_unique<ParsedBody>();
  Diagnostics Diags;
  if (!Parser::parseSource("method t(a, b) { " + Body + " }", Out->Syms,
                           Diags, Out->M)) {
    ADD_FAILURE() << Diags.toString();
    return nullptr;
  }
  Out->Body = Out->M.Methods.at(0).Body.get();
  return Out;
}

} // namespace

TEST(ClassEnv, ScopedLookupAndShadowing) {
  ClassEnv Env;
  Symbol X(1), Y(2);
  Env.pushScope();
  Env.define(X, ClassSet::single(8, ClassId(1)));
  ASSERT_NE(Env.lookup(X), nullptr);
  EXPECT_EQ(Env.lookup(X)->getSingleElement(), ClassId(1));
  EXPECT_EQ(Env.lookup(Y), nullptr);

  Env.pushScope();
  Env.define(X, ClassSet::single(8, ClassId(2)));
  EXPECT_EQ(Env.lookup(X)->getSingleElement(), ClassId(2))
      << "inner binding shadows";
  Env.popScope();
  EXPECT_EQ(Env.lookup(X)->getSingleElement(), ClassId(1))
      << "outer binding restored";
  Env.popScope();
}

TEST(ClassEnv, WidenTouchesAllVisibleBindings) {
  ClassEnv Env;
  Symbol X(1), Y(2);
  Env.pushScope();
  Env.define(X, ClassSet::single(8, ClassId(1)));
  Env.pushScope();
  Env.define(X, ClassSet::single(8, ClassId(2)));
  Env.define(Y, ClassSet::single(8, ClassId(3)));

  std::unordered_set<uint32_t> Names = {X.value()};
  Env.widen(Names, ClassSet::all(8));
  EXPECT_TRUE(Env.lookup(X)->isAll());
  EXPECT_FALSE(Env.lookup(Y)->isAll());
  Env.popScope();
  EXPECT_TRUE(Env.lookup(X)->isAll()) << "outer shadowed binding widened too";
}

TEST(PrimResultSets, KnownShapes) {
  unsigned U = 10;
  EXPECT_EQ(primResultSet(PrimOp::IntAdd, U).getSingleElement(),
            builtin::Int);
  EXPECT_EQ(primResultSet(PrimOp::IntLess, U).getSingleElement(),
            builtin::Bool);
  EXPECT_EQ(primResultSet(PrimOp::StrConcat, U).getSingleElement(),
            builtin::String);
  EXPECT_EQ(primResultSet(PrimOp::ArrayNew, U).getSingleElement(),
            builtin::Array);
  EXPECT_EQ(primResultSet(PrimOp::Print, U).getSingleElement(),
            builtin::Nil);
  // Array element reads can produce anything.
  EXPECT_TRUE(primResultSet(PrimOp::ArrayAt, U).isAll());
}

TEST(NameScans, AssignedNamesIncludeLoopAndBranchBodies) {
  std::unique_ptr<ParsedBody> PB = parseBody(R"(
    let x := 1;
    while (a < 3) { x := x + 1; }
    if (b == 0) { a := 2; } else { let shadowed := 0; }
  )");
  ASSERT_TRUE(PB);
  auto Names = collectAssignedNames(PB->Body);
  EXPECT_TRUE(Names.count(PB->Syms.find("x").value()));
  EXPECT_TRUE(Names.count(PB->Syms.find("a").value()));
  EXPECT_FALSE(Names.count(PB->Syms.find("b").value()));
  EXPECT_FALSE(Names.count(PB->Syms.find("shadowed").value()))
      << "lets are bindings, not assignments";
}

TEST(NameScans, ClosureAssignedNamesOnlyInsideClosures) {
  std::unique_ptr<ParsedBody> PB = parseBody(R"(
    let outer := 0;
    let inner := 0;
    outer := 1;
    let f := fn(p) { inner := inner + p; };
    f(1);
  )");
  ASSERT_TRUE(PB);
  auto InClosure = collectClosureAssignedNames(PB->Body);
  EXPECT_TRUE(InClosure.count(PB->Syms.find("inner").value()));
  EXPECT_FALSE(InClosure.count(PB->Syms.find("outer").value()));

  auto All = collectAssignedNames(PB->Body);
  EXPECT_TRUE(All.count(PB->Syms.find("inner").value()))
      << "closure assignments are assignments too";
  EXPECT_TRUE(All.count(PB->Syms.find("outer").value()));
}

TEST(NameScans, CountVarRefsSeesReadsAndWrites) {
  std::unique_ptr<ParsedBody> PB = parseBody(R"(
    let x := a;
    x := x + a;
    print(x);
  )");
  ASSERT_TRUE(PB);
  Symbol X = PB->Syms.find("x");
  Symbol A = PB->Syms.find("a");
  Symbol B = PB->Syms.find("b");
  // x: one write (the assignment) + two reads.
  EXPECT_EQ(countVarRefs(PB->Body, X), 3u);
  EXPECT_EQ(countVarRefs(PB->Body, A), 2u);
  EXPECT_EQ(countVarRefs(PB->Body, B), 0u);
}

TEST(NameScans, CountNodesMatchesHandCount) {
  // (seq (let x (int 1))) = Seq + Let + IntLit = 3 nodes.
  std::unique_ptr<ParsedBody> PB = parseBody("let x := 1;");
  ASSERT_TRUE(PB);
  EXPECT_EQ(countNodes(PB->Body), 3u);

  // Seq + Send + two IntLits = 4.
  std::unique_ptr<ParsedBody> PB2 = parseBody("1 + 2;");
  ASSERT_TRUE(PB2);
  EXPECT_EQ(countNodes(PB2->Body), 4u);
}

TEST(CostModel, DescribeMentionsEveryKnob) {
  CostModel CM;
  std::string S = CM.describe();
  for (const char *Needle :
       {"dispatch=", "select=", "call=", "prim=", "predict=",
        "closure-new=", "closure-call=", "alloc=", "slot="})
    EXPECT_NE(S.find(Needle), std::string::npos) << Needle;
}

//===- tests/RuntimeTests.cpp - Values, frames, heap -----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Frame.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

TEST(Value, KindsAndAccessors) {
  Value N = Value::nil();
  EXPECT_TRUE(N.isNil());
  EXPECT_EQ(N.classOf(), builtin::Nil);

  Value I = Value::ofInt(-42);
  EXPECT_TRUE(I.isInt());
  EXPECT_EQ(I.asInt(), -42);
  EXPECT_EQ(I.classOf(), builtin::Int);

  Value B = Value::ofBool(true);
  EXPECT_TRUE(B.isBool());
  EXPECT_TRUE(B.asBool());
  EXPECT_EQ(B.classOf(), builtin::Bool);
}

TEST(Value, IdentitySemantics) {
  Heap H;
  EXPECT_TRUE(Value::nil().identicalTo(Value::nil()));
  EXPECT_TRUE(Value::ofInt(7).identicalTo(Value::ofInt(7)));
  EXPECT_FALSE(Value::ofInt(7).identicalTo(Value::ofInt(8)));
  EXPECT_FALSE(Value::ofInt(0).identicalTo(Value::ofBool(false)))
      << "different kinds never compare identical";

  Obj *S1 = H.newString("x");
  Obj *S2 = H.newString("x");
  EXPECT_TRUE(Value::ofObj(S1).identicalTo(Value::ofObj(S1)));
  EXPECT_FALSE(Value::ofObj(S1).identicalTo(Value::ofObj(S2)))
      << "equal-content strings are distinct objects under identity";
}

TEST(Value, ObjectClassOf) {
  Heap H;
  EXPECT_EQ(Value::ofObj(H.newString("s")).classOf(), builtin::String);
  EXPECT_EQ(Value::ofObj(H.newArray(3)).classOf(), builtin::Array);
  EXPECT_EQ(Value::ofObj(H.newInstance(ClassId(9), 2)).classOf(),
            ClassId(9));
}

namespace {

/// A layout with \p NumSlots plain slots, \p NumCells cells and slot
/// params 0..NumParams-1 (the shape the SlotResolver produces).
FrameLayout makeLayout(uint32_t NumSlots, uint32_t NumCells,
                       uint32_t NumParams = 0) {
  FrameLayout L;
  L.NumSlots = NumSlots;
  L.NumCells = NumCells;
  for (uint32_t I = 0; I != NumParams; ++I)
    L.Params.push_back({VarLoc::Slot, I});
  L.Resolved = true;
  return L;
}

} // namespace

TEST(Frame, SlotStorageAndParamBinding) {
  FramePool Pool;
  FrameLayout L = makeLayout(3, 0, 2);
  FrameGuard G(Pool, L, nullptr);
  Frame &F = G.frame();

  F.bindParam(L.Params[0], Value::ofInt(1));
  F.bindParam(L.Params[1], Value::ofInt(2));
  EXPECT_EQ(F.slot(0).asInt(), 1);
  EXPECT_EQ(F.slot(1).asInt(), 2);

  F.slot(2) = Value::ofInt(30);
  EXPECT_EQ(F.slot(2).asInt(), 30);
  F.slot(0) = Value::ofInt(10);
  EXPECT_EQ(F.slot(0).asInt(), 10) << "assignment overwrites in place";
}

TEST(Frame, CellsAreSharedByReference) {
  FramePool Pool;
  FrameLayout L = makeLayout(0, 1);
  FrameGuard G(Pool, L, nullptr);
  Frame &F = G.frame();

  EXPECT_EQ(F.cell(0), nullptr) << "cells start unbound";
  F.cell(0) = std::make_shared<Cell>(Cell{Value::ofInt(1)});

  // A closure capturing the cell sees writes made through the frame, and
  // vice versa — the capture-by-reference contract.
  std::vector<CellPtr> Captured{F.cell(0)};
  F.cell(0)->V = Value::ofInt(2);
  EXPECT_EQ(Captured[0]->V.asInt(), 2);
  Captured[0]->V = Value::ofInt(3);
  EXPECT_EQ(F.cell(0)->V.asInt(), 3);

  // The frame that executes the closure reads the cell as a capture.
  FrameLayout Inner = makeLayout(0, 0);
  FrameGuard G2(Pool, Inner, &Captured);
  EXPECT_EQ(G2.frame().capture(0)->V.asInt(), 3);
}

TEST(FramePool, ReusesFramesLifoAndClearsCells) {
  FramePool Pool;
  FrameLayout L = makeLayout(2, 1);

  Frame *First;
  {
    FrameGuard G(Pool, L, nullptr);
    First = &G.frame();
    G.frame().cell(0) = std::make_shared<Cell>(Cell{Value::ofInt(9)});
  }
  EXPECT_EQ(Pool.depthHighWater(), 1u);
  {
    FrameGuard G(Pool, L, nullptr);
    EXPECT_EQ(&G.frame(), First) << "released frame is reused";
    EXPECT_EQ(G.frame().cell(0), nullptr)
        << "reused frame must not leak the prior activation's cells";
  }

  // Nested acquisition grows the pool only as deep as the activation chain.
  {
    FrameGuard A(Pool, L, nullptr);
    FrameGuard B(Pool, L, nullptr);
    EXPECT_NE(&A.frame(), &B.frame());
  }
  EXPECT_EQ(Pool.depthHighWater(), 2u);
}

TEST(Heap, TracksAllocations) {
  Heap H;
  EXPECT_EQ(H.numAllocated(), 0u);
  H.newString("a");
  H.newArray(4);
  H.newInstance(ClassId(3), 1);
  EXPECT_EQ(H.numAllocated(), 3u);
}

TEST(Heap, ArrayAndInstancePayloads) {
  Heap H;
  Obj *A = H.newArray(3);
  EXPECT_EQ(A->payload(), Obj::Payload::Array);
  ASSERT_EQ(A->Slots.size(), 3u);
  EXPECT_TRUE(A->Slots[0].isNil());
  A->Slots[1] = Value::ofInt(7);
  EXPECT_EQ(A->Slots[1].asInt(), 7);

  Obj *I = H.newInstance(ClassId(2), 2);
  EXPECT_EQ(I->payload(), Obj::Payload::Instance);
  EXPECT_EQ(I->Slots.size(), 2u);
}

TEST(Interp, ValueToStringRendersAllKinds) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class Box { slot v; }
    method main(n@Int) {
      let a := array(2);
      atPut(a, 0, 1);
      atPut(a, 1, "two");
      print(a);
      print(new Box);
      print(fn(x) { x; });
    }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  std::string Out;
  runMain(*CP, 0, &Out);
  EXPECT_EQ(Out, "[1, two]\n<Box>\n<closure>\n");
}

//===- tests/RuntimeTests.cpp - Values, environments, heap -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/Value.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

TEST(Value, KindsAndAccessors) {
  Value N = Value::nil();
  EXPECT_TRUE(N.isNil());
  EXPECT_EQ(N.classOf(), builtin::Nil);

  Value I = Value::ofInt(-42);
  EXPECT_TRUE(I.isInt());
  EXPECT_EQ(I.asInt(), -42);
  EXPECT_EQ(I.classOf(), builtin::Int);

  Value B = Value::ofBool(true);
  EXPECT_TRUE(B.isBool());
  EXPECT_TRUE(B.asBool());
  EXPECT_EQ(B.classOf(), builtin::Bool);
}

TEST(Value, IdentitySemantics) {
  Heap H;
  EXPECT_TRUE(Value::nil().identicalTo(Value::nil()));
  EXPECT_TRUE(Value::ofInt(7).identicalTo(Value::ofInt(7)));
  EXPECT_FALSE(Value::ofInt(7).identicalTo(Value::ofInt(8)));
  EXPECT_FALSE(Value::ofInt(0).identicalTo(Value::ofBool(false)))
      << "different kinds never compare identical";

  Obj *S1 = H.newString("x");
  Obj *S2 = H.newString("x");
  EXPECT_TRUE(Value::ofObj(S1).identicalTo(Value::ofObj(S1)));
  EXPECT_FALSE(Value::ofObj(S1).identicalTo(Value::ofObj(S2)))
      << "equal-content strings are distinct objects under identity";
}

TEST(Value, ObjectClassOf) {
  Heap H;
  EXPECT_EQ(Value::ofObj(H.newString("s")).classOf(), builtin::String);
  EXPECT_EQ(Value::ofObj(H.newArray(3)).classOf(), builtin::Array);
  EXPECT_EQ(Value::ofObj(H.newInstance(ClassId(9), 2)).classOf(),
            ClassId(9));
}

TEST(Env, ChainedLookupAndShadowing) {
  Symbol X(1), Y(2);
  EnvPtr Outer = std::make_shared<Env>();
  Outer->define(X, Value::ofInt(1));
  EnvPtr Inner = std::make_shared<Env>(Outer);
  Inner->define(Y, Value::ofInt(2));

  ASSERT_NE(Inner->lookup(X), nullptr);
  EXPECT_EQ(Inner->lookup(X)->asInt(), 1);
  ASSERT_NE(Inner->lookup(Y), nullptr);
  EXPECT_EQ(Outer->lookup(Y), nullptr) << "parent cannot see child scope";

  Inner->define(X, Value::ofInt(10));
  EXPECT_EQ(Inner->lookup(X)->asInt(), 10) << "inner shadows";
  EXPECT_EQ(Outer->lookup(X)->asInt(), 1) << "outer untouched";

  // Writing through lookup mutates the binding in place.
  *Outer->lookup(X) = Value::ofInt(5);
  EXPECT_EQ(Outer->lookup(X)->asInt(), 5);
}

TEST(Env, RedefinitionInSameScopeUsesLatest) {
  Symbol X(1);
  Env E;
  E.define(X, Value::ofInt(1));
  E.define(X, Value::ofInt(2));
  EXPECT_EQ(E.lookup(X)->asInt(), 2);
}

TEST(Heap, TracksAllocations) {
  Heap H;
  EXPECT_EQ(H.numAllocated(), 0u);
  H.newString("a");
  H.newArray(4);
  H.newInstance(ClassId(3), 1);
  EXPECT_EQ(H.numAllocated(), 3u);
}

TEST(Heap, ArrayAndInstancePayloads) {
  Heap H;
  Obj *A = H.newArray(3);
  EXPECT_EQ(A->payload(), Obj::Payload::Array);
  ASSERT_EQ(A->Slots.size(), 3u);
  EXPECT_TRUE(A->Slots[0].isNil());
  A->Slots[1] = Value::ofInt(7);
  EXPECT_EQ(A->Slots[1].asInt(), 7);

  Obj *I = H.newInstance(ClassId(2), 2);
  EXPECT_EQ(I->payload(), Obj::Payload::Instance);
  EXPECT_EQ(I->Slots.size(), 2u);
}

TEST(Interp, ValueToStringRendersAllKinds) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class Box { slot v; }
    method main(n@Int) {
      let a := array(2);
      atPut(a, 0, 1);
      atPut(a, 1, "two");
      print(a);
      print(new Box);
      print(fn(x) { x; });
    }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  std::string Out;
  runMain(*CP, 0, &Out);
  EXPECT_EQ(Out, "[1, two]\n<Box>\n<closure>\n");
}

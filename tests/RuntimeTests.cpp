//===- tests/RuntimeTests.cpp - Values, frames, heap -----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Dispatcher.h"
#include "runtime/Frame.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"
#include "support/Metrics.h"
#include "support/PhaseTimer.h"
#include "support/TraceEmitter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>

using namespace selspec;
using namespace selspec::test;

TEST(Value, KindsAndAccessors) {
  Value N = Value::nil();
  EXPECT_TRUE(N.isNil());
  EXPECT_EQ(N.classOf(), builtin::Nil);

  Value I = Value::ofInt(-42);
  EXPECT_TRUE(I.isInt());
  EXPECT_EQ(I.asInt(), -42);
  EXPECT_EQ(I.classOf(), builtin::Int);

  Value B = Value::ofBool(true);
  EXPECT_TRUE(B.isBool());
  EXPECT_TRUE(B.asBool());
  EXPECT_EQ(B.classOf(), builtin::Bool);
}

TEST(Value, IdentitySemantics) {
  Heap H;
  EXPECT_TRUE(Value::nil().identicalTo(Value::nil()));
  EXPECT_TRUE(Value::ofInt(7).identicalTo(Value::ofInt(7)));
  EXPECT_FALSE(Value::ofInt(7).identicalTo(Value::ofInt(8)));
  EXPECT_FALSE(Value::ofInt(0).identicalTo(Value::ofBool(false)))
      << "different kinds never compare identical";

  Obj *S1 = H.newString("x");
  Obj *S2 = H.newString("x");
  EXPECT_TRUE(Value::ofObj(S1).identicalTo(Value::ofObj(S1)));
  EXPECT_FALSE(Value::ofObj(S1).identicalTo(Value::ofObj(S2)))
      << "equal-content strings are distinct objects under identity";
}

TEST(Value, ObjectClassOf) {
  Heap H;
  EXPECT_EQ(Value::ofObj(H.newString("s")).classOf(), builtin::String);
  EXPECT_EQ(Value::ofObj(H.newArray(3)).classOf(), builtin::Array);
  EXPECT_EQ(Value::ofObj(H.newInstance(ClassId(9), 2)).classOf(),
            ClassId(9));
}

namespace {

/// A layout with \p NumSlots plain slots, \p NumCells cells and slot
/// params 0..NumParams-1 (the shape the SlotResolver produces).
FrameLayout makeLayout(uint32_t NumSlots, uint32_t NumCells,
                       uint32_t NumParams = 0) {
  FrameLayout L;
  L.NumSlots = NumSlots;
  L.NumCells = NumCells;
  for (uint32_t I = 0; I != NumParams; ++I)
    L.Params.push_back({VarLoc::Slot, I});
  L.Resolved = true;
  return L;
}

} // namespace

TEST(Frame, SlotStorageAndParamBinding) {
  FramePool Pool;
  FrameLayout L = makeLayout(3, 0, 2);
  FrameGuard G(Pool, L, nullptr);
  Frame &F = G.frame();

  F.bindParam(L.Params[0], Value::ofInt(1));
  F.bindParam(L.Params[1], Value::ofInt(2));
  EXPECT_EQ(F.slot(0).asInt(), 1);
  EXPECT_EQ(F.slot(1).asInt(), 2);

  F.slot(2) = Value::ofInt(30);
  EXPECT_EQ(F.slot(2).asInt(), 30);
  F.slot(0) = Value::ofInt(10);
  EXPECT_EQ(F.slot(0).asInt(), 10) << "assignment overwrites in place";
}

TEST(Frame, CellsAreSharedByReference) {
  FramePool Pool;
  FrameLayout L = makeLayout(0, 1);
  FrameGuard G(Pool, L, nullptr);
  Frame &F = G.frame();

  EXPECT_EQ(F.cell(0), nullptr) << "cells start unbound";
  F.cell(0) = std::make_shared<Cell>(Cell{Value::ofInt(1)});

  // A closure capturing the cell sees writes made through the frame, and
  // vice versa — the capture-by-reference contract.
  std::vector<CellPtr> Captured{F.cell(0)};
  F.cell(0)->V = Value::ofInt(2);
  EXPECT_EQ(Captured[0]->V.asInt(), 2);
  Captured[0]->V = Value::ofInt(3);
  EXPECT_EQ(F.cell(0)->V.asInt(), 3);

  // The frame that executes the closure reads the cell as a capture.
  FrameLayout Inner = makeLayout(0, 0);
  FrameGuard G2(Pool, Inner, &Captured);
  EXPECT_EQ(G2.frame().capture(0)->V.asInt(), 3);
}

TEST(FramePool, ReusesFramesLifoAndClearsCells) {
  FramePool Pool;
  FrameLayout L = makeLayout(2, 1);

  Frame *First;
  {
    FrameGuard G(Pool, L, nullptr);
    First = &G.frame();
    G.frame().cell(0) = std::make_shared<Cell>(Cell{Value::ofInt(9)});
  }
  EXPECT_EQ(Pool.depthHighWater(), 1u);
  {
    FrameGuard G(Pool, L, nullptr);
    EXPECT_EQ(&G.frame(), First) << "released frame is reused";
    EXPECT_EQ(G.frame().cell(0), nullptr)
        << "reused frame must not leak the prior activation's cells";
  }

  // Nested acquisition grows the pool only as deep as the activation chain.
  {
    FrameGuard A(Pool, L, nullptr);
    FrameGuard B(Pool, L, nullptr);
    EXPECT_NE(&A.frame(), &B.frame());
  }
  EXPECT_EQ(Pool.depthHighWater(), 2u);
}

TEST(Heap, TracksAllocations) {
  Heap H;
  EXPECT_EQ(H.numAllocated(), 0u);
  H.newString("a");
  H.newArray(4);
  H.newInstance(ClassId(3), 1);
  EXPECT_EQ(H.numAllocated(), 3u);
}

TEST(Heap, ArrayAndInstancePayloads) {
  Heap H;
  Obj *A = H.newArray(3);
  EXPECT_EQ(A->payload(), Obj::Payload::Array);
  ASSERT_EQ(A->Slots.size(), 3u);
  EXPECT_TRUE(A->Slots[0].isNil());
  A->Slots[1] = Value::ofInt(7);
  EXPECT_EQ(A->Slots[1].asInt(), 7);

  Obj *I = H.newInstance(ClassId(2), 2);
  EXPECT_EQ(I->payload(), Obj::Payload::Instance);
  EXPECT_EQ(I->Slots.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Dispatcher memo exactness and PIC boundary behavior
//===----------------------------------------------------------------------===//

TEST(Dispatcher, MemoCollisionStillDispatchesExactly) {
  // tupleKey shifts 10 bits per argument, so at arity 8 the first
  // argument's contribution is shifted clear out of the 64-bit key: the
  // tuples (A, Int x7) and (B, Int x7) collide by construction.  The memo
  // must verify the stored tuple and fall back to a full lookup, never
  // return the other tuple's target.
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B;
    method probe(x@A, b, c, d, e, f, g, h) { 1; }
    method probe(x@B, b, c, d, e, f, g, h) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  GenericId G = P->lookupGeneric(P->Syms.find("probe"), 8);
  ASSERT_TRUE(G.isValid());
  ClassId CA = P->Classes.lookup(P->Syms.find("A"));
  ClassId CB = P->Classes.lookup(P->Syms.find("B"));

  std::vector<ClassId> TupleA{CA}, TupleB{CB};
  for (int I = 0; I != 7; ++I) {
    TupleA.push_back(builtin::Int);
    TupleB.push_back(builtin::Int);
  }
  ASSERT_EQ(Dispatcher::tupleKey(G, TupleA), Dispatcher::tupleKey(G, TupleB))
      << "tuples no longer collide; pick ones that share a key to keep "
         "this regression test meaningful";

  // No site: every lookup goes through the memo, where the collision
  // lives.
  Dispatcher D(*P);
  MethodId WantA = P->dispatch(G, TupleA);
  MethodId WantB = P->dispatch(G, TupleB);
  ASSERT_TRUE(WantA.isValid());
  ASSERT_TRUE(WantB.isValid());
  ASSERT_NE(WantA, WantB);

  EXPECT_EQ(D.lookup(G, TupleA, CallSiteId()), WantA);
  EXPECT_EQ(D.lookup(G, TupleB, CallSiteId()), WantB)
      << "memo returned the colliding tuple's target";
  EXPECT_EQ(D.lookup(G, TupleA, CallSiteId()), WantA);
  EXPECT_GE(D.stats().MemoCollisions, 2u)
      << "each cross-tuple probe after the first is a verified miss";
  EXPECT_EQ(D.stats().MemoHits, 0u);
}

TEST(Dispatcher, PicServesExactlyCapacityTuples) {
  // Boundary regression: a site that observes exactly PicCapacity class
  // tuples must keep all of them cached and keep serving PIC hits — only
  // the (PicCapacity+1)-th distinct tuple demotes the site.
  std::string Src = "class Shape;\n";
  for (int I = 0; I != 5; ++I)
    Src += "class S" + std::to_string(I) + " isa Shape;\n";
  Src += "method poke(x@Shape) { 0; }\nmethod main(n@Int) { n; }\n";
  std::unique_ptr<Program> P = buildProgram({Src});
  ASSERT_TRUE(P);

  constexpr unsigned Capacity = 4;
  Dispatcher D(*P, Capacity);
  GenericId G = P->lookupGeneric(P->Syms.find("poke"), 1);
  CallSiteId Site(0);
  auto ClassOf = [&](int I) {
    std::string Name = "S";
    Name += std::to_string(I);
    return P->Classes.lookup(P->Syms.find(Name));
  };

  for (unsigned I = 0; I != Capacity; ++I)
    ASSERT_TRUE(D.lookup(G, {ClassOf(static_cast<int>(I))}, Site).isValid());
  EXPECT_EQ(D.picSize(Site), Capacity);
  EXPECT_EQ(D.stats().MegamorphicSites, 0u);

  uint64_t HitsBefore = D.stats().PicHits;
  for (unsigned I = 0; I != Capacity; ++I)
    D.lookup(G, {ClassOf(static_cast<int>(I))}, Site);
  EXPECT_EQ(D.stats().PicHits, HitsBefore + Capacity)
      << "a full-but-not-overflowed PIC must serve every cached tuple";
  EXPECT_EQ(D.stats().MegamorphicSites, 0u);

  // One tuple past the capacity demotes the site.
  D.lookup(G, {ClassOf(4)}, Site);
  EXPECT_EQ(D.stats().MegamorphicSites, 1u);
  EXPECT_EQ(D.picSize(Site), 0u);
}

TEST(Dispatcher, NoPhantomPicsForFailedOrSitelessLookups) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method only(x@A) { 1; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  Dispatcher D(*P);
  GenericId G = P->lookupGeneric(P->Syms.find("only"), 1);
  ClassId CA = P->Classes.lookup(P->Syms.find("A"));

  // A failed dispatch at a site must not materialize an empty Pic.
  EXPECT_FALSE(D.lookup(G, {builtin::Int}, CallSiteId(7)).isValid());
  EXPECT_EQ(D.numPicSites(), 0u);
  // Nor does a siteless lookup, successful or not.
  EXPECT_TRUE(D.lookup(G, {CA}, CallSiteId()).isValid());
  EXPECT_EQ(D.numPicSites(), 0u);
  // A successful lookup at a site does.
  EXPECT_TRUE(D.lookup(G, {CA}, CallSiteId(7)).isValid());
  EXPECT_EQ(D.numPicSites(), 1u);
}

//===----------------------------------------------------------------------===//
// Metrics registry and trace emitter exports
//===----------------------------------------------------------------------===//

namespace {

/// Minimal recursive-descent JSON validity check (objects, arrays,
/// strings, numbers, literals) — enough to guarantee the exports load in
/// real parsers without depending on one here.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : T(Text) {}
  bool valid() {
    skipWs();
    return value() && (skipWs(), Pos == T.size());
  }

private:
  bool value() {
    if (Pos >= T.size())
      return false;
    switch (T[Pos]) {
    case '{': return object();
    case '[': return array();
    case '"': return string();
    case 't': return literal("true");
    case 'f': return literal("false");
    case 'n': return literal("null");
    default:  return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (eat('}'))
      return true;
    do {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (!eat(':'))
        return false;
      skipWs();
      if (!value())
        return false;
      skipWs();
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (eat(']'))
      return true;
    do {
      skipWs();
      if (!value())
        return false;
      skipWs();
    } while (eat(','));
    return eat(']');
  }
  bool string() {
    if (!eat('"'))
      return false;
    while (Pos < T.size() && T[Pos] != '"') {
      if (static_cast<unsigned char>(T[Pos]) < 0x20)
        return false;
      if (T[Pos] == '\\') {
        ++Pos;
        if (Pos >= T.size())
          return false;
        if (T[Pos] == 'u') {
          for (int I = 0; I != 4; ++I)
            if (++Pos >= T.size() || !std::isxdigit(
                    static_cast<unsigned char>(T[Pos])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", T[Pos]))
          return false;
      }
      ++Pos;
    }
    return eat('"');
  }
  bool number() {
    eat('-');
    if (!digits())
      return false;
    if (eat('.') && !digits())
      return false;
    if (Pos < T.size() && (T[Pos] == 'e' || T[Pos] == 'E')) {
      ++Pos;
      if (Pos < T.size() && (T[Pos] == '+' || T[Pos] == '-'))
        ++Pos;
      if (!digits())
        return false;
    }
    return true;
  }
  bool digits() {
    size_t Start = Pos;
    while (Pos < T.size() && std::isdigit(static_cast<unsigned char>(T[Pos])))
      ++Pos;
    return Pos != Start;
  }
  bool literal(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (T.compare(Pos, Len, Lit) != 0)
      return false;
    Pos += Len;
    return true;
  }
  bool eat(char C) {
    if (Pos < T.size() && T[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\n' ||
                              T[Pos] == '\t' || T[Pos] == '\r'))
      ++Pos;
  }

  const std::string &T;
  size_t Pos = 0;
};

} // namespace

TEST(Metrics, RegistryRoundTripsThroughJson) {
  metrics::Counter &C = metrics::named("test.metrics_roundtrip");
  C.add(41);
  C.add();
  EXPECT_EQ(metrics::named("test.metrics_roundtrip").value(), 42u)
      << "named() must return the same counter for the same name";

  std::string Pretty = metrics::toJson("  ");
  std::string Compact = metrics::toJsonCompact();
  EXPECT_TRUE(JsonChecker(Pretty).valid()) << Pretty;
  EXPECT_TRUE(JsonChecker(Compact).valid()) << Compact;
  EXPECT_NE(Compact.find("\"test.metrics_roundtrip\":42"), std::string::npos)
      << Compact;
  EXPECT_NE(Compact.find("\"dispatcher.memo_collisions\":"),
            std::string::npos)
      << "statically registered counters must appear in the export";
}

TEST(TraceEmitter, EmitsValidChromeTraceJson) {
  TraceEmitter &TE = TraceEmitter::global();
  TE.reset();
  TE.setEnabled(true);
  {
    PhaseTimer::Scope Outer("test-outer");
    PhaseTimer::Scope Inner("test-inner");
  }
  TE.setEnabled(false);
  EXPECT_EQ(TE.numSpans(), 2u);

  std::ostringstream OS;
  TE.print(OS);
  std::string Trace = OS.str();
  EXPECT_TRUE(JsonChecker(Trace).valid()) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\":\"test-inner\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  TE.reset();
}

TEST(Interp, ValueToStringRendersAllKinds) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class Box { slot v; }
    method main(n@Int) {
      let a := array(2);
      atPut(a, 0, 1);
      atPut(a, 1, "two");
      print(a);
      print(new Box);
      print(fn(x) { x; });
    }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  std::string Out;
  runMain(*CP, 0, &Out);
  EXPECT_EQ(Out, "[1, two]\n<Box>\n<closure>\n");
}

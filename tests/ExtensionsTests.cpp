//===- tests/ExtensionsTests.cpp - §6 extensions and §3.5 tables -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the implemented extensions: interprocedural return-class
/// analysis (§6 "specializing callers for return values" enabler),
/// profile-guided type feedback (§6 combination with Hölzle & Ungar), and
/// compressed multi-method dispatch tables (§3.5).
///
//===----------------------------------------------------------------------===//

#include "analysis/ReturnClasses.h"
#include "runtime/DispatchTable.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

MethodId findMethod(const Program &P, const std::string &Label) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    if (P.methodLabel(MethodId(MI)) == Label)
      return MethodId(MI);
  ADD_FAILURE() << "no method " << Label;
  return MethodId();
}

ClassSet namedSet(const Program &P,
                  std::initializer_list<const char *> Names) {
  ClassSet S(P.Classes.size());
  for (const char *N : Names)
    S.insert(P.Classes.lookup(P.Syms.find(N)));
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// ReturnClassAnalysis
//===----------------------------------------------------------------------===//

TEST(ReturnClasses, LiteralsAndConstructors) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method makeB() { new B; }
    method makeNum(n@Int) { n + 1; }
    method makeEither(n@Int) { if (n > 0) { new A; } else { new B; } }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  ReturnClassAnalysis RC(*P, AC);

  EXPECT_EQ(RC.of(findMethod(*P, "makeB()")), namedSet(*P, {"B"}));
  EXPECT_EQ(RC.of(findMethod(*P, "makeNum(Int)")),
            namedSet(*P, {"Int"}));
  EXPECT_EQ(RC.of(findMethod(*P, "makeEither(Int)")),
            namedSet(*P, {"A", "B"}));
}

TEST(ReturnClasses, PropagatesThroughCalls) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method inner(n@Int) { new A; }
    method outer(n@Int) { inner(n); }
    method viaReturn(n@Int) {
      if (n > 0) { return inner(n); }
      42;
    }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  ReturnClassAnalysis RC(*P, AC);
  EXPECT_EQ(RC.of(findMethod(*P, "outer(Int)")), namedSet(*P, {"A"}));
  EXPECT_EQ(RC.of(findMethod(*P, "viaReturn(Int)")),
            namedSet(*P, {"A", "Int"}));
}

TEST(ReturnClasses, RecursionReachesFixpoint) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method ping(n@Int) { if (n > 0) { pong(n - 1); } else { new A; } }
    method pong(n@Int) { if (n > 0) { ping(n - 1); } else { new B; } }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  ReturnClassAnalysis RC(*P, AC);
  // Mutual recursion: both may return A or B (plus Nil is *not* possible:
  // every path produces a value).
  EXPECT_EQ(RC.of(findMethod(*P, "ping(Int)")), namedSet(*P, {"A", "B"}));
  EXPECT_EQ(RC.of(findMethod(*P, "pong(Int)")), namedSet(*P, {"A", "B"}));
  EXPECT_GE(RC.iterations(), 2u) << "fixpoint needed more than one pass";
}

TEST(ReturnClasses, NonLocalReturnsFromClosuresCounted) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method each(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method findIt(n@Int) {
      each(n, fn(i) { if (i == 3) { return new A; } });
      0;
    }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  ReturnClassAnalysis RC(*P, AC);
  EXPECT_EQ(RC.of(findMethod(*P, "findIt(Int)")),
            namedSet(*P, {"A", "Int"}));
}

TEST(ReturnClasses, EnablesMoreStaticBinding) {
  // pick() returns only B or C; with return-class analysis the poke()
  // send binds... to nothing unique here, but the B-only path does.
  const char *Source = R"(
    class A; class B isa A; class C isa A;
    method onlyB(n@Int) { new B; }
    method poke(x@B) { 1; }
    method poke(x@C) { 2; }
    method use(n@Int) { poke(onlyB(n)); }
    method main(n@Int) { print(use(n)); }
  )";
  std::unique_ptr<Program> P = buildProgram({Source});
  ASSERT_TRUE(P);
  OptimizerOptions Plain;
  Plain.EnableInlining = false;
  OptimizerOptions WithRC = Plain;
  WithRC.UseReturnClasses = true;

  std::unique_ptr<CompiledProgram> CP1 =
      compileProgram(*P, Config::CHA, nullptr, {}, Plain);
  std::unique_ptr<CompiledProgram> CP2 =
      compileProgram(*P, Config::CHA, nullptr, {}, WithRC);

  std::string Out1, Out2;
  RunStats S1 = runMain(*CP1, 1, &Out1);
  RunStats S2 = runMain(*CP2, 1, &Out2);
  EXPECT_EQ(Out1, Out2);
  EXPECT_EQ(Out1, "1\n");
  // Without return classes the poke() send cannot be bound (onlyB's
  // result is unknown); with them it statically binds.
  EXPECT_LT(S2.totalDispatches(), S1.totalDispatches());
}

TEST(ReturnClasses, SemanticsPreservedOnBenchmarks) {
  for (const char *File : {"richards.mica", "instsched.mica"}) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles({File}, Err);
    ASSERT_TRUE(W) << Err;
    OptimizerOptions WithRC;
    WithRC.UseReturnClasses = true;
    std::optional<ConfigResult> Plain =
        W->runConfig(Config::CHA, 8, Err);
    std::optional<ConfigResult> RC =
        W->runConfig(Config::CHA, 8, Err, {}, WithRC);
    ASSERT_TRUE(Plain && RC) << Err;
    EXPECT_EQ(Plain->Output, RC->Output) << File;
    EXPECT_LE(RC->Run.totalDispatches(), Plain->Run.totalDispatches())
        << File;
  }
}

//===----------------------------------------------------------------------===//
// Type feedback
//===----------------------------------------------------------------------===//

TEST(TypeFeedback, GuardsDominantCalleeAndFallsBack) {
  const char *Source = R"(
    class A; class B isa A; class C isa A;
    method tag(x@B) { 1; }
    method tag(x@C) { 2; }
    method pick(n@Int) { if (n % 10 == 0) { new C; } else { new B; } }
    method main(n@Int) {
      let total := 0;
      let i := 0;
      while (i < n) { total := total + tag(pick(i)); i := i + 1; }
      print(total);
    }
  )";
  std::unique_ptr<Program> P = buildProgram({Source});
  ASSERT_TRUE(P);

  // Profile: 90% of tag() calls hit tag(B).
  CallGraph CG;
  {
    std::unique_ptr<CompiledProgram> Base = compileProgram(*P, Config::Base);
    runMain(*Base, 2000, nullptr, &CG);
  }

  OptimizerOptions Opt;
  Opt.EnableTypeFeedback = true;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::CHA, &CG, {}, Opt);

  std::string Out;
  std::ostringstream OS;
  RunOptions RO;
  RO.Output = &OS;
  Interpreter I(*CP, RO);
  ASSERT_TRUE(I.callMain(2000)) << I.errorMessage();
  const RunStats &S = I.stats();
  // 90% hits, 10% misses (which still dispatch correctly).
  EXPECT_EQ(S.FeedbackHits, 1800u);
  EXPECT_EQ(S.FeedbackMisses, 200u);
  EXPECT_EQ(OS.str(), "2200\n"); // 1800*1 + 200*2

  // The dispatch count shrinks by exactly the hits at that site.
  std::unique_ptr<CompiledProgram> Plain = compileProgram(*P, Config::CHA);
  RunStats SPlain = runMain(*Plain, 2000);
  EXPECT_LT(S.totalDispatches(), SPlain.totalDispatches());
}

TEST(TypeFeedback, NoGuardWithoutDominantCallee) {
  const char *Source = R"(
    class A; class B isa A; class C isa A;
    method tag(x@B) { 1; }
    method tag(x@C) { 2; }
    method pick(n@Int) { if (n % 2 == 0) { new C; } else { new B; } }
    method main(n@Int) {
      let total := 0;
      let i := 0;
      while (i < n) { total := total + tag(pick(i)); i := i + 1; }
      print(total);
    }
  )";
  std::unique_ptr<Program> P = buildProgram({Source});
  ASSERT_TRUE(P);
  CallGraph CG;
  {
    std::unique_ptr<CompiledProgram> Base = compileProgram(*P, Config::Base);
    runMain(*Base, 3000, nullptr, &CG);
  }
  OptimizerOptions Opt;
  Opt.EnableTypeFeedback = true;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::CHA, &CG, {}, Opt);
  RunStats S = runMain(*CP, 3000);
  // 50/50 split: below the dominance threshold, no guard installed.
  EXPECT_EQ(S.FeedbackHits + S.FeedbackMisses, 0u);
}

TEST(TypeFeedback, RequiresMinimumWeight) {
  const char *Source = R"(
    class A; class B isa A; class C isa A;
    method tag(x@B) { 1; }
    method tag(x@C) { 2; }
    method pick(n@Int) { if (n % 10 == 0) { new C; } else { new B; } }
    method main(n@Int) {
      let total := 0;
      let i := 0;
      while (i < n) { total := total + tag(pick(i)); i := i + 1; }
      print(total);
    }
  )";
  std::unique_ptr<Program> P = buildProgram({Source});
  ASSERT_TRUE(P);
  CallGraph CG;
  {
    std::unique_ptr<CompiledProgram> Base = compileProgram(*P, Config::Base);
    runMain(*Base, 50, nullptr, &CG); // far below FeedbackMinWeight
  }
  OptimizerOptions Opt;
  Opt.EnableTypeFeedback = true;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::CHA, &CG, {}, Opt);
  RunStats S = runMain(*CP, 50);
  EXPECT_EQ(S.FeedbackHits + S.FeedbackMisses, 0u);
}

//===----------------------------------------------------------------------===//
// Compressed dispatch tables
//===----------------------------------------------------------------------===//

TEST(DispatchTable, AgreesWithFullLookupEverywhere) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A; class C isa A; class D isa B;
    method m2(x@A, y@A) { 1; }
    method m2(x@B, y@A) { 2; }
    method m2(x@B, y@B) { 3; }
    method m2(x@C, y@D) { 4; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  GenericId G = P->lookupGeneric(P->Syms.find("m2"), 2);
  ASSERT_TRUE(G.isValid());
  DispatchTable T(*P, G);

  for (unsigned I = 0; I != P->Classes.size(); ++I)
    for (unsigned J = 0; J != P->Classes.size(); ++J) {
      std::vector<ClassId> Args = {ClassId(I), ClassId(J)};
      EXPECT_EQ(T.lookup(Args), P->dispatch(G, Args))
          << "tuple (" << I << ',' << J << ')';
    }
}

TEST(DispatchTable, CompressionSharesEquivalentRows) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A; class C isa A; class D isa A; class E isa A;
    method m(x@A) { 1; }
    method m(x@B) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  GenericId G = P->lookupGeneric(P->Syms.find("m"), 1);
  DispatchTable T(*P, G);
  ASSERT_EQ(T.numDispatchedPositions(), 1u);
  // Behaviors: {not an A}, {A-but-not-B: A,C,D,E}, {B}: three groups,
  // regardless of how many classes the universe holds.
  EXPECT_EQ(T.numGroups(0), 3u);
  EXPECT_EQ(T.tableSize(), 3u);
  EXPECT_LT(T.tableSize(), T.uncompressedSize());
}

TEST(DispatchTable, WholeProgramSetAgreesOnBenchmark) {
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles({"instsched.mica"}, Err);
  ASSERT_TRUE(W) << Err;
  const Program &P = W->program();
  DispatchTableSet Set(P);

  // Spot-check the 7-case conflicts multi-method over every class pair.
  GenericId G = P.lookupGeneric(P.Syms.find("conflicts"), 2);
  ASSERT_TRUE(G.isValid());
  const DispatchTable &T = Set.forGeneric(G);
  for (unsigned I = 0; I != P.Classes.size(); ++I)
    for (unsigned J = 0; J != P.Classes.size(); ++J) {
      std::vector<ClassId> Args = {ClassId(I), ClassId(J)};
      ASSERT_EQ(T.lookup(Args), P.dispatch(G, Args));
    }
  EXPECT_LT(Set.totalCells(), Set.totalUncompressedCells());
}

//===----------------------------------------------------------------------===//
// Dispatcher PIC behavior
//===----------------------------------------------------------------------===//

TEST(Dispatcher, PicCachesAndGoesMegamorphic) {
  std::string Src = "class Shape;\n";
  for (int I = 0; I != 12; ++I)
    Src += "class S" + std::to_string(I) + " isa Shape;\n";
  Src += "method poke(x@Shape) { 0; }\n";
  for (int I = 0; I != 12; ++I)
    Src += "method poke(x@S" + std::to_string(I) + ") { " +
           std::to_string(I + 1) + "; }\n";
  Src += "method main(n@Int) { n; }\n";
  std::unique_ptr<Program> P = buildProgram({Src});
  ASSERT_TRUE(P);

  Dispatcher D(*P, /*PicCapacity=*/4);
  GenericId G = P->lookupGeneric(P->Syms.find("poke"), 1);
  CallSiteId Site(0);

  auto ClassOf = [&](int I) {
    return P->Classes.lookup(P->Syms.find("S" + std::to_string(I)));
  };

  // Warm four classes: all cached, repeats hit the PIC.
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(D.lookup(G, {ClassOf(I)}, Site).isValid());
  EXPECT_EQ(D.picSize(Site), 4u);
  uint64_t HitsBefore = D.stats().PicHits;
  for (int I = 0; I != 4; ++I)
    D.lookup(G, {ClassOf(I)}, Site);
  EXPECT_EQ(D.stats().PicHits, HitsBefore + 4);

  // A fifth class overflows the capacity: megamorphic, cache dropped.
  D.lookup(G, {ClassOf(5)}, Site);
  EXPECT_EQ(D.stats().MegamorphicSites, 1u);
  EXPECT_EQ(D.picSize(Site), 0u);

  // Lookups stay correct afterwards (global memo serves them).
  for (int I = 0; I != 12; ++I) {
    MethodId M = D.lookup(G, {ClassOf(I)}, Site);
    ASSERT_TRUE(M.isValid());
    EXPECT_EQ(P->methodLabel(M), "poke(S" + std::to_string(I) + ")");
  }
  EXPECT_GT(D.stats().MemoHits, 0u);
}

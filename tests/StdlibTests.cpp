//===- tests/StdlibTests.cpp - Mica standard library behavior --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Black-box tests of mica/stdlib.mica, run through the full pipeline
/// under the Base configuration (other configurations are covered by the
/// output-equivalence property tests).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Runs `method main(n@Int) { <Body> }` with the stdlib, input 0.
std::string runStd(const std::string &Body) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources(
      {"method main(n@Int) { " + Body + " }"}, Err, /*WithStdlib=*/true);
  if (!W) {
    ADD_FAILURE() << Err;
    return "<error>";
  }
  std::optional<ConfigResult> R = W->runConfig(Config::Base, 0, Err);
  if (!R) {
    ADD_FAILURE() << Err;
    return "<error>";
  }
  return R->Output;
}

} // namespace

TEST(Stdlib, MathHelpers) {
  EXPECT_EQ(runStd("print(min(3, 5)); print(max(3, 5)); print(abs(-7)); "
                   "print(abs(7));"),
            "3\n5\n7\n7\n");
}

TEST(Stdlib, RngIsDeterministicAndBounded) {
  EXPECT_EQ(runStd(R"(
    let r1 := rngNew(42);
    let r2 := rngNew(42);
    let same := true;
    let inRange := true;
    let i := 0;
    while (i < 200) {
      let a := nextInt(r1, 17);
      let b := nextInt(r2, 17);
      if (a != b) { same := false; }
      if (a < 0 || a >= 17) { inRange := false; }
      i := i + 1;
    }
    print(same); print(inRange);
  )"),
            "true\ntrue\n");
}

TEST(Stdlib, VectorGrowsAndIterates) {
  EXPECT_EQ(runStd(R"(
    let v := vectorNew();
    print(isEmpty(v));
    let i := 0;
    while (i < 100) { add(v, i * i); i := i + 1; }
    print(size(v));
    print(at(v, 0)); print(at(v, 99));
    atPut(v, 50, -1);
    print(at(v, 50));
    let total := 0;
    do(v, fn(x) { total := total + 1; });
    print(total);
    print(contains(v, 81)); print(contains(v, -1)); print(contains(v, 7));
  )"),
            "true\n100\n0\n9801\n-1\n100\ntrue\ntrue\nfalse\n");
}

TEST(Stdlib, VectorStackOperations) {
  EXPECT_EQ(runStd(R"(
    let v := vectorNew();
    add(v, 1); add(v, 2); add(v, 3);
    print(last(v));
    print(removeLast(v));
    print(size(v));
    clear(v);
    print(isEmpty(v));
  )"),
            "3\n3\n2\ntrue\n");
}

TEST(Stdlib, QueuesFifoAcrossRepresentations) {
  for (const char *Ctor : {"ringQueueNew(16)", "stackQueueNew()"}) {
    std::string Out = runStd(std::string(R"(
      let q := )") + Ctor + R"(;
      print(isEmpty(q));
      enqueue(q, 1); enqueue(q, 2); enqueue(q, 3);
      print(size(q));
      print(dequeue(q)); print(dequeue(q));
      enqueue(q, 4);
      print(dequeue(q)); print(dequeue(q));
      print(isEmpty(q));
    )");
    EXPECT_EQ(Out, "true\n3\n1\n2\n3\n4\ntrue\n") << Ctor;
  }
}

TEST(Stdlib, DrainIntoMovesEverythingAcrossRepresentations) {
  EXPECT_EQ(runStd(R"(
    let a := stackQueueNew();
    let b := ringQueueNew(8);
    enqueue(a, 10); enqueue(a, 20); enqueue(a, 30);
    drainInto(a, b);
    print(isEmpty(a)); print(size(b));
    print(dequeue(b)); print(dequeue(b)); print(dequeue(b));
  )"),
            "true\n3\n10\n20\n30\n");
}

TEST(Stdlib, QueueOverflowAndUnderflowAbort) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources(
      {"method main(n@Int) { dequeue(ringQueueNew(4)); }"}, Err, true);
  ASSERT_TRUE(W) << Err;
  EXPECT_EQ(W->runConfig(Config::Base, 0, Err), std::nullopt);
  EXPECT_NE(Err.find("underflow"), std::string::npos);
}

TEST(Stdlib, SetRepresentationsAgree) {
  // All three representations must expose identical set semantics.
  for (const char *Ctor :
       {"listSetNew()", "hashSetNew(7)", "bitSetNew(100)"}) {
    std::string Out = runStd(std::string("let s := ") + Ctor + R"(;
      print(setSize(s));
      add(s, 3); add(s, 50); add(s, 3);   // duplicates ignored
      print(setSize(s));
      print(includes(s, 3)); print(includes(s, 50)); print(includes(s, 4));
      let total := 0;
      do(s, fn(e) { total := total + e; });
      print(total);
    )");
    EXPECT_EQ(Out, "0\n2\ntrue\ntrue\nfalse\n53\n") << Ctor;
  }
}

TEST(Stdlib, OverlapsAcrossAllRepresentationPairs) {
  EXPECT_EQ(runStd(R"(
    let reps := vectorNew();
    add(reps, listSetNew()); add(reps, hashSetNew(5)); add(reps, bitSetNew(64));
    do(reps, fn(s) { add(s, 7); add(s, 21); });
    let disjoint := vectorNew();
    add(disjoint, listSetNew()); add(disjoint, hashSetNew(5));
    add(disjoint, bitSetNew(64));
    do(disjoint, fn(s) { add(s, 8); });
    let allOverlap := true;
    let noneOverlap := false;
    do(reps, fn(a) {
      do(reps, fn(b) { if (!overlaps(a, b)) { allOverlap := false; } });
      do(disjoint, fn(b) { if (overlaps(a, b)) { noneOverlap := true; } });
    });
    print(allOverlap); print(noneOverlap);
  )"),
            "true\nfalse\n");
}

TEST(Stdlib, UnionAndIntersection) {
  EXPECT_EQ(runStd(R"(
    let a := listSetNew(); add(a, 1); add(a, 2); add(a, 3);
    let b := bitSetNew(10); add(b, 2); add(b, 3); add(b, 4);
    let u := hashSetNew(7);
    unionInto(a, b, u);
    print(setSize(u));
    let i := listSetNew();
    intersectInto(a, b, i);
    print(setSize(i));
    print(includes(i, 2) && includes(i, 3));
    print(includes(i, 1) || includes(i, 4));
  )"),
            "4\n2\ntrue\nfalse\n");
}

TEST(Stdlib, BitSetRangeChecking) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources(
      {"method main(n@Int) { add(bitSetNew(4), 9); }"}, Err, true);
  ASSERT_TRUE(W) << Err;
  EXPECT_EQ(W->runConfig(Config::Base, 0, Err), std::nullopt);
  EXPECT_NE(Err.find("out of range"), std::string::npos);

  // includes() out of range is just false, not an error.
  EXPECT_EQ(runStd("print(includes(bitSetNew(4), 9)); "
                   "print(includes(bitSetNew(4), -1));"),
            "false\nfalse\n");
}

TEST(Stdlib, DefaultIncludesUsedByListSetHonorsEquality) {
  // ListSet uses the generic do/== default, so string elements compare by
  // identity (Any ==) — two equal-content strings are different objects.
  EXPECT_EQ(runStd(R"(
    let s := listSetNew();
    let str := "x";
    add(s, str);
    print(includes(s, str));
    print(setSize(s));
  )"),
            "true\n1\n");
}

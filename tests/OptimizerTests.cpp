//===- tests/OptimizerTests.cpp - Static binding, inlining, closures -------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "opt/Optimizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Returns the compiled body printout of the only version of the method
/// labeled \p Label.
std::string bodyOf(const Program &P, const CompiledProgram &CP,
                   const std::string &Label) {
  for (const CompiledMethod &CM : CP.versions())
    if (P.methodLabel(CM.Source) == Label && CM.Body)
      return printExpr(CM.Body.get(), P.Syms);
  ADD_FAILURE() << "no compiled body for " << Label;
  return "";
}

} // namespace

TEST(Optimizer, CHABindsMonomorphicSends) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method solo(x@A) { 1; }
    method caller(a@A) { solo(a); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;

  std::unique_ptr<CompiledProgram> Base =
      compileProgram(*P, Config::Base, nullptr, {}, NoInline);
  std::unique_ptr<CompiledProgram> CHA =
      compileProgram(*P, Config::CHA, nullptr, {}, NoInline);

  // Base cannot bind (the formal could be any A subclass... but there are
  // none; still, Base does not consult the hierarchy): dynamic.
  EXPECT_NE(bodyOf(*P, *Base, "caller(A)").find("(send solo"),
            std::string::npos);
  EXPECT_EQ(bodyOf(*P, *Base, "caller(A)").find("[static]"),
            std::string::npos);
  // CHA proves there is exactly one target: static.
  EXPECT_NE(bodyOf(*P, *CHA, "caller(A)").find("(send[static] solo"),
            std::string::npos);
}

TEST(Optimizer, BaseBindsExactlyKnownClasses) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method poke(x@A) { 1; }
    method poke(x@B) { 2; }
    method main(n@Int) { poke(new B); }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> Base =
      compileProgram(*P, Config::Base, nullptr, {}, NoInline);
  // new B has an exactly-known class: even Base binds statically.
  EXPECT_NE(bodyOf(*P, *Base, "main(Int)").find("(send[static] poke"),
            std::string::npos);
}

TEST(Optimizer, IntArithmeticInlinedAsPrims) {
  std::unique_ptr<Program> P =
      buildProgram({"method main(n@Int) { n + 1 * 2; }"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  std::string Body = bodyOf(*P, *CP, "main(Int)");
  // The literal subexpression folds (Table 1's constant folding); the
  // remaining add on the formal is an inlined primitive.
  EXPECT_EQ(Body, "(seq (send[prim] + (var n) (int 2)))");
}

TEST(Optimizer, ConstantFoldingAndDeadCode) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method main(n@Int) {
      let unused := 5;            // dead: pure init, never referenced
      3 + 4;                      // dead: pure statement (after folding)
      let keep := n + (2 * 3 - 1);
      print(keep);
    }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  PassThroughAnalysis PT(*P);
  SpecializationPlan Plan = makePlan(Config::Base, *P, AC, PT, nullptr);
  Optimizer Opt(*P, AC);
  std::unique_ptr<CompiledProgram> CP = Opt.compile(Plan);

  EXPECT_GE(Opt.stats().ConstantsFolded, 3u);
  EXPECT_GE(Opt.stats().DeadStatementsRemoved, 2u);
  std::string Body = bodyOf(*P, *CP, "main(Int)");
  EXPECT_EQ(Body.find("unused"), std::string::npos) << Body;
  EXPECT_NE(Body.find("(send[prim] + (var n) (int 5))"),
            std::string::npos)
      << Body;

  std::string Out;
  runMain(*CP, 10, &Out);
  EXPECT_EQ(Out, "15\n");

  // Division by zero must never be folded away.
  std::unique_ptr<Program> P2 =
      buildProgram({"method main(n@Int) { 1 / 0; }"});
  ASSERT_TRUE(P2);
  std::unique_ptr<CompiledProgram> CP2 = compileProgram(*P2, Config::Base);
  Interpreter I(*CP2);
  EXPECT_FALSE(I.callMain(0));
  EXPECT_NE(I.errorMessage().find("division by zero"), std::string::npos);
}

TEST(Optimizer, ClassPredictionWhenTypeUnknown) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class Box { slot v; }
    method main(n@Int) {
      let b := new Box { v := n };
      b.v + 1;
    }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  // b.v has unknown class: the + send gets hard-wired Int prediction.
  EXPECT_NE(bodyOf(*P, *CP, "main(Int)").find("(send[pred] +"),
            std::string::npos);

  OptimizerOptions NoPred;
  NoPred.EnableClassPrediction = false;
  std::unique_ptr<CompiledProgram> CP2 =
      compileProgram(*P, Config::Base, nullptr, {}, NoPred);
  EXPECT_EQ(bodyOf(*P, *CP2, "main(Int)").find("[pred]"),
            std::string::npos);
}

TEST(Optimizer, InliningSplicesSmallCallees) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method twice(x@Int) { x + x; }
    method main(n@Int) { twice(n); }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  std::string Body = bodyOf(*P, *CP, "main(Int)");
  EXPECT_NE(Body.find("(inlined#"), std::string::npos);
  EXPECT_EQ(Body.find("(send[static] twice"), std::string::npos);
  // Semantics preserved.
  EXPECT_EQ(runSource("method twice(x@Int) { x + x; }"
                      "method main(n@Int) { print(twice(n)); }",
                      Config::Base, 21),
            "42\n");
}

TEST(Optimizer, RecursiveMethodsNotInlinedForever) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method fact(n@Int) { if (n <= 1) { 1; } else { n * fact(n - 1); } }
    method main(n@Int) { print(fact(n)); }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  std::string Out;
  runMain(*CP, 10, &Out);
  EXPECT_EQ(Out, "3628800\n");
}

TEST(Optimizer, ClosureEliminationInInlinedIteration) {
  // The Figure 1 payoff: when `each` is inlined, the closure argument is
  // propagated to the call site inside and its creation is eliminated.
  std::unique_ptr<Program> P = buildProgram({R"(
    method each(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method main(n@Int) {
      let total := 0;
      each(n, fn(i) { total := total + i; });
      print(total);
    }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  PassThroughAnalysis PT(*P);
  SpecializationPlan Plan = makePlan(Config::CHA, *P, AC, PT, nullptr);
  Optimizer Opt(*P, AC);
  std::unique_ptr<CompiledProgram> CP = Opt.compile(Plan);

  EXPECT_GE(Opt.stats().MethodsInlined, 1u);
  EXPECT_GE(Opt.stats().ClosureCallsInlined, 1u);
  EXPECT_GE(Opt.stats().ClosureCreationsEliminated, 1u);

  std::string Out;
  RunStats Stats = runMain(*CP, 100, &Out);
  EXPECT_EQ(Out, "4950\n");
  EXPECT_EQ(Stats.ClosuresCreated, 0u) << "closure creation eliminated";
  EXPECT_EQ(Stats.ClosureCalls, 0u) << "closure calls inlined";
}

TEST(Optimizer, NonLocalReturnSurvivesInlining) {
  const char *Source = R"(
    method each(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method find(n@Int, t@Int) {
      each(n, fn(i) { if (i == t) { return 111; } });
      222;
    }
    method main(n@Int) { print(find(10, n)); }
  )";
  // Same output whether or not the optimizer inlines through the closure.
  EXPECT_EQ(runSource(Source, Config::Base, 4), "111\n");
  EXPECT_EQ(runSource(Source, Config::CHA, 4), "111\n");
  EXPECT_EQ(runSource(Source, Config::Base, 40), "222\n");
  EXPECT_EQ(runSource(Source, Config::CHA, 40), "222\n");
}

TEST(Optimizer, SpecializedVersionsBindInside) {
  // Under Cust, the receiver class is exact inside each version, so the
  // area(s) send statically binds inside describe's versions.
  std::unique_ptr<Program> P = buildProgram({R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method describe(s@Shape) { area(s); }
    method main(n@Int) {
      print(describe(new Circle) + describe(new Square));
    }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> Cust =
      compileProgram(*P, Config::Cust, nullptr, {}, NoInline);

  MethodId Describe;
  for (unsigned MI = 0; MI != P->numMethods(); ++MI)
    if (P->methodLabel(MethodId(MI)) == "describe(Shape)")
      Describe = MethodId(MI);
  ASSERT_TRUE(Describe.isValid());
  // Every class is concrete in Mica, so customization produces a version
  // for Shape itself as well as Circle and Square.
  ASSERT_EQ(Cust->versionsOf(Describe).size(), 3u);
  unsigned StaticallyBound = 0;
  for (uint32_t VI : Cust->versionsOf(Describe)) {
    const CompiledMethod &CM = Cust->version(VI);
    std::string Body = printExpr(CM.Body.get(), P->Syms);
    if (Body.find("(send[static] area") != std::string::npos)
      ++StaticallyBound;
  }
  // The Circle and Square versions bind area statically (the Shape-only
  // version has no applicable area method and stays dynamic).
  EXPECT_EQ(StaticallyBound, 2u);

  std::string Out;
  runMain(*Cust, 0, &Out);
  EXPECT_EQ(Out, "7\n");
}

TEST(Optimizer, StaticSelectWhenVersionsAmbiguous) {
  // Section 3.3: once the callee is specialized, a statically-bound
  // caller that cannot tell the versions apart needs a run-time version
  // selection — a dispatch.  (Cascading, tested in SpecializerTests,
  // exists to repair exactly this.)
  std::unique_ptr<Program> P = buildProgram({R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method describe(s@Shape) { area(s); }
    method caller(s@Shape) { describe(s); }
    method main(n@Int) { print(caller(new Circle)); }
  )"});
  ASSERT_TRUE(P);

  // Profile: describe's area site is hot (specialize describe for
  // Circle); the caller->describe arc stays cold so no cascade repairs
  // the caller.
  ApplicableClassesAnalysis AC(*P);
  CallGraph CG;
  MethodId Describe, AreaCircle;
  for (unsigned MI = 0; MI != P->numMethods(); ++MI) {
    if (P->methodLabel(MethodId(MI)) == "describe(Shape)")
      Describe = MethodId(MI);
    if (P->methodLabel(MethodId(MI)) == "area(Circle)")
      AreaCircle = MethodId(MI);
  }
  ASSERT_TRUE(Describe.isValid() && AreaCircle.isValid());
  Symbol AreaSym = P->Syms.find("area");
  for (unsigned I = 0; I != P->numCallSites(); ++I) {
    const CallSiteInfo &Site = P->callSite(CallSiteId(I));
    if (Site.Owner == Describe && Site.Send->GenericName == AreaSym)
      CG.addHits(Site.Id, Describe, AreaCircle, 50000);
  }

  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::Selective, &CG, {}, NoInline);

  bool SawSelect = false;
  for (const CompiledMethod &CM : CP->versions()) {
    if (!CM.Body || P->methodLabel(CM.Source) != "caller(Shape)")
      continue;
    std::string Body = printExpr(CM.Body.get(), P->Syms);
    SawSelect |= Body.find("[select]") != std::string::npos;
  }
  EXPECT_TRUE(SawSelect);

  std::string Out;
  RunStats Stats = runMain(*CP, 0, &Out);
  EXPECT_EQ(Out, "3\n");
  EXPECT_GE(Stats.VersionSelects, 1u);
}

TEST(Optimizer, CodeSizeGrowsWithVersions) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method describe(s@Shape) { area(s); }
    method main(n@Int) { describe(new Circle); }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> Base = compileProgram(*P, Config::Base);
  std::unique_ptr<CompiledProgram> Cust = compileProgram(*P, Config::Cust);
  EXPECT_GT(Cust->numCompiledRoutines(), Base->numCompiledRoutines());
  EXPECT_GT(Cust->totalCodeSize(), Base->totalCodeSize());
}

TEST(Optimizer, InvokedBitsTrackDynamicCompilation) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method describe(s@Shape) { area(s); }
    method main(n@Int) { describe(new Circle); }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> Cust = compileProgram(*P, Config::Cust);
  EXPECT_EQ(Cust->numInvokedRoutines(), 0u);
  runMain(*Cust, 0);
  unsigned Invoked = Cust->numInvokedRoutines();
  EXPECT_GT(Invoked, 0u);
  EXPECT_LT(Invoked, Cust->numCompiledRoutines())
      << "Square versions were generated but never invoked";
  Cust->resetInvoked();
  EXPECT_EQ(Cust->numInvokedRoutines(), 0u);
}

//===- tests/ResilienceTests.cpp - Deadlines, failpoints, crash safety ------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// The long-running-service guarantees: cooperative deadlines surface as
// structured DeadlineExceeded traps, every registered failpoint injected
// into a full five-configuration pipeline yields a Diagnostic or a trap
// (never a crash or corrupt state), and the profile database survives a
// torn write at every step of its save sequence.
//
//===----------------------------------------------------------------------===//

#include "driver/Adaptive.h"
#include "driver/Pipeline.h"
#include "driver/Snapshot.h"

#include "TestUtil.h"
#include "profile/ProfileDb.h"
#include "runtime/DispatchTable.h"
#include "support/Deadline.h"
#include "support/FailPoint.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

std::string readFileOr(const std::string &Path, const std::string &Fallback) {
  std::ifstream IS(Path);
  if (!IS)
    return Fallback;
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return Buf.str();
}

void removeAll(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".bak").c_str());
  std::remove((Path + ".tmp").c_str());
}

const char *CounterSrc = R"(
    class Box { slot v; }
    method bump(b@Box) { b.v := b.v + 1; b.v; }
    method main(n@Int) {
      let b := new Box; b.v := 0;
      let i := 0;
      while (i < n) { bump(b); i := i + 1; }
      print(b.v);
    }
)";

/// Every iteration disarms before returning, even through ASSERT failures.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::disarmAll(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Deadline and CancelToken primitives.
//===----------------------------------------------------------------------===//

TEST(Deadline, DefaultNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.armed());
  EXPECT_FALSE(D.expired());
  EXPECT_EQ(D.remainingMillis(), INT64_MAX);
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  Deadline D = Deadline::afterMillis(0);
  EXPECT_TRUE(D.armed());
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingMillis(), 0);
}

TEST(Deadline, NegativeBudgetClampsToZero) {
  EXPECT_TRUE(Deadline::afterMillis(-5).expired());
  EXPECT_EQ(Deadline::afterMillis(-5).budgetMillis(), 0);
}

TEST(CancelToken, ExplicitCancelStops) {
  CancelToken T;
  EXPECT_FALSE(T.stopRequested());
  T.requestCancel();
  EXPECT_TRUE(T.stopRequested());
  EXPECT_NE(T.reason().find("cancelled"), std::string::npos);
}

TEST(CancelToken, ExpiredDeadlineStopsWithBudgetInReason) {
  CancelToken T;
  T.setDeadline(Deadline::afterMillis(0));
  EXPECT_TRUE(T.stopRequested());
  EXPECT_NE(T.reason().find("deadline"), std::string::npos);
  EXPECT_NE(T.reason().find("0 ms"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Deadlines through the interpreter and the pipeline.
//===----------------------------------------------------------------------===//

TEST(DeadlineTrap, InterpreterPollsTheToken) {
  std::unique_ptr<Program> P =
      buildProgram({"method main(n@Int) { while (true) { n; } }"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CancelToken Tok;
  Tok.setDeadline(Deadline::afterMillis(0));
  RunOptions Opts;
  Opts.Cancel = &Tok;
  Interpreter I(*CP, Opts);
  EXPECT_FALSE(I.callMain(0));
  EXPECT_EQ(I.trap().Kind, TrapKind::DeadlineExceeded) << I.trap().render();
  EXPECT_NE(I.trap().Message.find("deadline"), std::string::npos);
  // The poll is sampled every 8192 nodes; an infinite loop must still be
  // stopped within a small multiple of that.
  EXPECT_LT(I.stats().NodesEvaluated, 100000u);
}

TEST(DeadlineTrap, ExplicitCancelTrapsToo) {
  std::unique_ptr<Program> P =
      buildProgram({"method main(n@Int) { while (true) { n; } }"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CancelToken Tok;
  Tok.requestCancel(); // as a signal handler would
  RunOptions Opts;
  Opts.Cancel = &Tok;
  Interpreter I(*CP, Opts);
  EXPECT_FALSE(I.callMain(0));
  EXPECT_EQ(I.trap().Kind, TrapKind::DeadlineExceeded);
  EXPECT_NE(I.trap().Message.find("cancelled"), std::string::npos);
}

TEST(DeadlineTrap, PipelinePhaseGateStopsBeforeWork) {
  CancelToken Tok;
  Tok.setDeadline(Deadline::afterMillis(0));
  std::string Err;
  // The token is already expired, so construction fails at the first
  // phase boundary with the deadline message.
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({CounterSrc}, Err, false, &Tok);
  EXPECT_EQ(W, nullptr);
  EXPECT_NE(Err.find("deadline"), std::string::npos);
}

TEST(DeadlineTrap, RunConfigReportsDeadlineTrap) {
  CancelToken Tok;
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({CounterSrc}, Err, false, &Tok);
  ASSERT_TRUE(W) << Err;
  // Expire only after load so the phase gate (not init) reports it.
  Tok.setDeadline(Deadline::afterMillis(0));
  std::optional<ConfigResult> R = W->runConfig(Config::Base, 3, Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_EQ(W->lastTrap().Kind, TrapKind::DeadlineExceeded);
}

TEST(DeadlineTrap, UnexpiredDeadlineDoesNotPerturbTheRun) {
  CancelToken Tok;
  Tok.setDeadline(Deadline::afterMillis(60000));
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({CounterSrc}, Err, false, &Tok);
  ASSERT_TRUE(W) << Err;
  std::optional<ConfigResult> R = W->runConfig(Config::Base, 5, Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_EQ(R->Output, "5\n");
}

//===----------------------------------------------------------------------===//
// Failpoint framework basics.
//===----------------------------------------------------------------------===//

TEST(Failpoint, CatalogIsStable) {
  const std::vector<const char *> &Names = failpoint::allNames();
  EXPECT_EQ(Names.size(), 20u);
  // Spot-check the contract names tools and docs rely on.
  auto Has = [&](const char *N) {
    for (const char *Name : Names)
      if (std::string(Name) == N)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("pipeline.resolve"));
  EXPECT_TRUE(Has("interp.frame-acquire"));
  EXPECT_TRUE(Has("dispatch.table-build"));
  EXPECT_TRUE(Has("profiledb.save.rename"));
  EXPECT_TRUE(Has("adaptive.build"));
  EXPECT_TRUE(Has("adaptive.promote"));
}

TEST(Failpoint, ConfigureRejectsBadSpecsAtomically) {
  FailpointGuard G;
  std::string Err;
  EXPECT_FALSE(failpoint::configure("nonsense=fail", Err));
  EXPECT_NE(Err.find("nonsense"), std::string::npos);
  EXPECT_FALSE(failpoint::anyArmed());
  // A bad pair anywhere in the list arms nothing, even after valid pairs.
  EXPECT_FALSE(
      failpoint::configure("pipeline.parse=fail,pipeline.cha=explode", Err));
  EXPECT_FALSE(failpoint::anyArmed());
  EXPECT_TRUE(failpoint::configure("pipeline.parse=fail", Err)) << Err;
  EXPECT_TRUE(failpoint::anyArmed());
  failpoint::disarmAll();
  EXPECT_FALSE(failpoint::anyArmed());
}

TEST(Failpoint, TriggeredCountsHits) {
  FailpointGuard G;
  std::string Err;
  ASSERT_TRUE(failpoint::configure("pipeline.plan=fail", Err));
  uint64_t Before = failpoint::totalHits();
  EXPECT_TRUE(failpoint::triggered("pipeline.plan"));
  EXPECT_FALSE(failpoint::triggered("pipeline.optimize"));
  EXPECT_EQ(failpoint::totalHits(), Before + 1);
}

//===----------------------------------------------------------------------===//
// The headline guarantee: arming any single registered failpoint during a
// full five-configuration pipeline produces a clean structured failure —
// a null Workbench with diagnostics, a failed phase with diagnostics, or
// a trap — and never a crash.  Sites not on a given path simply stay
// quiet and the pipeline completes.
//===----------------------------------------------------------------------===//

TEST(Failpoint, EverySiteFailsCleanlyAcrossAllConfigs) {
  for (const char *Name : failpoint::allNames()) {
    SCOPED_TRACE(Name);
    FailpointGuard G;
    std::string Err;
    ASSERT_TRUE(failpoint::configure(std::string(Name) + "=fail", Err))
        << Err;

    std::unique_ptr<Workbench> W =
        Workbench::fromSources({CounterSrc}, Err, false);
    if (!W) {
      // Load-phase injection: rejected with a diagnostic naming the site.
      EXPECT_NE(Err.find("injected failure"), std::string::npos) << Err;
      continue;
    }
    std::string ProfErr;
    W->collectProfile(3, ProfErr); // may fail; Selective must degrade
    for (Config C : {Config::Base, Config::Cust, Config::CustMM,
                     Config::CHA, Config::Selective}) {
      std::string RunErr;
      std::optional<ConfigResult> R = W->runConfig(C, 3, RunErr);
      if (R) {
        EXPECT_EQ(R->Output, "3\n");
      } else {
        // Structured failure: a message, and either a trap kind or a
        // diagnostic — never an empty-handed nullopt.
        EXPECT_FALSE(RunErr.empty());
      }
    }
  }
}

TEST(Failpoint, FrameAcquireInjectionTrapsInternalError) {
  FailpointGuard G;
  std::string Err;
  ASSERT_TRUE(failpoint::configure("interp.frame-acquire=fail", Err));
  std::unique_ptr<Program> P = buildProgram({CounterSrc});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  Interpreter I(*CP);
  EXPECT_FALSE(I.callMain(3));
  EXPECT_EQ(I.trap().Kind, TrapKind::InternalError) << I.trap().render();
  EXPECT_NE(I.trap().Message.find("interp.frame-acquire"), std::string::npos);
}

TEST(Failpoint, DispatchTableBuildInjectionDegradesToSearch) {
  FailpointGuard G;
  std::unique_ptr<Program> P = buildProgram({R"(
      class A; class B isa A;
      method f(x@A) { 1; }
      method f(x@B) { 2; }
      method main(n@Int) { print(f(new B) + f(new A)); }
  )"});
  ASSERT_TRUE(P);
  std::string Err;
  ASSERT_TRUE(failpoint::configure("dispatch.table-build=fail", Err));
  DispatchTableSet Degraded(*P);
  failpoint::disarmAll();
  DispatchTableSet Normal(*P);
  // Degraded tables materialize nothing but answer identically through
  // the search-based fallback.
  EXPECT_EQ(Degraded.totalCells(), 0u);
  for (unsigned GI = 0; GI != P->numGenerics(); ++GI) {
    const GenericInfo &Info = P->generic(GenericId(GI));
    std::vector<ClassId> Args(Info.Arity, P->Classes.root());
    EXPECT_EQ(Degraded.forGeneric(GenericId(GI)).lookup(Args),
              Normal.forGeneric(GenericId(GI)).lookup(Args));
  }
}

//===----------------------------------------------------------------------===//
// Crash-safe profile persistence: v2 on-disk format, generations, backup
// rotation, and torn-write recovery with a failpoint at every save step.
//===----------------------------------------------------------------------===//

namespace {

/// Builds a small db worth saving.
ProfileDb makeDb() {
  ProfileDb Db;
  CallGraph &G = Db.forProgram("prog");
  G.addHits(CallSiteId(1), MethodId(2), MethodId(3), 40);
  G.addHits(CallSiteId(2), MethodId(3), MethodId(4), 2);
  return Db;
}

} // namespace

TEST(CrashSafeDb, SaveWritesV2HeaderAndRoundTrips) {
  std::string Path = tempPath("v2_roundtrip.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  Diagnostics Diags;
  ASSERT_TRUE(Db.saveToFile(Path, Diags)) << Diags.toString();
  std::string Text = readFileOr(Path, "");
  EXPECT_EQ(Text.rfind("selspec-profile v2 gen 1 sum ", 0), 0u) << Text;

  ProfileDb Loaded;
  ASSERT_TRUE(Loaded.loadFromFile(Path, Diags)) << Diags.toString();
  EXPECT_EQ(Loaded.generation(), 1u);
  EXPECT_EQ(Loaded.forProgram("prog").totalWeight(),
            Db.forProgram("prog").totalWeight());
  removeAll(Path);
}

TEST(CrashSafeDb, GenerationsCountUpAndRotateBackups) {
  std::string Path = tempPath("generations.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  ASSERT_TRUE(Db.saveToFile(Path));
  ASSERT_TRUE(Db.saveToFile(Path));
  ASSERT_TRUE(Db.saveToFile(Path));
  EXPECT_EQ(readFileOr(Path, "").rfind("selspec-profile v2 gen 3", 0), 0u);
  EXPECT_EQ(readFileOr(Path + ".bak", "").rfind("selspec-profile v2 gen 2", 0),
            0u);
  removeAll(Path);
}

TEST(CrashSafeDb, ChecksumCatchesTornFile) {
  std::string Path = tempPath("torn.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  ASSERT_TRUE(Db.saveToFile(Path));
  std::string Text = readFileOr(Path, "");
  ASSERT_GT(Text.size(), 20u);
  {
    std::ofstream OS(Path, std::ios::trunc);
    OS << Text.substr(0, Text.size() / 2); // torn mid-body
  }
  ProfileDb Loaded;
  Diagnostics Diags;
  EXPECT_FALSE(Loaded.loadFromFile(Path, Diags));
  EXPECT_NE(Diags.toString().find("checksum"), std::string::npos)
      << Diags.toString();
  removeAll(Path);
}

TEST(CrashSafeDb, LoadFallsBackToBackup) {
  std::string Path = tempPath("fallback.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  ASSERT_TRUE(Db.saveToFile(Path)); // gen 1
  ASSERT_TRUE(Db.saveToFile(Path)); // gen 2, .bak = gen 1
  {
    std::ofstream OS(Path, std::ios::trunc);
    OS << "selspec-profile v2 gen 9 sum 0123456789abcdef\ngarbage\n";
  }
  ProfileDb Loaded;
  Diagnostics Diags;
  ASSERT_TRUE(Loaded.loadFromFile(Path, Diags)) << Diags.toString();
  EXPECT_EQ(Loaded.generation(), 1u);
  EXPECT_NE(Diags.toString().find("recovered generation 1"),
            std::string::npos)
      << Diags.toString();
  EXPECT_EQ(Loaded.forProgram("prog").totalWeight(),
            Db.forProgram("prog").totalWeight());
  removeAll(Path);
}

TEST(CrashSafeDb, MissingPrimaryUsesBackup) {
  std::string Path = tempPath("missing_primary.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  ASSERT_TRUE(Db.saveToFile(Path));
  // A crash between the two renames leaves only <path>.bak.
  ASSERT_EQ(std::rename(Path.c_str(), (Path + ".bak").c_str()), 0);
  ProfileDb Loaded;
  Diagnostics Diags;
  ASSERT_TRUE(Loaded.loadFromFile(Path, Diags)) << Diags.toString();
  EXPECT_EQ(Loaded.generation(), 1u);
  removeAll(Path);
}

// The decisive torn-write matrix: after generation 2 exists, inject a
// failure at EVERY step of the generation-3 save.  The save must report
// failure, and a subsequent load must still produce generation 2 (from
// the primary or the rotated backup, depending on where the "crash"
// happened).
TEST(CrashSafeDb, EverySaveStepFailureLeavesLastGenerationLoadable) {
  const char *SaveSteps[] = {
      "profiledb.save.open", "profiledb.save.write", "profiledb.save.sync",
      "profiledb.save.backup", "profiledb.save.rename"};
  for (const char *Step : SaveSteps) {
    SCOPED_TRACE(Step);
    FailpointGuard G;
    std::string Path = tempPath(std::string("step_") +
                                std::string(Step).substr(15) + ".db");
    removeAll(Path);
    ProfileDb Db = makeDb();
    ASSERT_TRUE(Db.saveToFile(Path)); // gen 1
    ASSERT_TRUE(Db.saveToFile(Path)); // gen 2

    std::string Err;
    ASSERT_TRUE(failpoint::configure(std::string(Step) + "=fail", Err));
    Diagnostics SaveDiags;
    EXPECT_FALSE(Db.saveToFile(Path, SaveDiags));
    EXPECT_NE(SaveDiags.toString().find(Step), std::string::npos)
        << SaveDiags.toString();
    failpoint::disarmAll();

    ProfileDb Loaded;
    Diagnostics LoadDiags;
    ASSERT_TRUE(Loaded.loadFromFile(Path, LoadDiags))
        << LoadDiags.toString();
    EXPECT_EQ(Loaded.generation(), 2u) << LoadDiags.toString();
    EXPECT_EQ(Loaded.forProgram("prog").totalWeight(),
              Db.forProgram("prog").totalWeight());
    removeAll(Path);
  }
}

TEST(CrashSafeDb, LoadFailpointsFailCleanly) {
  std::string Path = tempPath("load_fp.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  ASSERT_TRUE(Db.saveToFile(Path));
  for (const char *Step : {"profiledb.load.open", "profiledb.load.header"}) {
    SCOPED_TRACE(Step);
    FailpointGuard G;
    std::string Err;
    ASSERT_TRUE(failpoint::configure(std::string(Step) + "=fail", Err));
    ProfileDb Loaded;
    Diagnostics Diags;
    // load.open fails both primary and backup; load.header likewise.
    // Either way: errors, no crash, and nothing merged.
    EXPECT_FALSE(Loaded.loadFromFile(Path, Diags));
    EXPECT_EQ(Loaded.numPrograms(), 0u);
  }
  removeAll(Path);
}

TEST(CrashSafeDb, TornPrimaryDoesNotPolluteBeforeFallback) {
  std::string Path = tempPath("no_pollute.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  ASSERT_TRUE(Db.saveToFile(Path)); // gen 1 -> becomes .bak
  ASSERT_TRUE(Db.saveToFile(Path)); // gen 2
  // Corrupt the primary so its header parses but the body is half gone:
  // the loader must not keep any arcs from the torn primary.
  std::string Text = readFileOr(Path, "");
  {
    std::ofstream OS(Path, std::ios::trunc);
    OS << Text.substr(0, Text.size() - 10);
  }
  ProfileDb Loaded;
  Diagnostics Diags;
  ASSERT_TRUE(Loaded.loadFromFile(Path, Diags)) << Diags.toString();
  EXPECT_EQ(Loaded.generation(), 1u);
  EXPECT_EQ(Loaded.forProgram("prog").totalWeight(),
            Db.forProgram("prog").totalWeight());
  removeAll(Path);
}

TEST(CrashSafeDb, V1InterchangeStillAccepted) {
  // serialize() stays v1 (the in-memory interchange format other tests
  // and the fuzzer round-trip); loadFromFile accepts it for migration.
  std::string Path = tempPath("v1_migrate.db");
  removeAll(Path);
  ProfileDb Db = makeDb();
  {
    std::ofstream OS(Path);
    OS << Db.serialize();
  }
  ProfileDb Loaded;
  Diagnostics Diags;
  ASSERT_TRUE(Loaded.loadFromFile(Path, Diags)) << Diags.toString();
  EXPECT_EQ(Loaded.generation(), 0u); // v1 files carry no generation
  EXPECT_EQ(Loaded.forProgram("prog").totalWeight(),
            Db.forProgram("prog").totalWeight());
  // And the next save starts the generation counter above it.
  ASSERT_TRUE(Loaded.saveToFile(Path));
  EXPECT_EQ(readFileOr(Path, "").rfind("selspec-profile v2 gen 1", 0), 0u);
  removeAll(Path);
}

//===----------------------------------------------------------------------===//
// Adaptive respecialization under injected faults: any single armed
// adaptive.* failpoint during serving demotes the candidate and pins the
// incumbent — never a crash, a lost job, or a wedged serving loop.
//===----------------------------------------------------------------------===//

TEST(AdaptiveFailpoints, AnySingleFailpointRollsBackToIncumbent) {
  const char *ServeSrc = R"(
      class Shape; class Circle isa Shape; class Square isa Shape;
      method area(s@Circle) { 3; }
      method area(s@Square) { 4; }
      method pick(n@Int) {
        if (n % 2 == 0) { new Circle; } else { new Square; }
      }
      method main(n@Int) {
        let i := 0; let acc := 0;
        while (i < n) { acc := acc + area(pick(i)); i := i + 1; }
        acc;
      })";
  const char *Points[] = {"adaptive.build", "adaptive.canary",
                          "adaptive.promote", "adaptive.profile-save"};
  for (const char *Point : Points) {
    SCOPED_TRACE(Point);
    FailpointGuard G;
    std::string Err;
    ASSERT_TRUE(failpoint::configure(std::string(Point) + "=fail", Err))
        << Err;

    std::string DbPath = tempPath("adaptive_fp.profdb");
    removeAll(DbPath);

    std::shared_ptr<Workbench> WB = Workbench::fromSources({ServeSrc}, Err);
    ASSERT_TRUE(WB) << Err;
    std::shared_ptr<const CompiledSnapshot> Inc =
        WB->buildSnapshot(Config::CHA, Err, {}, {}, WB);
    ASSERT_TRUE(Inc) << Err;

    AdaptiveController::Options O;
    O.CanaryFraction = 0.5;
    O.CanaryJobs = 4;
    O.MinIncumbentJobs = 1;
    O.RespecializeIntervalMs = 0;
    O.ProfileDbPath = DbPath; // exercises adaptive.profile-save
    AdaptiveController C(
        Inc,
        [ServeSrc](const CallGraph &,
                   std::string &E) -> std::shared_ptr<const CompiledSnapshot> {
          std::shared_ptr<Workbench> B = Workbench::fromSources({ServeSrc}, E);
          if (!B)
            return nullptr;
          return B->buildSnapshot(Config::CHA, E, {}, {}, B);
        },
        O);

    // The serving loop micad runs, bounded: every job must complete Ok
    // whichever failpoint is armed (a failed canary probe serves from the
    // incumbent; a healthy candidate runs fine even if its promotion is
    // then injected to fail).
    auto Serve = [&](size_t N) {
      for (size_t I = 0; I != N; ++I) {
        AdaptiveController::Ticket T = C.admit();
        ASSERT_TRUE(T.Snap) << "admission must always yield a snapshot";
        CompiledSnapshot::JobOptions JO;
        JO.CollectArcs = T.SampleArcs;
        CompiledSnapshot::JobResult R = T.Snap->run(30, JO);
        C.report(T, R.Ok, R.Ok ? R.R.Run.Cycles : 0,
                 T.SampleArcs ? &R.Arcs : nullptr);
        EXPECT_TRUE(R.Ok) << "job " << I << " failed: " << R.Error;
      }
    };

    Serve(8);
    std::string BuildErr;
    C.respecializeNow(BuildErr, /*Force=*/true); // fails for build/save points
    Serve(24); // enough traffic for a full canary verdict
    EXPECT_TRUE(C.waitForDecision(0, 2000));

    EXPECT_EQ(C.promotions(), 0u)
        << "an injected fault anywhere in the chain must block promotion";
    EXPECT_GE(C.rollbacks(), 1u) << "the failure must roll back, not linger";
    EXPECT_EQ(C.incumbent().get(), Inc.get())
        << "the incumbent must come through the episode untouched";
    EXPECT_EQ(C.phase(), AdaptiveController::Phase::Stable)
        << "no candidate may survive the injected fault";

    removeAll(DbPath);
  }
}

//===- tests/BytecodeTests.cpp - Bytecode tier equivalence ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// The tier-equivalence invariant: the bytecode interpreter must produce
// RunStats bit-identical to the AST walker — every counter, Cycles, and the
// full NodeMix histogram — plus identical output and identical traps, on the
// same CompiledProgram.  Exercised over the four paper benchmarks under all
// five configurations, and over targeted edge cases the bytecode compiler
// must get right: deep closure nesting, wide-arity calls past the IC limit,
// traps unwinding out of inlined callees, and non-local returns (caught and
// escaped).  Also covers the disassembler and the tier plumbing in the
// driver pipeline.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeCompiler.h"
#include "bytecode/BytecodeInterpreter.h"
#include "bytecode/Disassembler.h"

#include "TestUtil.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Everything one tier's run produced, for field-by-field comparison.
struct TierRun {
  bool Ok = false;
  RunStats Stats;
  std::string Output;
  TrapKind Trap = TrapKind::None;
  std::string Error;
};

template <class InterpT> TierRun finish(InterpT &I, bool Ok,
                                        const std::ostringstream &Out) {
  TierRun R;
  R.Ok = Ok;
  R.Stats = I.stats();
  R.Output = Out.str();
  R.Trap = I.trap().Kind;
  R.Error = I.errorMessage();
  return R;
}

TierRun runAstTier(CompiledProgram &CP, int64_t Input,
                   const ResourceLimits &Limits = {}) {
  std::ostringstream Out;
  RunOptions Opts;
  Opts.Output = &Out;
  Opts.Limits = Limits;
  Interpreter I(CP, Opts);
  return finish(I, I.callMain(Input), Out);
}

TierRun runBytecodeTier(CompiledProgram &CP, BcModule &Mod, int64_t Input,
                        const ResourceLimits &Limits = {}) {
  std::ostringstream Out;
  RunOptions Opts;
  Opts.Output = &Out;
  Opts.Limits = Limits;
  BytecodeInterpreter I(CP, Mod, Opts);
  return finish(I, I.callMain(Input), Out);
}

/// Asserts every RunStats field matches, NodeMix bucket by bucket.
void expectSameStats(const RunStats &Ast, const RunStats &Bc,
                     const std::string &Label) {
  EXPECT_EQ(Ast.DynamicDispatches, Bc.DynamicDispatches) << Label;
  EXPECT_EQ(Ast.VersionSelects, Bc.VersionSelects) << Label;
  EXPECT_EQ(Ast.StaticCalls, Bc.StaticCalls) << Label;
  EXPECT_EQ(Ast.InlinePrims, Bc.InlinePrims) << Label;
  EXPECT_EQ(Ast.PredictedHits, Bc.PredictedHits) << Label;
  EXPECT_EQ(Ast.PredictedMisses, Bc.PredictedMisses) << Label;
  EXPECT_EQ(Ast.FeedbackHits, Bc.FeedbackHits) << Label;
  EXPECT_EQ(Ast.FeedbackMisses, Bc.FeedbackMisses) << Label;
  EXPECT_EQ(Ast.ClosuresCreated, Bc.ClosuresCreated) << Label;
  EXPECT_EQ(Ast.ClosureCalls, Bc.ClosureCalls) << Label;
  EXPECT_EQ(Ast.Allocations, Bc.Allocations) << Label;
  EXPECT_EQ(Ast.MethodInvocations, Bc.MethodInvocations) << Label;
  EXPECT_EQ(Ast.NodesEvaluated, Bc.NodesEvaluated) << Label;
  EXPECT_EQ(Ast.PeakDepth, Bc.PeakDepth) << Label;
  EXPECT_EQ(Ast.Cycles, Bc.Cycles) << Label;
  for (size_t K = 0; K != Expr::NumKinds; ++K)
    EXPECT_EQ(Ast.NodeMix[K], Bc.NodeMix[K])
        << Label << " NodeMix["
        << exprKindName(static_cast<Expr::Kind>(K)) << ']';
}

void expectSameRun(const TierRun &Ast, const TierRun &Bc,
                   const std::string &Label) {
  EXPECT_EQ(Ast.Ok, Bc.Ok) << Label << "\n  ast: " << Ast.Error
                           << "\n  bc:  " << Bc.Error;
  EXPECT_EQ(Ast.Trap, Bc.Trap) << Label;
  EXPECT_EQ(Ast.Error, Bc.Error) << Label;
  EXPECT_EQ(Ast.Output, Bc.Output) << Label;
  expectSameStats(Ast.Stats, Bc.Stats, Label);
}

constexpr Config AllConfigs[] = {Config::Base, Config::Cust, Config::CustMM,
                                 Config::CHA, Config::Selective};

/// Builds \p Sources, then for every configuration compiles once and runs
/// the same CompiledProgram on both tiers, asserting identical results.
/// Selective gets a profile gathered from a Base run at \p Input.
void expectTiersAgree(const std::vector<std::string> &Sources, int64_t Input,
                      const ResourceLimits &Limits = {}) {
  std::unique_ptr<Program> P = buildProgram(Sources);
  ASSERT_TRUE(P);

  CallGraph CG;
  {
    std::unique_ptr<CompiledProgram> BaseCP = compileProgram(*P, Config::Base);
    RunOptions Opts;
    Opts.Profile = &CG;
    Opts.Limits = Limits;
    Interpreter I(*BaseCP, Opts);
    I.callMain(Input); // A trapping profile run still yields partial arcs.
  }

  for (Config C : AllConfigs) {
    std::unique_ptr<CompiledProgram> CP =
        compileProgram(*P, C, CG.empty() ? nullptr : &CG);
    ASSERT_TRUE(CP);
    BcModule Mod = compileToBytecode(*CP);
    ASSERT_TRUE(Mod.Ok) << configName(C)
                        << ": bytecode compilation failed: " << Mod.Error;
    TierRun Ast = runAstTier(*CP, Input, Limits);
    TierRun Bc = runBytecodeTier(*CP, Mod, Input, Limits);
    expectSameRun(Ast, Bc, std::string("config ") + configName(C));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Paper benchmarks: full differential sweep (the acceptance gate).
//===----------------------------------------------------------------------===//

namespace {

struct BenchCase {
  const char *Name;
  std::vector<std::string> Files;
  int64_t SmallInput;
};

const BenchCase BenchCases[] = {
    {"richards", {"richards.mica"}, 30},
    {"instsched", {"instsched.mica"}, 6},
    {"typechecker", {"minilang.mica", "typechecker.mica"}, 8},
    {"compiler", {"minilang.mica", "compiler.mica"}, 8},
};

} // namespace

TEST(BytecodeDifferential, PaperBenchmarksAllConfigs) {
  for (const BenchCase &Case : BenchCases) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(Case.Files, Err);
    ASSERT_TRUE(W) << Case.Name << ": " << Err;
    ASSERT_TRUE(W->collectProfile(Case.SmallInput, Err))
        << Case.Name << ": " << Err;

    SelectiveOptions Sel;
    Sel.SpecializationThreshold = 50;
    for (Config C : AllConfigs) {
      std::unique_ptr<CompiledProgram> CP = W->compileOnly(C, Sel);
      ASSERT_TRUE(CP) << Case.Name << '/' << configName(C);
      BcModule Mod = compileToBytecode(*CP);
      ASSERT_TRUE(Mod.Ok) << Case.Name << '/' << configName(C) << ": "
                          << Mod.Error;
      TierRun Ast = runAstTier(*CP, Case.SmallInput);
      TierRun Bc = runBytecodeTier(*CP, Mod, Case.SmallInput);
      ASSERT_TRUE(Ast.Ok) << Case.Name << '/' << configName(C) << ": "
                          << Ast.Error;
      expectSameRun(Ast, Bc,
                    std::string(Case.Name) + "/" + configName(C));
    }
  }
}

//===----------------------------------------------------------------------===//
// Compiler edge cases, run differentially under every configuration.
//===----------------------------------------------------------------------===//

TEST(BytecodeDifferential, DeepClosureNesting) {
  expectTiersAgree({R"(
    method main(n@Int) {
      let f1 := fn(a) { fn(b) { fn(c) { fn(d) { a + b + c + d + n; }; }; }; };
      let f2 := f1(1);
      let f3 := f2(2);
      let f4 := f3(3);
      print(f4(4));
    })"},
                   10);
}

TEST(BytecodeDifferential, ClosureMutatesCapturesAcrossLevels) {
  expectTiersAgree({R"(
    method apply(f) { f(); }
    method main(n@Int) {
      let count := 0;
      let bump := fn() { count := count + 1; fn() { count := count + 10; }; };
      let inner := bump();
      apply(inner);
      apply(bump());
      print(count);
    })"},
                   0);
}

TEST(BytecodeDifferential, WideArityCallsPastIcLimit) {
  // Arity 9 exceeds BcIcMaxArity (6): every send at this site must take the
  // inline cache's miss path yet still reproduce AST accounting exactly.
  expectTiersAgree({R"(
    method wide(a@Int, b@Int, c@Int, d@Int, e@Int, f@Int, g@Int, h@Int, i@Int) {
      a + b + c + d + e + f + g + h + i;
    }
    method main(n@Int) {
      let k := 0; let total := 0;
      while (k < 5) {
        total := total + wide(1, 2, 3, 4, 5, 6, 7, 8, k);
        k := k + 1;
      }
      print(total);
    })"},
                   0);
}

TEST(BytecodeDifferential, TrapInCalleeUnwindsInlinedRegions) {
  // The out-of-bounds trap fires inside a callee that inlining configs fold
  // into the caller; Error control must unwind through inlined regions
  // without being caught as a non-local return.
  expectTiersAgree({R"(
    method helper(x@Int) { at(array(1), x); }
    method main(n@Int) {
      let i := 0;
      while (i < 3) { helper(5); i := i + 1; }
      print("unreached");
    })"},
                   0);
}

TEST(BytecodeDifferential, NonLocalReturnThroughClosure) {
  expectTiersAgree({R"(
    method each(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method find(n@Int, target@Int) {
      each(n, fn(i) { if (i == target) { return "found"; } });
      "missing";
    }
    method main(n@Int) {
      print(find(10, 4));
      print(find(10, 12));
    })"},
                   0);
}

TEST(BytecodeDifferential, EscapedNonLocalReturnTraps) {
  // Calling the closure after its home activation died must trap
  // identically on both tiers.
  expectTiersAgree({R"(
    method makeEsc(n@Int) { fn() { return n; }; }
    method main(n@Int) {
      let f := makeEsc(7);
      f();
      print("unreached");
    })"},
                   0);
}

TEST(BytecodeDifferential, PolymorphicDispatchAndSlots) {
  expectTiersAgree({R"(
    class Shape { slot tag; }
    class Circle isa Shape { slot r; }
    class Square isa Shape { slot s; }
    method area(x@Circle) { x.r * x.r * 3; }
    method area(x@Square) { x.s * x.s; }
    method main(n@Int) {
      let a := array(2);
      atPut(a, 0, new Circle { tag := 1, r := 2 });
      atPut(a, 1, new Square { tag := 2, s := 3 });
      let i := 0; let total := 0;
      while (i < n) {
        total := total + area(at(a, i - (i / 2) * 2));
        i := i + 1;
      }
      print(total);
    })"},
                   20);
}

TEST(BytecodeDifferential, RecursionAndArithmetic) {
  expectTiersAgree({R"(
    method fib(n@Int) { if (n < 2) { n; } else { fib(n - 1) + fib(n - 2); } }
    method main(n@Int) { print(fib(n)); })"},
                   15);
}

TEST(BytecodeDifferential, NotUnderstoodTrap) {
  expectTiersAgree({R"(
    class A { slot x; }
    method foo(a@A) { a.x; }
    method main(n@Int) { foo(3); })"},
                   0);
}

//===----------------------------------------------------------------------===//
// Resource guards: every limit must trap at the identical charged node.
//===----------------------------------------------------------------------===//

TEST(BytecodeDifferential, NodeBudgetTrap) {
  ResourceLimits Limits;
  Limits.MaxNodes = 5000;
  expectTiersAgree({R"(
    method main(n@Int) {
      let i := 0;
      while (true) { i := i + 1; }
    })"},
                   0, Limits);
}

TEST(BytecodeDifferential, DepthLimitTrap) {
  ResourceLimits Limits;
  Limits.MaxDepth = 64; // Fires long before the native-stack backstop.
  expectTiersAgree({R"(
    method down(n@Int) { down(n + 1); }
    method main(n@Int) { down(0); })"},
                   0, Limits);
}

TEST(BytecodeDifferential, HeapLimitTrap) {
  ResourceLimits Limits;
  Limits.MaxObjects = 16;
  expectTiersAgree({R"(
    class Node { slot next; }
    method main(n@Int) {
      let i := 0;
      while (i < 1000) { new Node { next := nil }; i := i + 1; }
    })"},
                   0, Limits);
}

//===----------------------------------------------------------------------===//
// Inline caches: behavior observability.
//===----------------------------------------------------------------------===//

TEST(BytecodeIc, MonomorphicSiteHitsAfterFirstSend) {
  // The receiver flows through an array load so its class is opaque to the
  // intraprocedural analysis and the send stays a dynamic-dispatch site.
  std::unique_ptr<Program> P = buildProgram({R"(
    class A { slot v; }
    class B isa A { slot w; }
    method get(a@A) { a.v; }
    method main(n@Int) {
      let arr := array(1);
      atPut(arr, 0, new A { v := 41 });
      let i := 0; let total := 0;
      while (i < n) { total := total + get(at(arr, 0)); i := i + 1; }
      print(total);
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  BcModule Mod = compileToBytecode(*CP);
  ASSERT_TRUE(Mod.Ok) << Mod.Error;

  RunOptions Opts;
  BytecodeInterpreter I(*CP, Mod, Opts);
  ASSERT_TRUE(I.callMain(100)) << I.errorMessage();
  // Under Base every send is a dynamic dispatch; after the first miss the
  // monomorphic site must hit its inline cache.
  EXPECT_GT(I.icHits(), 90u);
  EXPECT_GT(I.icMisses(), 0u);
  EXPECT_LT(I.icMisses(), 20u);
}

TEST(BytecodeIc, IcStateIsPerInterpreterNotBakedIntoModule) {
  // The snapshot-immutability contract: a BcModule carries no run-time IC
  // state, so a fresh interpreter over the same module starts cold — its
  // miss profile is identical to the first interpreter's, not warmed by
  // it.  (Within one interpreter, warming still works: see
  // MonomorphicSiteHitsAfterFirstSend.)
  std::unique_ptr<Program> P = buildProgram({R"(
    class A { slot v; }
    class B isa A { slot w; }
    method get(a@A) { a.v; }
    method main(n@Int) {
      let arr := array(1);
      atPut(arr, 0, new A { v := n });
      print(get(at(arr, 0)));
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  BcModule Mod = compileToBytecode(*CP);
  ASSERT_TRUE(Mod.Ok) << Mod.Error;
  EXPECT_GT(Mod.NumIcSlots, 0u);

  uint64_t FirstMisses;
  {
    BytecodeInterpreter I(*CP, Mod, {});
    ASSERT_TRUE(I.callMain(1));
    FirstMisses = I.icMisses();
    EXPECT_GT(FirstMisses, 0u);
  }
  {
    BytecodeInterpreter I(*CP, Mod, {});
    ASSERT_TRUE(I.callMain(2));
    EXPECT_EQ(I.icMisses(), FirstMisses);
  }
}

//===----------------------------------------------------------------------===//
// Compiler module structure and the disassembler.
//===----------------------------------------------------------------------===//

TEST(BytecodeModule, CompilesEveryVersionAndClosure) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method twice(f) { f(); f(); }
    method main(n@Int) {
      let x := 0;
      twice(fn() { x := x + 1; });
      print(x);
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  BcModule Mod = compileToBytecode(*CP);
  ASSERT_TRUE(Mod.Ok) << Mod.Error;
  EXPECT_GT(Mod.NumFunctions, 0u);
  EXPECT_GT(Mod.CodeBytes, 0u);
  // Every compiled function carries charged instructions.
  for (const auto &Fn : Mod.Functions) {
    EXPECT_FALSE(Fn->Code.empty());
    EXPECT_EQ(Fn->Code.size(), Fn->Locs.size());
  }
}

TEST(BytecodeModule, DisassemblerListsFunctionsAndSites) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A { slot v; }
    class B isa A { slot w; }
    method get(a@A) { a.v; }
    method main(n@Int) {
      let arr := array(1);
      atPut(arr, 0, new A { v := n });
      print(get(at(arr, 0)));
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  BcModule Mod = compileToBytecode(*CP);
  ASSERT_TRUE(Mod.Ok) << Mod.Error;

  std::ostringstream OS;
  disassemble(Mod, *P, OS);
  std::string Listing = OS.str();
  EXPECT_NE(Listing.find("main"), std::string::npos);
  EXPECT_NE(Listing.find("get"), std::string::npos);
  EXPECT_NE(Listing.find("CallDyn"), std::string::npos);
  EXPECT_NE(Listing.find("Charge"), std::string::npos);
  EXPECT_NE(Listing.find("RetLocal"), std::string::npos) << Listing;
}

//===----------------------------------------------------------------------===//
// Driver plumbing: tier selection, fallback surface, metrics.
//===----------------------------------------------------------------------===//

TEST(BytecodeTier, ParseAndNames) {
  EXPECT_EQ(parseTier("ast"), ExecTier::Ast);
  EXPECT_EQ(parseTier("bytecode"), ExecTier::Bytecode);
  EXPECT_FALSE(parseTier("jit").has_value());
  EXPECT_STREQ(tierName(ExecTier::Ast), "ast");
  EXPECT_STREQ(tierName(ExecTier::Bytecode), "bytecode");
}

TEST(BytecodeTier, WorkbenchRunsIdenticalStatsOnBothTiers) {
  const char *Source = R"(
    method fib(n@Int) { if (n < 2) { n; } else { fib(n - 1) + fib(n - 2); } }
    method main(n@Int) { print(fib(n)); })";

  std::optional<ConfigResult> Results[2];
  ExecTier Tiers[2] = {ExecTier::Ast, ExecTier::Bytecode};
  for (int T = 0; T != 2; ++T) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromSources({Source}, Err);
    ASSERT_TRUE(W) << Err;
    W->setTier(Tiers[T]);
    ASSERT_TRUE(W->collectProfile(10, Err)) << Err;
    Results[T] = W->runConfig(Config::Selective, 10, Err);
    ASSERT_TRUE(Results[T]) << Err;
    EXPECT_EQ(Results[T]->Tier, Tiers[T]);
  }
  EXPECT_EQ(Results[0]->Output, Results[1]->Output);
  expectSameStats(Results[0]->Run, Results[1]->Run, "workbench tiers");
}

TEST(BytecodeTier, PublishesBytecodeCounters) {
  metrics::resetAll();
  std::unique_ptr<Program> P = buildProgram({R"(
    class A { slot v; }
    class B isa A { slot w; }
    method get(a@A) { a.v; }
    method main(n@Int) {
      let arr := array(1);
      atPut(arr, 0, new A { v := n });
      print(get(at(arr, 0)));
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  BcModule Mod = compileToBytecode(*CP);
  ASSERT_TRUE(Mod.Ok) << Mod.Error;
  {
    BytecodeInterpreter I(*CP, Mod, {});
    ASSERT_TRUE(I.callMain(1));
  }
  std::vector<std::pair<std::string, uint64_t>> S = metrics::snapshot();
  auto value = [&](const std::string &Name) -> int64_t {
    for (const auto &C : S)
      if (C.first == Name)
        return static_cast<int64_t>(C.second);
    return -1;
  };
  EXPECT_GT(value("bytecode.compiled_functions"), 0);
  EXPECT_GT(value("bytecode.code_bytes"), 0);
  EXPECT_GE(value("bytecode.ic_hits"), 0);
  EXPECT_GT(value("bytecode.ic_misses"), 0);
  EXPECT_GT(value("interp.method_invocations"), 0);
}

//===- tests/FuzzTests.cpp - Bounded crash-proofing smoke -------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// In-process slice of the tools/mica-stress invariant, small enough for the
// regular test suite: every generated or byte-mutated input must yield
// Diagnostics, a RuntimeTrap, or a normal result — never a crash.  Seeds
// are fixed, so failures reproduce deterministically.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"

#include "TestUtil.h"
#include "profile/ProfileDb.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Tight guards so pathological generated programs cycle fast.
ResourceLimits fuzzLimits() {
  ResourceLimits L;
  L.MaxNodes = 100000;
  L.MaxDepth = 64;
  L.MaxObjects = 10000;
  return L;
}

/// Pushes one source through load -> profile -> Selective run.  Every
/// outcome is acceptable; the test only fails by crashing.
void pipelineSmoke(const std::string &Src, int64_t Input) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources({Src}, Err, false);
  if (!W)
    return; // diagnostics: a valid outcome
  W->setLimits(fuzzLimits());
  W->collectProfile(Input, Err); // may trap: a valid outcome
  W->runConfig(Config::Selective, Input, Err); // may trap or degrade
}

} // namespace

TEST(Fuzz, GeneratorIsDeterministic) {
  EXPECT_EQ(fuzz::generateProgram(7), fuzz::generateProgram(7));
  EXPECT_NE(fuzz::generateProgram(7), fuzz::generateProgram(8));
}

TEST(Fuzz, MutatorIsDeterministic) {
  fuzz::Rng A(11), B(11), C(12);
  std::string Src = fuzz::generateProgram(1);
  EXPECT_EQ(fuzz::mutateBytes(Src, A, 5), fuzz::mutateBytes(Src, B, 5));
  // (A different stream nearly always mutates differently; not asserted —
  // identical outputs would be legal.)
  fuzz::mutateBytes(Src, C, 5);
}

TEST(Fuzz, MostGeneratedProgramsLoad) {
  // The generator aims for plausible programs; if most stop loading, its
  // coverage of the interpreter silently collapses.
  int Loaded = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::string Err;
    if (Workbench::fromSources({fuzz::generateProgram(Seed)}, Err, false))
      ++Loaded;
  }
  EXPECT_GE(Loaded, 20);
}

TEST(Fuzz, GeneratedProgramsSmoke) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed)
    pipelineSmoke(fuzz::generateProgram(Seed), 2 + (Seed % 5));
}

TEST(Fuzz, MutatedSourcesSmoke) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    fuzz::Rng R(Seed * 977);
    std::string Src = fuzz::generateProgram(R.next());
    pipelineSmoke(fuzz::mutateBytes(Src, R, 1 + R.below(10)), 3);
  }
}

TEST(Fuzz, MutatedProfilesSmoke) {
  // A real profile, corrupted at the byte level, must always be either
  // rejected with diagnostics or validated down to consistent arcs.
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method f(x@A) { 1; }
    method f(x@B) { 2; }
    method pick(n@Int) { if (n % 2 == 0) { new A; } else { new B; } }
    method main(n@Int) {
      let i := 0;
      while (i < n) { f(pick(i)); i := i + 1; }
    }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CallGraph CG;
  runMain(*CP, 6, nullptr, &CG);
  ASSERT_FALSE(CG.empty());
  ProfileDb Db;
  Db.forProgram("prog").merge(CG);
  std::string Clean = Db.serialize();

  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    fuzz::Rng R(Seed * 131);
    std::string Corrupt = fuzz::mutateBytes(Clean, R, 1 + R.below(6));
    ProfileDb Loaded;
    Diagnostics Diags;
    if (!Loaded.deserialize(Corrupt, Diags)) {
      EXPECT_TRUE(Diags.hasErrors()); // rejection always explains itself
      continue;
    }
    // Whatever parsed must validate without crashing; surviving arcs are
    // consistent with the program by construction of validate().
    Loaded.validate("prog", *P, Diags);
  }
}

TEST(Fuzz, EmptyAndTinyInputs) {
  for (const char *Src : {"", " ", ";", "{", "}", "(", "\"", "method",
                          "class", "\xff\xfe\x00x", "method main"})
    pipelineSmoke(Src, 1);
  ProfileDb Db;
  Diagnostics Diags;
  EXPECT_FALSE(Db.deserialize("", Diags));
  EXPECT_FALSE(Db.deserialize("\n\n\n", Diags));
}

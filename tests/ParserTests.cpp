//===- tests/ParserTests.cpp - Mica parser & resolver ----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Parses a single-method module and renders the body.
std::string parseBody(const std::string &Body,
                      bool ExpectErrors = false) {
  SymbolTable Syms;
  Diagnostics Diags;
  Module M;
  bool Ok = Parser::parseSource("method t() { " + Body + " }", Syms, Diags,
                                M);
  EXPECT_EQ(Ok, !ExpectErrors) << Diags.toString();
  if (M.Methods.size() != 1)
    return "<no method>";
  return printExpr(M.Methods[0].Body.get(), Syms);
}

} // namespace

TEST(Parser, Literals) {
  EXPECT_EQ(parseBody("42;"), "(seq (int 42))");
  EXPECT_EQ(parseBody("-42;"), "(seq (int -42))");
  EXPECT_EQ(parseBody("true; false; nil;"),
            "(seq (bool true) (bool false) (nil))");
  EXPECT_EQ(parseBody("\"hi\";"), "(seq (str \"hi\"))");
}

TEST(Parser, OperatorPrecedence) {
  EXPECT_EQ(parseBody("1 + 2 * 3;"),
            "(seq (send + (int 1) (send * (int 2) (int 3))))");
  EXPECT_EQ(parseBody("(1 + 2) * 3;"),
            "(seq (send * (send + (int 1) (int 2)) (int 3)))");
  EXPECT_EQ(parseBody("1 - 2 - 3;"),
            "(seq (send - (send - (int 1) (int 2)) (int 3)))");
  EXPECT_EQ(parseBody("1 < 2 + 3;"),
            "(seq (send < (int 1) (send + (int 2) (int 3))))");
}

TEST(Parser, ShortCircuitDesugarsToIf) {
  EXPECT_EQ(parseBody("true && false;"),
            "(seq (if (bool true) (bool false) (bool false)))");
  EXPECT_EQ(parseBody("true || false;"),
            "(seq (if (bool true) (bool true) (bool false)))");
}

TEST(Parser, UnaryDesugarsToSends) {
  EXPECT_EQ(parseBody("!true;"), "(seq (send not (bool true)))");
  EXPECT_EQ(parseBody("let x := 1; -x;"),
            "(seq (let x (int 1)) (send neg (var x)))");
}

TEST(Parser, DotSyntaxSendAndSlot) {
  EXPECT_EQ(parseBody("let r := 1; r.m(2);"),
            "(seq (let r (int 1)) (send m (var r) (int 2)))");
  EXPECT_EQ(parseBody("let r := 1; r.field;"),
            "(seq (let r (int 1)) (get (var r) field))");
  EXPECT_EQ(parseBody("let r := 1; r.field := 2;"),
            "(seq (let r (int 1)) (set (var r) field (int 2)))");
}

TEST(Parser, ControlFlow) {
  EXPECT_EQ(parseBody("if (true) { 1; } else { 2; }"),
            "(seq (if (bool true) (seq (int 1)) (seq (int 2))))");
  EXPECT_EQ(parseBody("if (true) { 1; } else if (false) { 2; }"),
            "(seq (if (bool true) (seq (int 1)) "
            "(if (bool false) (seq (int 2)))))");
  EXPECT_EQ(parseBody("while (true) { 1; }"),
            "(seq (while (bool true) (seq (int 1))))");
  EXPECT_EQ(parseBody("return 3;"), "(seq (return (int 3)))");
  EXPECT_EQ(parseBody("return;"), "(seq (return))");
}

TEST(Parser, ClosuresAndCalls) {
  EXPECT_EQ(parseBody("fn(x) { x; };"), "(seq (fn (x) (seq (var x))))");
  EXPECT_EQ(parseBody("(fn(x) { x; })(1);"),
            "(seq (call (fn (x) (seq (var x))) (int 1)))");
}

TEST(Parser, NewWithInitializers) {
  SymbolTable Syms;
  Diagnostics Diags;
  Module M;
  ASSERT_TRUE(Parser::parseSource(
      "class P { slot x; slot y; } method t() { new P { x := 1, y := 2 }; }",
      Syms, Diags, M));
  ASSERT_EQ(M.Classes.size(), 1u);
  EXPECT_EQ(M.Classes[0].Slots.size(), 2u);
  EXPECT_EQ(printExpr(M.Methods[0].Body.get(), Syms),
            "(seq (new P (x (int 1)) (y (int 2))))");
}

TEST(Parser, ClassDeclarations) {
  SymbolTable Syms;
  Diagnostics Diags;
  Module M;
  ASSERT_TRUE(Parser::parseSource(
      "class A; class B isa A; class C isa A, B { slot s; }", Syms, Diags,
      M));
  ASSERT_EQ(M.Classes.size(), 3u);
  EXPECT_TRUE(M.Classes[0].Parents.empty());
  EXPECT_EQ(M.Classes[1].Parents.size(), 1u);
  EXPECT_EQ(M.Classes[2].Parents.size(), 2u);
}

TEST(Parser, MethodSpecializers) {
  SymbolTable Syms;
  Diagnostics Diags;
  Module M;
  ASSERT_TRUE(Parser::parseSource(
      "class A; method m(x@A, y, z@A) { x; }", Syms, Diags, M));
  ASSERT_EQ(M.Methods.size(), 1u);
  const MethodDecl &MD = M.Methods[0];
  ASSERT_EQ(MD.Params.size(), 3u);
  EXPECT_TRUE(MD.Params[0].SpecializerName.isValid());
  EXPECT_FALSE(MD.Params[1].SpecializerName.isValid());
  EXPECT_TRUE(MD.Params[2].SpecializerName.isValid());
}

TEST(Parser, SyntaxErrors) {
  parseBody("let := 3;", /*ExpectErrors=*/true);
  parseBody("1 +;", /*ExpectErrors=*/true);
  parseBody("if true { 1; }", /*ExpectErrors=*/true);
  parseBody("1 := 2;", /*ExpectErrors=*/true); // bad assignment target
}

//===----------------------------------------------------------------------===//
// Resolver behavior (via Program::resolve)
//===----------------------------------------------------------------------===//

TEST(Resolver, BareCallOnBoundNameBecomesClosureCall) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method apply1(f, x) { f(x); }
    method main(n@Int) { apply1(fn(k) { k + 1; }, n); }
  )"});
  ASSERT_TRUE(P);
  // apply1's body must hold a ClosureCall, not a Send named 'f'.
  Symbol FName = P->Syms.find("apply1");
  GenericId G = P->lookupGeneric(FName, 2);
  ASSERT_TRUE(G.isValid());
  const MethodInfo &M = P->method(P->generic(G).Methods[0]);
  std::string Printed = printExpr(M.Body.get(), P->Syms);
  EXPECT_EQ(Printed, "(seq (call (var f) (var x)))");
}

TEST(Resolver, UnknownVariableIsAnError) {
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  ASSERT_TRUE(P->addSource("method t() { zork; }", Diags));
  EXPECT_FALSE(P->resolve(Diags));
  EXPECT_NE(Diags.toString().find("unknown variable"), std::string::npos);
}

TEST(Resolver, UnknownMessageIsAnError) {
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  ASSERT_TRUE(P->addSource("method t() { frobnicate(1, 2); }", Diags));
  EXPECT_FALSE(P->resolve(Diags));
  EXPECT_NE(Diags.toString().find("unknown message"), std::string::npos);
}

TEST(Resolver, ArityDistinguishesGenerics) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method f(x) { x; }
    method f(x, y) { y; }
    method main(n@Int) { f(n); f(n, n); }
  )"});
  ASSERT_TRUE(P);
  Symbol F = P->Syms.find("f");
  EXPECT_TRUE(P->lookupGeneric(F, 1).isValid());
  EXPECT_TRUE(P->lookupGeneric(F, 2).isValid());
  EXPECT_NE(P->lookupGeneric(F, 1), P->lookupGeneric(F, 2));
}

TEST(Resolver, CallSitesAreNumberedDensely) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method f(x@Int) { x + 1; }
    method main(n@Int) { f(n) + f(n + 2); }
  )"});
  ASSERT_TRUE(P);
  ASSERT_GT(P->numCallSites(), 0u);
  for (unsigned I = 0; I != P->numCallSites(); ++I) {
    const CallSiteInfo &Site = P->callSite(CallSiteId(I));
    EXPECT_EQ(Site.Id, CallSiteId(I));
    ASSERT_NE(Site.Send, nullptr);
    EXPECT_EQ(Site.Send->Site, CallSiteId(I));
    EXPECT_TRUE(Site.Owner.isValid());
  }
}

// (kept at end to mirror the other error tests above)

TEST(Resolver, SlotNameCheckedOnNew) {
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  ASSERT_TRUE(P->addSource(
      "class P { slot x; } method t() { new P { wrong := 1 }; }", Diags));
  EXPECT_FALSE(P->resolve(Diags));
  EXPECT_NE(Diags.toString().find("has no slot"), std::string::npos);
}

//===- tests/DepGraphTests.cpp - Selective recompilation substrate ---------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "depgraph/DependencyGraph.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

TEST(DepGraph, InvalidationPropagatesDownstream) {
  DependencyGraph G;
  auto A = G.addNode(DependencyGraph::NodeKind::SourceClass, "A");
  auto F = G.addNode(DependencyGraph::NodeKind::DispatchFacts, "facts");
  auto C1 = G.addNode(DependencyGraph::NodeKind::CompiledCode, "c1");
  auto C2 = G.addNode(DependencyGraph::NodeKind::CompiledCode, "c2");
  auto Unrelated = G.addNode(DependencyGraph::NodeKind::CompiledCode, "u");
  G.addEdge(A, F);
  G.addEdge(F, C1);
  G.addEdge(F, C2);

  std::vector<DependencyGraph::NodeId> Invalidated = G.invalidate(A);
  EXPECT_EQ(Invalidated.size(), 4u);
  EXPECT_FALSE(G.isValid(A));
  EXPECT_FALSE(G.isValid(F));
  EXPECT_FALSE(G.isValid(C1));
  EXPECT_FALSE(G.isValid(C2));
  EXPECT_TRUE(G.isValid(Unrelated));

  // Work list: both compiled nodes need recompiling.
  EXPECT_EQ(
      G.invalidNodes(DependencyGraph::NodeKind::CompiledCode).size(), 2u);
  G.revalidate(C1);
  EXPECT_EQ(
      G.invalidNodes(DependencyGraph::NodeKind::CompiledCode).size(), 1u);

  // Re-invalidating an already-invalid node is a no-op.
  EXPECT_TRUE(G.invalidate(A).empty());
}

TEST(DepGraph, DuplicateEdgesCollapse) {
  DependencyGraph G;
  auto A = G.addNode(DependencyGraph::NodeKind::SourceMethod, "m");
  auto B = G.addNode(DependencyGraph::NodeKind::CompiledCode, "c");
  G.addEdge(A, B);
  G.addEdge(A, B);
  G.addEdge(A, B);
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(DepGraph, BuildFromCompiledProgram) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method ping(x@A) { 1; }
    method user(a@A) { ping(a); }
    method bystander(n@Int) { n + 1; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::CHA, nullptr, {}, NoInline);

  DependencyGraph G;
  DependencyGraph::ProgramNodes PN = G.buildFromCompiledProgram(*CP);
  ASSERT_EQ(PN.ClassNodes.size(), P->Classes.size());
  ASSERT_EQ(PN.MethodNodes.size(), P->numMethods());
  ASSERT_EQ(PN.VersionNodes.size(), CP->versions().size());

  // Simulate "a method was added to generic ping": invalidate ping's
  // dispatch facts.  user's compiled code embeds a static binding of ping
  // and must be invalidated; bystander must not (its sends target the
  // arithmetic builtins, not ping).
  GenericId Ping = P->lookupGeneric(P->Syms.find("ping"), 1);
  ASSERT_TRUE(Ping.isValid());
  G.invalidate(PN.GenericFactNodes[Ping.value()]);

  auto VersionValid = [&](const std::string &Label) {
    for (const CompiledMethod &CM : CP->versions())
      if (P->methodLabel(CM.Source) == Label)
        return G.isValid(PN.VersionNodes[CM.Index]);
    ADD_FAILURE() << "no version " << Label;
    return false;
  };
  EXPECT_FALSE(VersionValid("user(A)"));
  EXPECT_TRUE(VersionValid("bystander(Int)"));
}

TEST(DepGraph, ClassEditInvalidatesDependentCompiledCode) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method ping(x@A) { 1; }
    method user(a@A) { ping(a); }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::CHA, nullptr, {}, NoInline);

  DependencyGraph G;
  DependencyGraph::ProgramNodes PN = G.buildFromCompiledProgram(*CP);

  // Editing class B (inside ping's specializer cone) must reach user's
  // compiled code through ping's dispatch facts.
  ClassId B = P->Classes.lookup(P->Syms.find("B"));
  std::vector<DependencyGraph::NodeId> Invalidated =
      G.invalidate(PN.ClassNodes[B.value()]);
  bool UserInvalidated = false;
  for (auto N : Invalidated)
    if (G.label(N).find("user(A)") != std::string::npos)
      UserInvalidated = true;
  EXPECT_TRUE(UserInvalidated);
}

//===- tests/DirectivesTests.cpp - Specialization directives ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4's interchange step: the algorithm "generates a list of
/// specialization directives ... the compiler then executes the
/// directives."  Round-trip and error-handling tests of that format.
///
//===----------------------------------------------------------------------===//

#include "specialize/Directives.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

const char *ShapeSource = R"(
  class Shape; class Circle isa Shape; class Square isa Shape;
  method area(s@Circle) { 3; }
  method area(s@Square) { 4; }
  method describe(s@Shape) { area(s); }
  method main(n@Int) { print(describe(new Circle)); }
)";

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ApplicableClassesAnalysis> AC;
  std::unique_ptr<PassThroughAnalysis> PT;
};

Built build(const char *Source) {
  Built B;
  B.P = buildProgram({Source});
  if (B.P) {
    B.AC = std::make_unique<ApplicableClassesAnalysis>(*B.P);
    B.PT = std::make_unique<PassThroughAnalysis>(*B.P);
  }
  return B;
}

bool plansEqual(const SpecializationPlan &A, const SpecializationPlan &B) {
  if (A.UseCHA != B.UseCHA ||
      A.VersionsByMethod.size() != B.VersionsByMethod.size())
    return false;
  for (size_t I = 0; I != A.VersionsByMethod.size(); ++I) {
    if (A.VersionsByMethod[I].size() != B.VersionsByMethod[I].size())
      return false;
    for (size_t J = 0; J != A.VersionsByMethod[I].size(); ++J)
      if (!tupleEquals(A.VersionsByMethod[I][J], B.VersionsByMethod[I][J]))
        return false;
  }
  return true;
}

} // namespace

TEST(Directives, RoundTripEveryConfiguration) {
  Built B = build(ShapeSource);
  ASSERT_TRUE(B.P);
  // A profile so the Selective plan has content.
  CallGraph CG;
  MethodId Describe, AreaCircle;
  for (unsigned MI = 0; MI != B.P->numMethods(); ++MI) {
    if (B.P->methodLabel(MethodId(MI)) == "describe(Shape)")
      Describe = MethodId(MI);
    if (B.P->methodLabel(MethodId(MI)) == "area(Circle)")
      AreaCircle = MethodId(MI);
  }
  for (unsigned I = 0; I != B.P->numCallSites(); ++I) {
    const CallSiteInfo &Site = B.P->callSite(CallSiteId(I));
    if (Site.Owner == Describe)
      CG.addHits(Site.Id, Describe, AreaCircle, 9000);
  }

  for (Config C : {Config::Base, Config::Cust, Config::CustMM, Config::CHA,
                   Config::Selective}) {
    SpecializationPlan Plan = makePlan(C, *B.P, *B.AC, *B.PT, &CG);
    std::string Text = serializeDirectives(Plan, *B.P);
    SpecializationPlan Loaded;
    std::string Err;
    ASSERT_TRUE(
        deserializeDirectives(Text, *B.P, *B.AC, Loaded, Err))
        << configName(C) << ": " << Err;
    EXPECT_TRUE(plansEqual(Plan, Loaded)) << configName(C);
    // Serializing again is byte-identical.
    EXPECT_EQ(serializeDirectives(Loaded, *B.P), Text) << configName(C);
  }
}

TEST(Directives, ReplayedPlanCompilesAndRunsIdentically) {
  Built B1 = build(ShapeSource);
  Built B2 = build(ShapeSource);
  ASSERT_TRUE(B1.P && B2.P);

  SpecializationPlan Plan =
      makePlan(Config::Cust, *B1.P, *B1.AC, *B1.PT, nullptr);
  std::string Text = serializeDirectives(Plan, *B1.P);

  // Replay against a *separately built* program (fresh ids): the
  // name-based format must still resolve.
  SpecializationPlan Loaded;
  std::string Err;
  ASSERT_TRUE(deserializeDirectives(Text, *B2.P, *B2.AC, Loaded, Err))
      << Err;

  Optimizer Opt(*B2.P, *B2.AC);
  std::unique_ptr<CompiledProgram> CP = Opt.compile(Loaded);
  std::string Out;
  runMain(*CP, 0, &Out);
  EXPECT_EQ(Out, "3\n");
}

TEST(Directives, UnmentionedMethodsKeepGeneralVersion) {
  Built B = build(ShapeSource);
  ASSERT_TRUE(B.P);
  std::string Text = "selspec-directives v1\n"
                     "config CHA cha=1\n"
                     "method describe(Shape) 1\n"
                     "version Circle\n";
  SpecializationPlan Plan;
  std::string Err;
  ASSERT_TRUE(deserializeDirectives(Text, *B.P, *B.AC, Plan, Err)) << Err;
  EXPECT_TRUE(Plan.UseCHA);

  unsigned WithVersions = 0;
  for (unsigned MI = 0; MI != B.P->numMethods(); ++MI) {
    if (B.P->method(MethodId(MI)).isBuiltin())
      continue;
    EXPECT_GE(Plan.VersionsByMethod[MI].size(), 1u)
        << B.P->methodLabel(MethodId(MI));
    ++WithVersions;
  }
  EXPECT_EQ(WithVersions, B.P->numUserMethods());
}

TEST(Directives, MalformedInputsRejectedWithMessages) {
  Built B = build(ShapeSource);
  ASSERT_TRUE(B.P);
  SpecializationPlan Plan;
  std::string Err;

  EXPECT_FALSE(deserializeDirectives("garbage", *B.P, *B.AC, Plan, Err));
  EXPECT_NE(Err.find("not a selspec-directives"), std::string::npos);

  EXPECT_FALSE(deserializeDirectives(
      "selspec-directives v1\nmethod nosuch(Shape) 1\nversion *\n", *B.P,
      *B.AC, Plan, Err));
  EXPECT_NE(Err.find("unknown method"), std::string::npos);

  EXPECT_FALSE(deserializeDirectives(
      "selspec-directives v1\nmethod describe(Shape) 1\nversion Bogus\n",
      *B.P, *B.AC, Plan, Err));
  EXPECT_NE(Err.find("unknown class"), std::string::npos);

  EXPECT_FALSE(deserializeDirectives(
      "selspec-directives v1\nversion *\n", *B.P, *B.AC, Plan, Err));
  EXPECT_NE(Err.find("before any method"), std::string::npos);

  EXPECT_FALSE(deserializeDirectives(
      "selspec-directives v1\nmethod describe(Shape) 1\nversion * *\n",
      *B.P, *B.AC, Plan, Err));
  EXPECT_NE(Err.find("arity mismatch"), std::string::npos);

  EXPECT_FALSE(deserializeDirectives(
      "selspec-directives v1\nfrobnicate\n", *B.P, *B.AC, Plan, Err));
  EXPECT_NE(Err.find("unknown directive"), std::string::npos);
}

TEST(Directives, EmptySetAndUniverseEncodings) {
  Built B = build(ShapeSource);
  ASSERT_TRUE(B.P);
  std::string Text = "selspec-directives v1\n"
                     "config CHA cha=1\n"
                     "method describe(Shape) 2\n"
                     "version *\n"
                     "version Circle,Square\n";
  SpecializationPlan Plan;
  std::string Err;
  ASSERT_TRUE(deserializeDirectives(Text, *B.P, *B.AC, Plan, Err)) << Err;

  MethodId Describe;
  for (unsigned MI = 0; MI != B.P->numMethods(); ++MI)
    if (B.P->methodLabel(MethodId(MI)) == "describe(Shape)")
      Describe = MethodId(MI);
  const auto &Versions = Plan.VersionsByMethod[Describe.value()];
  ASSERT_EQ(Versions.size(), 2u);
  EXPECT_TRUE(Versions[0][0].isAll());
  EXPECT_EQ(Versions[1][0].count(), 2u);
}

//===- tests/PropertyTests.cpp - Parameterized invariant sweeps ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps (TEST_P):
///  - semantic preservation: every configuration produces the same program
///    output on the same input;
///  - dispatch counts never increase from Base to CHA/Selective;
///  - version selection always returns a containing, minimal version;
///  - ClassSet obeys lattice laws on pseudo-random instances.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

struct ProgramCase {
  const char *Name;
  const char *Source;
  bool NeedsStdlib;
};

// A small corpus of semantically-interesting programs.
const ProgramCase Corpus[] = {
    {"polymorphic_loop", R"(
      class A; class B isa A; class C isa B;
      method val(x@A) { 1; }
      method val(x@B) { 2; }
      method val(x@C) { 4; }
      method pick(i@Int) {
        if (i % 3 == 0) { new A; }
        else if (i % 3 == 1) { new B; }
        else { new C; }
      }
      method main(n@Int) {
        let total := 0;
        let i := 0;
        while (i < n) { total := total + val(pick(i)); i := i + 1; }
        print(total);
      }
    )",
     false},
    {"closures_and_nlr", R"(
      method upTo(n@Int, body) {
        let i := 0;
        while (i < n) { body(i); i := i + 1; }
      }
      method sumUntil(n@Int, stop@Int) {
        let total := 0;
        upTo(n, fn(i) {
          if (i == stop) { return total; }
          total := total + i;
        });
        total;
      }
      method main(n@Int) { print(sumUntil(n, n / 2)); }
    )",
     false},
    {"multimethods", R"(
      class Num; class Zero isa Num; class Pos isa Num;
      method addK(a@Zero, b@Zero) { 0; }
      method addK(a@Zero, b@Pos) { 1; }
      method addK(a@Pos, b@Zero) { 1; }
      method addK(a@Pos, b@Pos) { 2; }
      method lift(i@Int) { if (i == 0) { new Zero; } else { new Pos; } }
      method main(n@Int) {
        let total := 0;
        let i := 0;
        while (i < n) {
          total := total + addK(lift(i % 2), lift((i + 1) % 2));
          i := i + 1;
        }
        print(total);
      }
    )",
     false},
    {"recursion", R"(
      method fib(n@Int) {
        if (n < 2) { n; } else { fib(n - 1) + fib(n - 2); }
      }
      method main(n@Int) { print(fib(n % 18)); }
    )",
     false},
    {"sets", R"(
      method main(n@Int) {
        let a := listSetNew();
        let b := bitSetNew(128);
        let i := 0;
        while (i < n) {
          add(a, i * 13 % 60);
          add(b, i * 7 % 60);
          i := i + 1;
        }
        print(overlaps(a, b));
        print(setSize(a) + setSize(b));
        let c := hashSetNew(13);
        unionInto(a, b, c);
        print(setSize(c));
      }
    )",
     true},
    {"strings_and_arrays", R"(
      method join(v@Vector, sep@String) {
        let out := "";
        let first := true;
        do(v, fn(s) {
          if (first) { first := false; } else { out := out + sep; }
          out := out + s;
        });
        out;
      }
      method main(n@Int) {
        let v := vectorNew();
        let i := 0;
        while (i < n % 7 + 2) { add(v, className(i)); i := i + 1; }
        print(join(v, "-"));
      }
    )",
     true},
};

class SemanticsAcrossConfigs
    : public testing::TestWithParam<std::tuple<int, int64_t>> {};

} // namespace

TEST_P(SemanticsAcrossConfigs, AllConfigsProduceIdenticalOutput) {
  const ProgramCase &Case = Corpus[std::get<0>(GetParam())];
  int64_t Input = std::get<1>(GetParam());

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({Case.Source}, Err, Case.NeedsStdlib);
  ASSERT_TRUE(W) << Case.Name << ": " << Err;
  ASSERT_TRUE(W->collectProfile(Input, Err)) << Case.Name << ": " << Err;

  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 4;

  std::optional<ConfigResult> Base =
      W->runConfig(Config::Base, Input, Err);
  ASSERT_TRUE(Base) << Case.Name << ": " << Err;

  for (Config C : {Config::Cust, Config::CustMM, Config::CHA,
                   Config::Selective}) {
    std::optional<ConfigResult> R = W->runConfig(C, Input, Err, Sel);
    ASSERT_TRUE(R) << Case.Name << "/" << configName(C) << ": " << Err;
    EXPECT_EQ(R->Output, Base->Output)
        << Case.Name << " under " << configName(C);
    // Customization, CHA and selective specialization remove dispatches;
    // none of these programs hits the pathological below-threshold
    // static-to-select conversion, so Base is an upper bound throughout.
    EXPECT_LE(R->Run.totalDispatches(), Base->Run.totalDispatches())
        << Case.Name << " under " << configName(C);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SemanticsAcrossConfigs,
    testing::Combine(testing::Range(0, 6),
                     testing::Values<int64_t>(0, 1, 7, 23, 64)),
    [](const testing::TestParamInfo<std::tuple<int, int64_t>> &Info) {
      return std::string(Corpus[std::get<0>(Info.param)].Name) + "_n" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Version selection invariants
//===----------------------------------------------------------------------===//

namespace {

class VersionSelection : public testing::TestWithParam<Config> {};

} // namespace

TEST_P(VersionSelection, SelectedVersionContainsAndIsMinimal) {
  Config C = GetParam();
  std::unique_ptr<Program> P = buildProgram({R"(
    class S; class T1 isa S; class T2 isa S; class T3 isa T1;
    method f(a@S, b@S) { 1; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);

  // Build a profile that gives Selective something to chew on.
  CallGraph CG;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, C, C == Config::Selective ? &CG : nullptr);

  MethodId F;
  for (unsigned MI = 0; MI != P->numMethods(); ++MI)
    if (P->methodLabel(MethodId(MI)) == "f(S,S)")
      F = MethodId(MI);
  ASSERT_TRUE(F.isValid());

  std::vector<ClassId> Names;
  for (const char *N : {"S", "T1", "T2", "T3"})
    Names.push_back(P->Classes.lookup(P->Syms.find(N)));

  for (ClassId A : Names) {
    for (ClassId B : Names) {
      int V = CP->selectVersion(F, {A, B});
      ASSERT_GE(V, 0) << "no version for (" << A.value() << ','
                      << B.value() << ") under " << configName(C);
      const CompiledMethod &CM = CP->version(static_cast<uint32_t>(V));
      EXPECT_TRUE(tupleContains(CM.Tuple, {A, B}));
      // Minimality: no other version containing the tuple is strictly
      // more specific than the chosen one.
      for (uint32_t Other : CP->versionsOf(F)) {
        const CompiledMethod &OM = CP->version(Other);
        if (Other != CM.Index && tupleContains(OM.Tuple, {A, B})) {
          EXPECT_TRUE(tupleSubsetOf(CM.Tuple, OM.Tuple) ||
                      !tupleSubsetOf(OM.Tuple, CM.Tuple));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, VersionSelection,
                         testing::Values(Config::Base, Config::Cust,
                                         Config::CustMM, Config::CHA,
                                         Config::Selective),
                         [](const testing::TestParamInfo<Config> &Info) {
                           std::string N = configName(Info.param);
                           for (char &Ch : N)
                             if (Ch == '-')
                               Ch = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// ClassSet lattice laws on pseudo-random instances
//===----------------------------------------------------------------------===//

namespace {

class ClassSetLaws : public testing::TestWithParam<unsigned> {};

ClassSet randomSet(unsigned Universe, uint64_t &State) {
  ClassSet S(Universe);
  for (unsigned I = 0; I != Universe; ++I) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((State >> 33) & 1)
      S.insert(ClassId(I));
  }
  return S;
}

} // namespace

TEST_P(ClassSetLaws, UnionIntersectionLaws) {
  unsigned Seed = GetParam();
  uint64_t State = Seed * 2654435761u + 1;
  unsigned Universe = 5 + Seed * 13 % 150;

  ClassSet A = randomSet(Universe, State);
  ClassSet B = randomSet(Universe, State);
  ClassSet C = randomSet(Universe, State);

  // Commutativity and associativity.
  EXPECT_EQ(A | B, B | A);
  EXPECT_EQ(A & B, B & A);
  EXPECT_EQ((A | B) | C, A | (B | C));
  EXPECT_EQ((A & B) & C, A & (B & C));
  // Absorption and distribution.
  EXPECT_EQ(A & (A | B), A);
  EXPECT_EQ(A | (A & B), A);
  EXPECT_EQ(A & (B | C), (A & B) | (A & C));
  // Subset relations.
  EXPECT_TRUE((A & B).isSubsetOf(A));
  EXPECT_TRUE(A.isSubsetOf(A | B));
  // Difference laws.
  ClassSet D = A;
  D.subtract(B);
  EXPECT_FALSE(D.intersects(B));
  EXPECT_EQ(D | (A & B), A);
  // Counting.
  EXPECT_EQ((A | B).count() + (A & B).count(), A.count() + B.count());
  // intersects() agrees with the intersection's emptiness.
  EXPECT_EQ(A.intersects(B), !(A & B).isEmpty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassSetLaws, testing::Range(0u, 24u));

//===----------------------------------------------------------------------===//
// Extension flags preserve semantics too
//===----------------------------------------------------------------------===//

namespace {

class ExtensionSemantics : public testing::TestWithParam<int> {};

} // namespace

TEST_P(ExtensionSemantics, FeedbackAndReturnClassesPreserveOutput) {
  const ProgramCase &Case = Corpus[GetParam()];
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({Case.Source}, Err, Case.NeedsStdlib);
  ASSERT_TRUE(W) << Case.Name << ": " << Err;
  ASSERT_TRUE(W->collectProfile(64, Err)) << Err;

  std::optional<ConfigResult> Base = W->runConfig(Config::Base, 64, Err);
  ASSERT_TRUE(Base) << Err;

  for (bool Feedback : {false, true}) {
    for (bool RetCls : {false, true}) {
      OptimizerOptions Opt;
      Opt.EnableTypeFeedback = Feedback;
      Opt.UseReturnClasses = RetCls;
      for (Config C : {Config::CHA, Config::Selective}) {
        std::optional<ConfigResult> R =
            W->runConfig(C, 64, Err, {}, Opt);
        ASSERT_TRUE(R) << Case.Name << '/' << configName(C) << ": " << Err;
        EXPECT_EQ(R->Output, Base->Output)
            << Case.Name << '/' << configName(C) << " feedback=" << Feedback
            << " retcls=" << RetCls;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ExtensionSemantics, testing::Range(0, 6),
                         [](const testing::TestParamInfo<int> &Info) {
                           return Corpus[Info.param].Name;
                         });

//===----------------------------------------------------------------------===//
// Front-end robustness: mangled inputs never crash
//===----------------------------------------------------------------------===//

namespace {

class ParserRobustness : public testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(ParserRobustness, TruncatedAndMutatedSourcesDoNotCrash) {
  unsigned Seed = GetParam();
  const std::string Source = Corpus[Seed % 4].Source;

  // Truncation at a pseudo-random point.
  uint64_t State = Seed * 0x9E3779B97F4A7C15ULL + 1;
  auto Next = [&]() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  };
  std::string Truncated = Source.substr(0, Next() % Source.size());
  {
    auto P = std::make_unique<Program>();
    P->addBuiltins();
    Diagnostics Diags;
    // Must terminate and either succeed or report diagnostics — never
    // crash.  (addSource may legitimately succeed on a clean prefix.)
    if (P->addSource(Truncated, Diags))
      P->resolve(Diags);
  }

  // Character mutation (printable ASCII substitutions at ~2% of bytes).
  std::string Mutated = Source;
  for (char &C : Mutated)
    if (Next() % 50 == 0)
      C = static_cast<char>(' ' + Next() % 95);
  {
    auto P = std::make_unique<Program>();
    P->addBuiltins();
    Diagnostics Diags;
    if (P->addSource(Mutated, Diags))
      P->resolve(Diags);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, testing::Range(0u, 32u));

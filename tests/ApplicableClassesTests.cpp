//===- tests/ApplicableClassesTests.cpp - CHA ApplicableClasses ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/ApplicableClasses.h"
#include "analysis/StaticBinding.h"
#include "hierarchy/Builtins.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Finds method "g(Spec1,...)" by label.
MethodId findMethod(const Program &P, const std::string &Label) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    if (P.methodLabel(MethodId(MI)) == Label)
      return MethodId(MI);
  ADD_FAILURE() << "no method labeled " << Label;
  return MethodId();
}

ClassSet namedSet(const Program &P, std::initializer_list<const char *> Names) {
  ClassSet S(P.Classes.size());
  for (const char *N : Names) {
    ClassId C = P.Classes.lookup(P.Syms.find(N));
    EXPECT_TRUE(C.isValid()) << "unknown class " << N;
    S.insert(C);
  }
  return S;
}

} // namespace

TEST(ApplicableClasses, SingleDispatchConesMinusOverrides) {
  // The paper's m() structure: a method on the root of a subtree is
  // applicable to its cone minus the cones of overriding methods.
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A; class C isa A;
    class D isa B; class E isa B;
    method m(x@A) { 1; }
    method m(x@E) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);

  MethodId MA = findMethod(*P, "m(A)");
  MethodId ME = findMethod(*P, "m(E)");
  EXPECT_EQ(AC.of(MA)[0], namedSet(*P, {"A", "B", "C", "D"}));
  EXPECT_EQ(AC.of(ME)[0], namedSet(*P, {"E"}));
}

TEST(ApplicableClasses, UnspecializedFormalIsUniverse) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method f(x@A, y) { y; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  MethodId M = findMethod(*P, "f(A,Any)");
  EXPECT_FALSE(AC.of(M)[0].isAll());
  EXPECT_TRUE(AC.of(M)[1].isAll());
}

TEST(ApplicableClasses, MultiMethodExactProjection) {
  // With multi-methods a class can stay in a general method's set at one
  // position even though a more specific method exists, because tuples
  // with other second arguments still invoke the general method.
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method g(x@A, y@A) { 1; }
    method g(x@B, y@B) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  MethodId GA = findMethod(*P, "g(A,A)");
  MethodId GB = findMethod(*P, "g(B,B)");

  // g(A,A) is still invoked with x=B (when y=A), so B stays in position 0.
  EXPECT_EQ(AC.of(GA)[0], namedSet(*P, {"A", "B"}));
  EXPECT_EQ(AC.of(GA)[1], namedSet(*P, {"A", "B"}));
  EXPECT_EQ(AC.of(GB)[0], namedSet(*P, {"B"}));
  EXPECT_EQ(AC.of(GB)[1], namedSet(*P, {"B"}));
}

TEST(ApplicableClasses, FullyShadowedPositionRemoved) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method h(x@A) { 1; }
    method h(x@B) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  EXPECT_EQ(AC.of(findMethod(*P, "h(A)"))[0], namedSet(*P, {"A"}));
  EXPECT_EQ(AC.of(findMethod(*P, "h(B)"))[0], namedSet(*P, {"B"}));
}

TEST(ApplicableClasses, DispatchedPositions) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A;
    method p(x@A, y, z@A) { 1; }
    method q(x, y) { 1; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  GenericId GP = P->lookupGeneric(P->Syms.find("p"), 3);
  GenericId GQ = P->lookupGeneric(P->Syms.find("q"), 2);
  EXPECT_EQ(AC.dispatchedPositions(GP), (std::vector<unsigned>{0, 2}));
  EXPECT_TRUE(AC.dispatchedPositions(GQ).empty());
}

TEST(ApplicableClasses, ExactMatchesPointwiseOnSingleDispatch) {
  // Force the pointwise fallback with a tiny tuple limit and compare with
  // the exact enumeration on a singly-dispatched generic.
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A; class C isa B; class D isa A;
    method m(x@A) { 1; }
    method m(x@B) { 2; }
    method m(x@D) { 3; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis Exact(*P);
  ApplicableClassesAnalysis Fallback(*P, /*ExactTupleLimit=*/1);

  GenericId G = P->lookupGeneric(P->Syms.find("m"), 1);
  EXPECT_FALSE(Exact.usedFallback(G));
  EXPECT_TRUE(Fallback.usedFallback(G));
  for (MethodId M : P->generic(G).Methods)
    EXPECT_EQ(Exact.of(M)[0], Fallback.of(M)[0])
        << "mismatch for " << P->methodLabel(M);
}

TEST(StaticBinding, UniqueTargetRequiresOneIntersection) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A; class C isa A;
    method m(x@B) { 1; }
    method m(x@C) { 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  ApplicableClassesAnalysis AC(*P);
  GenericId G = P->lookupGeneric(P->Syms.find("m"), 1);

  std::vector<ClassSet> JustB = {namedSet(*P, {"B"})};
  std::vector<ClassSet> BorC = {namedSet(*P, {"B", "C"})};
  EXPECT_TRUE(uniqueTarget(AC, G, JustB).isValid());
  EXPECT_FALSE(uniqueTarget(AC, G, BorC).isValid());
  EXPECT_EQ(possibleTargets(AC, G, BorC).size(), 2u);

  // A alone understands no m: no targets.
  std::vector<ClassSet> JustA = {namedSet(*P, {"A"})};
  EXPECT_TRUE(possibleTargets(AC, G, JustA).empty());
}

//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_TESTS_TESTUTIL_H
#define SELSPEC_TESTS_TESTUTIL_H

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "opt/Optimizer.h"
#include "specialize/Strategies.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace selspec {
namespace test {

/// Builds a resolved Program from \p Sources (builtins included).  Fails
/// the current test on any diagnostic.
inline std::unique_ptr<Program>
buildProgram(const std::vector<std::string> &Sources) {
  auto P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  for (const std::string &Src : Sources)
    if (!P->addSource(Src, Diags)) {
      ADD_FAILURE() << "program did not parse:\n" << Diags.toString();
      return nullptr;
    }
  if (!P->resolve(Diags)) {
    ADD_FAILURE() << "program did not resolve:\n" << Diags.toString();
    return nullptr;
  }
  return P;
}

/// Compiles \p P under \p C (optionally with a profile for Selective) and
/// returns the compiled program.
inline std::unique_ptr<CompiledProgram>
compileProgram(Program &P, Config C, const CallGraph *CG = nullptr,
               const SelectiveOptions &Sel = {},
               const OptimizerOptions &OptOpts = {}) {
  ApplicableClassesAnalysis AC(P);
  PassThroughAnalysis PT(P);
  SpecializationPlan Plan = makePlan(C, P, AC, PT, CG, Sel);
  Optimizer Opt(P, AC, OptOpts, CG);
  return Opt.compile(Plan);
}

/// Runs `main(Input)` on a fresh interpreter with binding validation on;
/// fails the test on runtime errors.  Returns the interpreter's stats.
inline RunStats runMain(CompiledProgram &CP, int64_t Input,
                        std::string *OutputText = nullptr,
                        CallGraph *Profile = nullptr) {
  std::ostringstream Out;
  RunOptions Opts;
  Opts.Output = &Out;
  Opts.ValidateBindings = true;
  Opts.Profile = Profile;
  Interpreter I(CP, Opts);
  EXPECT_TRUE(I.callMain(Input)) << "runtime error: " << I.errorMessage();
  if (OutputText)
    *OutputText = Out.str();
  return I.stats();
}

/// End-to-end convenience: parse, compile under \p C, run main(Input),
/// return printed output.
inline std::string runSource(const std::string &Source, Config C,
                             int64_t Input) {
  std::unique_ptr<Program> P = buildProgram({Source});
  if (!P)
    return "<build failed>";
  CallGraph CG;
  std::unique_ptr<CompiledProgram> BaseCP =
      compileProgram(*P, Config::Base);
  if (C == Config::Selective)
    runMain(*BaseCP, Input, nullptr, &CG);
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, C, CG.empty() ? nullptr : &CG);
  std::string Out;
  runMain(*CP, Input, &Out);
  return Out;
}

} // namespace test
} // namespace selspec

#endif // SELSPEC_TESTS_TESTUTIL_H

//===- tests/InterpreterTests.cpp - Mica semantics --------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Runs `main(Input)` under Base and returns printed output.
std::string runBase(const std::string &Source, int64_t Input = 0) {
  return runSource(Source, Config::Base, Input);
}

/// Expects a runtime error whose message contains \p Needle.
void expectRuntimeError(const std::string &Source, const std::string &Needle,
                        int64_t Input = 0) {
  std::unique_ptr<Program> P = buildProgram({Source});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  Interpreter I(*CP);
  EXPECT_FALSE(I.callMain(Input));
  EXPECT_NE(I.errorMessage().find(Needle), std::string::npos)
      << "actual error: " << I.errorMessage();
}

} // namespace

TEST(Interp, ArithmeticAndPrint) {
  EXPECT_EQ(runBase("method main(n@Int) { print(2 + 3 * 4); }"), "14\n");
  EXPECT_EQ(runBase("method main(n@Int) { print(10 / 3); print(10 % 3); }"),
            "3\n1\n");
  EXPECT_EQ(runBase("method main(n@Int) { print(-n); }", 5), "-5\n");
}

TEST(Interp, ComparisonsAndBooleans) {
  EXPECT_EQ(runBase(R"(method main(n@Int) {
    print(1 < 2); print(2 <= 1); print(3 > 2); print(2 >= 3);
    print(1 == 1); print(1 != 1); print(!true);
  })"),
            "true\nfalse\ntrue\nfalse\ntrue\nfalse\nfalse\n");
}

TEST(Interp, ShortCircuitEvaluation) {
  // The right operand must not be evaluated when short-circuited.
  EXPECT_EQ(runBase(R"(
    method noisy(x) { print("boom"); true; }
    method main(n@Int) {
      if (false && noisy(1)) { print("no"); }
      if (true || noisy(1)) { print("yes"); }
    })"),
            "yes\n");
}

TEST(Interp, StringsAndEquality) {
  EXPECT_EQ(runBase(R"(method main(n@Int) {
    let s := "ab" + "cd";
    print(s); print(size(s)); print(s == "abcd"); print("a" < "b");
  })"),
            "abcd\n4\ntrue\ntrue\n");
}

TEST(Interp, ArraysAndBounds) {
  EXPECT_EQ(runBase(R"(method main(n@Int) {
    let a := array(3);
    atPut(a, 0, 5); atPut(a, 2, 7);
    print(at(a, 0)); print(at(a, 1)); print(size(a)); print(a);
  })"),
            "5\nnil\n3\n[5, nil, 7]\n");
  expectRuntimeError(
      "method main(n@Int) { at(array(2), 5); }", "out of bounds");
}

TEST(Interp, ObjectsSlotsAndDispatch) {
  EXPECT_EQ(runBase(R"(
    class Point { slot x; slot y; }
    class Point3 isa Point { slot z; }
    method sum(p@Point) { p.x + p.y; }
    method sum(p@Point3) { p.x + p.y + p.z; }
    method main(n@Int) {
      let p := new Point { x := 1, y := 2 };
      let q := new Point3 { x := 1, y := 2, z := 3 };
      print(sum(p)); print(sum(q));
      p.x := 10;
      print(sum(p));
    })"),
            "3\n6\n12\n");
}

TEST(Interp, WhileLoops) {
  EXPECT_EQ(runBase(R"(method main(n@Int) {
    let i := 0; let total := 0;
    while (i < n) { total := total + i; i := i + 1; }
    print(total);
  })", 10),
            "45\n");
}

TEST(Interp, ClosuresCaptureEnvironment) {
  EXPECT_EQ(runBase(R"(
    method makeAdder(k@Int) { fn(x) { x + k; }; }
    method main(n@Int) {
      let add5 := makeAdder(5);
      let add7 := makeAdder(7);
      print(add5(10)); print(add7(10));
    })"),
            "15\n17\n");
}

TEST(Interp, ClosuresMutateCapturedVariables) {
  EXPECT_EQ(runBase(R"(
    method apply2(f) { f(); f(); }
    method main(n@Int) {
      let count := 0;
      apply2(fn() { count := count + 1; });
      print(count);
    })"),
            "2\n");
}

TEST(Interp, NonLocalReturnFromClosure) {
  // `return` inside the closure exits `find`, not just the closure —
  // the Figure 1 `includes` pattern.
  EXPECT_EQ(runBase(R"(
    method each(n@Int, body) {
      let i := 0;
      while (i < n) { body(i); i := i + 1; }
    }
    method find(n@Int, target@Int) {
      each(n, fn(i) { if (i == target) { return "found"; } });
      "missing";
    }
    method main(n@Int) {
      print(find(10, 4));
      print(find(10, 12));
    })"),
            "found\nmissing\n");
}

TEST(Interp, MethodValueIsLastExpression) {
  EXPECT_EQ(runBase(R"(
    method f(n@Int) { n * 2; }
    method main(n@Int) { print(f(21)); }
  )"),
            "42\n");
}

TEST(Interp, ExplicitReturn) {
  EXPECT_EQ(runBase(R"(
    method classify(n@Int) {
      if (n < 0) { return "neg"; }
      if (n == 0) { return "zero"; }
      "pos";
    }
    method main(n@Int) {
      print(classify(-5)); print(classify(0)); print(classify(5));
    })"),
            "neg\nzero\npos\n");
}

TEST(Interp, MultiMethodDispatchAtRuntime) {
  EXPECT_EQ(runBase(R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method hit(a@Circle, b@Circle) { "cc"; }
    method hit(a@Circle, b@Square) { "cs"; }
    method hit(a@Shape, b@Shape) { "ss"; }
    method main(n@Int) {
      let c := new Circle; let s := new Square;
      print(hit(c, c)); print(hit(c, s)); print(hit(s, s));
    })"),
            "cc\ncs\nss\n");
}

TEST(Interp, ClassNamePrim) {
  EXPECT_EQ(runBase(R"(
    class Widget;
    method main(n@Int) {
      print(className(3)); print(className(new Widget));
      print(className("x")); print(className(nil));
    })"),
            "Int\nWidget\nString\nNil\n");
}

TEST(Interp, RuntimeErrors) {
  expectRuntimeError("method main(n@Int) { 1 / 0; }", "division by zero");
  expectRuntimeError("method main(n@Int) { abort(\"bye\"); }", "abort: bye");
  expectRuntimeError("method main(n@Int) { if (3) { 1; } }",
                     "not a boolean");
  expectRuntimeError(R"(
    class A;
    method m(x@A) { x; }
    method main(n@Int) { m(3); }
  )",
                     "not understood");
  expectRuntimeError("method main(n@Int) { n(3); }", "not a closure");
}

TEST(Interp, InfiniteLoopGuard) {
  std::unique_ptr<Program> P =
      buildProgram({"method main(n@Int) { while (true) { 1; } }"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  RunOptions Opts;
  Opts.Limits.MaxNodes = 10000;
  Interpreter I(*CP, Opts);
  EXPECT_FALSE(I.callMain(0));
  EXPECT_NE(I.errorMessage().find("node budget"), std::string::npos);
}

TEST(Interp, StatsCountDispatchesAndClosures) {
  std::unique_ptr<Program> P = buildProgram({R"(
    class A; class B isa A;
    method poke(x@A) { 1; }
    method poke(x@B) { 2; }
    method pick(n@Int) { if (n % 2 == 0) { new A; } else { new B; } }
    method use(x@A, f) { f(1); }
    method use(x@B, f) { f(2); }
    method main(n@Int) {
      let i := 0;
      while (i < n) {
        poke(pick(i));
        use(pick(i), fn(x) { x; });
        i := i + 1;
      }
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  Interpreter I(*CP);
  ASSERT_TRUE(I.callMain(10)) << I.errorMessage();
  const RunStats &S = I.stats();
  // poke(pick(i)) cannot be statically bound under Base: 10 dispatches at
  // least (plus pick itself unless bound).
  EXPECT_GE(S.DynamicDispatches, 10u);
  // The closure is passed through a dynamically-dispatched `use`, so its
  // creation cannot be optimized away.
  EXPECT_GE(S.ClosuresCreated, 10u);
  EXPECT_GE(S.ClosureCalls, 10u);
  EXPECT_GT(S.Cycles, 0u);
  EXPECT_GT(S.Allocations, 0u);
}

TEST(Interp, CallGenericDirectly) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method double(x@Int) { x * 2; }
    method main(n@Int) { n; }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  Interpreter I(*CP);
  bool Ok = false;
  Value V = I.callGeneric("double", {Value::ofInt(21)}, Ok);
  ASSERT_TRUE(Ok) << I.errorMessage();
  ASSERT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), 42);

  I.callGeneric("nonexistent", {}, Ok);
  EXPECT_FALSE(Ok);
}

TEST(Interp, RuntimeErrorsCarryStackTraces) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method innermost(n@Int) { n / 0; }
    method middle(n@Int) { innermost(n); }
    method outer(n@Int) { middle(n); }
    method main(n@Int) { outer(n); }
  )"});
  ASSERT_TRUE(P);
  OptimizerOptions NoInline;
  NoInline.EnableInlining = false;
  std::unique_ptr<CompiledProgram> CP =
      compileProgram(*P, Config::Base, nullptr, {}, NoInline);
  Interpreter I(*CP);
  ASSERT_FALSE(I.callMain(7));
  const std::string &E = I.errorMessage();
  EXPECT_NE(E.find("division by zero"), std::string::npos);
  // Innermost first.
  size_t PosInner = E.find("in innermost(Int)");
  size_t PosMiddle = E.find("in middle(Int)");
  size_t PosOuter = E.find("in outer(Int)");
  size_t PosMain = E.find("in main(Int)");
  EXPECT_NE(PosInner, std::string::npos) << E;
  EXPECT_NE(PosMiddle, std::string::npos) << E;
  EXPECT_NE(PosOuter, std::string::npos) << E;
  EXPECT_NE(PosMain, std::string::npos) << E;
  EXPECT_LT(PosInner, PosMiddle);
  EXPECT_LT(PosMiddle, PosOuter);
  EXPECT_LT(PosOuter, PosMain);
}

TEST(Interp, DeepStackTraceIsTruncated) {
  std::unique_ptr<Program> P = buildProgram({R"(
    method sink(n@Int) {
      if (n == 0) { abort("bottom"); }
      sink(n - 1);
    }
    method main(n@Int) { sink(50); }
  )"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  Interpreter I(*CP);
  ASSERT_FALSE(I.callMain(0));
  EXPECT_NE(I.errorMessage().find("more frame(s)"), std::string::npos)
      << I.errorMessage();
}

TEST(Interp, NestedLetShadowing) {
  // The inner `let x` must get its own frame slot: its initializer still
  // reads the outer x, writes inside the branch hit only the inner slot,
  // and the outer binding is intact afterwards.  Identical under every
  // configuration (inlining re-runs slot resolution on rewritten bodies).
  const std::string Src = R"(
    method main(n@Int) {
      let x := 1;
      if (true) {
        let x := x + 10;
        print(x);
        x := 20;
        print(x);
      }
      print(x);
    })";
  for (Config C : {Config::Base, Config::CHA, Config::Selective})
    EXPECT_EQ(runSource(Src, C, 0), "11\n20\n1\n")
        << "under " << configName(C);
}

TEST(Interp, SiblingClosuresShareCapturedCell) {
  // Two closures capturing the same binding must share one cell: writes
  // through either closure or through the declaring frame are visible
  // everywhere (capture by reference, not by value).
  const std::string Src = R"(
    method call(f) { f(); }
    method main(n@Int) {
      let c := 0;
      let inc := fn() { c := c + 1; };
      let get := fn() { c; };
      call(inc); call(inc);
      print(call(get));
      c := 10;
      print(call(get));
      call(inc);
      print(c);
    })";
  for (Config C : {Config::Base, Config::CHA, Config::Selective})
    EXPECT_EQ(runSource(Src, C, 0), "2\n10\n11\n") << "under " << configName(C);
}

TEST(Interp, LoopIterationsCaptureDistinctCells) {
  // A `let` re-executed per loop iteration creates a fresh cell each
  // time, so closures made in different iterations do not share state.
  const std::string Src = R"(
    method call(f) { f(); }
    method main(n@Int) {
      let a := array(3);
      let i := 0;
      while (i < 3) {
        let v := i * 10;
        atPut(a, i, fn() { v := v + 1; v; });
        i := i + 1;
      }
      print(call(at(a, 1)));
      print(call(at(a, 1)));
      print(call(at(a, 2)));
    })";
  for (Config C : {Config::Base, Config::CHA, Config::Selective})
    EXPECT_EQ(runSource(Src, C, 0), "11\n12\n21\n") << "under " << configName(C);
}

TEST(Interp, NonLocalReturnFromClosureInInlinedBody) {
  // `helper` is small enough to be inlined into main under the optimizing
  // configurations, so the closure is then created inside an InlinedExpr:
  // its `return` must unwind to the rewritten inline boundary, exiting
  // only the (conceptual) helper invocation, not main.
  const std::string Src = R"(
    method call1(f, x) { f(x); }
    method helper(n) {
      let f := fn(k) { if (k > 10) { return k; } 0; };
      call1(f, n);
      0 - 1;
    }
    method main(n@Int) {
      print(helper(n));
      print("after");
    })";
  for (Config C : {Config::Base, Config::CHA, Config::Selective}) {
    EXPECT_EQ(runSource(Src, C, 20), "20\nafter\n") << "under " << configName(C);
    EXPECT_EQ(runSource(Src, C, 3), "-1\nafter\n") << "under " << configName(C);
  }
}

//===- tests/ServeTests.cpp - Snapshots, thread-pool serving ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// The immutability contract of DESIGN.md section 11, enforced:
//
//   - every (config, benchmark) job served from a shared CompiledSnapshot
//     on an 8-thread pool produces RunStats bit-identical to the same job
//     run single-threaded, on both execution tiers;
//   - per-job metrics deltas sum exactly to the process-wide registry
//     totals;
//   - deadlines and shutdown cancel jobs cooperatively;
//   - SnapshotCache builds each key once and never caches failures;
//   - Dispatcher::clearCaches() and resetStats() are independent.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"
#include "driver/Snapshot.h"
#include "runtime/Dispatcher.h"
#include "support/Metrics.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Full bitwise RunStats comparison, NodeMix included: the serving
/// guarantee is *identical* counters, not merely identical output.
bool statsEqual(const RunStats &A, const RunStats &B) {
  return A.DynamicDispatches == B.DynamicDispatches &&
         A.VersionSelects == B.VersionSelects &&
         A.StaticCalls == B.StaticCalls && A.InlinePrims == B.InlinePrims &&
         A.PredictedHits == B.PredictedHits &&
         A.PredictedMisses == B.PredictedMisses &&
         A.FeedbackHits == B.FeedbackHits &&
         A.FeedbackMisses == B.FeedbackMisses &&
         A.ClosuresCreated == B.ClosuresCreated &&
         A.ClosureCalls == B.ClosureCalls &&
         A.Allocations == B.Allocations &&
         A.MethodInvocations == B.MethodInvocations &&
         A.NodesEvaluated == B.NodesEvaluated &&
         A.PeakDepth == B.PeakDepth && A.Cycles == B.Cycles &&
         A.NodeMix == B.NodeMix;
}

struct BenchCase {
  const char *Name;
  std::vector<std::string> Files;
  int64_t Input;
};

const BenchCase Benches[] = {
    {"richards", {"richards.mica"}, 30},
    {"instsched", {"instsched.mica"}, 6},
    {"typechecker", {"minilang.mica", "typechecker.mica"}, 8},
    {"compiler", {"minilang.mica", "compiler.mica"}, 8},
};

const Config AllConfigs[] = {Config::Base, Config::Cust, Config::CustMM,
                             Config::CHA, Config::Selective};

/// One shared snapshot plus its single-threaded reference result.
struct ServedUnit {
  std::string Label;
  std::shared_ptr<const CompiledSnapshot> Snap;
  int64_t Input = 0;
  RunStats Ref;
  std::string RefOutput;
};

/// Builds snapshots for every (benchmark, config) pair on \p T, records a
/// single-threaded reference run for each, then replays every job twice
/// on an 8-thread pool and demands bit-identical RunStats and output.
void runConcurrencyStress(ExecTier T) {
  std::vector<ServedUnit> Units;
  std::vector<std::shared_ptr<Workbench>> Keepers;

  for (const BenchCase &B : Benches) {
    std::string Err;
    std::shared_ptr<Workbench> WB = Workbench::fromFiles(B.Files, Err);
    ASSERT_TRUE(WB) << B.Name << ": " << Err;
    WB->setTier(T);
    ASSERT_TRUE(WB->collectProfile(B.Input, Err)) << B.Name << ": " << Err;
    Keepers.push_back(WB);

    for (Config C : AllConfigs) {
      SelectiveOptions Sel;
      Sel.SpecializationThreshold = 50;
      std::shared_ptr<const CompiledSnapshot> Snap =
          WB->buildSnapshot(C, Err, Sel, {}, WB);
      ASSERT_TRUE(Snap) << B.Name << "/" << configName(C) << ": " << Err;
      EXPECT_EQ(Snap->tier(), T)
          << B.Name << "/" << configName(C) << " fell back off the "
          << "requested tier";

      CompiledSnapshot::JobResult Ref = Snap->run(B.Input);
      ASSERT_TRUE(Ref.Ok)
          << B.Name << "/" << configName(C) << ": " << Ref.Error;

      ServedUnit U;
      U.Label = std::string(B.Name) + "/" + configName(C);
      U.Snap = Snap;
      U.Input = B.Input;
      U.Ref = Ref.R.Run;
      U.RefOutput = Ref.R.Output;
      Units.push_back(std::move(U));
    }
  }
  ASSERT_EQ(Units.size(), 20u) << "5 configs x 4 benchmarks";

  // Storm: every unit twice, interleaved across 8 workers.  Completions
  // are serialized by the engine, so plain writes below are safe.
  std::vector<std::string> Problems;
  size_t Completions = 0;
  {
    ServeEngine::Options EO;
    EO.Threads = 8;
    EO.QueueCapacity = 16;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ++Completions;
      size_t Idx = std::strtoull(Cmp.TheJob.Id.c_str(), nullptr, 10) %
                   Units.size();
      const ServedUnit &U = Units[Idx];
      if (Cmp.Cancelled || !Cmp.Result.Ok)
        Problems.push_back(U.Label + ": job failed: " + Cmp.Result.Error);
      else if (!statsEqual(Cmp.Result.R.Run, U.Ref))
        Problems.push_back(U.Label + ": RunStats differ from the "
                                     "single-thread reference");
      else if (Cmp.Result.R.Output != U.RefOutput)
        Problems.push_back(U.Label + ": output differs from the "
                                     "single-thread reference");
    });
    for (size_t I = 0; I != 2 * Units.size(); ++I) {
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = Units[I % Units.size()].Snap;
      J.Input = Units[I % Units.size()].Input;
      J.CollectMetricsDelta = false;
      ASSERT_EQ(Engine.submit(std::move(J)), ServeEngine::Admit::Accepted);
    }
    Engine.shutdown(false);
  }

  EXPECT_EQ(Completions, 2 * Units.size());
  for (const std::string &P : Problems)
    ADD_FAILURE() << P;
}

} // namespace

TEST(ServeStress, BytecodeTierJobsMatchSingleThreadBaseline) {
  runConcurrencyStress(ExecTier::Bytecode);
}

TEST(ServeStress, AstTierJobsMatchSingleThreadBaseline) {
  runConcurrencyStress(ExecTier::Ast);
}

// Per-job MetricsDelta entries, summed over all jobs, must equal the
// process-wide registry totals for those counters — per-job observability
// is exact, not sampled.  resetAll() runs *after* the build and reference
// run so only the served jobs contribute.
TEST(Serve, MetricsDeltasSumToRegistryTotals) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  ASSERT_TRUE(WB->collectProfile(10, Err)) << Err;
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::CHA, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  metrics::resetAll();

  std::map<std::string, uint64_t> Sums;
  size_t JobsOk = 0;
  {
    ServeEngine::Options EO;
    EO.Threads = 4;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ASSERT_TRUE(Cmp.Result.Ok) << Cmp.Result.Error;
      ++JobsOk;
      EXPECT_FALSE(Cmp.Result.MetricsDelta.empty());
      for (const auto &KV : Cmp.Result.MetricsDelta)
        Sums[KV.first] += KV.second;
    });
    for (int I = 0; I != 12; ++I) {
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = Snap;
      J.Input = 10;
      J.CollectMetricsDelta = true;
      ASSERT_EQ(Engine.submit(std::move(J)), ServeEngine::Admit::Accepted);
    }
    Engine.shutdown(false);
  }
  ASSERT_EQ(JobsOk, 12u);

  std::map<std::string, uint64_t> Registry;
  for (const auto &KV : metrics::snapshot())
    Registry[KV.first] = KV.second;

  EXPECT_GT(Sums.at("interp.nodes_evaluated"), 0u);
  EXPECT_GT(Sums.at("dispatcher.lookups"), 0u);
  for (const auto &KV : Sums)
    EXPECT_EQ(KV.second, Registry[KV.first])
        << "per-job deltas for " << KV.first
        << " do not sum to the registry total";
}

TEST(Serve, DeadlineCancelsJobCooperatively) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  bool SawDeadlineTrap = false;
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      EXPECT_FALSE(Cmp.Result.Ok);
      EXPECT_FALSE(Cmp.Cancelled) << "job started; must trap, not drop";
      if (Cmp.Result.Trap.Kind == TrapKind::DeadlineExceeded)
        SawDeadlineTrap = true;
    });
    ServeEngine::Job J;
    J.Id = "slow";
    J.Snapshot = Snap;
    J.Input = 1000000; // minutes of work, uncancelled
    J.DeadlineMs = 20;
    ASSERT_EQ(Engine.submit(std::move(J)), ServeEngine::Admit::Accepted);
    Engine.shutdown(false);
  }
  EXPECT_TRUE(SawDeadlineTrap);
}

// shutdown(CancelQueued=true) after cancelInFlight(): the running job
// traps at its next poll, jobs still in the queue come back Cancelled
// without ever starting.  This is micad's SIGTERM drain path.
TEST(Serve, ShutdownCancelsInFlightAndDropsQueued) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  size_t Completions = 0, Dropped = 0, Started = 0;
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    EO.QueueCapacity = 8;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ++Completions;
      if (Cmp.Cancelled) {
        ++Dropped;
        return;
      }
      ++Started;
      // Anything that got to run was cancelled cooperatively — nothing
      // this slow finishes before the drain (backstop deadline included).
      EXPECT_FALSE(Cmp.Result.Ok);
      EXPECT_EQ(Cmp.Result.Trap.Kind, TrapKind::DeadlineExceeded);
    });
    for (int I = 0; I != 4; ++I) {
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = Snap;
      J.Input = 1000000;
      J.DeadlineMs = 2000; // backstop so a racing dequeue stays bounded
      ASSERT_EQ(Engine.submit(std::move(J)), ServeEngine::Admit::Accepted);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Engine.cancelInFlight();
    Engine.shutdown(/*CancelQueued=*/true);
  }
  EXPECT_EQ(Completions, 4u) << "every submitted job must complete";
  EXPECT_GE(Started, 1u);
  EXPECT_GE(Dropped, 2u) << "most of the queue must drain as Cancelled";
}

// Bounded-wait submit (Options::MaxSubmitWaitMs): with the single worker
// wedged on a slow job and the queue full, a further submit must come
// back Admit::Shed after the bound instead of blocking — and a shed job
// must never produce a completion.
TEST(Serve, BoundedWaitSubmitShedsWhenQueueStaysFull) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  size_t Completions = 0;
  std::vector<std::string> CompletedIds;
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    EO.QueueCapacity = 1;
    EO.MaxSubmitWaitMs = 20;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ++Completions;
      CompletedIds.push_back(Cmp.TheJob.Id);
    });
    auto SlowJob = [&](const char *Id) {
      ServeEngine::Job J;
      J.Id = Id;
      J.Snapshot = Snap;
      J.Input = 1000000;
      J.DeadlineMs = 2000; // backstop so the test stays bounded
      return J;
    };
    // Occupies the worker...
    ASSERT_EQ(Engine.submit(SlowJob("running")),
              ServeEngine::Admit::Accepted);
    // ...fills the 1-slot queue...
    ASSERT_EQ(Engine.submit(SlowJob("queued")), ServeEngine::Admit::Accepted);
    // ...so this one must shed at the wait bound, not block.
    EXPECT_EQ(Engine.submit(SlowJob("shed")), ServeEngine::Admit::Shed);
    Engine.cancelInFlight();
    Engine.shutdown(/*CancelQueued=*/true);
  }
  EXPECT_EQ(Completions, 2u) << "accepted jobs complete; shed jobs do not";
  for (const std::string &Id : CompletedIds)
    EXPECT_NE(Id, "shed");
}

// Deadline-aware admission (Options::DeadlineAwareAdmission): once the
// EWMA service-time estimate exists, a job whose deadline cannot survive
// the current queue is shed at submit.  Jobs without a deadline are never
// shed by this check, however deep the queue.
TEST(Serve, DeadlineAwareAdmissionShedsDoomedJobs) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  std::atomic<size_t> Completions{0};
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    EO.QueueCapacity = 8;
    EO.DeadlineAwareAdmission = true;
    ServeEngine Engine(EO,
                       [&](ServeEngine::Completion &&) { ++Completions; });
    // Seed the EWMA: one real completion (richards at input 30 runs for
    // well over a millisecond).
    ServeEngine::Job Seed;
    Seed.Id = "seed";
    Seed.Snapshot = Snap;
    Seed.Input = 30;
    ASSERT_EQ(Engine.submit(std::move(Seed)), ServeEngine::Admit::Accepted);
    while (Completions.load() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Give the worker time to publish the EWMA after the completion.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // Wedge the worker and stack the queue with slow work.  The deadline
    // is a wedge backstop only (cancelInFlight ends the test); it must be
    // generous enough that the sanitizer-inflated EWMA estimate can never
    // shed these setup jobs themselves.
    for (int I = 0; I != 3; ++I) {
      ServeEngine::Job J;
      J.Id = "slow-" + std::to_string(I);
      J.Snapshot = Snap;
      J.Input = 1000000;
      J.DeadlineMs = 60000;
      ASSERT_EQ(Engine.submit(std::move(J)), ServeEngine::Admit::Accepted);
    }
    // A 1 ms deadline cannot survive a queue of multi-ms jobs: shed.
    ServeEngine::Job Doomed;
    Doomed.Id = "doomed";
    Doomed.Snapshot = Snap;
    Doomed.Input = 30;
    Doomed.DeadlineMs = 1;
    EXPECT_EQ(Engine.submit(std::move(Doomed)), ServeEngine::Admit::Shed);
    // No deadline means no deadline-aware shed, ever.
    ServeEngine::Job NoDeadline;
    NoDeadline.Id = "no-deadline";
    NoDeadline.Snapshot = Snap;
    NoDeadline.Input = 30;
    EXPECT_EQ(Engine.submit(std::move(NoDeadline)),
              ServeEngine::Admit::Accepted);
    Engine.cancelInFlight();
    Engine.shutdown(/*CancelQueued=*/true);
  }
}

// Graceful drain under backpressure: producers blocked in submit() on a
// full queue must be released by shutdown — each blocked submit returns
// Closed (not a hang, not a lost job), every accepted job completes, and
// a post-shutdown submit is refused with Closed.  This is micad's
// SIGTERM-while-producers-are-backpressured path at the engine level.
TEST(Serve, ShutdownReleasesBackpressuredProducers) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  std::atomic<size_t> Completions{0};
  std::atomic<size_t> Accepted{0}, RefusedClosed{0}, Other{0};
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    EO.QueueCapacity = 2;
    ServeEngine Engine(EO,
                       [&](ServeEngine::Completion &&) { ++Completions; });

    std::vector<std::thread> Producers;
    for (int P = 0; P != 2; ++P)
      Producers.emplace_back([&, P] {
        for (int I = 0; I != 4; ++I) {
          ServeEngine::Job J;
          J.Id = std::to_string(P) + "-" + std::to_string(I);
          J.Snapshot = Snap;
          J.Input = 1000000;
          J.DeadlineMs = 2000;
          switch (Engine.submit(std::move(J))) {
          case ServeEngine::Admit::Accepted:
            ++Accepted;
            break;
          case ServeEngine::Admit::Closed:
            ++RefusedClosed;
            break;
          default:
            ++Other;
            break;
          }
        }
      });

    // Let the producers fill the queue and block, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Engine.cancelInFlight();
    Engine.shutdown(/*CancelQueued=*/true);
    for (std::thread &T : Producers)
      T.join();

    ServeEngine::Job Late;
    Late.Id = "late";
    Late.Snapshot = Snap;
    Late.Input = 10;
    EXPECT_EQ(Engine.submit(std::move(Late)), ServeEngine::Admit::Closed);
  }
  EXPECT_EQ(Other.load(), 0u);
  EXPECT_EQ(Accepted.load() + RefusedClosed.load(), 8u)
      << "every producer submit got a definite verdict";
  EXPECT_GE(RefusedClosed.load(), 1u)
      << "at least one blocked producer was released by the drain";
  EXPECT_EQ(Completions.load(), Accepted.load())
      << "every accepted job completed (ran, trapped, or was dropped "
         "Cancelled) — none lost, none duplicated";
}

TEST(SnapshotCacheTest, BuildsOnceAcrossThreads) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);

  SnapshotCache Cache;
  const std::string Key = SnapshotCache::makeKey(
      {"richards.mica"}, Config::CHA, ExecTier::Bytecode, "none");

  std::atomic<int> Builds{0};
  SnapshotCache::Builder Build =
      [&](std::string &BErr) -> std::shared_ptr<const CompiledSnapshot> {
    ++Builds;
    // Widen the race window so every thread is in getOrBuild before the
    // one build finishes.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return WB->buildSnapshot(Config::CHA, BErr, {}, {}, WB);
  };

  std::vector<std::shared_ptr<const CompiledSnapshot>> Got(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I != Got.size(); ++I)
    Threads.emplace_back([&, I] {
      std::string TErr;
      Got[I] = Cache.getOrBuild(Key, Build, TErr);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Builds.load(), 1) << "one build per key, however many waiters";
  ASSERT_TRUE(Got[0]);
  for (const auto &Snap : Got)
    EXPECT_EQ(Snap.get(), Got[0].get()) << "all callers share one snapshot";
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(SnapshotCacheTest, FailedBuildsAreNotCached) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;

  SnapshotCache Cache;
  const std::string Key = SnapshotCache::makeKey(
      {"richards.mica"}, Config::Base, ExecTier::Bytecode, "none");

  std::string GErr;
  std::shared_ptr<const CompiledSnapshot> Snap = Cache.getOrBuild(
      Key,
      [](std::string &BErr) -> std::shared_ptr<const CompiledSnapshot> {
        BErr = "synthetic build failure";
        return nullptr;
      },
      GErr);
  EXPECT_FALSE(Snap);
  EXPECT_NE(GErr.find("synthetic build failure"), std::string::npos);
  EXPECT_EQ(Cache.size(), 0u) << "failures must not be cached";

  // The same key retries and succeeds.
  GErr.clear();
  Snap = Cache.getOrBuild(
      Key,
      [&](std::string &BErr) -> std::shared_ptr<const CompiledSnapshot> {
        return WB->buildSnapshot(Config::Base, BErr, {}, {}, WB);
      },
      GErr);
  ASSERT_TRUE(Snap) << GErr;
  EXPECT_EQ(Cache.size(), 1u);
}

// Satellite: clearCaches() drops the adaptive dispatch state (PICs, memo)
// without touching the counters; resetStats() zeroes the counters without
// touching the caches.
TEST(DispatcherState, ClearCachesAndResetStatsAreIndependent) {
  // The receiver's class is laundered through pick() so Base's
  // intraprocedural analysis cannot bind area() statically — the send
  // stays a real dynamic dispatch that exercises the PIC/memo caches.
  std::unique_ptr<Program> P = buildProgram({R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method pick(n@Int) {
      if (n % 2 == 0) { new Circle; } else { new Square; }
    }
    method main(n@Int) {
      let i := 0; let acc := 0;
      while (i < n) { acc := acc + area(pick(i)); i := i + 1; }
      acc;
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  ASSERT_TRUE(CP);

  Interpreter I(*CP);
  ASSERT_TRUE(I.callMain(50)) << I.errorMessage();
  Dispatcher &D = I.dispatcher();

  const uint64_t Lookups = D.stats().Lookups;
  ASSERT_GT(Lookups, 0u);
  ASSERT_GT(D.numPicSites(), 0u);

  // Dropping the caches preserves the counters.
  D.clearCaches();
  EXPECT_EQ(D.numPicSites(), 0u);
  EXPECT_EQ(D.stats().Lookups, Lookups);

  // Re-run: the caches repopulate and the counters keep accumulating.
  ASSERT_TRUE(I.callMain(50)) << I.errorMessage();
  EXPECT_GT(D.numPicSites(), 0u);
  EXPECT_GT(D.stats().Lookups, Lookups);

  // Zeroing the counters preserves the caches.
  const size_t Pics = D.numPicSites();
  D.resetStats();
  EXPECT_EQ(D.stats().Lookups, 0u);
  EXPECT_EQ(D.numPicSites(), Pics);
}

//===- tests/ServeTests.cpp - Snapshots, thread-pool serving ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// The immutability contract of DESIGN.md section 11, enforced:
//
//   - every (config, benchmark) job served from a shared CompiledSnapshot
//     on an 8-thread pool produces RunStats bit-identical to the same job
//     run single-threaded, on both execution tiers;
//   - per-job metrics deltas sum exactly to the process-wide registry
//     totals;
//   - deadlines and shutdown cancel jobs cooperatively;
//   - SnapshotCache builds each key once and never caches failures;
//   - Dispatcher::clearCaches() and resetStats() are independent.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"
#include "driver/Snapshot.h"
#include "runtime/Dispatcher.h"
#include "support/Metrics.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Full bitwise RunStats comparison, NodeMix included: the serving
/// guarantee is *identical* counters, not merely identical output.
bool statsEqual(const RunStats &A, const RunStats &B) {
  return A.DynamicDispatches == B.DynamicDispatches &&
         A.VersionSelects == B.VersionSelects &&
         A.StaticCalls == B.StaticCalls && A.InlinePrims == B.InlinePrims &&
         A.PredictedHits == B.PredictedHits &&
         A.PredictedMisses == B.PredictedMisses &&
         A.FeedbackHits == B.FeedbackHits &&
         A.FeedbackMisses == B.FeedbackMisses &&
         A.ClosuresCreated == B.ClosuresCreated &&
         A.ClosureCalls == B.ClosureCalls &&
         A.Allocations == B.Allocations &&
         A.MethodInvocations == B.MethodInvocations &&
         A.NodesEvaluated == B.NodesEvaluated &&
         A.PeakDepth == B.PeakDepth && A.Cycles == B.Cycles &&
         A.NodeMix == B.NodeMix;
}

struct BenchCase {
  const char *Name;
  std::vector<std::string> Files;
  int64_t Input;
};

const BenchCase Benches[] = {
    {"richards", {"richards.mica"}, 30},
    {"instsched", {"instsched.mica"}, 6},
    {"typechecker", {"minilang.mica", "typechecker.mica"}, 8},
    {"compiler", {"minilang.mica", "compiler.mica"}, 8},
};

const Config AllConfigs[] = {Config::Base, Config::Cust, Config::CustMM,
                             Config::CHA, Config::Selective};

/// One shared snapshot plus its single-threaded reference result.
struct ServedUnit {
  std::string Label;
  std::shared_ptr<const CompiledSnapshot> Snap;
  int64_t Input = 0;
  RunStats Ref;
  std::string RefOutput;
};

/// Builds snapshots for every (benchmark, config) pair on \p T, records a
/// single-threaded reference run for each, then replays every job twice
/// on an 8-thread pool and demands bit-identical RunStats and output.
void runConcurrencyStress(ExecTier T) {
  std::vector<ServedUnit> Units;
  std::vector<std::shared_ptr<Workbench>> Keepers;

  for (const BenchCase &B : Benches) {
    std::string Err;
    std::shared_ptr<Workbench> WB = Workbench::fromFiles(B.Files, Err);
    ASSERT_TRUE(WB) << B.Name << ": " << Err;
    WB->setTier(T);
    ASSERT_TRUE(WB->collectProfile(B.Input, Err)) << B.Name << ": " << Err;
    Keepers.push_back(WB);

    for (Config C : AllConfigs) {
      SelectiveOptions Sel;
      Sel.SpecializationThreshold = 50;
      std::shared_ptr<const CompiledSnapshot> Snap =
          WB->buildSnapshot(C, Err, Sel, {}, WB);
      ASSERT_TRUE(Snap) << B.Name << "/" << configName(C) << ": " << Err;
      EXPECT_EQ(Snap->tier(), T)
          << B.Name << "/" << configName(C) << " fell back off the "
          << "requested tier";

      CompiledSnapshot::JobResult Ref = Snap->run(B.Input);
      ASSERT_TRUE(Ref.Ok)
          << B.Name << "/" << configName(C) << ": " << Ref.Error;

      ServedUnit U;
      U.Label = std::string(B.Name) + "/" + configName(C);
      U.Snap = Snap;
      U.Input = B.Input;
      U.Ref = Ref.R.Run;
      U.RefOutput = Ref.R.Output;
      Units.push_back(std::move(U));
    }
  }
  ASSERT_EQ(Units.size(), 20u) << "5 configs x 4 benchmarks";

  // Storm: every unit twice, interleaved across 8 workers.  Completions
  // are serialized by the engine, so plain writes below are safe.
  std::vector<std::string> Problems;
  size_t Completions = 0;
  {
    ServeEngine::Options EO;
    EO.Threads = 8;
    EO.QueueCapacity = 16;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ++Completions;
      size_t Idx = std::strtoull(Cmp.TheJob.Id.c_str(), nullptr, 10) %
                   Units.size();
      const ServedUnit &U = Units[Idx];
      if (Cmp.Cancelled || !Cmp.Result.Ok)
        Problems.push_back(U.Label + ": job failed: " + Cmp.Result.Error);
      else if (!statsEqual(Cmp.Result.R.Run, U.Ref))
        Problems.push_back(U.Label + ": RunStats differ from the "
                                     "single-thread reference");
      else if (Cmp.Result.R.Output != U.RefOutput)
        Problems.push_back(U.Label + ": output differs from the "
                                     "single-thread reference");
    });
    for (size_t I = 0; I != 2 * Units.size(); ++I) {
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = Units[I % Units.size()].Snap;
      J.Input = Units[I % Units.size()].Input;
      J.CollectMetricsDelta = false;
      ASSERT_TRUE(Engine.submit(std::move(J)));
    }
    Engine.shutdown(false);
  }

  EXPECT_EQ(Completions, 2 * Units.size());
  for (const std::string &P : Problems)
    ADD_FAILURE() << P;
}

} // namespace

TEST(ServeStress, BytecodeTierJobsMatchSingleThreadBaseline) {
  runConcurrencyStress(ExecTier::Bytecode);
}

TEST(ServeStress, AstTierJobsMatchSingleThreadBaseline) {
  runConcurrencyStress(ExecTier::Ast);
}

// Per-job MetricsDelta entries, summed over all jobs, must equal the
// process-wide registry totals for those counters — per-job observability
// is exact, not sampled.  resetAll() runs *after* the build and reference
// run so only the served jobs contribute.
TEST(Serve, MetricsDeltasSumToRegistryTotals) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  ASSERT_TRUE(WB->collectProfile(10, Err)) << Err;
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::CHA, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  metrics::resetAll();

  std::map<std::string, uint64_t> Sums;
  size_t JobsOk = 0;
  {
    ServeEngine::Options EO;
    EO.Threads = 4;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ASSERT_TRUE(Cmp.Result.Ok) << Cmp.Result.Error;
      ++JobsOk;
      EXPECT_FALSE(Cmp.Result.MetricsDelta.empty());
      for (const auto &KV : Cmp.Result.MetricsDelta)
        Sums[KV.first] += KV.second;
    });
    for (int I = 0; I != 12; ++I) {
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = Snap;
      J.Input = 10;
      J.CollectMetricsDelta = true;
      ASSERT_TRUE(Engine.submit(std::move(J)));
    }
    Engine.shutdown(false);
  }
  ASSERT_EQ(JobsOk, 12u);

  std::map<std::string, uint64_t> Registry;
  for (const auto &KV : metrics::snapshot())
    Registry[KV.first] = KV.second;

  EXPECT_GT(Sums.at("interp.nodes_evaluated"), 0u);
  EXPECT_GT(Sums.at("dispatcher.lookups"), 0u);
  for (const auto &KV : Sums)
    EXPECT_EQ(KV.second, Registry[KV.first])
        << "per-job deltas for " << KV.first
        << " do not sum to the registry total";
}

TEST(Serve, DeadlineCancelsJobCooperatively) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  bool SawDeadlineTrap = false;
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      EXPECT_FALSE(Cmp.Result.Ok);
      EXPECT_FALSE(Cmp.Cancelled) << "job started; must trap, not drop";
      if (Cmp.Result.Trap.Kind == TrapKind::DeadlineExceeded)
        SawDeadlineTrap = true;
    });
    ServeEngine::Job J;
    J.Id = "slow";
    J.Snapshot = Snap;
    J.Input = 1000000; // minutes of work, uncancelled
    J.DeadlineMs = 20;
    ASSERT_TRUE(Engine.submit(std::move(J)));
    Engine.shutdown(false);
  }
  EXPECT_TRUE(SawDeadlineTrap);
}

// shutdown(CancelQueued=true) after cancelInFlight(): the running job
// traps at its next poll, jobs still in the queue come back Cancelled
// without ever starting.  This is micad's SIGTERM drain path.
TEST(Serve, ShutdownCancelsInFlightAndDropsQueued) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);
  std::shared_ptr<const CompiledSnapshot> Snap =
      WB->buildSnapshot(Config::Base, Err, {}, {}, WB);
  ASSERT_TRUE(Snap) << Err;

  size_t Completions = 0, Dropped = 0, Started = 0;
  {
    ServeEngine::Options EO;
    EO.Threads = 1;
    EO.QueueCapacity = 8;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      ++Completions;
      if (Cmp.Cancelled) {
        ++Dropped;
        return;
      }
      ++Started;
      // Anything that got to run was cancelled cooperatively — nothing
      // this slow finishes before the drain (backstop deadline included).
      EXPECT_FALSE(Cmp.Result.Ok);
      EXPECT_EQ(Cmp.Result.Trap.Kind, TrapKind::DeadlineExceeded);
    });
    for (int I = 0; I != 4; ++I) {
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = Snap;
      J.Input = 1000000;
      J.DeadlineMs = 2000; // backstop so a racing dequeue stays bounded
      ASSERT_TRUE(Engine.submit(std::move(J)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Engine.cancelInFlight();
    Engine.shutdown(/*CancelQueued=*/true);
  }
  EXPECT_EQ(Completions, 4u) << "every submitted job must complete";
  EXPECT_GE(Started, 1u);
  EXPECT_GE(Dropped, 2u) << "most of the queue must drain as Cancelled";
}

TEST(SnapshotCacheTest, BuildsOnceAcrossThreads) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;
  WB->setTier(ExecTier::Bytecode);

  SnapshotCache Cache;
  const std::string Key = SnapshotCache::makeKey(
      {"richards.mica"}, Config::CHA, ExecTier::Bytecode, "none");

  std::atomic<int> Builds{0};
  SnapshotCache::Builder Build =
      [&](std::string &BErr) -> std::shared_ptr<const CompiledSnapshot> {
    ++Builds;
    // Widen the race window so every thread is in getOrBuild before the
    // one build finishes.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return WB->buildSnapshot(Config::CHA, BErr, {}, {}, WB);
  };

  std::vector<std::shared_ptr<const CompiledSnapshot>> Got(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I != Got.size(); ++I)
    Threads.emplace_back([&, I] {
      std::string TErr;
      Got[I] = Cache.getOrBuild(Key, Build, TErr);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Builds.load(), 1) << "one build per key, however many waiters";
  ASSERT_TRUE(Got[0]);
  for (const auto &Snap : Got)
    EXPECT_EQ(Snap.get(), Got[0].get()) << "all callers share one snapshot";
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(SnapshotCacheTest, FailedBuildsAreNotCached) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromFiles({"richards.mica"}, Err);
  ASSERT_TRUE(WB) << Err;

  SnapshotCache Cache;
  const std::string Key = SnapshotCache::makeKey(
      {"richards.mica"}, Config::Base, ExecTier::Bytecode, "none");

  std::string GErr;
  std::shared_ptr<const CompiledSnapshot> Snap = Cache.getOrBuild(
      Key,
      [](std::string &BErr) -> std::shared_ptr<const CompiledSnapshot> {
        BErr = "synthetic build failure";
        return nullptr;
      },
      GErr);
  EXPECT_FALSE(Snap);
  EXPECT_NE(GErr.find("synthetic build failure"), std::string::npos);
  EXPECT_EQ(Cache.size(), 0u) << "failures must not be cached";

  // The same key retries and succeeds.
  GErr.clear();
  Snap = Cache.getOrBuild(
      Key,
      [&](std::string &BErr) -> std::shared_ptr<const CompiledSnapshot> {
        return WB->buildSnapshot(Config::Base, BErr, {}, {}, WB);
      },
      GErr);
  ASSERT_TRUE(Snap) << GErr;
  EXPECT_EQ(Cache.size(), 1u);
}

// Satellite: clearCaches() drops the adaptive dispatch state (PICs, memo)
// without touching the counters; resetStats() zeroes the counters without
// touching the caches.
TEST(DispatcherState, ClearCachesAndResetStatsAreIndependent) {
  // The receiver's class is laundered through pick() so Base's
  // intraprocedural analysis cannot bind area() statically — the send
  // stays a real dynamic dispatch that exercises the PIC/memo caches.
  std::unique_ptr<Program> P = buildProgram({R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method pick(n@Int) {
      if (n % 2 == 0) { new Circle; } else { new Square; }
    }
    method main(n@Int) {
      let i := 0; let acc := 0;
      while (i < n) { acc := acc + area(pick(i)); i := i + 1; }
      acc;
    })"});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  ASSERT_TRUE(CP);

  Interpreter I(*CP);
  ASSERT_TRUE(I.callMain(50)) << I.errorMessage();
  Dispatcher &D = I.dispatcher();

  const uint64_t Lookups = D.stats().Lookups;
  ASSERT_GT(Lookups, 0u);
  ASSERT_GT(D.numPicSites(), 0u);

  // Dropping the caches preserves the counters.
  D.clearCaches();
  EXPECT_EQ(D.numPicSites(), 0u);
  EXPECT_EQ(D.stats().Lookups, Lookups);

  // Re-run: the caches repopulate and the counters keep accumulating.
  ASSERT_TRUE(I.callMain(50)) << I.errorMessage();
  EXPECT_GT(D.numPicSites(), 0u);
  EXPECT_GT(D.stats().Lookups, Lookups);

  // Zeroing the counters preserves the caches.
  const size_t Pics = D.numPicSites();
  D.resetStats();
  EXPECT_EQ(D.stats().Lookups, 0u);
  EXPECT_EQ(D.numPicSites(), Pics);
}

//===- tests/HierarchyScaleTests.cpp - Hierarchy-axis scaling tests -------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the hierarchy-axis scaling work: the hybrid ClassSet
/// representations (differential against a std::set model, all three
/// representations forced through the test hook), interval cones against
/// a transitive-closure reference over randomized DAGs, the
/// DispatchTable cell-cap regression (just-over-cap must fall back while
/// just-under-cap materializes, both agreeing with Program::dispatch),
/// the all-build-modes finalize trap, the Rng rejection-sampling rewrite
/// (frozen legacy sequence + uniformity), and the structured hierarchy
/// synthesizer (determinism, single-interval cones, cross-config/tier
/// output equality).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fuzz/ProgramGen.h"
#include "hierarchy/ClassHierarchy.h"
#include "runtime/DispatchTable.h"
#include "support/ClassSet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace selspec;
using namespace selspec::test;

namespace {

//===----------------------------------------------------------------------===//
// Hybrid ClassSet: differential property tests
//===----------------------------------------------------------------------===//

constexpr ClassSet::Rep AllReps[] = {ClassSet::Rep::Dense,
                                     ClassSet::Rep::Sparse,
                                     ClassSet::Rep::Interval};

/// Checks every observable of \p S against the model \p M, including that
/// forcing each representation preserves value, equality, and hash.
void expectMatchesModel(const ClassSet &S, const std::set<uint32_t> &M,
                        unsigned Universe, const char *Ctx) {
  ASSERT_EQ(S.universeSize(), Universe) << Ctx;
  EXPECT_EQ(S.count(), M.size()) << Ctx;
  EXPECT_EQ(S.isEmpty(), M.empty()) << Ctx;
  EXPECT_EQ(S.isAll(), M.size() == Universe) << Ctx;

  std::vector<ClassId> Members = S.members();
  ASSERT_EQ(Members.size(), M.size()) << Ctx;
  auto It = M.begin();
  for (size_t I = 0; I != Members.size(); ++I, ++It)
    EXPECT_EQ(Members[I].value(), *It) << Ctx << " member " << I;

  for (uint32_t V : {0u, 1u, Universe / 2, Universe - 1})
    EXPECT_EQ(S.contains(ClassId(V)), M.count(V) != 0)
        << Ctx << " contains " << V;

  if (M.size() == 1)
    EXPECT_EQ(S.getSingleElement().value(), *M.begin()) << Ctx;
  else
    EXPECT_FALSE(S.getSingleElement().isValid()) << Ctx;

  // runs() must reconstruct exactly the member list.
  std::vector<uint32_t> FromRuns;
  for (const ClassSet::Range &Rg : S.runs()) {
    EXPECT_LT(Rg.Lo, Rg.Hi) << Ctx;
    for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
      FromRuns.push_back(V);
  }
  EXPECT_EQ(FromRuns, std::vector<uint32_t>(M.begin(), M.end())) << Ctx;

  // Every representation of the same value is ==, hashes identically, and
  // observes identically.
  for (ClassSet::Rep Target : AllReps) {
    ClassSet Copy = S;
    Copy.convertToRepForTesting(Target);
    EXPECT_EQ(Copy.representation(), Target) << Ctx;
    EXPECT_EQ(Copy, S) << Ctx;
    EXPECT_EQ(Copy.hashValue(), S.hashValue()) << Ctx;
    EXPECT_EQ(Copy.count(), S.count()) << Ctx;
    EXPECT_TRUE(Copy.isSubsetOf(S) && S.isSubsetOf(Copy)) << Ctx;
  }
}

std::set<uint32_t> modelIntersect(const std::set<uint32_t> &A,
                                  const std::set<uint32_t> &B) {
  std::set<uint32_t> Out;
  for (uint32_t V : A)
    if (B.count(V))
      Out.insert(V);
  return Out;
}

std::set<uint32_t> modelUnion(const std::set<uint32_t> &A,
                              const std::set<uint32_t> &B) {
  std::set<uint32_t> Out = A;
  Out.insert(B.begin(), B.end());
  return Out;
}

std::set<uint32_t> modelSubtract(const std::set<uint32_t> &A,
                                 const std::set<uint32_t> &B) {
  std::set<uint32_t> Out;
  for (uint32_t V : A)
    if (!B.count(V))
      Out.insert(V);
  return Out;
}

TEST(HybridClassSetTest, DifferentialAgainstModel) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    fuzz::Rng R(Seed);
    const unsigned U = 8 + R.below(160);
    ClassSet A(U), B(U);
    std::set<uint32_t> MA, MB;
    std::string Ctx = "seed " + std::to_string(Seed);

    for (unsigned Op = 0; Op != 200; ++Op) {
      switch (R.below(12)) {
      case 0:
      case 1: {
        uint32_t V = R.below(U);
        A.insert(ClassId(V));
        MA.insert(V);
        break;
      }
      case 2: {
        uint32_t V = R.below(U);
        A.remove(ClassId(V));
        MA.erase(V);
        break;
      }
      case 3: {
        uint32_t V = R.below(U);
        B.insert(ClassId(V));
        MB.insert(V);
        break;
      }
      case 4: {
        uint32_t V = R.below(U);
        B.remove(ClassId(V));
        MB.erase(V);
        break;
      }
      case 5:
        A &= B;
        MA = modelIntersect(MA, MB);
        break;
      case 6:
        A |= B;
        MA = modelUnion(MA, MB);
        break;
      case 7:
        A.subtract(B);
        MA = modelSubtract(MA, MB);
        break;
      case 8: {
        bool ModelSubset = std::includes(MB.begin(), MB.end(), MA.begin(),
                                         MA.end());
        EXPECT_EQ(A.isSubsetOf(B), ModelSubset) << Ctx;
        EXPECT_EQ(A.intersects(B), !modelIntersect(MA, MB).empty()) << Ctx;
        EXPECT_EQ(A == B, MA == MB) << Ctx;
        break;
      }
      case 9:
        B = ClassSet::all(U);
        MB.clear();
        for (uint32_t V = 0; V != U; ++V)
          MB.insert(V);
        break;
      case 10: {
        uint32_t V = R.below(U);
        B = ClassSet::single(U, ClassId(V));
        MB = {V};
        break;
      }
      case 11: {
        // Force a random representation mid-sequence: the value must be
        // unaffected and later ops must keep agreeing with the model.
        ClassSet &Target = R.chance(50) ? A : B;
        Target.convertToRepForTesting(AllReps[R.below(3)]);
        break;
      }
      }
      expectMatchesModel(A, MA, U, Ctx.c_str());
      expectMatchesModel(B, MB, U, Ctx.c_str());
    }
  }
}

TEST(HybridClassSetTest, EqualityAndHashAcrossRepresentations) {
  const unsigned U = 64;
  ClassSet S = ClassSet::fromRuns(U, {{2, 5}, {7, 8}, {30, 40}});
  std::vector<ClassSet> Copies;
  for (ClassSet::Rep Target : AllReps) {
    ClassSet C = S;
    C.convertToRepForTesting(Target);
    Copies.push_back(C);
  }
  for (const ClassSet &X : Copies)
    for (const ClassSet &Y : Copies) {
      EXPECT_EQ(X, Y);
      EXPECT_EQ(X.hashValue(), Y.hashValue());
    }
  // A genuinely different set differs in every representation pairing.
  ClassSet Other = ClassSet::fromRuns(U, {{2, 5}, {7, 9}, {30, 40}});
  for (ClassSet::Rep Target : AllReps) {
    ClassSet C = Other;
    C.convertToRepForTesting(Target);
    for (const ClassSet &X : Copies)
      EXPECT_NE(X, C);
  }
}

TEST(HybridClassSetTest, RepresentationAutoSelection) {
  // Empty sets allocate nothing and stay Sparse.
  ClassSet Empty(10000);
  EXPECT_EQ(Empty.representation(), ClassSet::Rep::Sparse);
  EXPECT_EQ(Empty.memoryBytes(), 0u);

  // The universe is one interval regardless of size.
  ClassSet All = ClassSet::all(10000);
  EXPECT_EQ(All.representation(), ClassSet::Rep::Interval);
  EXPECT_TRUE(All.isAll());
  EXPECT_LE(All.memoryBytes(), 64u);

  // A dense scatter over a large universe escalates to Dense.
  ClassSet Scatter(10000);
  for (uint32_t V = 0; V < 10000; V += 2)
    Scatter.insert(ClassId(V));
  EXPECT_EQ(Scatter.representation(), ClassSet::Rep::Dense);
  EXPECT_EQ(Scatter.count(), 5000u);
}

//===----------------------------------------------------------------------===//
// Interval cones vs. transitive-closure reference over random DAGs
//===----------------------------------------------------------------------===//

TEST(IntervalConeTest, MatchesTransitiveClosureOnRandomHierarchies) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    fuzz::Rng R(Seed);
    SymbolTable Syms;
    ClassHierarchy H;
    const unsigned N = 20 + R.below(100);

    // Random DAG: class i picks one or (30%) two parents among 0..i-1.
    std::vector<std::vector<unsigned>> ParentsOf(N);
    H.addClass(Syms.intern("C0"), {});
    for (unsigned I = 1; I != N; ++I) {
      unsigned P1 = R.below(I);
      std::vector<ClassId> Ps{ClassId(P1)};
      ParentsOf[I].push_back(P1);
      if (I > 1 && R.chance(30)) {
        unsigned P2 = R.below(I);
        if (P2 != P1) {
          Ps.push_back(ClassId(P2));
          ParentsOf[I].push_back(P2);
        }
      }
      ASSERT_TRUE(
          H.addClass(Syms.intern("C" + std::to_string(I)), Ps).isValid());
    }
    H.finalize();

    // Reference: IsSub[i][j] by forward propagation over ancestors.
    std::vector<std::vector<bool>> IsSub(N, std::vector<bool>(N, false));
    for (unsigned I = 0; I != N; ++I) {
      IsSub[I][I] = true;
      for (unsigned P : ParentsOf[I])
        for (unsigned J = 0; J != N; ++J)
          if (IsSub[P][J])
            IsSub[I][J] = true;
    }

    for (unsigned I = 0; I != N; ++I)
      for (unsigned J = 0; J != N; ++J)
        EXPECT_EQ(H.isSubclassOf(ClassId(I), ClassId(J)), IsSub[I][J])
            << "seed " << Seed << " pair (" << I << "," << J << ")";

    for (unsigned J = 0; J != N; ++J) {
      ClassSet Cone = H.cone(ClassId(J));
      ClassSet Reference(N);
      unsigned RefCount = 0;
      for (unsigned I = 0; I != N; ++I)
        if (IsSub[I][J]) {
          Reference.insert(ClassId(I));
          ++RefCount;
        }
      EXPECT_EQ(Cone, Reference) << "seed " << Seed << " cone " << J;
      EXPECT_EQ(Cone.hashValue(), Reference.hashValue())
          << "seed " << Seed << " cone " << J;
      EXPECT_EQ(H.coneSize(ClassId(J)), RefCount)
          << "seed " << Seed << " cone " << J;
      EXPECT_GE(H.coneIntervalCount(ClassId(J)), 1u);
    }

    EXPECT_TRUE(H.allClasses().isAll());
    EXPECT_EQ(H.allClasses().count(), N);
    EXPECT_EQ(H.cone(H.root()), H.allClasses()) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// DispatchTable cell-cap regression
//===----------------------------------------------------------------------===//

const char *CapProgram = R"(
class A; class A1 isa A; class A2 isa A; class A3 isa A;
class B; class B1 isa B; class B2 isa B; class B3 isa B;
method g(x@A1, y@B1) { 1; }
method g(x@A2, y@B2) { 2; }
method g(x@A3, y@B3) { 3; }
method main(n@Int) { n; }
)";

/// Both dispatched positions have 4 behavioral groups ({A1},{A2},{A3},
/// everything else), so the compressed table is exactly 16 cells.
TEST(DispatchTableCapTest, JustUnderCapMaterializesJustOverFallsBack) {
  std::unique_ptr<Program> P = buildProgram({CapProgram});
  ASSERT_TRUE(P);
  GenericId G = P->lookupGeneric(P->Syms.find("g"), 2);
  ASSERT_TRUE(G.isValid());

  DispatchTable AtCap(*P, G, /*CellCap=*/16);
  EXPECT_TRUE(AtCap.materialized());
  EXPECT_EQ(AtCap.tableSize(), 16u);
  EXPECT_EQ(AtCap.numDispatchedPositions(), 2u);
  EXPECT_EQ(AtCap.numGroups(0), 4u);
  EXPECT_EQ(AtCap.numGroups(1), 4u);

  // One cell over: the table must fall back, not abort or truncate.
  DispatchTable OverCap(*P, G, /*CellCap=*/15);
  EXPECT_FALSE(OverCap.materialized());
  EXPECT_EQ(OverCap.tableSize(), 0u);

  // The default cap is far above 16 cells.
  DispatchTable Default(*P, G);
  EXPECT_TRUE(Default.materialized());

  // Materialized or not, lookup agrees with Program::dispatch on every
  // class pair (including no-applicable-method combinations).
  std::vector<ClassId> Cs;
  for (const char *Name : {"A", "A1", "A2", "A3", "B", "B1", "B2", "B3"})
    Cs.push_back(P->Classes.lookup(P->Syms.find(Name)));
  for (ClassId X : Cs)
    for (ClassId Y : Cs) {
      MethodId Want = P->dispatch(G, {X, Y});
      EXPECT_EQ(AtCap.lookup({X, Y}), Want);
      EXPECT_EQ(OverCap.lookup({X, Y}), Want);
      EXPECT_EQ(Default.lookup({X, Y}), Want);
    }
}

//===----------------------------------------------------------------------===//
// Finalization is checked in every build mode
//===----------------------------------------------------------------------===//

TEST(ClassHierarchyDeathTest, QueryBeforeFinalizeTraps) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SymbolTable Syms;
  ClassHierarchy H;
  ClassId Any = H.addClass(Syms.intern("Any"), {});
  ASSERT_TRUE(Any.isValid());
  EXPECT_DEATH(H.isSubclassOf(Any, Any), "before finalize");
  EXPECT_DEATH(H.allClasses(), "before finalize");
}

TEST(ClassHierarchyDeathTest, AddClassInvalidatesFinalize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SymbolTable Syms;
  ClassHierarchy H;
  ClassId Any = H.addClass(Syms.intern("Any"), {});
  H.finalize();
  EXPECT_TRUE(H.isSubclassOf(Any, Any));
  ClassId Later = H.addClass(Syms.intern("Later"), {Any});
  ASSERT_TRUE(Later.isValid());
  EXPECT_DEATH(H.isSubclassOf(Later, Any), "after addClass");
}

TEST(ClassHierarchyTest, FinalizeGenerationStamps) {
  SymbolTable Syms;
  ClassHierarchy H;
  ClassId Any = H.addClass(Syms.intern("Any"), {});
  EXPECT_EQ(H.finalizeGeneration(), 0u);
  EXPECT_FALSE(H.isFinalized());
  H.finalize();
  EXPECT_EQ(H.finalizeGeneration(), 1u);
  EXPECT_TRUE(H.isFinalized());
  H.addClass(Syms.intern("Later"), {Any});
  EXPECT_FALSE(H.isFinalized());
  EXPECT_EQ(H.finalizeGeneration(), 1u);
  H.finalize();
  EXPECT_EQ(H.finalizeGeneration(), 2u);
  EXPECT_TRUE(H.isFinalized());
}

//===----------------------------------------------------------------------===//
// Rng: frozen legacy sequence + rejection-sampling uniformity
//===----------------------------------------------------------------------===//

/// The pre-rejection-sampling sequence (next() % N) is frozen: logged
/// stress seeds must replay their historical programs.  Golden values
/// were captured from the original implementation.
TEST(RngTest, LegacySequenceIsFrozen) {
  fuzz::Rng R(0x5E15EC1AFEULL);
  const uint32_t Bounds[] = {10, 100, 7, 1000000, 3, 2, 4096, 999999937};
  const uint32_t Want[] = {7u, 33u, 5u, 725477u, 2u, 1u, 1643u, 437043025u};
  for (size_t I = 0; I != std::size(Bounds); ++I)
    EXPECT_EQ(R.below(Bounds[I]), Want[I]) << "draw " << I;

  fuzz::Rng R2(42);
  const uint32_t Want2[] = {13u, 91u, 58u, 64u, 50u, 62u};
  for (uint32_t W : Want2)
    EXPECT_EQ(R2.below(100), W);

  // Structurally: the first accepted draw equals the raw splitmix64
  // output mod N, for any seed and bound.
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    fuzz::Rng A(Seed), B(Seed);
    uint32_t N = 1 + static_cast<uint32_t>((Seed * 7919) % 100000);
    EXPECT_EQ(A.below(N), B.next() % N) << "seed " << Seed;
  }
}

TEST(RngTest, BelowIsStatisticallyUniform) {
  fuzz::Rng R(7);
  // Small bound: 30000 draws over 3 buckets; each expectation 10000,
  // sigma ~81, so +/-500 is a >6-sigma band (never flakes).
  unsigned Buckets[3] = {0, 0, 0};
  for (unsigned I = 0; I != 30000; ++I)
    ++Buckets[R.below(3)];
  for (unsigned Count : Buckets) {
    EXPECT_GT(Count, 9500u);
    EXPECT_LT(Count, 10500u);
  }

  // Large bound (near 2^32, where the discarded top residue band is
  // widest): the sample mean of 20000 draws must sit within 2% of N/2
  // (sigma of the mean ~8.2e6, the band is ~5 sigma).
  const uint32_t N = 4000000000u;
  double Sum = 0;
  for (unsigned I = 0; I != 20000; ++I)
    Sum += R.below(N);
  double Mean = Sum / 20000.0;
  EXPECT_GT(Mean, double(N) / 2 * 0.98);
  EXPECT_LT(Mean, double(N) / 2 * 1.02);
}

//===----------------------------------------------------------------------===//
// Structured hierarchy synthesizer
//===----------------------------------------------------------------------===//

TEST(HierarchySynthesizerTest, Deterministic) {
  fuzz::HierarchySpec Spec;
  Spec.Classes = 80;
  Spec.Seed = 1234;
  EXPECT_EQ(fuzz::generateHierarchyProgram(Spec),
            fuzz::generateHierarchyProgram(Spec));
  fuzz::HierarchySpec Other = Spec;
  Other.Seed = 1235;
  EXPECT_NE(fuzz::generateHierarchyProgram(Spec),
            fuzz::generateHierarchyProgram(Other));
}

TEST(HierarchySynthesizerTest, TreeConesAreSingleIntervals) {
  fuzz::HierarchySpec Spec;
  Spec.Classes = 120;
  Spec.MultiParentPercent = 0;
  Spec.Seed = 7;
  std::unique_ptr<Program> P =
      buildProgram({fuzz::generateHierarchyProgram(Spec)});
  ASSERT_TRUE(P);
  const ClassHierarchy &H = P->Classes;
  ASSERT_GE(H.size(), Spec.Classes);
  for (unsigned I = 0; I != H.size(); ++I)
    EXPECT_EQ(H.coneIntervalCount(ClassId(I)), 1u)
        << "class " << I << " cone is not a single preorder interval";
}

TEST(HierarchySynthesizerTest, DiamondHierarchyResolvesAndRuns) {
  fuzz::HierarchySpec Spec;
  Spec.Classes = 100;
  Spec.MultiParentPercent = 40;
  Spec.MethodLeaves = 6;
  Spec.Generics = 2;
  Spec.Seed = 11;
  std::string Err;
  auto WB = Workbench::fromSources({fuzz::generateHierarchyProgram(Spec)},
                                   Err, /*WithStdlib=*/false);
  ASSERT_TRUE(WB) << Err;
  auto R = WB->runConfig(Config::Base, /*Input=*/200, Err);
  ASSERT_TRUE(R) << Err;
  EXPECT_EQ(R->Trap, TrapKind::None);
  EXPECT_FALSE(R->Output.empty());
}

TEST(HierarchySynthesizerTest, IdenticalOutputAcrossConfigsAndTiers) {
  fuzz::HierarchySpec Spec;
  Spec.Classes = 60;
  Spec.Depth = 6;
  Spec.Fanout = 4;
  Spec.MethodLeaves = 8;
  Spec.Generics = 2;
  Spec.Seed = 99;
  std::string Err;
  auto WB = Workbench::fromSources({fuzz::generateHierarchyProgram(Spec)},
                                   Err, /*WithStdlib=*/false);
  ASSERT_TRUE(WB) << Err;
  ASSERT_TRUE(WB->collectProfile(/*Input=*/200, Err)) << Err;

  std::string Reference;
  for (ExecTier Tier : {ExecTier::Bytecode, ExecTier::Ast}) {
    WB->setTier(Tier);
    for (Config C : {Config::Base, Config::Cust, Config::CustMM,
                     Config::CHA, Config::Selective}) {
      auto R = WB->runConfig(C, /*Input=*/500, Err);
      ASSERT_TRUE(R) << configName(C) << "/" << tierName(Tier) << ": "
                     << Err;
      EXPECT_EQ(R->Trap, TrapKind::None)
          << configName(C) << "/" << tierName(Tier);
      // The 500 iterations x 2 generics megamorphic dispatches can never
      // be statically bound, so every configuration retains at least
      // those 1000 (CHA binds everything else and hits exactly 1000).
      EXPECT_GE(R->Run.totalDispatches(), 1000u)
          << configName(C) << "/" << tierName(Tier);
      if (Reference.empty())
        Reference = R->Output;
      else
        EXPECT_EQ(R->Output, Reference)
            << configName(C) << "/" << tierName(Tier);
    }
  }
  EXPECT_FALSE(Reference.empty());
}

} // namespace

//===- tests/SupportTests.cpp - ClassSet / ids / diagnostics ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/ClassSet.h"
#include "support/Diagnostics.h"
#include "support/Ids.h"

#include <gtest/gtest.h>

using namespace selspec;

TEST(StrongId, DefaultIsInvalid) {
  ClassId C;
  EXPECT_FALSE(C.isValid());
  EXPECT_TRUE(ClassId(0).isValid());
  EXPECT_EQ(ClassId(3), ClassId(3));
  EXPECT_NE(ClassId(3), ClassId(4));
  EXPECT_LT(ClassId(3), ClassId(4));
}

TEST(ClassSet, EmptyAndAll) {
  ClassSet E = ClassSet::empty(100);
  EXPECT_TRUE(E.isEmpty());
  EXPECT_EQ(E.count(), 0u);
  EXPECT_FALSE(E.isAll());

  ClassSet A = ClassSet::all(100);
  EXPECT_FALSE(A.isEmpty());
  EXPECT_EQ(A.count(), 100u);
  EXPECT_TRUE(A.isAll());
  for (unsigned I = 0; I != 100; ++I)
    EXPECT_TRUE(A.contains(ClassId(I)));
}

TEST(ClassSet, AllClearsTailBits) {
  // Universe sizes straddling the word boundary must stay canonical.
  for (unsigned N : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    ClassSet A = ClassSet::all(N);
    EXPECT_EQ(A.count(), N) << "universe " << N;
    ClassSet B = ClassSet::empty(N);
    for (unsigned I = 0; I != N; ++I)
      B.insert(ClassId(I));
    EXPECT_EQ(A, B) << "universe " << N;
  }
}

TEST(ClassSet, InsertRemoveContains) {
  ClassSet S(70);
  S.insert(ClassId(0));
  S.insert(ClassId(69));
  EXPECT_TRUE(S.contains(ClassId(0)));
  EXPECT_TRUE(S.contains(ClassId(69)));
  EXPECT_FALSE(S.contains(ClassId(35)));
  EXPECT_EQ(S.count(), 2u);
  S.remove(ClassId(0));
  EXPECT_FALSE(S.contains(ClassId(0)));
  EXPECT_EQ(S.count(), 1u);
}

TEST(ClassSet, SetAlgebra) {
  ClassSet A(10), B(10);
  A.insert(ClassId(1));
  A.insert(ClassId(2));
  A.insert(ClassId(3));
  B.insert(ClassId(3));
  B.insert(ClassId(4));

  ClassSet I = A & B;
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.contains(ClassId(3)));

  ClassSet U = A | B;
  EXPECT_EQ(U.count(), 4u);

  ClassSet D = A;
  D.subtract(B);
  EXPECT_EQ(D.count(), 2u);
  EXPECT_FALSE(D.contains(ClassId(3)));

  EXPECT_TRUE(I.isSubsetOf(A));
  EXPECT_TRUE(I.isSubsetOf(B));
  EXPECT_FALSE(A.isSubsetOf(B));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(D.intersects(B));
}

TEST(ClassSet, SingleElement) {
  ClassSet S = ClassSet::single(20, ClassId(7));
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.getSingleElement(), ClassId(7));
  S.insert(ClassId(8));
  EXPECT_FALSE(S.getSingleElement().isValid());
  EXPECT_FALSE(ClassSet::empty(20).getSingleElement().isValid());
}

TEST(ClassSet, MembersOrdered) {
  ClassSet S(50);
  S.insert(ClassId(30));
  S.insert(ClassId(5));
  S.insert(ClassId(49));
  std::vector<ClassId> M = S.members();
  ASSERT_EQ(M.size(), 3u);
  EXPECT_EQ(M[0], ClassId(5));
  EXPECT_EQ(M[1], ClassId(30));
  EXPECT_EQ(M[2], ClassId(49));
  EXPECT_EQ(S.toString(), "{5,30,49}");
}

TEST(ClassSet, HashDiffersByContent) {
  ClassSet A(40), B(40);
  A.insert(ClassId(3));
  B.insert(ClassId(4));
  EXPECT_NE(A.hashValue(), B.hashValue());
  B.remove(ClassId(4));
  B.insert(ClassId(3));
  EXPECT_EQ(A.hashValue(), B.hashValue());
}

TEST(Diagnostics, ErrorsAndRendering) {
  Diagnostics D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "just a warning");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "bad thing");
  EXPECT_TRUE(D.hasErrors());
  std::string S = D.toString();
  EXPECT_NE(S.find("1:2: warning: just a warning"), std::string::npos);
  EXPECT_NE(S.find("3:4: error: bad thing"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

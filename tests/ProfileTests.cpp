//===- tests/ProfileTests.cpp - Call graph and profile database ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDb.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

TEST(CallGraph, AddAndQueryArcs) {
  CallGraph CG;
  EXPECT_TRUE(CG.empty());
  CG.addHits(CallSiteId(1), MethodId(10), MethodId(20), 5);
  CG.addHits(CallSiteId(1), MethodId(10), MethodId(21), 2);
  CG.addHits(CallSiteId(2), MethodId(11), MethodId(20), 7);
  CG.addHits(CallSiteId(1), MethodId(10), MethodId(20), 3); // accumulate

  EXPECT_EQ(CG.numArcs(), 3u);
  EXPECT_EQ(CG.totalWeight(), 17u);

  std::vector<Arc> Arcs = CG.arcs();
  ASSERT_EQ(Arcs.size(), 3u);
  // Deterministic order: by site then callee.
  EXPECT_EQ(Arcs[0].Site, CallSiteId(1));
  EXPECT_EQ(Arcs[0].Callee, MethodId(20));
  EXPECT_EQ(Arcs[0].Weight, 8u);
  EXPECT_EQ(Arcs[1].Callee, MethodId(21));
  EXPECT_EQ(Arcs[2].Site, CallSiteId(2));

  EXPECT_EQ(CG.arcsFrom(MethodId(10)).size(), 2u);
  EXPECT_EQ(CG.arcsTo(MethodId(20)).size(), 2u);
  EXPECT_EQ(CG.arcsAt(CallSiteId(1)).size(), 2u);
}

TEST(CallGraph, Merge) {
  CallGraph A, B;
  A.addHits(CallSiteId(0), MethodId(1), MethodId(2), 10);
  B.addHits(CallSiteId(0), MethodId(1), MethodId(2), 5);
  B.addHits(CallSiteId(3), MethodId(1), MethodId(4), 1);
  A.merge(B);
  EXPECT_EQ(A.totalWeight(), 16u);
  EXPECT_EQ(A.numArcs(), 2u);
}

TEST(ProfileDb, SerializeRoundTrip) {
  ProfileDb Db;
  CallGraph &G1 = Db.forProgram("richards");
  G1.addHits(CallSiteId(5), MethodId(2), MethodId(9), 1234);
  G1.addHits(CallSiteId(6), MethodId(2), MethodId(10), 77);
  CallGraph &G2 = Db.forProgram("instsched");
  G2.addHits(CallSiteId(1), MethodId(0), MethodId(1), 42);

  std::string Text = Db.serialize();
  ProfileDb Loaded;
  ASSERT_TRUE(Loaded.deserialize(Text));
  EXPECT_EQ(Loaded.numPrograms(), 2u);
  ASSERT_TRUE(Loaded.hasProgram("richards"));
  EXPECT_EQ(Loaded.forProgram("richards").totalWeight(), 1311u);
  EXPECT_EQ(Loaded.forProgram("instsched").totalWeight(), 42u);
  // Round-tripping again is byte-identical (canonical ordering).
  EXPECT_EQ(Loaded.serialize(), Text);
}

TEST(ProfileDb, RejectsMalformedInput) {
  ProfileDb Db;
  EXPECT_FALSE(Db.deserialize("not a profile"));
  EXPECT_FALSE(Db.deserialize("selspec-profile v1\narc 1 2 3 4\n"))
      << "arc before program header";
  EXPECT_FALSE(Db.deserialize("selspec-profile v1\nbogus\n"));
  EXPECT_TRUE(Db.deserialize("selspec-profile v1\n"));
}

TEST(ProfileDb, FileRoundTrip) {
  ProfileDb Db;
  Db.forProgram("p").addHits(CallSiteId(0), MethodId(0), MethodId(1), 3);
  std::string Path = testing::TempDir() + "/selspec_profile_test.txt";
  ASSERT_TRUE(Db.saveToFile(Path));
  ProfileDb Loaded;
  ASSERT_TRUE(Loaded.loadFromFile(Path));
  EXPECT_EQ(Loaded.forProgram("p").totalWeight(), 3u);
  EXPECT_FALSE(Loaded.loadFromFile("/nonexistent/dir/file.txt"));
}

namespace {

const char *PolySource = R"(
  class A; class B isa A;
  method tag(x@A) { 1; }
  method tag(x@B) { 2; }
  method pick(n@Int) { if (n % 3 == 0) { new A; } else { new B; } }
  method main(n@Int) {
    let i := 0;
    let total := 0;
    while (i < n) { total := total + tag(pick(i)); i := i + 1; }
    print(total);
  }
)";

} // namespace

TEST(Profiling, CollectsWeightedArcsFromRun) {
  std::unique_ptr<Program> P = buildProgram({PolySource});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CallGraph CG;
  runMain(*CP, 30, nullptr, &CG);

  ASSERT_FALSE(CG.empty());
  // The tag(pick(i)) site must show two callees with weights 10 / 20.
  uint64_t WeightA = 0, WeightB = 0;
  for (const Arc &A : CG.arcs()) {
    std::string Label = P->methodLabel(A.Callee);
    if (Label == "tag(A)")
      WeightA += A.Weight;
    if (Label == "tag(B)")
      WeightB += A.Weight;
  }
  EXPECT_EQ(WeightA, 10u);
  EXPECT_EQ(WeightB, 20u);
}

TEST(Profiling, DeterministicAcrossIdenticalRuns) {
  std::unique_ptr<Program> P = buildProgram({PolySource});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CallGraph CG1, CG2;
  runMain(*CP, 25, nullptr, &CG1);
  {
    // Fresh interpreter, same input.
    std::unique_ptr<CompiledProgram> CP2 = compileProgram(*P, Config::Base);
    runMain(*CP2, 25, nullptr, &CG2);
  }
  ProfileDb D1, D2;
  D1.forProgram("p").merge(CG1);
  D2.forProgram("p").merge(CG2);
  EXPECT_EQ(D1.serialize(), D2.serialize());
}

TEST(Profiling, ArcStructureStableAcrossInputs) {
  // Section 3.7.2: the *shape* of the profile (which callees each site
  // reaches) is stable across inputs, even though weights differ.
  std::unique_ptr<Program> P = buildProgram({PolySource});
  ASSERT_TRUE(P);
  std::unique_ptr<CompiledProgram> CP = compileProgram(*P, Config::Base);
  CallGraph Train, Test;
  runMain(*CP, 30, nullptr, &Train);
  {
    std::unique_ptr<CompiledProgram> CP2 = compileProgram(*P, Config::Base);
    runMain(*CP2, 90, nullptr, &Test);
  }
  auto Shape = [](const CallGraph &CG) {
    std::vector<std::pair<uint32_t, uint32_t>> Out;
    for (const Arc &A : CG.arcs())
      Out.emplace_back(A.Site.value(), A.Callee.value());
    return Out;
  };
  EXPECT_EQ(Shape(Train), Shape(Test));
}

//===- tests/BenchmarkProgramTests.cpp - The four Mica benchmarks ----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Smoke and equivalence tests for the Table 2 workloads (richards,
/// instsched, typechecker, compiler): they load, run under every
/// configuration with identical output, and give the selective algorithm
/// real work.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace selspec;
using namespace selspec::test;

namespace {

struct BenchCase {
  const char *Name;
  std::vector<std::string> Files;
  int64_t SmallInput;
};

const BenchCase Benches[] = {
    {"richards", {"richards.mica"}, 30},
    {"instsched", {"instsched.mica"}, 6},
    {"typechecker", {"minilang.mica", "typechecker.mica"}, 8},
    {"compiler", {"minilang.mica", "compiler.mica"}, 8},
};

class BenchmarkPrograms : public testing::TestWithParam<int> {};

} // namespace

TEST_P(BenchmarkPrograms, LoadsAndRunsUnderEveryConfig) {
  const BenchCase &Case = Benches[GetParam()];
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromFiles(Case.Files, Err);
  ASSERT_TRUE(W) << Case.Name << ": " << Err;
  ASSERT_TRUE(W->collectProfile(Case.SmallInput, Err))
      << Case.Name << ": " << Err;

  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 50;

  std::optional<ConfigResult> Base =
      W->runConfig(Config::Base, Case.SmallInput, Err);
  ASSERT_TRUE(Base) << Case.Name << ": " << Err;
  ASSERT_FALSE(Base->Output.empty()) << "benchmarks must print a checksum";

  for (Config C : {Config::Cust, Config::CustMM, Config::CHA,
                   Config::Selective}) {
    std::optional<ConfigResult> R =
        W->runConfig(C, Case.SmallInput, Err, Sel);
    ASSERT_TRUE(R) << Case.Name << "/" << configName(C) << ": " << Err;
    EXPECT_EQ(R->Output, Base->Output)
        << Case.Name << " diverges under " << configName(C);
  }
}

TEST_P(BenchmarkPrograms, SelectiveBeatsBaseOnDispatchesAndCycles) {
  const BenchCase &Case = Benches[GetParam()];
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromFiles(Case.Files, Err);
  ASSERT_TRUE(W) << Case.Name << ": " << Err;
  ASSERT_TRUE(W->collectProfile(Case.SmallInput, Err)) << Err;

  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 20;
  std::optional<ConfigResult> Base =
      W->runConfig(Config::Base, Case.SmallInput, Err);
  std::optional<ConfigResult> Selective =
      W->runConfig(Config::Selective, Case.SmallInput, Err, Sel);
  ASSERT_TRUE(Base && Selective) << Err;

  EXPECT_LT(Selective->Run.totalDispatches(),
            Base->Run.totalDispatches())
      << Case.Name;
  EXPECT_LT(Selective->Run.Cycles, Base->Run.Cycles) << Case.Name;
}

TEST_P(BenchmarkPrograms, SelectiveCodeSpaceFarBelowCust) {
  const BenchCase &Case = Benches[GetParam()];
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromFiles(Case.Files, Err);
  ASSERT_TRUE(W) << Case.Name << ": " << Err;
  ASSERT_TRUE(W->collectProfile(Case.SmallInput, Err)) << Err;

  // The paper's default threshold (1,000 invocations) is what keeps the
  // selective plan small; an aggressive threshold on a profile this hot
  // would specialize every arc of the 7-case multi-methods.
  SelectiveOptions Sel;
  std::unique_ptr<CompiledProgram> Cust = W->compileOnly(Config::Cust);
  std::unique_ptr<CompiledProgram> Selective =
      W->compileOnly(Config::Selective, Sel);
  EXPECT_LT(Selective->numCompiledRoutines(),
            Cust->numCompiledRoutines())
      << Case.Name;
}

INSTANTIATE_TEST_SUITE_P(Table2, BenchmarkPrograms, testing::Range(0, 4),
                         [](const testing::TestParamInfo<int> &Info) {
                           return std::string(Benches[Info.param].Name);
                         });

TEST(BenchmarkPrograms, OutputsAreInputDependent) {
  // Guards against benchmarks that ignore their workload parameter.
  for (const BenchCase &Case : Benches) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(Case.Files, Err);
    ASSERT_TRUE(W) << Case.Name << ": " << Err;
    std::optional<ConfigResult> R1 =
        W->runConfig(Config::Base, Case.SmallInput, Err);
    std::optional<ConfigResult> R2 =
        W->runConfig(Config::Base, Case.SmallInput * 2, Err);
    ASSERT_TRUE(R1 && R2) << Case.Name << ": " << Err;
    EXPECT_NE(R1->Output, R2->Output) << Case.Name;
  }
}

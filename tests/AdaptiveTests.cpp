//===- tests/AdaptiveTests.cpp - Online adaptive respecialization -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// The adaptive-loop guarantees of DESIGN.md section 12, enforced:
//
//   - live arc collection through CompiledSnapshot::run is exact and free
//     of observable side effects (RunStats bit-identical with it on/off,
//     both tiers);
//   - a healthy candidate promotes after its canary; a candidate that
//     traps, or that costs measurably more than the incumbent, is
//     canaried, rejected, and rolled back with the incumbent untouched —
//     bit-identical RunStats before and after;
//   - a rolled-back profile generation is pinned and never rebuilt
//     verbatim; genuinely new arcs unpin respecialization;
//   - the background respecializer answers requestRespecialize() (the
//     SIGHUP path) without any serving-thread involvement.
//
//===----------------------------------------------------------------------===//

#include "driver/Adaptive.h"
#include "driver/Pipeline.h"
#include "driver/Snapshot.h"
#include "support/Metrics.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

using namespace selspec;
using namespace selspec::test;

namespace {

/// Full bitwise RunStats comparison, NodeMix included (the serving
/// invariants promise identical counters, not merely identical output).
bool statsEqual(const RunStats &A, const RunStats &B) {
  return A.DynamicDispatches == B.DynamicDispatches &&
         A.VersionSelects == B.VersionSelects &&
         A.StaticCalls == B.StaticCalls && A.InlinePrims == B.InlinePrims &&
         A.PredictedHits == B.PredictedHits &&
         A.PredictedMisses == B.PredictedMisses &&
         A.FeedbackHits == B.FeedbackHits &&
         A.FeedbackMisses == B.FeedbackMisses &&
         A.ClosuresCreated == B.ClosuresCreated &&
         A.ClosureCalls == B.ClosureCalls &&
         A.Allocations == B.Allocations &&
         A.MethodInvocations == B.MethodInvocations &&
         A.NodesEvaluated == B.NodesEvaluated &&
         A.PeakDepth == B.PeakDepth && A.Cycles == B.Cycles &&
         A.NodeMix == B.NodeMix;
}

/// Polymorphic workload: pick() launders the receiver class so area()
/// stays a live dynamic dispatch and every run records arcs.
const char *ServeSrc = R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method pick(n@Int) {
      if (n % 2 == 0) { new Circle; } else { new Square; }
    }
    method main(n@Int) {
      let i := 0; let acc := 0;
      while (i < n) { acc := acc + area(pick(i)); i := i + 1; }
      acc;
    })";

/// Same interface, 12x the work per job: a candidate built from this is a
/// clean, deterministic cost regression against a ServeSrc incumbent.
const char *SlowSrc = R"(
    class Shape; class Circle isa Shape; class Square isa Shape;
    method area(s@Circle) { 3; }
    method area(s@Square) { 4; }
    method pick(n@Int) {
      if (n % 2 == 0) { new Circle; } else { new Square; }
    }
    method main(n@Int) {
      let i := 0; let acc := 0;
      while (i < n * 12) { acc := acc + area(pick(i)); i := i + 1; }
      acc;
    })";

/// Builds fine, traps on every run (depth-limit recursion): the candidate
/// a bad profile generation might produce.
const char *TrapSrc = R"(
    method deep(n@Int) { deep(n + 1); }
    method main(n@Int) { deep(n); })";

std::shared_ptr<const CompiledSnapshot> snapFromSource(const std::string &Src,
                                                       Config C) {
  std::string Err;
  std::shared_ptr<Workbench> WB = Workbench::fromSources({Src}, Err);
  if (!WB) {
    ADD_FAILURE() << "workbench: " << Err;
    return nullptr;
  }
  std::shared_ptr<const CompiledSnapshot> S =
      WB->buildSnapshot(C, Err, {}, {}, WB);
  if (!S)
    ADD_FAILURE() << "snapshot: " << Err;
  return S;
}

/// A builder that compiles \p Src fresh each generation, ignoring the
/// profile (tests pick the program to force the outcome they need).
AdaptiveController::SnapshotBuilder builderFor(std::string Src,
                                               Config C = Config::CHA) {
  return [Src = std::move(Src),
          C](const CallGraph &,
             std::string &E) -> std::shared_ptr<const CompiledSnapshot> {
    std::shared_ptr<Workbench> WB = Workbench::fromSources({Src}, E);
    if (!WB)
      return nullptr;
    return WB->buildSnapshot(C, E, {}, {}, WB);
  };
}

AdaptiveController::Options quickOptions() {
  AdaptiveController::Options O;
  O.CanaryFraction = 0.5; // every 2nd job canaries
  O.CanaryJobs = 4;
  O.MinIncumbentJobs = 1;
  O.RespecializeIntervalMs = 0; // builds only on request
  return O;
}

/// Serves \p N jobs through the controller exactly the way micad does:
/// admit -> run on the ticket's snapshot -> report.  Returns how many ran
/// Ok.
size_t serveJobs(AdaptiveController &C, size_t N, int64_t Input) {
  size_t Ok = 0;
  for (size_t I = 0; I != N; ++I) {
    AdaptiveController::Ticket T = C.admit();
    CompiledSnapshot::JobOptions JO;
    JO.CollectArcs = T.SampleArcs;
    CompiledSnapshot::JobResult R = T.Snap->run(Input, JO);
    C.report(T, R.Ok, R.Ok ? R.R.Run.Cycles : 0,
             T.SampleArcs ? &R.Arcs : nullptr);
    Ok += R.Ok;
  }
  return Ok;
}

} // namespace

//===----------------------------------------------------------------------===//
// Live arc collection through the snapshot layer.
//===----------------------------------------------------------------------===//

TEST(AdaptiveArcs, CollectionIsExactAndInvisibleOnBothTiers) {
  for (ExecTier T : {ExecTier::Bytecode, ExecTier::Ast}) {
    SCOPED_TRACE(T == ExecTier::Bytecode ? "bytecode" : "ast");
    std::string Err;
    std::shared_ptr<Workbench> WB = Workbench::fromSources({ServeSrc}, Err);
    ASSERT_TRUE(WB) << Err;
    WB->setTier(T);
    std::shared_ptr<const CompiledSnapshot> Snap =
        WB->buildSnapshot(Config::CHA, Err, {}, {}, WB);
    ASSERT_TRUE(Snap) << Err;

    CompiledSnapshot::JobResult Plain = Snap->run(40);
    ASSERT_TRUE(Plain.Ok) << Plain.Error;
    EXPECT_TRUE(Plain.Arcs.empty()) << "unsampled jobs must not record arcs";

    CompiledSnapshot::JobOptions JO;
    JO.CollectArcs = true;
    CompiledSnapshot::JobResult Sampled = Snap->run(40, JO);
    ASSERT_TRUE(Sampled.Ok) << Sampled.Error;
    EXPECT_GT(Sampled.Arcs.numArcs(), 0u);
    EXPECT_GT(Sampled.Arcs.totalWeight(), 0u);

    // Profiling must be observationally free: identical stats and output.
    EXPECT_TRUE(statsEqual(Plain.R.Run, Sampled.R.Run))
        << "arc collection changed the run's RunStats";
    EXPECT_EQ(Plain.R.Output, Sampled.R.Output);
  }
}

//===----------------------------------------------------------------------===//
// Canary verdicts: promotion and both rollback triggers.
//===----------------------------------------------------------------------===//

TEST(AdaptiveVerdict, HealthyCandidatePromotes) {
  std::shared_ptr<const CompiledSnapshot> Inc =
      snapFromSource(ServeSrc, Config::CHA);
  ASSERT_TRUE(Inc);
  AdaptiveController C(Inc, builderFor(ServeSrc), quickOptions());

  serveJobs(C, 8, 40); // incumbent baseline
  std::string Err;
  ASSERT_TRUE(C.respecializeNow(Err)) << Err;
  EXPECT_EQ(C.phase(), AdaptiveController::Phase::Canary);

  serveJobs(C, 20, 40); // canary stride 2, sample 4 -> verdict inside
  EXPECT_EQ(C.promotions(), 1u);
  EXPECT_EQ(C.rollbacks(), 0u);
  EXPECT_EQ(C.phase(), AdaptiveController::Phase::Stable);
  EXPECT_NE(C.incumbent().get(), Inc.get())
      << "promotion must install the candidate";
  ASSERT_EQ(C.swapLatenciesNs().size(), 1u);

  // The promoted snapshot serves correctly.
  EXPECT_EQ(serveJobs(C, 4, 40), 4u);
}

TEST(AdaptiveVerdict, TrappingCandidateRollsBackAndIncumbentIsUntouched) {
  std::shared_ptr<const CompiledSnapshot> Inc =
      snapFromSource(ServeSrc, Config::CHA);
  ASSERT_TRUE(Inc);
  CompiledSnapshot::JobResult Before = Inc->run(40);
  ASSERT_TRUE(Before.Ok) << Before.Error;

  AdaptiveController C(Inc, builderFor(TrapSrc), quickOptions());
  serveJobs(C, 8, 40);
  std::string Err;
  ASSERT_TRUE(C.respecializeNow(Err)) << Err; // builds fine, traps at run
  EXPECT_EQ(C.generationsBuilt(), 1u);

  serveJobs(C, 20, 40);
  EXPECT_EQ(C.rollbacks(), 1u) << "trap regression must demote the candidate";
  EXPECT_EQ(C.promotions(), 0u);
  EXPECT_GT(metrics::named("adaptive.canary_traps").value(), 0u);
  EXPECT_EQ(C.incumbent().get(), Inc.get())
      << "rollback must pin the very same incumbent snapshot";

  // The incumbent's behaviour is bit-identical across the whole episode.
  CompiledSnapshot::JobResult After = C.incumbent()->run(40);
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_TRUE(statsEqual(Before.R.Run, After.R.Run));
  EXPECT_EQ(Before.R.Output, After.R.Output);
}

TEST(AdaptiveVerdict, CostRegressionRollsBack) {
  std::shared_ptr<const CompiledSnapshot> Inc =
      snapFromSource(ServeSrc, Config::CHA);
  ASSERT_TRUE(Inc);
  AdaptiveController::Options O = quickOptions();
  O.CostRegressionFactor = 1.15;
  O.MinIncumbentJobs = 2;
  AdaptiveController C(Inc, builderFor(SlowSrc), O);

  serveJobs(C, 8, 40);
  std::string Err;
  ASSERT_TRUE(C.respecializeNow(Err)) << Err;
  serveJobs(C, 20, 40); // candidate runs fine — just 12x the cycles
  EXPECT_EQ(C.rollbacks(), 1u) << "cost regression must demote the candidate";
  EXPECT_EQ(C.promotions(), 0u);
  EXPECT_EQ(C.incumbent().get(), Inc.get());
}

//===----------------------------------------------------------------------===//
// Bad-profile pinning.
//===----------------------------------------------------------------------===//

TEST(AdaptiveVerdict, RolledBackProfileIsNotRetriedVerbatim) {
  std::shared_ptr<const CompiledSnapshot> Inc =
      snapFromSource(ServeSrc, Config::CHA);
  ASSERT_TRUE(Inc);
  // SampleEvery=0: serving never merges arcs, so the live profile changes
  // only through seedProfile() and the "retried verbatim" hash comparison
  // is exact — this is the quiet-server-SIGHUP'd-twice scenario.
  AdaptiveController::Options O = quickOptions();
  O.SampleEvery = 0;
  AdaptiveController C(Inc, builderFor(TrapSrc), O);

  CallGraph Seed;
  Seed.addHits(CallSiteId(1), MethodId(2), MethodId(3), 10);
  C.seedProfile(Seed);

  serveJobs(C, 8, 40);
  std::string Err;
  ASSERT_TRUE(C.respecializeNow(Err)) << Err;
  serveJobs(C, 20, 40);
  ASSERT_EQ(C.rollbacks(), 1u);

  // Same merged profile -> pinned, even when forced (SIGHUP).
  EXPECT_FALSE(C.respecializeNow(Err, /*Force=*/true));
  EXPECT_NE(Err.find("previously rolled back"), std::string::npos) << Err;
  EXPECT_EQ(C.generationsBuilt(), 1u);

  // Genuinely new arcs change the generation's hash and unpin it.
  Seed.addHits(CallSiteId(4), MethodId(5), MethodId(6), 3);
  C.seedProfile(Seed);
  EXPECT_GT(C.liveProfileArcs(), 1u);
  EXPECT_TRUE(C.respecializeNow(Err)) << Err;
  EXPECT_EQ(C.generationsBuilt(), 2u);
}

//===----------------------------------------------------------------------===//
// The background respecializer (SIGHUP path).
//===----------------------------------------------------------------------===//

TEST(AdaptiveBackground, RequestRespecializeBuildsOffThread) {
  std::shared_ptr<const CompiledSnapshot> Inc =
      snapFromSource(ServeSrc, Config::CHA);
  ASSERT_TRUE(Inc);
  AdaptiveController C(Inc, builderFor(ServeSrc), quickOptions());
  serveJobs(C, 4, 40);

  uint64_t Decisions = C.decisions();
  C.requestRespecialize(); // what micad does on SIGHUP
  // The build happens on the controller's own thread; wait for the
  // candidate to appear without this thread ever building anything.
  for (int I = 0; I != 200 && C.phase() != AdaptiveController::Phase::Canary;
       ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(C.phase(), AdaptiveController::Phase::Canary);
  EXPECT_EQ(C.generationsBuilt(), 1u);

  serveJobs(C, 20, 40);
  EXPECT_TRUE(C.waitForDecision(Decisions, 2000));
  EXPECT_EQ(C.promotions(), 1u);
}

TEST(AdaptiveBackground, ArcThresholdTriggersABuild) {
  std::shared_ptr<const CompiledSnapshot> Inc =
      snapFromSource(ServeSrc, Config::CHA);
  ASSERT_TRUE(Inc);
  AdaptiveController::Options O = quickOptions();
  O.ArcWeightThreshold = 1; // the first sampled job's arcs trip it
  AdaptiveController C(Inc, builderFor(ServeSrc), O);

  serveJobs(C, 2, 40);
  for (int I = 0; I != 200 && C.generationsBuilt() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(C.generationsBuilt(), 1u)
      << "merged arc weight past the threshold must request a build";
}

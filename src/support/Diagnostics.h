//===- support/Diagnostics.h - Error collection ----------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Library code never throws; fallible phases (lexing, parsing, resolution,
/// runtime) append to a Diagnostics sink and return failure.  Tools decide
/// how to render or whether to exit.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_DIAGNOSTICS_H
#define SELSPEC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace selspec {

/// One reported problem.
struct Diagnostic {
  enum class Severity { Error, Warning };

  Severity Sev = Severity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics emitted by a compilation phase.
class Diagnostics {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Severity::Error, Loc, std::move(Message)});
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Severity::Warning, Loc, std::move(Message)});
  }

  bool hasErrors() const;
  const std::vector<Diagnostic> &all() const { return Diags; }
  void clear() { Diags.clear(); }

  /// Renders every diagnostic as "line:col: severity: message\n".
  std::string toString() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_DIAGNOSTICS_H

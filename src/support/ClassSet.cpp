//===- support/ClassSet.cpp - Dense bit-set over class ids ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/ClassSet.h"

#include <bit>
#include <sstream>

using namespace selspec;

ClassSet ClassSet::all(unsigned UniverseSize) {
  ClassSet S(UniverseSize);
  for (auto &W : S.Words)
    W = ~uint64_t(0);
  // Clear the bits above the universe in the last word so that equality and
  // isAll comparisons stay canonical.
  unsigned Tail = UniverseSize % 64;
  if (Tail != 0 && !S.Words.empty())
    S.Words.back() &= (uint64_t(1) << Tail) - 1;
  return S;
}

ClassSet ClassSet::single(unsigned UniverseSize, ClassId C) {
  ClassSet S(UniverseSize);
  S.insert(C);
  return S;
}

bool ClassSet::isEmpty() const {
  for (uint64_t W : Words)
    if (W != 0)
      return false;
  return true;
}

unsigned ClassSet::count() const {
  unsigned N = 0;
  for (uint64_t W : Words)
    N += std::popcount(W);
  return N;
}

bool ClassSet::isAll() const { return count() == Universe; }

ClassSet &ClassSet::operator&=(const ClassSet &RHS) {
  assert(Universe == RHS.Universe && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= RHS.Words[I];
  return *this;
}

ClassSet &ClassSet::operator|=(const ClassSet &RHS) {
  assert(Universe == RHS.Universe && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] |= RHS.Words[I];
  return *this;
}

ClassSet &ClassSet::subtract(const ClassSet &RHS) {
  assert(Universe == RHS.Universe && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= ~RHS.Words[I];
  return *this;
}

bool ClassSet::isSubsetOf(const ClassSet &RHS) const {
  assert(Universe == RHS.Universe && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    if ((Words[I] & ~RHS.Words[I]) != 0)
      return false;
  return true;
}

bool ClassSet::intersects(const ClassSet &RHS) const {
  assert(Universe == RHS.Universe && "universe mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    if ((Words[I] & RHS.Words[I]) != 0)
      return true;
  return false;
}

std::vector<ClassId> ClassSet::members() const {
  std::vector<ClassId> Out;
  Out.reserve(count());
  for (unsigned I = 0; I != Universe; ++I) {
    ClassId C(I);
    if (contains(C))
      Out.push_back(C);
  }
  return Out;
}

ClassId ClassSet::getSingleElement() const {
  if (count() != 1)
    return ClassId();
  for (unsigned I = 0; I != Universe; ++I)
    if (contains(ClassId(I)))
      return ClassId(I);
  return ClassId();
}

size_t ClassSet::hashValue() const {
  size_t H = Universe;
  for (uint64_t W : Words)
    H = H * 1000003u + std::hash<uint64_t>()(W);
  return H;
}

std::string ClassSet::toString() const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (ClassId C : members()) {
    if (!First)
      OS << ',';
    First = false;
    OS << C.value();
  }
  OS << '}';
  return OS.str();
}

//===- support/ClassSet.cpp - Hybrid set over class ids -------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/ClassSet.h"

#include <algorithm>
#include <bit>
#include <sstream>

using namespace selspec;

namespace {

using Range = ClassSet::Range;

/// Merge two canonical run lists into their union (canonical).
std::vector<Range> runUnion(const std::vector<Range> &A,
                            const std::vector<Range> &B) {
  std::vector<Range> Out;
  Out.reserve(A.size() + B.size());
  size_t I = 0, J = 0;
  auto Push = [&Out](Range R) {
    if (!Out.empty() && Out.back().Hi >= R.Lo) {
      if (R.Hi > Out.back().Hi)
        Out.back().Hi = R.Hi;
    } else {
      Out.push_back(R);
    }
  };
  while (I != A.size() || J != B.size()) {
    if (J == B.size() || (I != A.size() && A[I].Lo <= B[J].Lo))
      Push(A[I++]);
    else
      Push(B[J++]);
  }
  return Out;
}

std::vector<Range> runIntersect(const std::vector<Range> &A,
                                const std::vector<Range> &B) {
  std::vector<Range> Out;
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    uint32_t Lo = std::max(A[I].Lo, B[J].Lo);
    uint32_t Hi = std::min(A[I].Hi, B[J].Hi);
    if (Lo < Hi)
      Out.push_back({Lo, Hi});
    if (A[I].Hi < B[J].Hi)
      ++I;
    else
      ++J;
  }
  return Out;
}

std::vector<Range> runSubtract(const std::vector<Range> &A,
                               const std::vector<Range> &B) {
  std::vector<Range> Out;
  size_t J = 0;
  for (const Range &RA : A) {
    uint32_t Lo = RA.Lo;
    while (J != B.size() && B[J].Hi <= Lo)
      ++J;
    size_t K = J;
    while (Lo < RA.Hi && K != B.size() && B[K].Lo < RA.Hi) {
      if (B[K].Lo > Lo)
        Out.push_back({Lo, B[K].Lo});
      if (B[K].Hi > Lo)
        Lo = B[K].Hi;
      ++K;
    }
    if (Lo < RA.Hi)
      Out.push_back({Lo, RA.Hi});
  }
  return Out;
}

} // namespace

ClassSet ClassSet::all(unsigned UniverseSize) {
  ClassSet S(UniverseSize);
  if (UniverseSize != 0) {
    S.R = Rep::Interval;
    S.Ranges.push_back({0, UniverseSize});
  }
  return S;
}

ClassSet ClassSet::single(unsigned UniverseSize, ClassId C) {
  ClassSet S(UniverseSize);
  S.insert(C);
  return S;
}

ClassSet ClassSet::fromRuns(unsigned UniverseSize, std::vector<Range> Runs) {
  ClassSet S(UniverseSize);
  S.adoptRuns(std::move(Runs));
  return S;
}

bool ClassSet::contains(ClassId C) const {
  assert(C.isValid() && C.value() < Universe && "class out of universe");
  uint32_t V = C.value();
  switch (R) {
  case Rep::Dense:
    return (Words[V / 64] >> (V % 64)) & 1;
  case Rep::Sparse:
    return std::binary_search(Elems.begin(), Elems.end(), V);
  case Rep::Interval: {
    auto It = std::upper_bound(
        Ranges.begin(), Ranges.end(), V,
        [](uint32_t Val, const Range &Rg) { return Val < Rg.Lo; });
    return It != Ranges.begin() && V < (It - 1)->Hi;
  }
  }
  return false;
}

void ClassSet::insert(ClassId C) {
  assert(C.isValid() && C.value() < Universe && "class out of universe");
  uint32_t V = C.value();
  switch (R) {
  case Rep::Dense:
    Words[V / 64] |= uint64_t(1) << (V % 64);
    return;
  case Rep::Sparse: {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), V);
    if (It != Elems.end() && *It == V)
      return;
    Elems.insert(It, V);
    if (Elems.size() > sparseLimit(Universe))
      becomeDense();
    return;
  }
  case Rep::Interval: {
    // First range whose Hi >= V: the only candidate that can contain V or
    // be left-adjacent (every earlier range ends strictly before V).
    auto It = std::lower_bound(
        Ranges.begin(), Ranges.end(), V,
        [](const Range &Rg, uint32_t Val) { return Rg.Hi < Val; });
    if (It != Ranges.end() && It->Lo <= V && V < It->Hi)
      return;
    if (It != Ranges.end() && It->Hi == V) {
      It->Hi = V + 1;
      auto Next = It + 1;
      if (Next != Ranges.end() && Next->Lo == It->Hi) {
        It->Hi = Next->Hi;
        Ranges.erase(Next);
      }
      return;
    }
    if (It != Ranges.end() && It->Lo == V + 1) {
      It->Lo = V;
      return;
    }
    Ranges.insert(It, {V, V + 1});
    if (Ranges.size() > IntervalMaxRanges)
      adoptRuns(std::move(Ranges));
    return;
  }
  }
}

void ClassSet::remove(ClassId C) {
  assert(C.isValid() && C.value() < Universe && "class out of universe");
  uint32_t V = C.value();
  switch (R) {
  case Rep::Dense:
    Words[V / 64] &= ~(uint64_t(1) << (V % 64));
    return;
  case Rep::Sparse: {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), V);
    if (It != Elems.end() && *It == V)
      Elems.erase(It);
    return;
  }
  case Rep::Interval: {
    auto It = std::lower_bound(
        Ranges.begin(), Ranges.end(), V,
        [](const Range &Rg, uint32_t Val) { return Rg.Hi <= Val; });
    if (It == Ranges.end() || V < It->Lo)
      return;
    if (It->Lo == V) {
      if (++It->Lo == It->Hi)
        Ranges.erase(It);
      return;
    }
    if (It->Hi == V + 1) {
      --It->Hi;
      return;
    }
    Range Right{V + 1, It->Hi};
    It->Hi = V;
    Ranges.insert(It + 1, Right);
    if (Ranges.size() > IntervalMaxRanges)
      adoptRuns(std::move(Ranges));
    return;
  }
  }
}

bool ClassSet::isEmpty() const {
  switch (R) {
  case Rep::Dense:
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  case Rep::Sparse:
    return Elems.empty();
  case Rep::Interval:
    return Ranges.empty();
  }
  return true;
}

unsigned ClassSet::count() const {
  switch (R) {
  case Rep::Dense: {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += std::popcount(W);
    return N;
  }
  case Rep::Sparse:
    return static_cast<unsigned>(Elems.size());
  case Rep::Interval: {
    unsigned N = 0;
    for (const Range &Rg : Ranges)
      N += Rg.Hi - Rg.Lo;
    return N;
  }
  }
  return 0;
}

bool ClassSet::isAll() const { return count() == Universe; }

ClassSet &ClassSet::operator&=(const ClassSet &RHS) {
  assert(Universe == RHS.Universe && "universe mismatch");
  if (R == Rep::Dense && RHS.R == Rep::Dense) {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }
  adoptRuns(runIntersect(runs(), RHS.runs()));
  return *this;
}

ClassSet &ClassSet::operator|=(const ClassSet &RHS) {
  assert(Universe == RHS.Universe && "universe mismatch");
  if (R == Rep::Dense && RHS.R == Rep::Dense) {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }
  if (R == Rep::Dense && RHS.R == Rep::Sparse) {
    for (uint32_t V : RHS.Elems)
      Words[V / 64] |= uint64_t(1) << (V % 64);
    return *this;
  }
  adoptRuns(runUnion(runs(), RHS.runs()));
  return *this;
}

ClassSet &ClassSet::subtract(const ClassSet &RHS) {
  assert(Universe == RHS.Universe && "universe mismatch");
  if (R == Rep::Dense && RHS.R == Rep::Dense) {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }
  if (R == Rep::Dense && RHS.R == Rep::Sparse) {
    for (uint32_t V : RHS.Elems)
      Words[V / 64] &= ~(uint64_t(1) << (V % 64));
    return *this;
  }
  adoptRuns(runSubtract(runs(), RHS.runs()));
  return *this;
}

bool ClassSet::operator==(const ClassSet &RHS) const {
  if (Universe != RHS.Universe)
    return false;
  if (R == RHS.R) {
    switch (R) {
    case Rep::Dense:
      return Words == RHS.Words;
    case Rep::Sparse:
      return Elems == RHS.Elems;
    case Rep::Interval:
      return Ranges == RHS.Ranges;
    }
  }
  return runs() == RHS.runs();
}

bool ClassSet::isSubsetOf(const ClassSet &RHS) const {
  assert(Universe == RHS.Universe && "universe mismatch");
  if (R == Rep::Dense && RHS.R == Rep::Dense) {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if ((Words[I] & ~RHS.Words[I]) != 0)
        return false;
    return true;
  }
  if (R == Rep::Sparse) {
    for (uint32_t V : Elems)
      if (!RHS.contains(ClassId(V)))
        return false;
    return true;
  }
  // Each of our runs must fit inside a single run of RHS (RHS runs are
  // maximal, so a covered run cannot straddle two of them).
  std::vector<Range> AR = runs(), BR = RHS.runs();
  size_t J = 0;
  for (const Range &RA : AR) {
    while (J != BR.size() && BR[J].Hi <= RA.Lo)
      ++J;
    if (J == BR.size() || BR[J].Lo > RA.Lo || BR[J].Hi < RA.Hi)
      return false;
  }
  return true;
}

bool ClassSet::intersects(const ClassSet &RHS) const {
  assert(Universe == RHS.Universe && "universe mismatch");
  if (R == Rep::Dense && RHS.R == Rep::Dense) {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if ((Words[I] & RHS.Words[I]) != 0)
        return true;
    return false;
  }
  if (R == Rep::Sparse) {
    for (uint32_t V : Elems)
      if (RHS.contains(ClassId(V)))
        return true;
    return false;
  }
  if (RHS.R == Rep::Sparse)
    return RHS.intersects(*this);
  std::vector<Range> AR = runs(), BR = RHS.runs();
  size_t I = 0, J = 0;
  while (I != AR.size() && J != BR.size()) {
    if (AR[I].Hi <= BR[J].Lo)
      ++I;
    else if (BR[J].Hi <= AR[I].Lo)
      ++J;
    else
      return true;
  }
  return false;
}

std::vector<ClassId> ClassSet::members() const {
  std::vector<ClassId> Out;
  Out.reserve(count());
  switch (R) {
  case Rep::Dense:
    for (size_t WI = 0, E = Words.size(); WI != E; ++WI) {
      uint64_t W = Words[WI];
      while (W != 0) {
        Out.push_back(ClassId(static_cast<uint32_t>(WI * 64) +
                              static_cast<uint32_t>(std::countr_zero(W))));
        W &= W - 1;
      }
    }
    break;
  case Rep::Sparse:
    for (uint32_t V : Elems)
      Out.push_back(ClassId(V));
    break;
  case Rep::Interval:
    for (const Range &Rg : Ranges)
      for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
        Out.push_back(ClassId(V));
    break;
  }
  return Out;
}

ClassId ClassSet::getSingleElement() const {
  if (count() != 1)
    return ClassId();
  switch (R) {
  case Rep::Dense:
    for (size_t WI = 0, E = Words.size(); WI != E; ++WI)
      if (Words[WI] != 0)
        return ClassId(static_cast<uint32_t>(WI * 64) +
                       static_cast<uint32_t>(std::countr_zero(Words[WI])));
    break;
  case Rep::Sparse:
    return ClassId(Elems.front());
  case Rep::Interval:
    return ClassId(Ranges.front().Lo);
  }
  return ClassId();
}

size_t ClassSet::hashValue() const {
  size_t H = Universe;
  for (const Range &Rg : runs()) {
    H = H * 1000003u + Rg.Lo;
    H = H * 1000003u + Rg.Hi;
  }
  return H;
}

std::vector<ClassSet::Range> ClassSet::runs() const {
  std::vector<Range> Out;
  switch (R) {
  case Rep::Dense:
    for (size_t WI = 0, E = Words.size(); WI != E; ++WI) {
      uint64_t W = Words[WI];
      while (W != 0) {
        uint32_t B = static_cast<uint32_t>(WI * 64) +
                     static_cast<uint32_t>(std::countr_zero(W));
        W &= W - 1;
        if (!Out.empty() && Out.back().Hi == B)
          Out.back().Hi = B + 1;
        else
          Out.push_back({B, B + 1});
      }
    }
    break;
  case Rep::Sparse:
    for (uint32_t V : Elems) {
      if (!Out.empty() && Out.back().Hi == V)
        Out.back().Hi = V + 1;
      else
        Out.push_back({V, V + 1});
    }
    break;
  case Rep::Interval:
    Out = Ranges;
    break;
  }
  return Out;
}

size_t ClassSet::memoryBytes() const {
  switch (R) {
  case Rep::Dense:
    return Words.size() * sizeof(uint64_t);
  case Rep::Sparse:
    return Elems.size() * sizeof(uint32_t);
  case Rep::Interval:
    return Ranges.size() * sizeof(Range);
  }
  return 0;
}

void ClassSet::becomeDense() {
  std::vector<Range> Runs = runs();
  Words.assign((Universe + 63) / 64, 0);
  for (const Range &Rg : Runs)
    for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
      Words[V / 64] |= uint64_t(1) << (V % 64);
  Elems.clear();
  Elems.shrink_to_fit();
  Ranges.clear();
  Ranges.shrink_to_fit();
  R = Rep::Dense;
}

void ClassSet::adoptRuns(std::vector<Range> Runs) {
  size_t NumMembers = 0;
  for (const Range &Rg : Runs)
    NumMembers += Rg.Hi - Rg.Lo;
  Words.clear();
  Elems.clear();
  Ranges.clear();
  if (Runs.empty()) {
    R = Rep::Sparse;
    return;
  }
  if (Runs.size() <= IntervalMaxRanges) {
    R = Rep::Interval;
    Ranges = std::move(Runs);
    return;
  }
  if (NumMembers <= sparseLimit(Universe)) {
    R = Rep::Sparse;
    Elems.reserve(NumMembers);
    for (const Range &Rg : Runs)
      for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
        Elems.push_back(V);
    return;
  }
  R = Rep::Dense;
  Words.assign((Universe + 63) / 64, 0);
  for (const Range &Rg : Runs)
    for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
      Words[V / 64] |= uint64_t(1) << (V % 64);
}

void ClassSet::convertToRepForTesting(Rep Target) {
  if (Target == R)
    return;
  std::vector<Range> Runs = runs();
  Words.clear();
  Elems.clear();
  Ranges.clear();
  R = Target;
  switch (Target) {
  case Rep::Dense:
    Words.assign((Universe + 63) / 64, 0);
    for (const Range &Rg : Runs)
      for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
        Words[V / 64] |= uint64_t(1) << (V % 64);
    break;
  case Rep::Sparse:
    for (const Range &Rg : Runs)
      for (uint32_t V = Rg.Lo; V != Rg.Hi; ++V)
        Elems.push_back(V);
    break;
  case Rep::Interval:
    Ranges = std::move(Runs);
    break;
  }
}

std::string ClassSet::toString() const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (ClassId C : members()) {
    if (!First)
      OS << ',';
    First = false;
    OS << C.value();
  }
  OS << '}';
  return OS.str();
}

//===- support/Metrics.h - Process-wide counter registry -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry for every counter the system maintains, so observability
/// is a single export instead of per-subsystem ad-hoc structs.  The
/// per-run structs (`RunStats`, `Dispatcher::Stats`) remain the hot-path
/// accumulators — plain non-atomic increments, exactly as before — and
/// publish their totals into the registry when the owning object is
/// destroyed, so measured runs pay nothing new per node or per lookup.
/// Cold paths (profile-db I/O, deadline expiry, failpoints, micad
/// supervision) increment registry counters directly.
///
/// Counters register themselves statically, like the FailPoint catalog:
/// a `Counter` is a static-duration object whose constructor links it
/// into a process-wide intrusive list (constant-initialized head, so
/// registration is safe during static initialization in any TU order).
/// Increments are relaxed atomics — safe from micad's forked workers'
/// parent and from any future threading, free of contention today.
///
/// Naming scheme: `<subsystem>.<counter>` in snake_case, e.g.
/// `dispatcher.memo_collisions`, `profiledb.load_recoveries`.  Counters
/// shared by several TUs (e.g. `deadline.expired`, tripped by both the
/// pipeline's phase gate and the interpreter's poll) use `named()`,
/// which returns the existing counter of that name or creates one.
///
/// Export: `toJson()` / `toJsonCompact()` render the whole registry as a
/// flat JSON object with keys sorted (duplicate names are summed), which
/// feeds `micac --metrics-json`, micad's per-job `metrics` field, and
/// the `counters` section of `BENCH_*.json`.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_METRICS_H
#define SELSPEC_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace selspec {
namespace metrics {

class Counter {
public:
  /// \p Name must outlive the process (string literals only); the
  /// constructor registers the counter globally.
  explicit Counter(const char *Name);

  void add(uint64_t Delta = 1) {
    V.fetch_add(Delta, std::memory_order_relaxed);
  }
  /// Gauge-style overwrite (high-water marks republished at run end).
  void set(uint64_t Value) { V.store(Value, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  const char *name() const { return Name; }

private:
  friend void resetAll();
  friend std::vector<const Counter *> all();
  friend Counter &named(const char *Name);

  const char *Name;
  std::atomic<uint64_t> V{0};
  Counter *Next = nullptr;
};

/// The existing counter named \p Name, or a newly registered one.  Walks
/// the registry — cold paths only; hot paths hold a `static Counter&`.
Counter &named(const char *Name);

/// Every registered counter, registration order (unspecified across TUs).
std::vector<const Counter *> all();

/// (name, value) snapshot sorted by name, duplicate names summed — the
/// canonical export order.
std::vector<std::pair<std::string, uint64_t>> snapshot();

/// Zeroes every counter (test isolation; micad workers reset after fork
/// so a job's exported metrics are its own).
void resetAll();

/// The registry as a flat JSON object.  \p BaseIndent prefixes every
/// line for embedding into an enclosing pretty-printed document; the
/// opening brace is not indented (write it after "key": yourself).
std::string toJson(const std::string &BaseIndent = "");

/// Single-line form for micad result lines.
std::string toJsonCompact();

/// Writes toJson() (plus trailing newline) to \p Path; false + message
/// in \p ErrorOut on I/O failure.
bool writeJsonFile(const std::string &Path, std::string &ErrorOut);

} // namespace metrics
} // namespace selspec

#endif // SELSPEC_SUPPORT_METRICS_H

//===- support/MemoryBudget.h - Modeled-byte memory accounting -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level memory accounting for the serving layer.  The object-count
/// guard (ResourceLimits::MaxObjects) misses the allocations that actually
/// hurt a shared-pool server: a handful of huge arrays or strings.  This
/// module defines the *modeled byte* cost of every heap object — a fixed,
/// platform-independent function of the payload, so both execution tiers
/// charge identical byte totals and RunStats/trap behavior stays
/// bit-identical across tiers — and a process-wide live-byte tally with a
/// high-watermark that feeds the overload governor (driver/Overload.h).
///
/// Charging happens inside Heap (runtime/Heap.h): every allocation adds
/// its modeled bytes to the owning Heap's local tally, which is flushed
/// to the process-wide counter in FlushChunk batches so the per-
/// allocation hot path stays free of atomics.  The per-job budget
/// (ResourceLimits::MaxBytes) is enforced by the interpreters *before*
/// each allocation against the local tally plus the incoming object's
/// modeled size, trapping TrapKind::MemoryBudgetExceeded (exit 24).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_MEMORYBUDGET_H
#define SELSPEC_SUPPORT_MEMORYBUDGET_H

#include <cstddef>
#include <cstdint>

namespace selspec {
namespace membudget {

/// Modeled cost constants.  Deliberately fixed numbers, not sizeof():
/// the budget must charge the same bytes in every build mode and on every
/// platform, or the byte at which a run traps would not be reproducible.
/// 64 covers the Obj header + allocator overhead; 16 is one tagged Value
/// slot; 48 is one shared capture cell (control block + boxed value).
constexpr uint64_t ObjBaseBytes = 64;
constexpr uint64_t SlotBytes = 16;
constexpr uint64_t CellBytes = 48;

/// Modeled bytes of a class instance with \p NumSlots slots.
inline uint64_t instanceBytes(uint64_t NumSlots) {
  return ObjBaseBytes + SlotBytes * NumSlots;
}
/// Modeled bytes of a string of \p Len characters.
inline uint64_t stringBytes(uint64_t Len) { return ObjBaseBytes + Len; }
/// Modeled bytes of an array of \p N elements.
inline uint64_t arrayBytes(uint64_t N) {
  return ObjBaseBytes + SlotBytes * N;
}
/// Modeled bytes of a closure capturing \p NumCaptured cells.
inline uint64_t closureBytes(uint64_t NumCaptured) {
  return ObjBaseBytes + CellBytes * NumCaptured;
}

/// Heaps flush their local tally to the process-wide counter every this
/// many new modeled bytes (and release everything on destruction), so
/// the global view lags a live heap by at most FlushChunk per thread.
constexpr uint64_t FlushChunk = uint64_t(1) << 20;

/// Adjusts the process-wide modeled live-byte tally (called by Heap
/// flushes; positive on allocation batches, negative on heap teardown)
/// and maintains the high-watermark.  Also publishes the
/// `serve.mem_live_bytes` / `serve.mem_watermark` gauges.
void addLive(int64_t Delta);

/// Process-wide modeled live bytes across every active Heap (lags
/// per-heap tallies by at most FlushChunk each).
uint64_t liveBytes();

/// Highest value liveBytes() has reached since start / resetWatermark().
uint64_t highWatermark();

/// Resets the watermark to the current live tally (test isolation).
void resetWatermark();

/// The per-job byte budget from the SELSPEC_MAX_BYTES environment
/// variable, or \p Fallback when unset/empty/unparsable.
uint64_t maxBytesFromEnv(uint64_t Fallback);

} // namespace membudget
} // namespace selspec

#endif // SELSPEC_SUPPORT_MEMORYBUDGET_H

//===- support/PhaseTimer.cpp - Pipeline phase timing ----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/PhaseTimer.h"

#include <iomanip>
#include <ostream>

using namespace selspec;

PhaseTimer &PhaseTimer::global() {
  static PhaseTimer T;
  return T;
}

void PhaseTimer::record(const char *Phase, uint64_t Nanos) {
  for (Entry &E : Entries)
    if (E.Phase == Phase) {
      E.Nanos += Nanos;
      ++E.Count;
      return;
    }
  Entries.push_back({Phase, Nanos, 1});
}

void PhaseTimer::print(std::ostream &OS) const {
  OS << "-- phase times\n";
  if (Entries.empty()) {
    OS << "   (no phases recorded)\n";
    return;
  }
  size_t Width = 0;
  for (const Entry &E : Entries)
    Width = std::max(Width, E.Phase.size());
  for (const Entry &E : Entries) {
    OS << "   " << std::left << std::setw(static_cast<int>(Width) + 2)
       << E.Phase << std::right << std::fixed << std::setprecision(3)
       << std::setw(12) << static_cast<double>(E.Nanos) / 1e6 << " ms";
    if (E.Count > 1)
      OS << "  (" << E.Count << " scopes)";
    OS << '\n';
  }
}

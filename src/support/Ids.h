//===- support/Ids.h - Strongly-typed entity identifiers -------*- C++ -*-===//
//
// Part of the selspec project: a reproduction of Dean, Chambers & Grove,
// "Selective Specialization for Object-Oriented Languages" (PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly-typed integer identifiers for classes, generic functions,
/// methods, call sites and compiled method versions.  Using distinct types
/// rather than raw unsigned prevents accidentally indexing the wrong table.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_IDS_H
#define SELSPEC_SUPPORT_IDS_H

#include <cstdint>
#include <functional>
#include <limits>

namespace selspec {

/// CRTP base for a strongly-typed index.  \p Tag makes each instantiation a
/// distinct type.
template <typename Tag> class StrongId {
public:
  using ValueType = uint32_t;

  static constexpr ValueType InvalidValue =
      std::numeric_limits<ValueType>::max();

  constexpr StrongId() : Val(InvalidValue) {}
  constexpr explicit StrongId(ValueType V) : Val(V) {}

  /// Returns the raw index value; only valid ids may be unwrapped.
  constexpr ValueType value() const { return Val; }

  constexpr bool isValid() const { return Val != InvalidValue; }

  friend constexpr bool operator==(StrongId A, StrongId B) {
    return A.Val == B.Val;
  }
  friend constexpr bool operator!=(StrongId A, StrongId B) {
    return A.Val != B.Val;
  }
  friend constexpr bool operator<(StrongId A, StrongId B) {
    return A.Val < B.Val;
  }

private:
  ValueType Val;
};

struct ClassIdTag {};
struct GenericIdTag {};
struct MethodIdTag {};
struct CallSiteIdTag {};
struct VersionIdTag {};

/// Identifies a class in a ClassHierarchy (dense, 0-based).
using ClassId = StrongId<ClassIdTag>;
/// Identifies a generic function (a dispatched message name + arity).
using GenericId = StrongId<GenericIdTag>;
/// Identifies a source method (one `method` declaration or builtin).
using MethodId = StrongId<MethodIdTag>;
/// Identifies a message-send site in the program (dense over all methods).
using CallSiteId = StrongId<CallSiteIdTag>;
/// Identifies one compiled (possibly specialized) version of a method.
using VersionId = StrongId<VersionIdTag>;

} // namespace selspec

namespace std {
template <typename Tag> struct hash<selspec::StrongId<Tag>> {
  size_t operator()(selspec::StrongId<Tag> Id) const {
    return std::hash<uint32_t>()(Id.value());
  }
};
} // namespace std

#endif // SELSPEC_SUPPORT_IDS_H

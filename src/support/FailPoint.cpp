//===- support/FailPoint.cpp - Deterministic fault injection ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "support/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace selspec;
using namespace selspec::failpoint;

namespace {

/// The catalog.  Order is stable (tests iterate it); names follow
/// "<subsystem>.<step>".
constexpr const char *Names[] = {
    "pipeline.parse",         ///< Workbench::init, after parsing
    "pipeline.resolve",       ///< Workbench::init, after resolution
    "pipeline.cha",           ///< Workbench::init, after the CHA analyses
    "pipeline.profile-run",   ///< Workbench::collectProfile entry
    "pipeline.plan",          ///< before makePlan
    "pipeline.optimize",      ///< before Optimizer::compile
    "pipeline.measured-run",  ///< before the measured interpreter run
    "interp.frame-acquire",   ///< activation-frame allocation (FramePool)
    "dispatch.table-build",   ///< DispatchTable construction
    "profiledb.load.open",    ///< ProfileDb::loadFromFile open
    "profiledb.load.header",  ///< ProfileDb header/checksum verification
    "profiledb.save.open",    ///< ProfileDb::saveToFile temp-file open
    "profiledb.save.write",   ///< mid-write (leaves a torn temp file)
    "profiledb.save.sync",    ///< after write, before fsync completes
    "profiledb.save.backup",  ///< before rotating current -> .bak
    "profiledb.save.rename",  ///< before renaming temp -> current
    "adaptive.build",         ///< background respecialization build
    "adaptive.canary",        ///< routing a canary job to the candidate
    "adaptive.promote",       ///< the incumbent<-candidate pointer swap
    "adaptive.profile-save",  ///< persisting the merged live profile
};
constexpr size_t NumNames = sizeof(Names) / sizeof(Names[0]);

std::atomic<Action> Armed[NumNames];
std::atomic<unsigned> NumArmed{0};
std::atomic<uint64_t> Hits{0};

metrics::Counter CtrHits("failpoint.hits");

int indexOf(const std::string &Name) {
  for (size_t I = 0; I != NumNames; ++I)
    if (Name == Names[I])
      return static_cast<int>(I);
  return -1;
}

} // namespace

const std::vector<const char *> &selspec::failpoint::allNames() {
  static const std::vector<const char *> All(Names, Names + NumNames);
  return All;
}

bool selspec::failpoint::anyArmed() {
  return NumArmed.load(std::memory_order_relaxed) != 0;
}

uint64_t selspec::failpoint::totalHits() {
  return Hits.load(std::memory_order_relaxed);
}

void selspec::failpoint::disarmAll() {
  for (size_t I = 0; I != NumNames; ++I)
    Armed[I].store(Action::Off, std::memory_order_relaxed);
  NumArmed.store(0, std::memory_order_relaxed);
  Hits.store(0, std::memory_order_relaxed);
}

bool selspec::failpoint::configure(const std::string &Spec,
                                   std::string &ErrorOut) {
  // Parse fully before arming anything, so a bad spec arms nothing.
  std::vector<std::pair<int, Action>> Parsed;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Pair = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Pair.empty())
      continue;
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos) {
      ErrorOut = "failpoint '" + Pair + "': expected name=action";
      return false;
    }
    std::string Name = Pair.substr(0, Eq);
    std::string ActionName = Pair.substr(Eq + 1);
    int Idx = indexOf(Name);
    if (Idx < 0) {
      // List every valid site so a chaos config's typo is immediately
      // actionable instead of a guessing game.
      ErrorOut = "unknown failpoint '" + Name + "'; valid sites:";
      for (size_t I = 0; I != NumNames; ++I)
        ErrorOut += std::string(I ? ", " : " ") + Names[I];
      return false;
    }
    Action A;
    if (ActionName == "fail")
      A = Action::Fail;
    else if (ActionName == "crash")
      A = Action::Crash;
    else {
      ErrorOut = "failpoint '" + Name + "': unknown action '" + ActionName +
                 "' (expected fail or crash)";
      return false;
    }
    Parsed.emplace_back(Idx, A);
  }
  unsigned Count = 0;
  for (auto [Idx, A] : Parsed) {
    Armed[Idx].store(A, std::memory_order_relaxed);
    ++Count;
  }
  if (Count)
    NumArmed.fetch_add(Count, std::memory_order_relaxed);
  return true;
}

bool selspec::failpoint::armFromEnv(std::string &ErrorOut) {
  const char *Env = std::getenv("SELSPEC_FAILPOINTS");
  if (!Env || !*Env)
    return true;
  return configure(Env, ErrorOut);
}

bool selspec::failpoint::triggered(const char *Name) {
  if (!anyArmed())
    return false;
  int Idx = indexOf(Name);
  if (Idx < 0)
    return false;
  Action A = Armed[Idx].load(std::memory_order_relaxed);
  if (A == Action::Off)
    return false;
  Hits.fetch_add(1, std::memory_order_relaxed);
  CtrHits.add();
  if (A == Action::Crash) {
    std::fprintf(stderr, "failpoint '%s': crashing (injected)\n", Name);
    std::fflush(stderr);
    std::abort();
  }
  return true;
}

std::string selspec::failpoint::failureMessage(const char *Name) {
  return std::string("injected failure at failpoint '") + Name + "'";
}

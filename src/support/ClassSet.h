//===- support/ClassSet.h - Dense bit-set over class ids -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ClassSet is the central value domain of the specialization framework: the
/// paper describes every specialization as "a tuple of class sets, one class
/// set per formal argument".  We represent a class set as a dense bit vector
/// indexed by ClassId, sized to the hierarchy's class count.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_CLASSSET_H
#define SELSPEC_SUPPORT_CLASSSET_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace selspec {

/// A set of classes, represented as a bit vector over dense ClassIds.
///
/// All binary operations require both operands to have the same universe
/// size (they come from the same ClassHierarchy).
class ClassSet {
public:
  ClassSet() = default;

  /// Creates an empty set over a universe of \p UniverseSize classes.
  explicit ClassSet(unsigned UniverseSize)
      : Words((UniverseSize + 63) / 64, 0), Universe(UniverseSize) {}

  /// Returns the empty set over \p UniverseSize classes.
  static ClassSet empty(unsigned UniverseSize) {
    return ClassSet(UniverseSize);
  }

  /// Returns the full set (all classes) over \p UniverseSize classes.
  static ClassSet all(unsigned UniverseSize);

  /// Returns the singleton set {C}.
  static ClassSet single(unsigned UniverseSize, ClassId C);

  unsigned universeSize() const { return Universe; }

  bool contains(ClassId C) const {
    assert(C.isValid() && C.value() < Universe && "class out of universe");
    return (Words[C.value() / 64] >> (C.value() % 64)) & 1;
  }

  void insert(ClassId C) {
    assert(C.isValid() && C.value() < Universe && "class out of universe");
    Words[C.value() / 64] |= uint64_t(1) << (C.value() % 64);
  }

  void remove(ClassId C) {
    assert(C.isValid() && C.value() < Universe && "class out of universe");
    Words[C.value() / 64] &= ~(uint64_t(1) << (C.value() % 64));
  }

  bool isEmpty() const;

  /// Number of classes in the set.
  unsigned count() const;

  /// True when the set contains every class in the universe.
  bool isAll() const;

  /// Pointwise operations (operands must share a universe).
  ClassSet &operator&=(const ClassSet &RHS);
  ClassSet &operator|=(const ClassSet &RHS);
  /// Set difference: removes all members of \p RHS.
  ClassSet &subtract(const ClassSet &RHS);

  friend ClassSet operator&(ClassSet A, const ClassSet &B) { return A &= B; }
  friend ClassSet operator|(ClassSet A, const ClassSet &B) { return A |= B; }

  bool operator==(const ClassSet &RHS) const {
    return Universe == RHS.Universe && Words == RHS.Words;
  }
  bool operator!=(const ClassSet &RHS) const { return !(*this == RHS); }

  /// True when this set is a subset of \p RHS.
  bool isSubsetOf(const ClassSet &RHS) const;

  /// True when the two sets share at least one class.
  bool intersects(const ClassSet &RHS) const;

  /// Returns the members in increasing ClassId order.
  std::vector<ClassId> members() const;

  /// If the set is a singleton, returns its sole member; otherwise an
  /// invalid ClassId.
  ClassId getSingleElement() const;

  /// Stable hash usable for unordered containers of SpecTuples.
  size_t hashValue() const;

  /// Renders as "{0,3,7}" using raw ids (names require a hierarchy; see
  /// ClassHierarchy::setToString).
  std::string toString() const;

private:
  std::vector<uint64_t> Words;
  unsigned Universe = 0;
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_CLASSSET_H

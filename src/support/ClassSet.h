//===- support/ClassSet.h - Hybrid set over class ids ----------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ClassSet is the central value domain of the specialization framework: the
/// paper describes every specialization as "a tuple of class sets, one class
/// set per formal argument".
///
/// The representation is hybrid, chosen automatically by density so that a
/// 10k-class universe does not cost O(universe/8) bytes per set:
///
///   - Sparse:   a sorted vector of member ids.  The default for small sets
///     (an empty set allocates nothing); escalates to Dense past
///     max(4, universe/32) members.
///   - Interval: a sorted vector of disjoint, non-adjacent half-open
///     [Lo, Hi) ranges.  Cones under DFS preorder numbering and the full
///     universe are one or a few ranges regardless of class count.
///   - Dense:    the classic bit vector over ClassIds, used once a set is
///     genuinely dense; word-parallel fast paths kick in when both operands
///     are Dense.
///
/// All observable behavior — members(), operator==, hashValue(), every set
/// operation — is representation-independent; the representation is a pure
/// storage decision (exposed only through the *ForTesting hooks).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_CLASSSET_H
#define SELSPEC_SUPPORT_CLASSSET_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace selspec {

/// A set of classes over a fixed universe of dense ClassIds.
///
/// All binary operations require both operands to have the same universe
/// size (they come from the same ClassHierarchy).
class ClassSet {
public:
  enum class Rep : uint8_t { Dense, Sparse, Interval };

  /// Half-open id range [Lo, Hi); the unit of the Interval representation
  /// and of the canonical "run list" every representation can produce.
  struct Range {
    uint32_t Lo;
    uint32_t Hi;
    bool operator==(const Range &O) const { return Lo == O.Lo && Hi == O.Hi; }
  };

  ClassSet() = default;

  /// Creates an empty set over a universe of \p UniverseSize classes.
  /// Starts Sparse, so it allocates nothing until elements arrive.
  explicit ClassSet(unsigned UniverseSize) : Universe(UniverseSize) {}

  /// Returns the empty set over \p UniverseSize classes.
  static ClassSet empty(unsigned UniverseSize) {
    return ClassSet(UniverseSize);
  }

  /// Returns the full set (all classes) over \p UniverseSize classes.
  /// One interval, independent of the universe size.
  static ClassSet all(unsigned UniverseSize);

  /// Returns the singleton set {C}.
  static ClassSet single(unsigned UniverseSize, ClassId C);

  /// Builds a set from a canonical run list (sorted, disjoint, non-adjacent,
  /// non-empty ranges), picking the densest-appropriate representation.
  static ClassSet fromRuns(unsigned UniverseSize, std::vector<Range> Runs);

  unsigned universeSize() const { return Universe; }

  bool contains(ClassId C) const;
  void insert(ClassId C);
  void remove(ClassId C);

  bool isEmpty() const;

  /// Number of classes in the set.
  unsigned count() const;

  /// True when the set contains every class in the universe.
  bool isAll() const;

  /// Pointwise operations (operands must share a universe).
  ClassSet &operator&=(const ClassSet &RHS);
  ClassSet &operator|=(const ClassSet &RHS);
  /// Set difference: removes all members of \p RHS.
  ClassSet &subtract(const ClassSet &RHS);

  friend ClassSet operator&(ClassSet A, const ClassSet &B) { return A &= B; }
  friend ClassSet operator|(ClassSet A, const ClassSet &B) { return A |= B; }

  /// Representation-independent equality: {0,1,2} compares equal whether it
  /// is stored as words, members, or the range [0,3).
  bool operator==(const ClassSet &RHS) const;
  bool operator!=(const ClassSet &RHS) const { return !(*this == RHS); }

  /// True when this set is a subset of \p RHS.
  bool isSubsetOf(const ClassSet &RHS) const;

  /// True when the two sets share at least one class.
  bool intersects(const ClassSet &RHS) const;

  /// Returns the members in increasing ClassId order.
  std::vector<ClassId> members() const;

  /// If the set is a singleton, returns its sole member; otherwise an
  /// invalid ClassId.
  ClassId getSingleElement() const;

  /// Stable, representation-independent hash usable for unordered
  /// containers of SpecTuples.
  size_t hashValue() const;

  /// The canonical run list: maximal [Lo, Hi) ranges in increasing order.
  /// Every representation produces the identical list for equal sets.
  std::vector<Range> runs() const;

  /// Heap bytes of the active storage (the scaling benchmarks' cone-memory
  /// metric; excludes the fixed object header).
  size_t memoryBytes() const;

  /// Current storage representation (test/benchmark introspection).
  Rep representation() const { return R; }

  /// Forces a specific representation without changing the value.  Test
  /// hook for the differential property tests; any set is expressible in
  /// any representation (Interval may need many ranges).
  void convertToRepForTesting(Rep Target);

  /// Renders as "{0,3,7}" using raw ids (names require a hierarchy; see
  /// ClassHierarchy::setToString).
  std::string toString() const;

private:
  /// Members-per-set bound below which Sparse is preferred over Dense.
  static unsigned sparseLimit(unsigned Universe) {
    return Universe / 32 < 4 ? 4 : Universe / 32;
  }
  /// Run-count bound below which Interval is preferred.
  static constexpr size_t IntervalMaxRanges = 8;

  void becomeDense();
  void adoptRuns(std::vector<Range> Runs);

  /// Active representation; exactly one of the vectors below is in use.
  Rep R = Rep::Sparse;
  /// Dense: bit vector, (Universe+63)/64 words, tail bits always clear.
  std::vector<uint64_t> Words;
  /// Sparse: sorted unique member ids.
  std::vector<uint32_t> Elems;
  /// Interval: canonical run list (sorted, disjoint, non-adjacent).
  std::vector<Range> Ranges;
  unsigned Universe = 0;
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_CLASSSET_H

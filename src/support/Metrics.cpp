//===- support/Metrics.cpp - Process-wide counter registry -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

using namespace selspec;
using namespace selspec::metrics;

namespace {

// Intrusive registry head.  Constant-initialized, so Counter constructors
// running during static initialization of other TUs see a valid (null or
// earlier) head regardless of TU order.
std::atomic<Counter *> Head{nullptr};

} // namespace

Counter::Counter(const char *Name) : Name(Name) {
  Counter *Expected = Head.load(std::memory_order_relaxed);
  do {
    Next = Expected;
  } while (!Head.compare_exchange_weak(Expected, this,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
}

Counter &selspec::metrics::named(const char *Name) {
  for (Counter *C = Head.load(std::memory_order_acquire); C; C = C->Next)
    if (std::string_view(C->name()) == Name)
      return *C;
  // Deliberately leaked: counters live for the process, like the statics.
  return *new Counter(Name);
}

std::vector<const Counter *> selspec::metrics::all() {
  std::vector<const Counter *> Out;
  for (Counter *C = Head.load(std::memory_order_acquire); C; C = C->Next)
    Out.push_back(C);
  return Out;
}

void selspec::metrics::resetAll() {
  for (Counter *C = Head.load(std::memory_order_acquire); C; C = C->Next)
    C->V.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> selspec::metrics::snapshot() {
  std::map<std::string, uint64_t> ByName;
  for (const Counter *C : all())
    ByName[C->name()] += C->value();
  return {ByName.begin(), ByName.end()};
}

std::string selspec::metrics::toJson(const std::string &BaseIndent) {
  std::ostringstream OS;
  std::vector<std::pair<std::string, uint64_t>> Snap = snapshot();
  OS << "{";
  for (size_t I = 0; I != Snap.size(); ++I)
    OS << (I ? "," : "") << '\n' << BaseIndent << "  \"" << Snap[I].first
       << "\": " << Snap[I].second;
  if (!Snap.empty())
    OS << '\n' << BaseIndent;
  OS << "}";
  return OS.str();
}

std::string selspec::metrics::toJsonCompact() {
  std::ostringstream OS;
  std::vector<std::pair<std::string, uint64_t>> Snap = snapshot();
  OS << "{";
  for (size_t I = 0; I != Snap.size(); ++I)
    OS << (I ? "," : "") << "\"" << Snap[I].first << "\":" << Snap[I].second;
  OS << "}";
  return OS.str();
}

bool selspec::metrics::writeJsonFile(const std::string &Path,
                                     std::string &ErrorOut) {
  std::ofstream OS(Path);
  if (!OS) {
    ErrorOut = "cannot write metrics file '" + Path + "'";
    return false;
  }
  OS << toJson() << '\n';
  if (!OS) {
    ErrorOut = "error writing metrics file '" + Path + "'";
    return false;
  }
  return true;
}

//===- support/TraceEmitter.h - Chrome-trace span emitter ------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records completed spans (name + start + duration on one steady clock)
/// and renders them in the Chrome trace-event JSON format, loadable in
/// `chrome://tracing` and Perfetto (ui.perfetto.dev).  Spans come from
/// `PhaseTimer::Scope` — every pipeline phase (parse, resolve, cha,
/// profile, plan, specialize, optimize, slot-resolve, run) plus the
/// profile-database load/save scopes — so one `micac --trace-out` file
/// shows where a whole invocation's wall clock went.
///
/// Off by default; while disabled a Scope pays one relaxed atomic load.
/// While enabled, each completed span takes a mutex for a vector push —
/// spans are per-phase (a handful per pipeline), never per-node, so the
/// cost is unmeasurable.  The buffer is capped (MaxSpans); overflowing
/// spans are counted in `trace.spans_dropped` rather than growing without
/// bound in a long-running server.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_TRACEEMITTER_H
#define SELSPEC_SUPPORT_TRACEEMITTER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace selspec {

class TraceEmitter {
public:
  struct Span {
    /// String literal; span sources are compiled-in phase names.
    const char *Name;
    /// Nanoseconds since the emitter's epoch (first use of global()).
    uint64_t StartNanos;
    uint64_t DurNanos;
  };

  /// The process-wide emitter every span source reports into.
  static TraceEmitter &global();

  void setEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds of \p T past the emitter's epoch (0 for earlier times).
  uint64_t sinceEpoch(std::chrono::steady_clock::time_point T) const;

  /// Records one completed span; drops (and counts) past MaxSpans.
  void record(const char *Name, uint64_t StartNanos, uint64_t DurNanos);

  size_t numSpans() const;
  uint64_t numDropped() const;
  void reset();

  /// Renders `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
  void print(std::ostream &OS) const;

  /// print() to \p Path + newline; false + message in \p ErrorOut on I/O
  /// failure.
  bool writeFile(const std::string &Path, std::string &ErrorOut) const;

  /// Spans kept before dropping; bounds a long-running server's memory.
  static constexpr size_t MaxSpans = 1 << 16;

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex M;
  std::vector<Span> Spans;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  uint64_t Dropped = 0;
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_TRACEEMITTER_H

//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal hand-rolled RTTI scheme in the LLVM style: classes opt in by
/// providing `static bool classof(const Base *)`, and clients use isa<>,
/// cast<> and dyn_cast<>.  The project is built without C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_CASTING_H
#define SELSPEC_SUPPORT_CASTING_H

#include <cassert>

namespace selspec {

template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on null pointer");
  return To::classof(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace selspec

#endif // SELSPEC_SUPPORT_CASTING_H

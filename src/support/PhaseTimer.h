//===- support/PhaseTimer.h - Pipeline phase timing ------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock accounting for the compilation/execution pipeline.  Each
/// phase (parse, resolve, cha, profile, plan, specialize, optimize,
/// slot-resolve, run) is accumulated by name under an RAII Scope; the
/// process-wide instance is off by default and enabled by the drivers'
/// `--time-report`, so measured runs pay at most two clock reads per
/// scope and nothing when disabled.
///
/// Scopes may nest (e.g. "specialize" runs inside "plan", "slot-resolve"
/// inside "optimize"); the report is a flat table, so nested phases are
/// included in their parents' totals.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_PHASETIMER_H
#define SELSPEC_SUPPORT_PHASETIMER_H

#include "support/TraceEmitter.h"

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace selspec {

class PhaseTimer {
public:
  struct Entry {
    std::string Phase;
    uint64_t Nanos = 0;
    uint64_t Count = 0;
  };

  /// The process-wide timer the pipeline reports into.
  static PhaseTimer &global();

  void setEnabled(bool E) { Enabled = E; }
  bool enabled() const { return Enabled; }

  /// Adds \p Nanos to \p Phase (first use registers the phase; report
  /// order is first-recorded order).
  void record(const char *Phase, uint64_t Nanos);

  const std::vector<Entry> &entries() const { return Entries; }
  void reset() { Entries.clear(); }

  /// Renders the phase table ("-- phase times" block).
  void print(std::ostream &OS) const;

  /// RAII measurement of one phase.  Feeds the flat phase table when the
  /// timer is enabled and a Chrome-trace span when the process-wide
  /// TraceEmitter is (either alone suffices); no-op when both are off.
  class Scope {
  public:
    Scope(PhaseTimer &T, const char *Phase)
        : T(T), Phase(Phase), Active(T.enabled()),
          Tracing(TraceEmitter::global().enabled()) {
      if (Active || Tracing)
        Start = std::chrono::steady_clock::now();
    }
    explicit Scope(const char *Phase) : Scope(global(), Phase) {}
    ~Scope() {
      if (!Active && !Tracing)
        return;
      uint64_t Nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count());
      if (Active)
        T.record(Phase, Nanos);
      if (Tracing)
        TraceEmitter::global().record(
            Phase, TraceEmitter::global().sinceEpoch(Start), Nanos);
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    PhaseTimer &T;
    const char *Phase;
    bool Active;
    bool Tracing;
    std::chrono::steady_clock::time_point Start;
  };

private:
  bool Enabled = false;
  std::vector<Entry> Entries;
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_PHASETIMER_H

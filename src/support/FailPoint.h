//===- support/FailPoint.h - Deterministic fault injection -----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic failpoints, after the LLVM/abseil fault-injection
/// pattern: a fixed compile-time catalog of named sites at every pipeline
/// phase boundary, the interpreter's frame-allocation site, dispatch-table
/// construction, and each step of profile-database I/O.  Arming a
/// failpoint makes its site report failure through the code path a real
/// fault would take, so tests and the fuzz harness can prove that any
/// single injected failure yields a Diagnostic or a structured trap —
/// never a crash, hang, or corrupt state.
///
/// Actions:
///   fail   the site reports failure exactly as the real fault would,
///          returning immediately and leaving whatever partial state
///          exists (for I/O sites this is the on-disk state a crash at
///          that instant would leave — the torn-write tests rely on it);
///   crash  the site calls abort() — only for supervision tests (micad
///          must reap and retry a crashed worker).
///
/// Arming: programmatically via configure()/disarmAll() (tests), or from
/// the environment via SELSPEC_FAILPOINTS="name=fail,other=crash"
/// (tools).  Disarmed operation costs one relaxed atomic load behind
/// anyArmed(), so hot paths stay effectively free.
///
/// The catalog is intentionally centralized (allNames()) so a test can
/// iterate every registered failpoint; adding a site means adding its
/// name here.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_FAILPOINT_H
#define SELSPEC_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace selspec {
namespace failpoint {

enum class Action : uint8_t { Off, Fail, Crash };

/// Every registered failpoint name, in catalog order.
const std::vector<const char *> &allNames();

/// Arms failpoints from \p Spec: comma-separated "name=action" pairs,
/// action in {fail, crash}.  Unknown names or actions fail with a
/// message in \p ErrorOut and arm nothing.
bool configure(const std::string &Spec, std::string &ErrorOut);

/// Arms from the SELSPEC_FAILPOINTS environment variable; a missing or
/// empty variable is a no-op success.
bool armFromEnv(std::string &ErrorOut);

/// Disarms everything (test isolation).
void disarmAll();

/// Cheap hot-path gate: true when at least one failpoint is armed.
bool anyArmed();

/// Number of times any failpoint fired (for tests asserting a site was
/// actually reached).
uint64_t totalHits();

/// Should the site named \p Name fail this hit?  Returns true for
/// Action::Fail; Action::Crash aborts the process here (after a stderr
/// note naming the failpoint).  Off or unarmed returns false.
bool triggered(const char *Name);

/// Canonical message for an injected failure at \p Name.
std::string failureMessage(const char *Name);

} // namespace failpoint
} // namespace selspec

#endif // SELSPEC_SUPPORT_FAILPOINT_H

//===- support/Deadline.cpp - Deadlines and cooperative cancel -------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"

using namespace selspec;

std::string CancelToken::reason() const {
  if (cancelRequested())
    return "execution cancelled";
  if (TheDeadline.expired())
    return "execution exceeded the deadline of " +
           std::to_string(TheDeadline.budgetMillis()) + " ms";
  return "not stopped";
}

//===- support/SourceLoc.h - Source positions ------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions used by the lexer, parser and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_SOURCELOC_H
#define SELSPEC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace selspec {

/// A 1-based line/column source position.  Line 0 means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_SOURCELOC_H

//===- support/Diagnostics.cpp - Error collection -------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace selspec;

bool Diagnostics::hasErrors() const {
  for (const Diagnostic &D : Diags)
    if (D.Sev == Diagnostic::Severity::Error)
      return true;
  return false;
}

std::string Diagnostics::toString() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << D.Loc.Line << ':' << D.Loc.Col << ": "
       << (D.Sev == Diagnostic::Severity::Error ? "error" : "warning") << ": "
       << D.Message << '\n';
  }
  return OS.str();
}

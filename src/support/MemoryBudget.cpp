//===- support/MemoryBudget.cpp - Modeled-byte memory accounting -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/MemoryBudget.h"

#include "support/Metrics.h"

#include <atomic>
#include <cstdlib>

using namespace selspec;

namespace {

std::atomic<uint64_t> Live{0};
std::atomic<uint64_t> Watermark{0};

metrics::Counter GaugeLive("serve.mem_live_bytes");
metrics::Counter GaugeWatermark("serve.mem_watermark");

} // namespace

void selspec::membudget::addLive(int64_t Delta) {
  uint64_t Now;
  if (Delta >= 0)
    Now = Live.fetch_add(static_cast<uint64_t>(Delta),
                         std::memory_order_relaxed) +
          static_cast<uint64_t>(Delta);
  else
    Now = Live.fetch_sub(static_cast<uint64_t>(-Delta),
                         std::memory_order_relaxed) -
          static_cast<uint64_t>(-Delta);
  GaugeLive.set(Now);
  // CAS-max watermark.
  uint64_t Seen = Watermark.load(std::memory_order_relaxed);
  while (Now > Seen &&
         !Watermark.compare_exchange_weak(Seen, Now,
                                          std::memory_order_relaxed))
    ;
  if (Now > Seen)
    GaugeWatermark.set(Now);
}

uint64_t selspec::membudget::liveBytes() {
  return Live.load(std::memory_order_relaxed);
}

uint64_t selspec::membudget::highWatermark() {
  return Watermark.load(std::memory_order_relaxed);
}

void selspec::membudget::resetWatermark() {
  uint64_t Now = Live.load(std::memory_order_relaxed);
  Watermark.store(Now, std::memory_order_relaxed);
  GaugeWatermark.set(Now);
}

uint64_t selspec::membudget::maxBytesFromEnv(uint64_t Fallback) {
  const char *Env = std::getenv("SELSPEC_MAX_BYTES");
  if (!Env || !*Env)
    return Fallback;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Env, &End, 10);
  if (End == Env || (End && *End))
    return Fallback;
  return static_cast<uint64_t>(V);
}

//===- support/Deadline.h - Deadlines and cooperative cancel ---*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock deadlines and cooperative cancellation for long-running
/// pipeline work.  A production deployment of the profile-guided compiler
/// is a long-lived service: a slow or adversarial input must never wedge
/// the process.  Every pipeline phase (resolve, CHA, profile run, plan,
/// optimize, measured run) checks a CancelToken at its boundary, and the
/// interpreter polls it on a sampled subset of its node-charge branch, so
/// an expired deadline surfaces as a structured failure
/// (TrapKind::DeadlineExceeded, exit code 23) within a bounded number of
/// evaluated nodes.
///
/// Cancellation is cooperative and lock-free: requestCancel() may be
/// called from a signal handler or another thread; checkers only perform
/// relaxed atomic loads and (rarely) a steady_clock read.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SUPPORT_DEADLINE_H
#define SELSPEC_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace selspec {

/// A point in time work must not run past.  Default-constructed deadlines
/// are unarmed and never expire.
class Deadline {
public:
  Deadline() = default;

  static Deadline never() { return Deadline(); }

  /// Expires \p Millis milliseconds from now (clamped to >= 0).
  static Deadline afterMillis(int64_t Millis) {
    Deadline D;
    D.IsArmed = true;
    D.At = std::chrono::steady_clock::now() +
           std::chrono::milliseconds(Millis < 0 ? 0 : Millis);
    D.BudgetMillis = Millis < 0 ? 0 : Millis;
    return D;
  }

  bool armed() const { return IsArmed; }

  bool expired() const {
    return IsArmed && std::chrono::steady_clock::now() >= At;
  }

  /// Milliseconds until expiry; 0 when already expired, INT64_MAX when
  /// unarmed.
  int64_t remainingMillis() const {
    if (!IsArmed)
      return INT64_MAX;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    At - std::chrono::steady_clock::now())
                    .count();
    return Left < 0 ? 0 : Left;
  }

  /// The total budget this deadline was armed with (for messages).
  int64_t budgetMillis() const { return BudgetMillis; }

private:
  std::chrono::steady_clock::time_point At{};
  int64_t BudgetMillis = 0;
  bool IsArmed = false;
};

/// Shared stop signal: an explicit cancel flag plus an optional deadline.
/// Producers hold the token; consumers receive a const pointer and poll
/// stopRequested().  Not copyable (identity matters — everyone polls the
/// same flag).
class CancelToken {
public:
  CancelToken() = default;
  explicit CancelToken(Deadline D) : TheDeadline(D) {}
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Asks all work sharing this token to stop at the next check.
  /// Safe from signal handlers and other threads.
  void requestCancel() { Cancelled.store(true, std::memory_order_relaxed); }

  void setDeadline(Deadline D) { TheDeadline = D; }
  const Deadline &deadline() const { return TheDeadline; }

  bool cancelRequested() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  /// True once the deadline expired or a cancel was requested.
  bool stopRequested() const {
    return cancelRequested() || TheDeadline.expired();
  }

  /// One-line reason for a stop, for trap/diagnostic messages.
  std::string reason() const;

private:
  std::atomic<bool> Cancelled{false};
  Deadline TheDeadline;
};

} // namespace selspec

#endif // SELSPEC_SUPPORT_DEADLINE_H

//===- support/TraceEmitter.cpp - Chrome-trace span emitter ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "support/TraceEmitter.h"

#include "support/Metrics.h"

#include <fstream>
#include <ostream>

using namespace selspec;

namespace {

metrics::Counter CtrSpans("trace.spans");
metrics::Counter CtrSpansDropped("trace.spans_dropped");

} // namespace

TraceEmitter &TraceEmitter::global() {
  static TraceEmitter T;
  return T;
}

uint64_t
TraceEmitter::sinceEpoch(std::chrono::steady_clock::time_point T) const {
  if (T <= Epoch)
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T - Epoch)
          .count());
}

void TraceEmitter::record(const char *Name, uint64_t StartNanos,
                          uint64_t DurNanos) {
  std::lock_guard<std::mutex> Lock(M);
  if (Spans.size() >= MaxSpans) {
    ++Dropped;
    CtrSpansDropped.add();
    return;
  }
  Spans.push_back({Name, StartNanos, DurNanos});
  CtrSpans.add();
}

size_t TraceEmitter::numSpans() const {
  std::lock_guard<std::mutex> Lock(M);
  return Spans.size();
}

uint64_t TraceEmitter::numDropped() const {
  std::lock_guard<std::mutex> Lock(M);
  return Dropped;
}

void TraceEmitter::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Spans.clear();
  Dropped = 0;
}

void TraceEmitter::print(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(M);
  // Complete events ("ph":"X"); ts/dur are microseconds per the format.
  // Integer-nanosecond arithmetic rendered as <µs>.<frac> keeps the file
  // locale-independent and exact.
  OS << "{\"traceEvents\":[";
  for (size_t I = 0; I != Spans.size(); ++I) {
    const Span &S = Spans[I];
    OS << (I ? ",\n " : "\n ") << "{\"name\":\"" << S.Name
       << "\",\"cat\":\"selspec\",\"ph\":\"X\",\"ts\":" << S.StartNanos / 1000
       << '.' << static_cast<char>('0' + S.StartNanos / 100 % 10)
       << static_cast<char>('0' + S.StartNanos / 10 % 10)
       << static_cast<char>('0' + S.StartNanos % 10)
       << ",\"dur\":" << S.DurNanos / 1000 << '.'
       << static_cast<char>('0' + S.DurNanos / 100 % 10)
       << static_cast<char>('0' + S.DurNanos / 10 % 10)
       << static_cast<char>('0' + S.DurNanos % 10)
       << ",\"pid\":1,\"tid\":1}";
  }
  OS << "\n],\"displayTimeUnit\":\"ms\"}";
}

bool TraceEmitter::writeFile(const std::string &Path,
                             std::string &ErrorOut) const {
  std::ofstream OS(Path);
  if (!OS) {
    ErrorOut = "cannot write trace file '" + Path + "'";
    return false;
  }
  print(OS);
  OS << '\n';
  if (!OS) {
    ErrorOut = "error writing trace file '" + Path + "'";
    return false;
  }
  return true;
}

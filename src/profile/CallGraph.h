//===- profile/CallGraph.h - Weighted dynamic call graph -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weighted call graph the specialization algorithm consumes: for each
/// call site, the set of methods invoked from it and how many times (one
/// arc per (site, callee); a dynamically-dispatched site can have several
/// arcs).  Matches the paper's Caller(arc), Callee(arc), CallSite(arc),
/// Weight(arc) accessors.  Arcs are recorded for statically-bound sites
/// too, since cascadeSpecializations needs their weights.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_PROFILE_CALLGRAPH_H
#define SELSPEC_PROFILE_CALLGRAPH_H

#include "support/Ids.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace selspec {

/// One weighted arc of the dynamic call graph.
struct Arc {
  CallSiteId Site;
  MethodId Caller;
  MethodId Callee;
  uint64_t Weight = 0;
};

class CallGraph {
public:
  /// Records \p N invocations of \p Callee from \p Site (inside \p Caller).
  void addHits(CallSiteId Site, MethodId Caller, MethodId Callee,
               uint64_t N = 1);

  /// All arcs in a deterministic order (by site, then callee).
  std::vector<Arc> arcs() const;

  /// Arcs leaving \p Caller / arriving at \p Callee.
  std::vector<Arc> arcsFrom(MethodId Caller) const;
  std::vector<Arc> arcsTo(MethodId Callee) const;
  /// Arcs of one call site.
  std::vector<Arc> arcsAt(CallSiteId Site) const;

  uint64_t totalWeight() const;
  bool empty() const { return Weights.empty(); }
  size_t numArcs() const { return Weights.size(); }

  /// Accumulates \p Other into this graph (profiles from several runs).
  void merge(const CallGraph &Other);

  void clear() { Weights.clear(); }

private:
  struct Key {
    uint32_t Site;
    uint32_t Caller;
    uint32_t Callee;
    bool operator==(const Key &K) const {
      return Site == K.Site && Caller == K.Caller && Callee == K.Callee;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = (uint64_t(K.Site) << 40) ^ (uint64_t(K.Caller) << 20) ^
                   K.Callee;
      return std::hash<uint64_t>()(H);
    }
  };

  std::unordered_map<Key, uint64_t, KeyHash> Weights;
};

} // namespace selspec

#endif // SELSPEC_PROFILE_CALLGRAPH_H

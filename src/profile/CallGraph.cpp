//===- profile/CallGraph.cpp - Weighted dynamic call graph -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "profile/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace selspec;

void CallGraph::addHits(CallSiteId Site, MethodId Caller, MethodId Callee,
                        uint64_t N) {
  assert(Site.isValid() && Caller.isValid() && Callee.isValid() &&
         "invalid arc component");
  Weights[{Site.value(), Caller.value(), Callee.value()}] += N;
}

static Arc makeArc(uint32_t Site, uint32_t Caller, uint32_t Callee,
                   uint64_t W) {
  return Arc{CallSiteId(Site), MethodId(Caller), MethodId(Callee), W};
}

std::vector<Arc> CallGraph::arcs() const {
  std::vector<Arc> Out;
  Out.reserve(Weights.size());
  for (const auto &[K, W] : Weights)
    Out.push_back(makeArc(K.Site, K.Caller, K.Callee, W));
  std::sort(Out.begin(), Out.end(), [](const Arc &A, const Arc &B) {
    if (A.Site != B.Site)
      return A.Site < B.Site;
    return A.Callee < B.Callee;
  });
  return Out;
}

std::vector<Arc> CallGraph::arcsFrom(MethodId Caller) const {
  std::vector<Arc> Out;
  for (const Arc &A : arcs())
    if (A.Caller == Caller)
      Out.push_back(A);
  return Out;
}

std::vector<Arc> CallGraph::arcsTo(MethodId Callee) const {
  std::vector<Arc> Out;
  for (const Arc &A : arcs())
    if (A.Callee == Callee)
      Out.push_back(A);
  return Out;
}

std::vector<Arc> CallGraph::arcsAt(CallSiteId Site) const {
  std::vector<Arc> Out;
  for (const Arc &A : arcs())
    if (A.Site == Site)
      Out.push_back(A);
  return Out;
}

uint64_t CallGraph::totalWeight() const {
  uint64_t Total = 0;
  for (const auto &[K, W] : Weights)
    Total += W;
  return Total;
}

void CallGraph::merge(const CallGraph &Other) {
  for (const auto &[K, W] : Other.Weights)
    Weights[K] += W;
}

//===- profile/ProfileDb.h - Persistent profile database -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7.2: "our compiler maintains a persistent internal database of
/// profile information that is consulted transparently during
/// compilations."  This is that database: call graphs keyed by a program
/// name, saved to and loaded from a simple line-oriented text format so
/// profiles can be gathered rarely and reused across many compiles.
///
/// In-memory interchange format (serialize/deserialize, v1):
///   selspec-profile v1
///   program <name> <num-arcs>
///   arc <site> <caller> <callee> <weight>
///   ...
///
/// On-disk format (saveToFile, v2) adds a generation counter and a
/// checksum so a torn or bit-rotted file is detected instead of parsed:
///   selspec-profile v2 gen <N> sum <16-hex fnv1a-64 of the body>
///   program ...
/// deserialize() accepts both versions.
///
/// Persistence is crash-safe: saveToFile writes `<path>.tmp`, fsyncs,
/// rotates the previous file to `<path>.bak`, and atomically renames the
/// temp into place — a writer killed at any instant leaves either the
/// previous generation at <path> or (between the two renames) at
/// <path>.bak.  loadFromFile falls back to <path>.bak with a warning when
/// <path> is missing, torn, or corrupt, so a long-running service always
/// recovers the last good generation.  Every step carries a
/// `profiledb.save.*` / `profiledb.load.*` failpoint
/// (support/FailPoint.h) that reproduces the exact on-disk state a crash
/// at that step would leave.
///
/// Profiles are untrusted input: they may be truncated, corrupted, or
/// recorded against an older build of the program.  Parsing therefore
/// reports line-numbered diagnostics instead of a bare bool, and validate()
/// cross-checks every arc's ids against a resolved Program so stale data
/// degrades to "no profile" rather than feeding garbage ids into the
/// specializer.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_PROFILE_PROFILEDB_H
#define SELSPEC_PROFILE_PROFILEDB_H

#include "profile/CallGraph.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace selspec {

class Program;

class ProfileDb {
public:
  /// Returns the profile for \p ProgramName, creating an empty one.
  CallGraph &forProgram(const std::string &ProgramName) {
    return Graphs[ProgramName];
  }

  bool hasProgram(const std::string &ProgramName) const {
    return Graphs.count(ProgramName) != 0;
  }

  /// Serializes the whole database.
  std::string serialize() const;

  /// Parses \p Text, merging into this database.  Returns false (leaving
  /// partial content merged) on malformed input, explaining each rejection
  /// with the 1-based line number in \p Diags.
  bool deserialize(const std::string &Text, Diagnostics &Diags);
  bool deserialize(const std::string &Text) {
    Diagnostics Ignored;
    return deserialize(Text, Ignored);
  }

  /// Checks every arc of \p ProgramName's graph against \p P: the site and
  /// method ids must be in range, the caller must own the site, and the
  /// callee must be a method of the site's generic.  Invalid arcs are
  /// dropped with a warning; returns the number dropped (0 = profile is
  /// consistent with this build of the program).
  size_t validate(const std::string &ProgramName, const Program &P,
                  Diagnostics &Diags);

  /// Crash-safe save: write-temp + fsync + backup rotation + atomic
  /// rename, with a v2 checksummed header whose generation is one more
  /// than the generation currently at \p Path.  On failure the step and
  /// the OS reason (errno) land in \p Diags and the previous generation
  /// remains loadable.
  bool saveToFile(const std::string &Path, Diagnostics &Diags) const;

  /// Loads \p Path, falling back to `<path>.bak` (with a warning) when
  /// the primary file is missing, torn, or fails its checksum.  Returns
  /// false with errors in \p Diags only when no generation is loadable.
  bool loadFromFile(const std::string &Path, Diagnostics &Diags);

  /// Generation of the most recently deserialized v2 header (0 before any
  /// load, and for v1 inputs).
  uint64_t generation() const { return Generation; }
  bool saveToFile(const std::string &Path) const {
    Diagnostics Ignored;
    return saveToFile(Path, Ignored);
  }
  bool loadFromFile(const std::string &Path) {
    Diagnostics Ignored;
    return loadFromFile(Path, Ignored);
  }

  size_t numPrograms() const { return Graphs.size(); }

private:
  /// Loads \p Path into a scratch db and merges into *this only on full
  /// success, so a torn primary cannot leave half its arcs behind before
  /// the backup is tried.
  bool loadOneFile(const std::string &Path, Diagnostics &Diags);

  std::map<std::string, CallGraph> Graphs;
  uint64_t Generation = 0;
};

} // namespace selspec

#endif // SELSPEC_PROFILE_PROFILEDB_H

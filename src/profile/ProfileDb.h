//===- profile/ProfileDb.h - Persistent profile database -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7.2: "our compiler maintains a persistent internal database of
/// profile information that is consulted transparently during
/// compilations."  This is that database: call graphs keyed by a program
/// name, saved to and loaded from a simple line-oriented text format so
/// profiles can be gathered rarely and reused across many compiles.
///
/// Format:
///   selspec-profile v1
///   program <name> <num-arcs>
///   arc <site> <caller> <callee> <weight>
///   ...
///
/// Profiles are untrusted input: they may be truncated, corrupted, or
/// recorded against an older build of the program.  Parsing therefore
/// reports line-numbered diagnostics instead of a bare bool, and validate()
/// cross-checks every arc's ids against a resolved Program so stale data
/// degrades to "no profile" rather than feeding garbage ids into the
/// specializer.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_PROFILE_PROFILEDB_H
#define SELSPEC_PROFILE_PROFILEDB_H

#include "profile/CallGraph.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace selspec {

class Program;

class ProfileDb {
public:
  /// Returns the profile for \p ProgramName, creating an empty one.
  CallGraph &forProgram(const std::string &ProgramName) {
    return Graphs[ProgramName];
  }

  bool hasProgram(const std::string &ProgramName) const {
    return Graphs.count(ProgramName) != 0;
  }

  /// Serializes the whole database.
  std::string serialize() const;

  /// Parses \p Text, merging into this database.  Returns false (leaving
  /// partial content merged) on malformed input, explaining each rejection
  /// with the 1-based line number in \p Diags.
  bool deserialize(const std::string &Text, Diagnostics &Diags);
  bool deserialize(const std::string &Text) {
    Diagnostics Ignored;
    return deserialize(Text, Ignored);
  }

  /// Checks every arc of \p ProgramName's graph against \p P: the site and
  /// method ids must be in range, the caller must own the site, and the
  /// callee must be a method of the site's generic.  Invalid arcs are
  /// dropped with a warning; returns the number dropped (0 = profile is
  /// consistent with this build of the program).
  size_t validate(const std::string &ProgramName, const Program &P,
                  Diagnostics &Diags);

  /// File convenience wrappers.  On failure the path and the OS reason
  /// (errno) land in \p Diags.
  bool saveToFile(const std::string &Path, Diagnostics &Diags) const;
  bool loadFromFile(const std::string &Path, Diagnostics &Diags);
  bool saveToFile(const std::string &Path) const {
    Diagnostics Ignored;
    return saveToFile(Path, Ignored);
  }
  bool loadFromFile(const std::string &Path) {
    Diagnostics Ignored;
    return loadFromFile(Path, Ignored);
  }

  size_t numPrograms() const { return Graphs.size(); }

private:
  std::map<std::string, CallGraph> Graphs;
};

} // namespace selspec

#endif // SELSPEC_PROFILE_PROFILEDB_H

//===- profile/ProfileDb.h - Persistent profile database -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7.2: "our compiler maintains a persistent internal database of
/// profile information that is consulted transparently during
/// compilations."  This is that database: call graphs keyed by a program
/// name, saved to and loaded from a simple line-oriented text format so
/// profiles can be gathered rarely and reused across many compiles.
///
/// Format:
///   selspec-profile v1
///   program <name> <num-arcs>
///   arc <site> <caller> <callee> <weight>
///   ...
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_PROFILE_PROFILEDB_H
#define SELSPEC_PROFILE_PROFILEDB_H

#include "profile/CallGraph.h"

#include <map>
#include <string>

namespace selspec {

class ProfileDb {
public:
  /// Returns the profile for \p ProgramName, creating an empty one.
  CallGraph &forProgram(const std::string &ProgramName) {
    return Graphs[ProgramName];
  }

  bool hasProgram(const std::string &ProgramName) const {
    return Graphs.count(ProgramName) != 0;
  }

  /// Serializes the whole database.
  std::string serialize() const;

  /// Parses \p Text, merging into this database.  Returns false (leaving
  /// partial content merged) on malformed input.
  bool deserialize(const std::string &Text);

  /// File convenience wrappers.
  bool saveToFile(const std::string &Path) const;
  bool loadFromFile(const std::string &Path);

  size_t numPrograms() const { return Graphs.size(); }

private:
  std::map<std::string, CallGraph> Graphs;
};

} // namespace selspec

#endif // SELSPEC_PROFILE_PROFILEDB_H

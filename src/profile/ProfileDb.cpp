//===- profile/ProfileDb.cpp - Persistent profile database -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDb.h"

#include "hierarchy/Program.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace selspec;

std::string ProfileDb::serialize() const {
  std::ostringstream OS;
  OS << "selspec-profile v1\n";
  for (const auto &[Name, Graph] : Graphs) {
    std::vector<Arc> Arcs = Graph.arcs();
    OS << "program " << Name << ' ' << Arcs.size() << '\n';
    for (const Arc &A : Arcs)
      OS << "arc " << A.Site.value() << ' ' << A.Caller.value() << ' '
         << A.Callee.value() << ' ' << A.Weight << '\n';
  }
  return OS.str();
}

namespace {

/// Parses a non-negative decimal integer that fits \p Out; rejects signs,
/// junk suffixes and overflow (so a bit-flipped digit string never wraps
/// into a silently different id).
bool parseUInt(const std::string &Tok, uint64_t Max, uint64_t &Out) {
  if (Tok.empty())
    return false;
  uint64_t V = 0;
  for (char Ch : Tok) {
    if (Ch < '0' || Ch > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(Ch - '0');
    if (V > (Max - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

} // namespace

bool ProfileDb::deserialize(const std::string &Text, Diagnostics &Diags) {
  std::istringstream IS(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto reject = [&](const std::string &Why) {
    Diags.error(SourceLoc{LineNo, 1}, "profile line " +
                                          std::to_string(LineNo) + ": " + Why);
    return false;
  };

  if (!std::getline(IS, Line)) {
    LineNo = 1;
    return reject("empty input, expected 'selspec-profile v1' header");
  }
  ++LineNo;
  if (Line != "selspec-profile v1")
    return reject("bad header '" + Line +
                  "', expected 'selspec-profile v1'");

  CallGraph *Current = nullptr;
  size_t DeclaredArcs = 0, SeenArcs = 0;
  std::string CurrentName;
  auto checkArcCount = [&] {
    if (Current && SeenArcs != DeclaredArcs)
      return reject("program '" + CurrentName + "' declares " +
                    std::to_string(DeclaredArcs) + " arc(s) but " +
                    std::to_string(SeenArcs) + " follow (truncated?)");
    return true;
  };

  while (std::getline(IS, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Word;
    if (!(LS >> Word))
      continue; // blank line
    if (Word == "program") {
      if (!checkArcCount())
        return false;
      std::string Name, Count;
      uint64_t N = 0;
      if (!(LS >> Name >> Count) || !parseUInt(Count, SIZE_MAX, N))
        return reject("malformed program record, expected "
                      "'program <name> <num-arcs>'");
      if (LS >> Word)
        return reject("trailing junk '" + Word + "' after program record");
      Current = &Graphs[Name];
      CurrentName = Name;
      DeclaredArcs = static_cast<size_t>(N);
      SeenArcs = 0;
      continue;
    }
    if (Word == "arc") {
      if (!Current)
        return reject("arc record before any program record");
      std::string T[4];
      uint64_t Site = 0, Caller = 0, Callee = 0, Weight = 0;
      if (!(LS >> T[0] >> T[1] >> T[2] >> T[3]) ||
          !parseUInt(T[0], UINT32_MAX, Site) ||
          !parseUInt(T[1], UINT32_MAX, Caller) ||
          !parseUInt(T[2], UINT32_MAX, Callee) ||
          !parseUInt(T[3], UINT64_MAX, Weight))
        return reject("malformed arc record, expected "
                      "'arc <site> <caller> <callee> <weight>'");
      if (LS >> Word)
        return reject("trailing junk '" + Word + "' after arc record");
      Current->addHits(CallSiteId(static_cast<uint32_t>(Site)),
                       MethodId(static_cast<uint32_t>(Caller)),
                       MethodId(static_cast<uint32_t>(Callee)), Weight);
      ++SeenArcs;
      continue;
    }
    return reject("unknown record '" + Word + "'");
  }
  return checkArcCount();
}

size_t ProfileDb::validate(const std::string &ProgramName, const Program &P,
                           Diagnostics &Diags) {
  auto It = Graphs.find(ProgramName);
  if (It == Graphs.end())
    return 0;
  CallGraph &G = It->second;

  std::vector<Arc> Kept;
  size_t Dropped = 0;
  for (const Arc &A : G.arcs()) {
    std::string Why;
    if (A.Site.value() >= P.numCallSites())
      Why = "site id " + std::to_string(A.Site.value()) + " out of range";
    else if (A.Caller.value() >= P.numMethods())
      Why = "caller id " + std::to_string(A.Caller.value()) + " out of range";
    else if (A.Callee.value() >= P.numMethods())
      Why = "callee id " + std::to_string(A.Callee.value()) + " out of range";
    else if (P.callSite(A.Site).Owner != A.Caller)
      Why = "caller does not own site " + std::to_string(A.Site.value());
    else if (P.method(A.Callee).Generic != P.callSite(A.Site).Send->Generic)
      Why = "callee is not a method of site " +
            std::to_string(A.Site.value()) + "'s generic";
    if (Why.empty()) {
      Kept.push_back(A);
      continue;
    }
    ++Dropped;
    Diags.warning(SourceLoc(), "profile for '" + ProgramName +
                                   "': dropping arc (" + Why + ")");
  }
  if (Dropped) {
    G.clear();
    for (const Arc &A : Kept)
      G.addHits(A.Site, A.Caller, A.Callee, A.Weight);
  }
  return Dropped;
}

bool ProfileDb::saveToFile(const std::string &Path,
                           Diagnostics &Diags) const {
  std::ofstream OS(Path);
  if (!OS) {
    Diags.error(SourceLoc(), "cannot write profile db '" + Path +
                                 "': " + std::strerror(errno));
    return false;
  }
  OS << serialize();
  OS.flush();
  if (!OS) {
    Diags.error(SourceLoc(), "error writing profile db '" + Path +
                                 "': " + std::strerror(errno));
    return false;
  }
  return true;
}

bool ProfileDb::loadFromFile(const std::string &Path, Diagnostics &Diags) {
  std::ifstream IS(Path);
  if (!IS) {
    Diags.error(SourceLoc(), "cannot read profile db '" + Path +
                                 "': " + std::strerror(errno));
    return false;
  }
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return deserialize(Buf.str(), Diags);
}

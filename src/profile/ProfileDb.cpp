//===- profile/ProfileDb.cpp - Persistent profile database -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDb.h"

#include "hierarchy/Program.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/PhaseTimer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace selspec;

namespace {

/// FNV-1a 64-bit; the on-disk checksum of the record body.  Not
/// cryptographic — it only needs to catch torn writes and bit rot.
uint64_t fnv1a64(const std::string &Bytes) {
  uint64_t H = UINT64_C(1469598103934665603);
  for (unsigned char Ch : Bytes) {
    H ^= Ch;
    H *= UINT64_C(1099511628211);
  }
  return H;
}

std::string toHex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

metrics::Counter CtrLoads("profiledb.loads");
metrics::Counter CtrLoadFailures("profiledb.load_failures");
metrics::Counter CtrLoadRecoveries("profiledb.load_recoveries");
metrics::Counter CtrSaves("profiledb.saves");
metrics::Counter CtrSaveFailures("profiledb.save_failures");
metrics::Counter CtrArcsDropped("profiledb.arcs_dropped");

} // namespace

/// The record body shared by both format versions (everything after the
/// header line).
static std::string serializeBody(const std::map<std::string, CallGraph> &Gs) {
  std::ostringstream OS;
  for (const auto &[Name, Graph] : Gs) {
    std::vector<Arc> Arcs = Graph.arcs();
    OS << "program " << Name << ' ' << Arcs.size() << '\n';
    for (const Arc &A : Arcs)
      OS << "arc " << A.Site.value() << ' ' << A.Caller.value() << ' '
         << A.Callee.value() << ' ' << A.Weight << '\n';
  }
  return OS.str();
}

std::string ProfileDb::serialize() const {
  return "selspec-profile v1\n" + serializeBody(Graphs);
}

namespace {

/// Parses a non-negative decimal integer that fits \p Out; rejects signs,
/// junk suffixes and overflow (so a bit-flipped digit string never wraps
/// into a silently different id).
bool parseUInt(const std::string &Tok, uint64_t Max, uint64_t &Out) {
  if (Tok.empty())
    return false;
  uint64_t V = 0;
  for (char Ch : Tok) {
    if (Ch < '0' || Ch > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(Ch - '0');
    if (V > (Max - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

} // namespace

bool ProfileDb::deserialize(const std::string &Text, Diagnostics &Diags) {
  std::istringstream IS(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto reject = [&](const std::string &Why) {
    Diags.error(SourceLoc{LineNo, 1}, "profile line " +
                                          std::to_string(LineNo) + ": " + Why);
    return false;
  };

  if (!std::getline(IS, Line)) {
    LineNo = 1;
    return reject("empty input, expected 'selspec-profile v1' or "
                  "'selspec-profile v2' header");
  }
  ++LineNo;
  if (Line != "selspec-profile v1") {
    // v2: "selspec-profile v2 gen <N> sum <16-hex>", checksummed body.
    std::istringstream HS(Line);
    std::string Magic, Ver, GenWord, GenTok, SumWord, SumTok, Extra;
    if (!(HS >> Magic >> Ver >> GenWord >> GenTok >> SumWord >> SumTok) ||
        Magic != "selspec-profile" || Ver != "v2" || GenWord != "gen" ||
        SumWord != "sum" || (HS >> Extra))
      return reject("bad header '" + Line + "', expected 'selspec-profile "
                    "v1' or 'selspec-profile v2 gen <N> sum <hex>'");
    uint64_t Gen = 0;
    if (!parseUInt(GenTok, UINT64_MAX, Gen))
      return reject("bad generation '" + GenTok + "' in v2 header");
    uint64_t Sum = 0;
    if (SumTok.size() != 16)
      return reject("bad checksum '" + SumTok + "' in v2 header");
    for (char Ch : SumTok) {
      int Digit = Ch >= '0' && Ch <= '9'   ? Ch - '0'
                  : Ch >= 'a' && Ch <= 'f' ? Ch - 'a' + 10
                                           : -1;
      if (Digit < 0)
        return reject("bad checksum '" + SumTok + "' in v2 header");
      Sum = (Sum << 4) | static_cast<uint64_t>(Digit);
    }
    if (failpoint::anyArmed() && failpoint::triggered("profiledb.load.header"))
      return reject(failpoint::failureMessage("profiledb.load.header"));
    size_t BodyStart = Text.find('\n');
    std::string Body =
        BodyStart == std::string::npos ? "" : Text.substr(BodyStart + 1);
    if (fnv1a64(Body) != Sum)
      return reject("checksum mismatch (torn or corrupted file)");
    if (Gen > Generation)
      Generation = Gen;
  }

  CallGraph *Current = nullptr;
  size_t DeclaredArcs = 0, SeenArcs = 0;
  std::string CurrentName;
  auto checkArcCount = [&] {
    if (Current && SeenArcs != DeclaredArcs)
      return reject("program '" + CurrentName + "' declares " +
                    std::to_string(DeclaredArcs) + " arc(s) but " +
                    std::to_string(SeenArcs) + " follow (truncated?)");
    return true;
  };

  while (std::getline(IS, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Word;
    if (!(LS >> Word))
      continue; // blank line
    if (Word == "program") {
      if (!checkArcCount())
        return false;
      std::string Name, Count;
      uint64_t N = 0;
      if (!(LS >> Name >> Count) || !parseUInt(Count, SIZE_MAX, N))
        return reject("malformed program record, expected "
                      "'program <name> <num-arcs>'");
      if (LS >> Word)
        return reject("trailing junk '" + Word + "' after program record");
      Current = &Graphs[Name];
      CurrentName = Name;
      DeclaredArcs = static_cast<size_t>(N);
      SeenArcs = 0;
      continue;
    }
    if (Word == "arc") {
      if (!Current)
        return reject("arc record before any program record");
      std::string T[4];
      uint64_t Site = 0, Caller = 0, Callee = 0, Weight = 0;
      if (!(LS >> T[0] >> T[1] >> T[2] >> T[3]) ||
          !parseUInt(T[0], UINT32_MAX, Site) ||
          !parseUInt(T[1], UINT32_MAX, Caller) ||
          !parseUInt(T[2], UINT32_MAX, Callee) ||
          !parseUInt(T[3], UINT64_MAX, Weight))
        return reject("malformed arc record, expected "
                      "'arc <site> <caller> <callee> <weight>'");
      if (LS >> Word)
        return reject("trailing junk '" + Word + "' after arc record");
      Current->addHits(CallSiteId(static_cast<uint32_t>(Site)),
                       MethodId(static_cast<uint32_t>(Caller)),
                       MethodId(static_cast<uint32_t>(Callee)), Weight);
      ++SeenArcs;
      continue;
    }
    return reject("unknown record '" + Word + "'");
  }
  return checkArcCount();
}

size_t ProfileDb::validate(const std::string &ProgramName, const Program &P,
                           Diagnostics &Diags) {
  auto It = Graphs.find(ProgramName);
  if (It == Graphs.end())
    return 0;
  CallGraph &G = It->second;

  std::vector<Arc> Kept;
  size_t Dropped = 0;
  for (const Arc &A : G.arcs()) {
    std::string Why;
    if (A.Site.value() >= P.numCallSites())
      Why = "site id " + std::to_string(A.Site.value()) + " out of range";
    else if (A.Caller.value() >= P.numMethods())
      Why = "caller id " + std::to_string(A.Caller.value()) + " out of range";
    else if (A.Callee.value() >= P.numMethods())
      Why = "callee id " + std::to_string(A.Callee.value()) + " out of range";
    else if (P.callSite(A.Site).Owner != A.Caller)
      Why = "caller does not own site " + std::to_string(A.Site.value());
    else if (P.method(A.Callee).Generic != P.callSite(A.Site).Send->Generic)
      Why = "callee is not a method of site " +
            std::to_string(A.Site.value()) + "'s generic";
    if (Why.empty()) {
      Kept.push_back(A);
      continue;
    }
    ++Dropped;
    Diags.warning(SourceLoc(), "profile for '" + ProgramName +
                                   "': dropping arc (" + Why + ")");
  }
  if (Dropped) {
    CtrArcsDropped.add(Dropped);
    G.clear();
    for (const Arc &A : Kept)
      G.addHits(A.Site, A.Caller, A.Callee, A.Weight);
  }
  return Dropped;
}

/// Generation recorded in the v2 header of \p Path; 0 for v1, missing, or
/// unreadable files (the next save then writes generation 1).
static uint64_t peekGeneration(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return 0;
  std::string Line;
  if (!std::getline(IS, Line))
    return 0;
  std::istringstream HS(Line);
  std::string Magic, Ver, GenWord, GenTok;
  if (!(HS >> Magic >> Ver >> GenWord >> GenTok) ||
      Magic != "selspec-profile" || Ver != "v2" || GenWord != "gen")
    return 0;
  uint64_t Gen = 0;
  if (!parseUInt(GenTok, UINT64_MAX, Gen))
    return 0;
  return Gen;
}

namespace {
/// Books the save's outcome exactly once whichever of the many error
/// returns is taken: Ok stays false unless the happy path flips it.
struct SaveOutcome {
  bool Ok = false;
  ~SaveOutcome() { (Ok ? CtrSaves : CtrSaveFailures).add(); }
};
} // namespace

bool ProfileDb::saveToFile(const std::string &Path,
                           Diagnostics &Diags) const {
  PhaseTimer::Scope Timing("profiledb.save");
  SaveOutcome Outcome;
  // Crash-safe sequence: temp write -> fsync -> rotate old -> rename.
  // Each failpoint returns immediately, leaving exactly the disk state a
  // crash at that step would leave (the torn-write tests depend on it).
  auto stepFailed = [&](const char *Step) {
    if (failpoint::anyArmed() && failpoint::triggered(Step)) {
      Diags.error(SourceLoc(), failpoint::failureMessage(Step) +
                                   " while saving profile db '" + Path + "'");
      return true;
    }
    return false;
  };
  auto osError = [&](const std::string &What) {
    Diags.error(SourceLoc(), What + " profile db '" + Path +
                                 "': " + std::strerror(errno));
    return false;
  };

  uint64_t PrevGen = peekGeneration(Path);
  if (!PrevGen)
    PrevGen = peekGeneration(Path + ".bak");
  std::string Body = serializeBody(Graphs);
  std::string Full = "selspec-profile v2 gen " + std::to_string(PrevGen + 1) +
                     " sum " + toHex16(fnv1a64(Body)) + "\n" + Body;

  std::string Tmp = Path + ".tmp";
  if (stepFailed("profiledb.save.open"))
    return false;
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return osError("cannot open temp file for");
  if (failpoint::anyArmed() && failpoint::triggered("profiledb.save.write")) {
    // Simulated crash mid-write: leave a genuinely torn temp file.
    std::fwrite(Full.data(), 1, Full.size() / 2, F);
    std::fclose(F);
    Diags.error(SourceLoc(),
                failpoint::failureMessage("profiledb.save.write") +
                    " while saving profile db '" + Path + "'");
    return false;
  }
  if (std::fwrite(Full.data(), 1, Full.size(), F) != Full.size()) {
    std::fclose(F);
    return osError("error writing");
  }
  if (failpoint::anyArmed() && failpoint::triggered("profiledb.save.sync")) {
    std::fclose(F);
    Diags.error(SourceLoc(), failpoint::failureMessage("profiledb.save.sync") +
                                 " while saving profile db '" + Path + "'");
    return false;
  }
  if (std::fflush(F) != 0) {
    std::fclose(F);
    return osError("error flushing");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(F)) != 0) {
    std::fclose(F);
    return osError("error syncing");
  }
#endif
  if (std::fclose(F) != 0)
    return osError("error closing");

  if (stepFailed("profiledb.save.backup"))
    return false;
  // Rotate the previous generation aside; a missing current file is fine
  // (first save), any other rotation error is not.
  if (std::rename(Path.c_str(), (Path + ".bak").c_str()) != 0 &&
      errno != ENOENT)
    return osError("cannot rotate previous");
  if (stepFailed("profiledb.save.rename"))
    return false;
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return osError("cannot rename temp into");
  Outcome.Ok = true;
  return true;
}

bool ProfileDb::loadOneFile(const std::string &Path, Diagnostics &Diags) {
  std::ifstream IS(Path);
  if (!IS) {
    Diags.error(SourceLoc(), "cannot read profile db '" + Path +
                                 "': " + std::strerror(errno));
    return false;
  }
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  // Parse into a scratch db first: deserialize leaves partial content
  // merged on failure, and a torn primary must not pollute this db
  // before the backup fallback runs.
  ProfileDb Scratch;
  if (!Scratch.deserialize(Buf.str(), Diags))
    return false;
  for (auto &[Name, Graph] : Scratch.Graphs)
    Graphs[Name].merge(Graph);
  if (Scratch.Generation > Generation)
    Generation = Scratch.Generation;
  return true;
}

bool ProfileDb::loadFromFile(const std::string &Path, Diagnostics &Diags) {
  PhaseTimer::Scope Timing("profiledb.load");
  Diagnostics Primary;
  bool PrimaryOk = false;
  if (failpoint::anyArmed() && failpoint::triggered("profiledb.load.open"))
    Primary.error(SourceLoc(),
                  failpoint::failureMessage("profiledb.load.open") +
                      " while loading profile db '" + Path + "'");
  else
    PrimaryOk = loadOneFile(Path, Primary);
  if (PrimaryOk) {
    CtrLoads.add();
    return true;
  }

  // Primary missing, torn, or corrupt: fall back to the last good
  // generation the crash-safe saver rotated aside.
  Diagnostics Backup;
  if (loadOneFile(Path + ".bak", Backup)) {
    CtrLoads.add();
    CtrLoadRecoveries.add();
    for (const Diagnostic &D : Primary.all())
      Diags.warning(D.Loc, D.Message);
    Diags.warning(SourceLoc(),
                  "profile db '" + Path + "' is unreadable or corrupt; "
                  "recovered generation " + std::to_string(Generation) +
                      " from '" + Path + ".bak'");
    return true;
  }
  CtrLoadFailures.add();
  for (const Diagnostic &D : Primary.all())
    Diags.error(D.Loc, D.Message);
  return false;
}

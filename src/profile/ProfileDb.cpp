//===- profile/ProfileDb.cpp - Persistent profile database -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDb.h"

#include <fstream>
#include <sstream>

using namespace selspec;

std::string ProfileDb::serialize() const {
  std::ostringstream OS;
  OS << "selspec-profile v1\n";
  for (const auto &[Name, Graph] : Graphs) {
    std::vector<Arc> Arcs = Graph.arcs();
    OS << "program " << Name << ' ' << Arcs.size() << '\n';
    for (const Arc &A : Arcs)
      OS << "arc " << A.Site.value() << ' ' << A.Caller.value() << ' '
         << A.Callee.value() << ' ' << A.Weight << '\n';
  }
  return OS.str();
}

bool ProfileDb::deserialize(const std::string &Text) {
  std::istringstream IS(Text);
  std::string Header;
  if (!std::getline(IS, Header) || Header != "selspec-profile v1")
    return false;

  std::string Word;
  CallGraph *Current = nullptr;
  while (IS >> Word) {
    if (Word == "program") {
      std::string Name;
      size_t NumArcs;
      if (!(IS >> Name >> NumArcs))
        return false;
      Current = &Graphs[Name];
      continue;
    }
    if (Word == "arc") {
      uint32_t Site, Caller, Callee;
      uint64_t Weight;
      if (!Current || !(IS >> Site >> Caller >> Callee >> Weight))
        return false;
      Current->addHits(CallSiteId(Site), MethodId(Caller), MethodId(Callee),
                       Weight);
      continue;
    }
    return false;
  }
  return true;
}

bool ProfileDb::saveToFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << serialize();
  return static_cast<bool>(OS);
}

bool ProfileDb::loadFromFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return false;
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return deserialize(Buf.str());
}

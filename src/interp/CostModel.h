//===- interp/CostModel.h - Deterministic execution cost model -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper reports machine-measured execution speed; our substrate is an
/// instrumented interpreter, so "execution speed" is modeled as cycles
/// charged per operation by this deterministic cost model.  The constants
/// are loosely calibrated to early-90s RISC implementations of
/// dynamically-dispatched languages: a dynamic dispatch (method lookup +
/// indirect call + argument shuffling) is several times the cost of a
/// statically-bound call, which in turn dwarfs an inlined primitive;
/// closure creation is a heap allocation.  Figure 5 reports *normalized*
/// speed, which is what this model is meant to reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_INTERP_COSTMODEL_H
#define SELSPEC_INTERP_COSTMODEL_H

#include <cstdint>
#include <string>

namespace selspec {

struct CostModel {
  /// Every AST node evaluated ("straight-line work").
  uint64_t NodeCost = 1;
  /// Full dynamically-dispatched send (lookup + call overhead).
  uint64_t DynamicDispatchCost = 15;
  /// Run-time selection among specialized versions of a known method
  /// ("class tests or table lookups ... once per operation", Section 2).
  uint64_t VersionSelectCost = 6;
  /// Statically-bound, non-inlined call (frame setup + direct call).
  uint64_t StaticCallCost = 4;
  /// Statically-bound builtin, inlined (e.g. integer add).
  uint64_t InlinePrimCost = 1;
  /// Hard-wired class-prediction test.
  uint64_t PredictTestCost = 2;
  /// Closure object creation (heap allocation + environment capture).
  uint64_t ClosureCreateCost = 10;
  /// Invoking a first-class closure.
  uint64_t ClosureCallCost = 8;
  /// Object allocation (plus one cycle per slot).
  uint64_t AllocCost = 10;
  /// Slot read/write.
  uint64_t SlotCost = 1;

  /// One-line description for reports.
  std::string describe() const;
};

} // namespace selspec

#endif // SELSPEC_INTERP_COSTMODEL_H

//===- interp/RuntimeTrap.h - Structured runtime failures ------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution layer's structured failure model.  Every runtime failure
/// is a RuntimeTrap: a trap kind, the source location of the faulting
/// node, a one-line message and a capped Mica-level backtrace.  Traps are
/// values, not exceptions — the interpreter's control channel carries
/// them out to the caller, tools render them and map each kind to a
/// distinct process exit code.
///
/// The kinds split into three families:
///   - program errors (TypeError..UserAbort): the Mica program misbehaved;
///   - resource guards (NodeBudget/RecursionLimit/HeapLimitExceeded):
///     a configurable ResourceLimits bound was hit before the process
///     could be damaged (native stack overflow, OOM, livelock);
///   - violations (BindingViolation, InternalError): the compiler or
///     interpreter itself is wrong; these indicate bugs, not bad input.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_INTERP_RUNTIMETRAP_H
#define SELSPEC_INTERP_RUNTIMETRAP_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace selspec {

/// What went wrong.  Order is part of the tool interface: exit codes are
/// derived per-kind, so renumbering is a breaking CLI change.
enum class TrapKind : uint8_t {
  None = 0,
  /// A primitive or control construct received a value of the wrong kind.
  TypeError,
  /// Dynamic dispatch found no applicable method ("message not
  /// understood").
  NoApplicableMethod,
  /// Dynamic dispatch found applicable methods but no unique most-specific
  /// one.
  AmbiguousDispatch,
  /// Array access outside [0, size).
  IndexOutOfBounds,
  /// Integer division or modulo by zero.
  DivisionByZero,
  /// Slot access on a class that has no such slot.
  UndefinedSlot,
  /// Closure invoked with the wrong number of arguments.
  ArityMismatch,
  /// The `abort(reason)` primitive ran.
  UserAbort,
  /// ResourceLimits::MaxNodes evaluated nodes exceeded (infinite loop
  /// guard).
  NodeBudgetExceeded,
  /// ResourceLimits::MaxDepth activations exceeded (guards the native
  /// C++ stack of the tree-walking interpreter).
  RecursionLimitExceeded,
  /// ResourceLimits::MaxObjects live heap objects exceeded (OOM guard).
  HeapLimitExceeded,
  /// The run's CancelToken deadline expired or a cancel was requested
  /// (RunOptions::Cancel; the long-running-service guard).
  DeadlineExceeded,
  /// ResourceLimits::MaxBytes modeled heap bytes exceeded (the byte-level
  /// OOM guard; object counts alone miss a few huge arrays/strings).
  MemoryBudgetExceeded,
  /// A statically-bound site disagreed with real dispatch (only under
  /// RunOptions::ValidateBindings; always a compiler bug).
  BindingViolation,
  /// Broken interpreter invariant; always a bug.
  InternalError,
};

/// Stable lower-case name of \p K ("type-error", "node-budget-exceeded").
const char *trapKindName(TrapKind K);

/// Process exit code micac uses for \p K.  Program errors map to 10..19,
/// resource guards (including deadlines) to 20..29, violations to 70.
/// None maps to 0.
int trapExitCode(TrapKind K);

/// Inverse of trapExitCode: the kind a worker exit code denotes, or None
/// for codes that are not trap codes (0, 1, 2, ...).  Supervisors (micad)
/// use this to classify reaped workers; 70 maps to InternalError.
TrapKind trapKindForExitCode(int ExitCode);

/// Configurable resource guards of one execution.  All three are enforced
/// on cold paths (allocation, activation entry, the per-node budget
/// check), so hot paths pay a single predictable branch each.
struct ResourceLimits {
  /// Abort runs exceeding this many evaluated nodes.
  uint64_t MaxNodes = UINT64_C(4'000'000'000);
  /// Maximum concurrently active Mica calls (methods + closures), which
  /// bounds the interpreter's native recursion.  Native frame sizes vary
  /// ~10x across build modes, so a native-stack headroom backstop in the
  /// Interpreter also traps RecursionLimitExceeded if the C++ stack runs
  /// low before this many activations (e.g. under ASan's large frames).
  uint32_t MaxDepth = 800;
  /// Maximum live heap objects (strings, arrays, instances, closures).
  uint64_t MaxObjects = UINT64_C(16'000'000);
  /// Maximum modeled heap bytes (support/MemoryBudget.h cost function;
  /// fixed constants, so the budget is identical across build modes and
  /// execution tiers).  Checked before each allocation against the bytes
  /// already charged plus the incoming object's modeled size.
  uint64_t MaxBytes = UINT64_C(8'000'000'000);
};

/// One structured runtime failure.
struct RuntimeTrap {
  TrapKind Kind = TrapKind::None;
  /// Location of the faulting AST node (may be invalid for failures with
  /// no corresponding source node, e.g. callGeneric entry errors).
  SourceLoc Loc;
  /// One-line description, without location or backtrace.
  std::string Message;
  /// Mica-level call backtrace, innermost frame first, rendered method
  /// labels ("main(Int)").  Capped at MaxBacktraceFrames by the producer.
  std::vector<std::string> Backtrace;
  /// Frames dropped beyond the cap.
  size_t FramesElided = 0;

  static constexpr size_t MaxBacktraceFrames = 12;

  bool isTrap() const { return Kind != TrapKind::None; }

  void reset() { *this = RuntimeTrap(); }

  /// Multi-line rendering: message (with location when known), then one
  /// "  in <frame>" line per backtrace entry and a "... N more frame(s)"
  /// marker when frames were elided.
  std::string render() const;
};

} // namespace selspec

#endif // SELSPEC_INTERP_RUNTIMETRAP_H

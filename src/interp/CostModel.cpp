//===- interp/CostModel.cpp - Deterministic execution cost model -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "interp/CostModel.h"

#include <sstream>

using namespace selspec;

std::string CostModel::describe() const {
  std::ostringstream OS;
  OS << "cycles: node=" << NodeCost << " dispatch=" << DynamicDispatchCost
     << " select=" << VersionSelectCost << " call=" << StaticCallCost
     << " prim=" << InlinePrimCost << " predict=" << PredictTestCost
     << " closure-new=" << ClosureCreateCost
     << " closure-call=" << ClosureCallCost << " alloc=" << AllocCost
     << " slot=" << SlotCost;
  return OS.str();
}

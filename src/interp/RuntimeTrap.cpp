//===- interp/RuntimeTrap.cpp - Structured runtime failures ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "interp/RuntimeTrap.h"

#include <sstream>

using namespace selspec;

const char *selspec::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::TypeError:
    return "type-error";
  case TrapKind::NoApplicableMethod:
    return "no-applicable-method";
  case TrapKind::AmbiguousDispatch:
    return "ambiguous-dispatch";
  case TrapKind::IndexOutOfBounds:
    return "index-out-of-bounds";
  case TrapKind::DivisionByZero:
    return "division-by-zero";
  case TrapKind::UndefinedSlot:
    return "undefined-slot";
  case TrapKind::ArityMismatch:
    return "arity-mismatch";
  case TrapKind::UserAbort:
    return "user-abort";
  case TrapKind::NodeBudgetExceeded:
    return "node-budget-exceeded";
  case TrapKind::RecursionLimitExceeded:
    return "recursion-limit-exceeded";
  case TrapKind::HeapLimitExceeded:
    return "heap-limit-exceeded";
  case TrapKind::DeadlineExceeded:
    return "deadline-exceeded";
  case TrapKind::MemoryBudgetExceeded:
    return "memory-budget-exceeded";
  case TrapKind::BindingViolation:
    return "binding-violation";
  case TrapKind::InternalError:
    return "internal-error";
  }
  return "unknown";
}

int selspec::trapExitCode(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return 0;
  case TrapKind::TypeError:
    return 10;
  case TrapKind::NoApplicableMethod:
    return 11;
  case TrapKind::AmbiguousDispatch:
    return 12;
  case TrapKind::IndexOutOfBounds:
    return 13;
  case TrapKind::DivisionByZero:
    return 14;
  case TrapKind::UndefinedSlot:
    return 15;
  case TrapKind::ArityMismatch:
    return 16;
  case TrapKind::UserAbort:
    return 17;
  case TrapKind::NodeBudgetExceeded:
    return 20;
  case TrapKind::RecursionLimitExceeded:
    return 21;
  case TrapKind::HeapLimitExceeded:
    return 22;
  case TrapKind::DeadlineExceeded:
    return 23;
  case TrapKind::MemoryBudgetExceeded:
    return 24;
  case TrapKind::BindingViolation:
  case TrapKind::InternalError:
    return 70;
  }
  return 70;
}

TrapKind selspec::trapKindForExitCode(int ExitCode) {
  switch (ExitCode) {
  case 10: return TrapKind::TypeError;
  case 11: return TrapKind::NoApplicableMethod;
  case 12: return TrapKind::AmbiguousDispatch;
  case 13: return TrapKind::IndexOutOfBounds;
  case 14: return TrapKind::DivisionByZero;
  case 15: return TrapKind::UndefinedSlot;
  case 16: return TrapKind::ArityMismatch;
  case 17: return TrapKind::UserAbort;
  case 20: return TrapKind::NodeBudgetExceeded;
  case 21: return TrapKind::RecursionLimitExceeded;
  case 22: return TrapKind::HeapLimitExceeded;
  case 23: return TrapKind::DeadlineExceeded;
  case 24: return TrapKind::MemoryBudgetExceeded;
  case 70: return TrapKind::InternalError;
  default: return TrapKind::None;
  }
}

std::string RuntimeTrap::render() const {
  std::ostringstream OS;
  OS << Message;
  if (Loc.isValid())
    OS << " (at line " << Loc.Line << ", col " << Loc.Col << ")";
  for (const std::string &Frame : Backtrace)
    OS << "\n  in " << Frame;
  if (FramesElided)
    OS << "\n  ... " << FramesElided << " more frame(s)";
  return OS.str();
}

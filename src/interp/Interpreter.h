//===- interp/Interpreter.h - Instrumented AST interpreter -----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a CompiledProgram, honoring the optimizer's binding
/// annotations (dynamic dispatch, static call, version selection, inlined
/// primitive, class prediction) and charging the CostModel.  The same
/// interpreter both gathers profiles (filling a CallGraph with
/// call-site-exact weighted arcs, the paper's PIC-based profiling) and
/// measures optimized executions (dispatch counts and modeled cycles for
/// Figure 5, invoked-version bits for Figure 6).
///
/// Non-local returns: `return` inside a closure unwinds to the closure's
/// home method activation (Cecil semantics), which the Figure 1
/// `overlaps`/`includes` pattern relies on; inlined bodies catch their own
/// rewritten return boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_INTERP_INTERPRETER_H
#define SELSPEC_INTERP_INTERPRETER_H

#include "interp/CostModel.h"
#include "interp/RuntimeTrap.h"
#include "opt/CompiledProgram.h"
#include "profile/CallGraph.h"
#include "runtime/Dispatcher.h"
#include "runtime/Frame.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"
#include "support/Deadline.h"

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace selspec {

/// Counters of one execution.
struct RunStats {
  uint64_t DynamicDispatches = 0;
  uint64_t VersionSelects = 0;
  uint64_t StaticCalls = 0;
  uint64_t InlinePrims = 0;
  uint64_t PredictedHits = 0;
  uint64_t PredictedMisses = 0;
  uint64_t FeedbackHits = 0;
  uint64_t FeedbackMisses = 0;
  uint64_t ClosuresCreated = 0;
  uint64_t ClosureCalls = 0;
  uint64_t Allocations = 0;
  uint64_t MethodInvocations = 0;
  uint64_t NodesEvaluated = 0;
  /// Deepest concurrently-active Mica call chain (methods + closures);
  /// what ResourceLimits::MaxDepth bounds.
  uint64_t PeakDepth = 0;
  /// Modeled execution time.
  uint64_t Cycles = 0;
  /// Executed-node histogram by AST kind (the `--time-report` node mix).
  std::array<uint64_t, Expr::NumKinds> NodeMix{};

  /// The paper's "number of dynamic dispatches": full dispatches plus
  /// run-time version selections (statically-bound calls that had to be
  /// converted back to dispatches, Section 3.3).
  uint64_t totalDispatches() const {
    return DynamicDispatches + VersionSelects;
  }
};

struct RunOptions {
  /// Record (site, caller, callee, weight) arcs into Profile.
  CallGraph *Profile = nullptr;
  /// Verify every statically-bound send against real dispatch (tests).
  bool ValidateBindings = false;
  /// Resource guards: node budget, recursion depth, heap object count.
  ResourceLimits Limits;
  /// Destination of `print`; null discards output.
  std::ostream *Output = nullptr;
  /// Cooperative stop signal (deadline and/or external cancel); polled
  /// every DeadlineCheckInterval evaluated nodes, trapping
  /// DeadlineExceeded.  Null disables the checks beyond one predictable
  /// branch per node.
  const CancelToken *Cancel = nullptr;
  /// Shared immutable dispatch tables (a CompiledSnapshot's).  When set,
  /// the interpreter's Dispatcher becomes a per-thread cache over them
  /// instead of owning its own; lookup results are identical either way.
  /// Must outlive the interpreter.
  const DispatchTables *Tables = nullptr;
};

class Interpreter {
public:
  /// \p CP is shared, not owned: interpreters only read it (the atomic
  /// invoked bits are the documented exception), so any number of
  /// concurrent interpreters may execute one snapshot.
  explicit Interpreter(const CompiledProgram &CP, RunOptions Opts = {},
                       CostModel Costs = {});

  /// Publishes the accumulated RunStats onto the process-wide metrics
  /// registry (`interp.*` counters).
  ~Interpreter();

  /// Invokes `main(Arg)`.  Returns false on any runtime error (see
  /// trap() / errorMessage()).
  bool callMain(int64_t Arg);

  /// Invokes generic \p Name on \p Args; \p Ok reports success.
  Value callGeneric(const std::string &Name, std::vector<Value> Args,
                    bool &Ok);

  const RunStats &stats() const { return Stats; }
  /// The structured failure of the last run (Kind == None on success).
  const RuntimeTrap &trap() const { return Trap; }
  /// Rendered form of trap() (message + location + backtrace).
  const std::string &errorMessage() const { return Error; }
  Dispatcher &dispatcher() { return Disp; }
  Heap &heap() { return TheHeap; }
  const CostModel &costs() const { return Costs; }

  /// Renders a value for `print` and diagnostics.
  std::string valueToString(const Value &V) const;

private:
  struct Control {
    enum class Kind : uint8_t { None, Return, Error };
    Kind K = Kind::None;
    uint64_t Activation = 0;
    uint32_t Boundary = 0;
    Value Val;

    bool active() const { return K != Kind::None; }
  };

  Value eval(const Expr *E, Frame &F, Control &C);
  Value evalSend(const SendExpr *S, Frame &F, Control &C);
  Value evalInlined(const InlinedExpr *In, Frame &F, Control &C);
  // Call arguments travel on a shared stack (ArgStack): a caller records
  // the current depth (ArgsBase), evaluates its arguments on top, and the
  // callee consumes exactly the entries above ArgsBase.  Entries are
  // indexed, never held by reference across eval, because nested sends
  // push (and may reallocate) above them.
  Value invokeMethod(MethodId M, int VersionIndex, size_t ArgsBase,
                     SourceLoc CallLoc, Control &C);
  Value invokeVersion(const CompiledMethod &CM, size_t ArgsBase,
                      SourceLoc CallLoc, Control &C);
  /// \p Args points at the callee's arguments on ArgStack; primitives
  /// never re-enter eval, so the pointer stays valid throughout.
  Value invokePrim(PrimOp Op, const Value *Args, SourceLoc Loc, Control &C);
  Value dispatchCall(const SendExpr *S, size_t ArgsBase, Control &C);
  bool evalArgs(const std::vector<ExprPtr> &ArgExprs, Frame &F, Control &C);
  void recordArc(CallSiteId Site, MethodId Callee);
  Value fail(Control &C, TrapKind Kind, SourceLoc Loc, std::string Message);
  /// Records a failure that happens outside any Control channel (the
  /// callGeneric entry path).
  void failTop(TrapKind Kind, std::string Message);
  bool chargeNode(const Expr *E, Control &C);
  bool heapHasRoom() const {
    return TheHeap.numAllocated() < Opts.Limits.MaxObjects;
  }
  /// True when allocating \p Incoming more modeled bytes stays within the
  /// per-job byte budget.  Checked before each allocation with the
  /// incoming object's exact modeled size, so the trap fires at the same
  /// byte in every build mode and on both tiers.
  bool heapBytesOk(uint64_t Incoming) const {
    return TheHeap.bytesAllocated() + Incoming <= Opts.Limits.MaxBytes;
  }

  // Out-of-line failure constructors: the hot paths branch to these and
  // the message strings are only built once a failure is certain.
  [[gnu::cold]] [[gnu::noinline]] Value failPrimType(Control &C, PrimOp Op,
                                                     SourceLoc Loc,
                                                     const char *Expected);
  [[gnu::cold]] [[gnu::noinline]] Value failBounds(Control &C, SourceLoc Loc,
                                                   int64_t Index, size_t Size);
  [[gnu::cold]] [[gnu::noinline]] Value failNoSlot(Control &C, SourceLoc Loc,
                                                   ClassId Cls,
                                                   Symbol SlotName);
  /// Dispatch failed for \p S on the classes in ClassScratch; classifies
  /// no-applicable-method vs. ambiguous via a (cold) re-dispatch.
  [[gnu::cold]] [[gnu::noinline]] Value failDispatch(Control &C,
                                                     const SendExpr *S);
  [[gnu::cold]] [[gnu::noinline]] Value failNodeBudget(Control &C,
                                                       SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failDepth(Control &C, SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failNativeStack(Control &C,
                                                        SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failHeapLimit(Control &C,
                                                      SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failMemoryBudget(Control &C,
                                                         SourceLoc Loc,
                                                         uint64_t Requested);
  [[gnu::cold]] [[gnu::noinline]] Value failDeadline(Control &C,
                                                     SourceLoc Loc);
  /// An armed failpoint fired at \p Name (an injected internal fault).
  [[gnu::cold]] [[gnu::noinline]] Value failInjected(Control &C, SourceLoc Loc,
                                                     const char *Name);

  /// How often chargeNode polls RunOptions::Cancel: every
  /// (DeadlineCheckMask + 1) evaluated nodes.  8192 keeps the steady-state
  /// cost to one masked compare per node while bounding deadline overshoot
  /// to microseconds of interpreter work.
  static constexpr uint64_t DeadlineCheckMask = 8191;

  /// True when the native C++ stack consumed below the entry point
  /// exceeds StackBudget.  Backstop for MaxDepth: sanitizer and debug
  /// builds grow native frames enough that a depth limit calibrated for
  /// release builds can still overflow the real stack.
  bool nativeStackLow() const {
    char Probe;
    uintptr_t Here = reinterpret_cast<uintptr_t>(&Probe);
    size_t Used = StackBase >= Here ? StackBase - Here : Here - StackBase;
    return Used > StackBudget;
  }

  const CompiledProgram &CP;
  const Program &P;
  RunOptions Opts;
  CostModel Costs;
  Dispatcher Disp;
  Heap TheHeap;
  FramePool Frames;
  /// Shared argument stack; see the invokeMethod comment for discipline.
  std::vector<Value> ArgStack;
  /// Scratch for per-dispatch class tuples; each use finishes before any
  /// recursive eval, so a single reused buffer is safe.
  std::vector<ClassId> ClassScratch;
  RunStats Stats;
  RuntimeTrap Trap;
  std::string Error;
  uint64_t NextActivation = 1;
  /// Concurrently-active Mica calls (methods + closures); bounded by
  /// Opts.Limits.MaxDepth to keep native C++ recursion in check.
  uint32_t Depth = 0;
  /// Native-stack backstop: address of a local in the public entry point
  /// (refreshed by callGeneric) and the bytes of native stack eval may
  /// consume below it before trapping RecursionLimitExceeded.
  uintptr_t StackBase = 0;
  size_t StackBudget;
  /// Home activation of the code currently executing (the activation a
  /// boundary-0 return unwinds to).
  uint64_t CurrentHome = 0;
  /// Active method invocations, innermost last (for error stack traces).
  std::vector<MethodId> CallStack;
};

} // namespace selspec

#endif // SELSPEC_INTERP_INTERPRETER_H

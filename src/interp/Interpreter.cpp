//===- interp/Interpreter.cpp - Instrumented AST interpreter ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/FailPoint.h"
#include "support/Metrics.h"

#include <ostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace selspec;

namespace {
/// How much native stack eval may consume before the backstop trap fires:
/// three quarters of the soft stack rlimit, capped at 6 MiB.  The cap
/// keeps the remaining headroom (frame sizes vary ~10x between release
/// and sanitizer builds) comfortably larger than one trap-rendering
/// excursion even on the default 8 MiB main-thread stack.
size_t nativeStackBudget() {
  size_t Budget = size_t(6) << 20;
#if defined(__unix__) || defined(__APPLE__)
  struct rlimit RL;
  if (getrlimit(RLIMIT_STACK, &RL) == 0 && RL.rlim_cur != RLIM_INFINITY) {
    size_t ThreeQuarters = static_cast<size_t>(RL.rlim_cur) / 4 * 3;
    if (ThreeQuarters < Budget)
      Budget = ThreeQuarters;
  }
#endif
  return Budget;
}

metrics::Counter CtrDynamicDispatches("interp.dynamic_dispatches");
metrics::Counter CtrVersionSelects("interp.version_selects");
metrics::Counter CtrStaticCalls("interp.static_calls");
metrics::Counter CtrInlinePrims("interp.inline_prims");
metrics::Counter CtrPredictedHits("interp.predicted_hits");
metrics::Counter CtrPredictedMisses("interp.predicted_misses");
metrics::Counter CtrFeedbackHits("interp.feedback_hits");
metrics::Counter CtrFeedbackMisses("interp.feedback_misses");
metrics::Counter CtrClosuresCreated("interp.closures_created");
metrics::Counter CtrClosureCalls("interp.closure_calls");
metrics::Counter CtrAllocations("interp.allocations");
metrics::Counter CtrMethodInvocations("interp.method_invocations");
metrics::Counter CtrNodesEvaluated("interp.nodes_evaluated");
metrics::Counter CtrCycles("interp.cycles");
metrics::Counter CtrBytesAllocated("interp.bytes_allocated");
metrics::Counter CtrDeadlineExpired("deadline.expired");
} // namespace

Interpreter::Interpreter(const CompiledProgram &CP, RunOptions Opts,
                         CostModel Costs)
    : CP(CP), P(CP.program()), Opts(Opts), Costs(Costs),
      Disp(Opts.Tables ? Dispatcher(*Opts.Tables) : Dispatcher(P)),
      StackBudget(nativeStackBudget()) {}

Interpreter::~Interpreter() {
  // RunStats stays a plain struct on the hot path; totals reach the
  // registry once per run, here.
  CtrDynamicDispatches.add(Stats.DynamicDispatches);
  CtrVersionSelects.add(Stats.VersionSelects);
  CtrStaticCalls.add(Stats.StaticCalls);
  CtrInlinePrims.add(Stats.InlinePrims);
  CtrPredictedHits.add(Stats.PredictedHits);
  CtrPredictedMisses.add(Stats.PredictedMisses);
  CtrFeedbackHits.add(Stats.FeedbackHits);
  CtrFeedbackMisses.add(Stats.FeedbackMisses);
  CtrClosuresCreated.add(Stats.ClosuresCreated);
  CtrClosureCalls.add(Stats.ClosureCalls);
  CtrAllocations.add(Stats.Allocations);
  CtrMethodInvocations.add(Stats.MethodInvocations);
  CtrNodesEvaluated.add(Stats.NodesEvaluated);
  CtrCycles.add(Stats.Cycles);
  CtrBytesAllocated.add(TheHeap.bytesAllocated());
}

std::string Interpreter::valueToString(const Value &V) const {
  switch (V.kind()) {
  case Value::Kind::Nil:
    return "nil";
  case Value::Kind::Int:
    return std::to_string(V.asInt());
  case Value::Kind::Bool:
    return V.asBool() ? "true" : "false";
  case Value::Kind::Object: {
    const Obj *O = V.asObject();
    switch (O->payload()) {
    case Obj::Payload::Str:
      return O->Str;
    case Obj::Payload::Array: {
      std::ostringstream OS;
      OS << '[';
      for (size_t I = 0; I != O->Slots.size(); ++I) {
        if (I)
          OS << ", ";
        OS << valueToString(O->Slots[I]);
      }
      OS << ']';
      return OS.str();
    }
    case Obj::Payload::Closure:
      return "<closure>";
    case Obj::Payload::Instance:
      return "<" + P.Syms.name(P.Classes.info(O->getClass()).Name) + ">";
    }
  }
  }
  return "?";
}

Value Interpreter::fail(Control &C, TrapKind Kind, SourceLoc Loc,
                        std::string Message) {
  // First failure wins; anything signaled while already unwinding an
  // error is dropped.
  if (C.K != Control::Kind::Error) {
    C.K = Control::Kind::Error;
    Trap.reset();
    Trap.Kind = Kind;
    Trap.Loc = Loc;
    Trap.Message = std::move(Message);
    // Attach a bounded stack trace, innermost frame first.
    for (auto It = CallStack.rbegin(); It != CallStack.rend(); ++It) {
      if (Trap.Backtrace.size() == RuntimeTrap::MaxBacktraceFrames) {
        Trap.FramesElided =
            CallStack.size() - RuntimeTrap::MaxBacktraceFrames;
        break;
      }
      Trap.Backtrace.push_back(P.methodLabel(*It));
    }
    Error = Trap.render();
  }
  return Value::nil();
}

void Interpreter::failTop(TrapKind Kind, std::string Message) {
  Trap.reset();
  Trap.Kind = Kind;
  Trap.Message = std::move(Message);
  Error = Trap.render();
}

Value Interpreter::failPrimType(Control &C, PrimOp Op, SourceLoc Loc,
                                const char *Expected) {
  return fail(C, TrapKind::TypeError, Loc,
              std::string("primitive '") + primOpName(Op) + "' expects " +
                  Expected);
}

Value Interpreter::failBounds(Control &C, SourceLoc Loc, int64_t Index,
                              size_t Size) {
  return fail(C, TrapKind::IndexOutOfBounds, Loc,
              "array index " + std::to_string(Index) +
                  " out of bounds (size " + std::to_string(Size) + ")");
}

Value Interpreter::failNoSlot(Control &C, SourceLoc Loc, ClassId Cls,
                              Symbol SlotName) {
  return fail(C, TrapKind::UndefinedSlot, Loc,
              "class '" + P.Syms.name(P.Classes.info(Cls).Name) +
                  "' has no slot '" + P.Syms.name(SlotName) + "'");
}

Value Interpreter::failDispatch(Control &C, const SendExpr *S) {
  // Re-dispatch (cold) to tell "no applicable method" from "ambiguous".
  bool Ambiguous = false;
  P.dispatch(S->Generic, ClassScratch, &Ambiguous);
  if (Ambiguous)
    return fail(C, TrapKind::AmbiguousDispatch, S->getLoc(),
                "message '" + P.genericLabel(S->Generic) +
                    "' is ambiguous for the given argument classes");
  return fail(C, TrapKind::NoApplicableMethod, S->getLoc(),
              "message '" + P.genericLabel(S->Generic) + "' not understood");
}

Value Interpreter::failNodeBudget(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::NodeBudgetExceeded, Loc,
              "execution exceeded the node budget of " +
                  std::to_string(Opts.Limits.MaxNodes) +
                  " nodes (infinite loop?)");
}

Value Interpreter::failDepth(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::RecursionLimitExceeded, Loc,
              "call depth exceeded the recursion limit of " +
                  std::to_string(Opts.Limits.MaxDepth) + " activations");
}

Value Interpreter::failNativeStack(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::RecursionLimitExceeded, Loc,
              "recursion exhausted the native stack headroom (" +
                  std::to_string(StackBudget) +
                  " bytes) before reaching the recursion limit of " +
                  std::to_string(Opts.Limits.MaxDepth) + " activations");
}

Value Interpreter::failHeapLimit(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::HeapLimitExceeded, Loc,
              "allocation exceeded the heap limit of " +
                  std::to_string(Opts.Limits.MaxObjects) + " objects");
}

Value Interpreter::failMemoryBudget(Control &C, SourceLoc Loc,
                                    uint64_t Requested) {
  return fail(C, TrapKind::MemoryBudgetExceeded, Loc,
              "allocation of " + std::to_string(Requested) +
                  " modeled bytes exceeded the memory budget of " +
                  std::to_string(Opts.Limits.MaxBytes) + " bytes (" +
                  std::to_string(TheHeap.bytesAllocated()) +
                  " already allocated)");
}

Value Interpreter::failDeadline(Control &C, SourceLoc Loc) {
  CtrDeadlineExpired.add();
  return fail(C, TrapKind::DeadlineExceeded, Loc,
              Opts.Cancel ? Opts.Cancel->reason() : "execution cancelled");
}

Value Interpreter::failInjected(Control &C, SourceLoc Loc, const char *Name) {
  return fail(C, TrapKind::InternalError, Loc,
              failpoint::failureMessage(Name));
}

bool Interpreter::chargeNode(const Expr *E, Control &C) {
  ++Stats.NodesEvaluated;
  Stats.Cycles += Costs.NodeCost;
  if (Stats.NodesEvaluated > Opts.Limits.MaxNodes) {
    failNodeBudget(C, E->getLoc());
    return false;
  }
  // Sampled cooperative-cancellation poll: the clock is only read every
  // DeadlineCheckMask + 1 nodes, so unarmed runs pay one masked compare.
  if ((Stats.NodesEvaluated & DeadlineCheckMask) == 0 && Opts.Cancel &&
      Opts.Cancel->stopRequested()) {
    failDeadline(C, E->getLoc());
    return false;
  }
  return true;
}

void Interpreter::recordArc(CallSiteId Site, MethodId Callee) {
  if (!Opts.Profile || !Site.isValid())
    return;
  Opts.Profile->addHits(Site, P.callSite(Site).Owner, Callee);
}

namespace {
/// Truncates the shared argument stack back to a recorded depth on scope
/// exit, covering every return path (including failures).
struct ArgStackScope {
  std::vector<Value> &S;
  size_t Base;
  ~ArgStackScope() { S.resize(Base); }
};
} // namespace

bool Interpreter::evalArgs(const std::vector<ExprPtr> &ArgExprs, Frame &F,
                           Control &C) {
  for (const ExprPtr &A : ArgExprs) {
    Value V = eval(A.get(), F, C);
    if (C.active())
      return false;
    ArgStack.push_back(V);
  }
  return true;
}

Value Interpreter::eval(const Expr *E, Frame &F, Control &C) {
  if (!chargeNode(E, C))
    return Value::nil();
  ++Stats.NodeMix[static_cast<size_t>(E->getKind())];

  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return Value::ofInt(cast<IntLitExpr>(E)->Value);
  case Expr::Kind::BoolLit:
    return Value::ofBool(cast<BoolLitExpr>(E)->Value);
  case Expr::Kind::StrLit: {
    if (!heapHasRoom())
      return failHeapLimit(C, E->getLoc());
    const std::string &S = cast<StrLitExpr>(E)->Value;
    if (uint64_t N = membudget::stringBytes(S.size()); !heapBytesOk(N))
      return failMemoryBudget(C, E->getLoc(), N);
    return Value::ofObj(TheHeap.newString(S));
  }
  case Expr::Kind::NilLit:
    return Value::nil();

  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    switch (V->Slot.Loc) {
    case VarLoc::Slot:
      return F.slot(V->Slot.Index);
    case VarLoc::Cell:
      assert(F.cell(V->Slot.Index) && "read of a cell before its let ran");
      return F.cell(V->Slot.Index)->V;
    case VarLoc::Capture:
      return F.capture(V->Slot.Index)->V;
    case VarLoc::Unresolved:
      break;
    }
    return fail(C, TrapKind::InternalError, E->getLoc(),
                "internal: unresolved variable '" + P.Syms.name(V->Name) +
                    "'");
  }

  case Expr::Kind::AssignVar: {
    const auto *A = cast<AssignVarExpr>(E);
    Value V = eval(A->Value.get(), F, C);
    if (C.active())
      return Value::nil();
    switch (A->Slot.Loc) {
    case VarLoc::Slot:
      F.slot(A->Slot.Index) = V;
      return V;
    case VarLoc::Cell:
      assert(F.cell(A->Slot.Index) && "write to a cell before its let ran");
      F.cell(A->Slot.Index)->V = V;
      return V;
    case VarLoc::Capture:
      F.capture(A->Slot.Index)->V = V;
      return V;
    case VarLoc::Unresolved:
      break;
    }
    return fail(C, TrapKind::InternalError, E->getLoc(),
                "internal: assignment to unresolved variable '" +
                    P.Syms.name(A->Name) + "'");
  }

  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    Value V = eval(L->Init.get(), F, C);
    if (C.active())
      return Value::nil();
    // A let executes once per enclosing activation *visit*: a let inside a
    // loop body re-executes each iteration, and a captured one must then
    // produce a fresh cell so closures made in different iterations don't
    // share state (matching the old per-Seq Env scopes).
    if (L->Slot.Loc == VarLoc::Cell)
      F.cell(L->Slot.Index) = std::make_shared<Cell>(Cell{V});
    else
      F.slot(L->Slot.Index) = V;
    return Value::nil();
  }

  case Expr::Kind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    Value Last = Value::nil();
    for (const ExprPtr &Elem : S->Elems) {
      Last = eval(Elem.get(), F, C);
      if (C.active())
        return Value::nil();
    }
    return Last;
  }

  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    Value Cond = eval(I->Cond.get(), F, C);
    if (C.active())
      return Value::nil();
    if (!Cond.isBool())
      return fail(C, TrapKind::TypeError, I->Cond->getLoc(),
                  "if condition is not a boolean");
    if (Cond.asBool())
      return eval(I->Then.get(), F, C);
    if (I->Else)
      return eval(I->Else.get(), F, C);
    return Value::nil();
  }

  case Expr::Kind::While: {
    const auto *W = cast<WhileExpr>(E);
    for (;;) {
      Value Cond = eval(W->Cond.get(), F, C);
      if (C.active())
        return Value::nil();
      if (!Cond.isBool())
        return fail(C, TrapKind::TypeError, W->Cond->getLoc(),
                    "while condition is not a boolean");
      if (!Cond.asBool())
        return Value::nil();
      eval(W->Body.get(), F, C);
      if (C.active())
        return Value::nil();
    }
  }

  case Expr::Kind::Send:
    return evalSend(cast<SendExpr>(E), F, C);

  case Expr::Kind::ClosureCall: {
    const auto *Call = cast<ClosureCallExpr>(E);
    Value Callee = eval(Call->Callee.get(), F, C);
    if (C.active())
      return Value::nil();
    const size_t ArgsBase = ArgStack.size();
    ArgStackScope ArgsScope{ArgStack, ArgsBase};
    if (!evalArgs(Call->Args, F, C))
      return Value::nil();
    if (!Callee.isObject() ||
        Callee.asObject()->payload() != Obj::Payload::Closure)
      return fail(C, TrapKind::TypeError, E->getLoc(),
                  "called value is not a closure");
    Obj *Closure = Callee.asObject();
    const ClosureLitExpr *Lit = Closure->Lit;
    const size_t NumArgs = ArgStack.size() - ArgsBase;
    if (Lit->Params.size() != NumArgs)
      return fail(C, TrapKind::ArityMismatch, E->getLoc(),
                  "closure called with wrong number of arguments");
    if (Depth >= Opts.Limits.MaxDepth)
      return failDepth(C, E->getLoc());
    if (nativeStackLow())
      return failNativeStack(C, E->getLoc());
    if (failpoint::anyArmed() && failpoint::triggered("interp.frame-acquire"))
      return failInjected(C, E->getLoc(), "interp.frame-acquire");

    ++Stats.ClosureCalls;
    Stats.Cycles += Costs.ClosureCallCost;

    FrameGuard G(Frames, Lit->Layout, &Closure->Captured);
    Frame &Inner = G.frame();
    for (size_t I = 0; I != NumArgs; ++I)
      Inner.bindParam(Lit->Layout.Params[I], ArgStack[ArgsBase + I]);

    uint64_t SavedHome = CurrentHome;
    CurrentHome = Closure->HomeActivation;
    ++Depth;
    if (Depth > Stats.PeakDepth)
      Stats.PeakDepth = Depth;
    Value Result = eval(Lit->Body.get(), Inner, C);
    --Depth;
    CurrentHome = SavedHome;
    return Result;
  }

  case Expr::Kind::ClosureLit: {
    const auto *Lit = cast<ClosureLitExpr>(E);
    if (!heapHasRoom())
      return failHeapLimit(C, E->getLoc());
    if (uint64_t N = membudget::closureBytes(Lit->Captures.size());
        !heapBytesOk(N))
      return failMemoryBudget(C, E->getLoc(), N);
    ++Stats.ClosuresCreated;
    Stats.Cycles += Costs.ClosureCreateCost;
    std::vector<CellPtr> Captured;
    Captured.reserve(Lit->Captures.size());
    for (const CaptureSpec &CS : Lit->Captures)
      Captured.push_back(CS.Source == CaptureSpec::From::EnclosingCell
                             ? F.cell(CS.Index)
                             : F.capture(CS.Index));
    return Value::ofObj(
        TheHeap.newClosure(Lit, std::move(Captured), CurrentHome));
  }

  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    if (!heapHasRoom())
      return failHeapLimit(C, E->getLoc());
    const ClassInfo &Info = P.Classes.info(N->Class);
    if (uint64_t B = membudget::instanceBytes(Info.Layout.size());
        !heapBytesOk(B))
      return failMemoryBudget(C, E->getLoc(), B);
    ++Stats.Allocations;
    Stats.Cycles += Costs.AllocCost + Info.Layout.size();
    Obj *O = TheHeap.newInstance(
        N->Class, static_cast<unsigned>(Info.Layout.size()));
    for (const auto &[SlotName, Init] : N->Inits) {
      Value V = eval(Init.get(), F, C);
      if (C.active())
        return Value::nil();
      int Idx = P.Classes.slotIndex(N->Class, SlotName);
      assert(Idx >= 0 && "resolver checked slot names");
      O->Slots[Idx] = V;
    }
    return Value::ofObj(O);
  }

  case Expr::Kind::SlotGet: {
    const auto *G = cast<SlotGetExpr>(E);
    Value ObjV = eval(G->Object.get(), F, C);
    if (C.active())
      return Value::nil();
    if (!ObjV.isObject() ||
        ObjV.asObject()->payload() != Obj::Payload::Instance)
      return fail(C, TrapKind::TypeError, E->getLoc(),
                  "slot access '" + P.Syms.name(G->SlotName) +
                      "' on a non-instance value");
    Obj *O = ObjV.asObject();
    int Idx = P.Classes.slotIndex(O->getClass(), G->SlotName);
    if (Idx < 0)
      return failNoSlot(C, E->getLoc(), O->getClass(), G->SlotName);
    Stats.Cycles += Costs.SlotCost;
    return O->Slots[Idx];
  }

  case Expr::Kind::SlotSet: {
    const auto *S = cast<SlotSetExpr>(E);
    Value ObjV = eval(S->Object.get(), F, C);
    if (C.active())
      return Value::nil();
    Value V = eval(S->Value.get(), F, C);
    if (C.active())
      return Value::nil();
    if (!ObjV.isObject() ||
        ObjV.asObject()->payload() != Obj::Payload::Instance)
      return fail(C, TrapKind::TypeError, E->getLoc(),
                  "slot assignment on a non-instance value");
    Obj *O = ObjV.asObject();
    int Idx = P.Classes.slotIndex(O->getClass(), S->SlotName);
    if (Idx < 0)
      return failNoSlot(C, E->getLoc(), O->getClass(), S->SlotName);
    Stats.Cycles += Costs.SlotCost;
    O->Slots[Idx] = V;
    return V;
  }

  case Expr::Kind::Return: {
    const auto *R = cast<ReturnExpr>(E);
    Value V = Value::nil();
    if (R->Value) {
      V = eval(R->Value.get(), F, C);
      if (C.active())
        return Value::nil();
    }
    C.K = Control::Kind::Return;
    C.Activation = CurrentHome;
    C.Boundary = R->Boundary;
    C.Val = V;
    return Value::nil();
  }

  case Expr::Kind::Inlined:
    return evalInlined(cast<InlinedExpr>(E), F, C);
  }
  return fail(C, TrapKind::InternalError, E->getLoc(),
              "internal: unknown expression kind");
}

Value Interpreter::evalInlined(const InlinedExpr *In, Frame &F, Control &C) {
  // Inlined bodies recurse natively without raising Depth, so they need
  // their own native-stack check.
  if (nativeStackLow())
    return failNativeStack(C, In->getLoc());
  // Inlined bindings live in the caller's frame.  Interleaving each store
  // with its initializer is safe even though the old code evaluated all
  // initializers first: every binding occurrence has its own slot, so an
  // initializer can never observe an earlier binding's store (references
  // inside initializers were resolved before these bindings were declared).
  for (size_t I = 0; I != In->Bindings.size(); ++I) {
    Value V = eval(In->Bindings[I].second.get(), F, C);
    if (C.active())
      return Value::nil();
    const SlotRef &Where = In->BindingSlots[I];
    if (Where.Loc == VarLoc::Cell)
      F.cell(Where.Index) = std::make_shared<Cell>(Cell{V});
    else
      F.slot(Where.Index) = V;
  }

  Value Result = eval(In->Body.get(), F, C);
  // Catch returns targeting this inline boundary within our activation.
  if (C.K == Control::Kind::Return && C.Activation == CurrentHome &&
      C.Boundary == In->Boundary) {
    Result = C.Val;
    C = Control();
  }
  return Result;
}

Value Interpreter::invokeMethod(MethodId M, int VersionIndex,
                                size_t ArgsBase, SourceLoc CallLoc,
                                Control &C) {
  if (VersionIndex < 0)
    return fail(C, TrapKind::InternalError, CallLoc,
                "internal: no compiled version matches arguments of " +
                    P.methodLabel(M));
  return invokeVersion(CP.version(static_cast<uint32_t>(VersionIndex)),
                       ArgsBase, CallLoc, C);
}

Value Interpreter::invokeVersion(const CompiledMethod &CM, size_t ArgsBase,
                                 SourceLoc CallLoc, Control &C) {
  const MethodInfo &M = P.method(CM.Source);
  CP.markInvoked(CM.Index);

  if (M.isBuiltin())
    return invokePrim(M.Prim, ArgStack.data() + ArgsBase, CallLoc, C);

  if (Depth >= Opts.Limits.MaxDepth)
    return failDepth(C, CallLoc);
  if (nativeStackLow())
    return failNativeStack(C, CallLoc);
  if (failpoint::anyArmed() && failpoint::triggered("interp.frame-acquire"))
    return failInjected(C, CallLoc, "interp.frame-acquire");

  ++Stats.MethodInvocations;
  uint64_t Activation = NextActivation++;
  FrameGuard G(Frames, CM.Layout, nullptr);
  Frame &F = G.frame();
  const size_t NumArgs = ArgStack.size() - ArgsBase;
  assert(CM.Layout.Params.size() == NumArgs &&
         "dispatcher arity mismatch");
  for (size_t I = 0; I != NumArgs; ++I)
    F.bindParam(CM.Layout.Params[I], ArgStack[ArgsBase + I]);

  uint64_t SavedHome = CurrentHome;
  CurrentHome = Activation;
  CallStack.push_back(CM.Source);
  ++Depth;
  if (Depth > Stats.PeakDepth)
    Stats.PeakDepth = Depth;
  Value Result = eval(CM.Body.get(), F, C);
  --Depth;
  CallStack.pop_back();
  CurrentHome = SavedHome;

  if (C.K == Control::Kind::Return && C.Activation == Activation &&
      C.Boundary == 0) {
    Result = C.Val;
    C = Control();
  }
  return Result;
}

Value Interpreter::dispatchCall(const SendExpr *S, size_t ArgsBase,
                                Control &C) {
  ClassScratch.clear();
  for (size_t I = ArgsBase; I != ArgStack.size(); ++I)
    ClassScratch.push_back(ArgStack[I].classOf());

  MethodId Target = Disp.lookup(S->Generic, ClassScratch, S->Site);
  if (!Target.isValid())
    return failDispatch(C, S);

  recordArc(S->Site, Target);
  ++Stats.DynamicDispatches;
  Stats.Cycles += Costs.DynamicDispatchCost;
  return invokeMethod(Target, CP.selectVersion(Target, ClassScratch),
                      ArgsBase, S->getLoc(), C);
}

Value Interpreter::evalSend(const SendExpr *S, Frame &F, Control &C) {
  const size_t ArgsBase = ArgStack.size();
  ArgStackScope ArgsScope{ArgStack, ArgsBase};
  if (!evalArgs(S->Args, F, C))
    return Value::nil();

  switch (S->Binding.Kind) {
  case SendBindKind::Dynamic:
    return dispatchCall(S, ArgsBase, C);

  case SendBindKind::Static: {
    const CompiledMethod &CM = CP.version(S->Binding.TargetVersion);
    if (Opts.ValidateBindings) {
      std::vector<ClassId> Classes;
      for (size_t I = ArgsBase; I != ArgStack.size(); ++I)
        Classes.push_back(ArgStack[I].classOf());
      MethodId Real = P.dispatch(S->Generic, Classes);
      if (Real != CM.Source)
        return fail(C, TrapKind::BindingViolation, S->getLoc(),
                    "static binding violation at site " +
                        std::to_string(S->Site.value()) + ": bound to " +
                        P.methodLabel(CM.Source) + " but dispatch picks " +
                        (Real.isValid() ? P.methodLabel(Real) : "<none>"));
      if (!tupleContains(CM.Tuple, Classes))
        return fail(C, TrapKind::BindingViolation, S->getLoc(),
                    "static version binding violation at site " +
                        std::to_string(S->Site.value()));
    }
    recordArc(S->Site, CM.Source);
    ++Stats.StaticCalls;
    Stats.Cycles += Costs.StaticCallCost;
    return invokeVersion(CM, ArgsBase, S->getLoc(), C);
  }

  case SendBindKind::StaticSelect: {
    ClassScratch.clear();
    for (size_t I = ArgsBase; I != ArgStack.size(); ++I)
      ClassScratch.push_back(ArgStack[I].classOf());
    if (Opts.ValidateBindings) {
      MethodId Real = P.dispatch(S->Generic, ClassScratch);
      if (Real != S->Binding.Target)
        return fail(C, TrapKind::BindingViolation, S->getLoc(),
                    "static-select binding violation at site " +
                        std::to_string(S->Site.value()));
    }
    recordArc(S->Site, S->Binding.Target);
    ++Stats.VersionSelects;
    Stats.Cycles += Costs.VersionSelectCost;
    return invokeMethod(S->Binding.Target,
                        CP.selectVersion(S->Binding.Target, ClassScratch),
                        ArgsBase, S->getLoc(), C);
  }

  case SendBindKind::InlinePrim: {
    const MethodInfo &M = P.method(S->Binding.Target);
    if (Opts.ValidateBindings) {
      std::vector<ClassId> Classes;
      for (size_t I = ArgsBase; I != ArgStack.size(); ++I)
        Classes.push_back(ArgStack[I].classOf());
      if (P.dispatch(S->Generic, Classes) != S->Binding.Target)
        return fail(C, TrapKind::BindingViolation, S->getLoc(),
                    "inline-prim binding violation at site " +
                        std::to_string(S->Site.value()));
    }
    recordArc(S->Site, S->Binding.Target);
    ++Stats.InlinePrims;
    Stats.Cycles += Costs.InlinePrimCost;
    return invokePrim(M.Prim, ArgStack.data() + ArgsBase, S->getLoc(), C);
  }

  case SendBindKind::FeedbackGuard: {
    ClassScratch.clear();
    for (size_t I = ArgsBase; I != ArgStack.size(); ++I)
      ClassScratch.push_back(ArgStack[I].classOf());
    // The modeled machine executes an inline-cache class test; this
    // implementation realizes the test via the dispatcher.
    Stats.Cycles += Costs.PredictTestCost;
    MethodId Real = Disp.lookup(S->Generic, ClassScratch, S->Site);
    if (!Real.isValid())
      return failDispatch(C, S);
    recordArc(S->Site, Real);
    if (Real == S->Binding.Target) {
      ++Stats.FeedbackHits;
      const MethodInfo &M = P.method(Real);
      if (M.isBuiltin()) {
        Stats.Cycles += Costs.InlinePrimCost;
        return invokePrim(M.Prim, ArgStack.data() + ArgsBase, S->getLoc(), C);
      }
      Stats.Cycles += Costs.StaticCallCost;
      return invokeMethod(Real, CP.selectVersion(Real, ClassScratch),
                          ArgsBase, S->getLoc(), C);
    }
    ++Stats.FeedbackMisses;
    ++Stats.DynamicDispatches;
    Stats.Cycles += Costs.DynamicDispatchCost;
    return invokeMethod(Real, CP.selectVersion(Real, ClassScratch),
                        ArgsBase, S->getLoc(), C);
  }

  case SendBindKind::Predicted: {
    Stats.Cycles += Costs.PredictTestCost;
    bool Hit = true;
    for (size_t I = ArgsBase; I != ArgStack.size(); ++I)
      Hit &= ArgStack[I].classOf() == S->Binding.PredictedClass;
    if (Hit) {
      recordArc(S->Site, S->Binding.Target);
      ++Stats.PredictedHits;
      Stats.Cycles += Costs.InlinePrimCost;
      return invokePrim(P.method(S->Binding.Target).Prim,
                        ArgStack.data() + ArgsBase, S->getLoc(), C);
    }
    ++Stats.PredictedMisses;
    return dispatchCall(S, ArgsBase, C);
  }
  }
  return fail(C, TrapKind::InternalError, S->getLoc(),
              "internal: unknown binding kind");
}

Value Interpreter::invokePrim(PrimOp Op, const Value *Args, SourceLoc Loc,
                              Control &C) {
  auto WantInt = [&](const Value &V, int64_t &Out) {
    if (!V.isInt()) {
      failPrimType(C, Op, Loc, "an integer");
      return false;
    }
    Out = V.asInt();
    return true;
  };
  auto WantStr = [&](const Value &V, const std::string *&Out) {
    if (!V.isObject() || V.asObject()->payload() != Obj::Payload::Str) {
      failPrimType(C, Op, Loc, "a string");
      return false;
    }
    Out = &V.asObject()->Str;
    return true;
  };
  auto WantArray = [&](const Value &V, Obj *&Out) {
    if (!V.isObject() || V.asObject()->payload() != Obj::Payload::Array) {
      failPrimType(C, Op, Loc, "an array");
      return false;
    }
    Out = V.asObject();
    return true;
  };

  int64_t A = 0, B = 0;
  const std::string *SA = nullptr, *SB = nullptr;
  Obj *Arr = nullptr;

  switch (Op) {
  case PrimOp::None:
    return fail(C, TrapKind::InternalError, Loc,
                "internal: invoking PrimOp::None");

  case PrimOp::IntAdd:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofInt(A + B);
  case PrimOp::IntSub:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofInt(A - B);
  case PrimOp::IntMul:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofInt(A * B);
  case PrimOp::IntDiv:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    if (B == 0)
      return fail(C, TrapKind::DivisionByZero, Loc, "division by zero");
    return Value::ofInt(A / B);
  case PrimOp::IntMod:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    if (B == 0)
      return fail(C, TrapKind::DivisionByZero, Loc, "modulo by zero");
    return Value::ofInt(A % B);
  case PrimOp::IntNeg:
    if (!WantInt(Args[0], A))
      return Value::nil();
    return Value::ofInt(-A);
  case PrimOp::IntLess:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A < B);
  case PrimOp::IntLessEq:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A <= B);
  case PrimOp::IntGreater:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A > B);
  case PrimOp::IntGreaterEq:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A >= B);
  case PrimOp::IntEq:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A == B);
  case PrimOp::IntNe:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A != B);

  case PrimOp::BoolNot:
    if (!Args[0].isBool())
      return fail(C, TrapKind::TypeError, Loc, "'not' expects a boolean");
    return Value::ofBool(!Args[0].asBool());
  case PrimOp::BoolEq:
    if (!Args[0].isBool() || !Args[1].isBool())
      return fail(C, TrapKind::TypeError, Loc,
                  "'==' on booleans expects booleans");
    return Value::ofBool(Args[0].asBool() == Args[1].asBool());

  case PrimOp::AnyEq:
    return Value::ofBool(Args[0].identicalTo(Args[1]));
  case PrimOp::AnyNe:
    return Value::ofBool(!Args[0].identicalTo(Args[1]));

  case PrimOp::StrConcat:
    if (!WantStr(Args[0], SA) || !WantStr(Args[1], SB))
      return Value::nil();
    if (!heapHasRoom())
      return failHeapLimit(C, Loc);
    if (uint64_t N = membudget::stringBytes(SA->size() + SB->size());
        !heapBytesOk(N))
      return failMemoryBudget(C, Loc, N);
    return Value::ofObj(TheHeap.newString(*SA + *SB));
  case PrimOp::StrEq:
    if (!WantStr(Args[0], SA) || !WantStr(Args[1], SB))
      return Value::nil();
    return Value::ofBool(*SA == *SB);
  case PrimOp::StrLess:
    if (!WantStr(Args[0], SA) || !WantStr(Args[1], SB))
      return Value::nil();
    return Value::ofBool(*SA < *SB);
  case PrimOp::StrSize:
    if (!WantStr(Args[0], SA))
      return Value::nil();
    return Value::ofInt(static_cast<int64_t>(SA->size()));

  case PrimOp::ArrayNew:
    if (!WantInt(Args[0], A))
      return Value::nil();
    if (A < 0)
      return fail(C, TrapKind::TypeError, Loc,
                  "array size must be non-negative");
    if (!heapHasRoom())
      return failHeapLimit(C, Loc);
    if (uint64_t N = membudget::arrayBytes(static_cast<uint64_t>(A));
        !heapBytesOk(N))
      return failMemoryBudget(C, Loc, N);
    ++Stats.Allocations;
    Stats.Cycles += Costs.AllocCost + static_cast<uint64_t>(A);
    return Value::ofObj(TheHeap.newArray(static_cast<size_t>(A)));
  case PrimOp::ArrayAt:
    if (!WantArray(Args[0], Arr) || !WantInt(Args[1], A))
      return Value::nil();
    if (A < 0 || static_cast<size_t>(A) >= Arr->Slots.size())
      return failBounds(C, Loc, A, Arr->Slots.size());
    Stats.Cycles += Costs.SlotCost;
    return Arr->Slots[static_cast<size_t>(A)];
  case PrimOp::ArrayPut:
    if (!WantArray(Args[0], Arr) || !WantInt(Args[1], A))
      return Value::nil();
    if (A < 0 || static_cast<size_t>(A) >= Arr->Slots.size())
      return failBounds(C, Loc, A, Arr->Slots.size());
    Stats.Cycles += Costs.SlotCost;
    Arr->Slots[static_cast<size_t>(A)] = Args[2];
    return Args[2];
  case PrimOp::ArraySize:
    if (!WantArray(Args[0], Arr))
      return Value::nil();
    return Value::ofInt(static_cast<int64_t>(Arr->Slots.size()));

  case PrimOp::Print:
    if (Opts.Output)
      *Opts.Output << valueToString(Args[0]) << '\n';
    return Value::nil();
  case PrimOp::ClassName: {
    if (!heapHasRoom())
      return failHeapLimit(C, Loc);
    const std::string &Name =
        P.Syms.name(P.Classes.info(Args[0].classOf()).Name);
    if (uint64_t N = membudget::stringBytes(Name.size()); !heapBytesOk(N))
      return failMemoryBudget(C, Loc, N);
    return Value::ofObj(TheHeap.newString(Name));
  }
  case PrimOp::Abort:
    return fail(C, TrapKind::UserAbort, Loc,
                "abort: " + valueToString(Args[0]));
  }
  return fail(C, TrapKind::InternalError, Loc,
              "internal: unknown primitive");
}

Value Interpreter::callGeneric(const std::string &Name,
                               std::vector<Value> Args, bool &Ok) {
  Ok = false;
  Error.clear();
  Trap.reset();
  // Anchor the native-stack backstop at the point the embedder entered;
  // see nativeStackLow().
  char StackProbe;
  StackBase = reinterpret_cast<uintptr_t>(&StackProbe);
  // A deadline that expired before entry fails immediately rather than
  // waiting for the first sampled chargeNode poll.
  if (Opts.Cancel && Opts.Cancel->stopRequested()) {
    CtrDeadlineExpired.add();
    failTop(TrapKind::DeadlineExceeded, Opts.Cancel->reason());
    return Value::nil();
  }
  Symbol S = P.Syms.find(Name);
  GenericId G = S.isValid()
                    ? P.lookupGeneric(S, static_cast<unsigned>(Args.size()))
                    : GenericId();
  if (!G.isValid()) {
    failTop(TrapKind::NoApplicableMethod,
            "no generic function '" + Name + "/" +
                std::to_string(Args.size()) + "'");
    return Value::nil();
  }
  std::vector<ClassId> Classes;
  for (const Value &V : Args)
    Classes.push_back(V.classOf());
  bool Ambiguous = false;
  MethodId Target = P.dispatch(G, Classes, &Ambiguous);
  if (!Target.isValid()) {
    failTop(Ambiguous ? TrapKind::AmbiguousDispatch
                      : TrapKind::NoApplicableMethod,
            Ambiguous ? "message '" + Name + "' is ambiguous"
                      : "message '" + Name + "' not understood");
    return Value::nil();
  }

  const size_t ArgsBase = ArgStack.size();
  ArgStackScope ArgsScope{ArgStack, ArgsBase};
  for (const Value &V : Args)
    ArgStack.push_back(V);
  Control C;
  Value Result = invokeMethod(Target, CP.selectVersion(Target, Classes),
                              ArgsBase, SourceLoc(), C);
  if (C.K == Control::Kind::Error)
    return Value::nil();
  if (C.K == Control::Kind::Return) {
    failTop(TrapKind::InternalError,
            "non-local return escaped its home activation");
    return Value::nil();
  }
  Ok = true;
  return Result;
}

bool Interpreter::callMain(int64_t Arg) {
  bool Ok = false;
  callGeneric("main", {Value::ofInt(Arg)}, Ok);
  return Ok;
}

//===- lang/Token.h - Mica tokens ------------------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the Mica language, the small dynamically-typed
/// object-oriented language (classes, multi-methods, closures) that stands
/// in for Cecil in this reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_TOKEN_H
#define SELSPEC_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace selspec {

enum class TokenKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  StrLit,

  // Keywords.
  KwClass,
  KwIsa,
  KwSlot,
  KwMethod,
  KwLet,
  KwReturn,
  KwIf,
  KwElse,
  KwWhile,
  KwNew,
  KwFn,
  KwTrue,
  KwFalse,
  KwNil,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Dot,
  At,
  Assign,   // :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
};

/// Returns a human-readable spelling for diagnostics ("':='", "identifier").
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Identifier or string-literal text.
  std::string Text;
  /// Integer literal value.
  int64_t IntValue = 0;
};

} // namespace selspec

#endif // SELSPEC_LANG_TOKEN_H

//===- lang/SlotResolver.h - Static frame-slot assignment ------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SlotResolver turns name-based variable access into indexed frame
/// access.  It walks one executable body (a compiled method version after
/// the optimizer finished rewriting it — bodies may contain InlinedExprs
/// and renamed locals by then) and
///
///  - assigns every binding occurrence (formal, let, inlined binding,
///    closure parameter) a coordinate in its function's flat frame: a
///    plain value slot, or a heap capture cell when any nested closure
///    refers to it (capture-by-reference must stay visible);
///  - annotates every VarRef/AssignVar with that coordinate (Slot, Cell,
///    or Capture — an index into the closure's capture list when the
///    binding belongs to an enclosing function);
///  - computes each closure literal's FrameLayout and its capture list
///    (which enclosing cells to grab at closure-creation time, Lua
///    upvalue style, flattened across intermediate closures);
///  - returns the method-level FrameLayout (frame size + formal
///    coordinates) that the interpreter uses to allocate activation
///    frames.
///
/// The pass is purely static: it cannot change which nodes the
/// interpreter evaluates, so RunStats counters (dispatches, version
/// selects, static calls, invocations, nodes) are invariant under it.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_SLOTRESOLVER_H
#define SELSPEC_LANG_SLOTRESOLVER_H

#include "lang/Ast.h"

namespace selspec {

class SlotResolver {
public:
  /// Resolves every variable of \p Body — a function whose formals are
  /// \p Params — to frame coordinates, filling the slot annotations of
  /// the tree in place.  Returns the body's own frame layout.
  static FrameLayout resolve(const std::vector<Symbol> &Params, Expr *Body);
};

} // namespace selspec

#endif // SELSPEC_LANG_SLOTRESOLVER_H

//===- lang/Resolver.cpp - Name resolution and call-site numbering ---------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/Resolver.h"

#include "hierarchy/Program.h"

using namespace selspec;

bool Resolver::isBound(Symbol Name) const {
  for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It)
    for (Symbol S : *It)
      if (S == Name)
        return true;
  return false;
}

void Resolver::resolveMethod(MethodInfo &M) {
  Scopes.clear();
  pushScope();
  for (Symbol S : M.ParamNames)
    bind(S);
  CurrentMethod = M.Id;
  resolveExpr(M.Body);
  popScope();
}

void Resolver::resolveExpr(ExprPtr &E) {
  assert(E && "resolving null expression");
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::StrLit:
  case Expr::Kind::NilLit:
    return;

  case Expr::Kind::VarRef: {
    auto *V = cast<VarRefExpr>(E.get());
    if (!isBound(V->Name))
      Diags.error(V->getLoc(),
                  "unknown variable '" + P.Syms.name(V->Name) + "'");
    return;
  }

  case Expr::Kind::AssignVar: {
    auto *A = cast<AssignVarExpr>(E.get());
    if (!isBound(A->Name))
      Diags.error(A->getLoc(),
                  "assignment to unknown variable '" +
                      P.Syms.name(A->Name) + "'");
    resolveExpr(A->Value);
    return;
  }

  case Expr::Kind::Let: {
    auto *L = cast<LetExpr>(E.get());
    resolveExpr(L->Init);
    bind(L->Name);
    return;
  }

  case Expr::Kind::Seq: {
    auto *S = cast<SeqExpr>(E.get());
    pushScope();
    for (ExprPtr &Elem : S->Elems)
      resolveExpr(Elem);
    popScope();
    return;
  }

  case Expr::Kind::If: {
    auto *I = cast<IfExpr>(E.get());
    resolveExpr(I->Cond);
    resolveExpr(I->Then);
    if (I->Else)
      resolveExpr(I->Else);
    return;
  }

  case Expr::Kind::While: {
    auto *W = cast<WhileExpr>(E.get());
    resolveExpr(W->Cond);
    resolveExpr(W->Body);
    return;
  }

  case Expr::Kind::Send: {
    auto *S = cast<SendExpr>(E.get());
    // Bare `f(args)` on a lexically-bound name is a closure call.
    if (!S->DefinitelySend && isBound(S->GenericName)) {
      auto Callee =
          std::make_unique<VarRefExpr>(S->GenericName, S->getLoc());
      auto Call = std::make_unique<ClosureCallExpr>(
          std::move(Callee), std::move(S->Args), S->getLoc());
      E = std::move(Call);
      resolveExpr(E);
      return;
    }
    unsigned Arity = static_cast<unsigned>(S->Args.size());
    GenericId G = P.lookupGeneric(S->GenericName, Arity);
    if (!G.isValid()) {
      Diags.error(S->getLoc(), "unknown message '" +
                                   P.Syms.name(S->GenericName) + "' with " +
                                   std::to_string(Arity) + " argument(s)");
      return;
    }
    S->Generic = G;
    S->Site = CallSiteId(P.numCallSites());
    P.CallSites.push_back({S->Site, CurrentMethod, S});
    for (ExprPtr &A : S->Args)
      resolveExpr(A);
    return;
  }

  case Expr::Kind::ClosureCall: {
    auto *C = cast<ClosureCallExpr>(E.get());
    resolveExpr(C->Callee);
    for (ExprPtr &A : C->Args)
      resolveExpr(A);
    return;
  }

  case Expr::Kind::ClosureLit: {
    auto *C = cast<ClosureLitExpr>(E.get());
    pushScope();
    for (Symbol S : C->Params)
      bind(S);
    resolveExpr(C->Body);
    popScope();
    return;
  }

  case Expr::Kind::New: {
    auto *N = cast<NewExpr>(E.get());
    N->Class = P.Classes.lookup(N->ClassName);
    if (!N->Class.isValid()) {
      Diags.error(N->getLoc(),
                  "unknown class '" + P.Syms.name(N->ClassName) + "'");
      return;
    }
    for (auto &[SlotName, Init] : N->Inits) {
      if (P.Classes.slotIndex(N->Class, SlotName) < 0)
        Diags.error(N->getLoc(),
                    "class '" + P.Syms.name(N->ClassName) +
                        "' has no slot '" + P.Syms.name(SlotName) + "'");
      resolveExpr(Init);
    }
    return;
  }

  case Expr::Kind::SlotGet: {
    auto *G = cast<SlotGetExpr>(E.get());
    resolveExpr(G->Object);
    return;
  }

  case Expr::Kind::SlotSet: {
    auto *S = cast<SlotSetExpr>(E.get());
    resolveExpr(S->Object);
    resolveExpr(S->Value);
    return;
  }

  case Expr::Kind::Return: {
    auto *R = cast<ReturnExpr>(E.get());
    if (R->Value)
      resolveExpr(R->Value);
    return;
  }

  case Expr::Kind::Inlined:
    assert(false && "InlinedExpr cannot appear in source");
    return;
  }
}

//===- lang/SlotResolver.cpp - Static frame-slot assignment ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// Single-walk resolution with deferred index assignment.  Whether a
// binding needs a heap cell is only known once its whole scope has been
// walked (a closure later in the scope may capture it), so the walk
// records, per binding, every annotation site that refers to it; when the
// binding's owning function finishes, final slot/cell indexes are
// assigned in declaration order and all recorded sites are patched.
//
// Capture chains are flattened Lua-upvalue style: a reference from
// closure depth d to a binding at function depth b creates one capture
// entry in every closure between them, each entry naming either the
// enclosing frame's cell (innermost link) or the enclosing closure's own
// capture list (transitive links).  Entries are memoized per (closure,
// binding) so a binding referenced many times costs one capture.
//
//===----------------------------------------------------------------------===//

#include "lang/SlotResolver.h"

#include "support/PhaseTimer.h"

#include <cassert>
#include <memory>
#include <unordered_map>

using namespace selspec;

namespace {

/// One binding occurrence and every site awaiting its final coordinate.
struct BindingInfo {
  Symbol Name;
  bool Captured = false;
  /// VarRef/AssignVar/Let/param annotation fields to patch (all live in
  /// stable AST nodes or pre-sized layout vectors).
  std::vector<SlotRef *> Refs;
  /// EnclosingCell capture entries whose Index must become this binding's
  /// cell index (identified by node + entry position; the entry vector
  /// may still grow while its closure is being walked).
  std::vector<std::pair<ClosureLitExpr *, uint32_t>> PendingCellSpecs;
};

/// Per-function (method body or closure body) resolution state.
struct FuncCtx {
  /// Null for the outermost (method) function.
  ClosureLitExpr *Lit = nullptr;
  /// Where to write NumSlots/NumCells/Resolved at function end.
  FrameLayout *Layout = nullptr;
  /// All bindings in declaration order (frame indexes follow it).
  std::vector<std::unique_ptr<BindingInfo>> Bindings;
  /// Lexical scopes; lookup walks scopes innermost-first and entries
  /// last-first, so redefinition within a scope shadows (matching the
  /// old Env's innermost-binding rule).
  std::vector<std::vector<std::pair<uint32_t, BindingInfo *>>> Scopes;
  /// One capture entry per distinct outer binding.
  std::unordered_map<const BindingInfo *, uint32_t> CaptureMemo;
};

class ResolverImpl {
public:
  FrameLayout run(const std::vector<Symbol> &Params, Expr *Body) {
    FrameLayout MethodLayout;
    pushFunc(nullptr, &MethodLayout, Params);
    walk(Body);
    popFunc();
    return MethodLayout;
  }

private:
  std::vector<FuncCtx> Funcs;

  void pushFunc(ClosureLitExpr *Lit, FrameLayout *Layout,
                const std::vector<Symbol> &Params) {
    Funcs.emplace_back();
    FuncCtx &F = Funcs.back();
    F.Lit = Lit;
    F.Layout = Layout;
    *Layout = FrameLayout();
    // Pre-size so &Layout->Params[I] stays stable while refs accumulate.
    Layout->Params.resize(Params.size());
    F.Scopes.emplace_back();
    for (size_t I = 0; I != Params.size(); ++I)
      declare(Params[I], &Layout->Params[I]);
  }

  void popFunc() {
    FuncCtx &F = Funcs.back();
    uint32_t NextSlot = 0, NextCell = 0;
    for (std::unique_ptr<BindingInfo> &B : F.Bindings) {
      VarLoc Loc = B->Captured ? VarLoc::Cell : VarLoc::Slot;
      uint32_t Index = B->Captured ? NextCell++ : NextSlot++;
      for (SlotRef *R : B->Refs)
        *R = {Loc, Index};
      for (auto &[Lit, SpecIdx] : B->PendingCellSpecs)
        Lit->Captures[SpecIdx].Index = Index;
    }
    F.Layout->NumSlots = NextSlot;
    F.Layout->NumCells = NextCell;
    F.Layout->Resolved = true;
    Funcs.pop_back();
  }

  void declare(Symbol Name, SlotRef *DeclSite) {
    FuncCtx &F = Funcs.back();
    F.Bindings.push_back(std::make_unique<BindingInfo>());
    BindingInfo *B = F.Bindings.back().get();
    B->Name = Name;
    B->Refs.push_back(DeclSite);
    F.Scopes.back().emplace_back(Name.value(), B);
  }

  /// Innermost visible binding of \p Name at the current position, also
  /// reporting which function owns it.
  BindingInfo *lookup(Symbol Name, size_t &OwnerIdx) {
    for (size_t FI = Funcs.size(); FI-- != 0;) {
      FuncCtx &F = Funcs[FI];
      for (auto SIt = F.Scopes.rbegin(); SIt != F.Scopes.rend(); ++SIt)
        for (auto BIt = SIt->rbegin(); BIt != SIt->rend(); ++BIt)
          if (BIt->first == Name.value()) {
            OwnerIdx = FI;
            return BIt->second;
          }
    }
    return nullptr;
  }

  /// Capture index of \p B (owned by function \p OwnerIdx) within function
  /// \p FuncIdx, creating the whole chain of capture entries on demand.
  uint32_t captureIndex(size_t FuncIdx, size_t OwnerIdx, BindingInfo *B) {
    FuncCtx &F = Funcs[FuncIdx];
    auto It = F.CaptureMemo.find(B);
    if (It != F.CaptureMemo.end())
      return It->second;

    assert(F.Lit && "method-level frame cannot capture");
    CaptureSpec Spec;
    if (OwnerIdx + 1 == FuncIdx) {
      Spec.Source = CaptureSpec::From::EnclosingCell;
      Spec.Index = 0; // patched when the owner function finishes
    } else {
      Spec.Source = CaptureSpec::From::EnclosingCapture;
      Spec.Index = captureIndex(FuncIdx - 1, OwnerIdx, B);
    }
    uint32_t Idx = static_cast<uint32_t>(F.Lit->Captures.size());
    F.Lit->Captures.push_back(Spec);
    if (OwnerIdx + 1 == FuncIdx)
      B->PendingCellSpecs.emplace_back(F.Lit, Idx);
    F.CaptureMemo.emplace(B, Idx);
    return Idx;
  }

  void resolveRef(Symbol Name, SlotRef *Site) {
    size_t OwnerIdx = 0;
    BindingInfo *B = lookup(Name, OwnerIdx);
    assert(B && "SlotResolver hit an unbound variable (Resolver missed it)");
    if (!B)
      return;
    if (OwnerIdx + 1 == Funcs.size()) {
      B->Refs.push_back(Site); // same function: patched at function end
      return;
    }
    B->Captured = true;
    *Site = {VarLoc::Capture, captureIndex(Funcs.size() - 1, OwnerIdx, B)};
  }

  void walk(Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::StrLit:
    case Expr::Kind::NilLit:
      return;

    case Expr::Kind::VarRef: {
      auto *V = cast<VarRefExpr>(E);
      resolveRef(V->Name, &V->Slot);
      return;
    }

    case Expr::Kind::AssignVar: {
      auto *A = cast<AssignVarExpr>(E);
      walk(A->Value.get());
      resolveRef(A->Name, &A->Slot);
      return;
    }

    case Expr::Kind::Let: {
      auto *L = cast<LetExpr>(E);
      walk(L->Init.get()); // the init cannot see the new binding
      declare(L->Name, &L->Slot);
      return;
    }

    case Expr::Kind::Seq: {
      // Funcs may reallocate while walking (nested ClosureLit pushes a
      // context), so never hold a FuncCtx reference across a walk.
      Funcs.back().Scopes.emplace_back();
      for (ExprPtr &Elem : cast<SeqExpr>(E)->Elems)
        walk(Elem.get());
      Funcs.back().Scopes.pop_back();
      return;
    }

    case Expr::Kind::ClosureLit: {
      auto *C = cast<ClosureLitExpr>(E);
      C->Captures.clear();
      pushFunc(C, &C->Layout, C->Params);
      walk(C->Body.get());
      popFunc();
      return;
    }

    case Expr::Kind::Inlined: {
      auto *In = cast<InlinedExpr>(E);
      // Binding initializers evaluate in the outer scope before any of
      // the new bindings exist (call-by-value argument evaluation).
      for (auto &[Name, Init] : In->Bindings)
        walk(Init.get());
      Funcs.back().Scopes.emplace_back();
      In->BindingSlots.assign(In->Bindings.size(), SlotRef());
      for (size_t I = 0; I != In->Bindings.size(); ++I)
        declare(In->Bindings[I].first, &In->BindingSlots[I]);
      walk(In->Body.get());
      Funcs.back().Scopes.pop_back();
      return;
    }

    default:
      forEachChild(E, [&](const Expr *Child) {
        walk(const_cast<Expr *>(Child));
      });
      return;
    }
  }
};

} // namespace

FrameLayout SlotResolver::resolve(const std::vector<Symbol> &Params,
                                  Expr *Body) {
  PhaseTimer::Scope Timing("slot-resolve");
  return ResolverImpl().run(Params, Body);
}

//===- lang/Ast.h - Mica abstract syntax trees -----------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for Mica.  The same node types serve three roles:
///   1. raw parse trees produced by the Parser,
///   2. resolved trees (names bound, call sites numbered) produced by the
///      Resolver and stored in the Program,
///   3. optimized trees produced by the Optimizer, in which SendExprs carry
///      binding annotations and InlinedExprs splice callee bodies.
///
/// Nodes use a Kind discriminator with LLVM-style isa/cast/dyn_cast (the
/// project is built without C++ RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_AST_H
#define SELSPEC_LANG_AST_H

#include "lang/Symbol.h"
#include "support/Casting.h"
#include "support/Ids.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace selspec {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all Mica expressions (Mica is expression-oriented:
/// statements are expressions evaluated for effect).
class Expr {
public:
  enum class Kind : uint8_t {
    IntLit,
    BoolLit,
    StrLit,
    NilLit,
    VarRef,
    AssignVar,
    Let,
    Seq,
    If,
    While,
    Send,
    ClosureCall,
    ClosureLit,
    New,
    SlotGet,
    SlotSet,
    Return,
    Inlined,
  };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

  /// Number of Kind enumerators (histogram array sizing).
  static constexpr unsigned NumKinds =
      static_cast<unsigned>(Kind::Inlined) + 1;

  /// Deep-copies the subtree (used by the inliner, which must never share
  /// nodes between compiled method versions).
  ExprPtr clone() const;

  // Virtual: subtrees are owned and deleted through ExprPtr (unique_ptr
  // to this base class).
  virtual ~Expr();

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// 64-bit integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }
};

class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::BoolLit; }
};

class StrLitExpr : public Expr {
public:
  StrLitExpr(std::string Value, SourceLoc Loc)
      : Expr(Kind::StrLit, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::StrLit; }
};

class NilLitExpr : public Expr {
public:
  explicit NilLitExpr(SourceLoc Loc) : Expr(Kind::NilLit, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::NilLit; }
};

//===----------------------------------------------------------------------===//
// Slot resolution metadata
//
// The SlotResolver pass (run once per compiled method version, after the
// optimizer has finished rewriting the body) replaces run-time name lookup
// with frame coordinates.  Every binding occurrence (formal, let, inlined
// binding, closure parameter) is assigned either a plain value slot in its
// function's flat frame or — when some nested closure captures it — a
// heap cell, so that mutation through the cell stays visible to every
// closure sharing it (capture-by-reference semantics).
//===----------------------------------------------------------------------===//

/// Where a statically resolved variable lives at run time.
enum class VarLoc : uint8_t {
  /// Slot resolution has not run on this subtree.
  Unresolved,
  /// Plain value slot in the current frame.
  Slot,
  /// Capture cell owned by the current frame (a captured local).
  Cell,
  /// Cell reaching the current frame through the closure's capture list.
  Capture,
};

/// A resolved variable coordinate: location kind + index in that space.
struct SlotRef {
  VarLoc Loc = VarLoc::Unresolved;
  uint32_t Index = 0;

  bool isResolved() const { return Loc != VarLoc::Unresolved; }
};

/// How a closure obtains one captured cell when it is created.
struct CaptureSpec {
  enum class From : uint8_t {
    /// Cell slot of the frame creating the closure.
    EnclosingCell,
    /// Capture list of the frame creating the closure (transitive).
    EnclosingCapture,
  };
  From Source = From::EnclosingCell;
  uint32_t Index = 0;
};

/// Run-time frame requirements of one executable body (a compiled method
/// version or a closure literal): how many plain slots and capture cells
/// to allocate, and where each formal parameter lands.
struct FrameLayout {
  uint32_t NumSlots = 0;
  uint32_t NumCells = 0;
  /// One coordinate per formal (Loc is Slot or Cell).
  std::vector<SlotRef> Params;
  bool Resolved = false;
};

/// Reference to a lexically-bound variable (formal, let or closure param).
class VarRefExpr : public Expr {
public:
  VarRefExpr(Symbol Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(Name) {}
  Symbol Name;
  /// Frame coordinate, assigned by the SlotResolver.
  SlotRef Slot;
  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }
};

/// `x := e` where x is a lexically-bound variable.
class AssignVarExpr : public Expr {
public:
  AssignVarExpr(Symbol Name, ExprPtr Value, SourceLoc Loc)
      : Expr(Kind::AssignVar, Loc), Name(Name), Value(std::move(Value)) {}
  Symbol Name;
  ExprPtr Value;
  /// Frame coordinate, assigned by the SlotResolver.
  SlotRef Slot;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::AssignVar;
  }
};

/// `let x := e;` introduces a binding in the enclosing block's scope and
/// evaluates to nil.
class LetExpr : public Expr {
public:
  LetExpr(Symbol Name, ExprPtr Init, SourceLoc Loc)
      : Expr(Kind::Let, Loc), Name(Name), Init(std::move(Init)) {}
  Symbol Name;
  ExprPtr Init;
  /// Where the binding lives (Slot, or Cell when closure-captured),
  /// assigned by the SlotResolver.  A Cell-located let allocates a fresh
  /// cell on every execution so that each loop iteration's captures stay
  /// distinct, exactly as the per-iteration scopes of the old Env chain.
  SlotRef Slot;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Let; }
};

/// A block: `{ s1; s2; ... }`.  Evaluates to the value of the last element
/// (nil when empty) and opens a fresh variable scope.
class SeqExpr : public Expr {
public:
  SeqExpr(std::vector<ExprPtr> Elems, SourceLoc Loc)
      : Expr(Kind::Seq, Loc), Elems(std::move(Elems)) {}
  std::vector<ExprPtr> Elems;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Seq; }
};

/// `if (c) { ... } else { ... }`; evaluates to the taken branch's value.
class IfExpr : public Expr {
public:
  IfExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc)
      : Expr(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  ExprPtr Then;
  /// May be null (no else branch; value is nil when the condition fails).
  ExprPtr Else;
  static bool classof(const Expr *E) { return E->getKind() == Kind::If; }
};

class WhileExpr : public Expr {
public:
  WhileExpr(ExprPtr Cond, ExprPtr Body, SourceLoc Loc)
      : Expr(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  ExprPtr Body;
  static bool classof(const Expr *E) { return E->getKind() == Kind::While; }
};

/// How the optimizer bound a message-send site.
enum class SendBindKind : uint8_t {
  /// Not optimized: full dynamic dispatch (also the state of raw ASTs).
  Dynamic,
  /// Statically bound to one compiled version of one method.
  Static,
  /// Statically bound to a method with several compiled versions that the
  /// caller cannot distinguish: a run-time version-selection dispatch is
  /// required (the paper's "statically-bound call converted into a
  /// dynamically-bound call", Section 3.3).
  StaticSelect,
  /// Statically bound to a builtin primitive and inlined: no call overhead.
  InlinePrim,
  /// Hard-wired class prediction (Base optimization for common messages
  /// such as `+`): test the arguments against a predicted class and run
  /// the primitive inline on a hit, full dispatch on a miss.
  Predicted,
  /// Profile-guided type feedback (Hölzle & Ungar, discussed in the
  /// paper's Section 6): an inline-cache-style guard for the profiled
  /// dominant callee — cheap test + direct call on a hit, full dispatch
  /// on a miss.
  FeedbackGuard,
};

/// Binding annotation attached to a SendExpr by the Optimizer.
struct SendBinding {
  SendBindKind Kind = SendBindKind::Dynamic;
  /// Target source method for Static/StaticSelect/InlinePrim/Predicted.
  MethodId Target;
  /// Global CompiledProgram version index of the target, for Static.
  uint32_t TargetVersion = 0;
  /// Class against which Predicted sites test their arguments.
  ClassId PredictedClass;
};

/// A message send `g(a1, ..., an)` / `a1.g(a2, ..., an)`: dynamic dispatch
/// on the generic function `g`.
class SendExpr : public Expr {
public:
  SendExpr(Symbol GenericName, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Send, Loc), GenericName(GenericName),
        Args(std::move(Args)) {}
  Symbol GenericName;
  std::vector<ExprPtr> Args;
  /// True for sends that cannot be closure calls (dot syntax `e.m(...)`,
  /// desugared operators).  For bare `f(args)` this is false and the
  /// Resolver rewrites the node into a ClosureCallExpr when `f` is
  /// lexically bound.
  bool DefinitelySend = false;
  /// Dense program-wide call-site id, assigned by the Resolver.
  CallSiteId Site;
  /// Resolved generic function, assigned by the Resolver.
  GenericId Generic;
  /// Optimizer annotation.
  SendBinding Binding;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Send; }
};

/// Invocation of a first-class closure value: `f(a1, ..., an)` where `f`
/// is an expression (not a generic-function name).
class ClosureCallExpr : public Expr {
public:
  ClosureCallExpr(ExprPtr Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::ClosureCall, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ClosureCall;
  }
};

/// `fn(x, y) { body }` — a lexically-scoped first-class closure.  `return`
/// inside the body is a non-local return from the closure's home method
/// activation (Cecil/Smalltalk semantics, required by the paper's Figure 1
/// `overlaps` example).
class ClosureLitExpr : public Expr {
public:
  ClosureLitExpr(std::vector<Symbol> Params, ExprPtr Body, SourceLoc Loc)
      : Expr(Kind::ClosureLit, Loc), Params(std::move(Params)),
        Body(std::move(Body)) {}
  std::vector<Symbol> Params;
  ExprPtr Body;
  /// Frame requirements of the closure body, assigned by the SlotResolver.
  FrameLayout Layout;
  /// Cells to grab from the creating frame, in capture-index order;
  /// assigned by the SlotResolver.
  std::vector<CaptureSpec> Captures;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ClosureLit;
  }
};

/// `new C { slot := e, ... }`.
class NewExpr : public Expr {
public:
  NewExpr(Symbol ClassName, std::vector<std::pair<Symbol, ExprPtr>> Inits,
          SourceLoc Loc)
      : Expr(Kind::New, Loc), ClassName(ClassName), Inits(std::move(Inits)) {}
  Symbol ClassName;
  std::vector<std::pair<Symbol, ExprPtr>> Inits;
  /// Resolved class, assigned by the Resolver.
  ClassId Class;
  static bool classof(const Expr *E) { return E->getKind() == Kind::New; }
};

/// `obj.slot` (no parentheses — parenthesized forms are sends).
class SlotGetExpr : public Expr {
public:
  SlotGetExpr(ExprPtr Object, Symbol SlotName, SourceLoc Loc)
      : Expr(Kind::SlotGet, Loc), Object(std::move(Object)),
        SlotName(SlotName) {}
  ExprPtr Object;
  Symbol SlotName;
  static bool classof(const Expr *E) { return E->getKind() == Kind::SlotGet; }
};

/// `obj.slot := e`.
class SlotSetExpr : public Expr {
public:
  SlotSetExpr(ExprPtr Object, Symbol SlotName, ExprPtr Value, SourceLoc Loc)
      : Expr(Kind::SlotSet, Loc), Object(std::move(Object)),
        SlotName(SlotName), Value(std::move(Value)) {}
  ExprPtr Object;
  Symbol SlotName;
  ExprPtr Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::SlotSet; }
};

/// `return e;`.  Boundary 0 targets the enclosing method activation (a
/// non-local return when evaluated inside a closure).  The inliner rewrites
/// boundary-0 returns of an inlined body to the fresh boundary of the
/// enclosing InlinedExpr.
class ReturnExpr : public Expr {
public:
  ReturnExpr(ExprPtr Value, SourceLoc Loc)
      : Expr(Kind::Return, Loc), Value(std::move(Value)) {}
  /// May be null (returns nil).
  ExprPtr Value;
  uint32_t Boundary = 0;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Return; }
};

/// Result of inlining a callee body at a call site.  Binds the callee's
/// formals to the actual argument expressions, then evaluates the spliced
/// body; catches boundary-`Boundary` returns.  Created only by the
/// Optimizer.
class InlinedExpr : public Expr {
public:
  InlinedExpr(std::vector<std::pair<Symbol, ExprPtr>> Bindings, ExprPtr Body,
              uint32_t Boundary, SourceLoc Loc)
      : Expr(Kind::Inlined, Loc), Bindings(std::move(Bindings)),
        Body(std::move(Body)), Boundary(Boundary) {}
  std::vector<std::pair<Symbol, ExprPtr>> Bindings;
  ExprPtr Body;
  uint32_t Boundary;
  /// The call site this inlined body replaced (for attribution in
  /// statistics); may be invalid for closure-call inlining.
  CallSiteId OriginSite;
  /// One frame coordinate per binding (parallel to Bindings), assigned by
  /// the SlotResolver.  The bindings live in the *enclosing* frame.
  std::vector<SlotRef> BindingSlots;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Inlined; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// One formal parameter of a method, with an optional class specializer
/// (`x@Circle`).  An unspecialized formal accepts any object ("@Any").
struct ParamDecl {
  Symbol Name;
  /// Invalid symbol when the formal is unspecialized.
  Symbol SpecializerName;
  SourceLoc Loc;
};

/// `method g(x@C, y) { ... }` — one multi-method case of generic `g`.
struct MethodDecl {
  Symbol Name;
  std::vector<ParamDecl> Params;
  ExprPtr Body;
  SourceLoc Loc;
};

/// `class C isa P1, P2 { slot a; slot b; }`.
struct ClassDecl {
  Symbol Name;
  std::vector<Symbol> Parents;
  std::vector<Symbol> Slots;
  SourceLoc Loc;
};

/// One parsed source file.
struct Module {
  std::vector<ClassDecl> Classes;
  std::vector<MethodDecl> Methods;
};

/// Readable name of an expression kind ("VarRef", "Send", ...), for the
/// interpreter's execution-mix histogram and diagnostics.
const char *exprKindName(Expr::Kind K);

/// Calls \p F on each direct child expression of \p E (non-null ones).
template <typename Fn> void forEachChild(const Expr *E, Fn &&F) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::StrLit:
  case Expr::Kind::NilLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::AssignVar:
    F(cast<AssignVarExpr>(E)->Value.get());
    return;
  case Expr::Kind::Let:
    F(cast<LetExpr>(E)->Init.get());
    return;
  case Expr::Kind::Seq:
    for (const ExprPtr &Elem : cast<SeqExpr>(E)->Elems)
      F(Elem.get());
    return;
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    F(I->Cond.get());
    F(I->Then.get());
    if (I->Else)
      F(I->Else.get());
    return;
  }
  case Expr::Kind::While: {
    const auto *W = cast<WhileExpr>(E);
    F(W->Cond.get());
    F(W->Body.get());
    return;
  }
  case Expr::Kind::Send:
    for (const ExprPtr &A : cast<SendExpr>(E)->Args)
      F(A.get());
    return;
  case Expr::Kind::ClosureCall: {
    const auto *C = cast<ClosureCallExpr>(E);
    F(C->Callee.get());
    for (const ExprPtr &A : C->Args)
      F(A.get());
    return;
  }
  case Expr::Kind::ClosureLit:
    F(cast<ClosureLitExpr>(E)->Body.get());
    return;
  case Expr::Kind::New:
    for (const auto &[Slot, Init] : cast<NewExpr>(E)->Inits)
      F(Init.get());
    return;
  case Expr::Kind::SlotGet:
    F(cast<SlotGetExpr>(E)->Object.get());
    return;
  case Expr::Kind::SlotSet: {
    const auto *S = cast<SlotSetExpr>(E);
    F(S->Object.get());
    F(S->Value.get());
    return;
  }
  case Expr::Kind::Return:
    if (const ExprPtr &V = cast<ReturnExpr>(E)->Value)
      F(V.get());
    return;
  case Expr::Kind::Inlined: {
    const auto *I = cast<InlinedExpr>(E);
    for (const auto &[Name, Init] : I->Bindings)
      F(Init.get());
    F(I->Body.get());
    return;
  }
  }
}

} // namespace selspec

#endif // SELSPEC_LANG_AST_H

//===- lang/Lexer.cpp - Mica lexer ----------------------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <cstdint>
#include <unordered_map>

using namespace selspec;

const char *selspec::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof: return "end of input";
  case TokenKind::Ident: return "identifier";
  case TokenKind::IntLit: return "integer literal";
  case TokenKind::StrLit: return "string literal";
  case TokenKind::KwClass: return "'class'";
  case TokenKind::KwIsa: return "'isa'";
  case TokenKind::KwSlot: return "'slot'";
  case TokenKind::KwMethod: return "'method'";
  case TokenKind::KwLet: return "'let'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwFn: return "'fn'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwNil: return "'nil'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semi: return "';'";
  case TokenKind::Dot: return "'.'";
  case TokenKind::At: return "'@'";
  case TokenKind::Assign: return "':='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::BangEq: return "'!='";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Bang: return "'!'";
  }
  return "token";
}

Lexer::Lexer(std::string Source, Diagnostics &Diags)
    : Src(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

static const std::unordered_map<std::string, TokenKind> &keywordMap() {
  static const std::unordered_map<std::string, TokenKind> Map = {
      {"class", TokenKind::KwClass},   {"isa", TokenKind::KwIsa},
      {"slot", TokenKind::KwSlot},     {"method", TokenKind::KwMethod},
      {"let", TokenKind::KwLet},       {"return", TokenKind::KwReturn},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"new", TokenKind::KwNew},
      {"fn", TokenKind::KwFn},         {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"nil", TokenKind::KwNil},
  };
  return Map;
}

Token Lexer::next() {
  // Skip whitespace and comments.
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    break;
  }

  Token T;
  T.Loc = loc();
  if (Pos >= Src.size()) {
    T.Kind = TokenKind::Eof;
    return T;
  }

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordMap().find(Text);
    if (It != keywordMap().end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokenKind::Ident;
      T.Text = std::move(Text);
    }
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    // Unsigned accumulation with an explicit bound: a literal past
    // INT64_MAX is a diagnostic, never signed-overflow UB.
    uint64_t V = static_cast<uint64_t>(C - '0');
    bool Overflow = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      uint64_t Digit = static_cast<uint64_t>(advance() - '0');
      if (V > (static_cast<uint64_t>(INT64_MAX) - Digit) / 10) {
        Overflow = true;
        continue; // keep consuming digits, report once at the end
      }
      V = V * 10 + Digit;
    }
    if (Overflow) {
      Diags.error(T.Loc, "integer literal too large");
      V = static_cast<uint64_t>(INT64_MAX);
    }
    T.Kind = TokenKind::IntLit;
    T.IntValue = static_cast<int64_t>(V);
    return T;
  }

  switch (C) {
  case '"': {
    std::string Text;
    while (peek() != '"' && peek() != '\0') {
      char D = advance();
      if (D == '\\') {
        char E = advance();
        switch (E) {
        case 'n': Text += '\n'; break;
        case 't': Text += '\t'; break;
        case '\\': Text += '\\'; break;
        case '"': Text += '"'; break;
        default:
          Diags.error(loc(), std::string("unknown escape '\\") + E + "'");
          break;
        }
      } else {
        Text += D;
      }
    }
    if (!match('"'))
      Diags.error(T.Loc, "unterminated string literal");
    T.Kind = TokenKind::StrLit;
    T.Text = std::move(Text);
    return T;
  }
  case '(': T.Kind = TokenKind::LParen; return T;
  case ')': T.Kind = TokenKind::RParen; return T;
  case '{': T.Kind = TokenKind::LBrace; return T;
  case '}': T.Kind = TokenKind::RBrace; return T;
  case ',': T.Kind = TokenKind::Comma; return T;
  case ';': T.Kind = TokenKind::Semi; return T;
  case '.': T.Kind = TokenKind::Dot; return T;
  case '@': T.Kind = TokenKind::At; return T;
  case ':':
    if (match('=')) {
      T.Kind = TokenKind::Assign;
      return T;
    }
    Diags.error(T.Loc, "expected '=' after ':'");
    return next();
  case '+': T.Kind = TokenKind::Plus; return T;
  case '-': T.Kind = TokenKind::Minus; return T;
  case '*': T.Kind = TokenKind::Star; return T;
  case '/': T.Kind = TokenKind::Slash; return T;
  case '%': T.Kind = TokenKind::Percent; return T;
  case '=':
    if (match('=')) {
      T.Kind = TokenKind::EqEq;
      return T;
    }
    Diags.error(T.Loc, "expected '==' (assignment is ':=')");
    return next();
  case '!':
    T.Kind = match('=') ? TokenKind::BangEq : TokenKind::Bang;
    return T;
  case '<':
    T.Kind = match('=') ? TokenKind::LessEq : TokenKind::Less;
    return T;
  case '>':
    T.Kind = match('=') ? TokenKind::GreaterEq : TokenKind::Greater;
    return T;
  case '&':
    if (match('&')) {
      T.Kind = TokenKind::AmpAmp;
      return T;
    }
    Diags.error(T.Loc, "expected '&&'");
    return next();
  case '|':
    if (match('|')) {
      T.Kind = TokenKind::PipePipe;
      return T;
    }
    Diags.error(T.Loc, "expected '||'");
    return next();
  default:
    Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Token T = next();
    bool Done = T.Kind == TokenKind::Eof;
    Out.push_back(std::move(T));
    if (Done)
      return Out;
  }
}

//===- lang/AstPrinter.cpp - Debug printing of Mica ASTs -------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include <sstream>

using namespace selspec;

namespace {

class Printer {
public:
  explicit Printer(const SymbolTable &Syms) : Syms(Syms) {}

  void print(const Expr *E, std::ostringstream &OS) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      OS << "(int " << cast<IntLitExpr>(E)->Value << ')';
      return;
    case Expr::Kind::BoolLit:
      OS << "(bool " << (cast<BoolLitExpr>(E)->Value ? "true" : "false")
         << ')';
      return;
    case Expr::Kind::StrLit:
      OS << "(str \"" << cast<StrLitExpr>(E)->Value << "\")";
      return;
    case Expr::Kind::NilLit:
      OS << "(nil)";
      return;
    case Expr::Kind::VarRef:
      OS << "(var " << Syms.name(cast<VarRefExpr>(E)->Name) << ')';
      return;
    case Expr::Kind::AssignVar: {
      const auto *A = cast<AssignVarExpr>(E);
      OS << "(assign " << Syms.name(A->Name) << ' ';
      print(A->Value.get(), OS);
      OS << ')';
      return;
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      OS << "(let " << Syms.name(L->Name) << ' ';
      print(L->Init.get(), OS);
      OS << ')';
      return;
    }
    case Expr::Kind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      OS << "(seq";
      for (const ExprPtr &Elem : S->Elems) {
        OS << ' ';
        print(Elem.get(), OS);
      }
      OS << ')';
      return;
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      OS << "(if ";
      print(I->Cond.get(), OS);
      OS << ' ';
      print(I->Then.get(), OS);
      if (I->Else) {
        OS << ' ';
        print(I->Else.get(), OS);
      }
      OS << ')';
      return;
    }
    case Expr::Kind::While: {
      const auto *W = cast<WhileExpr>(E);
      OS << "(while ";
      print(W->Cond.get(), OS);
      OS << ' ';
      print(W->Body.get(), OS);
      OS << ')';
      return;
    }
    case Expr::Kind::Send: {
      const auto *S = cast<SendExpr>(E);
      OS << "(send";
      switch (S->Binding.Kind) {
      case SendBindKind::Dynamic:
        break;
      case SendBindKind::Static:
        OS << "[static]";
        break;
      case SendBindKind::StaticSelect:
        OS << "[select]";
        break;
      case SendBindKind::InlinePrim:
        OS << "[prim]";
        break;
      case SendBindKind::Predicted:
        OS << "[pred]";
        break;
      case SendBindKind::FeedbackGuard:
        OS << "[fb]";
        break;
      }
      OS << ' ' << Syms.name(S->GenericName);
      for (const ExprPtr &A : S->Args) {
        OS << ' ';
        print(A.get(), OS);
      }
      OS << ')';
      return;
    }
    case Expr::Kind::ClosureCall: {
      const auto *C = cast<ClosureCallExpr>(E);
      OS << "(call ";
      print(C->Callee.get(), OS);
      for (const ExprPtr &A : C->Args) {
        OS << ' ';
        print(A.get(), OS);
      }
      OS << ')';
      return;
    }
    case Expr::Kind::ClosureLit: {
      const auto *C = cast<ClosureLitExpr>(E);
      OS << "(fn (";
      for (size_t I = 0; I != C->Params.size(); ++I) {
        if (I)
          OS << ' ';
        OS << Syms.name(C->Params[I]);
      }
      OS << ") ";
      print(C->Body.get(), OS);
      OS << ')';
      return;
    }
    case Expr::Kind::New: {
      const auto *N = cast<NewExpr>(E);
      OS << "(new " << Syms.name(N->ClassName);
      for (const auto &[SlotName, Init] : N->Inits) {
        OS << " (" << Syms.name(SlotName) << ' ';
        print(Init.get(), OS);
        OS << ')';
      }
      OS << ')';
      return;
    }
    case Expr::Kind::SlotGet: {
      const auto *G = cast<SlotGetExpr>(E);
      OS << "(get ";
      print(G->Object.get(), OS);
      OS << ' ' << Syms.name(G->SlotName) << ')';
      return;
    }
    case Expr::Kind::SlotSet: {
      const auto *S = cast<SlotSetExpr>(E);
      OS << "(set ";
      print(S->Object.get(), OS);
      OS << ' ' << Syms.name(S->SlotName) << ' ';
      print(S->Value.get(), OS);
      OS << ')';
      return;
    }
    case Expr::Kind::Return: {
      const auto *R = cast<ReturnExpr>(E);
      OS << "(return";
      if (R->Boundary != 0)
        OS << '#' << R->Boundary;
      if (R->Value) {
        OS << ' ';
        print(R->Value.get(), OS);
      }
      OS << ')';
      return;
    }
    case Expr::Kind::Inlined: {
      const auto *I = cast<InlinedExpr>(E);
      OS << "(inlined#" << I->Boundary;
      for (const auto &[Name, Init] : I->Bindings) {
        OS << " (" << Syms.name(Name) << ' ';
        print(Init.get(), OS);
        OS << ')';
      }
      OS << ' ';
      print(I->Body.get(), OS);
      OS << ')';
      return;
    }
    }
    OS << "(?)";
  }

private:
  const SymbolTable &Syms;
};

} // namespace

std::string selspec::printExpr(const Expr *E, const SymbolTable &Syms) {
  std::ostringstream OS;
  Printer(Syms).print(E, OS);
  return OS.str();
}

//===- lang/AstPrinter.h - Debug printing of Mica ASTs ---------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an expression tree as an s-expression-like string; used by the
/// parser/optimizer tests to assert on tree shape, and handy for debugging.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_ASTPRINTER_H
#define SELSPEC_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace selspec {

/// Prints \p E compactly, e.g. `(send + (var x) (int 1))`.  Optimizer
/// annotations are shown as suffixes on sends, e.g. `(send[static] ...)`.
std::string printExpr(const Expr *E, const SymbolTable &Syms);

} // namespace selspec

#endif // SELSPEC_LANG_ASTPRINTER_H

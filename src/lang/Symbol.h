//===- lang/Symbol.h - Interned identifiers --------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifiers (variable, class, generic-function and slot names) are
/// interned into small integer Symbols so that the interpreter and
/// analyses compare names in O(1).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_SYMBOL_H
#define SELSPEC_LANG_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace selspec {

/// An interned identifier.  Value 0 is reserved as "invalid".
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t V) : Val(V) {}

  uint32_t value() const { return Val; }
  bool isValid() const { return Val != 0; }

  friend bool operator==(Symbol A, Symbol B) { return A.Val == B.Val; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Val != B.Val; }
  friend bool operator<(Symbol A, Symbol B) { return A.Val < B.Val; }

private:
  uint32_t Val = 0;
};

/// Interns strings to Symbols.  One table is shared by a whole Program.
class SymbolTable {
public:
  SymbolTable() { Names.push_back(""); /* slot 0 = invalid */ }

  Symbol intern(const std::string &Name) {
    auto It = Map.find(Name);
    if (It != Map.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Names.push_back(Name);
    Map.emplace(Name, Id);
    return Symbol(Id);
  }

  /// Returns the existing symbol for \p Name, or an invalid Symbol.
  Symbol find(const std::string &Name) const {
    auto It = Map.find(Name);
    return It == Map.end() ? Symbol() : Symbol(It->second);
  }

  const std::string &name(Symbol S) const {
    assert(S.value() < Names.size() && "unknown symbol");
    return Names[S.value()];
  }

  /// Generates a fresh symbol that cannot collide with source identifiers
  /// (used by the inliner for renamed locals).
  Symbol gensym(const std::string &Hint) {
    return intern("$" + Hint + "." + std::to_string(NextGen++));
  }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> Map;
  uint64_t NextGen = 0;
};

} // namespace selspec

namespace std {
template <> struct hash<selspec::Symbol> {
  size_t operator()(selspec::Symbol S) const {
    return std::hash<uint32_t>()(S.value());
  }
};
} // namespace std

#endif // SELSPEC_LANG_SYMBOL_H

//===- lang/Parser.cpp - Mica parser ---------------------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace selspec;

Parser::Parser(std::vector<Token> Tokens, SymbolTable &Symbols,
               Diagnostics &Diags)
    : Tokens(std::move(Tokens)), Symbols(Symbols), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().Kind == TokenKind::Eof &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1;
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(K) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return false;
}

void Parser::syncToDecl() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwClass) &&
         !check(TokenKind::KwMethod))
    advance();
}

bool Parser::atDepthLimit(SourceLoc Loc) {
  if (Depth < MaxDepth)
    return false;
  if (!DepthOverflow) {
    DepthOverflow = true;
    Diags.error(Loc, "expression or statement nesting too deep (limit " +
                         std::to_string(MaxDepth) + ")");
    // No useful recovery exists this deep in a pathological input; drain
    // so every pending recursive frame unwinds immediately at Eof.
    while (!check(TokenKind::Eof))
      advance();
  }
  return true;
}

Module Parser::parseModule() {
  Module M;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwClass)) {
      M.Classes.push_back(parseClassDecl());
    } else if (check(TokenKind::KwMethod)) {
      M.Methods.push_back(parseMethodDecl());
    } else {
      Diags.error(peek().Loc,
                  std::string("expected 'class' or 'method', found ") +
                      tokenKindName(peek().Kind));
      syncToDecl();
    }
  }
  return M;
}

bool Parser::parseSource(const std::string &Source, SymbolTable &Symbols,
                         Diagnostics &Diags, Module &M) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Symbols, Diags);
  Module Parsed = P.parseModule();
  for (auto &C : Parsed.Classes)
    M.Classes.push_back(std::move(C));
  for (auto &F : Parsed.Methods)
    M.Methods.push_back(std::move(F));
  return !Diags.hasErrors();
}

ClassDecl Parser::parseClassDecl() {
  ClassDecl D;
  D.Loc = peek().Loc;
  expect(TokenKind::KwClass, "to start class declaration");
  if (check(TokenKind::Ident))
    D.Name = internIdent(advance());
  else
    Diags.error(peek().Loc, "expected class name");

  if (accept(TokenKind::KwIsa)) {
    do {
      if (check(TokenKind::Ident))
        D.Parents.push_back(internIdent(advance()));
      else {
        Diags.error(peek().Loc, "expected parent class name");
        break;
      }
    } while (accept(TokenKind::Comma));
  }

  if (accept(TokenKind::LBrace)) {
    while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
      if (!expect(TokenKind::KwSlot, "in class body"))
        break;
      if (check(TokenKind::Ident))
        D.Slots.push_back(internIdent(advance()));
      else
        Diags.error(peek().Loc, "expected slot name");
      expect(TokenKind::Semi, "after slot declaration");
    }
    expect(TokenKind::RBrace, "to close class body");
  }
  accept(TokenKind::Semi);
  return D;
}

MethodDecl Parser::parseMethodDecl() {
  MethodDecl D;
  D.Loc = peek().Loc;
  expect(TokenKind::KwMethod, "to start method declaration");
  if (check(TokenKind::Ident))
    D.Name = internIdent(advance());
  else
    Diags.error(peek().Loc, "expected method name");

  expect(TokenKind::LParen, "after method name");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl P;
      P.Loc = peek().Loc;
      if (check(TokenKind::Ident))
        P.Name = internIdent(advance());
      else
        Diags.error(peek().Loc, "expected parameter name");
      if (accept(TokenKind::At)) {
        if (check(TokenKind::Ident))
          P.SpecializerName = internIdent(advance());
        else
          Diags.error(peek().Loc, "expected specializer class after '@'");
      }
      D.Params.push_back(P);
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  D.Body = parseBlock();
  return D;
}

ExprPtr Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<ExprPtr> Elems;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof))
    Elems.push_back(parseStmt());
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<SeqExpr>(std::move(Elems), Loc);
}

// Guarded like parseStmt: "else if" chains recurse here directly, so a
// long flat chain is as dangerous as deep nesting.
ExprPtr Parser::parseIfStmt() {
  SourceLoc Loc = peek().Loc;
  if (atDepthLimit(Loc))
    return std::make_unique<NilLitExpr>(Loc);
  ++Depth;
  expect(TokenKind::KwIf, "to start if");
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  ExprPtr Then = parseBlock();
  ExprPtr Else;
  if (accept(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf))
      Else = parseIfStmt();
    else
      Else = parseBlock();
  }
  --Depth;
  return std::make_unique<IfExpr>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

ExprPtr Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;
  if (atDepthLimit(Loc))
    return std::make_unique<NilLitExpr>(Loc);
  ++Depth;
  ExprPtr S = parseStmtInner();
  --Depth;
  return S;
}

ExprPtr Parser::parseStmtInner() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::KwLet)) {
    Symbol Name;
    if (check(TokenKind::Ident))
      Name = internIdent(advance());
    else
      Diags.error(peek().Loc, "expected variable name after 'let'");
    expect(TokenKind::Assign, "in let binding");
    ExprPtr Init = parseExpr();
    expect(TokenKind::Semi, "after let binding");
    return std::make_unique<LetExpr>(Name, std::move(Init), Loc);
  }
  if (accept(TokenKind::KwReturn)) {
    ExprPtr Value;
    if (!check(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return");
    return std::make_unique<ReturnExpr>(std::move(Value), Loc);
  }
  if (check(TokenKind::KwIf))
    return parseIfStmt();
  if (accept(TokenKind::KwWhile)) {
    expect(TokenKind::LParen, "after 'while'");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    ExprPtr Body = parseBlock();
    return std::make_unique<WhileExpr>(std::move(Cond), std::move(Body), Loc);
  }
  ExprPtr E = parseExpr();
  expect(TokenKind::Semi, "after expression statement");
  return E;
}

ExprPtr Parser::parseExpr() {
  if (atDepthLimit(peek().Loc))
    return std::make_unique<NilLitExpr>(peek().Loc);
  ++Depth;
  ExprPtr E = parseAssignment();
  --Depth;
  return E;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseOr();
  if (!check(TokenKind::Assign))
    return Lhs;
  SourceLoc Loc = advance().Loc;
  ExprPtr Rhs = parseAssignment();
  if (auto *V = dyn_cast<VarRefExpr>(Lhs.get()))
    return std::make_unique<AssignVarExpr>(V->Name, std::move(Rhs), Loc);
  if (isa<SlotGetExpr>(Lhs.get())) {
    auto *S = cast<SlotGetExpr>(Lhs.get());
    return std::make_unique<SlotSetExpr>(std::move(S->Object), S->SlotName,
                                         std::move(Rhs), Loc);
  }
  Diags.error(Loc, "assignment target must be a variable or a slot");
  return Lhs;
}

ExprPtr Parser::makeSend(const std::string &Generic, std::vector<ExprPtr> Args,
                         SourceLoc Loc) {
  auto S = std::make_unique<SendExpr>(Symbols.intern(Generic),
                                      std::move(Args), Loc);
  S->DefinitelySend = true;
  return S;
}

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseAnd();
    // a || b  ==>  if (a) { true } else { b }
    Lhs = std::make_unique<IfExpr>(
        std::move(Lhs), std::make_unique<BoolLitExpr>(true, Loc),
        std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseComparison();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseComparison();
    // a && b  ==>  if (a) { b } else { false }
    Lhs = std::make_unique<IfExpr>(
        std::move(Lhs), std::move(Rhs),
        std::make_unique<BoolLitExpr>(false, Loc), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseComparison() {
  ExprPtr Lhs = parseAdditive();
  const char *Generic = nullptr;
  switch (peek().Kind) {
  case TokenKind::EqEq: Generic = "=="; break;
  case TokenKind::BangEq: Generic = "!="; break;
  case TokenKind::Less: Generic = "<"; break;
  case TokenKind::LessEq: Generic = "<="; break;
  case TokenKind::Greater: Generic = ">"; break;
  case TokenKind::GreaterEq: Generic = ">="; break;
  default: return Lhs;
  }
  SourceLoc Loc = advance().Loc;
  ExprPtr Rhs = parseAdditive();
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Lhs));
  Args.push_back(std::move(Rhs));
  return makeSend(Generic, std::move(Args), Loc);
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    const char *Generic = check(TokenKind::Plus) ? "+" : "-";
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseMultiplicative();
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(Lhs));
    Args.push_back(std::move(Rhs));
    Lhs = makeSend(Generic, std::move(Args), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    const char *Generic = check(TokenKind::Star)    ? "*"
                          : check(TokenKind::Slash) ? "/"
                                                    : "%";
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseUnary();
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(Lhs));
    Args.push_back(std::move(Rhs));
    Lhs = makeSend(Generic, std::move(Args), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseUnary() {
  if (atDepthLimit(peek().Loc))
    return std::make_unique<NilLitExpr>(peek().Loc);
  ++Depth;
  ExprPtr E = parseUnaryInner();
  --Depth;
  return E;
}

ExprPtr Parser::parseUnaryInner() {
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = advance().Loc;
    std::vector<ExprPtr> Args;
    Args.push_back(parseUnary());
    return makeSend("not", std::move(Args), Loc);
  }
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    // Fold negative integer literals directly.
    if (check(TokenKind::IntLit)) {
      const Token &T = advance();
      return std::make_unique<IntLitExpr>(-T.IntValue, Loc);
    }
    std::vector<ExprPtr> Args;
    Args.push_back(parseUnary());
    return makeSend("neg", std::move(Args), Loc);
  }
  return parsePostfix();
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to open argument list");
  if (!check(TokenKind::RParen)) {
    do
      Args.push_back(parseExpr());
    while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    if (check(TokenKind::Dot)) {
      SourceLoc Loc = advance().Loc;
      if (!check(TokenKind::Ident)) {
        Diags.error(peek().Loc, "expected member name after '.'");
        return E;
      }
      Symbol Name = internIdent(advance());
      if (check(TokenKind::LParen)) {
        // e.m(args) — a send with e as the receiver (first argument).
        std::vector<ExprPtr> Args = parseArgs();
        std::vector<ExprPtr> All;
        All.push_back(std::move(E));
        for (auto &A : Args)
          All.push_back(std::move(A));
        auto S = std::make_unique<SendExpr>(Name, std::move(All), Loc);
        S->DefinitelySend = true;
        E = std::move(S);
      } else {
        E = std::make_unique<SlotGetExpr>(std::move(E), Name, Loc);
      }
      continue;
    }
    if (check(TokenKind::LParen)) {
      // e(args) — a closure call on a computed callee.  (Bare-identifier
      // calls were already consumed inside parsePrimary.)
      SourceLoc Loc = peek().Loc;
      std::vector<ExprPtr> Args = parseArgs();
      E = std::make_unique<ClosureCallExpr>(std::move(E), std::move(Args),
                                            Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::IntLit:
    return std::make_unique<IntLitExpr>(advance().IntValue, Loc);
  case TokenKind::StrLit:
    return std::make_unique<StrLitExpr>(advance().Text, Loc);
  case TokenKind::KwTrue:
    advance();
    return std::make_unique<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    advance();
    return std::make_unique<BoolLitExpr>(false, Loc);
  case TokenKind::KwNil:
    advance();
    return std::make_unique<NilLitExpr>(Loc);
  case TokenKind::Ident: {
    Symbol Name = internIdent(advance());
    if (check(TokenKind::LParen)) {
      // f(args): a send unless `f` is lexically bound; the Resolver
      // rewrites bound names into closure calls.
      std::vector<ExprPtr> Args = parseArgs();
      return std::make_unique<SendExpr>(Name, std::move(Args), Loc);
    }
    return std::make_unique<VarRefExpr>(Name, Loc);
  }
  case TokenKind::KwNew: {
    advance();
    Symbol ClassName;
    if (check(TokenKind::Ident))
      ClassName = internIdent(advance());
    else
      Diags.error(peek().Loc, "expected class name after 'new'");
    std::vector<std::pair<Symbol, ExprPtr>> Inits;
    if (accept(TokenKind::LBrace)) {
      if (!check(TokenKind::RBrace)) {
        do {
          Symbol SlotName;
          if (check(TokenKind::Ident))
            SlotName = internIdent(advance());
          else
            Diags.error(peek().Loc, "expected slot name in initializer");
          expect(TokenKind::Assign, "in slot initializer");
          Inits.emplace_back(SlotName, parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RBrace, "to close initializer list");
    }
    return std::make_unique<NewExpr>(ClassName, std::move(Inits), Loc);
  }
  case TokenKind::KwFn: {
    advance();
    expect(TokenKind::LParen, "after 'fn'");
    std::vector<Symbol> Params;
    if (!check(TokenKind::RParen)) {
      do {
        if (check(TokenKind::Ident))
          Params.push_back(internIdent(advance()));
        else {
          Diags.error(peek().Loc, "expected closure parameter name");
          break;
        }
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close closure parameters");
    ExprPtr Body = parseBlock();
    return std::make_unique<ClosureLitExpr>(std::move(Params),
                                            std::move(Body), Loc);
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(peek().Kind));
    advance();
    return std::make_unique<NilLitExpr>(Loc);
  }
}

//===- lang/Lexer.h - Mica lexer -------------------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for Mica.  Comments run from "//" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_LEXER_H
#define SELSPEC_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace selspec {

class Lexer {
public:
  Lexer(std::string Source, Diagnostics &Diags);

  /// Lexes the whole input.  The returned vector always ends with an Eof
  /// token; on error, diagnostics are emitted and offending characters are
  /// skipped so parsing can still be attempted.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  std::string Src;
  Diagnostics &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace selspec

#endif // SELSPEC_LANG_LEXER_H

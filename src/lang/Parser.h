//===- lang/Parser.h - Mica parser -----------------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for Mica.
///
/// Grammar sketch:
/// \code
///   program    := (classDecl | methodDecl)*
///   classDecl  := 'class' ID ('isa' ID (',' ID)*)? ('{' ('slot' ID ';')* '}')? ';'?
///   methodDecl := 'method' ID '(' (param (',' param)*)? ')' block
///   param      := ID ('@' ID)?
///   block      := '{' stmt* '}'
///   stmt       := 'let' ID ':=' expr ';' | 'return' expr? ';'
///              | 'if' '(' expr ')' block ('else' (block|ifstmt))?
///              | 'while' '(' expr ')' block | expr ';'
///   expr       := assignment with the usual operator precedence; binary
///                 operators desugar to message sends ('a + b' = '+'(a, b)),
///                 '&&'/'||' desugar to 'if', '!'/'-' to 'not'/'neg' sends.
///   postfix    := primary ('.' ID ('(' args ')')? | '(' args ')')*
///                 -- 'e.m(args)' is a send with e as the receiver,
///                    'e.s' is a slot access, 'e(args)' a closure call.
///   primary    := literals | ID ('(' args ')')? | 'new' ID ('{' inits '}')?
///              | 'fn' '(' IDs ')' block | '(' expr ')'
/// \endcode
///
/// Whether `f(x)` is a message send or a closure call depends on whether
/// `f` is lexically bound; the parser always emits a SendExpr and the
/// Resolver rewrites bound names into ClosureCallExprs.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_PARSER_H
#define SELSPEC_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"
#include "support/Diagnostics.h"

namespace selspec {

class Parser {
public:
  Parser(std::vector<Token> Tokens, SymbolTable &Symbols, Diagnostics &Diags);

  /// Parses a whole module.  Emits diagnostics and recovers at declaration
  /// boundaries; check Diags.hasErrors() before using the result.
  Module parseModule();

  /// Convenience: lex + parse \p Source into \p M, appending declarations.
  static bool parseSource(const std::string &Source, SymbolTable &Symbols,
                          Diagnostics &Diags, Module &M);

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind K) const { return peek().Kind == K; }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  Symbol internIdent(const Token &T) { return Symbols.intern(T.Text); }
  void syncToDecl();

  /// True once expression/statement nesting exceeds MaxDepth.  The parser
  /// is recursive-descent, so unbounded nesting ("((((…", "!!!!…", deeply
  /// nested blocks) would otherwise exhaust the native stack; on overflow
  /// one error is emitted and the rest of the input is drained.
  bool atDepthLimit(SourceLoc Loc);

  ClassDecl parseClassDecl();
  MethodDecl parseMethodDecl();
  ExprPtr parseBlock();
  ExprPtr parseStmt();
  ExprPtr parseStmtInner();
  ExprPtr parseIfStmt();
  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parseUnaryInner();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  /// Builds a send `Generic(Args...)`.
  ExprPtr makeSend(const std::string &Generic, std::vector<ExprPtr> Args,
                   SourceLoc Loc);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  SymbolTable &Symbols;
  Diagnostics &Diags;
  /// Current recursion depth across parseStmt/parseExpr/parseUnary.
  unsigned Depth = 0;
  bool DepthOverflow = false;
  static constexpr unsigned MaxDepth = 256;
};

} // namespace selspec

#endif // SELSPEC_LANG_PARSER_H

//===- lang/Resolver.h - Name resolution and call-site numbering -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Resolver runs once per user method after all modules are loaded:
///  - binds variable references against lexical scopes (formals, lets,
///    closure parameters) and reports unknown names;
///  - rewrites `f(args)` into a closure call when `f` is lexically bound,
///    otherwise binds it to the generic function (name, arity);
///  - resolves `new C` class names;
///  - numbers every message-send site with a dense program-wide CallSiteId
///    and registers it in the Program's call-site table.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_LANG_RESOLVER_H
#define SELSPEC_LANG_RESOLVER_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <vector>

namespace selspec {

class Program;
struct MethodInfo;

class Resolver {
public:
  Resolver(Program &P, Diagnostics &Diags) : P(P), Diags(Diags) {}

  /// Resolves \p M's body in place.
  void resolveMethod(MethodInfo &M);

private:
  void resolveExpr(ExprPtr &E);
  bool isBound(Symbol Name) const;
  void bind(Symbol Name) { Scopes.back().push_back(Name); }
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  Program &P;
  Diagnostics &Diags;
  std::vector<std::vector<Symbol>> Scopes;
  MethodId CurrentMethod;
};

} // namespace selspec

#endif // SELSPEC_LANG_RESOLVER_H

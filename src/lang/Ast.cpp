//===- lang/Ast.cpp - Mica AST cloning ------------------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace selspec;

Expr::~Expr() = default;

const char *selspec::exprKindName(Expr::Kind K) {
  switch (K) {
  case Expr::Kind::IntLit:      return "IntLit";
  case Expr::Kind::BoolLit:     return "BoolLit";
  case Expr::Kind::StrLit:      return "StrLit";
  case Expr::Kind::NilLit:      return "NilLit";
  case Expr::Kind::VarRef:      return "VarRef";
  case Expr::Kind::AssignVar:   return "AssignVar";
  case Expr::Kind::Let:         return "Let";
  case Expr::Kind::Seq:         return "Seq";
  case Expr::Kind::If:          return "If";
  case Expr::Kind::While:       return "While";
  case Expr::Kind::Send:        return "Send";
  case Expr::Kind::ClosureCall: return "ClosureCall";
  case Expr::Kind::ClosureLit:  return "ClosureLit";
  case Expr::Kind::New:         return "New";
  case Expr::Kind::SlotGet:     return "SlotGet";
  case Expr::Kind::SlotSet:     return "SlotSet";
  case Expr::Kind::Return:      return "Return";
  case Expr::Kind::Inlined:     return "Inlined";
  }
  return "?";
}

static std::vector<ExprPtr> cloneVec(const std::vector<ExprPtr> &Elems) {
  std::vector<ExprPtr> Out;
  Out.reserve(Elems.size());
  for (const ExprPtr &E : Elems)
    Out.push_back(E->clone());
  return Out;
}

ExprPtr Expr::clone() const {
  switch (getKind()) {
  case Kind::IntLit: {
    const auto *E = cast<IntLitExpr>(this);
    return std::make_unique<IntLitExpr>(E->Value, getLoc());
  }
  case Kind::BoolLit: {
    const auto *E = cast<BoolLitExpr>(this);
    return std::make_unique<BoolLitExpr>(E->Value, getLoc());
  }
  case Kind::StrLit: {
    const auto *E = cast<StrLitExpr>(this);
    return std::make_unique<StrLitExpr>(E->Value, getLoc());
  }
  case Kind::NilLit:
    return std::make_unique<NilLitExpr>(getLoc());
  case Kind::VarRef: {
    const auto *E = cast<VarRefExpr>(this);
    auto N = std::make_unique<VarRefExpr>(E->Name, getLoc());
    N->Slot = E->Slot;
    return N;
  }
  case Kind::AssignVar: {
    const auto *E = cast<AssignVarExpr>(this);
    auto N = std::make_unique<AssignVarExpr>(E->Name, E->Value->clone(),
                                             getLoc());
    N->Slot = E->Slot;
    return N;
  }
  case Kind::Let: {
    const auto *E = cast<LetExpr>(this);
    auto N = std::make_unique<LetExpr>(E->Name, E->Init->clone(), getLoc());
    N->Slot = E->Slot;
    return N;
  }
  case Kind::Seq: {
    const auto *E = cast<SeqExpr>(this);
    return std::make_unique<SeqExpr>(cloneVec(E->Elems), getLoc());
  }
  case Kind::If: {
    const auto *E = cast<IfExpr>(this);
    return std::make_unique<IfExpr>(E->Cond->clone(), E->Then->clone(),
                                    E->Else ? E->Else->clone() : nullptr,
                                    getLoc());
  }
  case Kind::While: {
    const auto *E = cast<WhileExpr>(this);
    return std::make_unique<WhileExpr>(E->Cond->clone(), E->Body->clone(),
                                       getLoc());
  }
  case Kind::Send: {
    const auto *E = cast<SendExpr>(this);
    auto N = std::make_unique<SendExpr>(E->GenericName, cloneVec(E->Args),
                                        getLoc());
    N->DefinitelySend = E->DefinitelySend;
    N->Site = E->Site;
    N->Generic = E->Generic;
    N->Binding = E->Binding;
    return N;
  }
  case Kind::ClosureCall: {
    const auto *E = cast<ClosureCallExpr>(this);
    return std::make_unique<ClosureCallExpr>(E->Callee->clone(),
                                             cloneVec(E->Args), getLoc());
  }
  case Kind::ClosureLit: {
    const auto *E = cast<ClosureLitExpr>(this);
    auto N = std::make_unique<ClosureLitExpr>(E->Params, E->Body->clone(),
                                              getLoc());
    N->Layout = E->Layout;
    N->Captures = E->Captures;
    return N;
  }
  case Kind::New: {
    const auto *E = cast<NewExpr>(this);
    std::vector<std::pair<Symbol, ExprPtr>> Inits;
    Inits.reserve(E->Inits.size());
    for (const auto &[S, V] : E->Inits)
      Inits.emplace_back(S, V->clone());
    auto N = std::make_unique<NewExpr>(E->ClassName, std::move(Inits),
                                       getLoc());
    N->Class = E->Class;
    return N;
  }
  case Kind::SlotGet: {
    const auto *E = cast<SlotGetExpr>(this);
    return std::make_unique<SlotGetExpr>(E->Object->clone(), E->SlotName,
                                         getLoc());
  }
  case Kind::SlotSet: {
    const auto *E = cast<SlotSetExpr>(this);
    return std::make_unique<SlotSetExpr>(E->Object->clone(), E->SlotName,
                                         E->Value->clone(), getLoc());
  }
  case Kind::Return: {
    const auto *E = cast<ReturnExpr>(this);
    auto N = std::make_unique<ReturnExpr>(
        E->Value ? E->Value->clone() : nullptr, getLoc());
    N->Boundary = E->Boundary;
    return N;
  }
  case Kind::Inlined: {
    const auto *E = cast<InlinedExpr>(this);
    std::vector<std::pair<Symbol, ExprPtr>> Bindings;
    Bindings.reserve(E->Bindings.size());
    for (const auto &[S, V] : E->Bindings)
      Bindings.emplace_back(S, V->clone());
    auto N = std::make_unique<InlinedExpr>(std::move(Bindings),
                                           E->Body->clone(), E->Boundary,
                                           getLoc());
    N->OriginSite = E->OriginSite;
    N->BindingSlots = E->BindingSlots;
    return N;
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

//===- bytecode/BytecodeCompiler.cpp - AST -> register bytecode ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// The lowering discipline that keeps RunStats bit-identical to the AST
// walker: every AST node contributes exactly one charging point, emitted
// in pre-order.  Leaves whose whole action is trivial fuse charge+action
// into one instruction; composite nodes emit a Charge marker, then their
// children's code, then raw action instructions.  Raw instructions (Move,
// Jump, CondBranch, stores, InitSlot, ...) charge nothing because the AST
// walker had no node there.
//
// Register model: expression results flow through temp registers, which
// are frame slots past the body's source layout.  compileExpr(E, Dst)
// leaves E's value in Dst and may clobber any register > Dst; sequential
// children that must coexist (call arguments) are laid out contiguously
// at Dst, Dst+1, ..., which is exactly the calling convention (callees
// read arguments from the caller's register window).
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeCompiler.h"

#include "hierarchy/Program.h"
#include "opt/CompiledProgram.h"
#include "support/Metrics.h"

#include <limits>

using namespace selspec;

namespace {

metrics::Counter CtrCompiledFunctions("bytecode.compiled_functions");
metrics::Counter CtrCodeBytes("bytecode.code_bytes");
metrics::Counter CtrCompileFallbacks("bytecode.compile_fallbacks");

class ModuleBuilder {
public:
  ModuleBuilder(const CompiledProgram &CP, BcModule &Mod)
      : CP(CP), P(CP.program()), Mod(Mod) {}

  bool run();
  const std::string &error() const { return Error; }

private:
  /// One open InlinedExpr region during body compilation.
  struct OpenRegion {
    uint32_t Boundary;
    uint32_t Dst;
    std::vector<uint32_t> ExitJumps; ///< pcs of Jumps to patch to End.
  };

  /// Per-function compilation state (saved/restored around closure
  /// compilation, which nests).
  struct FnState {
    BcFunction *Fn = nullptr;
    uint32_t MaxReg = 0;
    bool IsMethod = false;
    std::vector<OpenRegion> Open;
  };

  BcFunction *compileMethod(const CompiledMethod &CM);
  BcFunction *getOrCompileClosure(const ClosureLitExpr *Lit);
  bool compileInto(BcFunction &Fn, const Expr *Body,
                   const FrameLayout &SrcLayout);
  bool compileExpr(const Expr *E, uint32_t Dst);

  bool fail(const std::string &Why) {
    if (Error.empty())
      Error = Why;
    return false;
  }

  uint32_t emit(BcOp Op, SourceLoc Loc, uint8_t K = 0, uint32_t A = 0,
                uint32_t B = 0, uint32_t C = 0, uint32_t D = 0) {
    Insn I;
    I.Op = Op;
    I.K = K;
    I.A = static_cast<uint16_t>(A);
    I.B = static_cast<uint16_t>(B);
    I.C = static_cast<uint16_t>(C);
    I.D = D;
    S.Fn->Code.push_back(I);
    S.Fn->Locs.push_back(Loc);
    return static_cast<uint32_t>(S.Fn->Code.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(S.Fn->Code.size()); }
  void patch(uint32_t Pc, uint32_t Target) { S.Fn->Code[Pc].D = Target; }

  /// Registers a destination/operand register; the uint16 encoding bound
  /// is checked once per function in compileInto.
  bool touchReg(uint32_t Reg) {
    if (Reg + 1 > S.MaxReg)
      S.MaxReg = Reg + 1;
    return true;
  }

  bool index16(uint32_t V) { return V <= 0xFFFF; }

  const CompiledProgram &CP;
  const Program &P;
  BcModule &Mod;
  FnState S;
  std::string Error;
};

bool ModuleBuilder::run() {
  const std::vector<CompiledMethod> &Versions = CP.versions();
  Mod.ByVersion.assign(Versions.size(), nullptr);
  for (const CompiledMethod &CM : Versions) {
    if (!CM.Body)
      continue; // builtin: invoked as a primitive, no body to lower
    BcFunction *Fn = compileMethod(CM);
    if (!Fn)
      return false;
    Mod.ByVersion[CM.Index] = Fn;
  }
  Mod.NumFunctions = static_cast<uint32_t>(Mod.Functions.size());
  for (const std::unique_ptr<BcFunction> &Fn : Mod.Functions)
    Mod.CodeBytes += Fn->Code.size() * sizeof(Insn);
  return true;
}

BcFunction *ModuleBuilder::compileMethod(const CompiledMethod &CM) {
  if (!CM.Layout.Resolved) {
    fail("method version " + P.methodLabel(CM.Source) +
         " was not slot-resolved");
    return nullptr;
  }
  Mod.Functions.push_back(std::make_unique<BcFunction>());
  BcFunction *Fn = Mod.Functions.back().get();
  Fn->IsMethod = true;
  Fn->Source = CM.Source;
  Fn->Method = &CM;
  Fn->Name = P.methodLabel(CM.Source) + " #" + std::to_string(CM.Index);

  FnState Saved = std::move(S);
  S = FnState();
  S.Fn = Fn;
  S.IsMethod = true;
  bool Ok = compileInto(*Fn, CM.Body.get(), CM.Layout);
  S = std::move(Saved);
  return Ok ? Fn : nullptr;
}

BcFunction *ModuleBuilder::getOrCompileClosure(const ClosureLitExpr *Lit) {
  auto It = Mod.ByClosure.find(Lit);
  if (It != Mod.ByClosure.end())
    return It->second;
  if (!Lit->Layout.Resolved) {
    fail("closure literal was not slot-resolved");
    return nullptr;
  }
  Mod.Functions.push_back(std::make_unique<BcFunction>());
  BcFunction *Fn = Mod.Functions.back().get();
  Fn->IsMethod = false;
  Fn->Lit = Lit;
  Fn->Name = "closure @" + std::to_string(Lit->getLoc().Line) + ":" +
             std::to_string(Lit->getLoc().Col);

  FnState Saved = std::move(S);
  S = FnState();
  S.Fn = Fn;
  S.IsMethod = false;
  bool Ok = compileInto(*Fn, Lit->Body.get(), Lit->Layout);
  S = std::move(Saved);
  if (!Ok)
    return nullptr;
  Mod.ByClosure.emplace(Lit, Fn);
  return Fn;
}

bool ModuleBuilder::compileInto(BcFunction &Fn, const Expr *Body,
                                const FrameLayout &SrcLayout) {
  Fn.FirstTemp = SrcLayout.NumSlots;
  S.MaxReg = SrcLayout.NumSlots;
  if (!compileExpr(Body, SrcLayout.NumSlots))
    return false;
  emit(BcOp::RetLocal, Body->getLoc(), 0, SrcLayout.NumSlots);
  if (S.MaxReg > 0xFFFF)
    return fail("function '" + Fn.Name + "' needs " +
                std::to_string(S.MaxReg) + " registers (uint16 encoding)");
  Fn.NumTemps = S.MaxReg - SrcLayout.NumSlots;
  Fn.Layout = SrcLayout;
  Fn.Layout.NumSlots = S.MaxReg;
  return true;
}

bool ModuleBuilder::compileExpr(const Expr *E, uint32_t Dst) {
  touchReg(Dst);
  const SourceLoc Loc = E->getLoc();
  const uint8_t Kind = static_cast<uint8_t>(E->getKind());

  switch (E->getKind()) {
  case Expr::Kind::IntLit: {
    int64_t V = cast<IntLitExpr>(E)->Value;
    if (V >= std::numeric_limits<int32_t>::min() &&
        V <= std::numeric_limits<int32_t>::max()) {
      emit(BcOp::LoadInt, Loc, 1, Dst, 0, 0,
           static_cast<uint32_t>(static_cast<int32_t>(V)));
    } else {
      S.Fn->IntPool.push_back(V);
      emit(BcOp::LoadInt, Loc, 0, Dst, 0, 0,
           static_cast<uint32_t>(S.Fn->IntPool.size() - 1));
    }
    return true;
  }

  case Expr::Kind::BoolLit:
    emit(BcOp::LoadBool, Loc, cast<BoolLitExpr>(E)->Value ? 1 : 0, Dst);
    return true;

  case Expr::Kind::StrLit:
    S.Fn->StrPool.push_back(&cast<StrLitExpr>(E)->Value);
    emit(BcOp::LoadStr, Loc, 0, Dst, 0, 0,
         static_cast<uint32_t>(S.Fn->StrPool.size() - 1));
    return true;

  case Expr::Kind::NilLit:
    emit(BcOp::LoadNil, Loc, 0, Dst);
    return true;

  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    if (!index16(V->Slot.Index))
      return fail("variable index exceeds uint16 encoding");
    switch (V->Slot.Loc) {
    case VarLoc::Slot:
      emit(BcOp::LoadVarSlot, Loc, 0, Dst, V->Slot.Index);
      return true;
    case VarLoc::Cell:
      emit(BcOp::LoadVarCell, Loc, 0, Dst, V->Slot.Index);
      return true;
    case VarLoc::Capture:
      emit(BcOp::LoadVarCapture, Loc, 0, Dst, V->Slot.Index);
      return true;
    case VarLoc::Unresolved:
      break;
    }
    return fail("unresolved variable '" + P.Syms.name(V->Name) + "'");
  }

  case Expr::Kind::AssignVar: {
    const auto *A = cast<AssignVarExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (!compileExpr(A->Value.get(), Dst))
      return false;
    if (!index16(A->Slot.Index))
      return fail("variable index exceeds uint16 encoding");
    switch (A->Slot.Loc) {
    case VarLoc::Slot:
      emit(BcOp::StoreSlot, Loc, 0, Dst, A->Slot.Index);
      return true;
    case VarLoc::Cell:
      emit(BcOp::StoreCell, Loc, 0, Dst, A->Slot.Index);
      return true;
    case VarLoc::Capture:
      emit(BcOp::StoreCapture, Loc, 0, Dst, A->Slot.Index);
      return true;
    case VarLoc::Unresolved:
      break;
    }
    return fail("assignment to unresolved variable '" +
                P.Syms.name(A->Name) + "'");
  }

  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (!compileExpr(L->Init.get(), Dst))
      return false;
    if (!index16(L->Slot.Index))
      return fail("variable index exceeds uint16 encoding");
    // Mirrors the AST walker: a Cell-located let makes a fresh cell per
    // execution; anything else stores into the plain slot.
    if (L->Slot.Loc == VarLoc::Cell)
      emit(BcOp::LetCell, Loc, 0, Dst, L->Slot.Index);
    else
      emit(BcOp::StoreSlot, Loc, 0, Dst, L->Slot.Index);
    emit(BcOp::LoadNilRaw, Loc, 0, Dst);
    return true;
  }

  case Expr::Kind::Seq: {
    const auto *Sq = cast<SeqExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (Sq->Elems.empty()) {
      emit(BcOp::LoadNilRaw, Loc, 0, Dst);
      return true;
    }
    for (const ExprPtr &Elem : Sq->Elems)
      if (!compileExpr(Elem.get(), Dst))
        return false;
    return true;
  }

  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (!compileExpr(I->Cond.get(), Dst))
      return false;
    uint32_t Cb = emit(BcOp::CondBranch, I->Cond->getLoc(), 0, Dst);
    if (!compileExpr(I->Then.get(), Dst))
      return false;
    uint32_t J = emit(BcOp::Jump, Loc);
    patch(Cb, here());
    if (I->Else) {
      if (!compileExpr(I->Else.get(), Dst))
        return false;
    } else {
      emit(BcOp::LoadNilRaw, Loc, 0, Dst);
    }
    patch(J, here());
    return true;
  }

  case Expr::Kind::While: {
    const auto *W = cast<WhileExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    uint32_t Loop = here();
    if (!compileExpr(W->Cond.get(), Dst))
      return false;
    uint32_t Cb = emit(BcOp::CondBranch, W->Cond->getLoc(), 1, Dst);
    if (!compileExpr(W->Body.get(), Dst))
      return false;
    emit(BcOp::Jump, Loc, 0, 0, 0, 0, Loop);
    patch(Cb, here());
    emit(BcOp::LoadNilRaw, Loc, 0, Dst);
    return true;
  }

  case Expr::Kind::Send: {
    const auto *Sd = cast<SendExpr>(E);
    if (Sd->Args.size() > 0xFFFF)
      return fail("send arity exceeds uint16 encoding");
    emit(BcOp::Charge, Loc, Kind);
    for (size_t I = 0; I != Sd->Args.size(); ++I)
      if (!compileExpr(Sd->Args[I].get(), Dst + static_cast<uint32_t>(I)))
        return false;

    BcSite Site;
    Site.S = Sd;
    BcOp Op;
    switch (Sd->Binding.Kind) {
    case SendBindKind::Dynamic:
      Op = BcOp::CallDyn;
      break;
    case SendBindKind::Static:
      Op = BcOp::CallStatic;
      break;
    case SendBindKind::StaticSelect:
      Op = BcOp::CallSelect;
      break;
    case SendBindKind::InlinePrim:
      Op = BcOp::CallPrim;
      Site.Prim = P.method(Sd->Binding.Target).Prim;
      break;
    case SendBindKind::Predicted:
      Op = BcOp::CallPred;
      Site.Prim = P.method(Sd->Binding.Target).Prim;
      break;
    case SendBindKind::FeedbackGuard: {
      Op = BcOp::CallFeedback;
      const MethodInfo &M = P.method(Sd->Binding.Target);
      Site.TargetIsBuiltin = M.isBuiltin();
      Site.TargetPrim = M.Prim;
      break;
    }
    }
    Site.IcSlot = Mod.NumIcSlots++;
    S.Fn->Sites.push_back(Site);
    emit(Op, Loc, 0, Dst, Dst, static_cast<uint32_t>(Sd->Args.size()),
         static_cast<uint32_t>(S.Fn->Sites.size() - 1));
    return true;
  }

  case Expr::Kind::ClosureCall: {
    const auto *Call = cast<ClosureCallExpr>(E);
    if (Call->Args.size() > 0xFFFF)
      return fail("closure-call arity exceeds uint16 encoding");
    emit(BcOp::Charge, Loc, Kind);
    if (!compileExpr(Call->Callee.get(), Dst))
      return false;
    for (size_t I = 0; I != Call->Args.size(); ++I)
      if (!compileExpr(Call->Args[I].get(),
                       Dst + 1 + static_cast<uint32_t>(I)))
        return false;
    emit(BcOp::CallClosure, Loc, 0, Dst, Dst,
         static_cast<uint32_t>(Call->Args.size()));
    return true;
  }

  case Expr::Kind::ClosureLit: {
    const auto *Lit = cast<ClosureLitExpr>(E);
    BcFunction *CF = getOrCompileClosure(Lit);
    if (!CF)
      return false;
    S.Fn->Closures.push_back(BcClosureRef{Lit, CF});
    emit(BcOp::MakeClosure, Loc, 0, Dst, 0, 0,
         static_cast<uint32_t>(S.Fn->Closures.size() - 1));
    return true;
  }

  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    if (!N->Class.isValid())
      return fail("unresolved class in new expression");
    BcNewSite Site;
    Site.N = N;
    Site.LayoutSize =
        static_cast<uint32_t>(P.Classes.info(N->Class).Layout.size());
    S.Fn->NewSites.push_back(Site);
    emit(BcOp::NewObj, Loc, 0, Dst, 0, 0,
         static_cast<uint32_t>(S.Fn->NewSites.size() - 1));
    for (const auto &[SlotName, Init] : N->Inits) {
      if (!compileExpr(Init.get(), Dst + 1))
        return false;
      int Idx = P.Classes.slotIndex(N->Class, SlotName);
      if (Idx < 0 || !index16(static_cast<uint32_t>(Idx)))
        return fail("unresolvable slot initializer in new expression");
      emit(BcOp::InitSlot, Init->getLoc(), 0, Dst,
           static_cast<uint32_t>(Idx), Dst + 1);
    }
    return true;
  }

  case Expr::Kind::SlotGet: {
    const auto *G = cast<SlotGetExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (!compileExpr(G->Object.get(), Dst))
      return false;
    S.Fn->SlotSites.push_back(BcSlotSite{G->SlotName, Mod.NumSlotCacheSlots++});
    emit(BcOp::GetSlot, Loc, 0, Dst, Dst, 0,
         static_cast<uint32_t>(S.Fn->SlotSites.size() - 1));
    return true;
  }

  case Expr::Kind::SlotSet: {
    const auto *St = cast<SlotSetExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (!compileExpr(St->Object.get(), Dst))
      return false;
    if (!compileExpr(St->Value.get(), Dst + 1))
      return false;
    S.Fn->SlotSites.push_back(BcSlotSite{St->SlotName, Mod.NumSlotCacheSlots++});
    emit(BcOp::SetSlot, Loc, 0, Dst, Dst, Dst + 1,
         static_cast<uint32_t>(S.Fn->SlotSites.size() - 1));
    return true;
  }

  case Expr::Kind::Return: {
    const auto *R = cast<ReturnExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    if (R->Value) {
      if (!compileExpr(R->Value.get(), Dst))
        return false;
    } else {
      emit(BcOp::LoadNilRaw, Loc, 0, Dst);
    }
    // A return lexically inside its matching inlined region resolves
    // statically: land the value in the region's result register and jump
    // to the region's end.  (The innermost matching region corresponds to
    // the nearest enclosing InlinedExpr the AST walker's unwinding would
    // reach first.)
    for (auto It = S.Open.rbegin(); It != S.Open.rend(); ++It) {
      if (It->Boundary != R->Boundary)
        continue;
      if (It->Dst != Dst)
        emit(BcOp::Move, Loc, 0, It->Dst, Dst);
      It->ExitJumps.push_back(emit(BcOp::Jump, Loc));
      return true;
    }
    if (R->Boundary == 0 && S.IsMethod) {
      emit(BcOp::RetLocal, Loc, 0, Dst);
      return true;
    }
    emit(BcOp::RetNonLocal, Loc, 0, Dst, 0, 0, R->Boundary);
    return true;
  }

  case Expr::Kind::Inlined: {
    const auto *In = cast<InlinedExpr>(E);
    emit(BcOp::Charge, Loc, Kind);
    emit(BcOp::StackCheck, Loc);
    if (In->BindingSlots.size() != In->Bindings.size())
      return fail("inlined body is missing binding slot assignments");
    for (size_t I = 0; I != In->Bindings.size(); ++I) {
      if (!compileExpr(In->Bindings[I].second.get(), Dst))
        return false;
      const SlotRef &Where = In->BindingSlots[I];
      if (!index16(Where.Index))
        return fail("binding index exceeds uint16 encoding");
      // Mirrors the AST walker's binding stores (Cell -> fresh cell,
      // anything else -> plain slot).
      if (Where.Loc == VarLoc::Cell)
        emit(BcOp::LetCell, In->Bindings[I].second->getLoc(), 0, Dst,
             Where.Index);
      else
        emit(BcOp::StoreSlot, In->Bindings[I].second->getLoc(), 0, Dst,
             Where.Index);
    }
    S.Open.push_back(OpenRegion{In->Boundary, Dst, {}});
    uint32_t Start = here();
    if (!compileExpr(In->Body.get(), Dst))
      return false;
    uint32_t End = here();
    for (uint32_t J : S.Open.back().ExitJumps)
      patch(J, End);
    S.Fn->Regions.push_back(
        BcRegion{Start, End, In->Boundary, static_cast<uint16_t>(Dst)});
    S.Open.pop_back();
    return true;
  }
  }
  return fail("unknown expression kind");
}

} // namespace

BcModule selspec::compileToBytecode(const CompiledProgram &CP) {
  BcModule Mod;
  ModuleBuilder B(CP, Mod);
  if (B.run()) {
    Mod.Ok = true;
    CtrCompiledFunctions.add(Mod.NumFunctions);
    CtrCodeBytes.add(Mod.CodeBytes);
  } else {
    Mod.Ok = false;
    Mod.Error = B.error();
    CtrCompileFallbacks.add();
  }
  return Mod;
}

//===- bytecode/Bytecode.h - Flat register bytecode format -----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat register-bytecode execution tier's program representation.
///
/// Every optimized, slot-resolved body (compiled method version or closure
/// literal) lowers to one BcFunction: a linear instruction stream over a
/// register file that is simply the tail of the body's activation frame
/// (Frame slots [Layout-slots, Layout-slots + temps)), so Frame/FramePool
/// are reused unchanged and temporaries are as cheap as locals.
///
/// The lowering preserves the AST walker's *exact* accounting: each AST
/// node corresponds to exactly one charging point in the stream, emitted
/// in pre-order (charge at node entry, before children), so RunStats —
/// NodesEvaluated, NodeMix, Cycles, dispatch counters, PeakDepth, trap
/// kinds — are bit-identical between tiers.  Charging is either fused
/// into a leaf instruction (literals, variable reads) or carried by a
/// dedicated Charge instruction preceding the node's child code.
///
/// Call sites consult a small inline cache of (class tuple -> method,
/// version) entries before the Dispatcher's PIC/memo machinery, so the
/// hot dispatch path is a handful of compares instead of hash probes.
/// The mutable IC state does NOT live in the module: a BcModule is part
/// of an immutable, thread-shared CompiledSnapshot, so each BcSite (and
/// each slot-access site) carries only a dense index (IcSlot/CacheSlot)
/// into a per-interpreter — hence per-thread — IC side-table that the
/// BytecodeInterpreter allocates from NumIcSlots/NumSlotCacheSlots.  The
/// 12-byte instruction encoding is unchanged; instructions still name
/// sites, sites name side-table slots.  IC state is observability only —
/// a hit returns exactly what Dispatcher::lookup +
/// CompiledProgram::selectVersion would return for the same immutable
/// program, which the SELSPEC_IC_AUDIT=1 mode re-verifies (counting
/// `bytecode.ic_misdispatch`).
///
/// Non-local returns: boundary-B returns lexically inside their matching
/// InlinedExpr region resolve statically to a move + jump; all others
/// become RetNonLocal, unwound at call instructions against the
/// per-function BcRegion table (pc-range containment picks the innermost
/// matching region, the bytecode analogue of the nearest enclosing
/// InlinedExpr catch in the AST walker).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_BYTECODE_BYTECODE_H
#define SELSPEC_BYTECODE_BYTECODE_H

#include "hierarchy/PrimOp.h"
#include "lang/Ast.h"
#include "support/Ids.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace selspec {

class CompiledProgram;
struct CompiledMethod;

/// Opcodes of the register bytecode.  "Charged" ops fuse the AST node's
/// chargeNode (budget/deadline accounting + NodeMix) with their action;
/// "raw" ops are lowering glue that the AST walker had no node for and
/// charge nothing.
enum class BcOp : uint8_t {
  // Charged, fused leaves.
  LoadInt,        ///< IntLit.  A=dst; K=1: D is an int32 immediate, else
                  ///< D indexes IntPool.
  LoadBool,       ///< BoolLit.  A=dst, K=value.
  LoadStr,        ///< StrLit.  A=dst, D=StrPool index (heap-checked).
  LoadNil,        ///< NilLit.  A=dst.
  LoadVarSlot,    ///< VarRef of a frame slot.  A=dst, B=slot index.
  LoadVarCell,    ///< VarRef of an owned cell.  A=dst, B=cell index.
  LoadVarCapture, ///< VarRef of a captured cell.  A=dst, B=capture index.

  // Charge-only marker for composite nodes (children follow).
  Charge, ///< K=Expr::Kind; Loc is the node's (for budget/deadline traps).

  // Raw data movement.
  Move,         ///< A=dst, B=src.
  LoadNilRaw,   ///< A=dst (uncharged nil, e.g. empty Seq / While result).
  StoreSlot,    ///< frame slot B = R[A]  (AssignVar / Let / binding).
  StoreCell,    ///< cell B's value = R[A]  (AssignVar through a cell).
  StoreCapture, ///< capture B's value = R[A].
  LetCell,      ///< cell B = fresh Cell{R[A]}  (per-execution let / binding).

  // Raw control flow.
  Jump,       ///< Pc = D.
  CondBranch, ///< R[A] must be Bool else TypeError (K=0 "if", K=1 "while");
              ///< false jumps to D, true falls through.
  StackCheck, ///< Native-stack backstop probe (InlinedExpr entry).

  // Calls.  A=dst, B=first argument register, C=arg count, D=BcSite
  // index.  The Send node's charge is a preceding Charge instruction
  // (pre-order: charge, then argument code, then the call).
  CallDyn,      ///< SendBindKind::Dynamic.
  CallStatic,   ///< SendBindKind::Static.
  CallSelect,   ///< SendBindKind::StaticSelect.
  CallPrim,     ///< SendBindKind::InlinePrim.
  CallPred,     ///< SendBindKind::Predicted.
  CallFeedback, ///< SendBindKind::FeedbackGuard.
  CallClosure,  ///< A=dst, B=callee register (args at B+1..B+C), C=count.

  // Objects and closures.
  MakeClosure, ///< Charged ClosureLit.  A=dst, D=Closures index.
  NewObj,      ///< Charged New.  A=dst, D=NewSites index.
  InitSlot,    ///< R[A].Slots[B] = R[C] (raw; slot index precomputed).
  GetSlot,     ///< A=dst, B=object reg, D=SlotSites index.
  SetSlot,     ///< A=dst(result), B=object reg, C=value reg, D=SlotSites.

  // Returns.
  RetLocal,    ///< Return R[A] from this function (epilogue; boundary-0
               ///< returns of method bodies).
  RetNonLocal, ///< Control{Return, CurrentHome, D} with value R[A].
};

/// Readable opcode name ("LoadInt", "CallDyn", ...).
const char *bcOpName(BcOp Op);

/// One instruction.  Fixed 12-byte encoding; registers are frame-slot
/// indices (uint16), wide operands (jump targets, pool/site indexes,
/// return boundaries) live in D.
struct Insn {
  BcOp Op;
  uint8_t K = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint32_t D = 0;
};

/// Inline-cache geometry: entries per site and the widest class tuple an
/// entry can hold (wider tuples always take the Dispatcher path).
constexpr unsigned BcIcEntries = 4;
constexpr unsigned BcIcMaxArity = 6;

/// One inline-cache entry: an argument-class tuple with the dispatch
/// result (target method and its selected compiled version).  Lives in
/// the interpreter's per-thread IC side-table, never in the module.
struct BcIcEntry {
  uint8_t Arity = 0xff; ///< 0xff = empty.
  ClassId Classes[BcIcMaxArity];
  MethodId Target;
  int32_t Version = -1;
};

/// Per-send-site record: the resolved SendExpr (generic, site id, binding
/// annotation, location) plus compile-time-cached primitive info.
/// Immutable after compilation; the run-time IC state lives in the
/// interpreter's side-table at index IcSlot.
struct BcSite {
  const SendExpr *S = nullptr;
  /// InlinePrim/Predicted target primitive, resolved at compile time.
  PrimOp Prim = PrimOp::None;
  /// FeedbackGuard: whether the predicted target is a builtin, and its op.
  bool TargetIsBuiltin = false;
  PrimOp TargetPrim = PrimOp::None;
  /// Module-dense index of this site's per-thread inline cache
  /// (< BcModule::NumIcSlots).
  uint32_t IcSlot = 0;
};

/// Per slot-access site: the slot name plus the module-dense index of its
/// per-thread one-entry (class -> layout index) cache
/// (< BcModule::NumSlotCacheSlots).  Immutable after compilation.
struct BcSlotSite {
  Symbol Name;
  uint32_t CacheSlot = 0;
};

/// Per `new` site: the resolved NewExpr and its class's layout size.
struct BcNewSite {
  const NewExpr *N = nullptr;
  uint32_t LayoutSize = 0;
};

struct BcFunction;

/// Per closure-literal site: the literal and its compiled body.
struct BcClosureRef {
  const ClosureLitExpr *Lit = nullptr;
  BcFunction *Fn = nullptr;
};

/// An inlined-body region: pc range of the body code, the return boundary
/// it catches, and the register its value lands in.  The landing pc is
/// End (the first instruction after the body).
struct BcRegion {
  uint32_t Start = 0;
  uint32_t End = 0;
  uint32_t Boundary = 0;
  uint16_t Dst = 0;
};

/// One compiled executable body.
struct BcFunction {
  /// Instruction stream; the compiler guarantees the last reachable
  /// instruction of every path is RetLocal/RetNonLocal.
  std::vector<Insn> Code;
  /// Source location per instruction (cold: trap construction only).
  std::vector<SourceLoc> Locs;
  /// The body's frame layout *augmented* with the temp registers:
  /// NumSlots = source layout slots + NumTemps.  Params/cells unchanged,
  /// so Frame::bindParam and capture wiring work exactly as in the AST
  /// tier.
  FrameLayout Layout;
  uint32_t NumTemps = 0;
  /// First temp register (== the source layout's NumSlots).
  uint32_t FirstTemp = 0;
  /// Methods catch boundary-0 returns of their own activation; closure
  /// bodies never do.
  bool IsMethod = false;
  /// Source method (methods only; for backtraces and Invoked bits).
  MethodId Source;
  const CompiledMethod *Method = nullptr;
  const ClosureLitExpr *Lit = nullptr;
  /// Disassembly label ("fib(Int) #3" / "closure @12:5").
  std::string Name;

  std::vector<int64_t> IntPool;
  /// StrLit payloads; point into the AST, which outlives the module.
  std::vector<const std::string *> StrPool;
  std::vector<BcSite> Sites;
  std::vector<BcSlotSite> SlotSites;
  std::vector<BcNewSite> NewSites;
  std::vector<BcClosureRef> Closures;
  std::vector<BcRegion> Regions;
};

/// A compiled program: one BcFunction per non-builtin compiled method
/// version plus one per reachable closure literal.  Immutable once
/// compiled — execution state (inline caches, slot caches) lives in each
/// BytecodeInterpreter's side-tables, sized by the slot counts below —
/// so one module can back any number of concurrent interpreters.
struct BcModule {
  std::vector<std::unique_ptr<BcFunction>> Functions;
  /// CompiledMethod::Index -> function (null for builtins).
  std::vector<BcFunction *> ByVersion;
  std::unordered_map<const ClosureLitExpr *, BcFunction *> ByClosure;
  /// Module-wide count of send-site IC slots (BcSite::IcSlot range).
  uint32_t NumIcSlots = 0;
  /// Module-wide count of slot-access cache slots (BcSlotSite::CacheSlot
  /// range).
  uint32_t NumSlotCacheSlots = 0;
  /// Total instruction-stream bytes (the `bytecode.code_bytes` counter).
  uint64_t CodeBytes = 0;
  /// Compiled function count (methods + closures).
  uint32_t NumFunctions = 0;
  /// False when some body could not be lowered; the driver falls back to
  /// the AST tier for the whole run (Error says why).
  bool Ok = false;
  std::string Error;
};

} // namespace selspec

#endif // SELSPEC_BYTECODE_BYTECODE_H

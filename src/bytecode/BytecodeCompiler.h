//===- bytecode/BytecodeCompiler.h - AST -> register bytecode --*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an optimized, slot-resolved CompiledProgram (post-SlotResolver,
/// post-SelectiveSpecializer) to flat register bytecode: every non-builtin
/// compiled method version plus every closure literal reachable from one
/// becomes a BcFunction.  The lowering is total in practice; any body the
/// compiler cannot express (unresolved variables, register file overflow)
/// marks the module !Ok and the driver runs the AST tier instead.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_BYTECODE_BYTECODECOMPILER_H
#define SELSPEC_BYTECODE_BYTECODECOMPILER_H

#include "bytecode/Bytecode.h"

namespace selspec {

class CompiledProgram;

/// Compiles every executable body of \p CP.  Publishes
/// `bytecode.compiled_functions` / `bytecode.code_bytes` on success.
BcModule compileToBytecode(const CompiledProgram &CP);

} // namespace selspec

#endif // SELSPEC_BYTECODE_BYTECODECOMPILER_H

//===- bytecode/BytecodeInterpreter.h - Register-bytecode tier -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a BcModule: the flat register-bytecode twin of the AST
/// Interpreter, with the same public surface (callMain/callGeneric,
/// RunStats, RuntimeTrap, rendered errors) so the driver can select a
/// tier without caring which one runs.  The dispatch loop is computed
/// goto under GCC/Clang and a switch elsewhere; Frame/FramePool, the
/// Dispatcher (as the inline caches' miss path), resource guards, the
/// deadline poll and the cost model are shared with the AST tier, and the
/// charged instruction stream reproduces the AST walker's accounting
/// exactly — RunStats are bit-identical across tiers by construction,
/// which tests/BytecodeTests.cpp enforces differentially.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_BYTECODE_BYTECODEINTERPRETER_H
#define SELSPEC_BYTECODE_BYTECODEINTERPRETER_H

#include "bytecode/Bytecode.h"
#include "interp/Interpreter.h"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace selspec {

class BytecodeInterpreter {
public:
  /// \p Mod must be the compilation of \p CP (see compileToBytecode) and
  /// must outlive the interpreter.  Both are shared, never mutated: all
  /// adaptive state (inline caches, slot caches, dispatcher memo/PICs)
  /// lives in per-interpreter side-tables, so any number of concurrent
  /// interpreters may execute one (CP, Mod) snapshot.
  BytecodeInterpreter(const CompiledProgram &CP, const BcModule &Mod,
                      RunOptions Opts = {}, CostModel Costs = {});

  /// Publishes the accumulated RunStats (`interp.*`, summed with the AST
  /// tier's) and the IC counters (`bytecode.*`).
  ~BytecodeInterpreter();

  bool callMain(int64_t Arg);
  Value callGeneric(const std::string &Name, std::vector<Value> Args,
                    bool &Ok);

  const RunStats &stats() const { return Stats; }
  const RuntimeTrap &trap() const { return Trap; }
  const std::string &errorMessage() const { return Error; }
  Dispatcher &dispatcher() { return Disp; }
  Heap &heap() { return TheHeap; }
  const CostModel &costs() const { return Costs; }

  std::string valueToString(const Value &V) const;

  uint64_t icHits() const { return IcHits; }
  uint64_t icMisses() const { return IcMisses; }
  uint64_t icMisdispatches() const { return IcMisdispatches; }

private:
  struct Control {
    enum class Kind : uint8_t { None, Return, Error };
    Kind K = Kind::None;
    uint64_t Activation = 0;
    uint32_t Boundary = 0;
    Value Val;

    bool active() const { return K != Kind::None; }
  };

  Value execute(const BcFunction &Fn, Frame &F, uint64_t Activation,
                Control &C);

  Value callDyn(const BcSite &Site, Value *Args, size_t N, Control &C);
  Value callStatic(const BcSite &Site, Value *Args, size_t N, Control &C);
  Value callSelect(const BcSite &Site, Value *Args, size_t N, Control &C);
  Value callPrim(const BcSite &Site, Value *Args, size_t N, Control &C);
  Value callPred(const BcSite &Site, Value *Args, size_t N, Control &C);
  Value callFeedback(const BcSite &Site, Value *Args, size_t N, Control &C);
  Value callClosureValue(Value Callee, Value *Args, size_t N, SourceLoc Loc,
                         Control &C);

  Value bcInvokeMethod(MethodId M, int VersionIndex, Value *Args, size_t N,
                       SourceLoc CallLoc, Control &C);
  Value bcInvokeVersion(const CompiledMethod &CM, Value *Args, size_t N,
                        SourceLoc CallLoc, Control &C);
  Value invokePrim(PrimOp Op, const Value *Args, SourceLoc Loc, Control &C);

  /// Inline-cache probe/fill over ClassScratch, against this
  /// interpreter's side-table entry for the site (IcTable[Site.IcSlot]).
  /// A hit yields the cached (method, version); under SELSPEC_IC_AUDIT=1
  /// hits are re-verified against full dispatch
  /// (`bytecode.ic_misdispatch`).
  bool icFind(const BcSite &Site, MethodId &Target, int &Version);
  void icInsert(const BcSite &Site, MethodId Target, int Version);

  void gatherClasses(const Value *Args, size_t N) {
    ClassScratch.clear();
    for (size_t I = 0; I != N; ++I)
      ClassScratch.push_back(Args[I].classOf());
  }

  void recordArc(CallSiteId Site, MethodId Callee);
  Value fail(Control &C, TrapKind Kind, SourceLoc Loc, std::string Message);
  void failTop(TrapKind Kind, std::string Message);
  bool heapHasRoom() const {
    return TheHeap.numAllocated() < Opts.Limits.MaxObjects;
  }
  /// Same pre-allocation byte-budget check as the AST tier: identical
  /// modeled sizes at identical points, so the trap is tier-invariant.
  bool heapBytesOk(uint64_t Incoming) const {
    return TheHeap.bytesAllocated() + Incoming <= Opts.Limits.MaxBytes;
  }

  [[gnu::cold]] [[gnu::noinline]] Value failPrimType(Control &C, PrimOp Op,
                                                     SourceLoc Loc,
                                                     const char *Expected);
  [[gnu::cold]] [[gnu::noinline]] Value failBounds(Control &C, SourceLoc Loc,
                                                   int64_t Index, size_t Size);
  [[gnu::cold]] [[gnu::noinline]] Value failNoSlot(Control &C, SourceLoc Loc,
                                                   ClassId Cls,
                                                   Symbol SlotName);
  [[gnu::cold]] [[gnu::noinline]] Value failDispatch(Control &C,
                                                     const SendExpr *S);
  [[gnu::cold]] [[gnu::noinline]] Value failNodeBudget(Control &C,
                                                       SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failDepth(Control &C, SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failNativeStack(Control &C,
                                                        SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failHeapLimit(Control &C,
                                                      SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failMemoryBudget(Control &C,
                                                         SourceLoc Loc,
                                                         uint64_t Requested);
  [[gnu::cold]] [[gnu::noinline]] Value failDeadline(Control &C,
                                                     SourceLoc Loc);
  [[gnu::cold]] [[gnu::noinline]] Value failInjected(Control &C, SourceLoc Loc,
                                                     const char *Name);

  /// Same sampled poll cadence as the AST tier (RunStats-identical).
  static constexpr uint64_t DeadlineCheckMask = 8191;

  bool nativeStackLow() const {
    char Probe;
    uintptr_t Here = reinterpret_cast<uintptr_t>(&Probe);
    size_t Used = StackBase >= Here ? StackBase - Here : Here - StackBase;
    return Used > StackBudget;
  }

  /// One send site's per-thread inline cache: the BcIcEntry ways plus the
  /// round-robin replacement cursor, indexed by BcSite::IcSlot.
  struct IcSlotState {
    BcIcEntry Ways[BcIcEntries];
    uint8_t Victim = 0;
  };
  /// One slot-access site's per-thread (class -> layout index) cache,
  /// indexed by BcSlotSite::CacheSlot.
  struct SlotCacheState {
    ClassId CachedClass; ///< invalid id = empty.
    int32_t CachedIndex = -1;
  };

  const CompiledProgram &CP;
  const Program &P;
  const BcModule &Mod;
  RunOptions Opts;
  CostModel Costs;
  Dispatcher Disp;
  Heap TheHeap;
  FramePool Frames;
  /// Per-thread IC side-tables (the module itself is immutable and
  /// shared): sized once from Mod.NumIcSlots / Mod.NumSlotCacheSlots.
  std::vector<IcSlotState> IcTable;
  std::vector<SlotCacheState> SlotCaches;
  std::vector<ClassId> ClassScratch;
  RunStats Stats;
  RuntimeTrap Trap;
  std::string Error;
  uint64_t NextActivation = 1;
  uint32_t Depth = 0;
  uintptr_t StackBase = 0;
  size_t StackBudget;
  uint64_t CurrentHome = 0;
  std::vector<MethodId> CallStack;
  /// Inline-cache observability (published as `bytecode.*` counters).
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  uint64_t IcMisdispatches = 0;
  /// SELSPEC_IC_AUDIT=1: re-verify every IC hit against full dispatch.
  bool IcAudit = false;
};

} // namespace selspec

#endif // SELSPEC_BYTECODE_BYTECODEINTERPRETER_H

//===- bytecode/Disassembler.cpp - Bytecode listing ------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"

#include "hierarchy/Program.h"

#include <iomanip>
#include <ostream>

using namespace selspec;

const char *selspec::bcOpName(BcOp Op) {
  switch (Op) {
  case BcOp::LoadInt:
    return "LoadInt";
  case BcOp::LoadBool:
    return "LoadBool";
  case BcOp::LoadStr:
    return "LoadStr";
  case BcOp::LoadNil:
    return "LoadNil";
  case BcOp::LoadVarSlot:
    return "LoadVarSlot";
  case BcOp::LoadVarCell:
    return "LoadVarCell";
  case BcOp::LoadVarCapture:
    return "LoadVarCapture";
  case BcOp::Charge:
    return "Charge";
  case BcOp::Move:
    return "Move";
  case BcOp::LoadNilRaw:
    return "LoadNilRaw";
  case BcOp::StoreSlot:
    return "StoreSlot";
  case BcOp::StoreCell:
    return "StoreCell";
  case BcOp::StoreCapture:
    return "StoreCapture";
  case BcOp::LetCell:
    return "LetCell";
  case BcOp::Jump:
    return "Jump";
  case BcOp::CondBranch:
    return "CondBranch";
  case BcOp::StackCheck:
    return "StackCheck";
  case BcOp::CallDyn:
    return "CallDyn";
  case BcOp::CallStatic:
    return "CallStatic";
  case BcOp::CallSelect:
    return "CallSelect";
  case BcOp::CallPrim:
    return "CallPrim";
  case BcOp::CallPred:
    return "CallPred";
  case BcOp::CallFeedback:
    return "CallFeedback";
  case BcOp::CallClosure:
    return "CallClosure";
  case BcOp::MakeClosure:
    return "MakeClosure";
  case BcOp::NewObj:
    return "NewObj";
  case BcOp::InitSlot:
    return "InitSlot";
  case BcOp::GetSlot:
    return "GetSlot";
  case BcOp::SetSlot:
    return "SetSlot";
  case BcOp::RetLocal:
    return "RetLocal";
  case BcOp::RetNonLocal:
    return "RetNonLocal";
  }
  return "?";
}

namespace {

const char *bindKindName(SendBindKind K) {
  switch (K) {
  case SendBindKind::Dynamic:
    return "dynamic";
  case SendBindKind::Static:
    return "static";
  case SendBindKind::StaticSelect:
    return "static-select";
  case SendBindKind::InlinePrim:
    return "inline-prim";
  case SendBindKind::Predicted:
    return "predicted";
  case SendBindKind::FeedbackGuard:
    return "feedback-guard";
  }
  return "?";
}

void printInsn(const BcFunction &Fn, uint32_t Pc, std::ostream &OS) {
  const Insn &I = Fn.Code[Pc];
  OS << "    " << std::setw(5) << Pc << "  " << std::left << std::setw(14)
     << bcOpName(I.Op) << std::right;
  switch (I.Op) {
  case BcOp::LoadInt:
    OS << " r" << I.A << " <- "
       << (I.K ? static_cast<int64_t>(static_cast<int32_t>(I.D))
               : Fn.IntPool[I.D]);
    break;
  case BcOp::LoadBool:
    OS << " r" << I.A << " <- " << (I.K ? "true" : "false");
    break;
  case BcOp::LoadStr:
    OS << " r" << I.A << " <- str[" << I.D << "] \"" << *Fn.StrPool[I.D]
       << '"';
    break;
  case BcOp::LoadNil:
  case BcOp::LoadNilRaw:
    OS << " r" << I.A << " <- nil";
    break;
  case BcOp::LoadVarSlot:
  case BcOp::Move:
    OS << " r" << I.A << " <- r" << I.B;
    break;
  case BcOp::LoadVarCell:
    OS << " r" << I.A << " <- cell[" << I.B << ']';
    break;
  case BcOp::LoadVarCapture:
    OS << " r" << I.A << " <- capture[" << I.B << ']';
    break;
  case BcOp::Charge:
    OS << " kind=" << exprKindName(static_cast<Expr::Kind>(I.K));
    break;
  case BcOp::StoreSlot:
    OS << " r" << I.B << " <- r" << I.A;
    break;
  case BcOp::StoreCell:
    OS << " cell[" << I.B << "] <- r" << I.A;
    break;
  case BcOp::StoreCapture:
    OS << " capture[" << I.B << "] <- r" << I.A;
    break;
  case BcOp::LetCell:
    OS << " cell[" << I.B << "] <- fresh(r" << I.A << ')';
    break;
  case BcOp::Jump:
    OS << " -> " << I.D;
    break;
  case BcOp::CondBranch:
    OS << " r" << I.A << "? fallthrough : " << I.D << "  ("
       << (I.K ? "while" : "if") << ')';
    break;
  case BcOp::StackCheck:
    break;
  case BcOp::CallDyn:
  case BcOp::CallStatic:
  case BcOp::CallSelect:
  case BcOp::CallPrim:
  case BcOp::CallPred:
  case BcOp::CallFeedback:
    OS << " r" << I.A << " <- site[" << I.D << "](r" << I.B << "..r"
       << (I.B + (I.C ? I.C - 1 : 0)) << ") argc=" << I.C;
    break;
  case BcOp::CallClosure:
    OS << " r" << I.A << " <- r" << I.B << "(r" << (I.B + 1) << "..r"
       << (I.B + I.C) << ") argc=" << I.C;
    break;
  case BcOp::MakeClosure:
    OS << " r" << I.A << " <- closure[" << I.D << ']';
    break;
  case BcOp::NewObj:
    OS << " r" << I.A << " <- new[" << I.D << ']';
    break;
  case BcOp::InitSlot:
    OS << " r" << I.A << ".slot[" << I.B << "] <- r" << I.C;
    break;
  case BcOp::GetSlot:
    OS << " r" << I.A << " <- r" << I.B << ".slotsite[" << I.D << ']';
    break;
  case BcOp::SetSlot:
    OS << " r" << I.A << " <- (r" << I.B << ".slotsite[" << I.D << "] <- r"
       << I.C << ')';
    break;
  case BcOp::RetLocal:
    OS << " r" << I.A;
    break;
  case BcOp::RetNonLocal:
    OS << " r" << I.A << " boundary=" << I.D;
    break;
  }
  OS << '\n';
}

void printSite(const BcSite &Site, size_t Idx, const Program &P,
               std::ostream &OS) {
  const SendExpr *S = Site.S;
  OS << "    [" << Idx << "] send '" << P.genericLabel(S->Generic)
     << "' site=" << (S->Site.isValid() ? std::to_string(S->Site.value())
                                        : std::string("-"))
     << " binding=" << bindKindName(S->Binding.Kind);
  if (Site.Prim != PrimOp::None)
    OS << " prim=" << primOpName(Site.Prim);
  if (S->Binding.Kind == SendBindKind::FeedbackGuard && Site.TargetIsBuiltin)
    OS << " target-prim=" << primOpName(Site.TargetPrim);
  // IC contents are per-thread interpreter state now, not module state;
  // the module only records which side-table slot the site owns.
  OS << " ic-slot=" << Site.IcSlot << '\n';
}

} // namespace

void selspec::disassemble(const BcFunction &Fn, const Program &P,
                          std::ostream &OS) {
  OS << "function '" << Fn.Name << "':\n"
     << "  regs: " << Fn.FirstTemp << " slots + " << Fn.NumTemps
     << " temps = " << Fn.Layout.NumSlots << "  cells: " << Fn.Layout.NumCells
     << "  params: " << Fn.Layout.Params.size() << '\n'
     << "  code (" << Fn.Code.size() << " insns, "
     << Fn.Code.size() * sizeof(Insn) << " bytes):\n";
  for (uint32_t Pc = 0; Pc != Fn.Code.size(); ++Pc)
    printInsn(Fn, Pc, OS);
  if (!Fn.Sites.empty()) {
    OS << "  sites:\n";
    for (size_t I = 0; I != Fn.Sites.size(); ++I)
      printSite(Fn.Sites[I], I, P, OS);
  }
  if (!Fn.SlotSites.empty()) {
    OS << "  slot sites:\n";
    for (size_t I = 0; I != Fn.SlotSites.size(); ++I) {
      const BcSlotSite &SS = Fn.SlotSites[I];
      OS << "    [" << I << "] '" << P.Syms.name(SS.Name)
         << "' cache-slot=" << SS.CacheSlot << '\n';
    }
  }
  if (!Fn.Regions.empty()) {
    OS << "  inlined regions:\n";
    for (size_t I = 0; I != Fn.Regions.size(); ++I) {
      const BcRegion &Rg = Fn.Regions[I];
      OS << "    [" << I << "] pc " << Rg.Start << ".." << Rg.End
         << " boundary=" << Rg.Boundary << " dst=r" << Rg.Dst << '\n';
    }
  }
}

void selspec::disassemble(const BcModule &Mod, const Program &P,
                          std::ostream &OS) {
  OS << "bytecode module: " << Mod.NumFunctions << " functions, "
     << Mod.CodeBytes << " code bytes\n\n";
  for (const std::unique_ptr<BcFunction> &Fn : Mod.Functions) {
    disassemble(*Fn, P, OS);
    OS << '\n';
  }
}

//===- bytecode/BytecodeInterpreter.cpp - Register-bytecode tier -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
//
// Execution engine for BcModules.  Every semantic decision here is a
// transcription of the AST Interpreter's (src/interp/Interpreter.cpp):
// check order, trap messages, cost charges and counter bumps match line
// for line, because the differential tests require RunStats to be
// bit-identical between the tiers.  When editing either interpreter,
// update the other.
//
// The only genuinely new machinery is the per-site inline cache: before
// falling back to the Dispatcher's PIC/memo lookup, a call instruction
// probes the BcIcEntry slots baked into its BcSite.  A hit must return
// exactly what the dispatcher would have (the program is immutable during
// a run), so the substitution is invisible to RunStats; SELSPEC_IC_AUDIT=1
// re-verifies every hit against ground-truth dispatch and counts
// `bytecode.ic_misdispatch`.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeInterpreter.h"

#include "support/FailPoint.h"
#include "support/Metrics.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace selspec;

namespace {
/// Same policy as the AST tier (Interpreter.cpp): three quarters of the
/// soft stack rlimit, capped at 6 MiB.
size_t nativeStackBudget() {
  size_t Budget = size_t(6) << 20;
#if defined(__unix__) || defined(__APPLE__)
  struct rlimit RL;
  if (getrlimit(RLIMIT_STACK, &RL) == 0 && RL.rlim_cur != RLIM_INFINITY) {
    size_t ThreeQuarters = static_cast<size_t>(RL.rlim_cur) / 4 * 3;
    if (ThreeQuarters < Budget)
      Budget = ThreeQuarters;
  }
#endif
  return Budget;
}

// Same counter names as the AST tier: the registry sums duplicates, so
// `interp.*` reports the union of work done by both tiers.
metrics::Counter CtrDynamicDispatches("interp.dynamic_dispatches");
metrics::Counter CtrVersionSelects("interp.version_selects");
metrics::Counter CtrStaticCalls("interp.static_calls");
metrics::Counter CtrInlinePrims("interp.inline_prims");
metrics::Counter CtrPredictedHits("interp.predicted_hits");
metrics::Counter CtrPredictedMisses("interp.predicted_misses");
metrics::Counter CtrFeedbackHits("interp.feedback_hits");
metrics::Counter CtrFeedbackMisses("interp.feedback_misses");
metrics::Counter CtrClosuresCreated("interp.closures_created");
metrics::Counter CtrClosureCalls("interp.closure_calls");
metrics::Counter CtrAllocations("interp.allocations");
metrics::Counter CtrMethodInvocations("interp.method_invocations");
metrics::Counter CtrNodesEvaluated("interp.nodes_evaluated");
metrics::Counter CtrCycles("interp.cycles");
metrics::Counter CtrBytesAllocated("interp.bytes_allocated");
metrics::Counter CtrDeadlineExpired("deadline.expired");

metrics::Counter CtrIcHits("bytecode.ic_hits");
metrics::Counter CtrIcMisses("bytecode.ic_misses");
metrics::Counter CtrIcMisdispatch("bytecode.ic_misdispatch");
} // namespace

BytecodeInterpreter::BytecodeInterpreter(const CompiledProgram &CP,
                                         const BcModule &Mod, RunOptions Opts,
                                         CostModel Costs)
    : CP(CP), P(CP.program()), Mod(Mod), Opts(Opts), Costs(Costs),
      Disp(Opts.Tables ? Dispatcher(*Opts.Tables) : Dispatcher(P)),
      IcTable(Mod.NumIcSlots), SlotCaches(Mod.NumSlotCacheSlots),
      StackBudget(nativeStackBudget()) {
  assert(Mod.Ok && "executing a module that failed to compile");
  const char *Audit = std::getenv("SELSPEC_IC_AUDIT");
  IcAudit = Audit && Audit[0] && !(Audit[0] == '0' && Audit[1] == '\0');
}

BytecodeInterpreter::~BytecodeInterpreter() {
  CtrDynamicDispatches.add(Stats.DynamicDispatches);
  CtrVersionSelects.add(Stats.VersionSelects);
  CtrStaticCalls.add(Stats.StaticCalls);
  CtrInlinePrims.add(Stats.InlinePrims);
  CtrPredictedHits.add(Stats.PredictedHits);
  CtrPredictedMisses.add(Stats.PredictedMisses);
  CtrFeedbackHits.add(Stats.FeedbackHits);
  CtrFeedbackMisses.add(Stats.FeedbackMisses);
  CtrClosuresCreated.add(Stats.ClosuresCreated);
  CtrClosureCalls.add(Stats.ClosureCalls);
  CtrAllocations.add(Stats.Allocations);
  CtrMethodInvocations.add(Stats.MethodInvocations);
  CtrNodesEvaluated.add(Stats.NodesEvaluated);
  CtrCycles.add(Stats.Cycles);
  CtrBytesAllocated.add(TheHeap.bytesAllocated());
  CtrIcHits.add(IcHits);
  CtrIcMisses.add(IcMisses);
  CtrIcMisdispatch.add(IcMisdispatches);
}

std::string BytecodeInterpreter::valueToString(const Value &V) const {
  switch (V.kind()) {
  case Value::Kind::Nil:
    return "nil";
  case Value::Kind::Int:
    return std::to_string(V.asInt());
  case Value::Kind::Bool:
    return V.asBool() ? "true" : "false";
  case Value::Kind::Object: {
    const Obj *O = V.asObject();
    switch (O->payload()) {
    case Obj::Payload::Str:
      return O->Str;
    case Obj::Payload::Array: {
      std::ostringstream OS;
      OS << '[';
      for (size_t I = 0; I != O->Slots.size(); ++I) {
        if (I)
          OS << ", ";
        OS << valueToString(O->Slots[I]);
      }
      OS << ']';
      return OS.str();
    }
    case Obj::Payload::Closure:
      return "<closure>";
    case Obj::Payload::Instance:
      return "<" + P.Syms.name(P.Classes.info(O->getClass()).Name) + ">";
    }
  }
  }
  return "?";
}

Value BytecodeInterpreter::fail(Control &C, TrapKind Kind, SourceLoc Loc,
                                std::string Message) {
  // First failure wins; anything signaled while already unwinding an
  // error is dropped.
  if (C.K != Control::Kind::Error) {
    C.K = Control::Kind::Error;
    Trap.reset();
    Trap.Kind = Kind;
    Trap.Loc = Loc;
    Trap.Message = std::move(Message);
    for (auto It = CallStack.rbegin(); It != CallStack.rend(); ++It) {
      if (Trap.Backtrace.size() == RuntimeTrap::MaxBacktraceFrames) {
        Trap.FramesElided =
            CallStack.size() - RuntimeTrap::MaxBacktraceFrames;
        break;
      }
      Trap.Backtrace.push_back(P.methodLabel(*It));
    }
    Error = Trap.render();
  }
  return Value::nil();
}

void BytecodeInterpreter::failTop(TrapKind Kind, std::string Message) {
  Trap.reset();
  Trap.Kind = Kind;
  Trap.Message = std::move(Message);
  Error = Trap.render();
}

Value BytecodeInterpreter::failPrimType(Control &C, PrimOp Op, SourceLoc Loc,
                                        const char *Expected) {
  return fail(C, TrapKind::TypeError, Loc,
              std::string("primitive '") + primOpName(Op) + "' expects " +
                  Expected);
}

Value BytecodeInterpreter::failBounds(Control &C, SourceLoc Loc,
                                      int64_t Index, size_t Size) {
  return fail(C, TrapKind::IndexOutOfBounds, Loc,
              "array index " + std::to_string(Index) +
                  " out of bounds (size " + std::to_string(Size) + ")");
}

Value BytecodeInterpreter::failNoSlot(Control &C, SourceLoc Loc, ClassId Cls,
                                      Symbol SlotName) {
  return fail(C, TrapKind::UndefinedSlot, Loc,
              "class '" + P.Syms.name(P.Classes.info(Cls).Name) +
                  "' has no slot '" + P.Syms.name(SlotName) + "'");
}

Value BytecodeInterpreter::failDispatch(Control &C, const SendExpr *S) {
  // Re-dispatch (cold) to tell "no applicable method" from "ambiguous".
  bool Ambiguous = false;
  P.dispatch(S->Generic, ClassScratch, &Ambiguous);
  if (Ambiguous)
    return fail(C, TrapKind::AmbiguousDispatch, S->getLoc(),
                "message '" + P.genericLabel(S->Generic) +
                    "' is ambiguous for the given argument classes");
  return fail(C, TrapKind::NoApplicableMethod, S->getLoc(),
              "message '" + P.genericLabel(S->Generic) + "' not understood");
}

Value BytecodeInterpreter::failNodeBudget(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::NodeBudgetExceeded, Loc,
              "execution exceeded the node budget of " +
                  std::to_string(Opts.Limits.MaxNodes) +
                  " nodes (infinite loop?)");
}

Value BytecodeInterpreter::failDepth(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::RecursionLimitExceeded, Loc,
              "call depth exceeded the recursion limit of " +
                  std::to_string(Opts.Limits.MaxDepth) + " activations");
}

Value BytecodeInterpreter::failNativeStack(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::RecursionLimitExceeded, Loc,
              "recursion exhausted the native stack headroom (" +
                  std::to_string(StackBudget) +
                  " bytes) before reaching the recursion limit of " +
                  std::to_string(Opts.Limits.MaxDepth) + " activations");
}

Value BytecodeInterpreter::failHeapLimit(Control &C, SourceLoc Loc) {
  return fail(C, TrapKind::HeapLimitExceeded, Loc,
              "allocation exceeded the heap limit of " +
                  std::to_string(Opts.Limits.MaxObjects) + " objects");
}

Value BytecodeInterpreter::failMemoryBudget(Control &C, SourceLoc Loc,
                                            uint64_t Requested) {
  return fail(C, TrapKind::MemoryBudgetExceeded, Loc,
              "allocation of " + std::to_string(Requested) +
                  " modeled bytes exceeded the memory budget of " +
                  std::to_string(Opts.Limits.MaxBytes) + " bytes (" +
                  std::to_string(TheHeap.bytesAllocated()) +
                  " already allocated)");
}

Value BytecodeInterpreter::failDeadline(Control &C, SourceLoc Loc) {
  CtrDeadlineExpired.add();
  return fail(C, TrapKind::DeadlineExceeded, Loc,
              Opts.Cancel ? Opts.Cancel->reason() : "execution cancelled");
}

Value BytecodeInterpreter::failInjected(Control &C, SourceLoc Loc,
                                        const char *Name) {
  return fail(C, TrapKind::InternalError, Loc,
              failpoint::failureMessage(Name));
}

void BytecodeInterpreter::recordArc(CallSiteId Site, MethodId Callee) {
  if (!Opts.Profile || !Site.isValid())
    return;
  Opts.Profile->addHits(Site, P.callSite(Site).Owner, Callee);
}

//===----------------------------------------------------------------------===//
// Inline caches
//===----------------------------------------------------------------------===//

bool BytecodeInterpreter::icFind(const BcSite &Site, MethodId &Target,
                                 int &Version) {
  const size_t N = ClassScratch.size();
  if (N > BcIcMaxArity) {
    ++IcMisses;
    return false;
  }
  for (BcIcEntry &E : IcTable[Site.IcSlot].Ways) {
    if (E.Arity != N)
      continue;
    bool Match = true;
    for (size_t I = 0; I != N; ++I)
      Match &= E.Classes[I] == ClassScratch[I];
    if (!Match)
      continue;
    ++IcHits;
    Target = E.Target;
    Version = E.Version;
    if (IcAudit) {
      // Re-derive the result from ground truth.  The program is immutable
      // during a run, so any divergence is an IC bug.
      MethodId Real = P.dispatch(Site.S->Generic, ClassScratch);
      int RealVersion =
          Real.isValid() ? CP.selectVersion(Real, ClassScratch) : -1;
      if (Real != Target || RealVersion != Version) {
        ++IcMisdispatches;
        E.Arity = 0xff; // drop the poisoned entry
        if (!Real.isValid())
          return false; // miss path raises the dispatch failure
        Target = Real;
        Version = RealVersion;
      }
    }
    return true;
  }
  ++IcMisses;
  return false;
}

void BytecodeInterpreter::icInsert(const BcSite &Site, MethodId Target,
                                   int Version) {
  const size_t N = ClassScratch.size();
  if (N > BcIcMaxArity)
    return;
  IcSlotState &Slot = IcTable[Site.IcSlot];
  // Fill an empty way first; evict round-robin once the site is full.
  BcIcEntry *E = nullptr;
  for (BcIcEntry &Way : Slot.Ways)
    if (Way.Arity == 0xff) {
      E = &Way;
      break;
    }
  if (!E) {
    E = &Slot.Ways[Slot.Victim];
    Slot.Victim = static_cast<uint8_t>((Slot.Victim + 1) % BcIcEntries);
  }
  E->Arity = static_cast<uint8_t>(N);
  for (size_t I = 0; I != N; ++I)
    E->Classes[I] = ClassScratch[I];
  E->Target = Target;
  E->Version = Version;
}

//===----------------------------------------------------------------------===//
// Call helpers (one per send-binding kind, mirroring evalSend)
//===----------------------------------------------------------------------===//

Value BytecodeInterpreter::callDyn(const BcSite &Site, Value *Args, size_t N,
                                   Control &C) {
  const SendExpr *S = Site.S;
  gatherClasses(Args, N);

  MethodId Target;
  int Version = -1;
  if (!icFind(Site, Target, Version)) {
    Target = Disp.lookup(S->Generic, ClassScratch, S->Site);
    if (!Target.isValid())
      return failDispatch(C, S);
    Version = CP.selectVersion(Target, ClassScratch);
    icInsert(Site, Target, Version);
  }

  recordArc(S->Site, Target);
  ++Stats.DynamicDispatches;
  Stats.Cycles += Costs.DynamicDispatchCost;
  return bcInvokeMethod(Target, Version, Args, N, S->getLoc(), C);
}

Value BytecodeInterpreter::callStatic(const BcSite &Site, Value *Args, size_t N,
                                      Control &C) {
  const SendExpr *S = Site.S;
  const CompiledMethod &CM = CP.version(S->Binding.TargetVersion);
  if (Opts.ValidateBindings) {
    std::vector<ClassId> Classes;
    for (size_t I = 0; I != N; ++I)
      Classes.push_back(Args[I].classOf());
    MethodId Real = P.dispatch(S->Generic, Classes);
    if (Real != CM.Source)
      return fail(C, TrapKind::BindingViolation, S->getLoc(),
                  "static binding violation at site " +
                      std::to_string(S->Site.value()) + ": bound to " +
                      P.methodLabel(CM.Source) + " but dispatch picks " +
                      (Real.isValid() ? P.methodLabel(Real) : "<none>"));
    if (!tupleContains(CM.Tuple, Classes))
      return fail(C, TrapKind::BindingViolation, S->getLoc(),
                  "static version binding violation at site " +
                      std::to_string(S->Site.value()));
  }
  recordArc(S->Site, CM.Source);
  ++Stats.StaticCalls;
  Stats.Cycles += Costs.StaticCallCost;
  return bcInvokeVersion(CM, Args, N, S->getLoc(), C);
}

Value BytecodeInterpreter::callSelect(const BcSite &Site, Value *Args, size_t N,
                                      Control &C) {
  const SendExpr *S = Site.S;
  gatherClasses(Args, N);
  if (Opts.ValidateBindings) {
    MethodId Real = P.dispatch(S->Generic, ClassScratch);
    if (Real != S->Binding.Target)
      return fail(C, TrapKind::BindingViolation, S->getLoc(),
                  "static-select binding violation at site " +
                      std::to_string(S->Site.value()));
  }
  recordArc(S->Site, S->Binding.Target);
  ++Stats.VersionSelects;
  Stats.Cycles += Costs.VersionSelectCost;

  // The IC caches the run-time version selection; the target is the
  // statically-bound method (every entry at this site holds it).
  MethodId Target = S->Binding.Target;
  int Version = -1;
  if (!icFind(Site, Target, Version)) {
    Version = CP.selectVersion(Target, ClassScratch);
    icInsert(Site, Target, Version);
  }
  return bcInvokeMethod(Target, Version, Args, N, S->getLoc(), C);
}

Value BytecodeInterpreter::callPrim(const BcSite &Site, Value *Args, size_t N,
                                    Control &C) {
  const SendExpr *S = Site.S;
  if (Opts.ValidateBindings) {
    std::vector<ClassId> Classes;
    for (size_t I = 0; I != N; ++I)
      Classes.push_back(Args[I].classOf());
    if (P.dispatch(S->Generic, Classes) != S->Binding.Target)
      return fail(C, TrapKind::BindingViolation, S->getLoc(),
                  "inline-prim binding violation at site " +
                      std::to_string(S->Site.value()));
  }
  recordArc(S->Site, S->Binding.Target);
  ++Stats.InlinePrims;
  Stats.Cycles += Costs.InlinePrimCost;
  return invokePrim(Site.Prim, Args, S->getLoc(), C);
}

Value BytecodeInterpreter::callFeedback(const BcSite &Site, Value *Args, size_t N,
                                        Control &C) {
  const SendExpr *S = Site.S;
  gatherClasses(Args, N);
  // The modeled machine executes an inline-cache class test; here the
  // test is the baked-in IC probe itself (dispatcher on a miss).
  Stats.Cycles += Costs.PredictTestCost;

  MethodId Real;
  int Version = -1;
  if (!icFind(Site, Real, Version)) {
    Real = Disp.lookup(S->Generic, ClassScratch, S->Site);
    if (!Real.isValid())
      return failDispatch(C, S);
    Version = CP.selectVersion(Real, ClassScratch);
    icInsert(Site, Real, Version);
  }

  recordArc(S->Site, Real);
  if (Real == S->Binding.Target) {
    ++Stats.FeedbackHits;
    if (Site.TargetIsBuiltin) {
      Stats.Cycles += Costs.InlinePrimCost;
      return invokePrim(Site.TargetPrim, Args, S->getLoc(), C);
    }
    Stats.Cycles += Costs.StaticCallCost;
    return bcInvokeMethod(Real, Version, Args, N, S->getLoc(), C);
  }
  ++Stats.FeedbackMisses;
  ++Stats.DynamicDispatches;
  Stats.Cycles += Costs.DynamicDispatchCost;
  return bcInvokeMethod(Real, Version, Args, N, S->getLoc(), C);
}

Value BytecodeInterpreter::callPred(const BcSite &Site, Value *Args, size_t N,
                                    Control &C) {
  const SendExpr *S = Site.S;
  Stats.Cycles += Costs.PredictTestCost;
  bool Hit = true;
  for (size_t I = 0; I != N; ++I)
    Hit &= Args[I].classOf() == S->Binding.PredictedClass;
  if (Hit) {
    recordArc(S->Site, S->Binding.Target);
    ++Stats.PredictedHits;
    Stats.Cycles += Costs.InlinePrimCost;
    return invokePrim(Site.Prim, Args, S->getLoc(), C);
  }
  ++Stats.PredictedMisses;
  return callDyn(Site, Args, N, C);
}

Value BytecodeInterpreter::callClosureValue(Value Callee, Value *Args,
                                            size_t N, SourceLoc Loc,
                                            Control &C) {
  if (!Callee.isObject() ||
      Callee.asObject()->payload() != Obj::Payload::Closure)
    return fail(C, TrapKind::TypeError, Loc, "called value is not a closure");
  Obj *Closure = Callee.asObject();
  const ClosureLitExpr *Lit = Closure->Lit;
  if (Lit->Params.size() != N)
    return fail(C, TrapKind::ArityMismatch, Loc,
                "closure called with wrong number of arguments");
  if (Depth >= Opts.Limits.MaxDepth)
    return failDepth(C, Loc);
  if (nativeStackLow())
    return failNativeStack(C, Loc);
  if (failpoint::anyArmed() && failpoint::triggered("interp.frame-acquire"))
    return failInjected(C, Loc, "interp.frame-acquire");

  // Closures made by this tier carry their compiled body; ones handed in
  // from outside (embedder values) fall back to the module map.
  BcFunction *Fn = Closure->BcFn;
  if (!Fn) {
    auto It = Mod.ByClosure.find(Lit);
    if (It == Mod.ByClosure.end())
      return fail(C, TrapKind::InternalError, Loc,
                  "internal: closure body was not compiled to bytecode");
    Fn = It->second;
  }

  ++Stats.ClosureCalls;
  Stats.Cycles += Costs.ClosureCallCost;

  FrameGuard G(Frames, Fn->Layout, &Closure->Captured);
  Frame &Inner = G.frame();
  for (size_t I = 0; I != N; ++I)
    Inner.bindParam(Fn->Layout.Params[I], Args[I]);

  uint64_t SavedHome = CurrentHome;
  CurrentHome = Closure->HomeActivation;
  ++Depth;
  if (Depth > Stats.PeakDepth)
    Stats.PeakDepth = Depth;
  Value Result = execute(*Fn, Inner, /*Activation=*/0, C);
  --Depth;
  CurrentHome = SavedHome;
  return Result;
}

Value BytecodeInterpreter::bcInvokeMethod(MethodId M, int VersionIndex,
                                          Value *Args, size_t N,
                                          SourceLoc CallLoc, Control &C) {
  if (VersionIndex < 0)
    return fail(C, TrapKind::InternalError, CallLoc,
                "internal: no compiled version matches arguments of " +
                    P.methodLabel(M));
  return bcInvokeVersion(CP.version(static_cast<uint32_t>(VersionIndex)),
                         Args, N, CallLoc, C);
}

Value BytecodeInterpreter::bcInvokeVersion(const CompiledMethod &CM, Value *Args,
                                           size_t N, SourceLoc CallLoc,
                                           Control &C) {
  const MethodInfo &M = P.method(CM.Source);
  CP.markInvoked(CM.Index);

  if (M.isBuiltin())
    return invokePrim(M.Prim, Args, CallLoc, C);

  if (Depth >= Opts.Limits.MaxDepth)
    return failDepth(C, CallLoc);
  if (nativeStackLow())
    return failNativeStack(C, CallLoc);
  if (failpoint::anyArmed() && failpoint::triggered("interp.frame-acquire"))
    return failInjected(C, CallLoc, "interp.frame-acquire");

  BcFunction *Fn = Mod.ByVersion[CM.Index];
  if (!Fn)
    return fail(C, TrapKind::InternalError, CallLoc,
                "internal: method version was not compiled to bytecode");

  ++Stats.MethodInvocations;
  uint64_t Activation = NextActivation++;
  // The augmented layout sizes the frame for locals plus temp registers;
  // Params are the source layout's, so binding is unchanged.
  FrameGuard G(Frames, Fn->Layout, nullptr);
  Frame &F = G.frame();
  assert(Fn->Layout.Params.size() == N && "dispatcher arity mismatch");
  for (size_t I = 0; I != N; ++I)
    F.bindParam(Fn->Layout.Params[I], Args[I]);

  uint64_t SavedHome = CurrentHome;
  CurrentHome = Activation;
  CallStack.push_back(CM.Source);
  ++Depth;
  if (Depth > Stats.PeakDepth)
    Stats.PeakDepth = Depth;
  Value Result = execute(*Fn, F, Activation, C);
  --Depth;
  CallStack.pop_back();
  CurrentHome = SavedHome;
  return Result;
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

Value BytecodeInterpreter::execute(const BcFunction &Fn, Frame &F,
                                   uint64_t Activation, Control &C) {
  const Insn *const Code = Fn.Code.data();
  const SourceLoc *const Locs = Fn.Locs.data();
  // The register file: the frame's slot array.  Registers [0, FirstTemp)
  // are the body's locals, the rest are lowering temps.  The pointer is
  // stable for the whole activation (configure() sized the vector up
  // front, and callee frames are separate objects).
  Value *R = F.slotData();
  const Insn *Ip = Code;
  Value CallVal;
  // Hot-loop constants hoisted out of member indirections so they live in
  // registers across the dispatch gotos.
  const uint64_t MaxNodes = Opts.Limits.MaxNodes;
  const uint64_t NodeCost = Costs.NodeCost;
  const CancelToken *const Cancel = Opts.Cancel;

#if defined(__GNUC__) || defined(__clang__)
#define BC_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define BC_UNLIKELY(X) (X)
#endif

  // The charge fast path, inlined at every charged instruction: exactly
  // the AST walker's chargeNode() accounting (same order, same sampled
  // deadline poll), with the source location materialized only on the
  // cold trap paths.
#define BC_CHARGE(KindV)                                                       \
  do {                                                                         \
    ++Stats.NodesEvaluated;                                                    \
    Stats.Cycles += NodeCost;                                                  \
    if (BC_UNLIKELY(Stats.NodesEvaluated > MaxNodes)) {                        \
      failNodeBudget(C, Locs[Ip - Code]);                                      \
      return Value::nil();                                                     \
    }                                                                          \
    if (BC_UNLIKELY((Stats.NodesEvaluated & DeadlineCheckMask) == 0) &&        \
        Cancel && Cancel->stopRequested()) {                                   \
      failDeadline(C, Locs[Ip - Code]);                                        \
      return Value::nil();                                                     \
    }                                                                          \
    ++Stats.NodeMix[static_cast<size_t>(KindV)];                               \
  } while (0)

#if defined(__GNUC__) || defined(__clang__)
  // Computed-goto dispatch: one indirect branch per instruction with a
  // per-opcode target the predictor can learn.  Table order must match
  // the BcOp declaration exactly.
  static const void *const JumpTable[] = {
      &&L_LoadInt,      &&L_LoadBool,     &&L_LoadStr,
      &&L_LoadNil,      &&L_LoadVarSlot,  &&L_LoadVarCell,
      &&L_LoadVarCapture, &&L_Charge,     &&L_Move,
      &&L_LoadNilRaw,   &&L_StoreSlot,    &&L_StoreCell,
      &&L_StoreCapture, &&L_LetCell,      &&L_Jump,
      &&L_CondBranch,   &&L_StackCheck,   &&L_CallDyn,
      &&L_CallStatic,   &&L_CallSelect,   &&L_CallPrim,
      &&L_CallPred,     &&L_CallFeedback, &&L_CallClosure,
      &&L_MakeClosure,  &&L_NewObj,       &&L_InitSlot,
      &&L_GetSlot,      &&L_SetSlot,      &&L_RetLocal,
      &&L_RetNonLocal,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) ==
                    static_cast<size_t>(BcOp::RetNonLocal) + 1,
                "jump table out of sync with BcOp");
#define BC_DISPATCH() goto *JumpTable[static_cast<uint8_t>(Ip->Op)]
  BC_DISPATCH();
#else
  // Portable fallback: a switch that fans out to the same function-scope
  // labels the computed-goto build uses.
#define BC_DISPATCH() goto DispatchTop
DispatchTop:
  switch (Ip->Op) {
  case BcOp::LoadInt:
    goto L_LoadInt;
  case BcOp::LoadBool:
    goto L_LoadBool;
  case BcOp::LoadStr:
    goto L_LoadStr;
  case BcOp::LoadNil:
    goto L_LoadNil;
  case BcOp::LoadVarSlot:
    goto L_LoadVarSlot;
  case BcOp::LoadVarCell:
    goto L_LoadVarCell;
  case BcOp::LoadVarCapture:
    goto L_LoadVarCapture;
  case BcOp::Charge:
    goto L_Charge;
  case BcOp::Move:
    goto L_Move;
  case BcOp::LoadNilRaw:
    goto L_LoadNilRaw;
  case BcOp::StoreSlot:
    goto L_StoreSlot;
  case BcOp::StoreCell:
    goto L_StoreCell;
  case BcOp::StoreCapture:
    goto L_StoreCapture;
  case BcOp::LetCell:
    goto L_LetCell;
  case BcOp::Jump:
    goto L_Jump;
  case BcOp::CondBranch:
    goto L_CondBranch;
  case BcOp::StackCheck:
    goto L_StackCheck;
  case BcOp::CallDyn:
    goto L_CallDyn;
  case BcOp::CallStatic:
    goto L_CallStatic;
  case BcOp::CallSelect:
    goto L_CallSelect;
  case BcOp::CallPrim:
    goto L_CallPrim;
  case BcOp::CallPred:
    goto L_CallPred;
  case BcOp::CallFeedback:
    goto L_CallFeedback;
  case BcOp::CallClosure:
    goto L_CallClosure;
  case BcOp::MakeClosure:
    goto L_MakeClosure;
  case BcOp::NewObj:
    goto L_NewObj;
  case BcOp::InitSlot:
    goto L_InitSlot;
  case BcOp::GetSlot:
    goto L_GetSlot;
  case BcOp::SetSlot:
    goto L_SetSlot;
  case BcOp::RetLocal:
    goto L_RetLocal;
  case BcOp::RetNonLocal:
    goto L_RetNonLocal;
  }
  return Value::nil(); // unreachable: the switch covers every opcode
#endif

  // ---- Charged, fused leaves ----

L_LoadInt: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::IntLit);
  R[I.A] = Value::ofInt(I.K ? static_cast<int64_t>(static_cast<int32_t>(I.D))
                            : Fn.IntPool[I.D]);
  ++Ip;
  BC_DISPATCH();
}

L_LoadBool: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::BoolLit);
  R[I.A] = Value::ofBool(I.K != 0);
  ++Ip;
  BC_DISPATCH();
}

L_LoadStr: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::StrLit);
  if (!heapHasRoom()) {
    failHeapLimit(C, Locs[Ip - Code]);
    return Value::nil();
  }
  if (uint64_t N = membudget::stringBytes(Fn.StrPool[I.D]->size());
      !heapBytesOk(N)) {
    failMemoryBudget(C, Locs[Ip - Code], N);
    return Value::nil();
  }
  R[I.A] = Value::ofObj(TheHeap.newString(*Fn.StrPool[I.D]));
  ++Ip;
  BC_DISPATCH();
}

L_LoadNil: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::NilLit);
  R[I.A] = Value::nil();
  ++Ip;
  BC_DISPATCH();
}

L_LoadVarSlot: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::VarRef);
  R[I.A] = R[I.B]; // locals live in the same array as the temps
  ++Ip;
  BC_DISPATCH();
}

L_LoadVarCell: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::VarRef);
  assert(F.cell(I.B) && "read of a cell before its let ran");
  R[I.A] = F.cell(I.B)->V;
  ++Ip;
  BC_DISPATCH();
}

L_LoadVarCapture: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::VarRef);
  R[I.A] = F.capture(I.B)->V;
  ++Ip;
  BC_DISPATCH();
}

  // ---- Charge marker for composite nodes ----

L_Charge: {
  BC_CHARGE(static_cast<Expr::Kind>(Ip->K));
  ++Ip;
  BC_DISPATCH();
}

  // ---- Raw data movement ----

L_Move: {
  const Insn &I = *Ip;
  R[I.A] = R[I.B];
  ++Ip;
  BC_DISPATCH();
}

L_LoadNilRaw: {
  R[Ip->A] = Value::nil();
  ++Ip;
  BC_DISPATCH();
}

L_StoreSlot: {
  const Insn &I = *Ip;
  R[I.B] = R[I.A];
  ++Ip;
  BC_DISPATCH();
}

L_StoreCell: {
  const Insn &I = *Ip;
  assert(F.cell(I.B) && "write to a cell before its let ran");
  F.cell(I.B)->V = R[I.A];
  ++Ip;
  BC_DISPATCH();
}

L_StoreCapture: {
  const Insn &I = *Ip;
  F.capture(I.B)->V = R[I.A];
  ++Ip;
  BC_DISPATCH();
}

L_LetCell: {
  const Insn &I = *Ip;
  // Fresh cell per execution so closures made in different loop
  // iterations don't share state (same as the AST walker's Let).
  F.cell(I.B) = std::make_shared<Cell>(Cell{R[I.A]});
  ++Ip;
  BC_DISPATCH();
}

  // ---- Raw control flow ----

L_Jump: {
  Ip = Code + Ip->D;
  BC_DISPATCH();
}

L_CondBranch: {
  const Insn &I = *Ip;
  if (!R[I.A].isBool()) {
    fail(C, TrapKind::TypeError, Locs[Ip - Code],
         I.K ? "while condition is not a boolean"
             : "if condition is not a boolean");
    return Value::nil();
  }
  if (R[I.A].asBool())
    ++Ip;
  else
    Ip = Code + I.D;
  BC_DISPATCH();
}

L_StackCheck: {
  // Inlined bodies recurse natively in the AST walker without raising
  // Depth; the bytecode stream is flat, but keeps the probe (and its
  // trap) so resource behavior stays identical.
  if (nativeStackLow()) {
    failNativeStack(C, Locs[Ip - Code]);
    return Value::nil();
  }
  ++Ip;
  BC_DISPATCH();
}

  // ---- Calls ----

L_CallDyn: {
  const Insn &I = *Ip;
  CallVal = callDyn(Fn.Sites[I.D], R + I.B, I.C, C);
  goto HandleCall;
}

L_CallStatic: {
  const Insn &I = *Ip;
  CallVal = callStatic(Fn.Sites[I.D], R + I.B, I.C, C);
  goto HandleCall;
}

L_CallSelect: {
  const Insn &I = *Ip;
  CallVal = callSelect(Fn.Sites[I.D], R + I.B, I.C, C);
  goto HandleCall;
}

L_CallPrim: {
  const Insn &I = *Ip;
  CallVal = callPrim(Fn.Sites[I.D], R + I.B, I.C, C);
  goto HandleCall;
}

L_CallPred: {
  const Insn &I = *Ip;
  CallVal = callPred(Fn.Sites[I.D], R + I.B, I.C, C);
  goto HandleCall;
}

L_CallFeedback: {
  const Insn &I = *Ip;
  CallVal = callFeedback(Fn.Sites[I.D], R + I.B, I.C, C);
  goto HandleCall;
}

L_CallClosure: {
  const Insn &I = *Ip;
  // Callee passed by value: the register may be clobbered by the callee's
  // result landing in I.A == I.B.
  CallVal = callClosureValue(R[I.B], R + I.B + 1, I.C, Locs[Ip - Code], C);
  goto HandleCall;
}

HandleCall: {
  if (C.active()) {
    if (C.K == Control::Kind::Return) {
      if (C.Activation == CurrentHome) {
        // A non-local return unwinding through this frame: land in the
        // innermost inlined region containing this call site that
        // catches the boundary (the bytecode analogue of the nearest
        // enclosing InlinedExpr catch).
        const uint32_t Pc = static_cast<uint32_t>(Ip - Code);
        const BcRegion *Best = nullptr;
        for (const BcRegion &Rg : Fn.Regions) {
          if (Rg.Boundary != C.Boundary || Pc < Rg.Start || Pc >= Rg.End)
            continue;
          if (!Best || Rg.End - Rg.Start < Best->End - Best->Start)
            Best = &Rg;
        }
        if (Best) {
          R[Best->Dst] = C.Val;
          C = Control();
          Ip = Code + Best->End;
          BC_DISPATCH();
        }
      }
      // Methods catch boundary-0 returns of their own activation (the
      // AST walker's invokeVersion epilogue).
      if (Fn.IsMethod && C.Boundary == 0 && C.Activation == Activation) {
        Value Ret = C.Val;
        C = Control();
        return Ret;
      }
    }
    return Value::nil(); // propagate Return/Error to the caller
  }
  R[Ip->A] = CallVal;
  ++Ip;
  BC_DISPATCH();
}

  // ---- Objects and closures ----

L_MakeClosure: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::ClosureLit);
  if (!heapHasRoom()) {
    failHeapLimit(C, Locs[Ip - Code]);
    return Value::nil();
  }
  const BcClosureRef &Ref = Fn.Closures[I.D];
  if (uint64_t N = membudget::closureBytes(Ref.Lit->Captures.size());
      !heapBytesOk(N)) {
    failMemoryBudget(C, Locs[Ip - Code], N);
    return Value::nil();
  }
  ++Stats.ClosuresCreated;
  Stats.Cycles += Costs.ClosureCreateCost;
  std::vector<CellPtr> Captured;
  Captured.reserve(Ref.Lit->Captures.size());
  for (const CaptureSpec &CS : Ref.Lit->Captures)
    Captured.push_back(CS.Source == CaptureSpec::From::EnclosingCell
                           ? F.cell(CS.Index)
                           : F.capture(CS.Index));
  Obj *O = TheHeap.newClosure(Ref.Lit, std::move(Captured), CurrentHome);
  O->BcFn = Ref.Fn;
  R[I.A] = Value::ofObj(O);
  ++Ip;
  BC_DISPATCH();
}

L_NewObj: {
  const Insn &I = *Ip;
  BC_CHARGE(Expr::Kind::New);
  if (!heapHasRoom()) {
    failHeapLimit(C, Locs[Ip - Code]);
    return Value::nil();
  }
  const BcNewSite &NS = Fn.NewSites[I.D];
  if (uint64_t N = membudget::instanceBytes(NS.LayoutSize);
      !heapBytesOk(N)) {
    failMemoryBudget(C, Locs[Ip - Code], N);
    return Value::nil();
  }
  ++Stats.Allocations;
  Stats.Cycles += Costs.AllocCost + NS.LayoutSize;
  R[I.A] = Value::ofObj(TheHeap.newInstance(NS.N->Class, NS.LayoutSize));
  ++Ip;
  BC_DISPATCH();
}

L_InitSlot: {
  const Insn &I = *Ip;
  R[I.A].asObject()->Slots[I.B] = R[I.C];
  ++Ip;
  BC_DISPATCH();
}

L_GetSlot: {
  const Insn &I = *Ip;
  const BcSlotSite &SS = Fn.SlotSites[I.D];
  SlotCacheState &SC = SlotCaches[SS.CacheSlot];
  const Value &ObjV = R[I.B];
  if (!ObjV.isObject() ||
      ObjV.asObject()->payload() != Obj::Payload::Instance) {
    fail(C, TrapKind::TypeError, Locs[Ip - Code],
         "slot access '" + P.Syms.name(SS.Name) +
             "' on a non-instance value");
    return Value::nil();
  }
  Obj *O = ObjV.asObject();
  int Idx;
  if (SC.CachedIndex >= 0 && O->getClass() == SC.CachedClass) {
    Idx = SC.CachedIndex;
  } else {
    Idx = P.Classes.slotIndex(O->getClass(), SS.Name);
    if (Idx < 0) {
      failNoSlot(C, Locs[Ip - Code], O->getClass(), SS.Name);
      return Value::nil();
    }
    SC.CachedClass = O->getClass();
    SC.CachedIndex = Idx;
  }
  Stats.Cycles += Costs.SlotCost;
  R[I.A] = O->Slots[Idx];
  ++Ip;
  BC_DISPATCH();
}

L_SetSlot: {
  const Insn &I = *Ip;
  const BcSlotSite &SS = Fn.SlotSites[I.D];
  SlotCacheState &SC = SlotCaches[SS.CacheSlot];
  const Value &ObjV = R[I.B];
  if (!ObjV.isObject() ||
      ObjV.asObject()->payload() != Obj::Payload::Instance) {
    fail(C, TrapKind::TypeError, Locs[Ip - Code],
         "slot assignment on a non-instance value");
    return Value::nil();
  }
  Obj *O = ObjV.asObject();
  int Idx;
  if (SC.CachedIndex >= 0 && O->getClass() == SC.CachedClass) {
    Idx = SC.CachedIndex;
  } else {
    Idx = P.Classes.slotIndex(O->getClass(), SS.Name);
    if (Idx < 0) {
      failNoSlot(C, Locs[Ip - Code], O->getClass(), SS.Name);
      return Value::nil();
    }
    SC.CachedClass = O->getClass();
    SC.CachedIndex = Idx;
  }
  Stats.Cycles += Costs.SlotCost;
  O->Slots[Idx] = R[I.C];
  R[I.A] = R[I.C];
  ++Ip;
  BC_DISPATCH();
}

  // ---- Returns ----

L_RetLocal: {
  return R[Ip->A];
}

L_RetNonLocal: {
  const Insn &I = *Ip;
  C.K = Control::Kind::Return;
  C.Activation = CurrentHome;
  C.Boundary = I.D;
  C.Val = R[I.A];
  return Value::nil();
}

#undef BC_DISPATCH
#undef BC_CHARGE
#undef BC_UNLIKELY
}

//===----------------------------------------------------------------------===//
// Primitives (verbatim from the AST tier)
//===----------------------------------------------------------------------===//

Value BytecodeInterpreter::invokePrim(PrimOp Op, const Value *Args,
                                      SourceLoc Loc, Control &C) {
  auto WantInt = [&](const Value &V, int64_t &Out) {
    if (!V.isInt()) {
      failPrimType(C, Op, Loc, "an integer");
      return false;
    }
    Out = V.asInt();
    return true;
  };
  auto WantStr = [&](const Value &V, const std::string *&Out) {
    if (!V.isObject() || V.asObject()->payload() != Obj::Payload::Str) {
      failPrimType(C, Op, Loc, "a string");
      return false;
    }
    Out = &V.asObject()->Str;
    return true;
  };
  auto WantArray = [&](const Value &V, Obj *&Out) {
    if (!V.isObject() || V.asObject()->payload() != Obj::Payload::Array) {
      failPrimType(C, Op, Loc, "an array");
      return false;
    }
    Out = V.asObject();
    return true;
  };

  int64_t A = 0, B = 0;
  const std::string *SA = nullptr, *SB = nullptr;
  Obj *Arr = nullptr;

  switch (Op) {
  case PrimOp::None:
    return fail(C, TrapKind::InternalError, Loc,
                "internal: invoking PrimOp::None");

  case PrimOp::IntAdd:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofInt(A + B);
  case PrimOp::IntSub:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofInt(A - B);
  case PrimOp::IntMul:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofInt(A * B);
  case PrimOp::IntDiv:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    if (B == 0)
      return fail(C, TrapKind::DivisionByZero, Loc, "division by zero");
    return Value::ofInt(A / B);
  case PrimOp::IntMod:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    if (B == 0)
      return fail(C, TrapKind::DivisionByZero, Loc, "modulo by zero");
    return Value::ofInt(A % B);
  case PrimOp::IntNeg:
    if (!WantInt(Args[0], A))
      return Value::nil();
    return Value::ofInt(-A);
  case PrimOp::IntLess:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A < B);
  case PrimOp::IntLessEq:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A <= B);
  case PrimOp::IntGreater:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A > B);
  case PrimOp::IntGreaterEq:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A >= B);
  case PrimOp::IntEq:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A == B);
  case PrimOp::IntNe:
    if (!WantInt(Args[0], A) || !WantInt(Args[1], B))
      return Value::nil();
    return Value::ofBool(A != B);

  case PrimOp::BoolNot:
    if (!Args[0].isBool())
      return fail(C, TrapKind::TypeError, Loc, "'not' expects a boolean");
    return Value::ofBool(!Args[0].asBool());
  case PrimOp::BoolEq:
    if (!Args[0].isBool() || !Args[1].isBool())
      return fail(C, TrapKind::TypeError, Loc,
                  "'==' on booleans expects booleans");
    return Value::ofBool(Args[0].asBool() == Args[1].asBool());

  case PrimOp::AnyEq:
    return Value::ofBool(Args[0].identicalTo(Args[1]));
  case PrimOp::AnyNe:
    return Value::ofBool(!Args[0].identicalTo(Args[1]));

  case PrimOp::StrConcat:
    if (!WantStr(Args[0], SA) || !WantStr(Args[1], SB))
      return Value::nil();
    if (!heapHasRoom())
      return failHeapLimit(C, Loc);
    if (uint64_t N = membudget::stringBytes(SA->size() + SB->size());
        !heapBytesOk(N))
      return failMemoryBudget(C, Loc, N);
    return Value::ofObj(TheHeap.newString(*SA + *SB));
  case PrimOp::StrEq:
    if (!WantStr(Args[0], SA) || !WantStr(Args[1], SB))
      return Value::nil();
    return Value::ofBool(*SA == *SB);
  case PrimOp::StrLess:
    if (!WantStr(Args[0], SA) || !WantStr(Args[1], SB))
      return Value::nil();
    return Value::ofBool(*SA < *SB);
  case PrimOp::StrSize:
    if (!WantStr(Args[0], SA))
      return Value::nil();
    return Value::ofInt(static_cast<int64_t>(SA->size()));

  case PrimOp::ArrayNew:
    if (!WantInt(Args[0], A))
      return Value::nil();
    if (A < 0)
      return fail(C, TrapKind::TypeError, Loc,
                  "array size must be non-negative");
    if (!heapHasRoom())
      return failHeapLimit(C, Loc);
    if (uint64_t N = membudget::arrayBytes(static_cast<uint64_t>(A));
        !heapBytesOk(N))
      return failMemoryBudget(C, Loc, N);
    ++Stats.Allocations;
    Stats.Cycles += Costs.AllocCost + static_cast<uint64_t>(A);
    return Value::ofObj(TheHeap.newArray(static_cast<size_t>(A)));
  case PrimOp::ArrayAt:
    if (!WantArray(Args[0], Arr) || !WantInt(Args[1], A))
      return Value::nil();
    if (A < 0 || static_cast<size_t>(A) >= Arr->Slots.size())
      return failBounds(C, Loc, A, Arr->Slots.size());
    Stats.Cycles += Costs.SlotCost;
    return Arr->Slots[static_cast<size_t>(A)];
  case PrimOp::ArrayPut:
    if (!WantArray(Args[0], Arr) || !WantInt(Args[1], A))
      return Value::nil();
    if (A < 0 || static_cast<size_t>(A) >= Arr->Slots.size())
      return failBounds(C, Loc, A, Arr->Slots.size());
    Stats.Cycles += Costs.SlotCost;
    Arr->Slots[static_cast<size_t>(A)] = Args[2];
    return Args[2];
  case PrimOp::ArraySize:
    if (!WantArray(Args[0], Arr))
      return Value::nil();
    return Value::ofInt(static_cast<int64_t>(Arr->Slots.size()));

  case PrimOp::Print:
    if (Opts.Output)
      *Opts.Output << valueToString(Args[0]) << '\n';
    return Value::nil();
  case PrimOp::ClassName: {
    if (!heapHasRoom())
      return failHeapLimit(C, Loc);
    const std::string &Name =
        P.Syms.name(P.Classes.info(Args[0].classOf()).Name);
    if (uint64_t N = membudget::stringBytes(Name.size()); !heapBytesOk(N))
      return failMemoryBudget(C, Loc, N);
    return Value::ofObj(TheHeap.newString(Name));
  }
  case PrimOp::Abort:
    return fail(C, TrapKind::UserAbort, Loc,
                "abort: " + valueToString(Args[0]));
  }
  return fail(C, TrapKind::InternalError, Loc,
              "internal: unknown primitive");
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Value BytecodeInterpreter::callGeneric(const std::string &Name,
                                       std::vector<Value> Args, bool &Ok) {
  Ok = false;
  Error.clear();
  Trap.reset();
  // Anchor the native-stack backstop at the point the embedder entered.
  char StackProbe;
  StackBase = reinterpret_cast<uintptr_t>(&StackProbe);
  // A deadline that expired before entry fails immediately rather than
  // waiting for the first sampled chargeNode poll.
  if (Opts.Cancel && Opts.Cancel->stopRequested()) {
    CtrDeadlineExpired.add();
    failTop(TrapKind::DeadlineExceeded, Opts.Cancel->reason());
    return Value::nil();
  }
  Symbol S = P.Syms.find(Name);
  GenericId G = S.isValid()
                    ? P.lookupGeneric(S, static_cast<unsigned>(Args.size()))
                    : GenericId();
  if (!G.isValid()) {
    failTop(TrapKind::NoApplicableMethod,
            "no generic function '" + Name + "/" +
                std::to_string(Args.size()) + "'");
    return Value::nil();
  }
  std::vector<ClassId> Classes;
  for (const Value &V : Args)
    Classes.push_back(V.classOf());
  bool Ambiguous = false;
  MethodId Target = P.dispatch(G, Classes, &Ambiguous);
  if (!Target.isValid()) {
    failTop(Ambiguous ? TrapKind::AmbiguousDispatch
                      : TrapKind::NoApplicableMethod,
            Ambiguous ? "message '" + Name + "' is ambiguous"
                      : "message '" + Name + "' not understood");
    return Value::nil();
  }

  Control C;
  Value Result = bcInvokeMethod(Target, CP.selectVersion(Target, Classes),
                                Args.data(), Args.size(), SourceLoc(), C);
  if (C.K == Control::Kind::Error)
    return Value::nil();
  if (C.K == Control::Kind::Return) {
    failTop(TrapKind::InternalError,
            "non-local return escaped its home activation");
    return Value::nil();
  }
  Ok = true;
  return Result;
}

bool BytecodeInterpreter::callMain(int64_t Arg) {
  bool Ok = false;
  callGeneric("main", {Value::ofInt(Arg)}, Ok);
  return Ok;
}

//===- bytecode/Disassembler.h - Bytecode listing --------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable listing of a BcModule (`micac --dump-bytecode`): per
/// function, the augmented frame layout, each instruction's opcode and
/// operands, and the side-table annotations — send-site binding kinds and
/// live inline-cache state, cached slot indices, new-site layouts.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_BYTECODE_DISASSEMBLER_H
#define SELSPEC_BYTECODE_DISASSEMBLER_H

#include "bytecode/Bytecode.h"

#include <iosfwd>

namespace selspec {

class Program;

/// Prints every function of \p Mod to \p OS.  \p P resolves method,
/// generic and symbol names.
void disassemble(const BcModule &Mod, const Program &P, std::ostream &OS);

/// Prints one function.
void disassemble(const BcFunction &Fn, const Program &P, std::ostream &OS);

} // namespace selspec

#endif // SELSPEC_BYTECODE_DISASSEMBLER_H

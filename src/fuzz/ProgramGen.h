//===- fuzz/ProgramGen.h - Seeded random Mica program generator -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random Mica program generation for the crash-proofing
/// stress harness (tools/mica-stress, tests/FuzzTests.cpp).  Generated
/// programs are syntactically plausible but intentionally not guaranteed
/// to resolve or run cleanly: the invariant under test is that every
/// input yields Diagnostics, a RuntimeTrap, or a normal result — never a
/// crash, assert, or sanitizer report.
///
/// Everything is seeded: the same seed always produces the same program,
/// so a CI failure is reproducible from its logged seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_FUZZ_PROGRAMGEN_H
#define SELSPEC_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace selspec {
namespace fuzz {

/// Small deterministic PRNG (splitmix64); intentionally not std::mt19937
/// so the sequence is stable across standard libraries.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += UINT64_C(0x9E3779B97F4A7C15));
    Z = (Z ^ (Z >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
    Z = (Z ^ (Z >> 27)) * UINT64_C(0x94D049BB133111EB);
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); N must be nonzero.
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }

  /// True with probability Percent/100.
  bool chance(uint32_t Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Generates one random Mica module (classes + methods + main) from
/// \p Seed.  Output parses cleanly for most seeds; resolution or runtime
/// failures are expected and in-scope for the harness.
std::string generateProgram(uint64_t Seed);

} // namespace fuzz
} // namespace selspec

#endif // SELSPEC_FUZZ_PROGRAMGEN_H

//===- fuzz/ProgramGen.h - Seeded random Mica program generator -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random Mica program generation for the crash-proofing
/// stress harness (tools/mica-stress, tests/FuzzTests.cpp).  Generated
/// programs are syntactically plausible but intentionally not guaranteed
/// to resolve or run cleanly: the invariant under test is that every
/// input yields Diagnostics, a RuntimeTrap, or a normal result — never a
/// crash, assert, or sanitizer report.
///
/// Everything is seeded: the same seed always produces the same program,
/// so a CI failure is reproducible from its logged seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_FUZZ_PROGRAMGEN_H
#define SELSPEC_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace selspec {
namespace fuzz {

/// Small deterministic PRNG (splitmix64); intentionally not std::mt19937
/// so the sequence is stable across standard libraries.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += UINT64_C(0x9E3779B97F4A7C15));
    Z = (Z ^ (Z >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
    Z = (Z ^ (Z >> 27)) * UINT64_C(0x94D049BB133111EB);
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); N must be nonzero.  Rejection sampling: a raw
  /// draw landing in the top partial bucket [2^64 - 2^64 % N, 2^64) would
  /// over-weight the low residues, so it is redrawn.  The first accepted
  /// draw returns exactly the old `next() % N`, so every logged seed
  /// replays its historical sequence (a redraw needs a draw within
  /// N/2^64 of the top — never observed for N below 2^32).
  uint32_t below(uint32_t N) {
    uint64_t Rem = (0 - uint64_t(N)) % N;
    uint64_t V = next();
    if (Rem != 0)
      while (V > UINT64_MAX - Rem)
        V = next();
    return static_cast<uint32_t>(V % N);
  }

  /// True with probability Percent/100.
  bool chance(uint32_t Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Generates one random Mica module (classes + methods + main) from
/// \p Seed.  Output parses cleanly for most seeds; resolution or runtime
/// failures are expected and in-scope for the harness.
std::string generateProgram(uint64_t Seed);

/// Knobs for the structured hierarchy synthesizer.  Unlike
/// generateProgram's grab-bag modules, the output here always resolves
/// and runs cleanly: a single-rooted class tree of roughly \p Classes
/// classes shaped by depth/fanout draws, \p MethodLeaves leaf classes
/// carrying one method per generic, and megamorphic driver loops that
/// cycle all \p MethodLeaves receivers through every generic's call
/// site (a k-way fanout no static analysis can devirtualize).  Classes
/// are emitted in DFS preorder, so ClassIds coincide with the
/// hierarchy's preorder numbering and cones stay single intervals.
struct HierarchySpec {
  /// Total synthesized classes (the builtins come on top).
  unsigned Classes = 100;
  /// Maximum inheritance depth of the synthesized tree.
  unsigned Depth = 8;
  /// Maximum children per synthesized class.
  unsigned Fanout = 8;
  /// Percent of classes that also inherit a second, earlier class
  /// (inheritance diamonds; breaks the preorder == id fast path on
  /// purpose when nonzero).
  unsigned MultiParentPercent = 0;
  /// Leaf classes that carry methods and flow through the megamorphic
  /// call sites (the k-way fanout; clamped to the available leaves).
  unsigned MethodLeaves = 16;
  /// Generic functions dispatched at the megamorphic sites.
  unsigned Generics = 4;
  uint64_t Seed = 1;
};

/// Generates the Mica module described by \p Spec.  Deterministic in
/// Spec (including Seed); `main(n)` executes ~n megamorphic dispatches
/// per generic and prints a checksum that is identical across configs
/// and tiers.
std::string generateHierarchyProgram(const HierarchySpec &Spec);

} // namespace fuzz
} // namespace selspec

#endif // SELSPEC_FUZZ_PROGRAMGEN_H

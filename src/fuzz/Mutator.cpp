//===- fuzz/Mutator.cpp - Seeded byte-level input mutators ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include <algorithm>

using namespace selspec;
using namespace selspec::fuzz;

namespace {

void mutateOnce(std::string &S, Rng &R) {
  switch (R.below(6)) {
  case 0: { // flip one bit
    if (S.empty())
      return;
    size_t Pos = R.below(static_cast<uint32_t>(S.size()));
    S[Pos] = static_cast<char>(S[Pos] ^ (1 << R.below(8)));
    break;
  }
  case 1: { // overwrite one byte with an arbitrary value
    if (S.empty())
      return;
    size_t Pos = R.below(static_cast<uint32_t>(S.size()));
    S[Pos] = static_cast<char>(R.below(256));
    break;
  }
  case 2: { // insert 1-4 bytes; bias toward printable structure characters
    static const char Interesting[] = "(){};@.,\"0 \n\t\xff\x00=";
    size_t Pos = R.below(static_cast<uint32_t>(S.size() + 1));
    unsigned N = 1 + R.below(4);
    std::string Ins;
    for (unsigned I = 0; I != N; ++I)
      Ins += R.chance(60)
                 ? Interesting[R.below(sizeof(Interesting) - 1)]
                 : static_cast<char>(R.below(256));
    S.insert(Pos, Ins);
    break;
  }
  case 3: { // delete a short run of bytes
    if (S.empty())
      return;
    size_t Pos = R.below(static_cast<uint32_t>(S.size()));
    size_t Len = std::min<size_t>(1 + R.below(8), S.size() - Pos);
    S.erase(Pos, Len);
    break;
  }
  case 4: { // duplicate a chunk elsewhere (repeated decls, doubled arcs)
    if (S.empty())
      return;
    size_t From = R.below(static_cast<uint32_t>(S.size()));
    size_t Len = std::min<size_t>(1 + R.below(32), S.size() - From);
    std::string Chunk = S.substr(From, Len);
    S.insert(R.below(static_cast<uint32_t>(S.size() + 1)), Chunk);
    break;
  }
  default: { // truncate (mid-token, mid-record truncation)
    if (S.empty())
      return;
    S.resize(R.below(static_cast<uint32_t>(S.size())));
    break;
  }
  }
}

} // namespace

std::string selspec::fuzz::mutateBytes(const std::string &Input, Rng &R,
                                       unsigned NumMutations) {
  std::string S = Input;
  for (unsigned I = 0; I != NumMutations; ++I)
    mutateOnce(S, R);
  return S;
}

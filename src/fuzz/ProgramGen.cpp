//===- fuzz/ProgramGen.cpp - Seeded random Mica program generator ----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGen.h"

#include <sstream>
#include <vector>

using namespace selspec;
using namespace selspec::fuzz;

namespace {

/// Shared generation state: the declared names the expression generator
/// can reference (classes, generics, slots, locals in scope).
struct GenState {
  Rng &R;
  std::vector<std::string> Classes;
  std::vector<std::string> Slots;
  /// name, arity
  std::vector<std::pair<std::string, unsigned>> Generics;
  std::vector<std::string> Locals;

  explicit GenState(Rng &R) : R(R) {}

  const std::string &anyClass() { return Classes[R.below(Classes.size())]; }
  const std::string &anySlot() { return Slots[R.below(Slots.size())]; }
};

void genExpr(GenState &S, std::ostringstream &OS, unsigned Depth);

/// A receiver-ish expression: something likely (not certain) to be an
/// instance or integer.
void genSimple(GenState &S, std::ostringstream &OS) {
  switch (S.R.below(6)) {
  case 0:
    OS << S.R.below(100);
    break;
  case 1:
  case 2:
    if (!S.Locals.empty()) {
      OS << S.Locals[S.R.below(S.Locals.size())];
      break;
    }
    [[fallthrough]];
  case 3:
    OS << "new " << S.anyClass();
    break;
  case 4:
    OS << (S.R.chance(50) ? "true" : "false");
    break;
  default:
    OS << "nil";
    break;
  }
}

void genCall(GenState &S, std::ostringstream &OS, unsigned Depth) {
  const auto &[Name, Arity] = S.Generics[S.R.below(S.Generics.size())];
  OS << Name << '(';
  for (unsigned I = 0; I != Arity; ++I) {
    if (I)
      OS << ", ";
    genExpr(S, OS, Depth + 1);
  }
  OS << ')';
}

void genExpr(GenState &S, std::ostringstream &OS, unsigned Depth) {
  if (Depth >= 4) {
    genSimple(S, OS);
    return;
  }
  switch (S.R.below(12)) {
  case 0:
  case 1: {
    static const char *Ops[] = {"+", "-", "*", "/", "%"};
    genSimple(S, OS);
    OS << ' ' << Ops[S.R.below(5)] << ' ';
    genExpr(S, OS, Depth + 1);
    break;
  }
  case 2: {
    static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    genSimple(S, OS);
    OS << ' ' << Cmps[S.R.below(6)] << ' ';
    genSimple(S, OS);
    break;
  }
  case 3:
  case 4:
    genCall(S, OS, Depth);
    break;
  case 5: // slot read (may be a type error or undefined slot — fine)
    OS << '(';
    genSimple(S, OS);
    OS << ")." << S.anySlot();
    break;
  case 6: // array round trip (index may be out of bounds — fine)
    OS << "at(array(" << (1 + S.R.below(8)) << "), " << S.R.below(10) << ')';
    break;
  case 7: // closure creation + immediate call
    OS << "fn(a) { a + " << S.R.below(5) << "; }(";
    genSimple(S, OS);
    OS << ')';
    break;
  case 8:
    OS << "\"s" << S.R.below(10) << "\"";
    break;
  case 9:
    OS << "className(";
    genSimple(S, OS);
    OS << ')';
    break;
  default:
    genSimple(S, OS);
    break;
  }
}

void genStmt(GenState &S, std::ostringstream &OS, unsigned Depth,
             const char *Indent) {
  switch (S.R.below(8)) {
  case 0: {
    std::string Name = "v" + std::to_string(S.Locals.size());
    OS << Indent << "let " << Name << " := ";
    genExpr(S, OS, 1);
    OS << ";\n";
    S.Locals.push_back(Name);
    break;
  }
  case 1:
    if (Depth < 2) {
      OS << Indent << "if (";
      genSimple(S, OS);
      OS << " < " << S.R.below(50) << ") {\n";
      genStmt(S, OS, Depth + 1, "      ");
      OS << Indent << "} else {\n";
      genStmt(S, OS, Depth + 1, "      ");
      OS << Indent << "}\n";
      break;
    }
    [[fallthrough]];
  case 2:
    if (Depth < 2) {
      // Bounded counting loop so most programs terminate on their own.
      std::string I = "i" + std::to_string(S.Locals.size());
      OS << Indent << "let " << I << " := 0;\n"
         << Indent << "while (" << I << " < " << (1 + S.R.below(6))
         << ") {\n";
      genStmt(S, OS, Depth + 1, "      ");
      OS << Indent << "  " << I << " := " << I << " + 1;\n"
         << Indent << "}\n";
      break;
    }
    [[fallthrough]];
  case 3:
    OS << Indent << "print(";
    genExpr(S, OS, 2);
    OS << ");\n";
    break;
  case 4:
    if (S.R.chance(20)) {
      OS << Indent << "return ";
      genExpr(S, OS, 2);
      OS << ";\n";
      break;
    }
    [[fallthrough]];
  default:
    OS << Indent;
    genExpr(S, OS, 0);
    OS << ";\n";
    break;
  }
}

} // namespace

std::string selspec::fuzz::generateProgram(uint64_t Seed) {
  Rng R(Seed);
  GenState S(R);
  std::ostringstream OS;

  // Class hierarchy: C0 is a root; later classes inherit an earlier one
  // (sometimes two, exercising multiple inheritance and ambiguity).
  unsigned NumClasses = 2 + R.below(4);
  unsigned NumSlots = 1 + R.below(3);
  for (unsigned I = 0; I != NumSlots; ++I)
    S.Slots.push_back("s" + std::to_string(I));
  for (unsigned I = 0; I != NumClasses; ++I) {
    std::string Name = "C" + std::to_string(I);
    OS << "class " << Name;
    if (I > 0) {
      OS << " isa C" << R.below(I);
      if (I > 1 && R.chance(25))
        OS << ", C" << R.below(I);
    }
    if (R.chance(60)) {
      OS << " { ";
      for (const std::string &Slot : S.Slots)
        OS << "slot " << Slot << "; ";
      OS << "}";
    }
    OS << ";\n";
    S.Classes.push_back(std::move(Name));
  }
  OS << '\n';

  // Generic functions with 1-3 methods each, specialized on random
  // classes (overlapping specializers sometimes dispatch ambiguously —
  // intentionally).
  unsigned NumGenerics = 2 + R.below(3);
  for (unsigned G = 0; G != NumGenerics; ++G) {
    std::string Name = "g" + std::to_string(G);
    unsigned Arity = 1 + R.below(2);
    unsigned NumMethods = 1 + R.below(3);
    S.Generics.emplace_back(Name, Arity);
    for (unsigned M = 0; M != NumMethods; ++M) {
      OS << "method " << Name << '(';
      for (unsigned A = 0; A != Arity; ++A) {
        if (A)
          OS << ", ";
        OS << 'p' << A;
        if (R.chance(70))
          OS << '@' << S.anyClass();
      }
      OS << ") {\n";
      S.Locals.clear();
      for (unsigned A = 0; A != Arity; ++A)
        S.Locals.push_back("p" + std::to_string(A));
      unsigned NumStmts = 1 + R.below(3);
      for (unsigned St = 0; St != NumStmts; ++St)
        genStmt(S, OS, 1, "  ");
      OS << "  " << R.below(100) << ";\n}\n";
    }
  }

  // Occasionally a self-recursive helper (recursion-limit food).
  if (R.chance(30)) {
    OS << "method rec(n@Int) {\n"
       << "  if (n <= 0) { 0; } else { rec(n - 1) + 1; }\n"
       << "}\n";
    S.Generics.emplace_back("rec", 1);
  }

  OS << "\nmethod main(n@Int) {\n";
  S.Locals.clear();
  S.Locals.push_back("n");
  unsigned NumStmts = 2 + R.below(4);
  for (unsigned St = 0; St != NumStmts; ++St)
    genStmt(S, OS, 0, "  ");
  OS << "  0;\n}\n";
  return OS.str();
}

std::string selspec::fuzz::generateHierarchyProgram(const HierarchySpec &Spec) {
  Rng R(Spec.Seed);
  unsigned NumClasses = Spec.Classes < 2 ? 2 : Spec.Classes;
  unsigned Depth = Spec.Depth < 2 ? 2 : Spec.Depth;
  unsigned Fanout = Spec.Fanout < 1 ? 1 : Spec.Fanout;

  // Tree shape, built in DFS preorder: Path holds the ancestors of the
  // next class, so attaching to Path.back() keeps emission order equal
  // to a DFS preorder of the finished tree (and therefore ClassIds equal
  // to the hierarchy's preorder numbers — builtins are leaves declared
  // first, synthesized classes follow in preorder).
  std::vector<unsigned> Parent(NumClasses, 0);
  std::vector<unsigned> SecondParent(NumClasses, UINT32_MAX);
  std::vector<unsigned> NumChildren(NumClasses, 0);
  std::vector<unsigned> Path{0};
  for (unsigned I = 1; I != NumClasses; ++I) {
    while (Path.size() > 1 &&
           (Path.size() >= Depth || NumChildren[Path.back()] >= Fanout ||
            R.chance(100 / Depth)))
      Path.pop_back();
    unsigned P = Path.back();
    Parent[I] = P;
    ++NumChildren[P];
    if (Spec.MultiParentPercent != 0 && I > 1 &&
        R.chance(Spec.MultiParentPercent)) {
      unsigned S = R.below(I);
      if (S != P) {
        SecondParent[I] = S;
        // Diamond edges count as children too: method leaves must have
        // no descendants at all, or two method classes could become
        // ancestor-related and a megamorphic dispatch ambiguous.
        ++NumChildren[S];
      }
    }
    Path.push_back(I);
  }

  // Method-bearing leaves: evenly spaced over the leaf list so the k-way
  // fanout spans the whole tree instead of clustering in one subtree.
  std::vector<unsigned> Leaves;
  for (unsigned I = 1; I != NumClasses; ++I)
    if (NumChildren[I] == 0)
      Leaves.push_back(I);
  unsigned K = Spec.MethodLeaves < 1 ? 1 : Spec.MethodLeaves;
  if (K > Leaves.size())
    K = static_cast<unsigned>(Leaves.size());
  std::vector<unsigned> MethodClasses;
  for (unsigned J = 0; J != K; ++J)
    MethodClasses.push_back(
        Leaves[static_cast<size_t>(J) * Leaves.size() / K]);

  unsigned NumGenerics = Spec.Generics < 1 ? 1 : Spec.Generics;

  std::ostringstream OS;
  for (unsigned I = 0; I != NumClasses; ++I) {
    OS << "class H" << I;
    if (I != 0) {
      OS << " isa H" << Parent[I];
      if (SecondParent[I] != UINT32_MAX)
        OS << ", H" << SecondParent[I];
    }
    if (R.chance(25))
      OS << " { slot f" << R.below(3) << "; }";
    OS << ";\n";
  }
  OS << '\n';

  // One method per (generic, method leaf); bodies return distinct
  // constants so the printed checksum separates misdispatches.
  for (unsigned G = 0; G != NumGenerics; ++G) {
    for (unsigned J = 0; J != K; ++J)
      OS << "method g" << G << "(x@H" << MethodClasses[J] << ") { "
         << (G * K + J + 1) << "; }\n";
    OS << '\n';
  }

  OS << "method fill(objs@Array) {\n";
  for (unsigned J = 0; J != K; ++J)
    OS << "  atPut(objs, " << J << ", new H" << MethodClasses[J] << ");\n";
  OS << "  objs;\n}\n\n";

  // The megamorphic driver: every iteration dispatches each generic on a
  // rotating Array element, so the receiver is statically unknown and
  // dynamically cycles through all K method classes.
  OS << "method spin(objs@Array, n@Int) {\n"
     << "  let acc := 0;\n"
     << "  let i := 0;\n"
     << "  while (i < n) {\n";
  for (unsigned G = 0; G != NumGenerics; ++G)
    OS << "    acc := acc + g" << G << "(at(objs, (i + " << G << ") % " << K
       << "));\n";
  OS << "    i := i + 1;\n"
     << "  }\n"
     << "  acc;\n}\n\n";

  OS << "method main(n@Int) {\n"
     << "  let objs := array(" << K << ");\n"
     << "  fill(objs);\n"
     << "  print(spin(objs, n));\n"
     << "  0;\n}\n";
  return OS.str();
}

//===- fuzz/Mutator.h - Seeded byte-level input mutators --------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic byte-level mutation of arbitrary inputs (Mica sources,
/// serialized profiles) for the crash-proofing stress harness.  Mutations
/// are structure-blind on purpose: the parser, profile loader, and
/// interpreter must survive any byte soup, not just near-valid inputs.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_FUZZ_MUTATOR_H
#define SELSPEC_FUZZ_MUTATOR_H

#include "fuzz/ProgramGen.h"

#include <string>

namespace selspec {
namespace fuzz {

/// Applies \p NumMutations random byte-level mutations (bit flips, byte
/// overwrites, insertions, deletions, chunk duplication, truncation) to a
/// copy of \p Input, driven by \p R.  The result may be any length,
/// including empty.
std::string mutateBytes(const std::string &Input, Rng &R,
                        unsigned NumMutations);

} // namespace fuzz
} // namespace selspec

#endif // SELSPEC_FUZZ_MUTATOR_H

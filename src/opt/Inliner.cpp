//===- opt/Inliner.cpp - Method and closure-call inlining ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "opt/Inliner.h"

#include <unordered_map>

using namespace selspec;

namespace {

/// Renames every bound name (let, closure param, pre-seeded formals) of a
/// cloned callee body to fresh symbols, honoring lexical shadowing, and
/// retargets method-level (boundary 0) returns to \p Boundary.
class BodyRewriter {
public:
  BodyRewriter(SymbolTable &Syms, uint32_t Boundary)
      : Syms(Syms), Boundary(Boundary) {
    Scopes.emplace_back();
  }

  void seed(Symbol Old, Symbol Fresh) { Scopes.back()[Old.value()] = Fresh; }

  void rewrite(Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::StrLit:
    case Expr::Kind::NilLit:
      return;
    case Expr::Kind::VarRef: {
      auto *V = cast<VarRefExpr>(E);
      V->Name = renamed(V->Name);
      return;
    }
    case Expr::Kind::AssignVar: {
      auto *A = cast<AssignVarExpr>(E);
      A->Name = renamed(A->Name);
      rewrite(A->Value.get());
      return;
    }
    case Expr::Kind::Let: {
      auto *L = cast<LetExpr>(E);
      rewrite(L->Init.get());
      Symbol Fresh = Syms.gensym(Syms.name(L->Name));
      Scopes.back()[L->Name.value()] = Fresh;
      L->Name = Fresh;
      return;
    }
    case Expr::Kind::Seq: {
      Scopes.emplace_back();
      for (ExprPtr &Elem : cast<SeqExpr>(E)->Elems)
        rewrite(Elem.get());
      Scopes.pop_back();
      return;
    }
    case Expr::Kind::If: {
      auto *I = cast<IfExpr>(E);
      rewrite(I->Cond.get());
      rewrite(I->Then.get());
      if (I->Else)
        rewrite(I->Else.get());
      return;
    }
    case Expr::Kind::While: {
      auto *W = cast<WhileExpr>(E);
      rewrite(W->Cond.get());
      rewrite(W->Body.get());
      return;
    }
    case Expr::Kind::Send:
      for (ExprPtr &A : cast<SendExpr>(E)->Args)
        rewrite(A.get());
      return;
    case Expr::Kind::ClosureCall: {
      auto *C = cast<ClosureCallExpr>(E);
      rewrite(C->Callee.get());
      for (ExprPtr &A : C->Args)
        rewrite(A.get());
      return;
    }
    case Expr::Kind::ClosureLit: {
      auto *C = cast<ClosureLitExpr>(E);
      Scopes.emplace_back();
      for (Symbol &S : C->Params) {
        Symbol Fresh = Syms.gensym(Syms.name(S));
        Scopes.back()[S.value()] = Fresh;
        S = Fresh;
      }
      rewrite(C->Body.get());
      Scopes.pop_back();
      return;
    }
    case Expr::Kind::New:
      for (auto &[Slot, Init] : cast<NewExpr>(E)->Inits)
        rewrite(Init.get());
      return;
    case Expr::Kind::SlotGet:
      rewrite(cast<SlotGetExpr>(E)->Object.get());
      return;
    case Expr::Kind::SlotSet: {
      auto *S = cast<SlotSetExpr>(E);
      rewrite(S->Object.get());
      rewrite(S->Value.get());
      return;
    }
    case Expr::Kind::Return: {
      auto *R = cast<ReturnExpr>(E);
      if (R->Boundary == 0)
        R->Boundary = Boundary;
      if (R->Value)
        rewrite(R->Value.get());
      return;
    }
    case Expr::Kind::Inlined:
      assert(false && "source bodies contain no InlinedExpr");
      return;
    }
  }

private:
  Symbol renamed(Symbol Old) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Old.value());
      if (Found != It->end())
        return Found->second;
    }
    return Old; // free variable — impossible for method bodies, but safe
  }

  SymbolTable &Syms;
  uint32_t Boundary;
  std::vector<std::unordered_map<uint32_t, Symbol>> Scopes;
};

} // namespace

std::unique_ptr<InlinedExpr>
Inliner::inlineMethodCall(const MethodInfo &Callee, std::vector<ExprPtr> Args,
                          CallSiteId Origin, SourceLoc Loc) {
  assert(!Callee.isBuiltin() && "builtins are inlined as primitives");
  assert(Args.size() == Callee.arity() && "arity mismatch");

  uint32_t Boundary = freshBoundary();
  ExprPtr Body = Callee.Body->clone();

  BodyRewriter RW(Syms, Boundary);
  std::vector<std::pair<Symbol, ExprPtr>> Bindings;
  Bindings.reserve(Args.size());
  for (unsigned I = 0; I != Args.size(); ++I) {
    Symbol Fresh = Syms.gensym(Syms.name(Callee.ParamNames[I]));
    RW.seed(Callee.ParamNames[I], Fresh);
    Bindings.emplace_back(Fresh, std::move(Args[I]));
  }
  RW.rewrite(Body.get());

  auto In = std::make_unique<InlinedExpr>(std::move(Bindings),
                                          std::move(Body), Boundary, Loc);
  In->OriginSite = Origin;
  return In;
}

std::unique_ptr<InlinedExpr>
Inliner::inlineClosureCall(const ClosureLitExpr &Lit,
                           std::vector<ExprPtr> Args, SourceLoc Loc) {
  assert(Args.size() == Lit.Params.size() && "closure arity mismatch");

  // The body keeps its names (its free variables refer to enclosing code
  // of the same compiled body) and its return boundaries (non-local
  // returns must keep unwinding past this splice), so the fresh boundary
  // below is never targeted — the InlinedExpr only provides the parameter
  // scope.
  std::vector<std::pair<Symbol, ExprPtr>> Bindings;
  Bindings.reserve(Args.size());
  for (unsigned I = 0; I != Args.size(); ++I)
    Bindings.emplace_back(Lit.Params[I], std::move(Args[I]));

  return std::make_unique<InlinedExpr>(std::move(Bindings),
                                       Lit.Body->clone(), freshBoundary(),
                                       Loc);
}

//===- opt/CompiledProgram.cpp - Compiled method versions ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "opt/CompiledProgram.h"

using namespace selspec;

uint32_t CompiledProgram::addVersion(CompiledMethod CM) {
  if (ByMethod.size() < P.numMethods())
    ByMethod.resize(P.numMethods());
  uint32_t Index = static_cast<uint32_t>(Versions.size());
  CM.Index = Index;
  ByMethod[CM.Source.value()].push_back(Index);
  Versions.push_back(std::move(CM));
  InvokedBits.emplace_back(0);
  return Index;
}

int CompiledProgram::selectVersion(
    MethodId M, const std::vector<ClassId> &ArgClasses) const {
  int Best = -1;
  for (uint32_t Index : ByMethod[M.value()]) {
    const CompiledMethod &CM = Versions[Index];
    if (!tupleContains(CM.Tuple, ArgClasses))
      continue;
    if (Best < 0 ||
        tupleSubsetOf(CM.Tuple, Versions[Best].Tuple))
      Best = static_cast<int>(Index);
  }
  return Best;
}

unsigned CompiledProgram::numCompiledRoutines() const {
  unsigned N = 0;
  for (const CompiledMethod &CM : Versions)
    if (!P.method(CM.Source).isBuiltin())
      ++N;
  return N;
}

unsigned CompiledProgram::numInvokedRoutines() const {
  unsigned N = 0;
  for (const CompiledMethod &CM : Versions)
    if (invoked(CM.Index) && !P.method(CM.Source).isBuiltin())
      ++N;
  return N;
}

uint64_t CompiledProgram::totalCodeSize() const {
  uint64_t N = 0;
  for (const CompiledMethod &CM : Versions)
    if (!P.method(CM.Source).isBuiltin())
      N += CM.CodeSize;
  return N;
}

void CompiledProgram::resetInvoked() {
  for (std::atomic<uint8_t> &Bit : InvokedBits)
    Bit.store(0, std::memory_order_relaxed);
}

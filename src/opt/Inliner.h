//===- opt/Inliner.h - Method and closure-call inlining --------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splices callee bodies into caller bodies.  Two cases:
///
///  - Method inlining: a statically-bound send is replaced by an
///    InlinedExpr that binds fresh (renamed) formals to the actual
///    argument expressions and splices the callee's body with its
///    method-level returns retargeted to the InlinedExpr's boundary.
///    All of the callee's bound names (formals, lets, closure params) are
///    renamed to fresh symbols so closures propagated from the caller
///    cannot be captured by callee bindings.
///
///  - Closure-call inlining: a call of a statically-known closure literal
///    is replaced by an InlinedExpr binding the closure's parameters; the
///    body is spliced verbatim (no renaming, no return retargeting — the
///    closure's non-local returns already target the right boundary).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_OPT_INLINER_H
#define SELSPEC_OPT_INLINER_H

#include "hierarchy/Program.h"

namespace selspec {

class Inliner {
public:
  /// \p Syms is mutated (gensym); one Inliner per compiled method body so
  /// boundaries are unique within it.
  explicit Inliner(SymbolTable &Syms) : Syms(Syms) {}

  /// Inlines user method \p Callee called with \p Args.
  std::unique_ptr<InlinedExpr> inlineMethodCall(const MethodInfo &Callee,
                                                std::vector<ExprPtr> Args,
                                                CallSiteId Origin,
                                                SourceLoc Loc);

  /// Inlines a call of closure literal \p Lit with \p Args.
  std::unique_ptr<InlinedExpr>
  inlineClosureCall(const ClosureLitExpr &Lit, std::vector<ExprPtr> Args,
                    SourceLoc Loc);

private:
  uint32_t freshBoundary() { return NextBoundary++; }

  SymbolTable &Syms;
  uint32_t NextBoundary = 1;
};

} // namespace selspec

#endif // SELSPEC_OPT_INLINER_H

//===- opt/ClassAnalysis.h - Intraprocedural class analysis ----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Support for the optimizer's intraprocedural class analysis (the "Base"
/// optimization of Table 1): a scoped environment mapping variables to
/// class sets, result-class knowledge for builtin primitives, and the
/// assignment/volatility scan that keeps the analysis sound in the
/// presence of loops and closures:
///
///  - variables assigned inside any closure of a body are "volatile" and
///    always analyzed as the universe;
///  - variables assigned in a loop body are widened to the universe before
///    the body is analyzed;
///  - inside a closure body, any variable assigned anywhere in the
///    enclosing body is the universe (the closure may run at any time).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_OPT_CLASSANALYSIS_H
#define SELSPEC_OPT_CLASSANALYSIS_H

#include "hierarchy/PrimOp.h"
#include "lang/Ast.h"
#include "support/ClassSet.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace selspec {

/// Scoped Symbol -> ClassSet environment.
class ClassEnv {
public:
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void define(Symbol Name, ClassSet S) {
    Scopes.back().emplace_back(Name, std::move(S));
  }

  /// Innermost binding, or null.
  ClassSet *lookup(Symbol Name) {
    for (auto SI = Scopes.rbegin(), SE = Scopes.rend(); SI != SE; ++SI)
      for (auto BI = SI->rbegin(), BE = SI->rend(); BI != BE; ++BI)
        if (BI->first == Name)
          return &BI->second;
    return nullptr;
  }

  /// Widens every visible binding of the given names to \p To.
  void widen(const std::unordered_set<uint32_t> &Names, const ClassSet &To) {
    for (auto &Scope : Scopes)
      for (auto &[Name, Set] : Scope)
        if (Names.count(Name.value()))
          Set = To;
  }

private:
  std::vector<std::vector<std::pair<Symbol, ClassSet>>> Scopes;
};

/// Result-class knowledge for builtins: the set of classes a primitive's
/// result may have.  \p Universe sizes the returned set.
ClassSet primResultSet(PrimOp Op, unsigned UniverseSize);

/// Names assigned (AssignVar) anywhere in \p E, including inside closures.
std::unordered_set<uint32_t> collectAssignedNames(const Expr *E);

/// Names assigned inside any ClosureLit nested in \p E.
std::unordered_set<uint32_t> collectClosureAssignedNames(const Expr *E);

/// Number of VarRef occurrences of \p Name in \p E.
unsigned countVarRefs(const Expr *E, Symbol Name);

/// AST node count (the code-size estimate unit).
unsigned countNodes(const Expr *E);

} // namespace selspec

#endif // SELSPEC_OPT_CLASSANALYSIS_H

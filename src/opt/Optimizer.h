//===- opt/Optimizer.h - Vortex-lite optimizing compiler -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a Program under a SpecializationPlan into a CompiledProgram.
/// Per method version, performs the Table 1 "Base" optimizations over the
/// version's class-set context:
///
///  - intraprocedural class analysis (flow-sensitive sets per variable,
///    soundly widened around loops and closures);
///  - static binding of sends: without CHA only exactly-known receiver
///    tuples bind; with CHA any send whose possible targets reduce to one
///    method binds; specialization tightens the formal sets and thus
///    enables both;
///  - direct version binding or run-time version selection when the callee
///    has several compiled versions (Section 3.3/3.5);
///  - inlining of small statically-bound callees, with closure propagation
///    into inlined bodies and closure-call inlining;
///  - dead closure-creation elimination;
///  - hard-wired class prediction for common messages (+, <, ==, ...);
///  - code-size estimation.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_OPT_OPTIMIZER_H
#define SELSPEC_OPT_OPTIMIZER_H

#include "analysis/ApplicableClasses.h"
#include "analysis/ReturnClasses.h"
#include "profile/CallGraph.h"
#include "opt/ClassAnalysis.h"
#include "opt/CompiledProgram.h"
#include "opt/Inliner.h"
#include "specialize/SpecTuple.h"

#include <memory>
#include <unordered_map>

namespace selspec {

struct OptimizerOptions {
  bool EnableInlining = true;
  /// Table 1 Base optimizations: fold primitive sends over literal
  /// arguments and delete effect-free dead statements.
  bool EnableConstantFolding = true;
  bool EnableDeadCodeElimination = true;
  /// Max callee body size (AST nodes) eligible for inlining.
  unsigned InlineBudget = 80;
  /// Max nesting of method inlining.
  unsigned MaxInlineDepth = 5;
  /// Total AST nodes a single compiled version may gain from inlining —
  /// bounds code-space growth the way real inliners do.
  unsigned MaxInlinedNodesPerVersion = 400;
  bool EnableClassPrediction = true;
  bool EnableClosureInlining = true;
  /// Section 6 extension: use the interprocedural return-class analysis
  /// to sharpen send results (only meaningful with CHA configurations).
  bool UseReturnClasses = false;
  /// Section 6 extension: profile-guided type feedback — guard dynamic
  /// sites whose profile shows one dominant callee with an inline-cache
  /// test and a direct call.  Requires a profile to be passed to the
  /// Optimizer.
  bool EnableTypeFeedback = false;
  /// Minimum total site weight and minimum dominant-callee share (%) for
  /// a feedback guard.
  uint64_t FeedbackMinWeight = 1000;
  unsigned FeedbackMinSharePct = 80;
};

class Optimizer {
public:
  /// \p P is non-const only because inlining gensyms fresh names into the
  /// shared symbol table.  \p Profile is only needed for type feedback.
  Optimizer(Program &P, const ApplicableClassesAnalysis &AC,
            OptimizerOptions Options = {},
            const CallGraph *Profile = nullptr);

  /// Compiles every version in \p Plan (plus one version per builtin).
  std::unique_ptr<CompiledProgram> compile(const SpecializationPlan &Plan);

  struct Stats {
    uint64_t SitesStatic = 0;
    uint64_t SitesStaticSelect = 0;
    uint64_t SitesInlinePrim = 0;
    uint64_t SitesPredicted = 0;
    uint64_t SitesDynamic = 0;
    uint64_t SitesFeedback = 0;
    uint64_t MethodsInlined = 0;
    uint64_t ClosureCallsInlined = 0;
    uint64_t ClosureCreationsEliminated = 0;
    uint64_t ConstantsFolded = 0;
    uint64_t DeadStatementsRemoved = 0;
  };
  const Stats &stats() const { return S; }

private:
  void compileVersion(CompiledProgram &CP, uint32_t Index);

  /// Analyzes and rewrites \p E; returns its class-set estimate.
  ClassSet analyze(ExprPtr &E);
  ClassSet analyzeSend(ExprPtr &E);
  ClassSet analyzeInlined(InlinedExpr *In);
  ClassSet analyzeClosureCall(ExprPtr &E);
  ClassSet varSet(Symbol Name);
  ClassSet universe() const { return P.Classes.allClasses(); }

  /// Eliminates closure creations whose binding is never referenced.
  void eliminateDeadClosures(Expr *Root, Expr *Node);
  /// Drops effect-free dead statements (Table 1's dead code elimination).
  void eliminateDeadCode(Expr *Root, Expr *Node);
  /// Replaces a primitive send over literals with its value; returns true
  /// when folded.
  bool tryFoldPrim(ExprPtr &E, PrimOp Op);

  Program &P;
  const ApplicableClassesAnalysis &AC;
  OptimizerOptions Options;
  const CallGraph *Profile;
  std::unique_ptr<ReturnClassAnalysis> RC;
  Stats S;

  // Per-version compile state.
  CompiledProgram *CurCP = nullptr;
  const SpecializationPlan *CurPlan = nullptr;
  std::unique_ptr<Inliner> CurInliner;
  ClassEnv Env;
  std::unordered_set<uint32_t> AssignedNames;
  std::unordered_set<uint32_t> ClosureAssignedNames;
  std::unordered_map<uint32_t, const ClosureLitExpr *> KnownClosures;
  std::vector<MethodId> InlineStack;
  unsigned ClosureDepth = 0;
  unsigned InlinedNodesLeft = 0;
};

} // namespace selspec

#endif // SELSPEC_OPT_OPTIMIZER_H

//===- opt/Optimizer.cpp - Vortex-lite optimizing compiler -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "analysis/StaticBinding.h"
#include "hierarchy/Builtins.h"
#include "lang/SlotResolver.h"
#include "support/PhaseTimer.h"

#include <algorithm>

using namespace selspec;

namespace {

/// Free variables of a closure literal: names referenced in its body that
/// the literal does not bind itself.
void freeVarsImpl(const Expr *E, std::vector<std::vector<uint32_t>> &Bound,
                  std::unordered_set<uint32_t> &Free) {
  auto IsBound = [&](uint32_t Name) {
    for (const auto &Scope : Bound)
      for (uint32_t B : Scope)
        if (B == Name)
          return true;
    return false;
  };
  switch (E->getKind()) {
  case Expr::Kind::VarRef: {
    uint32_t Name = cast<VarRefExpr>(E)->Name.value();
    if (!IsBound(Name))
      Free.insert(Name);
    return;
  }
  case Expr::Kind::AssignVar: {
    const auto *A = cast<AssignVarExpr>(E);
    if (!IsBound(A->Name.value()))
      Free.insert(A->Name.value());
    freeVarsImpl(A->Value.get(), Bound, Free);
    return;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    freeVarsImpl(L->Init.get(), Bound, Free);
    Bound.back().push_back(L->Name.value());
    return;
  }
  case Expr::Kind::Seq:
    Bound.emplace_back();
    for (const ExprPtr &Elem : cast<SeqExpr>(E)->Elems)
      freeVarsImpl(Elem.get(), Bound, Free);
    Bound.pop_back();
    return;
  case Expr::Kind::ClosureLit: {
    const auto *C = cast<ClosureLitExpr>(E);
    Bound.emplace_back();
    for (Symbol S : C->Params)
      Bound.back().push_back(S.value());
    freeVarsImpl(C->Body.get(), Bound, Free);
    Bound.pop_back();
    return;
  }
  default:
    forEachChild(E, [&](const Expr *Child) {
      freeVarsImpl(Child, Bound, Free);
    });
    return;
  }
}

std::unordered_set<uint32_t> freeVarsOf(const ClosureLitExpr &Lit) {
  std::unordered_set<uint32_t> Free;
  std::vector<std::vector<uint32_t>> Bound;
  Bound.emplace_back();
  for (Symbol S : Lit.Params)
    Bound.back().push_back(S.value());
  freeVarsImpl(Lit.Body.get(), Bound, Free);
  return Free;
}

/// Messages with hard-wired class prediction in the Base configuration.
bool isPredictedGenericName(const std::string &Name) {
  static const char *Names[] = {"+", "-",  "*",  "/", "%", "<",
                                "<=", ">", ">=", "==", "!="};
  for (const char *N : Names)
    if (Name == N)
      return true;
  return false;
}

/// Code-size estimate: AST nodes plus dispatch stub costs.
unsigned estimateCodeSize(const Expr *E) {
  unsigned N = 1;
  if (const auto *Send = dyn_cast<SendExpr>(E)) {
    switch (Send->Binding.Kind) {
    case SendBindKind::Dynamic:
      N += 2;
      break;
    case SendBindKind::Predicted:
    case SendBindKind::StaticSelect:
    case SendBindKind::FeedbackGuard:
      N += 1;
      break;
    case SendBindKind::Static:
    case SendBindKind::InlinePrim:
      break;
    }
  }
  forEachChild(E, [&](const Expr *Child) { N += estimateCodeSize(Child); });
  return N;
}

} // namespace

Optimizer::Optimizer(Program &P, const ApplicableClassesAnalysis &AC,
                     OptimizerOptions Options, const CallGraph *Profile)
    : P(P), AC(AC), Options(Options), Profile(Profile) {
  if (Options.UseReturnClasses)
    RC = std::make_unique<ReturnClassAnalysis>(P, AC);
}

/// Return-class knowledge for a bound callee; universe when the analysis
/// is off or the callee's set is empty (a method that never returns).
static ClassSet returnSetOr(const ReturnClassAnalysis *RC, MethodId M,
                            const ClassSet &Fallback) {
  if (!RC)
    return Fallback;
  const ClassSet &S = RC->of(M);
  return S.isEmpty() ? Fallback : S;
}

std::unique_ptr<CompiledProgram>
Optimizer::compile(const SpecializationPlan &Plan) {
  PhaseTimer::Scope Timing("optimize");
  auto CP = std::make_unique<CompiledProgram>(P, Plan.Configuration,
                                              Plan.UseCHA);

  // Phase 1: create every version so that version-binding decisions can
  // see the full version tables.
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M(MI);
    const MethodInfo &Info = P.method(M);
    if (Info.isBuiltin()) {
      CompiledMethod CM;
      CM.Source = M;
      for (ClassId Spec : Info.Specializers)
        CM.Tuple.push_back(P.Classes.cone(Spec));
      CM.CodeSize = 1;
      CP->addVersion(std::move(CM));
      continue;
    }
    for (const SpecTuple &T : Plan.VersionsByMethod[MI]) {
      CompiledMethod CM;
      CM.Source = M;
      CM.Tuple = T;
      CP->addVersion(std::move(CM));
    }
  }

  // Phase 2: optimize each user version's body.
  CurCP = CP.get();
  CurPlan = &Plan;
  for (uint32_t I = 0; I != CP->versions().size(); ++I)
    if (!P.method(CP->version(I).Source).isBuiltin())
      compileVersion(*CP, I);
  CurCP = nullptr;
  CurPlan = nullptr;
  return CP;
}

void Optimizer::compileVersion(CompiledProgram &CP, uint32_t Index) {
  CompiledMethod &CM = CP.version(Index);
  const MethodInfo &M = P.method(CM.Source);
  assert(M.Body && "user method without body");

  CurInliner = std::make_unique<Inliner>(P.Syms);
  ExprPtr Body = M.Body->clone();

  AssignedNames = collectAssignedNames(Body.get());
  ClosureAssignedNames = collectClosureAssignedNames(Body.get());
  KnownClosures.clear();
  InlineStack.clear();
  InlineStack.push_back(CM.Source);
  ClosureDepth = 0;
  InlinedNodesLeft = Options.MaxInlinedNodesPerVersion;

  Env = ClassEnv();
  Env.pushScope();
  Config Cfg = CurCP->configuration();
  bool Customized = Cfg == Config::Cust || Cfg == Config::CustMM;
  for (unsigned I = 0; I != M.arity(); ++I) {
    // Version tuples derive from specializer cones, i.e. from the class
    // hierarchy.  Without whole-program CHA the compiler may only trust
    // class knowledge the *plan* made exact — a customized position is
    // exact by construction of version selection, whereas "this cone
    // happens to contain a single class" is precisely the fact CHA adds
    // (Table 1).
    ClassId Single = CM.Tuple[I].getSingleElement();
    bool SealedExact = Single.isValid() && P.Classes.isSealed(Single);
    if (CurCP->usesCHA() || SealedExact ||
        (Customized && Single.isValid()))
      Env.define(M.ParamNames[I], CM.Tuple[I]);
    else
      Env.define(M.ParamNames[I], universe());
  }

  analyze(Body);
  eliminateDeadClosures(Body.get(), Body.get());
  if (Options.EnableDeadCodeElimination)
    eliminateDeadCode(Body.get(), Body.get());

  CM.CodeSize = estimateCodeSize(Body.get());
  // Slot-resolve last: inlining and the rewrites above are all done, so
  // the layout reflects exactly the body the interpreter will execute.
  CM.Layout = SlotResolver::resolve(M.ParamNames, Body.get());
  CM.Body = std::move(Body);
  CurInliner.reset();
}

ClassSet Optimizer::varSet(Symbol Name) {
  // Rule: inside a closure, any variable assigned anywhere in the body may
  // have changed between capture and call; variables assigned inside any
  // closure may change at any call.
  if (ClosureDepth > 0 && AssignedNames.count(Name.value()))
    return universe();
  if (ClosureAssignedNames.count(Name.value()))
    return universe();
  if (ClassSet *S = Env.lookup(Name))
    return *S;
  return universe();
}

ClassSet Optimizer::analyze(ExprPtr &E) {
  unsigned U = P.Classes.size();
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return ClassSet::single(U, builtin::Int);
  case Expr::Kind::BoolLit:
    return ClassSet::single(U, builtin::Bool);
  case Expr::Kind::StrLit:
    return ClassSet::single(U, builtin::String);
  case Expr::Kind::NilLit:
    return ClassSet::single(U, builtin::Nil);

  case Expr::Kind::VarRef:
    return varSet(cast<VarRefExpr>(E.get())->Name);

  case Expr::Kind::AssignVar: {
    auto *A = cast<AssignVarExpr>(E.get());
    ClassSet V = analyze(A->Value);
    // Accumulate: the variable may now hold either the old or new classes
    // depending on path (sound for joins without explicit merge points).
    if (ClassSet *Slot = Env.lookup(A->Name))
      *Slot |= V;
    return V;
  }

  case Expr::Kind::Let: {
    auto *L = cast<LetExpr>(E.get());
    ClassSet V = analyze(L->Init);
    // Closed closure literals bound by `let` may be inlined at call sites
    // anywhere in scope (free variables would risk capture by shadowing).
    if (const auto *Lit = dyn_cast<ClosureLitExpr>(L->Init.get())) {
      if (!AssignedNames.count(L->Name.value()) && freeVarsOf(*Lit).empty())
        KnownClosures[L->Name.value()] = Lit;
      else
        KnownClosures.erase(L->Name.value());
    } else {
      KnownClosures.erase(L->Name.value());
    }
    Env.define(L->Name, std::move(V));
    return ClassSet::single(U, builtin::Nil);
  }

  case Expr::Kind::Seq: {
    auto *Seq = cast<SeqExpr>(E.get());
    Env.pushScope();
    ClassSet Last = ClassSet::single(U, builtin::Nil);
    for (ExprPtr &Elem : Seq->Elems)
      Last = analyze(Elem);
    Env.popScope();
    return Last;
  }

  case Expr::Kind::If: {
    auto *I = cast<IfExpr>(E.get());
    analyze(I->Cond);
    ClassSet R = analyze(I->Then);
    if (I->Else)
      R |= analyze(I->Else);
    else
      R |= ClassSet::single(U, builtin::Nil);
    return R;
  }

  case Expr::Kind::While: {
    auto *W = cast<WhileExpr>(E.get());
    // Widen loop-carried variables before analyzing the body.
    std::unordered_set<uint32_t> LoopAssigned =
        collectAssignedNames(W->Body.get());
    for (uint32_t N : collectAssignedNames(W->Cond.get()))
      LoopAssigned.insert(N);
    Env.widen(LoopAssigned, universe());
    analyze(W->Cond);
    analyze(W->Body);
    return ClassSet::single(U, builtin::Nil);
  }

  case Expr::Kind::Send:
    return analyzeSend(E);

  case Expr::Kind::ClosureCall:
    return analyzeClosureCall(E);

  case Expr::Kind::ClosureLit: {
    auto *C = cast<ClosureLitExpr>(E.get());
    Env.pushScope();
    for (Symbol S : C->Params) {
      Env.define(S, universe());
      KnownClosures.erase(S.value());
    }
    ++ClosureDepth;
    analyze(C->Body);
    --ClosureDepth;
    Env.popScope();
    return ClassSet::single(U, builtin::Closure);
  }

  case Expr::Kind::New: {
    auto *N = cast<NewExpr>(E.get());
    for (auto &[Slot, Init] : N->Inits)
      analyze(Init);
    return ClassSet::single(U, N->Class);
  }

  case Expr::Kind::SlotGet:
    analyze(cast<SlotGetExpr>(E.get())->Object);
    return universe();

  case Expr::Kind::SlotSet: {
    auto *S = cast<SlotSetExpr>(E.get());
    analyze(S->Object);
    return analyze(S->Value);
  }

  case Expr::Kind::Return: {
    auto *R = cast<ReturnExpr>(E.get());
    if (R->Value)
      analyze(R->Value);
    return universe(); // unreachable afterwards; value irrelevant
  }

  case Expr::Kind::Inlined:
    return analyzeInlined(cast<InlinedExpr>(E.get()));
  }
  assert(false && "unknown expression kind");
  return universe();
}

ClassSet Optimizer::analyzeInlined(InlinedExpr *In) {
  // Runtime evaluates every binding init in the *outer* environment, then
  // binds; mirror that: analyze all inits first.
  std::vector<ClassSet> Sets;
  Sets.reserve(In->Bindings.size());
  for (auto &[Name, Init] : In->Bindings)
    Sets.push_back(analyze(Init));

  Env.pushScope();
  for (unsigned I = 0; I != In->Bindings.size(); ++I) {
    auto &[Name, Init] = In->Bindings[I];
    // Closure propagation: a literal (or an already-known closure
    // variable) bound into an inlined body can be inlined at its call
    // sites inside — the inlined body's binders are all fresh symbols, so
    // no shadowing of the literal's free variables can occur.
    const ClosureLitExpr *Known = nullptr;
    if (!AssignedNames.count(Name.value())) {
      if (const auto *Lit = dyn_cast<ClosureLitExpr>(Init.get())) {
        Known = Lit;
      } else if (const auto *V = dyn_cast<VarRefExpr>(Init.get())) {
        auto It = KnownClosures.find(V->Name.value());
        if (It != KnownClosures.end())
          Known = It->second;
      }
    }
    if (Known)
      KnownClosures[Name.value()] = Known;
    else
      KnownClosures.erase(Name.value());
    Env.define(Name, std::move(Sets[I]));
  }
  analyze(In->Body);
  Env.popScope();
  return universe();
}

ClassSet Optimizer::analyzeSend(ExprPtr &E) {
  auto *Send = cast<SendExpr>(E.get());
  unsigned U = P.Classes.size();

  std::vector<ClassSet> ArgSets;
  ArgSets.reserve(Send->Args.size());
  for (ExprPtr &A : Send->Args)
    ArgSets.push_back(analyze(A));

  GenericId G = Send->Generic;
  assert(G.isValid() && "unresolved send");

  // Step 1: try to bind statically.
  MethodId Target;
  if (CurCP->usesCHA()) {
    std::vector<MethodId> T = possibleTargets(AC, G, ArgSets);
    if (T.size() == 1)
      Target = T.front();
  } else {
    // Without whole-program CHA, binding requires exactly-known classes
    // at every *dispatched* position of the generic (the Self-style rule:
    // an exact receiver determines lookup); undetermined non-dispatched
    // positions never affect the outcome.
    std::vector<ClassId> Exact(ArgSets.size(), P.Classes.root());
    bool AllDispatchedKnown = true;
    for (unsigned I : AC.dispatchedPositions(G)) {
      ClassId C = ArgSets[I].getSingleElement();
      if (!C.isValid()) {
        AllDispatchedKnown = false;
        break;
      }
      Exact[I] = C;
    }
    if (AllDispatchedKnown)
      Target = P.dispatch(G, Exact);
  }

  if (Target.isValid()) {
    const MethodInfo &Callee = P.method(Target);
    if (Callee.isBuiltin()) {
      // Constant propagation & folding (Table 1): a pure primitive over
      // literal operands becomes a literal.
      if (Options.EnableConstantFolding && tryFoldPrim(E, Callee.Prim)) {
        ++S.ConstantsFolded;
        // E is now a literal; classify it directly.
        switch (E->getKind()) {
        case Expr::Kind::IntLit:
          return ClassSet::single(U, builtin::Int);
        case Expr::Kind::BoolLit:
          return ClassSet::single(U, builtin::Bool);
        default:
          break;
        }
      }
      Send->Binding = {SendBindKind::InlinePrim, Target, 0, ClassId()};
      ++S.SitesInlinePrim;
      return primResultSet(Callee.Prim, U);
    }

    // Version binding: direct when one version is uniformly selected for
    // every argument tuple we may pass; otherwise run-time selection.
    // Dispatch already chose Target, so the effective argument classes
    // are the given sets narrowed to Target's ApplicableClasses.
    SpecTuple EffSets = ArgSets;
    {
      const SpecTuple &Applicable = AC.of(Target);
      for (size_t I = 0; I != EffSets.size(); ++I)
        EffSets[I] &= Applicable[I];
    }
    const std::vector<uint32_t> &Versions = CurCP->versionsOf(Target);
    std::vector<uint32_t> Candidates;
    for (uint32_t VI : Versions) {
      const CompiledMethod &CM = CurCP->version(VI);
      if (tupleIntersects(CM.Tuple, EffSets))
        Candidates.push_back(VI);
    }
    int Direct = -1;
    for (uint32_t VI : Candidates) {
      const CompiledMethod &CM = CurCP->version(VI);
      if (!tupleSubsetOf(EffSets, CM.Tuple))
        continue; // does not contain all tuples we may pass
      bool MostSpecific = true;
      for (uint32_t Other : Candidates)
        if (!tupleSubsetOf(CM.Tuple, CurCP->version(Other).Tuple))
          MostSpecific = false;
      if (MostSpecific) {
        Direct = static_cast<int>(VI);
        break;
      }
    }

    // Inlining beats a direct version binding when the callee is small —
    // but when several specialized versions could be selected at run time
    // (Direct < 0), inlining the general source body here would bypass
    // the specializations entirely; keep the version-selecting call so
    // the specialized copies (with their statically-bound interiors) run.
    bool Recursive = std::find(InlineStack.begin(), InlineStack.end(),
                               Target) != InlineStack.end();
    unsigned CalleeSize = countNodes(Callee.Body.get());
    if (Direct >= 0 && Options.EnableInlining && !Recursive &&
        InlineStack.size() <= Options.MaxInlineDepth &&
        CalleeSize <= Options.InlineBudget &&
        CalleeSize <= InlinedNodesLeft) {
      InlinedNodesLeft -= CalleeSize;
      std::unique_ptr<InlinedExpr> In = CurInliner->inlineMethodCall(
          Callee, std::move(Send->Args), Send->Site, Send->getLoc());
      for (uint32_t N : collectAssignedNames(In->Body.get()))
        AssignedNames.insert(N);
      for (uint32_t N : collectClosureAssignedNames(In->Body.get()))
        ClosureAssignedNames.insert(N);
      ++this->S.MethodsInlined;
      E = std::move(In);
      InlineStack.push_back(Target);
      ClassSet R = analyzeInlined(cast<InlinedExpr>(E.get()));
      InlineStack.pop_back();
      return CurCP->usesCHA() ? returnSetOr(RC.get(), Target, R) : R;
    }

    if (Direct >= 0) {
      Send->Binding = {SendBindKind::Static, Target,
                       static_cast<uint32_t>(Direct), ClassId()};
      ++S.SitesStatic;
    } else {
      Send->Binding = {SendBindKind::StaticSelect, Target, 0, ClassId()};
      ++S.SitesStaticSelect;
    }
    return CurCP->usesCHA() ? returnSetOr(RC.get(), Target, universe())
                            : universe();
  }

  // Step 2: hard-wired class prediction for the common messages.
  if (Options.EnableClassPrediction &&
      isPredictedGenericName(P.Syms.name(Send->GenericName))) {
    bool IntPossible = true;
    for (const ClassSet &Set : ArgSets)
      IntPossible &= Set.contains(builtin::Int);
    if (IntPossible) {
      std::vector<ClassId> Ints(ArgSets.size(), builtin::Int);
      MethodId PM = P.dispatch(G, Ints);
      if (PM.isValid() && P.method(PM).isBuiltin()) {
        Send->Binding = {SendBindKind::Predicted, PM, 0, builtin::Int};
        ++S.SitesPredicted;
        return universe();
      }
    }
  }

  // Step 3: profile-guided type feedback for sites with one dominant
  // callee (an inline-cache guard; Section 6 extension).
  if (Options.EnableTypeFeedback && Profile && Send->Site.isValid()) {
    uint64_t Total = 0;
    Arc Dominant;
    for (const Arc &A : Profile->arcsAt(Send->Site)) {
      Total += A.Weight;
      if (A.Weight > Dominant.Weight)
        Dominant = A;
    }
    if (Total >= Options.FeedbackMinWeight &&
        Dominant.Weight * 100 >= Total * Options.FeedbackMinSharePct) {
      Send->Binding = {SendBindKind::FeedbackGuard, Dominant.Callee, 0,
                       ClassId()};
      ++S.SitesFeedback;
      return universe();
    }
  }

  Send->Binding = {SendBindKind::Dynamic, MethodId(), 0, ClassId()};
  ++S.SitesDynamic;
  if (RC && CurCP->usesCHA()) {
    ClassSet R = RC->resultOfSend(G, ArgSets);
    if (!R.isEmpty())
      return R;
  }
  return universe();
}

ClassSet Optimizer::analyzeClosureCall(ExprPtr &E) {
  auto *Call = cast<ClosureCallExpr>(E.get());

  const ClosureLitExpr *Known = nullptr;
  if (const auto *V = dyn_cast<VarRefExpr>(Call->Callee.get())) {
    auto It = KnownClosures.find(V->Name.value());
    if (It != KnownClosures.end())
      Known = It->second;
  }

  if (Known && Options.EnableClosureInlining &&
      Known->Params.size() == Call->Args.size() &&
      InlineStack.size() <= Options.MaxInlineDepth) {
    std::unique_ptr<InlinedExpr> In = CurInliner->inlineClosureCall(
        *Known, std::move(Call->Args), Call->getLoc());
    ++S.ClosureCallsInlined;
    E = std::move(In);
    return analyzeInlined(cast<InlinedExpr>(E.get()));
  }

  analyze(Call->Callee);
  for (ExprPtr &A : Call->Args)
    analyze(A);
  return universe();
}

bool Optimizer::tryFoldPrim(ExprPtr &E, PrimOp Op) {
  auto *Send = cast<SendExpr>(E.get());
  // Gather literal operands.
  std::vector<int64_t> Ints;
  std::vector<bool> Bools;
  for (const ExprPtr &A : Send->Args) {
    if (const auto *IL = dyn_cast<IntLitExpr>(A.get()))
      Ints.push_back(IL->Value);
    else if (const auto *BL = dyn_cast<BoolLitExpr>(A.get()))
      Bools.push_back(BL->Value);
    else
      return false;
  }
  SourceLoc Loc = E->getLoc();
  auto FoldInt = [&](int64_t V) {
    E = std::make_unique<IntLitExpr>(V, Loc);
    return true;
  };
  auto FoldBool = [&](bool V) {
    E = std::make_unique<BoolLitExpr>(V, Loc);
    return true;
  };

  switch (Op) {
  case PrimOp::IntAdd:
    return Ints.size() == 2 && FoldInt(Ints[0] + Ints[1]);
  case PrimOp::IntSub:
    return Ints.size() == 2 && FoldInt(Ints[0] - Ints[1]);
  case PrimOp::IntMul:
    return Ints.size() == 2 && FoldInt(Ints[0] * Ints[1]);
  case PrimOp::IntDiv:
    // Folding x/0 would hide the runtime fault; leave it alone.
    return Ints.size() == 2 && Ints[1] != 0 && FoldInt(Ints[0] / Ints[1]);
  case PrimOp::IntMod:
    return Ints.size() == 2 && Ints[1] != 0 && FoldInt(Ints[0] % Ints[1]);
  case PrimOp::IntNeg:
    return Ints.size() == 1 && FoldInt(-Ints[0]);
  case PrimOp::IntLess:
    return Ints.size() == 2 && FoldBool(Ints[0] < Ints[1]);
  case PrimOp::IntLessEq:
    return Ints.size() == 2 && FoldBool(Ints[0] <= Ints[1]);
  case PrimOp::IntGreater:
    return Ints.size() == 2 && FoldBool(Ints[0] > Ints[1]);
  case PrimOp::IntGreaterEq:
    return Ints.size() == 2 && FoldBool(Ints[0] >= Ints[1]);
  case PrimOp::IntEq:
    return Ints.size() == 2 && FoldBool(Ints[0] == Ints[1]);
  case PrimOp::IntNe:
    return Ints.size() == 2 && FoldBool(Ints[0] != Ints[1]);
  case PrimOp::BoolNot:
    return Bools.size() == 1 && FoldBool(!Bools[0]);
  case PrimOp::BoolEq:
    return Bools.size() == 2 && FoldBool(Bools[0] == Bools[1]);
  default:
    return false; // strings/arrays/effects: not folded
  }
}

namespace {

/// Effect-free expressions whose value loss is unobservable.
bool isPureExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::NilLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::ClosureLit: // creation is observable only via cost
    return true;
  default:
    return false;
  }
}

} // namespace

void Optimizer::eliminateDeadCode(Expr *Root, Expr *Node) {
  if (auto *Seq = dyn_cast<SeqExpr>(Node)) {
    // Never drop the last element (it is the block's value).
    for (size_t I = 0; I + 1 < Seq->Elems.size();) {
      Expr *Elem = Seq->Elems[I].get();
      bool Dead = false;
      if (isPureExpr(Elem)) {
        Dead = true; // pure statement whose value is discarded
      } else if (auto *L = dyn_cast<LetExpr>(Elem)) {
        Dead = isPureExpr(L->Init.get()) && countVarRefs(Root, L->Name) == 0;
      }
      if (Dead) {
        Seq->Elems.erase(Seq->Elems.begin() +
                         static_cast<std::ptrdiff_t>(I));
        ++S.DeadStatementsRemoved;
      } else {
        ++I;
      }
    }
  }
  forEachChild(Node, [&](const Expr *Child) {
    eliminateDeadCode(Root, const_cast<Expr *>(Child));
  });
}

void Optimizer::eliminateDeadClosures(Expr *Root, Expr *Node) {
  if (auto *L = dyn_cast<LetExpr>(Node)) {
    if (isa<ClosureLitExpr>(L->Init.get()) &&
        countVarRefs(Root, L->Name) == 0) {
      L->Init = std::make_unique<NilLitExpr>(L->Init->getLoc());
      ++S.ClosureCreationsEliminated;
    }
  } else if (auto *In = dyn_cast<InlinedExpr>(Node)) {
    for (auto &[Name, Init] : In->Bindings) {
      if (isa<ClosureLitExpr>(Init.get()) && countVarRefs(Root, Name) == 0) {
        Init = std::make_unique<NilLitExpr>(Init->getLoc());
        ++S.ClosureCreationsEliminated;
      }
    }
  }
  // Recurse after possible rewrites so replaced children are not visited.
  forEachChild(Node, [&](const Expr *Child) {
    eliminateDeadClosures(Root, const_cast<Expr *>(Child));
  });
}

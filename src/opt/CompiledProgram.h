//===- opt/CompiledProgram.h - Compiled method versions --------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of compilation: one CompiledMethod per (method, spec tuple)
/// pair in the plan, each holding its optimized body and code-size
/// estimate, plus the runtime version-selection rule (most-specific
/// matching tuple).  Figure 6's "routines compiled" counts these versions;
/// the Invoked bits support the dynamic-compilation variant of Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_OPT_COMPILEDPROGRAM_H
#define SELSPEC_OPT_COMPILEDPROGRAM_H

#include "lang/Ast.h"
#include "specialize/SpecTuple.h"

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

namespace selspec {

/// One compiled version of a source method.
struct CompiledMethod {
  /// Dense index in CompiledProgram::versions().
  uint32_t Index = 0;
  MethodId Source;
  /// The class-set tuple this version is specialized for.  For builtins,
  /// the cones of the specializers.
  SpecTuple Tuple;
  /// Optimized body (null for builtins).
  ExprPtr Body;
  /// Frame layout of Body, computed by the SlotResolver after all
  /// optimizer rewrites; the interpreter sizes this version's activation
  /// frames from it.  Unresolved for builtins.
  FrameLayout Layout;
  /// Code-space estimate (optimized AST nodes + dispatch stubs).
  unsigned CodeSize = 0;
};

class CompiledProgram {
public:
  CompiledProgram(const Program &P, Config Configuration, bool UseCHA)
      : P(P), Configuration(Configuration), UseCHA(UseCHA) {}

  const Program &program() const { return P; }
  Config configuration() const { return Configuration; }
  bool usesCHA() const { return UseCHA; }

  /// Appends a version; returns its index.
  uint32_t addVersion(CompiledMethod CM);

  const std::vector<CompiledMethod> &versions() const { return Versions; }
  CompiledMethod &version(uint32_t Index) { return Versions[Index]; }
  const CompiledMethod &version(uint32_t Index) const {
    return Versions[Index];
  }

  /// Version indexes of a source method.
  const std::vector<uint32_t> &versionsOf(MethodId M) const {
    return ByMethod[M.value()];
  }

  /// Runtime version selection: the most specific version of \p M whose
  /// tuple contains \p ArgClasses.  Returns -1 when none matches (a
  /// compilation bug if dispatch really chose \p M).
  int selectVersion(MethodId M, const std::vector<ClassId> &ArgClasses) const;

  /// Marks version \p Index invoked (dynamic-compilation counting for
  /// Figure 6).  Const and thread-safe by design: a snapshot is shared as
  /// `const CompiledProgram &` across serving threads, and the invoked
  /// bits are the one piece of instrumentation the interpreters still
  /// write — monotonic relaxed stores on dedicated atomics, so concurrent
  /// marking is race-free and never perturbs RunStats.
  void markInvoked(uint32_t Index) const {
    InvokedBits[Index].store(1, std::memory_order_relaxed);
  }
  bool invoked(uint32_t Index) const {
    return InvokedBits[Index].load(std::memory_order_relaxed) != 0;
  }

  /// Figure 6 statistics: compiled routine counts over *user* methods.
  unsigned numCompiledRoutines() const;
  unsigned numInvokedRoutines() const;
  uint64_t totalCodeSize() const;
  void resetInvoked();

private:
  const Program &P;
  Config Configuration;
  bool UseCHA;
  std::vector<CompiledMethod> Versions;
  std::vector<std::vector<uint32_t>> ByMethod;
  /// One invoked bit per version.  A deque because atomics are immovable
  /// and addVersion grows the set; deque growth never relocates elements,
  /// so raced markInvoked pointers stay valid.  `mutable` + atomic is the
  /// documented exception to snapshot immutability (see markInvoked).
  mutable std::deque<std::atomic<uint8_t>> InvokedBits;
};

} // namespace selspec

#endif // SELSPEC_OPT_COMPILEDPROGRAM_H

//===- opt/ClassAnalysis.cpp - Intraprocedural class analysis --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "opt/ClassAnalysis.h"

#include "hierarchy/Builtins.h"

using namespace selspec;

ClassSet selspec::primResultSet(PrimOp Op, unsigned UniverseSize) {
  auto Single = [&](ClassId C) {
    return ClassSet::single(UniverseSize, C);
  };
  switch (Op) {
  case PrimOp::IntAdd:
  case PrimOp::IntSub:
  case PrimOp::IntMul:
  case PrimOp::IntDiv:
  case PrimOp::IntMod:
  case PrimOp::IntNeg:
  case PrimOp::StrSize:
  case PrimOp::ArraySize:
    return Single(builtin::Int);
  case PrimOp::IntLess:
  case PrimOp::IntLessEq:
  case PrimOp::IntGreater:
  case PrimOp::IntGreaterEq:
  case PrimOp::IntEq:
  case PrimOp::IntNe:
  case PrimOp::BoolNot:
  case PrimOp::BoolEq:
  case PrimOp::AnyEq:
  case PrimOp::AnyNe:
  case PrimOp::StrEq:
  case PrimOp::StrLess:
    return Single(builtin::Bool);
  case PrimOp::StrConcat:
  case PrimOp::ClassName:
    return Single(builtin::String);
  case PrimOp::ArrayNew:
    return Single(builtin::Array);
  case PrimOp::Print:
  case PrimOp::Abort:
    return Single(builtin::Nil);
  case PrimOp::ArrayAt:
  case PrimOp::ArrayPut:
  case PrimOp::None:
    return ClassSet::all(UniverseSize);
  }
  return ClassSet::all(UniverseSize);
}

namespace {

void collectAssignedImpl(const Expr *E, std::unordered_set<uint32_t> &Out,
                         bool OnlyInsideClosures, bool InClosure) {
  if (const auto *A = dyn_cast<AssignVarExpr>(E))
    if (!OnlyInsideClosures || InClosure)
      Out.insert(A->Name.value());
  bool ChildInClosure = InClosure || isa<ClosureLitExpr>(E);
  forEachChild(E, [&](const Expr *Child) {
    collectAssignedImpl(Child, Out, OnlyInsideClosures, ChildInClosure);
  });
}

} // namespace

std::unordered_set<uint32_t> selspec::collectAssignedNames(const Expr *E) {
  std::unordered_set<uint32_t> Out;
  collectAssignedImpl(E, Out, /*OnlyInsideClosures=*/false,
                      /*InClosure=*/false);
  return Out;
}

std::unordered_set<uint32_t>
selspec::collectClosureAssignedNames(const Expr *E) {
  std::unordered_set<uint32_t> Out;
  collectAssignedImpl(E, Out, /*OnlyInsideClosures=*/true,
                      /*InClosure=*/false);
  return Out;
}

unsigned selspec::countVarRefs(const Expr *E, Symbol Name) {
  unsigned N = 0;
  if (const auto *V = dyn_cast<VarRefExpr>(E))
    if (V->Name == Name)
      ++N;
  // Assignments also reference the variable binding.
  if (const auto *A = dyn_cast<AssignVarExpr>(E))
    if (A->Name == Name)
      ++N;
  forEachChild(E,
               [&](const Expr *Child) { N += countVarRefs(Child, Name); });
  return N;
}

unsigned selspec::countNodes(const Expr *E) {
  unsigned N = 1;
  forEachChild(E, [&](const Expr *Child) { N += countNodes(Child); });
  return N;
}

//===- runtime/Value.cpp - Mica runtime values -----------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

using namespace selspec;

ClassId Value::classOf() const {
  switch (K) {
  case Kind::Nil:
    return builtin::Nil;
  case Kind::Int:
    return builtin::Int;
  case Kind::Bool:
    return builtin::Bool;
  case Kind::Object:
    return O->getClass();
  }
  return builtin::Any;
}

bool Value::identicalTo(const Value &RHS) const {
  if (K != RHS.K)
    return false;
  switch (K) {
  case Kind::Nil:
    return true;
  case Kind::Int:
    return I == RHS.I;
  case Kind::Bool:
    return B == RHS.B;
  case Kind::Object:
    return O == RHS.O;
  }
  return false;
}

//===- runtime/Heap.h - Object allocation ----------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple growing arena for runtime objects.  The benchmark programs have
/// bounded allocation, so no collector is needed; everything is released
/// when the Heap is destroyed.
///
/// Every allocation is also charged in *modeled bytes* (the fixed,
/// platform-independent cost function in support/MemoryBudget.h): the
/// per-heap tally backs the per-job byte budget (ResourceLimits::MaxBytes,
/// checked by the interpreters before each allocation), and batched
/// flushes feed the process-wide live-byte watermark that drives overload
/// brown-out.  Both execution tiers allocate through these same methods,
/// so byte charging is identical across tiers by construction.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_HEAP_H
#define SELSPEC_RUNTIME_HEAP_H

#include "runtime/Value.h"
#include "support/MemoryBudget.h"

#include <memory>
#include <vector>

namespace selspec {

class Heap {
public:
  Heap() = default;
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  ~Heap() {
    // Everything dies with the heap: retract the flushed share of the
    // tally from the process-wide live count.
    if (Flushed)
      membudget::addLive(-static_cast<int64_t>(Flushed));
  }

  Obj *newInstance(ClassId Class, unsigned NumSlots) {
    charge(membudget::instanceBytes(NumSlots));
    return track(std::make_unique<Obj>(Class, NumSlots));
  }
  Obj *newString(std::string S) {
    charge(membudget::stringBytes(S.size()));
    return track(std::make_unique<Obj>(std::move(S)));
  }
  Obj *newArray(size_t N) {
    charge(membudget::arrayBytes(N));
    return track(std::make_unique<Obj>(N));
  }
  Obj *newClosure(const ClosureLitExpr *Lit, std::vector<CellPtr> Captured,
                  uint64_t HomeActivation) {
    charge(membudget::closureBytes(Captured.size()));
    return track(
        std::make_unique<Obj>(Lit, std::move(Captured), HomeActivation));
  }

  /// Total objects ever allocated (a run statistic).
  uint64_t numAllocated() const { return Objects.size(); }

  /// Total modeled bytes ever allocated (nothing is freed before the heap
  /// dies, so this is also the live total).  What ResourceLimits::MaxBytes
  /// bounds.
  uint64_t bytesAllocated() const { return Bytes; }

private:
  void charge(uint64_t N) {
    Bytes += N;
    if (Bytes - Flushed >= membudget::FlushChunk) {
      membudget::addLive(static_cast<int64_t>(Bytes - Flushed));
      Flushed = Bytes;
    }
  }

  Obj *track(std::unique_ptr<Obj> O) {
    Objects.push_back(std::move(O));
    return Objects.back().get();
  }

  std::vector<std::unique_ptr<Obj>> Objects;
  uint64_t Bytes = 0;
  /// Share of Bytes already pushed to the process-wide tally.
  uint64_t Flushed = 0;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_HEAP_H

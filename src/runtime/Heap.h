//===- runtime/Heap.h - Object allocation ----------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple growing arena for runtime objects.  The benchmark programs have
/// bounded allocation, so no collector is needed; everything is released
/// when the Heap is destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_HEAP_H
#define SELSPEC_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <memory>
#include <vector>

namespace selspec {

class Heap {
public:
  Obj *newInstance(ClassId Class, unsigned NumSlots) {
    return track(std::make_unique<Obj>(Class, NumSlots));
  }
  Obj *newString(std::string S) {
    return track(std::make_unique<Obj>(std::move(S)));
  }
  Obj *newArray(size_t N) { return track(std::make_unique<Obj>(N)); }
  Obj *newClosure(const ClosureLitExpr *Lit, std::vector<CellPtr> Captured,
                  uint64_t HomeActivation) {
    return track(
        std::make_unique<Obj>(Lit, std::move(Captured), HomeActivation));
  }

  /// Total objects ever allocated (a run statistic).
  uint64_t numAllocated() const { return Objects.size(); }

private:
  Obj *track(std::unique_ptr<Obj> O) {
    Objects.push_back(std::move(O));
    return Objects.back().get();
  }

  std::vector<std::unique_ptr<Obj>> Objects;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_HEAP_H

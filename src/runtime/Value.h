//===- runtime/Value.h - Mica runtime values -------------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged runtime values.  Ints, bools and nil are immediate; strings,
/// arrays, class instances and closures are heap objects (Obj).  Capture
/// cells (Cell) also live here because closures hold them: a local that
/// some closure captures is boxed into a shared heap cell so that
/// assignments stay visible to every closure sharing it.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_VALUE_H
#define SELSPEC_RUNTIME_VALUE_H

#include "hierarchy/Builtins.h"
#include "lang/Ast.h"
#include "support/Ids.h"

#include <memory>
#include <string>
#include <vector>

namespace selspec {

class Obj;

/// A Mica runtime value.
class Value {
public:
  enum class Kind : uint8_t { Nil, Int, Bool, Object };

  Value() : K(Kind::Nil), I(0) {}

  static Value nil() { return Value(); }
  static Value ofInt(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static Value ofBool(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.B = V;
    return R;
  }
  static Value ofObj(Obj *O) {
    Value R;
    R.K = Kind::Object;
    R.O = O;
    return R;
  }

  Kind kind() const { return K; }
  bool isNil() const { return K == Kind::Nil; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isObject() const { return K == Kind::Object; }

  int64_t asInt() const {
    assert(isInt() && "not an int");
    return I;
  }
  bool asBool() const {
    assert(isBool() && "not a bool");
    return B;
  }
  Obj *asObject() const {
    assert(isObject() && "not an object");
    return O;
  }

  /// The dynamic class of the value (builtin class for immediates).
  ClassId classOf() const;

  /// Identity / immediate equality (the semantics of the builtin Any ==).
  bool identicalTo(const Value &RHS) const;

private:
  Kind K;
  union {
    int64_t I;
    bool B;
    Obj *O;
  };
};

/// A heap-allocated box for a closure-captured variable.  The declaring
/// frame and every capturing closure share the cell, so assignments by
/// any of them are visible to all (the old Env chain's in-place binding
/// mutation, now paid only for the bindings that actually need it).
struct Cell {
  Value V;
};

/// Cells are shared between frames and closures; shared_ptr keeps a cell
/// alive for exactly as long as anything can still reach it.
using CellPtr = std::shared_ptr<Cell>;

/// A heap object: class instance, string, array or closure.
class Obj {
public:
  enum class Payload : uint8_t { Instance, Str, Array, Closure };

  /// Class instance with \p NumSlots nil slots.
  Obj(ClassId Class, unsigned NumSlots)
      : Slots(NumSlots), Class(Class), P(Payload::Instance) {}

  /// String.
  explicit Obj(std::string S)
      : Str(std::move(S)), Class(builtin::String), P(Payload::Str) {}

  /// Array of \p N nil elements.
  explicit Obj(size_t N)
      : Slots(N), Class(builtin::Array), P(Payload::Array) {}

  /// Closure over \p Lit with captured cells and home activation.
  Obj(const ClosureLitExpr *Lit, std::vector<CellPtr> Captured,
      uint64_t HomeActivation)
      : Lit(Lit), Captured(std::move(Captured)),
        HomeActivation(HomeActivation), Class(builtin::Closure),
        P(Payload::Closure) {}

  ClassId getClass() const { return Class; }
  Payload payload() const { return P; }

  /// Instance slots or array elements.
  std::vector<Value> Slots;
  std::string Str;

  // Closure payload: the literal, the captured cells (indexed by the
  // literal's capture list) and the home activation for non-local return.
  const ClosureLitExpr *Lit = nullptr;
  std::vector<CellPtr> Captured;
  uint64_t HomeActivation = 0;
  /// Bytecode tier: compiled body of Lit, stamped at closure creation so
  /// calls skip the module's literal->function map.  Null under the AST
  /// tier (which never reads it).
  struct BcFunction *BcFn = nullptr;

private:
  ClassId Class;
  Payload P;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_VALUE_H

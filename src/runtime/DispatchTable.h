//===- runtime/DispatchTable.h - Compressed dispatch tables ----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.5 lists compressed multi-method dispatch tables (Chen et
/// al., Amiel et al.) among the lookup mechanisms a runtime with
/// specialized multi-methods can use.  This is that mechanism: per
/// generic function, an n-dimensional table indexed by per-argument class
/// groups.  Classes that behave identically at an argument position share
/// a group (the compression), so the table size is the product of the
/// *behavioral* group counts rather than of the class counts.
///
/// Lookup is two array reads per dispatched argument plus one table read —
/// constant time, no search.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_DISPATCHTABLE_H
#define SELSPEC_RUNTIME_DISPATCHTABLE_H

#include "hierarchy/Program.h"

#include <vector>

namespace selspec {

/// Compressed dispatch table for one generic function.
class DispatchTable {
public:
  /// Builds the table for \p G by enumerating dispatch behaviors.
  /// \p CellCap overrides the materialization cap (tests exercise the
  /// overflow fallback with a small cap instead of filling 16M cells).
  DispatchTable(const Program &P, GenericId G, size_t CellCap = MaxCells);

  /// The method invoked for the given argument classes, or invalid for
  /// "message not understood"/ambiguous.  Equivalent to P.dispatch().
  MethodId lookup(const std::vector<ClassId> &ArgClasses) const;

  /// False when the compressed table would have exceeded the cell cap and
  /// the table was not materialized; lookup() then answers through
  /// Program::dispatch instead of failing.
  bool materialized() const { return !Oversized; }

  /// Cap on materialized cells, inclusive: exactly MaxCells cells still
  /// materializes, one more falls back.  16M cells ≈ 64 MiB of MethodIds;
  /// pathological hierarchies fall back to search-based dispatch instead
  /// of aborting.
  static constexpr size_t MaxCells = size_t(1) << 24;

  /// Compression statistics.
  unsigned numDispatchedPositions() const {
    return static_cast<unsigned>(GroupOf.size());
  }
  unsigned numGroups(unsigned DispatchedPos) const {
    return GroupCount[DispatchedPos];
  }
  size_t tableSize() const { return Table.size(); }
  /// Table cells an uncompressed class^n table would need.
  size_t uncompressedSize() const;

private:
  const Program &P;
  GenericId G;
  /// Positions of the generic that actually dispatch.
  std::vector<unsigned> Positions;
  /// GroupOf[i][classId] = group index of the class at dispatched
  /// position i.
  std::vector<std::vector<uint32_t>> GroupOf;
  std::vector<uint32_t> GroupCount;
  /// Row-major over group indexes.
  std::vector<MethodId> Table;
  /// Cell count exceeded the cap; Table is empty, lookups re-dispatch.
  bool Oversized = false;
};

/// A full set of tables, one per generic, sharing the Program.
class DispatchTableSet {
public:
  explicit DispatchTableSet(const Program &P);

  const DispatchTable &forGeneric(GenericId G) const {
    return Tables[G.value()];
  }
  size_t totalCells() const;
  size_t totalUncompressedCells() const;

private:
  std::vector<DispatchTable> Tables;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_DISPATCHTABLE_H

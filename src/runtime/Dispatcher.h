//===- runtime/Dispatcher.h - Multi-method dispatch ------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime method lookup with two levels of caching, mirroring the
/// mechanisms discussed in Section 3.5 of the paper:
///  - per-call-site polymorphic inline caches (PICs, Hölzle et al.),
///    extended to multiple dispatched arguments, and
///  - a global memo table over (generic, argument-class tuple).
/// A full lookup walks the generic's methods applying the most-specific
/// applicable rule (Program::dispatch).  Hit/miss statistics feed both the
/// dispatch-cost microbenchmarks and the profiling-overhead experiment.
///
/// The machinery is split along the sharing boundary that concurrent
/// serving needs: DispatchTables is the immutable half (the dispatch rule
/// over an immutable Program — owned by a CompiledSnapshot, built once,
/// safely shared by any number of threads), while Dispatcher is the
/// adaptive per-thread half (PIC sites, memo table, statistics) layered
/// over a DispatchTables it does not own.  Nothing in a lookup ever
/// writes through the tables, so concurrent Dispatchers never share
/// mutable state.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_DISPATCHER_H
#define SELSPEC_RUNTIME_DISPATCHER_H

#include "hierarchy/Program.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace selspec {

/// The immutable half of dispatch: the most-specific-applicable rule over
/// a resolved Program.  Instances are logically const after construction
/// — dispatch() never mutates — so one DispatchTables can back the
/// per-thread Dispatchers of every serving thread simultaneously.
class DispatchTables {
public:
  explicit DispatchTables(const Program &P) : P(P) {}

  const Program &program() const { return P; }

  /// Full multi-method lookup (Program::dispatch): the authoritative,
  /// cache-free answer every cache layer above must agree with.
  MethodId dispatch(GenericId G,
                    const std::vector<ClassId> &ArgClasses) const {
    return P.dispatch(G, ArgClasses);
  }

private:
  const Program &P;
};

/// The adaptive, per-thread half of dispatch: PICs + memo + statistics
/// over a shared immutable DispatchTables.
class Dispatcher {
public:
  /// \p PicCapacity bounds each call site's inline cache; sites that
  /// observe more class tuples go "megamorphic" and stop caching locally
  /// (they still use the global memo table), as real PIC implementations
  /// do (Hölzle et al. use ~8).
  ///
  /// This convenience overload owns its tables; single-threaded callers
  /// keep working unchanged.
  explicit Dispatcher(const Program &P, unsigned PicCapacity = 8)
      : Owned(std::make_unique<DispatchTables>(P)), Tables(Owned.get()),
        PicCapacity(PicCapacity) {}

  /// Per-thread cache over shared immutable \p Tables (which must outlive
  /// this Dispatcher).  This is the serving configuration: one snapshot's
  /// tables, one Dispatcher per thread.
  explicit Dispatcher(const DispatchTables &Tables, unsigned PicCapacity = 8)
      : Tables(&Tables), PicCapacity(PicCapacity) {}

  /// Statistics for the microbenchmarks and overhead studies.
  struct Stats {
    uint64_t Lookups = 0;
    uint64_t PicHits = 0;
    uint64_t MemoHits = 0;
    uint64_t FullLookups = 0;
    /// Sites whose PIC overflowed and was disabled.
    uint64_t MegamorphicSites = 0;
    /// Memo probes whose key matched but whose (generic, class tuple)
    /// did not: tupleKey hash collisions, detected by the verify-on-hit
    /// check and resolved by a full lookup instead of returning the
    /// cached (wrong) target.
    uint64_t MemoCollisions = 0;
  };

  /// Publishes the accumulated Stats onto the process-wide metrics
  /// registry (`dispatcher.*` counters).
  ~Dispatcher();

  /// Looks up the method invoked by generic \p G on \p ArgClasses, using
  /// the PIC of call site \p Site (pass an invalid id to skip the PIC).
  /// Returns an invalid id for "message not understood"/"ambiguous".
  MethodId lookup(GenericId G, const std::vector<ClassId> &ArgClasses,
                  CallSiteId Site);

  const Stats &stats() const { return Cache.S; }
  void resetStats() { Cache.S = Stats(); }

  /// Drops the adaptive state (every PIC and the memo table) without
  /// touching Stats or the shared tables: the next lookup of any tuple is
  /// a full lookup again.  Used when a snapshot is reused across profile
  /// generations; deliberately independent of resetStats() (tested).
  void clearCaches() {
    Cache.Pics.clear();
    Cache.Memo.clear();
  }

  const DispatchTables &tables() const { return *Tables; }

  /// Number of PIC entries of \p Site (its observed polymorphism degree).
  unsigned picSize(CallSiteId Site) const;

  /// Number of sites that own a PIC record (populated or megamorphic);
  /// sites that only ever missed into the memo never allocate one.
  size_t numPicSites() const { return Cache.Pics.size(); }

  /// The memo key: an FNV-style mix of the generic id and the argument
  /// classes.  Collidable by construction (10 bits shifted per argument,
  /// so arity >= 7 aliases); lookup() therefore verifies the stored
  /// tuple on every hit.  Public so tests can construct colliding
  /// tuples deliberately.
  static uint64_t tupleKey(GenericId G,
                           const std::vector<ClassId> &ArgClasses);

private:
  struct PicEntry {
    std::vector<ClassId> Classes;
    MethodId Target;
  };
  struct Pic {
    std::vector<PicEntry> Entries;
    bool Megamorphic = false;
  };
  /// One memo slot: the exact tuple the key was computed from, verified
  /// on every hit so a key collision can never return a wrong target.
  struct MemoEntry {
    GenericId Generic;
    std::vector<ClassId> Classes;
    MethodId Target;
  };

  /// Everything a lookup mutates, gathered so the thread-ownership
  /// boundary is explicit: one DispatchCache per thread, never shared.
  struct DispatchCache {
    Stats S;
    std::unordered_map<uint32_t, Pic> Pics;
    std::unordered_map<uint64_t, MemoEntry> Memo;
  };

  /// Set only by the table-owning convenience constructor.
  std::unique_ptr<DispatchTables> Owned;
  /// Never null; points at Owned or at a caller-shared snapshot's tables.
  const DispatchTables *Tables;
  unsigned PicCapacity;
  DispatchCache Cache;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_DISPATCHER_H

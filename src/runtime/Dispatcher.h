//===- runtime/Dispatcher.h - Multi-method dispatch ------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime method lookup with two levels of caching, mirroring the
/// mechanisms discussed in Section 3.5 of the paper:
///  - per-call-site polymorphic inline caches (PICs, Hölzle et al.),
///    extended to multiple dispatched arguments, and
///  - a global memo table over (generic, argument-class tuple).
/// A full lookup walks the generic's methods applying the most-specific
/// applicable rule (Program::dispatch).  Hit/miss statistics feed both the
/// dispatch-cost microbenchmarks and the profiling-overhead experiment.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_DISPATCHER_H
#define SELSPEC_RUNTIME_DISPATCHER_H

#include "hierarchy/Program.h"

#include <unordered_map>
#include <vector>

namespace selspec {

class Dispatcher {
public:
  /// \p PicCapacity bounds each call site's inline cache; sites that
  /// observe more class tuples go "megamorphic" and stop caching locally
  /// (they still use the global memo table), as real PIC implementations
  /// do (Hölzle et al. use ~8).
  explicit Dispatcher(const Program &P, unsigned PicCapacity = 8)
      : P(P), PicCapacity(PicCapacity) {}

  /// Statistics for the microbenchmarks and overhead studies.
  struct Stats {
    uint64_t Lookups = 0;
    uint64_t PicHits = 0;
    uint64_t MemoHits = 0;
    uint64_t FullLookups = 0;
    /// Sites whose PIC overflowed and was disabled.
    uint64_t MegamorphicSites = 0;
  };

  /// Looks up the method invoked by generic \p G on \p ArgClasses, using
  /// the PIC of call site \p Site (pass an invalid id to skip the PIC).
  /// Returns an invalid id for "message not understood"/"ambiguous".
  MethodId lookup(GenericId G, const std::vector<ClassId> &ArgClasses,
                  CallSiteId Site);

  const Stats &stats() const { return S; }
  void resetStats() { S = Stats(); }

  /// Number of PIC entries of \p Site (its observed polymorphism degree).
  unsigned picSize(CallSiteId Site) const;

private:
  struct PicEntry {
    std::vector<ClassId> Classes;
    MethodId Target;
  };
  struct Pic {
    std::vector<PicEntry> Entries;
    bool Megamorphic = false;
  };

  static uint64_t tupleKey(GenericId G,
                           const std::vector<ClassId> &ArgClasses);

  const Program &P;
  unsigned PicCapacity;
  Stats S;
  std::unordered_map<uint32_t, Pic> Pics;
  std::unordered_map<uint64_t, MethodId> Memo;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_DISPATCHER_H

//===- runtime/DispatchTable.cpp - Compressed dispatch tables --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/DispatchTable.h"

#include "support/FailPoint.h"
#include "support/Metrics.h"

#include <map>

using namespace selspec;

static metrics::Counter &tableFallbacks() {
  static metrics::Counter &C = metrics::named("dispatch.table_fallbacks");
  return C;
}

DispatchTable::DispatchTable(const Program &P, GenericId G, size_t CellCap)
    : P(P), G(G) {
  const GenericInfo &Info = P.generic(G);

  // An injected build failure takes the same degradation path as an
  // oversized table: no materialization, lookups answer through
  // Program::dispatch.
  if (failpoint::anyArmed() && failpoint::triggered("dispatch.table-build")) {
    Oversized = true;
    tableFallbacks().add();
    return;
  }

  // Dispatched positions: where some method constrains the argument.
  for (unsigned I = 0; I != Info.Arity; ++I)
    for (MethodId M : Info.Methods)
      if (P.method(M).Specializers[I] != P.Classes.root()) {
        Positions.push_back(I);
        break;
      }

  unsigned U = P.Classes.size();

  // Group classes per dispatched position by their applicability pattern:
  // two classes that are subclasses of exactly the same specializers
  // dispatch identically at that position.
  GroupOf.resize(Positions.size());
  GroupCount.resize(Positions.size());
  std::vector<std::vector<ClassId>> Representatives(Positions.size());
  for (size_t PI = 0; PI != Positions.size(); ++PI) {
    unsigned ArgPos = Positions[PI];
    GroupOf[PI].assign(U, 0);
    std::map<std::vector<bool>, uint32_t> Groups;
    for (unsigned CI = 0; CI != U; ++CI) {
      std::vector<bool> Pattern;
      Pattern.reserve(Info.Methods.size());
      for (MethodId M : Info.Methods)
        Pattern.push_back(P.Classes.isSubclassOf(
            ClassId(CI), P.method(M).Specializers[ArgPos]));
      auto [It, Inserted] = Groups.emplace(
          std::move(Pattern), static_cast<uint32_t>(Groups.size()));
      GroupOf[PI][CI] = It->second;
      if (Inserted)
        Representatives[PI].push_back(ClassId(CI));
    }
    GroupCount[PI] = static_cast<uint32_t>(Groups.size());
  }

  // Fill the table by dispatching one representative tuple per cell.
  // Overflow-safe product: a hostile hierarchy can push the cell count
  // past any bound, in which case the table is skipped and lookups fall
  // back to search-based dispatch.  The cap is inclusive (exactly CellCap
  // cells materializes): Cells > CellCap / GC ⟺ Cells * GC > CellCap for
  // positive integers, so the pre-check is exact, not approximate.
  size_t Cells = 1;
  for (uint32_t GC : GroupCount) {
    if (GC != 0 && Cells > CellCap / GC) {
      Oversized = true;
      tableFallbacks().add();
      return;
    }
    Cells *= GC;
  }
  if (Cells > CellCap) {
    Oversized = true;
    tableFallbacks().add();
    return;
  }
  Table.assign(Cells, MethodId());

  std::vector<ClassId> Args(Info.Arity, P.Classes.root());
  std::vector<uint32_t> Cursor(Positions.size(), 0);
  for (size_t Cell = 0; Cell != Cells; ++Cell) {
    for (size_t PI = 0; PI != Positions.size(); ++PI)
      Args[Positions[PI]] = Representatives[PI][Cursor[PI]];
    Table[Cell] = P.dispatch(G, Args);

    for (size_t PI = 0;
         PI != Cursor.size() && ++Cursor[PI] == GroupCount[PI]; ++PI)
      Cursor[PI] = 0;
  }
}

MethodId DispatchTable::lookup(const std::vector<ClassId> &ArgClasses) const {
  if (Oversized)
    return P.dispatch(G, ArgClasses);
  size_t Index = 0;
  size_t Stride = 1;
  for (size_t PI = 0; PI != Positions.size(); ++PI) {
    Index += GroupOf[PI][ArgClasses[Positions[PI]].value()] * Stride;
    Stride *= GroupCount[PI];
  }
  return Table[Index];
}

size_t DispatchTable::uncompressedSize() const {
  size_t N = 1;
  for (size_t PI = 0; PI != Positions.size(); ++PI)
    N *= P.Classes.size();
  return N;
}

DispatchTableSet::DispatchTableSet(const Program &P) {
  Tables.reserve(P.numGenerics());
  for (unsigned GI = 0; GI != P.numGenerics(); ++GI)
    Tables.emplace_back(P, GenericId(GI));
  static metrics::Counter &TableCells = metrics::named("dispatch.table_cells");
  TableCells.set(totalCells());
}

size_t DispatchTableSet::totalCells() const {
  size_t N = 0;
  for (const DispatchTable &T : Tables)
    N += T.tableSize();
  return N;
}

size_t DispatchTableSet::totalUncompressedCells() const {
  size_t N = 0;
  for (const DispatchTable &T : Tables)
    N += T.uncompressedSize();
  return N;
}

//===- runtime/Dispatcher.cpp - Multi-method dispatch ----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Dispatcher.h"

using namespace selspec;

uint64_t Dispatcher::tupleKey(GenericId G,
                              const std::vector<ClassId> &ArgClasses) {
  // FNV-style mix of the generic id and argument classes.  Collisions only
  // cost correctness if two distinct tuples hash equal; to stay exact we
  // only use this key for the memo map *together with* a per-key check in
  // lookup (the PIC path already compares classes exactly).  The class
  // universe is small (< 2^10) and arity < 8, so pack exactly when
  // possible.
  uint64_t Key = G.value();
  for (ClassId C : ArgClasses)
    Key = (Key << 10) ^ (C.value() + 1);
  return Key;
}

unsigned Dispatcher::picSize(CallSiteId Site) const {
  auto It = Pics.find(Site.value());
  return It == Pics.end()
             ? 0
             : static_cast<unsigned>(It->second.Entries.size());
}

MethodId Dispatcher::lookup(GenericId G,
                            const std::vector<ClassId> &ArgClasses,
                            CallSiteId Site) {
  ++S.Lookups;

  struct Pic *SitePic = nullptr;
  if (Site.isValid()) {
    SitePic = &Pics[Site.value()];
    if (!SitePic->Megamorphic) {
      for (const PicEntry &E : SitePic->Entries) {
        if (E.Classes == ArgClasses) {
          ++S.PicHits;
          return E.Target;
        }
      }
    }
  }

  uint64_t Key = tupleKey(G, ArgClasses);
  MethodId Target;
  auto It = Memo.find(Key);
  if (It != Memo.end()) {
    ++S.MemoHits;
    Target = It->second;
  } else {
    ++S.FullLookups;
    Target = P.dispatch(G, ArgClasses);
    Memo.emplace(Key, Target);
  }

  if (SitePic && Target.isValid() && !SitePic->Megamorphic) {
    if (SitePic->Entries.size() >= PicCapacity) {
      // The site is megamorphic: caching per-site no longer pays; drop
      // the cache and rely on the global memo from now on.
      SitePic->Megamorphic = true;
      SitePic->Entries.clear();
      SitePic->Entries.shrink_to_fit();
      ++S.MegamorphicSites;
    } else {
      SitePic->Entries.push_back({ArgClasses, Target});
    }
  }
  return Target;
}

//===- runtime/Dispatcher.cpp - Multi-method dispatch ----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Dispatcher.h"

#include "support/Metrics.h"

using namespace selspec;

namespace {

metrics::Counter CtrLookups("dispatcher.lookups");
metrics::Counter CtrPicHits("dispatcher.pic_hits");
metrics::Counter CtrMemoHits("dispatcher.memo_hits");
metrics::Counter CtrFullLookups("dispatcher.full_lookups");
metrics::Counter CtrMegamorphicSites("dispatcher.megamorphic_sites");
metrics::Counter CtrMemoCollisions("dispatcher.memo_collisions");

} // namespace

Dispatcher::~Dispatcher() {
  CtrLookups.add(Cache.S.Lookups);
  CtrPicHits.add(Cache.S.PicHits);
  CtrMemoHits.add(Cache.S.MemoHits);
  CtrFullLookups.add(Cache.S.FullLookups);
  CtrMegamorphicSites.add(Cache.S.MegamorphicSites);
  CtrMemoCollisions.add(Cache.S.MemoCollisions);
}

uint64_t Dispatcher::tupleKey(GenericId G,
                              const std::vector<ClassId> &ArgClasses) {
  // FNV-style mix of the generic id and argument classes.  The shift
  // discards high bits once 10 * arity exceeds the word, so distinct
  // tuples can and do alias at higher arities; the memo stores the exact
  // tuple and lookup() verifies it on every hit, so a collision costs one
  // full dispatch, never a wrong target.
  uint64_t Key = G.value();
  for (ClassId C : ArgClasses)
    Key = (Key << 10) ^ (C.value() + 1);
  return Key;
}

unsigned Dispatcher::picSize(CallSiteId Site) const {
  auto It = Cache.Pics.find(Site.value());
  return It == Cache.Pics.end()
             ? 0
             : static_cast<unsigned>(It->second.Entries.size());
}

MethodId Dispatcher::lookup(GenericId G,
                            const std::vector<ClassId> &ArgClasses,
                            CallSiteId Site) {
  ++Cache.S.Lookups;

  // Probe the site's PIC if it already has one; never create a record on
  // the probe itself, or every failed/one-shot site would own an empty
  // Pic forever.
  struct Pic *SitePic = nullptr;
  if (Site.isValid()) {
    auto PicIt = Cache.Pics.find(Site.value());
    if (PicIt != Cache.Pics.end()) {
      SitePic = &PicIt->second;
      if (!SitePic->Megamorphic) {
        for (const PicEntry &E : SitePic->Entries) {
          if (E.Classes == ArgClasses) {
            ++Cache.S.PicHits;
            return E.Target;
          }
        }
      }
    }
  }

  uint64_t Key = tupleKey(G, ArgClasses);
  MethodId Target;
  auto It = Cache.Memo.find(Key);
  if (It != Cache.Memo.end() && It->second.Generic == G &&
      It->second.Classes == ArgClasses) {
    ++Cache.S.MemoHits;
    Target = It->second.Target;
  } else {
    if (It != Cache.Memo.end())
      ++Cache.S.MemoCollisions;
    ++Cache.S.FullLookups;
    Target = Tables->dispatch(G, ArgClasses);
    if (It != Cache.Memo.end())
      It->second = {G, ArgClasses, Target};
    else
      Cache.Memo.emplace(Key, MemoEntry{G, ArgClasses, Target});
  }

  if (Site.isValid() && Target.isValid()) {
    // Only materialize the Pic once there is a valid target to cache.
    // (unordered_map insertion never invalidates references to other
    // elements, so a SitePic found above stays usable.)
    Pic &ThePic = SitePic ? *SitePic : Cache.Pics[Site.value()];
    if (!ThePic.Megamorphic) {
      // Insert first; demote only when the cap is actually exceeded, so a
      // site that observes exactly PicCapacity tuples keeps serving PIC
      // hits for all of them.
      ThePic.Entries.push_back({ArgClasses, Target});
      if (ThePic.Entries.size() > PicCapacity) {
        // The site is megamorphic: caching per-site no longer pays; drop
        // the cache and rely on the global memo from now on.
        ThePic.Megamorphic = true;
        ThePic.Entries.clear();
        ThePic.Entries.shrink_to_fit();
        ++Cache.S.MegamorphicSites;
      }
    }
  }
  return Target;
}

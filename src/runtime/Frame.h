//===- runtime/Frame.h - Flat activation frames ----------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Activation frames for the slot-resolved interpreter.  A Frame is a
/// flat array of value slots plus an array of capture cells, sized by the
/// FrameLayout the SlotResolver computed for the executing body; variable
/// access is a single index, never a name search.
///
/// Frames never escape their activation (only cells do, via closures), so
/// they are pooled: FramePool keeps retired frames, and their vectors
/// retain capacity across reuse, making frame setup allocation-free in
/// the steady state.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_RUNTIME_FRAME_H
#define SELSPEC_RUNTIME_FRAME_H

#include "lang/Ast.h"
#include "runtime/Value.h"

#include <memory>
#include <vector>

namespace selspec {

/// One activation's storage: plain slots, owned capture cells, and a view
/// of the executing closure's captured cells (null for method frames).
///
/// Every slot/cell read is dominated by the write of its binding within
/// the same activation (the SlotResolver resolves references lexically,
/// and a `let` always executes before any reference to it), so reused
/// frames need no clearing of the value slots.
class Frame {
public:
  /// Prepares the frame for a body with layout \p L, executing with
  /// \p CapturedCells (null unless the body is a closure's).
  void configure(const FrameLayout &L,
                 const std::vector<CellPtr> *CapturedCells) {
    assert(L.Resolved && "body was not slot-resolved");
    Slots.resize(L.NumSlots);
    Cells.assign(L.NumCells, nullptr); // drop cells kept from a prior use
    Captures = CapturedCells;
  }

  Value &slot(uint32_t I) {
    assert(I < Slots.size() && "slot index out of range");
    return Slots[I];
  }
  /// Raw slot storage (the bytecode tier's register file: its temp
  /// registers are the slots past the source layout's count).
  Value *slotData() { return Slots.data(); }
  CellPtr &cell(uint32_t I) {
    assert(I < Cells.size() && "cell index out of range");
    return Cells[I];
  }
  const CellPtr &capture(uint32_t I) const {
    assert(Captures && I < Captures->size() && "capture index out of range");
    return (*Captures)[I];
  }

  /// Binds formal \p Where (from a FrameLayout's Params) to \p V.
  void bindParam(const SlotRef &Where, Value V) {
    if (Where.Loc == VarLoc::Cell)
      Cells[Where.Index] = std::make_shared<Cell>(Cell{V});
    else
      Slots[Where.Index] = V;
  }

private:
  std::vector<Value> Slots;
  std::vector<CellPtr> Cells;
  const std::vector<CellPtr> *Captures = nullptr;
};

/// A LIFO free list of frames.  Acquire/release nest with the call stack,
/// so the pool stays as deep as the deepest activation chain only.
class FramePool {
public:
  Frame *acquire(const FrameLayout &L,
                 const std::vector<CellPtr> *CapturedCells) {
    Frame *F;
    if (Free.empty()) {
      Storage.push_back(std::make_unique<Frame>());
      F = Storage.back().get();
    } else {
      F = Free.back();
      Free.pop_back();
    }
    F->configure(L, CapturedCells);
    return F;
  }

  void release(Frame *F) { Free.push_back(F); }

  /// Frames ever created (equals the deepest concurrent activation count).
  size_t depthHighWater() const { return Storage.size(); }

private:
  std::vector<std::unique_ptr<Frame>> Storage;
  std::vector<Frame *> Free;
};

/// RAII frame acquisition for one activation.
class FrameGuard {
public:
  FrameGuard(FramePool &Pool, const FrameLayout &L,
             const std::vector<CellPtr> *CapturedCells)
      : Pool(Pool), F(Pool.acquire(L, CapturedCells)) {}
  ~FrameGuard() { Pool.release(F); }
  FrameGuard(const FrameGuard &) = delete;
  FrameGuard &operator=(const FrameGuard &) = delete;

  Frame &frame() { return *F; }

private:
  FramePool &Pool;
  Frame *F;
};

} // namespace selspec

#endif // SELSPEC_RUNTIME_FRAME_H

//===- depgraph/DependencyGraph.h - Selective recompilation ----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7.1 substrate: whole-program analysis (ApplicableClasses,
/// static binding) embeds assumptions about the class hierarchy into
/// compiled code; to reconcile that with incremental compilation, the
/// compiler maintains "fine-grained dependency information to selectively
/// recompile those pieces of the program that are invalidated."
///
/// This is that structure: a DAG whose nodes are pieces of information
/// (source classes, source methods, per-generic dispatch facts, compiled
/// method versions) and whose edges record "client depends on source".
/// Invalidation propagates downstream; clients re-validate after
/// recompilation.  buildFromCompiledProgram() constructs the graph the
/// optimizer implies: every compiled version depends on its source method,
/// and on the dispatch facts of each generic it statically bound.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DEPGRAPH_DEPENDENCYGRAPH_H
#define SELSPEC_DEPGRAPH_DEPENDENCYGRAPH_H

#include "opt/CompiledProgram.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace selspec {

class DependencyGraph {
public:
  enum class NodeKind : uint8_t {
    SourceClass,   ///< a class declaration
    SourceMethod,  ///< a method declaration
    DispatchFacts, ///< per-generic dispatch/ApplicableClasses information
    CompiledCode,  ///< a compiled method version
  };

  using NodeId = uint32_t;

  NodeId addNode(NodeKind Kind, std::string Label);
  /// Declares that \p Client depends on \p Source.
  void addEdge(NodeId Source, NodeId Client);

  NodeKind kind(NodeId N) const { return Nodes[N].Kind; }
  const std::string &label(NodeId N) const { return Nodes[N].Label; }
  bool isValid(NodeId N) const { return Nodes[N].Valid; }
  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const;

  /// Marks \p Changed invalid and propagates downstream.  Returns every
  /// newly-invalidated node (excluding ones already invalid), in
  /// breadth-first order starting with \p Changed.
  std::vector<NodeId> invalidate(NodeId Changed);

  /// Marks a node valid again (after recompilation / re-analysis).
  void revalidate(NodeId N) { Nodes[N].Valid = true; }

  /// All invalid nodes of a kind (the recompilation work list).
  std::vector<NodeId> invalidNodes(NodeKind Kind) const;

  //===--------------------------------------------------------------------===
  // Construction from a compiled program
  //===--------------------------------------------------------------------===

  /// Nodes/edges implied by \p CP's binding decisions.  Returned handles
  /// let callers simulate edits ("add a method to generic g").
  struct ProgramNodes {
    std::vector<NodeId> ClassNodes;         ///< by ClassId
    std::vector<NodeId> MethodNodes;        ///< by MethodId
    std::vector<NodeId> GenericFactNodes;   ///< by GenericId
    std::vector<NodeId> VersionNodes;       ///< by version index
  };
  ProgramNodes buildFromCompiledProgram(const CompiledProgram &CP);

private:
  struct Node {
    NodeKind Kind;
    std::string Label;
    bool Valid = true;
    std::vector<NodeId> Clients;
  };
  std::vector<Node> Nodes;
};

} // namespace selspec

#endif // SELSPEC_DEPGRAPH_DEPENDENCYGRAPH_H

//===- depgraph/DependencyGraph.cpp - Selective recompilation --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "depgraph/DependencyGraph.h"

#include <deque>

using namespace selspec;

DependencyGraph::NodeId DependencyGraph::addNode(NodeKind Kind,
                                                 std::string Label) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back({Kind, std::move(Label), true, {}});
  return Id;
}

void DependencyGraph::addEdge(NodeId Source, NodeId Client) {
  assert(Source < Nodes.size() && Client < Nodes.size() && "unknown node");
  // Avoid duplicate edges (common when one body binds a generic often).
  for (NodeId Existing : Nodes[Source].Clients)
    if (Existing == Client)
      return;
  Nodes[Source].Clients.push_back(Client);
}

size_t DependencyGraph::numEdges() const {
  size_t N = 0;
  for (const Node &Nd : Nodes)
    N += Nd.Clients.size();
  return N;
}

std::vector<DependencyGraph::NodeId>
DependencyGraph::invalidate(NodeId Changed) {
  std::vector<NodeId> Out;
  std::deque<NodeId> Work;
  if (Nodes[Changed].Valid) {
    Nodes[Changed].Valid = false;
    Out.push_back(Changed);
    Work.push_back(Changed);
  }
  while (!Work.empty()) {
    NodeId N = Work.front();
    Work.pop_front();
    for (NodeId Client : Nodes[N].Clients) {
      if (!Nodes[Client].Valid)
        continue;
      Nodes[Client].Valid = false;
      Out.push_back(Client);
      Work.push_back(Client);
    }
  }
  return Out;
}

std::vector<DependencyGraph::NodeId>
DependencyGraph::invalidNodes(NodeKind Kind) const {
  std::vector<NodeId> Out;
  for (NodeId N = 0; N != Nodes.size(); ++N)
    if (!Nodes[N].Valid && Nodes[N].Kind == Kind)
      Out.push_back(N);
  return Out;
}

namespace {

/// Generics statically bound (Static/StaticSelect/InlinePrim/Predicted)
/// anywhere in \p E — the compiled code embeds assumptions about them.
void collectBoundGenerics(const Expr *E, std::vector<GenericId> &Out) {
  if (const auto *S = dyn_cast<SendExpr>(E))
    if (S->Binding.Kind != SendBindKind::Dynamic)
      Out.push_back(S->Generic);
  forEachChild(E, [&](const Expr *Child) {
    collectBoundGenerics(Child, Out);
  });
}

} // namespace

DependencyGraph::ProgramNodes
DependencyGraph::buildFromCompiledProgram(const CompiledProgram &CP) {
  const Program &P = CP.program();
  ProgramNodes PN;

  for (unsigned CI = 0; CI != P.Classes.size(); ++CI)
    PN.ClassNodes.push_back(
        addNode(NodeKind::SourceClass,
                P.Syms.name(P.Classes.info(ClassId(CI)).Name)));

  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    PN.MethodNodes.push_back(
        addNode(NodeKind::SourceMethod, P.methodLabel(MethodId(MI))));

  // Dispatch facts of generic g depend on every class in the cones of its
  // methods' specializers and on every method of g.
  for (unsigned GI = 0; GI != P.numGenerics(); ++GI) {
    GenericId G(GI);
    NodeId Facts =
        addNode(NodeKind::DispatchFacts, P.genericLabel(G) + " dispatch");
    PN.GenericFactNodes.push_back(Facts);
    for (MethodId M : P.generic(G).Methods) {
      addEdge(PN.MethodNodes[M.value()], Facts);
      for (ClassId Spec : P.method(M).Specializers)
        for (ClassId C : P.Classes.cone(Spec).members())
          addEdge(PN.ClassNodes[C.value()], Facts);
    }
  }

  // Compiled versions depend on their source method and on the dispatch
  // facts of every generic they bound statically.
  for (const CompiledMethod &CM : CP.versions()) {
    NodeId V = addNode(NodeKind::CompiledCode,
                       P.methodLabel(CM.Source) + "#" +
                           std::to_string(CM.Index));
    PN.VersionNodes.push_back(V);
    addEdge(PN.MethodNodes[CM.Source.value()], V);
    if (!CM.Body)
      continue;
    std::vector<GenericId> Bound;
    collectBoundGenerics(CM.Body.get(), Bound);
    for (GenericId G : Bound)
      addEdge(PN.GenericFactNodes[G.value()], V);
  }
  return PN;
}

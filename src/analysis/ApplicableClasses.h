//===- analysis/ApplicableClasses.h - CHA ApplicableClasses ----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the paper's ApplicableClasses function:
///
///   ApplicableClasses[meth m(f1,...,fn)] = the n-tuple of class sets, one
///   per formal, for which m might be invoked (excluding classes that bind
///   to overriding methods).
///
/// For singly-dispatched generics this is the classic "cone minus
/// overriding cones" computation.  For multi-methods, per-position sets
/// are the projections of the exact invocation relation; we compute them
/// exactly by enumerating dispatched-argument tuples when that space is
/// small (the paper defers these "subtleties" to [Dean et al. 95]) and
/// fall back to a conservative pointwise approximation otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_ANALYSIS_APPLICABLECLASSES_H
#define SELSPEC_ANALYSIS_APPLICABLECLASSES_H

#include "hierarchy/Program.h"
#include "support/ClassSet.h"

#include <vector>

namespace selspec {

class ApplicableClassesAnalysis {
public:
  /// Computes ApplicableClasses for every method in \p P.
  /// \p ExactTupleLimit bounds the dispatched-tuple enumeration per
  /// generic; above it the pointwise approximation is used.
  explicit ApplicableClassesAnalysis(const Program &P,
                                     uint64_t ExactTupleLimit = 1 << 16);

  /// The ApplicableClasses tuple of \p M (size = arity).  Empty sets mean
  /// the method can never be invoked (dead method).
  const std::vector<ClassSet> &of(MethodId M) const {
    return PerMethod[M.value()];
  }

  /// Argument positions of \p G on which any method actually dispatches
  /// (has a non-root specializer).
  const std::vector<unsigned> &dispatchedPositions(GenericId G) const {
    return DispatchedPos[G.value()];
  }

  /// True if generic \p G needed the pointwise fallback (for tests).
  bool usedFallback(GenericId G) const { return Fallback[G.value()]; }

  const Program &program() const { return P; }

private:
  void computeExact(const GenericInfo &G);
  void computePointwise(const GenericInfo &G);

  const Program &P;
  std::vector<std::vector<ClassSet>> PerMethod;
  std::vector<std::vector<unsigned>> DispatchedPos;
  std::vector<bool> Fallback;
};

} // namespace selspec

#endif // SELSPEC_ANALYSIS_APPLICABLECLASSES_H

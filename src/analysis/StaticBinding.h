//===- analysis/StaticBinding.h - Static binding queries -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Given per-argument static class sets at a call site, which methods could
/// be invoked?  When exactly one, the send can be statically bound (and
/// then possibly inlined) — the core payoff of class analysis, CHA and
/// specialization alike.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_ANALYSIS_STATICBINDING_H
#define SELSPEC_ANALYSIS_STATICBINDING_H

#include "analysis/ApplicableClasses.h"

#include <vector>

namespace selspec {

/// Methods of \p G that might be invoked for arguments drawn from
/// \p ArgSets: method m is possible iff every position's set intersects
/// m's ApplicableClasses set.  (Pointwise — conservative for
/// multi-methods, exact for single dispatch.)
std::vector<MethodId> possibleTargets(const ApplicableClassesAnalysis &AC,
                                      GenericId G,
                                      const std::vector<ClassSet> &ArgSets);

/// If \p ArgSets statically binds \p G to a unique method, returns it;
/// otherwise an invalid id.
MethodId uniqueTarget(const ApplicableClassesAnalysis &AC, GenericId G,
                      const std::vector<ClassSet> &ArgSets);

} // namespace selspec

#endif // SELSPEC_ANALYSIS_STATICBINDING_H

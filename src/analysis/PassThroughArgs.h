//===- analysis/PassThroughArgs.h - Pass-through call sites ----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the paper's PassThroughArgs function: for each message-send
/// site, the set of pairs <f → a> meaning "the enclosing method's formal f
/// is passed directly as actual a of the send".  These are the sites whose
/// binding can improve when the enclosing method is specialized on f
/// (akin to the jump functions of Grove & Torczon).
///
/// A formal only counts as pass-through if its binding is stable: it is
/// never assigned and never shadowed anywhere in the method (conservative
/// but simple).  Sites inside nested closures participate too — that is
/// exactly the Figure 1 situation, where `set2.includes(elem)` inside the
/// closure is a pass-through use of `overlaps`' formal `set2`.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_ANALYSIS_PASSTHROUGHARGS_H
#define SELSPEC_ANALYSIS_PASSTHROUGHARGS_H

#include "hierarchy/Program.h"

#include <utility>
#include <vector>

namespace selspec {

/// <CallerFormal, CalleeActual> index pair (both 0-based).
using PassThroughPair = std::pair<unsigned, unsigned>;

class PassThroughAnalysis {
public:
  explicit PassThroughAnalysis(const Program &P);

  /// Pass-through pairs of call site \p S, ordered by callee actual.
  const std::vector<PassThroughPair> &at(CallSiteId S) const {
    return PerSite[S.value()];
  }

  /// True if formal \p FormalIdx of \p M is stable (never assigned or
  /// shadowed) — only stable formals generate pass-through pairs.
  bool isStableFormal(MethodId M, unsigned FormalIdx) const {
    return StableFormals[M.value()][FormalIdx];
  }

private:
  std::vector<std::vector<PassThroughPair>> PerSite;
  std::vector<std::vector<bool>> StableFormals;
};

} // namespace selspec

#endif // SELSPEC_ANALYSIS_PASSTHROUGHARGS_H

//===- analysis/StaticBinding.cpp - Static binding queries -----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticBinding.h"

using namespace selspec;

std::vector<MethodId>
selspec::possibleTargets(const ApplicableClassesAnalysis &AC, GenericId G,
                         const std::vector<ClassSet> &ArgSets) {
  const Program &P = AC.program();
  const GenericInfo &Info = P.generic(G);
  assert(ArgSets.size() == Info.Arity && "arity mismatch");

  std::vector<MethodId> Out;
  for (MethodId M : Info.Methods) {
    const std::vector<ClassSet> &Tuple = AC.of(M);
    bool Possible = true;
    for (unsigned I = 0; I != Info.Arity && Possible; ++I)
      Possible = ArgSets[I].intersects(Tuple[I]);
    if (Possible)
      Out.push_back(M);
  }
  return Out;
}

MethodId selspec::uniqueTarget(const ApplicableClassesAnalysis &AC,
                               GenericId G,
                               const std::vector<ClassSet> &ArgSets) {
  std::vector<MethodId> Targets = possibleTargets(AC, G, ArgSets);
  return Targets.size() == 1 ? Targets.front() : MethodId();
}

//===- analysis/ApplicableClasses.cpp - CHA ApplicableClasses --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/ApplicableClasses.h"

using namespace selspec;

ApplicableClassesAnalysis::ApplicableClassesAnalysis(const Program &P,
                                                     uint64_t ExactTupleLimit)
    : P(P) {
  assert(P.Classes.isFinalized() && "hierarchy must be finalized");
  unsigned Universe = P.Classes.size();
  PerMethod.resize(P.numMethods());
  DispatchedPos.resize(P.numGenerics());
  Fallback.assign(P.numGenerics(), false);

  for (unsigned GI = 0; GI != P.numGenerics(); ++GI) {
    const GenericInfo &G = P.generic(GenericId(GI));

    // A position is dispatched when some method constrains it.
    std::vector<unsigned> &Pos = DispatchedPos[GI];
    for (unsigned I = 0; I != G.Arity; ++I) {
      for (MethodId M : G.Methods) {
        if (P.method(M).Specializers[I] != P.Classes.root()) {
          Pos.push_back(I);
          break;
        }
      }
    }

    // Initialize every method's tuple to the cones of its specializers;
    // the dispatched positions are then refined below.
    for (MethodId M : G.Methods) {
      const MethodInfo &Info = P.method(M);
      std::vector<ClassSet> Tuple;
      Tuple.reserve(G.Arity);
      for (unsigned I = 0; I != G.Arity; ++I)
        Tuple.push_back(P.Classes.cone(Info.Specializers[I]));
      PerMethod[M.value()] = std::move(Tuple);
    }

    if (G.Methods.size() <= 1 || Pos.empty())
      continue; // No overriding possible; cones are exact.

    uint64_t TupleSpace = 1;
    for (size_t I = 0; I != Pos.size() && TupleSpace <= ExactTupleLimit; ++I)
      TupleSpace *= Universe;

    if (TupleSpace <= ExactTupleLimit) {
      computeExact(G);
    } else {
      Fallback[GI] = true;
      computePointwise(G);
    }
  }
}

void ApplicableClassesAnalysis::computeExact(const GenericInfo &G) {
  unsigned Universe = P.Classes.size();
  const std::vector<unsigned> &Pos = DispatchedPos[G.Id.value()];

  // Clear the dispatched positions of every tuple; they are rebuilt from
  // the exact invocation relation.
  for (MethodId M : G.Methods)
    for (unsigned I : Pos)
      PerMethod[M.value()][I] = ClassSet::empty(Universe);

  // Enumerate every assignment of classes to the dispatched positions and
  // run the real dispatcher.  The non-dispatched positions never affect
  // dispatch and keep their cones.
  std::vector<ClassId> Args(G.Arity, P.Classes.root());
  std::vector<unsigned> Cursor(Pos.size(), 0);
  for (;;) {
    for (size_t I = 0; I != Pos.size(); ++I)
      Args[Pos[I]] = ClassId(Cursor[I]);
    MethodId Winner = P.dispatch(G.Id, Args);
    if (Winner.isValid())
      for (size_t I = 0; I != Pos.size(); ++I)
        PerMethod[Winner.value()][Pos[I]].insert(ClassId(Cursor[I]));

    // Advance the odometer.
    size_t K = 0;
    while (K != Cursor.size() && ++Cursor[K] == Universe) {
      Cursor[K] = 0;
      ++K;
    }
    if (K == Cursor.size())
      break;
  }
}

void ApplicableClassesAnalysis::computePointwise(const GenericInfo &G) {
  // Conservative: remove from m's set at position i the cones of methods
  // that override m (are strictly more specific overall) — classes there
  // *may* bind elsewhere.  Exact for single dispatching.
  for (MethodId M : G.Methods) {
    const MethodInfo &Info = P.method(M);
    std::vector<ClassSet> &Tuple = PerMethod[M.value()];
    for (MethodId M2 : G.Methods) {
      if (M2 == M)
        continue;
      if (!P.atLeastAsSpecific(M2, M))
        continue;
      // M2 overrides M.  At each dispatched position where M2 is strictly
      // more specific, M loses M2's cone only if that alone guarantees M2
      // wins; pointwise we can safely subtract only when the generic
      // dispatches on a single position.
      if (DispatchedPos[G.Id.value()].size() == 1) {
        unsigned I = DispatchedPos[G.Id.value()][0];
        ClassSet Sub = P.Classes.cone(P.method(M2).Specializers[I]);
        if (P.method(M2).Specializers[I] != Info.Specializers[I])
          Tuple[I].subtract(Sub);
      }
      // For multiple dispatched positions the pointwise projection cannot
      // soundly subtract (a class excluded at position i may still invoke
      // M with a different class at position j), so the cone stands.
    }
  }
}

//===- analysis/ReturnClasses.h - Interprocedural return classes -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6 lists "specializing callers for the return values of the
/// called methods, so that knowledge of the class of the return value can
/// be propagated to the caller" as ongoing work.  This analysis implements
/// the enabling half: a whole-program fixpoint computing, for every
/// method, the set of classes its result may have.  The optimizer (flag
/// OptimizerOptions::UseReturnClasses) consumes it to sharpen the class
/// sets of send results, which lets chained sends statically bind.
///
/// The per-body transfer function mirrors the optimizer's intraprocedural
/// class analysis (same widening rules around loops and closures) but
/// performs no rewriting; send results are the union of the return sets
/// of the possible targets (by ApplicableClasses).  The fixpoint starts
/// at bottom (empty sets) and is monotone, so it terminates.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_ANALYSIS_RETURNCLASSES_H
#define SELSPEC_ANALYSIS_RETURNCLASSES_H

#include "analysis/ApplicableClasses.h"
#include "opt/ClassAnalysis.h"

#include <vector>

namespace selspec {

class ReturnClassAnalysis {
public:
  /// Runs the fixpoint over every method of \p P.
  ReturnClassAnalysis(const Program &P, const ApplicableClassesAnalysis &AC);

  /// Classes method \p M may return.  For builtins this is the primitive
  /// result set; an empty set means the method can only diverge or fail.
  const ClassSet &of(MethodId M) const { return Sets[M.value()]; }

  /// Union of return sets over the possible targets of generic \p G given
  /// per-argument class sets (universe when a target's set is unknown).
  ClassSet resultOfSend(GenericId G,
                        const std::vector<ClassSet> &ArgSets) const;

  /// Number of fixpoint passes taken (statistics / tests).
  unsigned iterations() const { return Iterations; }

private:
  ClassSet evalBody(const MethodInfo &M);
  ClassSet evalExpr(const Expr *E, ClassEnv &Env, ClassSet &Returned,
                    const std::unordered_set<uint32_t> &Assigned,
                    const std::unordered_set<uint32_t> &ClosureAssigned,
                    unsigned ClosureDepth);

  const Program &P;
  const ApplicableClassesAnalysis &AC;
  std::vector<ClassSet> Sets;
  unsigned Iterations = 0;
};

} // namespace selspec

#endif // SELSPEC_ANALYSIS_RETURNCLASSES_H

//===- analysis/ReturnClasses.cpp - Interprocedural return classes ---------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/ReturnClasses.h"

#include "analysis/StaticBinding.h"
#include "hierarchy/Builtins.h"

using namespace selspec;

ReturnClassAnalysis::ReturnClassAnalysis(const Program &P,
                                         const ApplicableClassesAnalysis &AC)
    : P(P), AC(AC) {
  unsigned U = P.Classes.size();
  Sets.assign(P.numMethods(), ClassSet::empty(U));

  // Builtins are fixed from the start.
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    const MethodInfo &M = P.method(MethodId(MI));
    if (M.isBuiltin())
      Sets[MI] = primResultSet(M.Prim, U);
  }

  // Kleene iteration over user methods.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
      const MethodInfo &M = P.method(MethodId(MI));
      if (M.isBuiltin())
        continue;
      ClassSet New = evalBody(M);
      if (New != Sets[MI]) {
        assert(Sets[MI].isSubsetOf(New) && "non-monotone transfer");
        Sets[MI] = std::move(New);
        Changed = true;
      }
    }
    assert(Iterations <= P.numMethods() * U + 2 &&
           "return-class fixpoint failed to converge");
  }
}

ClassSet ReturnClassAnalysis::resultOfSend(
    GenericId G, const std::vector<ClassSet> &ArgSets) const {
  ClassSet Out = ClassSet::empty(P.Classes.size());
  for (MethodId M : possibleTargets(AC, G, ArgSets))
    Out |= Sets[M.value()];
  return Out;
}

ClassSet ReturnClassAnalysis::evalBody(const MethodInfo &M) {
  ClassEnv Env;
  Env.pushScope();
  for (unsigned I = 0; I != M.arity(); ++I)
    Env.define(M.ParamNames[I], AC.of(M.Id)[I]);

  std::unordered_set<uint32_t> Assigned = collectAssignedNames(M.Body.get());
  std::unordered_set<uint32_t> ClosureAssigned =
      collectClosureAssignedNames(M.Body.get());

  ClassSet Returned = ClassSet::empty(P.Classes.size());
  ClassSet Fall = evalExpr(M.Body.get(), Env, Returned, Assigned,
                           ClosureAssigned, /*ClosureDepth=*/0);
  return Fall | Returned;
}

ClassSet ReturnClassAnalysis::evalExpr(
    const Expr *E, ClassEnv &Env, ClassSet &Returned,
    const std::unordered_set<uint32_t> &Assigned,
    const std::unordered_set<uint32_t> &ClosureAssigned,
    unsigned ClosureDepth) {
  unsigned U = P.Classes.size();
  auto Universe = [&] { return ClassSet::all(U); };
  auto Recurse = [&](const Expr *Child) {
    return evalExpr(Child, Env, Returned, Assigned, ClosureAssigned,
                    ClosureDepth);
  };

  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return ClassSet::single(U, builtin::Int);
  case Expr::Kind::BoolLit:
    return ClassSet::single(U, builtin::Bool);
  case Expr::Kind::StrLit:
    return ClassSet::single(U, builtin::String);
  case Expr::Kind::NilLit:
    return ClassSet::single(U, builtin::Nil);

  case Expr::Kind::VarRef: {
    Symbol Name = cast<VarRefExpr>(E)->Name;
    if (ClosureDepth > 0 && Assigned.count(Name.value()))
      return Universe();
    if (ClosureAssigned.count(Name.value()))
      return Universe();
    if (ClassSet *S = Env.lookup(Name))
      return *S;
    return Universe();
  }

  case Expr::Kind::AssignVar: {
    const auto *A = cast<AssignVarExpr>(E);
    ClassSet V = Recurse(A->Value.get());
    if (ClassSet *Slot = Env.lookup(A->Name))
      *Slot |= V;
    return V;
  }

  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    ClassSet V = Recurse(L->Init.get());
    Env.define(L->Name, std::move(V));
    return ClassSet::single(U, builtin::Nil);
  }

  case Expr::Kind::Seq: {
    Env.pushScope();
    ClassSet Last = ClassSet::single(U, builtin::Nil);
    for (const ExprPtr &Elem : cast<SeqExpr>(E)->Elems)
      Last = Recurse(Elem.get());
    Env.popScope();
    return Last;
  }

  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    Recurse(I->Cond.get());
    ClassSet R = Recurse(I->Then.get());
    if (I->Else)
      R |= Recurse(I->Else.get());
    else
      R |= ClassSet::single(U, builtin::Nil);
    return R;
  }

  case Expr::Kind::While: {
    const auto *W = cast<WhileExpr>(E);
    std::unordered_set<uint32_t> LoopAssigned =
        collectAssignedNames(W->Body.get());
    for (uint32_t N : collectAssignedNames(W->Cond.get()))
      LoopAssigned.insert(N);
    Env.widen(LoopAssigned, Universe());
    Recurse(W->Cond.get());
    Recurse(W->Body.get());
    return ClassSet::single(U, builtin::Nil);
  }

  case Expr::Kind::Send: {
    const auto *S = cast<SendExpr>(E);
    std::vector<ClassSet> ArgSets;
    ArgSets.reserve(S->Args.size());
    for (const ExprPtr &A : S->Args)
      ArgSets.push_back(Recurse(A.get()));
    return resultOfSend(S->Generic, ArgSets);
  }

  case Expr::Kind::ClosureCall: {
    const auto *C = cast<ClosureCallExpr>(E);
    Recurse(C->Callee.get());
    for (const ExprPtr &A : C->Args)
      Recurse(A.get());
    return Universe();
  }

  case Expr::Kind::ClosureLit: {
    const auto *C = cast<ClosureLitExpr>(E);
    Env.pushScope();
    for (Symbol SP : C->Params)
      Env.define(SP, Universe());
    // Returns inside the body unwind to the enclosing method; the body
    // value itself is never the method result.
    evalExpr(C->Body.get(), Env, Returned, Assigned, ClosureAssigned,
             ClosureDepth + 1);
    Env.popScope();
    return ClassSet::single(U, builtin::Closure);
  }

  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    for (const auto &[Slot, Init] : N->Inits)
      Recurse(Init.get());
    return ClassSet::single(U, N->Class);
  }

  case Expr::Kind::SlotGet:
    Recurse(cast<SlotGetExpr>(E)->Object.get());
    return Universe();

  case Expr::Kind::SlotSet: {
    const auto *S = cast<SlotSetExpr>(E);
    Recurse(S->Object.get());
    return Recurse(S->Value.get());
  }

  case Expr::Kind::Return: {
    const auto *R = cast<ReturnExpr>(E);
    if (R->Value)
      Returned |= Recurse(R->Value.get());
    else
      Returned.insert(builtin::Nil);
    return Universe(); // unreachable afterwards
  }

  case Expr::Kind::Inlined:
    assert(false && "source bodies contain no InlinedExpr");
    return Universe();
  }
  return Universe();
}

//===- analysis/PassThroughArgs.cpp - Pass-through call sites --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/PassThroughArgs.h"

using namespace selspec;

namespace {

/// Walks a method body collecting names that are assigned or rebound.
void collectUnstableNames(const Expr *E, std::vector<Symbol> &Unstable) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::StrLit:
  case Expr::Kind::NilLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::AssignVar: {
    const auto *A = cast<AssignVarExpr>(E);
    Unstable.push_back(A->Name);
    collectUnstableNames(A->Value.get(), Unstable);
    return;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    Unstable.push_back(L->Name); // shadows any formal of the same name
    collectUnstableNames(L->Init.get(), Unstable);
    return;
  }
  case Expr::Kind::Seq:
    for (const ExprPtr &Elem : cast<SeqExpr>(E)->Elems)
      collectUnstableNames(Elem.get(), Unstable);
    return;
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    collectUnstableNames(I->Cond.get(), Unstable);
    collectUnstableNames(I->Then.get(), Unstable);
    if (I->Else)
      collectUnstableNames(I->Else.get(), Unstable);
    return;
  }
  case Expr::Kind::While: {
    const auto *W = cast<WhileExpr>(E);
    collectUnstableNames(W->Cond.get(), Unstable);
    collectUnstableNames(W->Body.get(), Unstable);
    return;
  }
  case Expr::Kind::Send:
    for (const ExprPtr &A : cast<SendExpr>(E)->Args)
      collectUnstableNames(A.get(), Unstable);
    return;
  case Expr::Kind::ClosureCall: {
    const auto *C = cast<ClosureCallExpr>(E);
    collectUnstableNames(C->Callee.get(), Unstable);
    for (const ExprPtr &A : C->Args)
      collectUnstableNames(A.get(), Unstable);
    return;
  }
  case Expr::Kind::ClosureLit: {
    const auto *C = cast<ClosureLitExpr>(E);
    for (Symbol S : C->Params)
      Unstable.push_back(S); // closure params shadow formals
    collectUnstableNames(C->Body.get(), Unstable);
    return;
  }
  case Expr::Kind::New:
    for (const auto &[SlotName, Init] : cast<NewExpr>(E)->Inits)
      collectUnstableNames(Init.get(), Unstable);
    return;
  case Expr::Kind::SlotGet:
    collectUnstableNames(cast<SlotGetExpr>(E)->Object.get(), Unstable);
    return;
  case Expr::Kind::SlotSet: {
    const auto *S = cast<SlotSetExpr>(E);
    collectUnstableNames(S->Object.get(), Unstable);
    collectUnstableNames(S->Value.get(), Unstable);
    return;
  }
  case Expr::Kind::Return:
    if (const ExprPtr &V = cast<ReturnExpr>(E)->Value)
      collectUnstableNames(V.get(), Unstable);
    return;
  case Expr::Kind::Inlined:
    assert(false && "source bodies contain no InlinedExpr");
    return;
  }
}

} // namespace

PassThroughAnalysis::PassThroughAnalysis(const Program &P) {
  assert(P.isResolved() && "program must be resolved");

  // Per-method stable-formal mask.
  StableFormals.resize(P.numMethods());
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    const MethodInfo &M = P.method(MethodId(MI));
    std::vector<bool> &Mask = StableFormals[MI];
    Mask.assign(M.arity(), true);
    if (M.isBuiltin())
      continue;
    std::vector<Symbol> Unstable;
    collectUnstableNames(M.Body.get(), Unstable);
    for (unsigned F = 0; F != M.arity(); ++F)
      for (Symbol S : Unstable)
        if (S == M.ParamNames[F])
          Mask[F] = false;
  }

  // Per-site pass-through pairs.
  PerSite.resize(P.numCallSites());
  for (unsigned SI = 0; SI != P.numCallSites(); ++SI) {
    const CallSiteInfo &Site = P.callSite(CallSiteId(SI));
    const MethodInfo &Owner = P.method(Site.Owner);
    std::vector<PassThroughPair> &Pairs = PerSite[SI];
    for (unsigned A = 0; A != Site.Send->Args.size(); ++A) {
      const auto *V = dyn_cast<VarRefExpr>(Site.Send->Args[A].get());
      if (!V)
        continue;
      for (unsigned F = 0; F != Owner.arity(); ++F) {
        if (Owner.ParamNames[F] == V->Name &&
            StableFormals[Site.Owner.value()][F]) {
          Pairs.emplace_back(F, A);
          break;
        }
      }
    }
  }
}

//===- specialize/Strategies.h - Table 1 configurations --------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the SpecializationPlan for each compiler configuration of the
/// paper's Table 1:
///
///   Base      one general version per method, no CHA.
///   Cust      one version per inheriting receiver class (customization,
///             as in Self/Sather/Trellis).
///   Cust-MM   customization extended to multi-methods: one version per
///             combination of dispatched argument classes.
///   CHA       one general version per method, optimizer uses class
///             hierarchy analysis for static binding.
///   Selective CHA + the profile-guided selective algorithm (Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SPECIALIZE_STRATEGIES_H
#define SELSPEC_SPECIALIZE_STRATEGIES_H

#include "specialize/SelectiveSpecializer.h"
#include "specialize/SpecTuple.h"
#include "support/Diagnostics.h"

namespace selspec {

/// Builds the plan for \p C.  \p Options only affects Selective.
///
/// Selective wants a non-empty profile in \p CG; when it is null or empty
/// (missing, rejected, or invalidated profile data) the plan degrades to
/// CHA — general versions with class hierarchy analysis — and a warning is
/// appended to \p Diags when provided.  No configuration asserts on its
/// inputs.
SpecializationPlan makePlan(Config C, const Program &P,
                            const ApplicableClassesAnalysis &AC,
                            const PassThroughAnalysis &PT,
                            const CallGraph *CG,
                            const SelectiveOptions &Options = {},
                            Diagnostics *Diags = nullptr);

} // namespace selspec

#endif // SELSPEC_SPECIALIZE_STRATEGIES_H

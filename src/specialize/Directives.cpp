//===- specialize/Directives.cpp - Specialization directives ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "specialize/Directives.h"

#include "analysis/ApplicableClasses.h"

#include <sstream>

using namespace selspec;

namespace {

/// Renders a class set as comma-separated names, or "*" for the universe.
std::string setToDirective(const ClassSet &S, const Program &P) {
  if (S.isAll())
    return "*";
  std::ostringstream OS;
  bool First = true;
  for (ClassId C : S.members()) {
    if (!First)
      OS << ',';
    First = false;
    OS << P.Syms.name(P.Classes.info(C).Name);
  }
  return First ? "-" : OS.str(); // "-" encodes the empty set
}

bool parseSetDirective(const std::string &Word, const Program &P,
                       ClassSet &Out, std::string &ErrorOut) {
  Out = ClassSet::empty(P.Classes.size());
  if (Word == "*") {
    Out = P.Classes.allClasses();
    return true;
  }
  if (Word == "-")
    return true;
  std::istringstream IS(Word);
  std::string Name;
  while (std::getline(IS, Name, ',')) {
    Symbol S = P.Syms.find(Name);
    ClassId C = S.isValid() ? P.Classes.lookup(S) : ClassId();
    if (!C.isValid()) {
      ErrorOut = "directives name unknown class '" + Name + "'";
      return false;
    }
    Out.insert(C);
  }
  return true;
}

/// Methods identified by label; labels are unique per program because a
/// generic cannot have two methods with identical specializer tuples.
MethodId methodByLabel(const Program &P, const std::string &Label) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    if (P.methodLabel(MethodId(MI)) == Label)
      return MethodId(MI);
  return MethodId();
}

} // namespace

std::string selspec::serializeDirectives(const SpecializationPlan &Plan,
                                         const Program &P) {
  std::ostringstream OS;
  OS << "selspec-directives v1\n";
  OS << "config " << configName(Plan.Configuration)
     << " cha=" << (Plan.UseCHA ? 1 : 0) << '\n';
  for (unsigned MI = 0; MI != Plan.VersionsByMethod.size(); ++MI) {
    const std::vector<SpecTuple> &Versions = Plan.VersionsByMethod[MI];
    if (Versions.empty())
      continue;
    OS << "method " << P.methodLabel(MethodId(MI)) << ' '
       << Versions.size() << '\n';
    for (const SpecTuple &T : Versions) {
      OS << "version";
      for (const ClassSet &S : T)
        OS << ' ' << setToDirective(S, P);
      OS << '\n';
    }
  }
  return OS.str();
}

bool selspec::deserializeDirectives(const std::string &Text,
                                    const Program &P,
                                    const ApplicableClassesAnalysis &AC,
                                    SpecializationPlan &PlanOut,
                                    std::string &ErrorOut) {
  std::istringstream IS(Text);
  std::string Line;
  if (!std::getline(IS, Line) || Line != "selspec-directives v1") {
    ErrorOut = "not a selspec-directives v1 file";
    return false;
  }

  PlanOut = SpecializationPlan();
  PlanOut.VersionsByMethod.resize(P.numMethods());

  MethodId Current;
  size_t Expected = 0;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Word;
    LS >> Word;
    if (Word == "config") {
      std::string Name, Cha;
      if (!(LS >> Name >> Cha)) {
        ErrorOut = "malformed config line";
        return false;
      }
      for (Config C : {Config::Base, Config::Cust, Config::CustMM,
                       Config::CHA, Config::Selective})
        if (Name == configName(C))
          PlanOut.Configuration = C;
      PlanOut.UseCHA = Cha == "cha=1";
      continue;
    }
    if (Word == "method") {
      std::string Label;
      if (!(LS >> Label >> Expected)) {
        ErrorOut = "malformed method line";
        return false;
      }
      Current = methodByLabel(P, Label);
      if (!Current.isValid()) {
        ErrorOut = "directives name unknown method '" + Label + "'";
        return false;
      }
      continue;
    }
    if (Word == "version") {
      if (!Current.isValid()) {
        ErrorOut = "version line before any method line";
        return false;
      }
      const MethodInfo &M = P.method(Current);
      SpecTuple T;
      std::string SetWord;
      while (LS >> SetWord) {
        ClassSet S(P.Classes.size());
        if (!parseSetDirective(SetWord, P, S, ErrorOut))
          return false;
        T.push_back(std::move(S));
      }
      if (T.size() != M.arity()) {
        ErrorOut = "version arity mismatch for '" +
                   P.methodLabel(Current) + "'";
        return false;
      }
      PlanOut.VersionsByMethod[Current.value()].push_back(std::move(T));
      continue;
    }
    ErrorOut = "unknown directive '" + Word + "'";
    return false;
  }

  // Methods the directives did not mention keep their general version.
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    if (P.method(MethodId(MI)).isBuiltin())
      continue;
    if (PlanOut.VersionsByMethod[MI].empty())
      PlanOut.VersionsByMethod[MI].push_back(AC.of(MethodId(MI)));
  }
  (void)Expected;
  return true;
}

//===- specialize/SpecTuple.h - Specialization tuples ----------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's general specialization framework: "a method can be
/// specialized for a tuple of class sets, one class set per formal
/// argument, including the receiver."  A SpecTuple is that tuple; a
/// SpecializationPlan maps every user method to the set of tuples for
/// which a compiled version should be produced.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SPECIALIZE_SPECTUPLE_H
#define SELSPEC_SPECIALIZE_SPECTUPLE_H

#include "hierarchy/Program.h"
#include "support/ClassSet.h"

#include <string>
#include <vector>

namespace selspec {

/// One class set per formal argument.
using SpecTuple = std::vector<ClassSet>;

/// Pointwise intersection; the result "exists" only if every component is
/// non-empty (paper: "tuples containing empty class sets are dropped").
SpecTuple tupleIntersect(const SpecTuple &A, const SpecTuple &B);

/// True when every component of the pointwise intersection is non-empty.
bool tupleIntersects(const SpecTuple &A, const SpecTuple &B);

/// True when no component is empty.
bool tupleNonEmpty(const SpecTuple &T);

bool tupleEquals(const SpecTuple &A, const SpecTuple &B);

/// True when A is pointwise a subset of B (A at least as specific as B).
bool tupleSubsetOf(const SpecTuple &A, const SpecTuple &B);

/// True when the concrete class tuple \p Classes is contained in \p T.
bool tupleContains(const SpecTuple &T, const std::vector<ClassId> &Classes);

/// "<{A,B},{C}>" with class names.
std::string tupleToString(const SpecTuple &T, const ClassHierarchy &H,
                          const SymbolTable &Syms);

/// The compiler configurations evaluated in the paper (Table 1).
enum class Config : uint8_t {
  Base,      ///< Intraprocedural optimization only; one version per method.
  Cust,      ///< Base + customization on the receiver class.
  CustMM,    ///< Base + customization on every dispatched argument combo.
  CHA,       ///< Base + whole-program class hierarchy analysis.
  Selective, ///< CHA + the profile-guided selective algorithm.
};

const char *configName(Config C);

/// Which method versions to compile, plus optimizer switches.
struct SpecializationPlan {
  /// Per user method (indexed by MethodId), the tuples to compile.  For
  /// builtins the entry is empty (they always have exactly one version).
  /// Entry [0], when the method keeps a general version, equals the
  /// method's ApplicableClasses tuple.
  std::vector<std::vector<SpecTuple>> VersionsByMethod;

  /// Whether the optimizer may use class hierarchy analysis when deciding
  /// static binding (true for CHA and Selective).
  bool UseCHA = false;

  Config Configuration = Config::Base;

  /// Total compiled versions of user methods.
  unsigned totalVersions() const;
};

} // namespace selspec

#endif // SELSPEC_SPECIALIZE_SPECTUPLE_H

//===- specialize/Directives.h - Specialization directives -----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4: "The implementation of our algorithm constructs a weighted
/// call graph from profiles of the program and then generates a list of
/// specialization directives using our algorithm.  The compiler then
/// executes the directives to produce the specialized versions of
/// methods."  This module is that interchange format: a textual, name-
/// based serialization of a SpecializationPlan, stable across recompiles
/// of the same sources (methods and classes are identified by label, not
/// by id), so directives can be generated once and replayed by later
/// compiles — like the persistent profile database of Section 3.7.2.
///
/// Format:
///   selspec-directives v1
///   config <name> cha=<0|1>
///   method <label> <num-versions>
///   version <set> <set> ...        (one per formal; sets are
///                                   comma-separated class names, or *)
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SPECIALIZE_DIRECTIVES_H
#define SELSPEC_SPECIALIZE_DIRECTIVES_H

#include "specialize/SpecTuple.h"

#include <string>

namespace selspec {

class ApplicableClassesAnalysis;

/// Serializes \p Plan against \p P (names, not ids).
std::string serializeDirectives(const SpecializationPlan &Plan,
                                const Program &P);

/// Parses directives back into a plan for \p P.  Returns false (with a
/// message in \p ErrorOut) on malformed input or names unknown to \p P;
/// methods absent from the directives keep a single general version built
/// from \p AC.
bool deserializeDirectives(const std::string &Text, const Program &P,
                           const ApplicableClassesAnalysis &AC,
                           SpecializationPlan &PlanOut,
                           std::string &ErrorOut);

} // namespace selspec

#endif // SELSPEC_SPECIALIZE_DIRECTIVES_H

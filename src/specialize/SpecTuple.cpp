//===- specialize/SpecTuple.cpp - Specialization tuples --------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "specialize/SpecTuple.h"

#include <sstream>

using namespace selspec;

SpecTuple selspec::tupleIntersect(const SpecTuple &A, const SpecTuple &B) {
  assert(A.size() == B.size() && "tuple arity mismatch");
  SpecTuple Out;
  Out.reserve(A.size());
  for (size_t I = 0; I != A.size(); ++I)
    Out.push_back(A[I] & B[I]);
  return Out;
}

bool selspec::tupleNonEmpty(const SpecTuple &T) {
  for (const ClassSet &S : T)
    if (S.isEmpty())
      return false;
  return true;
}

bool selspec::tupleIntersects(const SpecTuple &A, const SpecTuple &B) {
  assert(A.size() == B.size() && "tuple arity mismatch");
  for (size_t I = 0; I != A.size(); ++I)
    if (!A[I].intersects(B[I]))
      return false;
  return true;
}

bool selspec::tupleEquals(const SpecTuple &A, const SpecTuple &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I] != B[I])
      return false;
  return true;
}

bool selspec::tupleSubsetOf(const SpecTuple &A, const SpecTuple &B) {
  assert(A.size() == B.size() && "tuple arity mismatch");
  for (size_t I = 0; I != A.size(); ++I)
    if (!A[I].isSubsetOf(B[I]))
      return false;
  return true;
}

bool selspec::tupleContains(const SpecTuple &T,
                            const std::vector<ClassId> &Classes) {
  assert(T.size() == Classes.size() && "tuple arity mismatch");
  for (size_t I = 0; I != T.size(); ++I)
    if (!T[I].contains(Classes[I]))
      return false;
  return true;
}

std::string selspec::tupleToString(const SpecTuple &T,
                                   const ClassHierarchy &H,
                                   const SymbolTable &Syms) {
  std::ostringstream OS;
  OS << '<';
  for (size_t I = 0; I != T.size(); ++I) {
    if (I)
      OS << ',';
    OS << H.setToString(T[I], Syms);
  }
  OS << '>';
  return OS.str();
}

const char *selspec::configName(Config C) {
  switch (C) {
  case Config::Base: return "Base";
  case Config::Cust: return "Cust";
  case Config::CustMM: return "Cust-MM";
  case Config::CHA: return "CHA";
  case Config::Selective: return "Selective";
  }
  return "?";
}

unsigned SpecializationPlan::totalVersions() const {
  unsigned N = 0;
  for (const auto &Versions : VersionsByMethod)
    N += static_cast<unsigned>(Versions.size());
  return N;
}

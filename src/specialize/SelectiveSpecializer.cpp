//===- specialize/SelectiveSpecializer.cpp - Figure 4 algorithm ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "specialize/SelectiveSpecializer.h"

#include "analysis/StaticBinding.h"
#include "opt/ClassAnalysis.h"
#include "support/PhaseTimer.h"

#include <algorithm>

using namespace selspec;

SelectiveSpecializer::SelectiveSpecializer(
    const Program &P, const ApplicableClassesAnalysis &AC,
    const PassThroughAnalysis &PT, const CallGraph &CG,
    SelectiveOptions Options)
    : P(P), AC(AC), PT(PT), CG(CG), Options(Options) {
  // specializeProgram's initialization: Specializations[meth] :=
  // ApplicableClasses[meth] (the single general-purpose version).
  Specializations.resize(P.numMethods());
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    if (P.method(MethodId(MI)).isBuiltin())
      continue;
    Specializations[MI].push_back(AC.of(MethodId(MI)));
  }

  ArcsFrom.resize(P.numMethods());
  ArcsTo.resize(P.numMethods());
  for (const Arc &A : CG.arcs()) {
    ArcsFrom[A.Caller.value()].push_back(A);
    ArcsTo[A.Callee.value()].push_back(A);
  }
  // Visit a method's arcs hottest-first so that, if the per-method version
  // cap bites, the most profitable specializations survive.
  for (std::vector<Arc> &Arcs : ArcsFrom)
    std::stable_sort(Arcs.begin(), Arcs.end(),
                     [](const Arc &A, const Arc &B) {
                       return A.Weight > B.Weight;
                     });
}

bool SelectiveSpecializer::siteIsDynamic(const Arc &A) const {
  // Build the caller's per-argument class sets at the site: pass-through
  // positions carry the caller's ApplicableClasses set, everything else is
  // unknown (the universe).
  const CallSiteInfo &Site = P.callSite(A.Site);
  const SendExpr *Send = Site.Send;
  unsigned Arity = static_cast<unsigned>(Send->Args.size());
  ClassSet Universe = P.Classes.allClasses();
  std::vector<ClassSet> ArgSets(Arity, Universe);
  const SpecTuple &CallerInfo = AC.of(A.Caller);
  for (auto [F, Actual] : PT.at(A.Site))
    ArgSets[Actual] = CallerInfo[F];
  return possibleTargets(AC, Send->Generic, ArgSets).size() > 1;
}

SpecTuple
SelectiveSpecializer::neededInfoForArc(const Arc &A,
                                       const SpecTuple &CalleeInfo) const {
  SpecTuple Needed = AC.of(A.Caller);
  for (auto [F, Actual] : PT.at(A.Site))
    Needed[F] &= CalleeInfo[Actual];
  return Needed;
}

SpecTuple SelectiveSpecializer::neededInfoForArc(const Arc &A) const {
  return neededInfoForArc(A, AC.of(A.Callee));
}

bool SelectiveSpecializer::isSpecializableArc(const Arc &A) const {
  if (P.method(A.Caller).isBuiltin())
    return false;
  if (PT.at(A.Site).empty())
    return false;
  if (tupleEquals(neededInfoForArc(A), AC.of(A.Caller)))
    return false;
  return siteIsDynamic(A);
}

bool SelectiveSpecializer::hasSpecialization(MethodId Meth,
                                             const SpecTuple &T) const {
  for (const SpecTuple &Existing : Specializations[Meth.value()])
    if (tupleEquals(Existing, T))
      return true;
  return false;
}

void SelectiveSpecializer::run() {
  assert(!Ran && "run() must be called once");
  Ran = true;
  PhaseTimer::Scope Timing("specialize");

  if (Options.SpaceBudgetVersions == 0) {
    // Figure 4: visit each method, considering its outgoing arcs.
    for (unsigned MI = 0; MI != P.numMethods(); ++MI)
      specializeMethod(MethodId(MI));
  } else {
    // Section 3.4 alternatives: specialize under a fixed space budget, in
    // decreasing order of either raw arc weight or estimated
    // benefit-per-cost.
    std::vector<Arc> All = CG.arcs();
    if (!Options.UseBenefitCostOrder) {
      std::stable_sort(All.begin(), All.end(),
                       [](const Arc &A, const Arc &B) {
                         return A.Weight > B.Weight;
                       });
    } else {
      std::vector<double> Score(All.size(), 0.0);
      for (size_t I = 0; I != All.size(); ++I) {
        if (!isSpecializableArc(All[I]))
          continue;
        // Benefit: total weight of the caller's specializable arcs whose
        // own needed-info the candidate tuple already provides (their
        // sites would bind too inside the specialized version).
        SpecTuple Spec = neededInfoForArc(All[I]);
        uint64_t Benefit = 0;
        for (const Arc &Other : ArcsFrom[All[I].Caller.value()])
          if (isSpecializableArc(Other) &&
              tupleSubsetOf(Spec, neededInfoForArc(Other)))
            Benefit += Other.Weight;
        // Cost: the body we would duplicate.
        const MethodInfo &Caller = P.method(All[I].Caller);
        unsigned Cost =
            Caller.Body ? countNodes(Caller.Body.get()) : 1;
        Score[I] = static_cast<double>(Benefit) / Cost;
      }
      std::vector<size_t> Order(All.size());
      for (size_t I = 0; I != Order.size(); ++I)
        Order[I] = I;
      std::stable_sort(Order.begin(), Order.end(),
                       [&](size_t A, size_t B) {
                         return Score[A] > Score[B];
                       });
      std::vector<Arc> Sorted;
      Sorted.reserve(All.size());
      for (size_t I : Order)
        Sorted.push_back(All[I]);
      All = std::move(Sorted);
    }
    for (const Arc &A : All) {
      if (BudgetUsed >= Options.SpaceBudgetVersions)
        break;
      if (isSpecializableArc(A))
        addSpecialization(A.Caller, neededInfoForArc(A));
    }
  }

  // Final statistics.
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    unsigned N = static_cast<unsigned>(Specializations[MI].size());
    if (N > 1) {
      ++S.MethodsSpecialized;
      S.VersionsAdded += N - 1;
    }
    S.MaxVersionsOfAMethod = std::max(S.MaxVersionsOfAMethod, N);
  }
}

void SelectiveSpecializer::specializeMethod(MethodId Meth) {
  for (const Arc &A : ArcsFrom[Meth.value()]) {
    if (!isSpecializableArc(A))
      continue;
    if (A.Weight > Options.SpecializationThreshold)
      addSpecialization(Meth, neededInfoForArc(A));
  }
}

void SelectiveSpecializer::addSpecialization(MethodId Meth,
                                             const SpecTuple &Spec) {
  std::vector<SpecTuple> &Specs = Specializations[Meth.value()];
  if (Specs.size() >= Options.MaxVersionsPerMethod) {
    ++S.BlowupGuardHits;
    return;
  }

  // Combine with every previously-computed tuple (including the general
  // one), covering all plausible combinations of arc specializations
  // (Section 3.2).  Snapshot first: new tuples must not combine with
  // themselves in the same pass.
  std::vector<SpecTuple> NewTuples;
  size_t SnapshotSize = Specs.size();
  for (size_t I = 0; I != SnapshotSize; ++I) {
    if (!tupleIntersects(Specs[I], Spec))
      continue; // a component would be empty: drop
    SpecTuple Inter = tupleIntersect(Specs[I], Spec);
    if (!hasSpecialization(Meth, Inter)) {
      bool Duplicate = false;
      for (const SpecTuple &T : NewTuples)
        if (tupleEquals(T, Inter))
          Duplicate = true;
      if (!Duplicate)
        NewTuples.push_back(std::move(Inter));
    }
  }

  for (SpecTuple &T : NewTuples) {
    if (Specs.size() >= Options.MaxVersionsPerMethod) {
      ++S.BlowupGuardHits;
      break;
    }
    Specs.push_back(T);
    ++BudgetUsed;
    if (Options.CascadeSpecializations)
      for (const Arc &A : ArcsTo[Meth.value()])
        cascadeSpecializations(A, T);
  }
}

void SelectiveSpecializer::cascadeSpecializations(const Arc &A,
                                                  const SpecTuple &CalleeSpec) {
  if (P.method(A.Caller).isBuiltin())
    return;
  if (PT.at(A.Site).empty())
    return;
  // The arc must already be statically bound with respect to its
  // pass-through arguments (no sharpening possible) — dynamically-bound
  // arcs are handled by regular specializeMethod.
  if (!tupleEquals(AC.of(A.Caller), neededInfoForArc(A)))
    return;
  if (A.Weight <= Options.SpecializationThreshold &&
      Options.SpaceBudgetVersions == 0)
    return;
  SpecTuple CallerSpec = neededInfoForArc(A, CalleeSpec);
  if (!tupleNonEmpty(CallerSpec))
    return;
  if (hasSpecialization(A.Caller, CallerSpec))
    return;
  ++S.CascadedSpecializations;
  addSpecialization(A.Caller, CallerSpec);
}

//===- specialize/Strategies.cpp - Table 1 configurations ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "specialize/Strategies.h"

#include "support/PhaseTimer.h"

using namespace selspec;

namespace {

/// Base and CHA: one general version per user method.
void planGeneral(const Program &P, const ApplicableClassesAnalysis &AC,
                 SpecializationPlan &Plan) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M(MI);
    if (P.method(M).isBuiltin())
      continue;
    Plan.VersionsByMethod[MI].push_back(AC.of(M));
  }
}

/// Cust: a version per receiver class inheriting the method; the receiver
/// class is always exact, so no general version remains (Self-style
/// customization).  Methods never invoked keep their general version so
/// the program still compiles one routine for them.
void planCustomization(const Program &P, const ApplicableClassesAnalysis &AC,
                       SpecializationPlan &Plan) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M(MI);
    const MethodInfo &Info = P.method(M);
    if (Info.isBuiltin())
      continue;
    const SpecTuple &General = AC.of(M);
    std::vector<SpecTuple> &Versions = Plan.VersionsByMethod[MI];
    if (Info.arity() == 0 || General.empty() || General[0].isEmpty()) {
      Versions.push_back(General);
      continue;
    }
    for (ClassId C : General[0].members()) {
      SpecTuple T = General;
      T[0] = ClassSet::single(P.Classes.size(), C);
      Versions.push_back(std::move(T));
    }
  }
}

/// Cust-MM: a version per combination of classes of the *dispatched*
/// argument positions of the method's generic (within the method's
/// ApplicableClasses sets).
void planCustomizationMM(const Program &P, const ApplicableClassesAnalysis &AC,
                         SpecializationPlan &Plan) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M(MI);
    const MethodInfo &Info = P.method(M);
    if (Info.isBuiltin())
      continue;
    const SpecTuple &General = AC.of(M);
    std::vector<SpecTuple> &Versions = Plan.VersionsByMethod[MI];

    const std::vector<unsigned> &Pos = AC.dispatchedPositions(Info.Generic);
    if (Pos.empty()) {
      Versions.push_back(General);
      continue;
    }
    // Odometer over the members of each dispatched position's set.
    std::vector<std::vector<ClassId>> Members;
    bool AnyEmpty = false;
    for (unsigned I : Pos) {
      Members.push_back(General[I].members());
      AnyEmpty |= Members.back().empty();
    }
    if (AnyEmpty) { // dead method: keep the general version only
      Versions.push_back(General);
      continue;
    }
    std::vector<size_t> Cursor(Pos.size(), 0);
    for (;;) {
      SpecTuple T = General;
      for (size_t I = 0; I != Pos.size(); ++I)
        T[Pos[I]] =
            ClassSet::single(P.Classes.size(), Members[I][Cursor[I]]);
      Versions.push_back(std::move(T));

      size_t K = 0;
      while (K != Cursor.size() && ++Cursor[K] == Members[K].size()) {
        Cursor[K] = 0;
        ++K;
      }
      if (K == Cursor.size())
        break;
    }
  }
}

} // namespace

SpecializationPlan selspec::makePlan(Config C, const Program &P,
                                     const ApplicableClassesAnalysis &AC,
                                     const PassThroughAnalysis &PT,
                                     const CallGraph *CG,
                                     const SelectiveOptions &Options,
                                     Diagnostics *Diags) {
  PhaseTimer::Scope Timing("plan");
  SpecializationPlan Plan;
  Plan.Configuration = C;
  Plan.VersionsByMethod.resize(P.numMethods());

  switch (C) {
  case Config::Base:
    Plan.UseCHA = false;
    planGeneral(P, AC, Plan);
    break;
  case Config::CHA:
    Plan.UseCHA = true;
    planGeneral(P, AC, Plan);
    break;
  case Config::Cust:
    Plan.UseCHA = false;
    planCustomization(P, AC, Plan);
    break;
  case Config::CustMM:
    Plan.UseCHA = false;
    planCustomizationMM(P, AC, Plan);
    break;
  case Config::Selective: {
    Plan.UseCHA = true;
    if (!CG || CG->empty()) {
      // Missing or invalidated profile: degrade to CHA (general versions)
      // rather than specializing on garbage or asserting.
      if (Diags)
        Diags->warning(SourceLoc(),
                       "Selective has no usable profile; "
                       "degrading to CHA (no specialization)");
      planGeneral(P, AC, Plan);
      break;
    }
    SelectiveSpecializer Specializer(P, AC, PT, *CG, Options);
    Specializer.run();
    for (unsigned MI = 0; MI != P.numMethods(); ++MI)
      Plan.VersionsByMethod[MI] = Specializer.specializations()[MI];
    break;
  }
  }
  return Plan;
}

//===- specialize/SelectiveSpecializer.h - Figure 4 algorithm --*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's selective specialization algorithm (Figure 4), with the
/// paper's names kept for the key routines so the code can be read against
/// the pseudocode:
///
///   specializeProgram / specializeMethod / isSpecializableArc /
///   neededInfoForArc / addSpecialization / cascadeSpecializations
///
/// Inputs: the weighted dynamic call graph, ApplicableClasses (class
/// hierarchy analysis) and PassThroughArgs (source analysis).  Output: for
/// each method, the set of class-set tuples for which specialized versions
/// should be compiled, always including the general-purpose version.
///
/// Section 3.4 extensions are also implemented: the default heuristic is a
/// simple weight threshold (1,000 invocations in the paper); alternatively
/// a fixed space budget can be set, in which case arcs are visited in
/// decreasing weight order until the budget is consumed.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_SPECIALIZE_SELECTIVESPECIALIZER_H
#define SELSPEC_SPECIALIZE_SELECTIVESPECIALIZER_H

#include "analysis/ApplicableClasses.h"
#include "analysis/PassThroughArgs.h"
#include "profile/CallGraph.h"
#include "specialize/SpecTuple.h"

namespace selspec {

struct SelectiveOptions {
  /// Minimum Weight(arc) for an arc to be considered (paper: 1,000).
  uint64_t SpecializationThreshold = 1000;
  /// Section 3.3: specialize statically-bound callers so they can still
  /// statically bind to specialized callees.
  bool CascadeSpecializations = true;
  /// Section 3.4 alternative heuristic: when non-zero, ignore the
  /// threshold, visit specializable arcs in decreasing weight order, and
  /// stop once this many additional versions have been created.
  unsigned SpaceBudgetVersions = 0;
  /// Section 3.4's "more intelligent heuristic", sketched but not built
  /// by the paper: rank each candidate arc by estimated benefit/cost —
  /// benefit is the total weight of the caller's specializable arcs that
  /// the candidate's tuple would also statically bind (one specialization
  /// often binds several sites at once), cost is the caller's body size.
  /// Only used together with SpaceBudgetVersions.
  bool UseBenefitCostOrder = false;
  /// Safety valve against the exponential blow-up of combined
  /// specializations that the paper's programs never exhibited (§3.2:
  /// max 8 observed) but that a method with two highly-polymorphic
  /// pass-through formals can trigger.  Arcs are visited hottest-first,
  /// so the cap keeps the most profitable versions.
  unsigned MaxVersionsPerMethod = 16;
};

class SelectiveSpecializer {
public:
  SelectiveSpecializer(const Program &P, const ApplicableClassesAnalysis &AC,
                       const PassThroughAnalysis &PT, const CallGraph &CG,
                       SelectiveOptions Options = {});

  /// Runs specializeProgram(); call once.
  void run();

  /// Per-method specialization tuples ([0] is the general version).
  const std::vector<std::vector<SpecTuple>> &specializations() const {
    return Specializations;
  }

  //===--------------------------------------------------------------------===
  // Paper-named pieces, public so tests can check them directly.
  //===--------------------------------------------------------------------===

  /// An arc is specializable when it has pass-through arguments, when
  /// specializing the caller would actually sharpen its information
  /// (needed != ApplicableClasses[caller]), and when the call site is
  /// dynamically dispatched under the caller's current information.
  bool isSpecializableArc(const Arc &A) const;

  /// Most general caller tuple enabling static binding of \p A to its
  /// callee (maps the callee's ApplicableClasses back through the
  /// pass-through pairs).
  SpecTuple neededInfoForArc(const Arc &A) const;
  SpecTuple neededInfoForArc(const Arc &A, const SpecTuple &CalleeInfo) const;

  struct Stats {
    /// Methods that received at least one specialization.
    unsigned MethodsSpecialized = 0;
    /// Specialized versions added beyond the general versions.
    unsigned VersionsAdded = 0;
    /// Max versions (incl. general) for any single method.
    unsigned MaxVersionsOfAMethod = 0;
    /// Times cascadeSpecializations specialized a caller.
    uint64_t CascadedSpecializations = 0;
    /// Arcs skipped by the blow-up guard.
    uint64_t BlowupGuardHits = 0;
  };
  const Stats &stats() const { return S; }

private:
  void specializeMethod(MethodId Meth);
  void addSpecialization(MethodId Meth, const SpecTuple &Spec);
  void cascadeSpecializations(const Arc &A, const SpecTuple &CalleeSpec);
  bool siteIsDynamic(const Arc &A) const;
  bool hasSpecialization(MethodId Meth, const SpecTuple &T) const;

  const Program &P;
  const ApplicableClassesAnalysis &AC;
  const PassThroughAnalysis &PT;
  const CallGraph &CG;
  SelectiveOptions Options;

  std::vector<std::vector<SpecTuple>> Specializations;
  /// Arcs grouped by caller / by callee, precomputed from CG.
  std::vector<std::vector<Arc>> ArcsFrom;
  std::vector<std::vector<Arc>> ArcsTo;
  Stats S;
  unsigned BudgetUsed = 0;
  bool Ran = false;
};

} // namespace selspec

#endif // SELSPEC_SPECIALIZE_SELECTIVESPECIALIZER_H

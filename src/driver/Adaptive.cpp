//===- driver/Adaptive.cpp - Online adaptive respecialization -------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Adaptive.h"

#include "driver/Overload.h"
#include "profile/ProfileDb.h"
#include "support/Diagnostics.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"

#include <chrono>
#include <cmath>

using namespace selspec;

namespace {

metrics::Counter CtrGenerations("adaptive.generations_built");
metrics::Counter CtrPromotions("adaptive.promotions");
metrics::Counter CtrRollbacks("adaptive.rollbacks");
metrics::Counter CtrBuildFailures("adaptive.build_failures");
metrics::Counter CtrCanaryJobs("adaptive.canary_jobs");
metrics::Counter CtrCanaryTraps("adaptive.canary_traps");
metrics::Counter CtrArcsMerged("adaptive.arcs_merged");
metrics::Counter CtrProfileSaves("adaptive.profile_saves");
metrics::Counter CtrProfileSaveFailures("adaptive.profile_save_failures");
metrics::Counter CtrSkippedBad("adaptive.skipped_bad_profile");
metrics::Counter CtrSkippedUnchanged("adaptive.skipped_unchanged");
metrics::Counter CtrSkippedOverload("adaptive.skipped_overload");
metrics::Counter CtrSwapLatency("adaptive.swap_latency_ns");

/// Canonical hash of a profile generation: fnv1a-64 over arcs() in its
/// deterministic (site, callee) order.  Two CallGraphs with the same arcs
/// hash equal regardless of merge order, which is what lets a rolled-back
/// generation be pinned until genuinely new arcs arrive.
uint64_t profileHash(const CallGraph &G) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  for (const Arc &A : G.arcs()) {
    Mix(A.Site.value());
    Mix(A.Caller.value());
    Mix(A.Callee.value());
    Mix(A.Weight);
  }
  return H;
}

uint64_t strideFor(double CanaryFraction) {
  if (!(CanaryFraction > 0.0))
    return 4;
  if (CanaryFraction > 1.0)
    CanaryFraction = 1.0;
  double S = std::llround(1.0 / CanaryFraction);
  return S < 1 ? 1 : static_cast<uint64_t>(S);
}

} // namespace

AdaptiveController::AdaptiveController(
    std::shared_ptr<const CompiledSnapshot> Incumbent0,
    SnapshotBuilder Builder0, const Options &O)
    : Opts(O), Builder(std::move(Builder0)),
      CanaryStride(strideFor(O.CanaryFraction)),
      Incumbent(std::move(Incumbent0)) {
  Respecializer = std::thread([this] { respecLoop(); });
}

AdaptiveController::~AdaptiveController() { stop(); }

void AdaptiveController::stop() {
  {
    std::lock_guard<std::mutex> Lock(StateM);
    if (Stopping)
      return;
    Stopping = true;
  }
  BgCV.notify_all();
  DecisionCV.notify_all();
  if (Respecializer.joinable())
    Respecializer.join();
}

AdaptiveController::Ticket AdaptiveController::admit() {
  // Destroyed after the lock releases: a verdict rendered inside this
  // call may retire a snapshot, and its destructor (a whole compiled
  // program) must not run under StateM — that would be the swap pause
  // the RCU design exists to avoid.
  std::shared_ptr<const CompiledSnapshot> Drop;
  std::lock_guard<std::mutex> Lock(StateM);
  Ticket T;
  ++Seq;
  // Brown-out rung 1 (driver/Overload.h): under pressure, live-arc
  // profiling is pure overhead — stop sampling until the ladder recovers.
  T.SampleArcs = Opts.SampleEvery != 0 && (Seq % Opts.SampleEvery) == 0 &&
                 overload::allowArcCollection();
  if (Candidate && CanaryIssued < Opts.CanaryJobs &&
      (Seq % CanaryStride) == 0) {
    ++CanaryIssued;
    if (failpoint::triggered("adaptive.canary")) {
      // The injected fault models "routing to the candidate failed": the
      // probe is charged against the candidate's health and the real job
      // serves from the incumbent, so an armed canary failpoint can only
      // ever demote the candidate, never lose a job.
      recordCanaryLocked(/*Ok=*/false, /*Cycles=*/0);
      T.Snap = Incumbent;
    } else {
      T.Snap = Candidate;
      T.Canary = true;
    }
  } else {
    T.Snap = Incumbent;
  }
  // After any verdict recordCanaryLocked may just have rendered, so the
  // ticket is consistent with the snapshot it actually carries.
  T.Epoch = TheEpoch;
  Drop = std::move(Retired);
  return T;
}

void AdaptiveController::report(const Ticket &T, bool Ok, uint64_t Cycles,
                                const CallGraph *Arcs) {
  bool WantBuild = false;
  if (Arcs && !Arcs->empty()) {
    std::lock_guard<std::mutex> Lock(ProfileM);
    LiveProfile.merge(*Arcs);
    NewArcWeight += Arcs->totalWeight();
    CtrArcsMerged.add(Arcs->numArcs());
    WantBuild =
        Opts.ArcWeightThreshold != 0 && NewArcWeight >= Opts.ArcWeightThreshold;
  }
  if (WantBuild)
    requestRespecialize(/*Force=*/false);

  // Declared before the lock so a snapshot retired by a verdict rendered
  // here is destroyed after StateM releases (see admit()).
  std::shared_ptr<const CompiledSnapshot> Drop;
  std::lock_guard<std::mutex> Lock(StateM);
  if (T.Canary) {
    // A canary completion only counts while its candidate is still the
    // candidate; a straggler finishing after the verdict (epoch moved on)
    // must not poison the next candidate's sample.
    if (Candidate && T.Epoch == TheEpoch)
      recordCanaryLocked(Ok, Cycles);
  } else {
    ++LifeJobs;
    ++WindowJobs;
    if (Ok) {
      ++LifeOk;
      ++WindowOk;
      LifeOkCycles += Cycles;
      WindowOkCycles += Cycles;
    } else {
      ++LifeTraps;
      ++WindowTraps;
    }
  }
  Drop = std::move(Retired);
}

void AdaptiveController::recordCanaryLocked(bool Ok, uint64_t Cycles) {
  ++CanaryDone;
  CtrCanaryJobs.add();
  if (Ok) {
    ++CanaryOk;
    CanaryOkCycles += Cycles;
  } else {
    ++CanaryTraps;
    CtrCanaryTraps.add();
  }
  if (CanaryDone >= Opts.CanaryJobs)
    verdictLocked();
}

void AdaptiveController::verdictLocked() {
  std::shared_ptr<const CompiledSnapshot> Cand = std::move(Candidate);
  Candidate.reset();
  uint64_t Hash = CandidateHash;

  // Trap regression: the candidate trapped more often than the incumbent
  // did over the same serving window (lifetime as fallback when the window
  // is empty).  An incumbent that also traps on the workload sets the bar:
  // the candidate only fails this check by being *worse*.
  double CanTrapRate =
      CanaryDone ? double(CanaryTraps) / double(CanaryDone) : 0.0;
  double BaseTrapRate =
      WindowJobs ? double(WindowTraps) / double(WindowJobs)
                 : (LifeJobs ? double(LifeTraps) / double(LifeJobs) : 0.0);
  bool TrapRegress = CanaryTraps > 0 && CanTrapRate > BaseTrapRate;

  // Cost regression: mean modeled cycles per *successful* job, candidate
  // vs incumbent, compared only when both sides have enough sample.
  bool CostRegress = false;
  uint64_t BaseOk = WindowOk ? WindowOk : LifeOk;
  uint64_t BaseOkCycles = WindowOk ? WindowOkCycles : LifeOkCycles;
  if (CanaryOk > 0 && BaseOk >= Opts.MinIncumbentJobs) {
    double CanMean = double(CanaryOkCycles) / double(CanaryOk);
    double BaseMean = double(BaseOkCycles) / double(BaseOk);
    CostRegress = CanMean > BaseMean * Opts.CostRegressionFactor;
  }

  bool Promote = !TrapRegress && !CostRegress;
  if (Promote && failpoint::triggered("adaptive.promote"))
    Promote = false; // Injected swap failure: demote instead.

  if (Promote) {
    auto T0 = std::chrono::steady_clock::now();
    // Pure pointer exchange: the outgoing incumbent parks in Retired and
    // is destroyed by the next admit()/report() after StateM releases.
    Retired = std::move(Incumbent);
    Incumbent = std::move(Cand);
    ++TheEpoch;
    // The whole "pause" an RCU promotion imposes on serving: one pointer
    // assignment under StateM.  Measured so the bench can report its p99.
    uint64_t SwapNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    SwapLatencies.push_back(SwapNs);
    CtrSwapLatency.add(SwapNs);
    ++NumPromoted;
    CtrPromotions.add();
    LastBuiltHash = Hash;
    // The promoted profile is the new baseline; its serving window starts
    // fresh.
    WindowJobs = WindowTraps = WindowOk = WindowOkCycles = 0;
  } else {
    Retired = std::move(Cand);
    rollbackLocked(Hash, TrapRegress ? "trap regression"
                   : CostRegress    ? "cost regression"
                                    : "injected promote failure");
  }
  ++NumDecisions;
  DecisionCV.notify_all();
  // A deferred (forced) request that arrived mid-canary can run now.
  BgCV.notify_all();
}

void AdaptiveController::rollbackLocked(uint64_t ProfileHash,
                                        const char * /*Why*/) {
  // Pin the incumbent: drop the candidate (callers already did), bump the
  // epoch so stragglers and retries know a transition happened, and
  // remember this profile generation as bad so the respecializer will not
  // rebuild it verbatim — only genuinely new arcs (a different hash)
  // unpin respecialization.
  BadProfiles.insert(ProfileHash);
  ++TheEpoch;
  ++NumRolledBack;
  CtrRollbacks.add();
}

bool AdaptiveController::respecializeNow(std::string &ErrorOut, bool Force) {
  // Brown-out rung 2: a background build burns a core and doubles
  // resident compiled state — exactly what an overloaded server cannot
  // afford.  Pressure wins even over a forced (SIGHUP) request; the
  // request is counted as a decision so waiters don't wedge.
  if (!overload::allowRespecialization()) {
    CtrSkippedOverload.add();
    std::lock_guard<std::mutex> Lock(StateM);
    ++NumDecisions;
    DecisionCV.notify_all();
    ErrorOut = "respecialization skipped: overload brown-out (level " +
               std::string(overload::levelName(overload::level())) + ")";
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(StateM);
    if (Candidate) {
      ErrorOut = "respecialization skipped: canary in progress";
      return false;
    }
    if (BuildInProgress) {
      ErrorOut = "respecialization skipped: build in progress";
      return false;
    }
    BuildInProgress = true;
  }
  bool Ok = doBuild(ErrorOut, Force);
  {
    std::lock_guard<std::mutex> Lock(StateM);
    BuildInProgress = false;
  }
  return Ok;
}

bool AdaptiveController::doBuild(std::string &ErrorOut, bool Force) {
  CallGraph Prof;
  {
    std::lock_guard<std::mutex> Lock(ProfileM);
    Prof = LiveProfile;
    NewArcWeight = 0;
  }
  uint64_t Hash = profileHash(Prof);

  {
    std::lock_guard<std::mutex> Lock(StateM);
    if (BadProfiles.count(Hash)) {
      CtrSkippedBad.add();
      ++NumDecisions;
      DecisionCV.notify_all();
      ErrorOut = "respecialization skipped: profile generation previously "
                 "rolled back";
      return false;
    }
    if (!Force && Hash == LastBuiltHash && NumBuilt > 0) {
      CtrSkippedUnchanged.add();
      ++NumDecisions;
      DecisionCV.notify_all();
      ErrorOut = "respecialization skipped: profile unchanged";
      return false;
    }
  }

  auto BuildFailed = [&](const std::string &Why) {
    std::lock_guard<std::mutex> Lock(StateM);
    ++NumBuildFailures;
    CtrBuildFailures.add();
    // A failed build is a rollback in miniature: the incumbent stays
    // pinned and this profile generation is not retried verbatim.
    rollbackLocked(Hash, "build failure");
    ++NumDecisions;
    DecisionCV.notify_all();
    ErrorOut = Why;
    return false;
  };

  if (failpoint::triggered("adaptive.build"))
    return BuildFailed(failpoint::failureMessage("adaptive.build"));

  std::string BuildErr;
  std::shared_ptr<const CompiledSnapshot> Snap = Builder(Prof, BuildErr);
  if (!Snap)
    return BuildFailed(BuildErr.empty() ? "respecialization build failed"
                                        : BuildErr);
  CtrGenerations.add();

  // Persist the merged profile through the checksummed generation chain
  // *before* the candidate serves: a generation we cannot persist is a
  // generation we cannot reproduce after a crash, so it is not trusted.
  if (!Opts.ProfileDbPath.empty()) {
    auto SaveFailed = [&](const std::string &Why) {
      CtrProfileSaveFailures.add();
      return BuildFailed("profile save failed: " + Why);
    };
    if (failpoint::triggered("adaptive.profile-save"))
      return SaveFailed(failpoint::failureMessage("adaptive.profile-save"));
    ProfileDb Db;
    Diagnostics Diags;
    // Extend the chain: load the current generation (absence is fine for
    // the first save), merge, save as generation N+1.
    Db.loadFromFile(Opts.ProfileDbPath, Diags);
    Db.forProgram(Opts.ProgramKey).merge(Prof);
    Diagnostics SaveDiags;
    if (!Db.saveToFile(Opts.ProfileDbPath, SaveDiags))
      return SaveFailed(SaveDiags.all().empty() ? "ProfileDb::saveToFile failed"
                                                : SaveDiags.toString());
    CtrProfileSaves.add();
  }

  {
    std::lock_guard<std::mutex> Lock(StateM);
    ++NumBuilt;
    Candidate = std::move(Snap);
    CandidateHash = Hash;
    LastBuiltHash = Hash;
    CanaryIssued = CanaryDone = CanaryTraps = CanaryOk = CanaryOkCycles = 0;
    // Fresh serving window so the cost baseline is contemporaneous with
    // the canary sample.
    WindowJobs = WindowTraps = WindowOk = WindowOkCycles = 0;
    ++TheEpoch;
  }
  return true;
}

void AdaptiveController::requestRespecialize(bool Force) {
  {
    std::lock_guard<std::mutex> Lock(StateM);
    BuildRequested = true;
    if (Force)
      ForceRequested = true;
  }
  BgCV.notify_all();
}

void AdaptiveController::respecLoop() {
  std::unique_lock<std::mutex> Lock(StateM);
  while (!Stopping) {
    // A pending canary defers builds: the request stays latched, arcs
    // keep accumulating, and the verdict's BgCV notify re-arms us once
    // the slot frees up.  The defer condition must live INSIDE the wait
    // predicate — a predicate that is true on entry returns without ever
    // releasing the mutex, which would spin here holding StateM and
    // wedge every admit()/report()/stop() in the process.
    auto Ready = [&] {
      return Stopping || (BuildRequested && !Candidate && !BuildInProgress);
    };
    if (Opts.RespecializeIntervalMs > 0)
      BgCV.wait_for(Lock,
                    std::chrono::milliseconds(Opts.RespecializeIntervalMs),
                    Ready);
    else
      BgCV.wait(Lock, Ready);
    if (Stopping)
      return;
    // Interval tick while a canary is still pending: keep waiting.
    if (Candidate || BuildInProgress)
      continue;
    bool Force = ForceRequested;
    BuildRequested = ForceRequested = false;
    Lock.unlock();
    std::string Err;
    respecializeNow(Err, Force);
    Lock.lock();
  }
}

void AdaptiveController::seedProfile(const CallGraph &G) {
  std::lock_guard<std::mutex> Lock(ProfileM);
  LiveProfile.merge(G);
}

std::shared_ptr<const CompiledSnapshot> AdaptiveController::incumbent() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return Incumbent;
}

AdaptiveController::Phase AdaptiveController::phase() const {
  std::lock_guard<std::mutex> Lock(StateM);
  if (Candidate)
    return Phase::Canary;
  if (BuildInProgress)
    return Phase::Building;
  return Phase::Stable;
}

uint64_t AdaptiveController::generationsBuilt() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return NumBuilt;
}

uint64_t AdaptiveController::promotions() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return NumPromoted;
}

uint64_t AdaptiveController::rollbacks() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return NumRolledBack;
}

uint64_t AdaptiveController::buildFailures() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return NumBuildFailures;
}

uint64_t AdaptiveController::decisions() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return NumDecisions;
}

uint64_t AdaptiveController::epoch() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return TheEpoch;
}

std::vector<uint64_t> AdaptiveController::swapLatenciesNs() const {
  std::lock_guard<std::mutex> Lock(StateM);
  return SwapLatencies;
}

size_t AdaptiveController::liveProfileArcs() const {
  std::lock_guard<std::mutex> Lock(ProfileM);
  return LiveProfile.numArcs();
}

bool AdaptiveController::waitForDecision(uint64_t PrevDecisions,
                                         int64_t TimeoutMs) {
  std::unique_lock<std::mutex> Lock(StateM);
  return DecisionCV.wait_for(
      Lock, std::chrono::milliseconds(TimeoutMs),
      [&] { return Stopping || NumDecisions > PrevDecisions; });
}

//===- driver/Pipeline.h - End-to-end experiment pipeline ------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the whole system together for the benchmarks, examples and tests:
///
///   load Mica sources -> resolve -> CHA analyses -> profile run (Base)
///   -> plan(config) -> optimize -> measured run -> metrics
///
/// A Workbench holds one program with its analyses and profile so that the
/// five Table 1 configurations can be compared on identical inputs.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_PIPELINE_H
#define SELSPEC_DRIVER_PIPELINE_H

#include "analysis/ApplicableClasses.h"
#include "analysis/PassThroughArgs.h"
#include "driver/Tier.h"
#include "interp/Interpreter.h"
#include "opt/Optimizer.h"
#include "profile/CallGraph.h"
#include "specialize/Strategies.h"
#include "support/Deadline.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selspec {

class CompiledSnapshot;

/// Everything a bench row needs about one (config, input) execution.
struct ConfigResult {
  Config Configuration = Config::Base;
  /// Tier the measured run actually executed on (the requested tier, or
  /// Ast after a bytecode-compilation fallback).  RunStats are tier-
  /// independent by construction; WallNanos is not.
  ExecTier Tier = ExecTier::Ast;
  /// Execution counters of the measured run.
  RunStats Run;
  /// Wall-clock time of the measured run (interpreter dispatch included),
  /// as opposed to the modeled Run.Cycles.
  uint64_t WallNanos = 0;
  /// Figure 6 numbers.
  unsigned CompiledRoutines = 0; ///< static system: all generated versions
  unsigned InvokedRoutines = 0;  ///< dynamic system: invoked versions only
  uint64_t CodeSize = 0;
  /// Optimizer site statistics.
  Optimizer::Stats Opt;
  /// Selective-only: specializer statistics.
  std::optional<SelectiveSpecializer::Stats> Specializer;
  /// Program output of the measured run (for output-equivalence checks).
  std::string Output;
  /// Trap kind of the measured run; None for a completed run.  Present so
  /// downstream consumers (benches) can assert completeness explicitly.
  TrapKind Trap = TrapKind::None;
};

class Workbench {
public:
  /// Loads and resolves a program.  \p Files are resolved against
  /// SELSPEC_MICA_DIR when relative; the standard library is prepended
  /// unless \p WithStdlib is false.  Null + message in \p ErrorOut on
  /// failure.
  static std::unique_ptr<Workbench>
  fromFiles(const std::vector<std::string> &Files, std::string &ErrorOut,
            bool WithStdlib = true, const CancelToken *Cancel = nullptr);

  /// Same, from in-memory sources (tests, examples).
  static std::unique_ptr<Workbench>
  fromSources(const std::vector<std::string> &Sources, std::string &ErrorOut,
              bool WithStdlib = false, const CancelToken *Cancel = nullptr);

  /// Runs the Base-compiled program on `main(Input)` collecting the
  /// weighted call graph.  May be called several times (profiles merge).
  bool collectProfile(int64_t Input, std::string &ErrorOut);

  /// Compiles under \p C and runs `main(Input)`.  Implemented as
  /// buildSnapshot() + CompiledSnapshot::run(): the single-shot path is a
  /// degenerate serve of one job.
  std::optional<ConfigResult>
  runConfig(Config C, int64_t Input, std::string &ErrorOut,
            const SelectiveOptions &Sel = {},
            const OptimizerOptions &OptOpts = {},
            const CostModel &Costs = {});

  /// Compiles under \p C into an immutable, shareable CompiledSnapshot
  /// (driver/Snapshot.h) that any number of threads can run() jobs
  /// against concurrently.  Null when a phase gate stopped compilation
  /// (armed failpoint or expired deadline) — reason in \p ErrorOut /
  /// diagnostics() / lastTrap().  Pass this workbench's own shared_ptr as
  /// \p Keep to let the snapshot outlive the caller (serving); with a
  /// null \p Keep the workbench must outlive the snapshot.
  std::shared_ptr<const CompiledSnapshot>
  buildSnapshot(Config C, std::string &ErrorOut,
                const SelectiveOptions &Sel = {},
                const OptimizerOptions &OptOpts = {},
                std::shared_ptr<Workbench> Keep = nullptr);

  /// Compiles under \p C without running (plan/code-space studies).
  /// Null when a phase gate stopped compilation (armed failpoint or an
  /// expired deadline) — the reason is in diagnostics()/lastTrap().
  std::unique_ptr<CompiledProgram>
  compileOnly(Config C, const SelectiveOptions &Sel = {},
              const OptimizerOptions &OptOpts = {});

  /// Loads the profile database at \p Path and merges the graph recorded
  /// under \p Key into this workbench's profile, validating every arc
  /// against the resolved program first.  Unreadable or malformed files
  /// fail (errors in \p Diags); stale arcs are dropped with warnings and a
  /// missing \p Key entry only warns — both leave a smaller (possibly
  /// empty) profile, which Selective then degrades on gracefully.
  bool loadProfileDb(const std::string &Path, const std::string &Key,
                     Diagnostics &Diags);

  /// Resource guards applied to every profile and measured run.
  void setLimits(const ResourceLimits &L) { Limits = L; }
  const ResourceLimits &limits() const { return Limits; }

  /// Execution tier for profile and measured runs.  Defaults to
  /// defaultTier() (bytecode, unless SELSPEC_TIER overrides).  When the
  /// bytecode compiler cannot lower the program, runs fall back to the
  /// AST tier with a warning in diagnostics().
  void setTier(ExecTier T) { Tier = T; }
  ExecTier tier() const { return Tier; }

  /// Cooperative stop signal checked at every phase boundary and polled
  /// inside the interpreter; an expired deadline fails the current phase
  /// with TrapKind::DeadlineExceeded instead of wedging the process.
  /// The token must outlive the workbench's use of it.
  void setCancelToken(const CancelToken *T) { Cancel = T; }
  const CancelToken *cancelToken() const { return Cancel; }

  /// Structured failure of the most recent failed run (profile or
  /// measured); Kind == None when the last run succeeded.
  const RuntimeTrap &lastTrap() const { return LastTrap; }

  /// Warnings accumulated by planning (e.g. Selective degrading to CHA
  /// without a usable profile).  Callers may render and clear.
  Diagnostics &diagnostics() { return Diags; }

  Program &program() { return *P; }
  const ApplicableClassesAnalysis &applicableClasses() const { return *AC; }
  const PassThroughAnalysis &passThrough() const { return *PT; }
  CallGraph &profile() { return Profile; }
  bool hasProfile() const { return !Profile.empty(); }

  /// Source line count (Table 2).
  unsigned sourceLines() const { return SourceLines; }

  /// Reads a Mica file (resolving relative paths against
  /// SELSPEC_MICA_DIR); empty optional on I/O failure.
  static std::optional<std::string> readMicaFile(const std::string &Name);

private:
  Workbench() = default;
  bool init(const std::vector<std::string> &Sources, std::string &ErrorOut);
  /// Phase-boundary gate: fails with a Diagnostic when the named
  /// failpoint is armed, or with a DeadlineExceeded LastTrap when the
  /// cancel token asks to stop before \p Phase begins.
  bool phaseGate(const char *FailpointName, const char *Phase,
                 std::string &ErrorOut);

  std::unique_ptr<Program> P;
  std::unique_ptr<ApplicableClassesAnalysis> AC;
  std::unique_ptr<PassThroughAnalysis> PT;
  CallGraph Profile;
  ResourceLimits Limits;
  ExecTier Tier = defaultTier();
  const CancelToken *Cancel = nullptr;
  RuntimeTrap LastTrap;
  Diagnostics Diags;
  unsigned SourceLines = 0;
};

} // namespace selspec

#endif // SELSPEC_DRIVER_PIPELINE_H

//===- driver/Tier.cpp - Execution tier selection --------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Tier.h"

#include <cstdlib>

using namespace selspec;

const char *selspec::tierName(ExecTier T) {
  switch (T) {
  case ExecTier::Ast:
    return "ast";
  case ExecTier::Bytecode:
    return "bytecode";
  }
  return "?";
}

std::optional<ExecTier> selspec::parseTier(const std::string &Name) {
  if (Name == "ast")
    return ExecTier::Ast;
  if (Name == "bytecode")
    return ExecTier::Bytecode;
  return std::nullopt;
}

ExecTier selspec::defaultTier() {
  if (const char *Env = std::getenv("SELSPEC_TIER"))
    if (std::optional<ExecTier> T = parseTier(Env))
      return *T;
  return ExecTier::Bytecode;
}

//===- driver/Adaptive.h - Online adaptive respecialization ----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the paper's offline profile -> specialize -> recompile loop into
/// an online one: an AdaptiveController owns the *incumbent*
/// CompiledSnapshot a serving loop runs jobs against, merges live
/// call-graph arcs collected from those jobs (JobOptions::CollectArcs),
/// and respecializes in a background thread.  A freshly built *candidate*
/// is never trusted: it first serves a bounded canary fraction of jobs
/// while a health monitor compares its trap rate and modeled per-job cost
/// against the incumbent, and only a healthy candidate is promoted — an
/// RCU-style shared_ptr swap, so in-flight jobs always finish on the
/// snapshot they started on and the serving loop never pauses.
///
/// Robustness invariants (DESIGN.md section 12; enforced by
/// tests/AdaptiveTests.cpp and the adaptive ResilienceTests):
///
///   - the incumbent is only ever *replaced by* a candidate that finished
///     its canary with no trap regression and no cost regression — a bad
///     respecialization can demote itself, never the serving loop;
///   - any failure in the build -> save -> canary -> promote chain
///     (including every `adaptive.*` failpoint) rolls back to the
///     incumbent and records the profile generation's hash so the same
///     profile is not retried verbatim (new arcs unpin it);
///   - health accounting, routing, and the swap share one mutex and no
///     job execution ever happens under it, so a wedged build can slow
///     respecialization but not serving.
///
/// The controller is policy + state machine only: it builds candidates
/// through a caller-supplied SnapshotBuilder callback (micad wires the
/// real Workbench pipeline in; tests wire in synthetic good/trapping/slow
/// builders), which is what makes the rollback paths testable at all.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_ADAPTIVE_H
#define SELSPEC_DRIVER_ADAPTIVE_H

#include "driver/Snapshot.h"
#include "profile/CallGraph.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace selspec {

class AdaptiveController {
public:
  struct Options {
    /// Fraction of admitted jobs routed to a candidate while it canaries
    /// (clamped to (0, 1]); the rest stay on the incumbent.
    double CanaryFraction = 0.25;
    /// Canary sample size: candidate job completions needed for a
    /// promote/rollback verdict.
    unsigned CanaryJobs = 16;
    /// Cost regression bound: reject the candidate when its mean modeled
    /// cycles per successful job exceed the incumbent's mean times this.
    double CostRegressionFactor = 1.15;
    /// Incumbent successful-job sample below which the cost comparison is
    /// skipped (too little baseline to call a regression).
    unsigned MinIncumbentJobs = 4;
    /// Request a respecialization once this much new arc weight has been
    /// merged since the last build (0 = no threshold trigger).
    uint64_t ArcWeightThreshold = 0;
    /// Periodic respecialization cadence (0 = only on request/threshold).
    int64_t RespecializeIntervalMs = 0;
    /// Collect arcs from every Nth admitted job (1 = all, 0 = never).
    /// Unsampled jobs run with a null profile hook — the hot path stays
    /// atomic-free exactly as in non-adaptive serving.
    uint64_t SampleEvery = 1;
    /// Persist the merged live profile through the crash-safe checksummed
    /// ProfileDb generation chain at this path ("" = no persistence).
    std::string ProfileDbPath;
    /// ProfileDb program key for the persisted generations.
    std::string ProgramKey = "adaptive";
  };

  /// Builds a candidate snapshot from the merged live profile.  Called
  /// off the serving path (background thread or respecializeNow caller);
  /// null + message on failure.  Must be thread-compatible with
  /// concurrent snapshot runs (the usual Workbench-per-build pipeline is).
  using SnapshotBuilder =
      std::function<std::shared_ptr<const CompiledSnapshot>(
          const CallGraph &Profile, std::string &ErrorOut)>;

  enum class Phase : uint8_t { Stable, Building, Canary };

  /// One admitted job's routing decision.  The shared_ptr keeps the
  /// chosen snapshot alive for the whole run, which is the entire
  /// in-flight-jobs-survive-the-swap story.
  struct Ticket {
    std::shared_ptr<const CompiledSnapshot> Snap;
    /// True when this job serves from the candidate (canary traffic).
    bool Canary = false;
    /// True when this job should run with JobOptions::CollectArcs.
    bool SampleArcs = false;
    /// Controller epoch at admission; a mismatch at completion means a
    /// promotion/rollback happened while the job ran.
    uint64_t Epoch = 0;
  };

  /// \p Incumbent must be a healthy snapshot (it serves immediately).
  AdaptiveController(std::shared_ptr<const CompiledSnapshot> Incumbent,
                     SnapshotBuilder Builder, const Options &O);
  /// Stops the background thread; outstanding tickets remain valid (they
  /// own their snapshots) but late report()s are dropped.
  ~AdaptiveController();

  AdaptiveController(const AdaptiveController &) = delete;
  AdaptiveController &operator=(const AdaptiveController &) = delete;

  /// Per-job routing: the snapshot this job must run on.  Serving paths
  /// call this instead of holding their own snapshot pointer.
  Ticket admit();

  /// Report a finished job: success flag, modeled cycles of a successful
  /// run (0 for failures), and the arcs it collected (null when not
  /// sampled).  Drives both the live profile and the canary verdict.
  void report(const Ticket &T, bool Ok, uint64_t Cycles,
              const CallGraph *Arcs);

  /// The incumbent right now (retries after a transient failure run on
  /// this, never on a candidate).
  std::shared_ptr<const CompiledSnapshot> incumbent() const;

  /// Asks the background thread to respecialize now (SIGHUP path).
  /// Forced requests rebuild even when the profile hash is unchanged.
  void requestRespecialize(bool Force = true);

  /// Synchronous respecialization: builds and installs a candidate from
  /// the current merged profile (tests, and the background thread's
  /// worker).  False + reason when the build is skipped (canary already
  /// in progress, profile pinned bad or unchanged) or fails/rolls back.
  bool respecializeNow(std::string &ErrorOut, bool Force = false);

  /// Merges \p G into the live profile without attributing it to a job
  /// (seeding from a loaded ProfileDb generation at startup).
  void seedProfile(const CallGraph &G);

  /// Stops the background respecializer (idempotent; destructor calls it).
  void stop();

  Phase phase() const;
  uint64_t generationsBuilt() const;
  uint64_t promotions() const;
  uint64_t rollbacks() const;
  uint64_t buildFailures() const;
  /// Terminal outcomes of requested builds: promotions + rollbacks +
  /// build failures + skips.  waitForDecision() keys off this.
  uint64_t decisions() const;
  /// Epoch increments on candidate install, promotion, and rollback.
  uint64_t epoch() const;
  /// Nanoseconds each promotion's pointer swap held the state lock.
  std::vector<uint64_t> swapLatenciesNs() const;
  /// Current merged live-profile arc count (tests).
  size_t liveProfileArcs() const;

  /// Blocks until decisions() > \p PrevDecisions or \p TimeoutMs passes.
  bool waitForDecision(uint64_t PrevDecisions, int64_t TimeoutMs);

private:
  void respecLoop();
  bool doBuild(std::string &ErrorOut, bool Force);
  /// StateM held.  Records one canary completion and renders the verdict
  /// once the sample is complete.
  void recordCanaryLocked(bool Ok, uint64_t Cycles);
  /// StateM held.  Promote-or-rollback once CanaryDone == CanaryJobs.
  void verdictLocked();
  /// StateM held.  Demotes the candidate (or the not-yet-installed build
  /// identified by \p ProfileHash) and pins the profile generation.
  void rollbackLocked(uint64_t ProfileHash, const char *Why);

  const Options Opts;
  const SnapshotBuilder Builder;
  const uint64_t CanaryStride;

  mutable std::mutex StateM;
  std::condition_variable DecisionCV;
  std::condition_variable BgCV;
  std::shared_ptr<const CompiledSnapshot> Incumbent;
  std::shared_ptr<const CompiledSnapshot> Candidate;
  uint64_t CandidateHash = 0;
  uint64_t Seq = 0;
  uint64_t TheEpoch = 0;
  bool BuildInProgress = false;
  bool BuildRequested = false;
  bool ForceRequested = false;
  bool Stopping = false;

  // Canary health sample (reset per candidate).
  uint64_t CanaryIssued = 0;
  uint64_t CanaryDone = 0;
  uint64_t CanaryTraps = 0;
  uint64_t CanaryOk = 0;
  uint64_t CanaryOkCycles = 0;
  // Incumbent window since the candidate was installed (cost baseline).
  uint64_t WindowJobs = 0;
  uint64_t WindowTraps = 0;
  uint64_t WindowOk = 0;
  uint64_t WindowOkCycles = 0;
  // Lifetime incumbent tallies (baseline fallback for early canaries).
  uint64_t LifeJobs = 0;
  uint64_t LifeTraps = 0;
  uint64_t LifeOk = 0;
  uint64_t LifeOkCycles = 0;

  uint64_t NumBuilt = 0;
  uint64_t NumPromoted = 0;
  uint64_t NumRolledBack = 0;
  uint64_t NumBuildFailures = 0;
  uint64_t NumDecisions = 0;
  uint64_t LastBuiltHash = 0;
  std::unordered_set<uint64_t> BadProfiles;
  std::vector<uint64_t> SwapLatencies;
  /// Snapshot displaced by the latest verdict, parked so its destructor
  /// (a whole compiled program) runs outside StateM — admit()/report()
  /// drain it after unlocking.
  std::shared_ptr<const CompiledSnapshot> Retired;

  mutable std::mutex ProfileM;
  CallGraph LiveProfile;
  uint64_t NewArcWeight = 0;

  std::thread Respecializer;
};

} // namespace selspec

#endif // SELSPEC_DRIVER_ADAPTIVE_H

//===- driver/Report.cpp - Table formatting for benches --------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

using namespace selspec;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Width(Header.size(), 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Width[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Width[I] = std::max(Width[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I)
        OS << "  ";
      if (I == 0)
        OS << std::left << std::setw(static_cast<int>(Width[I])) << Row[I];
      else
        OS << std::right << std::setw(static_cast<int>(Width[I])) << Row[I];
    }
    OS << '\n';
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Width)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string TextTable::ratio(double V) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(2) << V;
  return OS.str();
}

std::string TextTable::count(uint64_t V) {
  std::string Raw = std::to_string(V);
  std::string Out;
  int Pos = 0;
  for (auto It = Raw.rbegin(); It != Raw.rend(); ++It) {
    if (Pos && Pos % 3 == 0)
      Out.push_back(',');
    Out.push_back(*It);
    ++Pos;
  }
  return std::string(Out.rbegin(), Out.rend());
}

std::string TextTable::percentDelta(double Value, double Baseline) {
  if (Baseline == 0)
    return "n/a";
  double Delta = (Value / Baseline - 1.0) * 100.0;
  std::ostringstream OS;
  OS << (Delta >= 0 ? "+" : "") << std::fixed << std::setprecision(0)
     << Delta << '%';
  return OS.str();
}

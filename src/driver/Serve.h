//===- driver/Serve.h - In-process thread-pool job serving -----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-queue thread pool that executes jobs against shared
/// CompiledSnapshots.  This is the in-process alternative to micad's
/// fork-per-job isolation: no exec, no pipes, no page-table churn — a job
/// is just a CompiledSnapshot::run() on a pooled thread, with its own
/// CancelToken (deadline + cooperative cancel, polled by the interpreter's
/// chargeNode cadence) and its own metrics delta.
///
/// Backpressure is by blocking by default: submit() waits while the queue
/// is at capacity, so a replay loop can never race ahead of the pool
/// unbounded.  Two overload-resilience admission modes relax that
/// (DESIGN.md section 13): a bounded submit wait (Options::MaxSubmitWaitMs)
/// sheds the job instead of blocking past the bound, and deadline-aware
/// admission (Options::DeadlineAwareAdmission) sheds a job at submit time
/// when the estimated queue wait at the current depth already exceeds the
/// job's own latency budget — a definite `Admit::Shed` verdict the caller
/// reports, instead of a queue the job was never going to survive.  Every
/// admission outcome is visible in the metrics registry: the
/// `serve.queue_depth` / `serve.queue_peak` gauges and the `serve.shed`
/// counter, alongside the `serve.mem_*` gauges maintained by
/// support/MemoryBudget.  Queue observations also tick the process-wide
/// overload governor (driver/Overload.h), which drives brown-out.
///
/// Completions are serialized — the completion callback is invoked by
/// worker threads one at a time, so callers may write to a shared sink
/// (stdout, a results vector) without their own locking.
///
/// Shutdown semantics (micad's SIGTERM/SIGINT drain is built on these):
/// close() stops admission; cancelInFlight() requests cooperative cancel
/// of every running job; shutdown(CancelQueued) closes, optionally drops
/// still-queued jobs (reported with Cancelled = true), and joins once the
/// last in-flight job finishes.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_SERVE_H
#define SELSPEC_DRIVER_SERVE_H

#include "driver/Snapshot.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace selspec {

class ServeEngine {
public:
  struct Options {
    /// Worker threads; clamped to at least 1.
    unsigned Threads = 4;
    /// Bounded queue depth; submit() blocks when full (backpressure).
    size_t QueueCapacity = 64;
    /// Shed a deadline-bearing job at submit when the estimated queue
    /// wait (EWMA of recent run times x queue depth / threads) already
    /// exceeds the job's DeadlineMs.  Jobs without a deadline are never
    /// shed by this check.
    bool DeadlineAwareAdmission = false;
    /// >= 0: bounded-wait submit — wait at most this long for queue
    /// space, then return Admit::Shed.  < 0: block indefinitely (the
    /// legacy backpressure contract).
    int64_t MaxSubmitWaitMs = -1;
  };

  /// submit() verdict.  Scoped (not bool) on purpose: every call site
  /// must decide what a shed means for its accounting.
  enum class Admit : uint8_t {
    /// Enqueued; exactly one completion will fire for the job.
    Accepted,
    /// Load-shed (queue-wait bound or deadline-aware admission); the job
    /// was NOT enqueued and no completion fires for it.
    Shed,
    /// The engine is closed; not enqueued, no completion.
    Closed,
  };

  struct Job {
    std::string Id;
    std::shared_ptr<const CompiledSnapshot> Snapshot;
    int64_t Input = 0;
    /// <= 0: no deadline.  Counted from the moment the job *starts*, not
    /// from submission (queue wait is reported separately).
    int64_t DeadlineMs = 0;
    ResourceLimits Limits;
    CostModel Costs;
    bool CaptureOutput = true;
    bool CollectMetricsDelta = true;
    /// Record the job's call-graph arcs into Completion::Result.Arcs
    /// (adaptive live profiling; see CompiledSnapshot::JobOptions).
    bool CollectArcs = false;
  };

  struct Completion {
    Job TheJob;
    CompiledSnapshot::JobResult Result;
    /// True for a job dropped from the queue by shutdown(CancelQueued)
    /// before it ever started; Result is untouched in that case.
    bool Cancelled = false;
    uint64_t QueueNanos = 0;
    uint64_t RunNanos = 0;
  };

  /// Invoked once per submitted job, serialized (never concurrently),
  /// from a worker thread (or the shutdown caller, for dropped jobs).
  using CompletionFn = std::function<void(Completion &&)>;

  ServeEngine(const Options &O, CompletionFn OnDone);
  /// Implicit shutdown(false): drains the queue, joins the workers.
  ~ServeEngine();

  ServeEngine(const ServeEngine &) = delete;
  ServeEngine &operator=(const ServeEngine &) = delete;

  /// Enqueues \p J, blocking while the queue is at capacity (subject to
  /// Options::MaxSubmitWaitMs and Options::DeadlineAwareAdmission — see
  /// Admit).  Only Admit::Accepted jobs ever produce a completion.
  Admit submit(Job J);

  /// Stops admission; queued and in-flight jobs still run to completion.
  void close();

  /// Cooperatively cancels every currently-running job (their tokens'
  /// requestCancel; the interpreters trap with DeadlineExceeded at the
  /// next poll).  Queued jobs are unaffected.  Signal-safe it is NOT —
  /// call from normal context after a sig_atomic_t flag, as micad does.
  void cancelInFlight();

  /// close() + optionally drop still-queued jobs (completing them with
  /// Cancelled = true) + wait for in-flight jobs + join all workers.
  /// Idempotent.
  void shutdown(bool CancelQueued);

  unsigned threads() const { return NumThreads; }
  size_t queued() const;
  size_t inFlight() const;

private:
  struct QueuedJob {
    Job J;
    std::chrono::steady_clock::time_point Enqueued;
  };

  void workerLoop(unsigned Slot);
  /// M held.  Publishes the queue-depth gauges after a push/pop.
  void noteQueueDepthLocked();

  CompletionFn OnDone;
  const Options Opt;
  unsigned NumThreads;
  size_t Capacity;
  /// EWMA of completed jobs' RunNanos (alpha = 1/8); the service-time
  /// estimate behind deadline-aware admission.  0 until the first
  /// completion (admission checks are skipped until then).
  std::atomic<uint64_t> EwmaRunNanos{0};
  /// Highest queue depth seen (gauge `serve.queue_peak`), guarded by M.
  size_t QueuePeak = 0;

  mutable std::mutex M;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::condition_variable AllDone;
  std::deque<QueuedJob> Queue;
  /// Per-worker-slot token of the running job, guarded by M; null when
  /// the slot is idle.  Set/cleared under M so cancelInFlight() can
  /// safely reach tokens that live on worker stacks.
  std::vector<CancelToken *> Active;
  size_t Running = 0;
  bool Closed = false;
  bool Joined = false;

  /// Serializes OnDone invocations.
  std::mutex DoneM;

  std::vector<std::thread> Workers;
};

} // namespace selspec

#endif // SELSPEC_DRIVER_SERVE_H

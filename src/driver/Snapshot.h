//===- driver/Snapshot.h - Immutable compiled program snapshots -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once/run-many boundary of the serving story.  A
/// CompiledSnapshot bundles everything a measured run needs — the
/// optimized CompiledProgram, its bytecode module (when the tier allows),
/// and the immutable DispatchTables — behind a const surface, so one
/// snapshot can execute any number of jobs on any number of threads
/// concurrently.  The immutability contract (DESIGN.md section 11):
///
///   - shared and read-only: Program/AST, CompiledProgram bodies and
///     layouts, BcModule instruction streams and site tables,
///     DispatchTables;
///   - per-thread, created per job by run(): Interpreter or
///     BytecodeInterpreter with its FramePool, argument stack, Heap,
///     Dispatcher memo/PIC cache, and bytecode IC side-tables;
///   - the one documented exception: CompiledProgram's atomic invoked
///     bits (monotonic relaxed stores, Figure 6 accounting).
///
/// A job's RunStats are bit-identical to a single-threaded run of the
/// same job because no adaptive state crosses threads (enforced by
/// tests/ServeTests.cpp on both tiers).
///
/// SnapshotCache memoizes snapshots under a caller-chosen string key —
/// conventionally makeKey(sources, config, tier, profile tag) — so a
/// serving loop compiles each distinct program once and shares the
/// result; concurrent requests for the same key block on a single build.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_SNAPSHOT_H
#define SELSPEC_DRIVER_SNAPSHOT_H

#include "bytecode/Bytecode.h"
#include "driver/Pipeline.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace selspec {

class CompiledSnapshot {
public:
  /// Compile-time facts baked into every ConfigResult run() produces.
  struct BuildInfo {
    Config Configuration = Config::Base;
    /// Tier the snapshot actually serves (Ast after a bytecode-lowering
    /// fallback).
    ExecTier Tier = ExecTier::Ast;
    Optimizer::Stats Opt;
    std::optional<SelectiveSpecializer::Stats> Specializer;
    unsigned CompiledRoutines = 0;
    uint64_t CodeSize = 0;
  };

  /// Per-job knobs; everything else is baked into the snapshot.
  struct JobOptions {
    ResourceLimits Limits;
    /// Per-job stop signal (deadline and/or external cancel).
    const CancelToken *Cancel = nullptr;
    CostModel Costs;
    /// Capture `print` output into the result (off for load tests).
    bool CaptureOutput = true;
    /// Fill JobResult::MetricsDelta (see below).
    bool CollectMetricsDelta = false;
    /// Record this job's weighted call-graph arcs into JobResult::Arcs
    /// (live profiling for adaptive respecialization).  The arcs land in
    /// a job-private CallGraph on the interpreter's stack — no shared
    /// state, no atomics — and are merged by the caller afterwards, the
    /// same publish-after-run scheme the metrics deltas use.  RunStats
    /// are unaffected.
    bool CollectArcs = false;
  };

  struct JobResult {
    bool Ok = false;
    /// Bench-compatible result row; Run/WallNanos/Output are this job's,
    /// the compile-time fields come from buildInfo().
    ConfigResult R;
    /// Structured failure when !Ok (Kind == DeadlineExceeded for a job
    /// that ran past its deadline or was cancelled).
    RuntimeTrap Trap;
    /// Rendered failure message when !Ok.
    std::string Error;
    /// The exact per-counter increments this job published onto the
    /// process-wide metrics registry (interp.*, dispatcher.*, and on the
    /// bytecode tier bytecode.*), keyed by registry counter name.  Summing
    /// the deltas of every job equals the registry totals for those
    /// counters (tested), which is what makes per-job observability of a
    /// multi-threaded server exact rather than sampled.
    std::vector<std::pair<std::string, uint64_t>> MetricsDelta;
    /// This job's weighted arcs (JobOptions::CollectArcs); empty
    /// otherwise.  Site/method ids are those of the snapshot's Program,
    /// so arcs from any job against any snapshot of the same sources
    /// merge into one coherent live profile.
    CallGraph Arcs;
  };

  /// Executes `main(Input)` on a fresh interpreter over this snapshot.
  /// Const and re-entrant: safe from any number of threads concurrently.
  JobResult run(int64_t Input, const JobOptions &Opts) const;
  JobResult run(int64_t Input) const { return run(Input, JobOptions()); }

  const Program &program() const { return CP->program(); }
  const CompiledProgram &compiled() const { return *CP; }
  /// Non-null iff tier() == Bytecode.
  const BcModule *bytecode() const {
    return Tier == ExecTier::Bytecode ? &Mod : nullptr;
  }
  const DispatchTables &tables() const { return *Tables; }
  ExecTier tier() const { return Tier; }
  Config configuration() const { return Info.Configuration; }
  const BuildInfo &buildInfo() const { return Info; }

private:
  friend class Workbench;
  CompiledSnapshot() = default;

  /// Keeps the source Workbench (Program, AST, profile) alive when the
  /// snapshot owns its provenance (serving); null when the caller
  /// guarantees the workbench outlives the snapshot (runConfig).
  std::shared_ptr<Workbench> Keeper;
  std::unique_ptr<CompiledProgram> CP;
  /// Valid iff Tier == Bytecode.
  BcModule Mod;
  std::unique_ptr<DispatchTables> Tables;
  ExecTier Tier = ExecTier::Ast;
  BuildInfo Info;
};

/// Process-wide snapshot memo: one build per key, shared by every serving
/// thread.  Thread-safe; concurrent getOrBuild calls for one key block
/// while the first caller builds.  Failed builds are not cached.
class SnapshotCache {
public:
  using Builder =
      std::function<std::shared_ptr<const CompiledSnapshot>(std::string &)>;

  /// The canonical cache key: program identity (file list or source
  /// digest), configuration, tier, and a profile tag (training input or
  /// profile-db generation) — a new profile generation yields a new key,
  /// which is how snapshot reuse is invalidated across generations.
  static std::string makeKey(const std::vector<std::string> &Sources,
                             Config C, ExecTier T,
                             const std::string &ProfileTag);

  /// Returns the snapshot cached under \p Key, invoking \p Build to
  /// create it on first use.  Null + message in \p ErrorOut when the
  /// build fails (the failure is not cached; a later call retries).
  std::shared_ptr<const CompiledSnapshot>
  getOrBuild(const std::string &Key, const Builder &Build,
             std::string &ErrorOut);

  /// Drops the entry for \p Key (e.g. its profile generation went stale).
  void invalidate(const std::string &Key);
  void clear();
  size_t size() const;

private:
  struct Entry {
    std::mutex M;
    std::condition_variable CV;
    bool Building = false;
    std::shared_ptr<const CompiledSnapshot> Snap;
  };

  mutable std::mutex M;
  std::unordered_map<std::string, std::shared_ptr<Entry>> Map;
};

} // namespace selspec

#endif // SELSPEC_DRIVER_SNAPSHOT_H

//===- driver/Tier.h - Execution tier selection ----------------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two execution tiers: the instrumented AST walker and the flat
/// register-bytecode interpreter.  Both charge the identical cost model
/// and produce bit-identical RunStats; the bytecode tier is the faster
/// default, the AST tier remains the semantic reference.  Selection flows
/// through `micac --tier=`, the SELSPEC_TIER environment variable (which
/// also covers micad), and Workbench::setTier.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_TIER_H
#define SELSPEC_DRIVER_TIER_H

#include <cstdint>
#include <optional>
#include <string>

namespace selspec {

enum class ExecTier : uint8_t {
  Ast,      ///< Tree-walking reference interpreter.
  Bytecode, ///< Flat register bytecode with baked-in inline caches.
};

/// "ast" / "bytecode".
const char *tierName(ExecTier T);

/// Parses a tier name; nullopt when unrecognized.
std::optional<ExecTier> parseTier(const std::string &Name);

/// The process default: Bytecode, unless SELSPEC_TIER names another tier
/// (an unrecognized value is ignored).
ExecTier defaultTier();

} // namespace selspec

#endif // SELSPEC_DRIVER_TIER_H

//===- driver/Pipeline.cpp - End-to-end experiment pipeline ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "bytecode/BytecodeCompiler.h"
#include "bytecode/BytecodeInterpreter.h"
#include "driver/Snapshot.h"
#include "profile/ProfileDb.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/PhaseTimer.h"

#include <chrono>
#include <fstream>
#include <sstream>

using namespace selspec;

#ifndef SELSPEC_MICA_DIR
#define SELSPEC_MICA_DIR "mica"
#endif

std::optional<std::string>
Workbench::readMicaFile(const std::string &Name) {
  std::string Path = Name;
  if (!Path.empty() && Path[0] != '/')
    Path = std::string(SELSPEC_MICA_DIR) + "/" + Path;
  std::ifstream IS(Path);
  if (!IS)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return Buf.str();
}

bool Workbench::phaseGate(const char *FailpointName, const char *Phase,
                          std::string &ErrorOut) {
  if (failpoint::anyArmed() && failpoint::triggered(FailpointName)) {
    ErrorOut = failpoint::failureMessage(FailpointName);
    LastTrap.reset();
    Diags.error(SourceLoc(), ErrorOut);
    return false;
  }
  if (Cancel && Cancel->stopRequested()) {
    metrics::named("deadline.expired").add();
    LastTrap.reset();
    LastTrap.Kind = TrapKind::DeadlineExceeded;
    LastTrap.Message = Cancel->reason() + " (before " + Phase + ")";
    ErrorOut = LastTrap.Message;
    return false;
  }
  return true;
}

bool Workbench::init(const std::vector<std::string> &Sources,
                     std::string &ErrorOut) {
  P = std::make_unique<Program>();
  P->addBuiltins();
  Diagnostics Diags;
  {
    PhaseTimer::Scope Timing("parse");
    for (const std::string &Src : Sources) {
      SourceLines += static_cast<unsigned>(
          std::count(Src.begin(), Src.end(), '\n'));
      if (!P->addSource(Src, Diags)) {
        ErrorOut = Diags.toString();
        return false;
      }
    }
  }
  if (!phaseGate("pipeline.parse", "resolve", ErrorOut))
    return false;
  {
    PhaseTimer::Scope Timing("resolve");
    if (!P->resolve(Diags)) {
      ErrorOut = Diags.toString();
      return false;
    }
  }
  if (!phaseGate("pipeline.resolve", "cha", ErrorOut))
    return false;
  {
    PhaseTimer::Scope Timing("cha");
    AC = std::make_unique<ApplicableClassesAnalysis>(*P);
    PT = std::make_unique<PassThroughAnalysis>(*P);
  }
  if (!phaseGate("pipeline.cha", "planning", ErrorOut))
    return false;
  return true;
}

std::unique_ptr<Workbench>
Workbench::fromSources(const std::vector<std::string> &Sources,
                       std::string &ErrorOut, bool WithStdlib,
                       const CancelToken *Cancel) {
  std::vector<std::string> All;
  if (WithStdlib) {
    std::optional<std::string> Stdlib = readMicaFile("stdlib.mica");
    if (!Stdlib) {
      ErrorOut = "cannot read stdlib.mica from " SELSPEC_MICA_DIR;
      return nullptr;
    }
    All.push_back(std::move(*Stdlib));
  }
  for (const std::string &S : Sources)
    All.push_back(S);

  auto W = std::unique_ptr<Workbench>(new Workbench());
  W->Cancel = Cancel;
  if (!W->init(All, ErrorOut))
    return nullptr;
  return W;
}

std::unique_ptr<Workbench>
Workbench::fromFiles(const std::vector<std::string> &Files,
                     std::string &ErrorOut, bool WithStdlib,
                     const CancelToken *Cancel) {
  std::vector<std::string> Sources;
  for (const std::string &F : Files) {
    std::optional<std::string> Src = readMicaFile(F);
    if (!Src) {
      ErrorOut = "cannot read Mica file '" + F + "'";
      return nullptr;
    }
    Sources.push_back(std::move(*Src));
  }
  return fromSources(Sources, ErrorOut, WithStdlib, Cancel);
}

bool Workbench::loadProfileDb(const std::string &Path, const std::string &Key,
                              Diagnostics &DiagsOut) {
  ProfileDb Db;
  if (!Db.loadFromFile(Path, DiagsOut))
    return false;
  if (!Db.hasProgram(Key)) {
    DiagsOut.warning(SourceLoc(), "profile db '" + Path +
                                      "' has no entry for program '" + Key +
                                      "'");
    return true;
  }
  Db.validate(Key, *P, DiagsOut);
  Profile.merge(Db.forProgram(Key));
  return true;
}

bool Workbench::collectProfile(int64_t Input, std::string &ErrorOut) {
  // Profiles are gathered from the Base-compiled ("instrumented")
  // executable, with arcs recorded at statically-bound sites too.
  std::unique_ptr<CompiledProgram> CP = compileOnly(Config::Base);
  if (!CP) {
    ErrorOut = LastTrap.Kind != TrapKind::None ? LastTrap.Message
                                               : Diags.toString();
    return false;
  }
  if (!phaseGate("pipeline.profile-run", "profile run", ErrorOut))
    return false;
  RunOptions Opts;
  Opts.Profile = &Profile;
  Opts.Limits = Limits;
  Opts.Cancel = Cancel;

  // Both tiers share the callMain/trap/errorMessage surface and record
  // identical profiles (arcs are gathered at the same sites).
  auto RunProfile = [&](auto &I) {
    PhaseTimer::Scope Timing("profile");
    if (!I.callMain(Input)) {
      LastTrap = I.trap();
      ErrorOut = "profile run failed: " + I.errorMessage();
      return false;
    }
    LastTrap.reset();
    return true;
  };

  if (Tier == ExecTier::Bytecode) {
    BcModule Mod;
    {
      PhaseTimer::Scope Timing("bytecode-compile");
      Mod = compileToBytecode(*CP);
    }
    if (Mod.Ok) {
      BytecodeInterpreter I(*CP, Mod, Opts);
      return RunProfile(I);
    }
    Diags.warning(SourceLoc(), "bytecode tier unavailable (" + Mod.Error +
                                   "); profiling on the AST tier");
  }
  Interpreter I(*CP, Opts);
  return RunProfile(I);
}

std::unique_ptr<CompiledProgram>
Workbench::compileOnly(Config C, const SelectiveOptions &Sel,
                       const OptimizerOptions &OptOpts) {
  std::string GateError;
  if (!phaseGate("pipeline.plan", "planning", GateError))
    return nullptr;
  SpecializationPlan Plan =
      makePlan(C, *P, *AC, *PT, Profile.empty() ? nullptr : &Profile, Sel,
               &Diags);
  if (!phaseGate("pipeline.optimize", "optimization", GateError))
    return nullptr;
  Optimizer Opt(*P, *AC, OptOpts, Profile.empty() ? nullptr : &Profile);
  return Opt.compile(Plan);
}

std::optional<ConfigResult>
Workbench::runConfig(Config C, int64_t Input, std::string &ErrorOut,
                     const SelectiveOptions &Sel,
                     const OptimizerOptions &OptOpts,
                     const CostModel &Costs) {
  // The single-shot path is a degenerate serve: build the immutable
  // snapshot, run one job against it.
  std::shared_ptr<const CompiledSnapshot> Snap =
      buildSnapshot(C, ErrorOut, Sel, OptOpts);
  if (!Snap)
    return std::nullopt;

  if (!phaseGate("pipeline.measured-run", "measured run", ErrorOut))
    return std::nullopt;

  CompiledSnapshot::JobOptions JO;
  JO.Limits = Limits;
  JO.Cancel = Cancel;
  JO.Costs = Costs;
  CompiledSnapshot::JobResult J = Snap->run(Input, JO);
  if (!J.Ok) {
    LastTrap = J.Trap;
    ErrorOut = std::string(configName(C)) + " run failed: " + J.Error;
    return std::nullopt;
  }
  LastTrap.reset();
  return J.R;
}

//===- driver/Overload.cpp - Brown-out degradation ladder ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Overload.h"

#include "support/MemoryBudget.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdio>
#include <mutex>

using namespace selspec;
using namespace selspec::overload;

namespace {

/// Until a server installs a policy, the governor is inert: no queue
/// fraction reaches 2.0, so library users (and unrelated tests sharing
/// the process) never see global brown-outs from their own queue churn.
Policy inertPolicy() {
  Policy P;
  P.QueueHighFraction = 2.0;
  P.QueueLowFraction = 2.0;
  return P;
}

std::mutex M;
Policy ThePolicy = inertPolicy(); // guarded by M
unsigned PressuredTicks = 0;      // guarded by M
unsigned ClearTicks = 0;          // guarded by M

/// Readable without M so consumers (admission paths, adaptive admit) pay
/// one relaxed load.
std::atomic<Level> TheLevel{Level::Normal};

metrics::Counter GaugeLevel("serve.brownout_level");
metrics::Counter CtrEscalations("serve.brownout_escalations");
metrics::Counter CtrRecoveries("serve.brownout_recoveries");

void transitionLocked(Level From, Level To, size_t Depth, size_t Capacity) {
  TheLevel.store(To, std::memory_order_relaxed);
  GaugeLevel.set(static_cast<uint64_t>(To));
  if (To > From)
    CtrEscalations.add();
  else
    CtrRecoveries.add();
  if (ThePolicy.LogTransitions) {
    std::fprintf(stderr,
                 "selspec overload: %s -> %s (queue %zu/%zu, live %llu MB)\n",
                 levelName(From), levelName(To), Depth, Capacity,
                 static_cast<unsigned long long>(membudget::liveBytes() >>
                                                 20));
    std::fflush(stderr);
  }
}

} // namespace

const char *selspec::overload::levelName(Level L) {
  switch (L) {
  case Level::Normal:
    return "normal";
  case Level::NoArcs:
    return "no-arcs";
  case Level::NoRespec:
    return "no-respec";
  case Level::ChaOnly:
    return "cha-only";
  }
  return "unknown";
}

void selspec::overload::setPolicy(const Policy &P) {
  std::lock_guard<std::mutex> Lock(M);
  ThePolicy = P;
}

Policy selspec::overload::policy() {
  std::lock_guard<std::mutex> Lock(M);
  return ThePolicy;
}

void selspec::overload::observe(size_t QueueDepth, size_t QueueCapacity) {
  std::lock_guard<std::mutex> Lock(M);
  double Frac = QueueCapacity
                    ? static_cast<double>(QueueDepth) /
                          static_cast<double>(QueueCapacity)
                    : 0.0;
  bool MemHigh = ThePolicy.MemHighBytes &&
                 membudget::liveBytes() >= ThePolicy.MemHighBytes;
  bool Pressured = MemHigh || Frac >= ThePolicy.QueueHighFraction;
  bool Clear = !MemHigh && Frac <= ThePolicy.QueueLowFraction;

  Level Cur = TheLevel.load(std::memory_order_relaxed);
  if (Pressured) {
    ClearTicks = 0;
    if (Cur != Level::ChaOnly && ++PressuredTicks >= ThePolicy.EngageTicks) {
      PressuredTicks = 0;
      transitionLocked(Cur,
                       static_cast<Level>(static_cast<uint8_t>(Cur) + 1),
                       QueueDepth, QueueCapacity);
    }
  } else if (Clear) {
    PressuredTicks = 0;
    if (Cur != Level::Normal && ++ClearTicks >= ThePolicy.RecoverTicks) {
      ClearTicks = 0;
      transitionLocked(Cur,
                       static_cast<Level>(static_cast<uint8_t>(Cur) - 1),
                       QueueDepth, QueueCapacity);
    }
  }
  // In the hysteresis band between the fractions neither counter moves:
  // the ladder holds its level.
}

Level selspec::overload::level() {
  return TheLevel.load(std::memory_order_relaxed);
}

bool selspec::overload::allowArcCollection() {
  return level() < Level::NoArcs;
}

bool selspec::overload::allowRespecialization() {
  return level() < Level::NoRespec;
}

bool selspec::overload::degradeToCha() { return level() >= Level::ChaOnly; }

void selspec::overload::reset() {
  std::lock_guard<std::mutex> Lock(M);
  PressuredTicks = 0;
  ClearTicks = 0;
  TheLevel.store(Level::Normal, std::memory_order_relaxed);
  GaugeLevel.set(0);
}

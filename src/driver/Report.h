//===- driver/Report.h - Table formatting for benches ----------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small text-table helper shared by the bench binaries so every figure
/// reproduction prints consistent, aligned rows.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_REPORT_H
#define SELSPEC_DRIVER_REPORT_H

#include <iosfwd>
#include <string>
#include <vector>

namespace selspec {

class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Row);
  /// Renders with column alignment (first column left, rest right).
  void print(std::ostream &OS) const;

  /// "1.00", "2.37" — fixed two decimals.
  static std::string ratio(double V);
  /// "12,345" — thousands separators.
  static std::string count(uint64_t V);
  /// "+65%" / "-12%" — percentage delta vs a baseline.
  static std::string percentDelta(double Value, double Baseline);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace selspec

#endif // SELSPEC_DRIVER_REPORT_H

//===- driver/Snapshot.cpp - Immutable compiled program snapshots ----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Snapshot.h"

#include "bytecode/BytecodeCompiler.h"
#include "bytecode/BytecodeInterpreter.h"
#include "support/Metrics.h"
#include "support/PhaseTimer.h"

#include <chrono>
#include <sstream>

using namespace selspec;

namespace {

metrics::Counter CtrSnapJobs("snapshot.jobs");
metrics::Counter CtrSnapJobTraps("snapshot.job_traps");
metrics::Counter CtrCacheHits("snapshot_cache.hits");
metrics::Counter CtrCacheBuilds("snapshot_cache.builds");
metrics::Counter CtrCacheBuildFailures("snapshot_cache.build_failures");

/// The per-job increments the interpreter's and dispatcher's destructors
/// will publish onto the registry, under the same names, so per-job
/// deltas sum exactly to the process-wide totals.
void collectDelta(std::vector<std::pair<std::string, uint64_t>> &MD,
                  const RunStats &S, const Dispatcher::Stats &D) {
  MD.emplace_back("interp.dynamic_dispatches", S.DynamicDispatches);
  MD.emplace_back("interp.version_selects", S.VersionSelects);
  MD.emplace_back("interp.static_calls", S.StaticCalls);
  MD.emplace_back("interp.inline_prims", S.InlinePrims);
  MD.emplace_back("interp.predicted_hits", S.PredictedHits);
  MD.emplace_back("interp.predicted_misses", S.PredictedMisses);
  MD.emplace_back("interp.feedback_hits", S.FeedbackHits);
  MD.emplace_back("interp.feedback_misses", S.FeedbackMisses);
  MD.emplace_back("interp.closures_created", S.ClosuresCreated);
  MD.emplace_back("interp.closure_calls", S.ClosureCalls);
  MD.emplace_back("interp.allocations", S.Allocations);
  MD.emplace_back("interp.method_invocations", S.MethodInvocations);
  MD.emplace_back("interp.nodes_evaluated", S.NodesEvaluated);
  MD.emplace_back("interp.cycles", S.Cycles);
  MD.emplace_back("dispatcher.lookups", D.Lookups);
  MD.emplace_back("dispatcher.pic_hits", D.PicHits);
  MD.emplace_back("dispatcher.memo_hits", D.MemoHits);
  MD.emplace_back("dispatcher.full_lookups", D.FullLookups);
  MD.emplace_back("dispatcher.megamorphic_sites", D.MegamorphicSites);
  MD.emplace_back("dispatcher.memo_collisions", D.MemoCollisions);
}

} // namespace

CompiledSnapshot::JobResult
CompiledSnapshot::run(int64_t Input, const JobOptions &Opts) const {
  CtrSnapJobs.add();
  JobResult J;
  J.R.Configuration = Info.Configuration;
  J.R.Tier = Tier;
  J.R.CompiledRoutines = Info.CompiledRoutines;
  J.R.CodeSize = Info.CodeSize;
  J.R.Opt = Info.Opt;
  J.R.Specializer = Info.Specializer;

  std::ostringstream Output;
  RunOptions RO;
  RO.Output = Opts.CaptureOutput ? &Output : nullptr;
  RO.Limits = Opts.Limits;
  RO.Cancel = Opts.Cancel;
  // Live-profiling jobs record arcs into the result's own CallGraph;
  // unsampled jobs pay nothing (a null Profile is one branch per send).
  RO.Profile = Opts.CollectArcs ? &J.Arcs : nullptr;
  // The whole point: the interpreter below is a per-thread cache over
  // this snapshot's shared tables, not an owner of fresh ones.
  RO.Tables = Tables.get();

  auto Measure = [&](auto &I) {
    bool Ok;
    {
      PhaseTimer::Scope Timing("run");
      auto Start = std::chrono::steady_clock::now();
      Ok = I.callMain(Input);
      J.R.WallNanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count());
    }
    // Deltas cover the run's full publication, success or trap.
    if (Opts.CollectMetricsDelta)
      collectDelta(J.MetricsDelta, I.stats(), I.dispatcher().stats());
    if (!Ok) {
      CtrSnapJobTraps.add();
      J.Trap = I.trap();
      J.R.Trap = J.Trap.Kind;
      J.Error = I.errorMessage();
      return false;
    }
    J.R.Run = I.stats();
    J.Ok = true;
    return true;
  };

  if (Tier == ExecTier::Bytecode) {
    BytecodeInterpreter I(*CP, Mod, RO, Opts.Costs);
    Measure(I);
    if (Opts.CollectMetricsDelta) {
      J.MetricsDelta.emplace_back("bytecode.ic_hits", I.icHits());
      J.MetricsDelta.emplace_back("bytecode.ic_misses", I.icMisses());
      J.MetricsDelta.emplace_back("bytecode.ic_misdispatch",
                                  I.icMisdispatches());
    }
  } else {
    Interpreter I(*CP, RO, Opts.Costs);
    Measure(I);
  }
  if (J.Ok) {
    J.R.InvokedRoutines = CP->numInvokedRoutines();
    J.R.Output = Output.str();
  }
  return J;
}

std::shared_ptr<const CompiledSnapshot>
Workbench::buildSnapshot(Config C, std::string &ErrorOut,
                         const SelectiveOptions &Sel,
                         const OptimizerOptions &OptOpts,
                         std::shared_ptr<Workbench> Keep) {
  if (!phaseGate("pipeline.plan", "planning", ErrorOut))
    return nullptr;
  SpecializationPlan Plan =
      makePlan(C, *P, *AC, *PT, Profile.empty() ? nullptr : &Profile, Sel,
               &Diags);

  std::shared_ptr<CompiledSnapshot> Snap(new CompiledSnapshot());
  Snap->Keeper = std::move(Keep);
  Snap->Info.Configuration = C;
  if (C == Config::Selective && !Profile.empty()) {
    // Re-run the specializer just for its statistics (cheap).
    SelectiveSpecializer Specializer(*P, *AC, *PT, Profile, Sel);
    Specializer.run();
    Snap->Info.Specializer = Specializer.stats();
  }

  if (!phaseGate("pipeline.optimize", "optimization", ErrorOut))
    return nullptr;
  Optimizer Opt(*P, *AC, OptOpts, Profile.empty() ? nullptr : &Profile);
  Snap->CP = Opt.compile(Plan);
  Snap->Info.Opt = Opt.stats();
  Snap->Info.CompiledRoutines = Snap->CP->numCompiledRoutines();
  Snap->Info.CodeSize = Snap->CP->totalCodeSize();

  // Bake the tier in.  A program the bytecode compiler cannot lower
  // degrades the whole snapshot to the AST tier (warning in Diags);
  // RunStats are identical either way, only wall clock differs.
  ExecTier SnapTier = Tier;
  if (SnapTier == ExecTier::Bytecode) {
    PhaseTimer::Scope Timing("bytecode-compile");
    Snap->Mod = compileToBytecode(*Snap->CP);
    if (!Snap->Mod.Ok) {
      Diags.warning(SourceLoc(), "bytecode tier unavailable (" +
                                     Snap->Mod.Error +
                                     "); falling back to the AST tier");
      SnapTier = ExecTier::Ast;
    }
  }
  Snap->Tier = SnapTier;
  Snap->Info.Tier = SnapTier;
  Snap->Tables = std::make_unique<DispatchTables>(*P);
  return Snap;
}

std::string SnapshotCache::makeKey(const std::vector<std::string> &Sources,
                                   Config C, ExecTier T,
                                   const std::string &ProfileTag) {
  std::string Key;
  for (const std::string &S : Sources) {
    Key += S;
    Key += '\x1f';
  }
  Key += '|';
  Key += configName(C);
  Key += '|';
  Key += T == ExecTier::Bytecode ? "bytecode" : "ast";
  Key += '|';
  Key += ProfileTag;
  return Key;
}

std::shared_ptr<const CompiledSnapshot>
SnapshotCache::getOrBuild(const std::string &Key, const Builder &Build,
                          std::string &ErrorOut) {
  for (;;) {
    std::shared_ptr<Entry> E;
    {
      std::lock_guard<std::mutex> Lock(M);
      std::shared_ptr<Entry> &Slot = Map[Key];
      if (!Slot)
        Slot = std::make_shared<Entry>();
      E = Slot;
    }

    std::unique_lock<std::mutex> Lock(E->M);
    if (E->Snap) {
      CtrCacheHits.add();
      return E->Snap;
    }
    if (E->Building) {
      // Someone else is compiling this key; wait for their verdict and
      // re-probe (their failure is our cue to retry the build ourselves).
      E->CV.wait(Lock, [&] { return !E->Building; });
      if (E->Snap) {
        CtrCacheHits.add();
        return E->Snap;
      }
      continue;
    }

    E->Building = true;
    Lock.unlock();

    CtrCacheBuilds.add();
    std::shared_ptr<const CompiledSnapshot> Snap;
    std::string BuildError;
    Snap = Build(BuildError);

    Lock.lock();
    E->Building = false;
    if (Snap) {
      E->Snap = Snap;
      E->CV.notify_all();
      return Snap;
    }
    E->CV.notify_all();
    Lock.unlock();

    // Failures are not cached: drop the (still-empty) entry so a later
    // call rebuilds, unless someone replaced it meanwhile.
    CtrCacheBuildFailures.add();
    {
      std::lock_guard<std::mutex> MapLock(M);
      auto It = Map.find(Key);
      if (It != Map.end() && It->second == E && !E->Snap)
        Map.erase(It);
    }
    ErrorOut = BuildError.empty() ? "snapshot build failed" : BuildError;
    return nullptr;
  }
}

void SnapshotCache::invalidate(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  Map.erase(Key);
}

void SnapshotCache::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Map.clear();
}

size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

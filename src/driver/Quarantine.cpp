//===- driver/Quarantine.cpp - Crash quarantine for shared pools -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Quarantine.h"

using namespace selspec;

bool CrashQuarantine::quarantines(TrapKind K) {
  switch (K) {
  case TrapKind::NodeBudgetExceeded:
  case TrapKind::RecursionLimitExceeded:
  case TrapKind::HeapLimitExceeded:
  case TrapKind::MemoryBudgetExceeded:
  case TrapKind::BindingViolation:
  case TrapKind::InternalError:
    return true;
  default:
    return false;
  }
}

uint64_t CrashQuarantine::fingerprint(const std::string &SourceKey,
                                      TrapKind K) {
  // FNV-1a over the source key, then the trap-kind name (stable across
  // enum renumbering, unlike the raw enum value).
  uint64_t H = UINT64_C(1469598103934665603);
  auto Mix = [&H](const char *S) {
    for (; *S; ++S) {
      H ^= static_cast<unsigned char>(*S);
      H *= UINT64_C(1099511628211);
    }
  };
  Mix(SourceKey.c_str());
  H ^= '|';
  H *= UINT64_C(1099511628211);
  Mix(trapKindName(K));
  return H;
}

bool CrashQuarantine::recordTrap(const std::string &SourceKey, TrapKind K) {
  if (!quarantines(K))
    return false;
  std::lock_guard<std::mutex> Lock(M);
  if (Quarantined.count(SourceKey))
    return false;
  unsigned &Count = Offenses[fingerprint(SourceKey, K)];
  if (++Count < Opts.Threshold)
    return false;
  Quarantined.insert(SourceKey);
  return true;
}

bool CrashQuarantine::isQuarantined(const std::string &SourceKey) const {
  std::lock_guard<std::mutex> Lock(M);
  return Quarantined.count(SourceKey) != 0;
}

size_t CrashQuarantine::numQuarantined() const {
  std::lock_guard<std::mutex> Lock(M);
  return Quarantined.size();
}

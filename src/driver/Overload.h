//===- driver/Overload.h - Brown-out degradation ladder --------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's brown-out governor: a process-wide state machine
/// that watches sustained queue and memory pressure and sheds *optional*
/// work before the server has to shed jobs.  The ladder degrades the
/// cheapest-to-lose feature first and recovers in reverse order when
/// pressure clears (DESIGN.md section 13):
///
///   Normal   -> everything enabled
///   NoArcs   -> adaptive live-arc collection off (profiling is pure
///               overhead under load; serving is unaffected)
///   NoRespec -> background respecialization/canary builds off (a build
///               burns a core and doubles resident compiled state)
///   ChaOnly  -> new snapshot builds degrade Selective -> CHA (cheapest
///               compile that still serves; mirrors the offline
///               missing-profile degradation from PR 3)
///
/// Pressure is observed by the ServeEngine on every queue transition:
/// queue depth as a fraction of capacity, plus the process-wide modeled
/// live bytes from support/MemoryBudget.  Transitions need EngageTicks
/// consecutive pressured observations to escalate one level and
/// RecoverTicks consecutive clear observations to step back down, so a
/// single burst can't flap the ladder.  Every transition bumps
/// `serve.brownout_escalations` / `serve.brownout_recoveries` and the
/// `serve.brownout_level` gauge; consumers (AdaptiveController, micad's
/// snapshot builders) read the cheap level accessors.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_OVERLOAD_H
#define SELSPEC_DRIVER_OVERLOAD_H

#include <cstddef>
#include <cstdint>

namespace selspec {
namespace overload {

/// Ladder rungs, in escalation order.  Each rung implies the ones below
/// it (ChaOnly also disables respecialization and arc collection).
enum class Level : uint8_t { Normal = 0, NoArcs = 1, NoRespec = 2, ChaOnly = 3 };

/// Stable lower-case name of \p L ("normal", "no-arcs", ...).
const char *levelName(Level L);

struct Policy {
  /// Modeled live bytes (membudget::liveBytes()) at or above which the
  /// memory signal reports pressure.  0 disables the memory signal.
  uint64_t MemHighBytes = 0;
  /// Queue depth / capacity at or above which the queue signal reports
  /// pressure.
  double QueueHighFraction = 0.75;
  /// Queue fraction at or below which an observation counts as clear
  /// (between the two fractions neither counter advances — a hysteresis
  /// band, not a boolean).
  double QueueLowFraction = 0.25;
  /// Consecutive pressured observations to escalate one level.
  unsigned EngageTicks = 4;
  /// Consecutive clear observations to recover one level.
  unsigned RecoverTicks = 16;
  /// Log every transition to stderr (servers; off for tests/benches that
  /// own stdout/stderr).
  bool LogTransitions = false;
};

/// Installs \p P (servers call this once at startup; tests per-case).
/// Until the first call the governor is inert — the initial policy's
/// queue thresholds are unreachable, so embedding the library (or
/// running unrelated ServeEngine tests in one process) never triggers
/// brown-outs by accident.
void setPolicy(const Policy &P);
Policy policy();

/// One pressure observation (ServeEngine calls this on every enqueue,
/// dequeue, and shed).  Cheap: one mutex a few times per job, never on
/// the interpreter hot path.
void observe(size_t QueueDepth, size_t QueueCapacity);

Level level();

/// Level < NoArcs: adaptive controllers may sample live arcs.
bool allowArcCollection();
/// Level < NoRespec: background respecialization/canary builds may run.
bool allowRespecialization();
/// Level >= ChaOnly: new snapshot builds should degrade Selective -> CHA.
bool degradeToCha();

/// Back to Normal with cleared tick state (test isolation; does not
/// touch the transition counters).
void reset();

} // namespace overload
} // namespace selspec

#endif // SELSPEC_DRIVER_OVERLOAD_H

//===- driver/Quarantine.h - Crash quarantine for shared pools -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Repeat-offender tracking for in-process serving.  A job that traps on
/// a resource guard or an injected fault in `--isolation=thread` mode
/// gets a *crash fingerprint* — FNV-1a over its source key plus the trap
/// kind — and once the same fingerprint reoffends Threshold times, the
/// source is quarantined: micad reroutes its jobs to the fork-isolation
/// path (and benches run them outside the shared pool), so one poison
/// input can degrade its own latency but never monopolize or destabilize
/// the pool everyone else shares.
///
/// Only *guard* trap kinds quarantine (node budget, recursion, heap
/// limit, memory budget) plus InternalError (which is how injected
/// failpoint faults and real interpreter bugs surface).  Program errors
/// (type errors, failed dispatch, user abort) are the Mica program's own
/// well-defined behavior, deterministic and cheap — isolating them buys
/// nothing.  Deadline traps are excluded too: they indicate load, not a
/// poison input, and under overload they would quarantine everything.
///
/// Thread-safe; shared by micad's thread-mode dispatch, its completion
/// path, and `bench/load_serve --chaos`.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_DRIVER_QUARANTINE_H
#define SELSPEC_DRIVER_QUARANTINE_H

#include "interp/RuntimeTrap.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace selspec {

class CrashQuarantine {
public:
  struct Options {
    /// Offenses of one fingerprint before the source is quarantined.
    /// 2 = first trap is forgiven (may be load or bad luck), the repeat
    /// proves a pattern.
    unsigned Threshold = 2;
  };

  CrashQuarantine() : Opts(Options()) {}
  explicit CrashQuarantine(Options O) : Opts(O) {}

  /// True for trap kinds that count toward quarantine (see file
  /// comment).
  static bool quarantines(TrapKind K);

  /// Records a trap of kind \p K for \p SourceKey.  Returns true when
  /// this offense newly quarantined the source (callers log/count the
  /// transition once).  Non-quarantining kinds are ignored.
  bool recordTrap(const std::string &SourceKey, TrapKind K);

  /// Should jobs for \p SourceKey be rerouted out of the shared pool?
  bool isQuarantined(const std::string &SourceKey) const;

  size_t numQuarantined() const;

  /// The fingerprint recordTrap buckets by (exposed for tests/logging).
  static uint64_t fingerprint(const std::string &SourceKey, TrapKind K);

private:
  const Options Opts;
  mutable std::mutex M;
  /// fingerprint -> offense count.
  std::unordered_map<uint64_t, unsigned> Offenses;
  std::unordered_set<std::string> Quarantined;
};

} // namespace selspec

#endif // SELSPEC_DRIVER_QUARANTINE_H

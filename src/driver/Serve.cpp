//===- driver/Serve.cpp - In-process thread-pool job serving --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "driver/Overload.h"
#include "support/Metrics.h"

using namespace selspec;

namespace {

metrics::Counter CtrSubmitted("serve.jobs_submitted");
metrics::Counter CtrCompleted("serve.jobs_completed");
metrics::Counter CtrCancelledQueued("serve.jobs_cancelled_queued");
metrics::Counter CtrCancelSignals("serve.cancel_signals");
metrics::Counter CtrShed("serve.shed");
metrics::Counter GaugeQueueDepth("serve.queue_depth");
metrics::Counter GaugeQueuePeak("serve.queue_peak");

uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace

ServeEngine::ServeEngine(const Options &O, CompletionFn OnDoneFn)
    : OnDone(std::move(OnDoneFn)), Opt(O),
      NumThreads(O.Threads < 1 ? 1u : O.Threads),
      Capacity(O.QueueCapacity < 1 ? 1u : O.QueueCapacity),
      Active(NumThreads, nullptr) {
  Workers.reserve(NumThreads);
  for (unsigned Slot = 0; Slot != NumThreads; ++Slot)
    Workers.emplace_back([this, Slot] { workerLoop(Slot); });
}

ServeEngine::~ServeEngine() { shutdown(false); }

void ServeEngine::noteQueueDepthLocked() {
  GaugeQueueDepth.set(Queue.size());
  if (Queue.size() > QueuePeak) {
    QueuePeak = Queue.size();
    GaugeQueuePeak.set(QueuePeak);
  }
}

ServeEngine::Admit ServeEngine::submit(Job J) {
  {
    std::unique_lock<std::mutex> Lock(M);
    auto HasRoom = [&] { return Queue.size() < Capacity || Closed; };
    if (Opt.MaxSubmitWaitMs >= 0) {
      // Bounded-wait admission: never block a producer past the bound.
      if (!NotFull.wait_for(Lock,
                            std::chrono::milliseconds(Opt.MaxSubmitWaitMs),
                            HasRoom)) {
        CtrShed.add();
        overload::observe(Queue.size(), Capacity);
        return Admit::Shed;
      }
    } else {
      NotFull.wait(Lock, HasRoom);
    }
    if (Closed)
      return Admit::Closed;
    if (Opt.DeadlineAwareAdmission && J.DeadlineMs > 0) {
      // Deadline-aware admission: with the current backlog, the job's
      // estimated wait before it could even start is depth/threads
      // service periods.  If that alone exceeds the job's whole latency
      // budget, shedding now is strictly better than queueing it.
      uint64_t Ewma = EwmaRunNanos.load(std::memory_order_relaxed);
      if (Ewma) {
        uint64_t EstStartNanos = Ewma * (Queue.size() / NumThreads + 1);
        if (EstStartNanos > static_cast<uint64_t>(J.DeadlineMs) * 1'000'000) {
          CtrShed.add();
          overload::observe(Queue.size(), Capacity);
          return Admit::Shed;
        }
      }
    }
    Queue.push_back(QueuedJob{std::move(J), std::chrono::steady_clock::now()});
    noteQueueDepthLocked();
    overload::observe(Queue.size(), Capacity);
  }
  CtrSubmitted.add();
  NotEmpty.notify_one();
  return Admit::Accepted;
}

void ServeEngine::close() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
  }
  // Wake blocked submitters (they observe Closed and bail) and idle
  // workers (they drain the queue, then exit).
  NotFull.notify_all();
  NotEmpty.notify_all();
}

void ServeEngine::cancelInFlight() {
  std::lock_guard<std::mutex> Lock(M);
  for (CancelToken *Tok : Active)
    if (Tok) {
      Tok->requestCancel();
      CtrCancelSignals.add();
    }
}

void ServeEngine::shutdown(bool CancelQueued) {
  close();

  std::deque<QueuedJob> Dropped;
  if (CancelQueued) {
    std::lock_guard<std::mutex> Lock(M);
    Dropped.swap(Queue);
    noteQueueDepthLocked();
  }
  for (QueuedJob &QJ : Dropped) {
    Completion Cmp;
    Cmp.TheJob = std::move(QJ.J);
    Cmp.Cancelled = true;
    Cmp.QueueNanos = nanosSince(QJ.Enqueued);
    CtrCancelledQueued.add();
    std::lock_guard<std::mutex> DoneLock(DoneM);
    OnDone(std::move(Cmp));
  }
  NotEmpty.notify_all();

  {
    std::unique_lock<std::mutex> Lock(M);
    AllDone.wait(Lock, [&] { return Queue.empty() && Running == 0; });
    if (Joined)
      return;
    Joined = true;
  }
  for (std::thread &T : Workers)
    T.join();
}

size_t ServeEngine::queued() const {
  std::lock_guard<std::mutex> Lock(M);
  return Queue.size();
}

size_t ServeEngine::inFlight() const {
  std::lock_guard<std::mutex> Lock(M);
  return Running;
}

void ServeEngine::workerLoop(unsigned Slot) {
  for (;;) {
    QueuedJob QJ;
    {
      std::unique_lock<std::mutex> Lock(M);
      NotEmpty.wait(Lock, [&] { return !Queue.empty() || Closed; });
      if (Queue.empty())
        return; // Closed and drained.
      QJ = std::move(Queue.front());
      Queue.pop_front();
      noteQueueDepthLocked();
      overload::observe(Queue.size(), Capacity);
      ++Running;
    }
    NotFull.notify_one();

    // The token lives on this worker's stack for the duration of the
    // job; it is reachable by cancelInFlight() only through Active[Slot],
    // which is set and cleared under M.
    CancelToken Tok;
    if (QJ.J.DeadlineMs > 0)
      Tok.setDeadline(Deadline::afterMillis(QJ.J.DeadlineMs));
    {
      std::lock_guard<std::mutex> Lock(M);
      Active[Slot] = &Tok;
    }

    Completion Cmp;
    Cmp.QueueNanos = nanosSince(QJ.Enqueued);

    CompiledSnapshot::JobOptions JO;
    JO.Limits = QJ.J.Limits;
    JO.Cancel = &Tok;
    JO.Costs = QJ.J.Costs;
    JO.CaptureOutput = QJ.J.CaptureOutput;
    JO.CollectMetricsDelta = QJ.J.CollectMetricsDelta;
    JO.CollectArcs = QJ.J.CollectArcs;

    auto Start = std::chrono::steady_clock::now();
    Cmp.Result = QJ.J.Snapshot->run(QJ.J.Input, JO);
    Cmp.RunNanos = nanosSince(Start);
    Cmp.TheJob = std::move(QJ.J);
    CtrCompleted.add();

    // Service-time EWMA (alpha = 1/8) behind deadline-aware admission.
    // Plain load/store: concurrent updates can drop a sample, which is
    // fine for an estimate.
    uint64_t Prev = EwmaRunNanos.load(std::memory_order_relaxed);
    EwmaRunNanos.store(Prev ? (7 * Prev + Cmp.RunNanos) / 8 : Cmp.RunNanos,
                       std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> DoneLock(DoneM);
      OnDone(std::move(Cmp));
    }

    {
      std::lock_guard<std::mutex> Lock(M);
      Active[Slot] = nullptr;
      --Running;
      if (Queue.empty() && Running == 0)
        AllDone.notify_all();
    }
  }
}

//===- driver/Serve.cpp - In-process thread-pool job serving --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "support/Metrics.h"

using namespace selspec;

namespace {

metrics::Counter CtrSubmitted("serve.jobs_submitted");
metrics::Counter CtrCompleted("serve.jobs_completed");
metrics::Counter CtrCancelledQueued("serve.jobs_cancelled_queued");
metrics::Counter CtrCancelSignals("serve.cancel_signals");

uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace

ServeEngine::ServeEngine(const Options &O, CompletionFn OnDoneFn)
    : OnDone(std::move(OnDoneFn)),
      NumThreads(O.Threads < 1 ? 1u : O.Threads),
      Capacity(O.QueueCapacity < 1 ? 1u : O.QueueCapacity),
      Active(NumThreads, nullptr) {
  Workers.reserve(NumThreads);
  for (unsigned Slot = 0; Slot != NumThreads; ++Slot)
    Workers.emplace_back([this, Slot] { workerLoop(Slot); });
}

ServeEngine::~ServeEngine() { shutdown(false); }

bool ServeEngine::submit(Job J) {
  {
    std::unique_lock<std::mutex> Lock(M);
    NotFull.wait(Lock, [&] { return Queue.size() < Capacity || Closed; });
    if (Closed)
      return false;
    Queue.push_back(QueuedJob{std::move(J), std::chrono::steady_clock::now()});
  }
  CtrSubmitted.add();
  NotEmpty.notify_one();
  return true;
}

void ServeEngine::close() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
  }
  // Wake blocked submitters (they observe Closed and bail) and idle
  // workers (they drain the queue, then exit).
  NotFull.notify_all();
  NotEmpty.notify_all();
}

void ServeEngine::cancelInFlight() {
  std::lock_guard<std::mutex> Lock(M);
  for (CancelToken *Tok : Active)
    if (Tok) {
      Tok->requestCancel();
      CtrCancelSignals.add();
    }
}

void ServeEngine::shutdown(bool CancelQueued) {
  close();

  std::deque<QueuedJob> Dropped;
  if (CancelQueued) {
    std::lock_guard<std::mutex> Lock(M);
    Dropped.swap(Queue);
  }
  for (QueuedJob &QJ : Dropped) {
    Completion Cmp;
    Cmp.TheJob = std::move(QJ.J);
    Cmp.Cancelled = true;
    Cmp.QueueNanos = nanosSince(QJ.Enqueued);
    CtrCancelledQueued.add();
    std::lock_guard<std::mutex> DoneLock(DoneM);
    OnDone(std::move(Cmp));
  }
  NotEmpty.notify_all();

  {
    std::unique_lock<std::mutex> Lock(M);
    AllDone.wait(Lock, [&] { return Queue.empty() && Running == 0; });
    if (Joined)
      return;
    Joined = true;
  }
  for (std::thread &T : Workers)
    T.join();
}

size_t ServeEngine::queued() const {
  std::lock_guard<std::mutex> Lock(M);
  return Queue.size();
}

size_t ServeEngine::inFlight() const {
  std::lock_guard<std::mutex> Lock(M);
  return Running;
}

void ServeEngine::workerLoop(unsigned Slot) {
  for (;;) {
    QueuedJob QJ;
    {
      std::unique_lock<std::mutex> Lock(M);
      NotEmpty.wait(Lock, [&] { return !Queue.empty() || Closed; });
      if (Queue.empty())
        return; // Closed and drained.
      QJ = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    NotFull.notify_one();

    // The token lives on this worker's stack for the duration of the
    // job; it is reachable by cancelInFlight() only through Active[Slot],
    // which is set and cleared under M.
    CancelToken Tok;
    if (QJ.J.DeadlineMs > 0)
      Tok.setDeadline(Deadline::afterMillis(QJ.J.DeadlineMs));
    {
      std::lock_guard<std::mutex> Lock(M);
      Active[Slot] = &Tok;
    }

    Completion Cmp;
    Cmp.QueueNanos = nanosSince(QJ.Enqueued);

    CompiledSnapshot::JobOptions JO;
    JO.Limits = QJ.J.Limits;
    JO.Cancel = &Tok;
    JO.Costs = QJ.J.Costs;
    JO.CaptureOutput = QJ.J.CaptureOutput;
    JO.CollectMetricsDelta = QJ.J.CollectMetricsDelta;
    JO.CollectArcs = QJ.J.CollectArcs;

    auto Start = std::chrono::steady_clock::now();
    Cmp.Result = QJ.J.Snapshot->run(QJ.J.Input, JO);
    Cmp.RunNanos = nanosSince(Start);
    Cmp.TheJob = std::move(QJ.J);
    CtrCompleted.add();

    {
      std::lock_guard<std::mutex> DoneLock(DoneM);
      OnDone(std::move(Cmp));
    }

    {
      std::lock_guard<std::mutex> Lock(M);
      Active[Slot] = nullptr;
      --Running;
      if (Queue.empty() && Running == 0)
        AllDone.notify_all();
    }
  }
}

//===- hierarchy/Builtins.cpp - Builtin classes and generics ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/Builtins.h"
#include "hierarchy/Program.h"

using namespace selspec;

const char *selspec::primOpName(PrimOp Op) {
  switch (Op) {
  case PrimOp::None: return "none";
  case PrimOp::IntAdd: return "int.add";
  case PrimOp::IntSub: return "int.sub";
  case PrimOp::IntMul: return "int.mul";
  case PrimOp::IntDiv: return "int.div";
  case PrimOp::IntMod: return "int.mod";
  case PrimOp::IntNeg: return "int.neg";
  case PrimOp::IntLess: return "int.lt";
  case PrimOp::IntLessEq: return "int.le";
  case PrimOp::IntGreater: return "int.gt";
  case PrimOp::IntGreaterEq: return "int.ge";
  case PrimOp::IntEq: return "int.eq";
  case PrimOp::IntNe: return "int.ne";
  case PrimOp::BoolNot: return "bool.not";
  case PrimOp::BoolEq: return "bool.eq";
  case PrimOp::AnyEq: return "any.eq";
  case PrimOp::AnyNe: return "any.ne";
  case PrimOp::StrConcat: return "str.concat";
  case PrimOp::StrEq: return "str.eq";
  case PrimOp::StrLess: return "str.lt";
  case PrimOp::StrSize: return "str.size";
  case PrimOp::ArrayNew: return "array.new";
  case PrimOp::ArrayAt: return "array.at";
  case PrimOp::ArrayPut: return "array.put";
  case PrimOp::ArraySize: return "array.size";
  case PrimOp::Print: return "print";
  case PrimOp::ClassName: return "class-name";
  case PrimOp::Abort: return "abort";
  }
  return "unknown";
}

void Program::addBuiltins() {
  assert(!BuiltinsAdded && "builtins added twice");
  BuiltinsAdded = true;

  // Classes, in the fixed order declared in Builtins.h.
  ClassId Any = Classes.addClass(Syms.intern("Any"), {});
  ClassId Int = Classes.addClass(Syms.intern("Int"), {Any});
  ClassId Bool = Classes.addClass(Syms.intern("Bool"), {Any});
  ClassId Str = Classes.addClass(Syms.intern("String"), {Any});
  ClassId Nil = Classes.addClass(Syms.intern("Nil"), {Any});
  ClassId Array = Classes.addClass(Syms.intern("Array"), {Any});
  ClassId Closure = Classes.addClass(Syms.intern("Closure"), {Any});
  assert(Any == builtin::Any && Int == builtin::Int && Bool == builtin::Bool &&
         Str == builtin::String && Array == builtin::Array &&
         "builtin class ids drifted from Builtins.h");
  // Value classes cannot be subclassed.
  for (ClassId C : {Int, Bool, Str, Nil, Array, Closure})
    Classes.seal(C);

  auto Add = [&](const char *Name, std::vector<ClassId> Spec, PrimOp Op) {
    Symbol S = Syms.intern(Name);
    GenericId G =
        getOrCreateGeneric(S, static_cast<unsigned>(Spec.size()));
    std::vector<Symbol> Params;
    for (unsigned I = 0; I != Spec.size(); ++I)
      Params.push_back(Syms.intern("p" + std::to_string(I)));
    addMethod(G, std::move(Params), std::move(Spec), nullptr, Op,
              SourceLoc());
  };

  // Integer arithmetic.
  Add("+", {Int, Int}, PrimOp::IntAdd);
  Add("-", {Int, Int}, PrimOp::IntSub);
  Add("*", {Int, Int}, PrimOp::IntMul);
  Add("/", {Int, Int}, PrimOp::IntDiv);
  Add("%", {Int, Int}, PrimOp::IntMod);
  Add("neg", {Int}, PrimOp::IntNeg);
  Add("<", {Int, Int}, PrimOp::IntLess);
  Add("<=", {Int, Int}, PrimOp::IntLessEq);
  Add(">", {Int, Int}, PrimOp::IntGreater);
  Add(">=", {Int, Int}, PrimOp::IntGreaterEq);

  // Equality is a true multi-method: an identity default on (Any, Any)
  // with overriding cases for value types.
  Add("==", {Any, Any}, PrimOp::AnyEq);
  Add("==", {Int, Int}, PrimOp::IntEq);
  Add("==", {Str, Str}, PrimOp::StrEq);
  Add("==", {Bool, Bool}, PrimOp::BoolEq);
  Add("!=", {Any, Any}, PrimOp::AnyNe);
  Add("!=", {Int, Int}, PrimOp::IntNe);

  Add("not", {Bool}, PrimOp::BoolNot);

  // Strings.
  Add("+", {Str, Str}, PrimOp::StrConcat);
  Add("<", {Str, Str}, PrimOp::StrLess);
  Add("size", {Str}, PrimOp::StrSize);

  // Arrays.
  Add("array", {Int}, PrimOp::ArrayNew);
  Add("at", {Array, Int}, PrimOp::ArrayAt);
  Add("atPut", {Array, Int, Any}, PrimOp::ArrayPut);
  Add("size", {Array}, PrimOp::ArraySize);

  // Miscellaneous.
  Add("print", {Any}, PrimOp::Print);
  Add("className", {Any}, PrimOp::ClassName);
  Add("abort", {Str}, PrimOp::Abort);
}

//===- hierarchy/PrimOp.h - Builtin primitive operations -------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builtin methods carry a PrimOp instead of a Mica body.  The interpreter
/// implements the semantics; keeping only an enum here lets the hierarchy
/// layer stay independent of the runtime layer.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_HIERARCHY_PRIMOP_H
#define SELSPEC_HIERARCHY_PRIMOP_H

#include <cstdint>

namespace selspec {

enum class PrimOp : uint8_t {
  None, ///< Not a builtin (user method with a Mica body).

  // Integer arithmetic and comparison.
  IntAdd,
  IntSub,
  IntMul,
  IntDiv,
  IntMod,
  IntNeg,
  IntLess,
  IntLessEq,
  IntGreater,
  IntGreaterEq,
  IntEq,
  IntNe,

  // Boolean.
  BoolNot,
  BoolEq,

  // Generic identity comparison (the default == on Any).
  AnyEq,
  AnyNe,

  // Strings.
  StrConcat,
  StrEq,
  StrLess,
  StrSize,

  // Arrays (fixed-size vectors).
  ArrayNew,  ///< array(n) — n nil elements.
  ArrayAt,   ///< at(a, i)
  ArrayPut,  ///< atPut(a, i, v)
  ArraySize, ///< size(a)

  // Miscellaneous.
  Print,      ///< print(x) — writes to the interpreter's output stream.
  ClassName,  ///< className(x) — name of x's class, as a string.
  Abort,      ///< abort(msg) — halts execution with a runtime error.
};

/// Stable name for reports and tests.
const char *primOpName(PrimOp Op);

} // namespace selspec

#endif // SELSPEC_HIERARCHY_PRIMOP_H

//===- hierarchy/Program.cpp - Whole-program container ---------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/Program.h"

#include "lang/Parser.h"
#include "lang/Resolver.h"

#include <sstream>

using namespace selspec;

bool Program::addModule(Module M, Diagnostics &Diags) {
  assert(BuiltinsAdded && "call addBuiltins() before addModule()");
  assert(!Resolved && "cannot add modules after resolve()");

  // Pass 1: declare all class names so that forward references and mutual
  // references within the module work.  Parents must still form a DAG:
  // a class may only name already-declared classes (including ones from
  // this pass when they appear earlier in the file) as parents.
  for (ClassDecl &CD : M.Classes) {
    if (Classes.lookup(CD.Name).isValid()) {
      Diags.error(CD.Loc,
                  "duplicate class '" + Syms.name(CD.Name) + "'");
      continue;
    }
    std::vector<ClassId> Parents;
    bool Ok = true;
    for (Symbol P : CD.Parents) {
      ClassId PId = Classes.lookup(P);
      if (!PId.isValid()) {
        Diags.error(CD.Loc, "unknown parent class '" + Syms.name(P) +
                                "' of '" + Syms.name(CD.Name) + "'");
        Ok = false;
        continue;
      }
      if (Classes.isSealed(PId)) {
        Diags.error(CD.Loc, "class '" + Syms.name(P) +
                                "' is sealed and cannot be subclassed");
        Ok = false;
        continue;
      }
      Parents.push_back(PId);
    }
    if (Ok)
      Classes.addClass(CD.Name, Parents, CD.Slots);
  }

  // Pass 2: register methods (bodies resolved later).
  for (MethodDecl &MD : M.Methods) {
    std::vector<Symbol> ParamNames;
    std::vector<ClassId> Specializers;
    for (ParamDecl &P : MD.Params) {
      ParamNames.push_back(P.Name);
      if (P.SpecializerName.isValid()) {
        ClassId C = Classes.lookup(P.SpecializerName);
        if (!C.isValid()) {
          Diags.error(P.Loc, "unknown specializer class '" +
                                 Syms.name(P.SpecializerName) + "'");
          C = Classes.root();
        }
        Specializers.push_back(C);
      } else {
        Specializers.push_back(Classes.root());
      }
    }
    GenericId G = getOrCreateGeneric(
        MD.Name, static_cast<unsigned>(MD.Params.size()));
    addMethod(G, std::move(ParamNames), std::move(Specializers),
              std::move(MD.Body), PrimOp::None, MD.Loc);
  }
  return !Diags.hasErrors();
}

bool Program::addSource(const std::string &Source, Diagnostics &Diags) {
  Module M;
  if (!Parser::parseSource(Source, Syms, Diags, M))
    return false;
  return addModule(std::move(M), Diags);
}

GenericId Program::getOrCreateGeneric(Symbol Name, unsigned Arity) {
  uint64_t Key = genericKey(Name, Arity);
  auto It = GenericMap.find(Key);
  if (It != GenericMap.end())
    return It->second;
  GenericId Id(static_cast<uint32_t>(Generics.size()));
  GenericInfo Info;
  Info.Id = Id;
  Info.Name = Name;
  Info.Arity = Arity;
  Generics.push_back(std::move(Info));
  GenericMap.emplace(Key, Id);
  return Id;
}

MethodId Program::addMethod(GenericId G, std::vector<Symbol> ParamNames,
                            std::vector<ClassId> Specializers, ExprPtr Body,
                            PrimOp Prim, SourceLoc Loc) {
  assert(ParamNames.size() == Specializers.size() &&
         "param/specializer arity mismatch");
  assert(Specializers.size() == generic(G).Arity && "arity mismatch");
  MethodId Id(static_cast<uint32_t>(Methods.size()));
  MethodInfo Info;
  Info.Id = Id;
  Info.Generic = G;
  Info.ParamNames = std::move(ParamNames);
  Info.Specializers = std::move(Specializers);
  Info.Body = std::move(Body);
  Info.Prim = Prim;
  Info.Loc = Loc;
  Methods.push_back(std::move(Info));
  Generics[G.value()].Methods.push_back(Id);
  return Id;
}

bool Program::resolve(Diagnostics &Diags) {
  assert(!Resolved && "resolve() must run exactly once");
  Classes.finalize();

  Resolver R(*this, Diags);
  for (MethodInfo &M : Methods) {
    if (M.isBuiltin())
      continue;
    if (!M.Body) {
      Diags.error(M.Loc, "method '" + methodLabel(M.Id) + "' has no body");
      continue;
    }
    R.resolveMethod(M);
  }
  if (Diags.hasErrors())
    return false;
  Resolved = true;
  return true;
}

GenericId Program::lookupGeneric(Symbol Name, unsigned Arity) const {
  auto It = GenericMap.find(genericKey(Name, Arity));
  return It == GenericMap.end() ? GenericId() : It->second;
}

unsigned Program::numUserMethods() const {
  unsigned N = 0;
  for (const MethodInfo &M : Methods)
    if (!M.isBuiltin())
      ++N;
  return N;
}

bool Program::isApplicable(const MethodInfo &M,
                           const std::vector<ClassId> &ArgClasses) const {
  assert(ArgClasses.size() == M.arity() && "arity mismatch");
  for (unsigned I = 0, E = M.arity(); I != E; ++I)
    if (!Classes.isSubclassOf(ArgClasses[I], M.Specializers[I]))
      return false;
  return true;
}

bool Program::atLeastAsSpecific(MethodId A, MethodId B) const {
  const MethodInfo &MA = method(A);
  const MethodInfo &MB = method(B);
  assert(MA.Generic == MB.Generic && "specificity across generics");
  for (unsigned I = 0, E = MA.arity(); I != E; ++I)
    if (!Classes.isSubclassOf(MA.Specializers[I], MB.Specializers[I]))
      return false;
  return true;
}

MethodId Program::dispatch(GenericId G,
                           const std::vector<ClassId> &ArgClasses,
                           bool *AmbiguousOut) const {
  const GenericInfo &Info = generic(G);
  if (AmbiguousOut)
    *AmbiguousOut = false;
  MethodId Best;
  bool Ambiguous = false;
  for (MethodId M : Info.Methods) {
    if (!isApplicable(method(M), ArgClasses))
      continue;
    if (!Best.isValid()) {
      Best = M;
      continue;
    }
    if (atLeastAsSpecific(M, Best)) {
      Best = M;
      Ambiguous = false;
    } else if (!atLeastAsSpecific(Best, M)) {
      Ambiguous = true;
    }
  }
  if (!Best.isValid() || Ambiguous) {
    if (AmbiguousOut)
      *AmbiguousOut = Ambiguous;
    return MethodId();
  }
  // With multiple inheritance a later method may be incomparable to Best
  // yet applicable; verify Best dominates all applicable methods.
  for (MethodId M : Info.Methods)
    if (isApplicable(method(M), ArgClasses) && !atLeastAsSpecific(Best, M)) {
      if (AmbiguousOut)
        *AmbiguousOut = true;
      return MethodId();
    }
  return Best;
}

std::string Program::methodLabel(MethodId M) const {
  const MethodInfo &Info = method(M);
  std::ostringstream OS;
  OS << Syms.name(generic(Info.Generic).Name) << '(';
  for (unsigned I = 0, E = Info.arity(); I != E; ++I) {
    if (I)
      OS << ',';
    OS << Syms.name(Classes.info(Info.Specializers[I]).Name);
  }
  OS << ')';
  return OS.str();
}

std::string Program::genericLabel(GenericId G) const {
  const GenericInfo &Info = generic(G);
  return Syms.name(Info.Name) + "/" + std::to_string(Info.Arity);
}

//===- hierarchy/ClassHierarchy.cpp - Class inheritance DAG ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/ClassHierarchy.h"

#include <algorithm>
#include <sstream>

using namespace selspec;

ClassId ClassHierarchy::addClass(Symbol Name,
                                 const std::vector<ClassId> &Parents,
                                 std::vector<Symbol> OwnSlots) {
  if (ByName.count(Name))
    return ClassId();
  ClassId Id(static_cast<uint32_t>(Classes.size()));
  ClassInfo Info;
  Info.Name = Name;
  Info.OwnSlots = std::move(OwnSlots);
  if (Parents.empty()) {
    // Only the root may be parentless; others implicitly subclass Any.
    if (Id != ClassId(0))
      Info.Parents.push_back(ClassId(0));
  } else {
    Info.Parents = Parents;
  }
  for (ClassId P : Info.Parents) {
    assert(P.isValid() && P.value() < Classes.size() && "unknown parent");
    Classes[P.value()].Children.push_back(Id);
  }
  Classes.push_back(std::move(Info));
  ByName.emplace(Name, Id);
  Finalized = false;
  return Id;
}

ClassId ClassHierarchy::lookup(Symbol Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? ClassId() : It->second;
}

void ClassHierarchy::finalize() {
  unsigned N = size();
  Cones.assign(N, ClassSet(N));
  // Process classes in reverse id order: parents always have smaller ids
  // than children (addClass requires parents to exist), so children's
  // cones are complete when a parent is reached.
  for (unsigned I = N; I-- > 0;) {
    ClassSet &Cone = Cones[I];
    Cone.insert(ClassId(I));
    for (ClassId Child : Classes[I].Children)
      Cone |= Cones[Child.value()];
  }

  // Object layouts: inherited slots in parent order, then own slots, with
  // duplicates (diamond inheritance) appearing once.
  SlotIndex.assign(N, {});
  for (unsigned I = 0; I != N; ++I) {
    ClassInfo &Info = Classes[I];
    Info.Layout.clear();
    auto AppendUnique = [&](Symbol S) {
      if (std::find(Info.Layout.begin(), Info.Layout.end(), S) ==
          Info.Layout.end())
        Info.Layout.push_back(S);
    };
    for (ClassId P : Info.Parents)
      for (Symbol S : Classes[P.value()].Layout)
        AppendUnique(S);
    for (Symbol S : Info.OwnSlots)
      AppendUnique(S);
    for (size_t SI = 0; SI != Info.Layout.size(); ++SI)
      SlotIndex[I].emplace(Info.Layout[SI], static_cast<int>(SI));
  }
  Finalized = true;
}

int ClassHierarchy::slotIndex(ClassId C, Symbol SlotName) const {
  assert(Finalized && "hierarchy not finalized");
  const auto &Map = SlotIndex[C.value()];
  auto It = Map.find(SlotName);
  return It == Map.end() ? -1 : It->second;
}

std::string ClassHierarchy::setToString(const ClassSet &S,
                                        const SymbolTable &Syms) const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (ClassId C : S.members()) {
    if (!First)
      OS << ',';
    First = false;
    OS << Syms.name(info(C).Name);
  }
  OS << '}';
  return OS.str();
}

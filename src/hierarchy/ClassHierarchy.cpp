//===- hierarchy/ClassHierarchy.cpp - Class inheritance DAG ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/ClassHierarchy.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace selspec;

ClassId ClassHierarchy::addClass(Symbol Name,
                                 const std::vector<ClassId> &Parents,
                                 std::vector<Symbol> OwnSlots) {
  if (ByName.count(Name))
    return ClassId();
  ClassId Id(static_cast<uint32_t>(Classes.size()));
  ClassInfo Info;
  Info.Name = Name;
  Info.OwnSlots = std::move(OwnSlots);
  if (Parents.empty()) {
    // Only the root may be parentless; others implicitly subclass Any.
    if (Id != ClassId(0))
      Info.Parents.push_back(ClassId(0));
  } else {
    Info.Parents = Parents;
  }
  for (ClassId P : Info.Parents) {
    assert(P.isValid() && P.value() < Classes.size() && "unknown parent");
    Classes[P.value()].Children.push_back(Id);
  }
  Classes.push_back(std::move(Info));
  ByName.emplace(Name, Id);
  Finalized = false;
  return Id;
}

ClassId ClassHierarchy::lookup(Symbol Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? ClassId() : It->second;
}

void ClassHierarchy::finalize() {
  unsigned N = size();

  // DFS preorder numbering over the spanning tree of first visits
  // (iterative: a 10k-class chain must not overflow the native stack).
  // Every class is reachable from the root because addClass gives each
  // non-root class at least one parent.
  PreOf.assign(N, UINT32_MAX);
  ClassAtPre.assign(N, UINT32_MAX);
  if (N != 0) {
    uint32_t NextPre = 0;
    std::vector<uint32_t> Stack;
    Stack.push_back(0);
    while (!Stack.empty()) {
      uint32_t C = Stack.back();
      Stack.pop_back();
      if (PreOf[C] != UINT32_MAX)
        continue;
      PreOf[C] = NextPre;
      ClassAtPre[NextPre] = C;
      ++NextPre;
      const std::vector<ClassId> &Kids = Classes[C].Children;
      for (size_t I = Kids.size(); I-- > 0;)
        Stack.push_back(Kids[I].value());
    }
    assert(NextPre == N && "unreachable class in hierarchy");
  }

  IdOrderIsPreorder = true;
  for (unsigned I = 0; I != N; ++I)
    if (PreOf[I] != I) {
      IdOrderIsPreorder = false;
      break;
    }

  // Cone intervals, bottom-up: cone(C) = {PreOf[C]} ∪ ⋃ cone(children).
  // Children always have larger ids than parents (addClass requires
  // parents to exist), so reverse id order sees complete child cones.
  // In a tree every cone coalesces to the single interval
  // [PreOf[C], PreOf[C] + |subtree|); only inheritance diamonds add
  // extra intervals (a multi-parent class's subtree is numbered under
  // its first-visit parent and appears as a separate interval in the
  // others' cones).
  std::vector<std::vector<ClassSet::Range>> ConeRanges(N);
  for (unsigned I = N; I-- > 0;) {
    std::vector<ClassSet::Range> Gather;
    Gather.push_back({PreOf[I], PreOf[I] + 1});
    for (ClassId Child : Classes[I].Children) {
      const auto &CR = ConeRanges[Child.value()];
      Gather.insert(Gather.end(), CR.begin(), CR.end());
    }
    std::sort(Gather.begin(), Gather.end(),
              [](const ClassSet::Range &A, const ClassSet::Range &B) {
                return A.Lo < B.Lo || (A.Lo == B.Lo && A.Hi < B.Hi);
              });
    std::vector<ClassSet::Range> &Out = ConeRanges[I];
    for (const ClassSet::Range &Rg : Gather) {
      if (!Out.empty() && Out.back().Hi >= Rg.Lo) {
        if (Rg.Hi > Out.back().Hi)
          Out.back().Hi = Rg.Hi;
      } else {
        Out.push_back(Rg);
      }
    }
  }

  ConeBegin.assign(N + 1, 0);
  for (unsigned I = 0; I != N; ++I)
    ConeBegin[I + 1] =
        ConeBegin[I] + static_cast<uint32_t>(ConeRanges[I].size());
  ConePool.clear();
  ConePool.reserve(ConeBegin[N]);
  for (unsigned I = 0; I != N; ++I)
    ConePool.insert(ConePool.end(), ConeRanges[I].begin(),
                    ConeRanges[I].end());

  UniverseSet = ClassSet::all(N);

  // Object layouts: inherited slots in parent order, then own slots, with
  // duplicates (diamond inheritance) appearing once.
  SlotIndex.assign(N, {});
  for (unsigned I = 0; I != N; ++I) {
    ClassInfo &Info = Classes[I];
    Info.Layout.clear();
    auto AppendUnique = [&](Symbol S) {
      if (std::find(Info.Layout.begin(), Info.Layout.end(), S) ==
          Info.Layout.end())
        Info.Layout.push_back(S);
    };
    for (ClassId P : Info.Parents)
      for (Symbol S : Classes[P.value()].Layout)
        AppendUnique(S);
    for (Symbol S : Info.OwnSlots)
      AppendUnique(S);
    for (size_t SI = 0; SI != Info.Layout.size(); ++SI)
      SlotIndex[I].emplace(Info.Layout[SI], static_cast<int>(SI));
  }

  Finalized = true;
  ++FinalizeGen;

  static metrics::Counter &Finalizes = metrics::named("hierarchy.finalizes");
  static metrics::Counter &NumClasses = metrics::named("hierarchy.classes");
  static metrics::Counter &ConeIntervals =
      metrics::named("hierarchy.cone_intervals");
  static metrics::Counter &IndexBytes =
      metrics::named("hierarchy.cone_index_bytes");
  Finalizes.add();
  NumClasses.set(N);
  ConeIntervals.set(ConePool.size());
  IndexBytes.set(coneIndexBytes());
}

void ClassHierarchy::finalizeViolation(const char *Query) const {
  std::fprintf(stderr,
               "fatal: ClassHierarchy::%s queried %s (finalize generation "
               "%llu); call finalize() first\n",
               Query,
               FinalizeGen == 0 ? "before finalize()"
                                : "after addClass invalidated finalize()",
               static_cast<unsigned long long>(FinalizeGen));
  std::fflush(stderr);
  std::abort();
}

ClassSet ClassHierarchy::cone(ClassId C) const {
  requireFinalized("cone");
  assert(C.isValid() && C.value() < size() && "class out of range");
  uint32_t Begin = ConeBegin[C.value()], End = ConeBegin[C.value() + 1];
  std::vector<ClassSet::Range> Rs(ConePool.begin() + Begin,
                                  ConePool.begin() + End);
  if (IdOrderIsPreorder)
    return ClassSet::fromRuns(size(), std::move(Rs));
  // Preorder intervals name preorder positions; translate to ClassId
  // space before building the set.
  std::vector<uint32_t> Ids;
  Ids.reserve(coneSize(C));
  for (const ClassSet::Range &Rg : Rs)
    for (uint32_t P = Rg.Lo; P != Rg.Hi; ++P)
      Ids.push_back(ClassAtPre[P]);
  std::sort(Ids.begin(), Ids.end());
  std::vector<ClassSet::Range> Runs;
  for (uint32_t V : Ids) {
    if (!Runs.empty() && Runs.back().Hi == V)
      Runs.back().Hi = V + 1;
    else
      Runs.push_back({V, V + 1});
  }
  return ClassSet::fromRuns(size(), std::move(Runs));
}

unsigned ClassHierarchy::coneSize(ClassId C) const {
  requireFinalized("coneSize");
  unsigned N = 0;
  for (uint32_t I = ConeBegin[C.value()], E = ConeBegin[C.value() + 1];
       I != E; ++I)
    N += ConePool[I].Hi - ConePool[I].Lo;
  return N;
}

size_t ClassHierarchy::coneIndexBytes() const {
  return PreOf.size() * sizeof(uint32_t) +
         ClassAtPre.size() * sizeof(uint32_t) +
         ConeBegin.size() * sizeof(uint32_t) +
         ConePool.size() * sizeof(ClassSet::Range);
}

int ClassHierarchy::slotIndex(ClassId C, Symbol SlotName) const {
  requireFinalized("slotIndex");
  const auto &Map = SlotIndex[C.value()];
  auto It = Map.find(SlotName);
  return It == Map.end() ? -1 : It->second;
}

std::string ClassHierarchy::setToString(const ClassSet &S,
                                        const SymbolTable &Syms) const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (ClassId C : S.members()) {
    if (!First)
      OS << ',';
    First = false;
    OS << Syms.name(info(C).Name);
  }
  OS << '}';
  return OS.str();
}

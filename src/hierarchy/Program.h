//===- hierarchy/Program.h - Whole-program container -----------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program owns everything the rest of the system works on: the symbol
/// table, the class hierarchy, all generic functions and methods (builtin
/// and user), the resolved method bodies, and the table of numbered call
/// sites.  Source-level multi-method dispatch (applicability and the
/// most-specific rule) is implemented here because analyses and the runtime
/// both need it.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_HIERARCHY_PROGRAM_H
#define SELSPEC_HIERARCHY_PROGRAM_H

#include "hierarchy/ClassHierarchy.h"
#include "hierarchy/PrimOp.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace selspec {

/// One method: a case of a generic function, dispatched on the dynamic
/// classes of its arguments against the specializer tuple.
struct MethodInfo {
  MethodId Id;
  GenericId Generic;
  std::vector<Symbol> ParamNames;
  /// One specializer class per formal; unspecialized formals use the root
  /// class (Any).
  std::vector<ClassId> Specializers;
  /// Mica body; null for builtins.
  ExprPtr Body;
  PrimOp Prim = PrimOp::None;
  SourceLoc Loc;

  bool isBuiltin() const { return Prim != PrimOp::None; }
  unsigned arity() const {
    return static_cast<unsigned>(Specializers.size());
  }
};

/// A generic function: a message name + arity and its method cases.
struct GenericInfo {
  GenericId Id;
  Symbol Name;
  unsigned Arity = 0;
  std::vector<MethodId> Methods;
};

/// A numbered message-send site in some method's resolved source body.
struct CallSiteInfo {
  CallSiteId Id;
  /// Enclosing method.
  MethodId Owner;
  /// The send node inside Owner's source body (owned by the body tree).
  SendExpr *Send = nullptr;
};

class Program {
public:
  SymbolTable Syms;
  ClassHierarchy Classes;

  //===--------------------------------------------------------------------===
  // Construction
  //===--------------------------------------------------------------------===

  /// Adds the builtin classes and methods (Any/Int/Bool/...; +, at, print,
  /// ...).  Call exactly once, before any addModule.
  void addBuiltins();

  /// Adds a parsed module: declares classes (forward references within the
  /// module are allowed) and methods.  Bodies stay unresolved until
  /// resolve() runs.
  bool addModule(Module M, Diagnostics &Diags);

  /// Convenience: parse + add \p Source.
  bool addSource(const std::string &Source, Diagnostics &Diags);

  GenericId getOrCreateGeneric(Symbol Name, unsigned Arity);

  MethodId addMethod(GenericId G, std::vector<Symbol> ParamNames,
                     std::vector<ClassId> Specializers, ExprPtr Body,
                     PrimOp Prim, SourceLoc Loc);

  /// Finalizes the hierarchy, resolves every user method body (binding
  /// names, rewriting closure calls) and numbers every call site.  Must run
  /// once after the last addModule.
  bool resolve(Diagnostics &Diags);
  bool isResolved() const { return Resolved; }

  //===--------------------------------------------------------------------===
  // Queries
  //===--------------------------------------------------------------------===

  GenericId lookupGeneric(Symbol Name, unsigned Arity) const;
  const GenericInfo &generic(GenericId G) const {
    return Generics[G.value()];
  }
  const MethodInfo &method(MethodId M) const { return Methods[M.value()]; }
  MethodInfo &method(MethodId M) { return Methods[M.value()]; }
  const CallSiteInfo &callSite(CallSiteId S) const {
    return CallSites[S.value()];
  }

  unsigned numGenerics() const {
    return static_cast<unsigned>(Generics.size());
  }
  unsigned numMethods() const { return static_cast<unsigned>(Methods.size()); }
  unsigned numCallSites() const {
    return static_cast<unsigned>(CallSites.size());
  }

  /// Number of user (non-builtin) methods, the paper's "source methods".
  unsigned numUserMethods() const;

  //===--------------------------------------------------------------------===
  // Source-level multi-method dispatch
  //===--------------------------------------------------------------------===

  /// True when \p M accepts arguments of exactly the given classes.
  bool isApplicable(const MethodInfo &M,
                    const std::vector<ClassId> &ArgClasses) const;

  /// True when method \p A's specializer tuple is pointwise at-least-as-
  /// specific as \p B's (and they belong to the same generic).
  bool atLeastAsSpecific(MethodId A, MethodId B) const;

  /// Dispatches generic \p G on concrete argument classes.  Returns an
  /// invalid id when no method is applicable ("message not understood") or
  /// when no unique most-specific method exists ("ambiguous"); when
  /// \p AmbiguousOut is non-null it is set to distinguish the two failure
  /// modes (true iff applicable methods existed but none dominated).
  MethodId dispatch(GenericId G, const std::vector<ClassId> &ArgClasses,
                    bool *AmbiguousOut = nullptr) const;

  /// "g(C1,C2)" — a readable label for reports and tests.
  std::string methodLabel(MethodId M) const;
  /// "g/2" for a generic.
  std::string genericLabel(GenericId G) const;

private:
  friend class Resolver;

  std::vector<GenericInfo> Generics;
  std::vector<MethodInfo> Methods;
  std::vector<CallSiteInfo> CallSites;
  /// (name, arity) -> generic.
  std::unordered_map<uint64_t, GenericId> GenericMap;
  bool Resolved = false;
  bool BuiltinsAdded = false;

  static uint64_t genericKey(Symbol Name, unsigned Arity) {
    return (uint64_t(Name.value()) << 8) | (Arity & 0xff);
  }
};

} // namespace selspec

#endif // SELSPEC_HIERARCHY_PROGRAM_H

//===- hierarchy/ClassHierarchy.h - Class inheritance DAG ------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program's class inheritance DAG (multiple inheritance is allowed, as
/// in Cecil).  After finalize(), constant-time subclass tests and cone
/// queries are available; both the specialization algorithm and class
/// hierarchy analysis are built on cones ("C and all its descendants").
///
/// finalize() assigns every class a DFS preorder number over the
/// inheritance DAG (first-visit order on a spanning tree rooted at Any)
/// and represents each cone as a short list of half-open preorder
/// intervals: a tree-shaped subhierarchy is exactly one interval, and a
/// multiply-inherited class contributes the union of its preorder
/// subtree intervals to each ancestor.  isSubclassOf is then two integer
/// comparisons in the single-interval common case, and total cone storage
/// is O(classes + diamond edges) instead of the O(classes²/8) bytes the
/// previous materialized bit-vector cones cost.  cone() builds a (cheap,
/// hybrid-representation) ClassSet view on demand, so all set-algebra
/// clients keep working unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_HIERARCHY_CLASSHIERARCHY_H
#define SELSPEC_HIERARCHY_CLASSHIERARCHY_H

#include "lang/Symbol.h"
#include "support/ClassSet.h"
#include "support/Ids.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace selspec {

/// Per-class record.
struct ClassInfo {
  Symbol Name;
  std::vector<ClassId> Parents;
  std::vector<ClassId> Children;
  /// Slots declared directly on this class.
  std::vector<Symbol> OwnSlots;
  /// Full object layout: inherited slots (parent order) then own slots,
  /// deduplicated.  Computed by finalize().
  std::vector<Symbol> Layout;
};

class ClassHierarchy {
public:
  ClassHierarchy() = default;

  /// Adds a class.  \p Parents may be empty only for the root (Any), which
  /// must be the first class added; every other parentless class is given
  /// Any as its parent.  Returns an invalid id and leaves the hierarchy
  /// unchanged if \p Name is already defined.
  ClassId addClass(Symbol Name, const std::vector<ClassId> &Parents,
                   std::vector<Symbol> OwnSlots = {});

  /// Marks \p C sealed: no user class may subclass it.  The builtin value
  /// classes (Int, Bool, String, Nil, Array, Closure) are sealed, which is
  /// why even without whole-program analysis the compiler may treat an
  /// @Int formal as exactly Int.
  void seal(ClassId C) { Sealed.insert(C.value()); }
  bool isSealed(ClassId C) const { return Sealed.count(C.value()) != 0; }

  /// Returns the class named \p Name, or an invalid id.
  ClassId lookup(Symbol Name) const;

  unsigned size() const { return static_cast<unsigned>(Classes.size()); }
  const ClassInfo &info(ClassId C) const { return Classes[C.value()]; }
  ClassId root() const { return ClassId(0); }

  /// Precomputes preorder numbering, cone intervals, and layouts.  Must be
  /// called after the last addClass and before any query below; adding
  /// classes afterwards requires calling finalize() again.
  void finalize();

  bool isFinalized() const { return Finalized; }

  /// Monotonic count of completed finalize() calls.  A client that caches
  /// cone-derived state can stamp it with this and detect staleness after
  /// a later addClass+finalize; queries between addClass and the next
  /// finalize trap deterministically in every build mode.
  uint64_t finalizeGeneration() const { return FinalizeGen; }

  /// Reflexive subclass test: A == B or A inherits (transitively) from B.
  /// Two integer comparisons when B's cone is a single preorder interval
  /// (always true for tree-shaped subhierarchies).
  bool isSubclassOf(ClassId A, ClassId B) const {
    requireFinalized("isSubclassOf");
    uint32_t P = PreOf[A.value()];
    uint32_t Begin = ConeBegin[B.value()];
    uint32_t End = ConeBegin[B.value() + 1];
    if (End - Begin == 1)
      return P >= ConePool[Begin].Lo && P < ConePool[Begin].Hi;
    for (uint32_t I = Begin; I != End; ++I)
      if (P >= ConePool[I].Lo && P < ConePool[I].Hi)
        return true;
    return false;
  }

  /// The cone of \p C: the set {C} ∪ descendants(C), materialized on
  /// demand as a hybrid ClassSet (interval-backed, so a tree cone costs
  /// O(1) bytes regardless of its member count).
  ClassSet cone(ClassId C) const;

  /// Members of cone(C) without building a set.
  unsigned coneSize(ClassId C) const;

  /// Preorder intervals backing cone(C) (introspection for tests and the
  /// scaling benchmark; 1 for every tree-shaped cone).
  unsigned coneIntervalCount(ClassId C) const {
    requireFinalized("coneIntervalCount");
    return ConeBegin[C.value() + 1] - ConeBegin[C.value()];
  }

  /// Total bytes of the preorder/cone-interval index (the hierarchy-scale
  /// benchmark's cone-memory metric).
  size_t coneIndexBytes() const;

  /// The set of every class (the universe).
  const ClassSet &allClasses() const {
    requireFinalized("allClasses");
    return UniverseSet;
  }

  /// Index of slot \p SlotName in the layout of \p C, or -1.
  int slotIndex(ClassId C, Symbol SlotName) const;

  /// True when \p C has no children (useful to pick concrete classes).
  bool isLeaf(ClassId C) const { return info(C).Children.empty(); }

  /// Only concrete classes can be instantiated at run time; by convention
  /// every class is concrete in Mica (abstract use is just "never
  /// instantiated"), so this returns the universe.
  const ClassSet &concreteClasses() const { return allClasses(); }

  /// Renders a ClassSet with class names: "{Set,ListSet}".
  std::string setToString(const ClassSet &S, const SymbolTable &Syms) const;

private:
  /// Checked in every build mode: querying a non-finalized hierarchy was
  /// an out-of-bounds read in Release before; now it is a deterministic
  /// diagnostic + trap ("diagnostic, trap, or result — never a crash").
  void requireFinalized(const char *Query) const {
    if (!Finalized)
      finalizeViolation(Query);
  }
  [[noreturn]] void finalizeViolation(const char *Query) const;

  std::vector<ClassInfo> Classes;
  std::unordered_map<Symbol, ClassId> ByName;
  /// PreOf[classId] = DFS preorder number; ClassAtPre is its inverse.
  std::vector<uint32_t> PreOf;
  std::vector<uint32_t> ClassAtPre;
  /// Pooled per-class cone intervals in preorder space: class C owns
  /// ConePool[ConeBegin[C] .. ConeBegin[C+1]).
  std::vector<uint32_t> ConeBegin;
  std::vector<ClassSet::Range> ConePool;
  /// True when addClass order happened to equal preorder, letting cone()
  /// reuse the preorder intervals as ClassId intervals directly.
  bool IdOrderIsPreorder = false;
  /// Cached universe set (one interval).
  ClassSet UniverseSet;
  /// Per-class slot index maps; computed by finalize().
  std::vector<std::unordered_map<Symbol, int>> SlotIndex;
  std::unordered_set<uint32_t> Sealed;
  bool Finalized = false;
  uint64_t FinalizeGen = 0;
};

} // namespace selspec

#endif // SELSPEC_HIERARCHY_CLASSHIERARCHY_H

//===- hierarchy/ClassHierarchy.h - Class inheritance DAG ------*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program's class inheritance DAG (multiple inheritance is allowed, as
/// in Cecil).  After finalize(), constant-time subclass tests and cone
/// queries are available; both the specialization algorithm and class
/// hierarchy analysis are built on cones ("C and all its descendants").
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_HIERARCHY_CLASSHIERARCHY_H
#define SELSPEC_HIERARCHY_CLASSHIERARCHY_H

#include "lang/Symbol.h"
#include "support/ClassSet.h"
#include "support/Ids.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace selspec {

/// Per-class record.
struct ClassInfo {
  Symbol Name;
  std::vector<ClassId> Parents;
  std::vector<ClassId> Children;
  /// Slots declared directly on this class.
  std::vector<Symbol> OwnSlots;
  /// Full object layout: inherited slots (parent order) then own slots,
  /// deduplicated.  Computed by finalize().
  std::vector<Symbol> Layout;
};

class ClassHierarchy {
public:
  ClassHierarchy() = default;

  /// Adds a class.  \p Parents may be empty only for the root (Any), which
  /// must be the first class added; every other parentless class is given
  /// Any as its parent.  Returns an invalid id and leaves the hierarchy
  /// unchanged if \p Name is already defined.
  ClassId addClass(Symbol Name, const std::vector<ClassId> &Parents,
                   std::vector<Symbol> OwnSlots = {});

  /// Marks \p C sealed: no user class may subclass it.  The builtin value
  /// classes (Int, Bool, String, Nil, Array, Closure) are sealed, which is
  /// why even without whole-program analysis the compiler may treat an
  /// @Int formal as exactly Int.
  void seal(ClassId C) { Sealed.insert(C.value()); }
  bool isSealed(ClassId C) const { return Sealed.count(C.value()) != 0; }

  /// Returns the class named \p Name, or an invalid id.
  ClassId lookup(Symbol Name) const;

  unsigned size() const { return static_cast<unsigned>(Classes.size()); }
  const ClassInfo &info(ClassId C) const { return Classes[C.value()]; }
  ClassId root() const { return ClassId(0); }

  /// Precomputes cones and layouts.  Must be called after the last
  /// addClass and before any query below; adding classes afterwards
  /// requires calling finalize() again.
  void finalize();

  bool isFinalized() const { return Finalized; }

  /// Reflexive subclass test: A == B or A inherits (transitively) from B.
  bool isSubclassOf(ClassId A, ClassId B) const {
    return cone(B).contains(A);
  }

  /// The cone of \p C: the set {C} ∪ descendants(C).
  const ClassSet &cone(ClassId C) const {
    assert(Finalized && "hierarchy not finalized");
    return Cones[C.value()];
  }

  /// The set of every class (the universe).
  const ClassSet &allClasses() const {
    assert(Finalized && "hierarchy not finalized");
    return Cones[0];
  }

  /// Index of slot \p SlotName in the layout of \p C, or -1.
  int slotIndex(ClassId C, Symbol SlotName) const;

  /// True when \p C has no children (useful to pick concrete classes).
  bool isLeaf(ClassId C) const { return info(C).Children.empty(); }

  /// Only concrete classes can be instantiated at run time; by convention
  /// every class is concrete in Mica (abstract use is just "never
  /// instantiated"), so this returns the universe.
  const ClassSet &concreteClasses() const { return allClasses(); }

  /// Renders a ClassSet with class names: "{Set,ListSet}".
  std::string setToString(const ClassSet &S, const SymbolTable &Syms) const;

private:
  std::vector<ClassInfo> Classes;
  std::unordered_map<Symbol, ClassId> ByName;
  /// Cones[i] = cone of class i; computed by finalize().
  std::vector<ClassSet> Cones;
  /// Per-class slot index maps; computed by finalize().
  std::vector<std::unordered_map<Symbol, int>> SlotIndex;
  std::unordered_set<uint32_t> Sealed;
  bool Finalized = false;
};

} // namespace selspec

#endif // SELSPEC_HIERARCHY_CLASSHIERARCHY_H

//===- hierarchy/Builtins.h - Builtin classes and generics -----*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Well-known builtin class ids.  The builtin classes are registered by
/// Program::addBuiltins() in a fixed order, so these constants are stable.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_HIERARCHY_BUILTINS_H
#define SELSPEC_HIERARCHY_BUILTINS_H

#include "support/Ids.h"

namespace selspec {
namespace builtin {

/// Fixed ids of the builtin classes (registration order in addBuiltins).
inline const ClassId Any(0);
inline const ClassId Int(1);
inline const ClassId Bool(2);
inline const ClassId String(3);
inline const ClassId Nil(4);
inline const ClassId Array(5);
inline const ClassId Closure(6);

/// Number of builtin classes.
inline constexpr unsigned NumClasses = 7;

} // namespace builtin
} // namespace selspec

#endif // SELSPEC_HIERARCHY_BUILTINS_H

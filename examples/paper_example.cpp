//===- examples/paper_example.cpp - Figures 2-4, step by step --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks the paper's worked example interactively: builds the Figure 2/3
/// class hierarchy and call graph, then shows each ingredient of the
/// Figure 4 algorithm — ApplicableClasses, PassThroughArgs,
/// neededInfoForArc, the combination rule producing the nine versions of
/// m4, and the cascade into m3.
///
/// Run: build/examples/paper_example
///
//===----------------------------------------------------------------------===//

#include "analysis/PassThroughArgs.h"
#include "driver/Pipeline.h"
#include "specialize/SelectiveSpecializer.h"

#include <iostream>

using namespace selspec;

static const char *Figure23 = R"(
  class A;
  class B isa A;  class C isa A;
  class D isa B;  class E isa B;
  class F isa C;  class G isa C;
  class H isa E;  class I isa E;
  class J isa G;

  method m(self@A) { 1; }
  method m(self@E) { 2; }
  method m(self@G) { 3; }

  method m2(self@A) { 1; }
  method m2(self@B) { 2; }

  method m4(self@A, arg2@A) { m(self); m2(arg2); }
  method m3(self@A, arg2@A) { m4(self, arg2); }

  method main(n@Int) { n; }
)";

namespace {

MethodId findMethod(const Program &P, const std::string &Label) {
  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    if (P.methodLabel(MethodId(MI)) == Label)
      return MethodId(MI);
  std::cerr << "no method " << Label << '\n';
  std::exit(1);
}

CallSiteId findSite(const Program &P, MethodId Owner,
                    const std::string &Generic) {
  Symbol G = P.Syms.find(Generic);
  for (unsigned I = 0; I != P.numCallSites(); ++I) {
    const CallSiteInfo &Site = P.callSite(CallSiteId(I));
    if (Site.Owner == Owner && Site.Send->GenericName == G)
      return Site.Id;
  }
  std::cerr << "no site of " << Generic << '\n';
  std::exit(1);
}

} // namespace

int main() {
  std::cout
      << "The paper's Figure 2/3 example, reconstructed.\n"
      << "(Hierarchy: A > {B > {D, E > {H,I}}, C > {F, G > {J}}};\n"
      << " m on A/E/G, m2 on A/B; m4 sends m(self) and m2(arg2);\n"
      << " m3 calls m4(self, arg2), statically bound.)\n\n";

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({Figure23}, Err, /*WithStdlib=*/false);
  if (!W) {
    std::cerr << Err;
    return 1;
  }
  Program &P = W->program();
  const ApplicableClassesAnalysis &AC = W->applicableClasses();
  const PassThroughAnalysis &PT = W->passThrough();

  // --- ApplicableClasses: Figure 2's shaded equivalence regions ---
  std::cout << "ApplicableClasses (Figure 2's equivalence regions):\n";
  for (const char *Label : {"m(A)", "m(E)", "m(G)", "m2(A)", "m2(B)",
                            "m4(A,A)", "m3(A,A)"}) {
    MethodId M = findMethod(P, Label);
    std::cout << "  " << Label << " -> "
              << tupleToString(AC.of(M), P.Classes, P.Syms) << '\n';
  }

  // --- the weighted call graph of Figure 3 ---
  MethodId M4 = findMethod(P, "m4(A,A)");
  MethodId M3 = findMethod(P, "m3(A,A)");
  CallGraph &CG = W->profile();
  CG.addHits(findSite(P, M4, "m"), M4, findMethod(P, "m(A)"), 625);
  CG.addHits(findSite(P, M4, "m"), M4, findMethod(P, "m(E)"), 375);
  CG.addHits(findSite(P, M4, "m2"), M4, findMethod(P, "m2(B)"), 550);
  CG.addHits(findSite(P, M4, "m2"), M4, findMethod(P, "m2(A)"), 450);
  CG.addHits(findSite(P, M3, "m4"), M3, M4, 1000);

  std::cout << "\nWeighted call graph (Figure 3):\n";
  for (const Arc &A : CG.arcs())
    std::cout << "  " << P.methodLabel(A.Caller) << " --["
              << A.Weight << "]--> " << P.methodLabel(A.Callee) << '\n';

  // --- pass-through arguments ---
  std::cout << "\nPassThroughArgs of m4's sites:\n";
  for (const char *G : {"m", "m2"}) {
    CallSiteId S = findSite(P, M4, G);
    std::cout << "  " << G << "(...): {";
    bool First = true;
    for (auto [F, A] : PT.at(S)) {
      if (!First)
        std::cout << ", ";
      First = false;
      std::cout << '<' << P.Syms.name(P.method(M4).ParamNames[F]) << " -> "
                << "actual " << A << '>';
    }
    std::cout << "}\n";
  }

  // --- neededInfoForArc for the alpha arc ---
  SelectiveOptions Opts;
  Opts.SpecializationThreshold = 300; // all Figure 3 arcs qualify
  SelectiveSpecializer S(P, AC, PT, CG, Opts);

  std::cout << "\nneededInfoForArc for each of m4's arcs:\n";
  for (const Arc &A : CG.arcs()) {
    if (A.Caller != M4)
      continue;
    std::cout << "  --> " << P.methodLabel(A.Callee) << " (w=" << A.Weight
              << "): " << tupleToString(S.neededInfoForArc(A), P.Classes,
                                        P.Syms)
              << (S.isSpecializableArc(A) ? "  [specializable]" : "")
              << '\n';
  }

  // --- run the Figure 4 algorithm ---
  S.run();
  std::cout << "\nSpecializations of m4 (paper: nine versions, including "
               "the original):\n";
  for (const SpecTuple &T : S.specializations()[M4.value()])
    std::cout << "  " << tupleToString(T, P.Classes, P.Syms) << '\n';

  std::cout << "\nCascaded specializations of m3 (Section 3.3):\n";
  for (const SpecTuple &T : S.specializations()[M3.value()])
    std::cout << "  " << tupleToString(T, P.Classes, P.Syms) << '\n';

  std::cout << "\nstats: " << S.stats().MethodsSpecialized
            << " methods specialized, " << S.stats().VersionsAdded
            << " versions added, " << S.stats().CascadedSpecializations
            << " cascade events\n";
  return 0;
}

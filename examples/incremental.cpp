//===- examples/incremental.cpp - Selective recompilation (§3.7.1) ---------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program analysis embeds hierarchy assumptions into compiled code;
/// Section 3.7.1 reconciles that with incremental compilation through a
/// fine-grained dependency graph.  This example compiles a program, builds
/// the implied dependency graph, simulates two program edits, and shows
/// the exact recompilation work list each edit produces.
///
/// Run: build/examples/incremental
///
//===----------------------------------------------------------------------===//

#include "depgraph/DependencyGraph.h"
#include "driver/Pipeline.h"

#include <iostream>

using namespace selspec;

static const char *Source = R"(
  class Shape;
  class Circle isa Shape;
  class Square isa Shape;

  method area(s@Circle) { 10; }
  method area(s@Square) { 20; }
  method perimeter(s@Circle) { 11; }
  method perimeter(s@Square) { 21; }

  method describe(s@Shape) { area(s) + perimeter(s); }
  method onlyArea(s@Circle) { area(s); }
  method unrelated(n@Int) { n * 2 + 1; }

  method main(n@Int) {
    print(describe(new Circle) + describe(new Square) + unrelated(n));
  }
)";

int main() {
  std::cout << "Selective recompilation via the dependency graph "
               "(Section 3.7.1)\n\n";

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({Source}, Err, /*WithStdlib=*/false);
  if (!W) {
    std::cerr << Err;
    return 1;
  }
  Program &P = W->program();
  std::unique_ptr<CompiledProgram> CP = W->compileOnly(Config::CHA);

  DependencyGraph G;
  DependencyGraph::ProgramNodes PN = G.buildFromCompiledProgram(*CP);
  std::cout << "dependency graph: " << G.numNodes() << " nodes, "
            << G.numEdges() << " edges\n\n";

  auto ShowInvalidated = [&](const char *EditDescription,
                             DependencyGraph::NodeId Changed) {
    std::cout << "edit: " << EditDescription << '\n';
    std::vector<DependencyGraph::NodeId> Invalid = G.invalidate(Changed);
    std::cout << "  invalidates " << Invalid.size() << " node(s):\n";
    for (DependencyGraph::NodeId N : Invalid)
      if (G.kind(N) == DependencyGraph::NodeKind::CompiledCode)
        std::cout << "    recompile " << G.label(N) << '\n';
    // A real system recompiles and revalidates; simulate that.
    for (DependencyGraph::NodeId N : Invalid)
      G.revalidate(N);
    std::cout << '\n';
  };

  // Edit 1: a method is added to generic `area` — everything that bound
  // area statically must be recompiled; `unrelated` must not.
  GenericId Area = P.lookupGeneric(P.Syms.find("area"), 1);
  ShowInvalidated("add a method to generic area/1",
                  PN.GenericFactNodes[Area.value()]);

  // Edit 2: class Square is modified — dispatch facts of every generic
  // with Square in a specializer cone are invalidated, and their bound
  // clients with them.
  ClassId Square = P.Classes.lookup(P.Syms.find("Square"));
  ShowInvalidated("modify class Square", PN.ClassNodes[Square.value()]);

  // Edit 3: an Int-only helper's own method body changes — only its own
  // compiled versions are invalidated.
  MethodId Unrelated;
  for (unsigned MI = 0; MI != P.numMethods(); ++MI)
    if (P.methodLabel(MethodId(MI)) == "unrelated(Int)")
      Unrelated = MethodId(MI);
  ShowInvalidated("edit the body of unrelated(Int)",
                  PN.MethodNodes[Unrelated.value()]);

  std::cout << "note how the Int-only helper never appears in the first "
               "two work lists, and\nhow editing it touches nothing "
               "else — the paper's fine-grained invalidation.\n";
  return 0;
}

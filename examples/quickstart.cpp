//===- examples/quickstart.cpp - selspec in five minutes -------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tour of the public API on the paper's Figure 1 example (the
/// Set hierarchy): load a Mica program, gather a profile, compile it under
/// Base and under profile-guided selective specialization, and compare.
///
/// Run: build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/Report.h"

#include <iostream>

using namespace selspec;

// A client of the stdlib's Set hierarchy: `overlaps` iterates one set with
// a closure and probes the other — the motivating example of the paper.
static const char *ProgramSource = R"(
  method buildSets(n@Int) {
    let sets := vectorNew();
    add(sets, listSetNew());
    add(sets, hashSetNew(31));
    add(sets, bitSetNew(256));
    let i := 0;
    while (i < n) {
      add(at(sets, 0), i * 3 % 200);
      add(at(sets, 1), i * 5 % 200);
      add(at(sets, 2), i * 7 % 200);
      i := i + 1;
    }
    sets;
  }

  method countOverlaps(sets@Vector, rounds@Int) {
    let hits := 0;
    let r := 0;
    while (r < rounds) {
      let i := 0;
      while (i < size(sets)) {
        let j := 0;
        while (j < size(sets)) {
          if (overlaps(at(sets, i), at(sets, j))) { hits := hits + 1; }
          j := j + 1;
        }
        i := i + 1;
      }
      r := r + 1;
    }
    hits;
  }

  method main(n@Int) {
    let sets := buildSets(n);
    print("overlap hits:");
    print(countOverlaps(sets, 20));
  }
)";

int main() {
  std::cout << "selspec quickstart: selective specialization on the "
               "Figure 1 Set hierarchy\n\n";

  // 1. Load the program (stdlib + our source) and resolve it.
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({ProgramSource}, Err, /*WithStdlib=*/true);
  if (!W) {
    std::cerr << "load failed:\n" << Err;
    return 1;
  }
  std::cout << "loaded " << W->program().numUserMethods()
            << " user methods, " << W->program().numCallSites()
            << " call sites\n";

  // 2. Gather a profile on a training input (the paper's gprof-style
  //    weighted call graph, collected from the Base-compiled program).
  if (!W->collectProfile(/*Input=*/100, Err)) {
    std::cerr << "profiling failed: " << Err << '\n';
    return 1;
  }
  std::cout << "profiled: " << W->profile().numArcs()
            << " call-graph arcs, total weight "
            << TextTable::count(W->profile().totalWeight()) << "\n\n";

  // 3. Compile + run under Base and under Selective on a different input.
  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 100; // small program; the paper uses 1000
  std::optional<ConfigResult> Base = W->runConfig(Config::Base, 140, Err);
  std::optional<ConfigResult> Spec =
      W->runConfig(Config::Selective, 140, Err, Sel);
  if (!Base || !Spec) {
    std::cerr << "run failed: " << Err << '\n';
    return 1;
  }

  // 4. Compare.
  TextTable T({"Metric", "Base", "Selective", "Change"});
  auto Row = [&](const char *Name, uint64_t B, uint64_t S) {
    T.addRow({Name, TextTable::count(B), TextTable::count(S),
              TextTable::percentDelta(static_cast<double>(S),
                                      static_cast<double>(B))});
  };
  Row("dynamic dispatches", Base->Run.totalDispatches(),
      Spec->Run.totalDispatches());
  Row("modeled cycles", Base->Run.Cycles, Spec->Run.Cycles);
  Row("closures created", Base->Run.ClosuresCreated,
      Spec->Run.ClosuresCreated);
  Row("compiled routines", Base->CompiledRoutines, Spec->CompiledRoutines);
  T.print(std::cout);

  std::cout << "\nprogram output (identical under both):\n"
            << Base->Output;
  if (Base->Output != Spec->Output) {
    std::cerr << "BUG: outputs diverged!\n";
    return 1;
  }
  if (Spec->Specializer) {
    std::cout << "\nspecializer: " << Spec->Specializer->MethodsSpecialized
              << " methods specialized, " << Spec->Specializer->VersionsAdded
              << " versions added, "
              << Spec->Specializer->CascadedSpecializations
              << " cascaded\n";
  }
  return 0;
}
